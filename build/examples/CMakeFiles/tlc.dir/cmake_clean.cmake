file(REMOVE_RECURSE
  "CMakeFiles/tlc.dir/tlc.cpp.o"
  "CMakeFiles/tlc.dir/tlc.cpp.o.d"
  "tlc"
  "tlc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
