# Empty dependencies file for tlc.
# This may be replaced when dependencies are built.
