# Empty dependencies file for reflective_optimization.
# This may be replaced when dependencies are built.
