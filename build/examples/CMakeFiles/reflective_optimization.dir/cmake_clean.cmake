file(REMOVE_RECURSE
  "CMakeFiles/reflective_optimization.dir/reflective_optimization.cpp.o"
  "CMakeFiles/reflective_optimization.dir/reflective_optimization.cpp.o.d"
  "reflective_optimization"
  "reflective_optimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reflective_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
