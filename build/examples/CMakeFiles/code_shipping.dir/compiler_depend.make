# Empty compiler generated dependencies file for code_shipping.
# This may be replaced when dependencies are built.
