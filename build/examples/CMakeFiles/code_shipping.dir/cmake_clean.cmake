file(REMOVE_RECURSE
  "CMakeFiles/code_shipping.dir/code_shipping.cpp.o"
  "CMakeFiles/code_shipping.dir/code_shipping.cpp.o.d"
  "code_shipping"
  "code_shipping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/code_shipping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
