# Empty dependencies file for query_optimization.
# This may be replaced when dependencies are built.
