file(REMOVE_RECURSE
  "CMakeFiles/query_optimization.dir/query_optimization.cpp.o"
  "CMakeFiles/query_optimization.dir/query_optimization.cpp.o.d"
  "query_optimization"
  "query_optimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
