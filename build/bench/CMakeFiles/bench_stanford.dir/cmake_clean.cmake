file(REMOVE_RECURSE
  "CMakeFiles/bench_stanford.dir/bench_stanford.cc.o"
  "CMakeFiles/bench_stanford.dir/bench_stanford.cc.o.d"
  "bench_stanford"
  "bench_stanford.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stanford.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
