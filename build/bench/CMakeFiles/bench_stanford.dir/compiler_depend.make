# Empty compiler generated dependencies file for bench_stanford.
# This may be replaced when dependencies are built.
