file(REMOVE_RECURSE
  "CMakeFiles/bench_reflect.dir/bench_reflect.cc.o"
  "CMakeFiles/bench_reflect.dir/bench_reflect.cc.o.d"
  "bench_reflect"
  "bench_reflect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reflect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
