# Empty dependencies file for bench_reflect.
# This may be replaced when dependencies are built.
