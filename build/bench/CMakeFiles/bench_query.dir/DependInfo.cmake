
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_query.cc" "bench/CMakeFiles/bench_query.dir/bench_query.cc.o" "gcc" "bench/CMakeFiles/bench_query.dir/bench_query.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/tml_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/tml_query.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/tml_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/tml_store.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/tml_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/prims/CMakeFiles/tml_prims.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tml_core.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tml_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
