# Empty compiler generated dependencies file for tml_frontend.
# This may be replaced when dependencies are built.
