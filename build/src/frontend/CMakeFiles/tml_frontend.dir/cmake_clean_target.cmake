file(REMOVE_RECURSE
  "libtml_frontend.a"
)
