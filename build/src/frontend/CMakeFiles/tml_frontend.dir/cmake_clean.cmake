file(REMOVE_RECURSE
  "CMakeFiles/tml_frontend.dir/compile.cc.o"
  "CMakeFiles/tml_frontend.dir/compile.cc.o.d"
  "CMakeFiles/tml_frontend.dir/parser.cc.o"
  "CMakeFiles/tml_frontend.dir/parser.cc.o.d"
  "libtml_frontend.a"
  "libtml_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tml_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
