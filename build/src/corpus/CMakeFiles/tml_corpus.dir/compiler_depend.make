# Empty compiler generated dependencies file for tml_corpus.
# This may be replaced when dependencies are built.
