file(REMOVE_RECURSE
  "libtml_corpus.a"
)
