file(REMOVE_RECURSE
  "CMakeFiles/tml_corpus.dir/stanford.cc.o"
  "CMakeFiles/tml_corpus.dir/stanford.cc.o.d"
  "libtml_corpus.a"
  "libtml_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tml_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
