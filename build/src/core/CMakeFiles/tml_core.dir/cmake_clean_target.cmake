file(REMOVE_RECURSE
  "libtml_core.a"
)
