
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analysis.cc" "src/core/CMakeFiles/tml_core.dir/analysis.cc.o" "gcc" "src/core/CMakeFiles/tml_core.dir/analysis.cc.o.d"
  "/root/repo/src/core/expand.cc" "src/core/CMakeFiles/tml_core.dir/expand.cc.o" "gcc" "src/core/CMakeFiles/tml_core.dir/expand.cc.o.d"
  "/root/repo/src/core/module.cc" "src/core/CMakeFiles/tml_core.dir/module.cc.o" "gcc" "src/core/CMakeFiles/tml_core.dir/module.cc.o.d"
  "/root/repo/src/core/optimizer.cc" "src/core/CMakeFiles/tml_core.dir/optimizer.cc.o" "gcc" "src/core/CMakeFiles/tml_core.dir/optimizer.cc.o.d"
  "/root/repo/src/core/parser.cc" "src/core/CMakeFiles/tml_core.dir/parser.cc.o" "gcc" "src/core/CMakeFiles/tml_core.dir/parser.cc.o.d"
  "/root/repo/src/core/primitive.cc" "src/core/CMakeFiles/tml_core.dir/primitive.cc.o" "gcc" "src/core/CMakeFiles/tml_core.dir/primitive.cc.o.d"
  "/root/repo/src/core/printer.cc" "src/core/CMakeFiles/tml_core.dir/printer.cc.o" "gcc" "src/core/CMakeFiles/tml_core.dir/printer.cc.o.d"
  "/root/repo/src/core/rewrite.cc" "src/core/CMakeFiles/tml_core.dir/rewrite.cc.o" "gcc" "src/core/CMakeFiles/tml_core.dir/rewrite.cc.o.d"
  "/root/repo/src/core/subst.cc" "src/core/CMakeFiles/tml_core.dir/subst.cc.o" "gcc" "src/core/CMakeFiles/tml_core.dir/subst.cc.o.d"
  "/root/repo/src/core/validate.cc" "src/core/CMakeFiles/tml_core.dir/validate.cc.o" "gcc" "src/core/CMakeFiles/tml_core.dir/validate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/tml_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
