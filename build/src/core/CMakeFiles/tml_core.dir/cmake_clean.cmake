file(REMOVE_RECURSE
  "CMakeFiles/tml_core.dir/analysis.cc.o"
  "CMakeFiles/tml_core.dir/analysis.cc.o.d"
  "CMakeFiles/tml_core.dir/expand.cc.o"
  "CMakeFiles/tml_core.dir/expand.cc.o.d"
  "CMakeFiles/tml_core.dir/module.cc.o"
  "CMakeFiles/tml_core.dir/module.cc.o.d"
  "CMakeFiles/tml_core.dir/optimizer.cc.o"
  "CMakeFiles/tml_core.dir/optimizer.cc.o.d"
  "CMakeFiles/tml_core.dir/parser.cc.o"
  "CMakeFiles/tml_core.dir/parser.cc.o.d"
  "CMakeFiles/tml_core.dir/primitive.cc.o"
  "CMakeFiles/tml_core.dir/primitive.cc.o.d"
  "CMakeFiles/tml_core.dir/printer.cc.o"
  "CMakeFiles/tml_core.dir/printer.cc.o.d"
  "CMakeFiles/tml_core.dir/rewrite.cc.o"
  "CMakeFiles/tml_core.dir/rewrite.cc.o.d"
  "CMakeFiles/tml_core.dir/subst.cc.o"
  "CMakeFiles/tml_core.dir/subst.cc.o.d"
  "CMakeFiles/tml_core.dir/validate.cc.o"
  "CMakeFiles/tml_core.dir/validate.cc.o.d"
  "libtml_core.a"
  "libtml_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tml_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
