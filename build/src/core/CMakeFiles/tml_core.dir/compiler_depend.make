# Empty compiler generated dependencies file for tml_core.
# This may be replaced when dependencies are built.
