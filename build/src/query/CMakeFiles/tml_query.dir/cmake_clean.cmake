file(REMOVE_RECURSE
  "CMakeFiles/tml_query.dir/relation.cc.o"
  "CMakeFiles/tml_query.dir/relation.cc.o.d"
  "CMakeFiles/tml_query.dir/rewrite.cc.o"
  "CMakeFiles/tml_query.dir/rewrite.cc.o.d"
  "libtml_query.a"
  "libtml_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tml_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
