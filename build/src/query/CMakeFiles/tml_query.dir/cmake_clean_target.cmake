file(REMOVE_RECURSE
  "libtml_query.a"
)
