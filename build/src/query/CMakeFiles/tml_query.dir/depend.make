# Empty dependencies file for tml_query.
# This may be replaced when dependencies are built.
