file(REMOVE_RECURSE
  "CMakeFiles/tml_interp.dir/interp.cc.o"
  "CMakeFiles/tml_interp.dir/interp.cc.o.d"
  "libtml_interp.a"
  "libtml_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tml_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
