file(REMOVE_RECURSE
  "libtml_interp.a"
)
