# Empty compiler generated dependencies file for tml_interp.
# This may be replaced when dependencies are built.
