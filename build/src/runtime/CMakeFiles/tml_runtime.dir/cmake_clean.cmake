file(REMOVE_RECURSE
  "CMakeFiles/tml_runtime.dir/universe.cc.o"
  "CMakeFiles/tml_runtime.dir/universe.cc.o.d"
  "libtml_runtime.a"
  "libtml_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tml_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
