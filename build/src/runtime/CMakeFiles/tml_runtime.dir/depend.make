# Empty dependencies file for tml_runtime.
# This may be replaced when dependencies are built.
