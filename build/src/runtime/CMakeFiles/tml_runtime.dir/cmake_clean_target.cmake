file(REMOVE_RECURSE
  "libtml_runtime.a"
)
