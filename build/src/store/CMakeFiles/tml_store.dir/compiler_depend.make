# Empty compiler generated dependencies file for tml_store.
# This may be replaced when dependencies are built.
