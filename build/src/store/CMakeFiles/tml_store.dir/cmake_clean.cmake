file(REMOVE_RECURSE
  "CMakeFiles/tml_store.dir/object_store.cc.o"
  "CMakeFiles/tml_store.dir/object_store.cc.o.d"
  "CMakeFiles/tml_store.dir/ptml.cc.o"
  "CMakeFiles/tml_store.dir/ptml.cc.o.d"
  "libtml_store.a"
  "libtml_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tml_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
