file(REMOVE_RECURSE
  "libtml_store.a"
)
