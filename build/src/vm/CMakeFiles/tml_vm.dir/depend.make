# Empty dependencies file for tml_vm.
# This may be replaced when dependencies are built.
