file(REMOVE_RECURSE
  "CMakeFiles/tml_vm.dir/code.cc.o"
  "CMakeFiles/tml_vm.dir/code.cc.o.d"
  "CMakeFiles/tml_vm.dir/codegen.cc.o"
  "CMakeFiles/tml_vm.dir/codegen.cc.o.d"
  "CMakeFiles/tml_vm.dir/vm.cc.o"
  "CMakeFiles/tml_vm.dir/vm.cc.o.d"
  "libtml_vm.a"
  "libtml_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tml_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
