file(REMOVE_RECURSE
  "libtml_vm.a"
)
