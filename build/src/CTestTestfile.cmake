# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("core")
subdirs("prims")
subdirs("store")
subdirs("interp")
subdirs("vm")
subdirs("frontend")
subdirs("query")
subdirs("runtime")
subdirs("corpus")
