file(REMOVE_RECURSE
  "libtml_prims.a"
)
