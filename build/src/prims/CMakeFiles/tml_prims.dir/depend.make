# Empty dependencies file for tml_prims.
# This may be replaced when dependencies are built.
