file(REMOVE_RECURSE
  "CMakeFiles/tml_prims.dir/standard.cc.o"
  "CMakeFiles/tml_prims.dir/standard.cc.o.d"
  "libtml_prims.a"
  "libtml_prims.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tml_prims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
