file(REMOVE_RECURSE
  "CMakeFiles/tml_support.dir/status.cc.o"
  "CMakeFiles/tml_support.dir/status.cc.o.d"
  "libtml_support.a"
  "libtml_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tml_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
