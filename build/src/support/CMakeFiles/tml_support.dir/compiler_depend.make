# Empty compiler generated dependencies file for tml_support.
# This may be replaced when dependencies are built.
