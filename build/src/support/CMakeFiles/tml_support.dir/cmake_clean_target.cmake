file(REMOVE_RECURSE
  "libtml_support.a"
)
