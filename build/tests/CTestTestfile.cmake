# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/parser_printer_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/validate_test[1]_include.cmake")
include("/root/repo/build/tests/rewrite_test[1]_include.cmake")
include("/root/repo/build/tests/interp_test[1]_include.cmake")
include("/root/repo/build/tests/object_store_test[1]_include.cmake")
include("/root/repo/build/tests/ptml_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/differential_test[1]_include.cmake")
include("/root/repo/build/tests/frontend_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/corpus_test[1]_include.cmake")
include("/root/repo/build/tests/query_test[1]_include.cmake")
include("/root/repo/build/tests/persistence_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/store_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/expand_test[1]_include.cmake")
include("/root/repo/build/tests/vm_edge_test[1]_include.cmake")
include("/root/repo/build/tests/frontend_negative_test[1]_include.cmake")
include("/root/repo/build/tests/tl_differential_test[1]_include.cmake")
