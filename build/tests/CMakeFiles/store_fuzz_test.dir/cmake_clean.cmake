file(REMOVE_RECURSE
  "CMakeFiles/store_fuzz_test.dir/store/store_fuzz_test.cc.o"
  "CMakeFiles/store_fuzz_test.dir/store/store_fuzz_test.cc.o.d"
  "store_fuzz_test"
  "store_fuzz_test.pdb"
  "store_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/store_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
