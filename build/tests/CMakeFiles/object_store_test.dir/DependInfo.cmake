
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/store/object_store_test.cc" "tests/CMakeFiles/object_store_test.dir/store/object_store_test.cc.o" "gcc" "tests/CMakeFiles/object_store_test.dir/store/object_store_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/store/CMakeFiles/tml_store.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tml_core.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tml_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
