file(REMOVE_RECURSE
  "CMakeFiles/ptml_test.dir/store/ptml_test.cc.o"
  "CMakeFiles/ptml_test.dir/store/ptml_test.cc.o.d"
  "ptml_test"
  "ptml_test.pdb"
  "ptml_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptml_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
