# Empty dependencies file for ptml_test.
# This may be replaced when dependencies are built.
