# Empty compiler generated dependencies file for frontend_negative_test.
# This may be replaced when dependencies are built.
