file(REMOVE_RECURSE
  "CMakeFiles/frontend_negative_test.dir/frontend/frontend_negative_test.cc.o"
  "CMakeFiles/frontend_negative_test.dir/frontend/frontend_negative_test.cc.o.d"
  "frontend_negative_test"
  "frontend_negative_test.pdb"
  "frontend_negative_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frontend_negative_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
