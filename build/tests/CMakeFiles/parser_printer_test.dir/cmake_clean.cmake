file(REMOVE_RECURSE
  "CMakeFiles/parser_printer_test.dir/core/parser_printer_test.cc.o"
  "CMakeFiles/parser_printer_test.dir/core/parser_printer_test.cc.o.d"
  "parser_printer_test"
  "parser_printer_test.pdb"
  "parser_printer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parser_printer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
