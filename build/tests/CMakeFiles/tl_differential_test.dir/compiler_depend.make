# Empty compiler generated dependencies file for tl_differential_test.
# This may be replaced when dependencies are built.
