file(REMOVE_RECURSE
  "CMakeFiles/tl_differential_test.dir/frontend/tl_differential_test.cc.o"
  "CMakeFiles/tl_differential_test.dir/frontend/tl_differential_test.cc.o.d"
  "tl_differential_test"
  "tl_differential_test.pdb"
  "tl_differential_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tl_differential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
