// Adaptive optimization: the database optimizes itself while it runs.
//
// The paper's `reflect.optimize` (§4.1) is explicit — somebody has to ask
// for barrier collapse.  The adaptive subsystem (src/adaptive) closes the
// loop: the TVM attributes executed instructions to every function, a
// background manager watches the resulting hotness profile, and once a
// persistent closure crosses the promotion threshold it is reflectively
// optimized on a worker thread and its code record atomically swapped —
// the running program picks the optimized version up at its next call
// through the OID.  No restart, no manual optimize call.
//
// This example installs the paper's complex-number module plus a client,
// runs the client in a plain loop, and prints the moment the swap lands.
//
// Build & run:  ./build/examples/adaptive_optimization [store-file]
//
// With a store-file argument the universe runs on that persistent store,
// opened in salvage mode: a store damaged by a crash or bit-rot degrades
// (quarantined records, cold caches) instead of refusing to start, which
// is exactly what tests/runtime/salvage_e2e_test.cc exercises by flipping
// bytes in a live store and re-running this flow.

#include <chrono>
#include <cstdio>

#include "adaptive/manager.h"
#include "runtime/universe.h"

int main(int argc, char** argv) {
  using namespace tml;
  using vm::Value;

  store::OpenOptions open_opts;
  open_opts.recovery = store::RecoveryPolicy::kSalvage;
  auto s = store::ObjectStore::Open(argc > 1 ? argv[1] : "", open_opts);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.status().ToString().c_str());
    return 1;
  }
  if (s->get()->salvage_report().salvaged) {
    const store::SalvageReport& sr = s->get()->salvage_report();
    std::printf("store salvaged: %llu record(s) quarantined, %llu byte(s) "
                "truncated\n",
                static_cast<unsigned long long>(sr.quarantined_records),
                static_cast<unsigned long long>(sr.truncated_bytes));
  }
  rt::Universe u(s->get());

  // The §4.1 running example: an ADT behind a module barrier.
  if (!u.InstallSource("complex",
                       "fun make(x, y) = array(x, y) end\n"
                       "fun getx(c) = c[0] end\n"
                       "fun gety(c) = c[1] end",
                       fe::BindingMode::kLibrary)
           .ok() ||
      !u.InstallSource("app",
                       "fun cabs(c) ="
                       "  sqrt(real(getx(c) * getx(c) + gety(c) * gety(c))) "
                       "end",
                       fe::BindingMode::kLibrary)
           .ok()) {
    return 1;
  }
  Oid cabs = *u.Lookup("app", "cabs");

  // Switch the adaptive optimizer on: it profiles, decides, optimizes and
  // swaps entirely on its own.  (The universe owns and stops the worker.)
  adaptive::AdaptiveOptions opts;
  opts.policy.hot_steps = 5000;  // promote early for the demo
  opts.poll_interval = std::chrono::milliseconds(5);
  adaptive::EnableAdaptive(&u, opts);

  Value margs[] = {Value::Int(3), Value::Int(4)};
  auto c = u.Call(*u.Lookup("complex", "make"), margs);
  if (!c.ok()) return 1;
  Value cargs[] = {c->value};

  std::printf("calling app.cabs(3+4i) in a loop; no manual optimize...\n\n");
  uint64_t last_steps = 0;
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  for (uint64_t i = 1; std::chrono::steady_clock::now() < deadline; ++i) {
    auto r = u.Call(cabs, cargs);
    if (!r.ok() || r->value.r != 5.0) return 1;
    if (r->steps != last_steps) {
      std::printf("call %8llu: |3+4i| = %.1f in %llu TVM steps%s\n",
                  static_cast<unsigned long long>(i), r->value.r,
                  static_cast<unsigned long long>(r->steps),
                  last_steps != 0 && r->steps < last_steps
                      ? "   <-- optimized code swapped in"
                      : "");
      if (last_steps != 0 && r->steps < last_steps) {
        rt::AdaptiveCounters ac = u.adaptive_counters();
        std::printf(
            "\nadaptive counters: polls=%llu promotions=%llu backoffs=%llu "
            "stale_rejections=%llu\n",
            static_cast<unsigned long long>(ac.polls),
            static_cast<unsigned long long>(ac.promotions),
            static_cast<unsigned long long>(ac.backoffs),
            static_cast<unsigned long long>(ac.stale_rejections));
        return 0;
      }
      last_steps = r->steps;
    }
  }
  std::printf("no promotion within the deadline\n");
  return 1;
}
