// Integrated program and query optimization (paper §4.2, Fig. 4).
//
// The SQL statement
//     select Target(x) from Rel x where Pred(x)
// is represented as an ordinary TML term over the `select`/`project`
// primitives; algebraic query rules (merge-select, trivial-exists) are TML
// rewrites, and the program optimizer cleans up the β-redexes they leave —
// the two optimizers invoke each other exactly as in Fig. 4.
//
// Build & run:  ./build/examples/query_optimization

#include <cstdio>

#include "core/optimizer.h"
#include "core/parser.h"
#include "core/printer.h"
#include "prims/standard.h"
#include "query/relation.h"
#include "query/rewrite.h"
#include "vm/codegen.h"
#include "vm/vm.h"

int main() {
  using namespace tml;

  // σ(b > 100)(σ(a < 500)(R)), then count — the paper's nested selection.
  const char* kQuery =
      "(proc (r ce cc)"
      " (select (proc (t pce pcc)"
      "           ([] t 0 pce (cont (v)"
      "            (< v 500 (cont () (pcc true)) (cont () (pcc false))))))"
      "   r ce"
      "   (cont (tmp)"
      "     (select (proc (t2 qce qcc)"
      "               ([] t2 1 qce (cont (w)"
      "                (> w 100 (cont () (qcc true)) (cont () (qcc false))))))"
      "       tmp ce"
      "       (cont (out) (card out cc))))))";

  ir::Module m;
  auto parsed = ir::ParseValueText(&m, prims::StandardRegistry(), kQuery);
  if (!parsed.ok()) {
    std::printf("%s\n", parsed.status().ToString().c_str());
    return 1;
  }
  const ir::Abstraction* prog = ir::Cast<ir::Abstraction>(parsed->value);
  std::printf("-- naive query plan (two passes over R) --\n%s\n\n",
              ir::PrintValue(m, prog).c_str());

  // Query rewriting + program optimization to a joint fixpoint.
  query::QueryRewriteStats qstats;
  const ir::Abstraction* opt =
      query::OptimizeWithQueries(&m, prog, {}, {}, nullptr, &qstats);
  std::printf("-- after merge-select + cleanup (one pass, fused predicate) "
              "--\n%s\n\n",
              ir::PrintValue(m, opt).c_str());
  std::printf("query rewrites: %s\n\n", qstats.ToString().c_str());

  // Execute both against a small relation.
  query::Relation rel;
  rel.columns = {"a", "b"};
  for (int i = 0; i < 1000; ++i) {
    rel.tuples.push_back({int64_t{(i * 37) % 1000}, int64_t{i}});
  }

  const std::pair<const char*, const ir::Abstraction*> plans[] = {
      {"naive", prog}, {"optimized", opt}};
  for (const auto& [label, term] : plans) {
    vm::CodeUnit unit;
    auto fn = vm::CompileProc(&unit, m, term, label);
    if (!fn.ok()) {
      std::printf("%s: %s\n", label, fn.status().ToString().c_str());
      return 1;
    }
    vm::VM vm;
    vm::Value args[] = {query::RelationValue(rel, vm.heap())};
    vm.Pin(args[0]);
    auto r = vm.Run(*fn, args);
    std::printf("%-10s -> %s matching tuples   [%llu instructions]\n", label,
                vm::ToString(r->value).c_str(),
                static_cast<unsigned long long>(r->steps));
  }
  return 0;
}
