// Persistent code: PTML records surviving process restarts.
//
// The paper's premise is that intermediate code is a *database object*: the
// compiler back end attaches a compact persistent TML tree (PTML) to every
// function, and the store keeps it durably next to the executable code and
// the closure records.  This example writes a function's PTML to a store
// file, "restarts" (reopens the file), decodes the tree back, optimizes it,
// and runs it — code as data, across process lifetimes.
//
// Build & run:  ./build/examples/persistent_store

#include <cstdio>
#include <string>

#include "core/optimizer.h"
#include "core/parser.h"
#include "core/printer.h"
#include "prims/standard.h"
#include "store/object_store.h"
#include "store/ptml.h"
#include "vm/codegen.h"
#include "vm/vm.h"

int main() {
  using namespace tml;
  const std::string path = "/tmp/tml_example_store.db";
  std::remove(path.c_str());

  Oid ptml_oid = kNullOid;
  {
    // --- process 1: compile a function and persist its TML tree --------
    ir::Module m;
    auto parsed = ir::ParseValueText(
        &m, prims::StandardRegistry(),
        "(proc (n ce cc)"
        " (Y (proc (/ c0 for c)"
        "      (c (cont () (for 1 0))"
        "         (cont (i acc)"
        "           (> i n"
        "              (cont () (cc acc))"
        "              (cont ()"
        "                (+ acc i ce (cont (a2)"
        "                  (+ i 1 ce (cont (t2) (for t2 a2))))))))))))");
    if (!parsed.ok()) {
      std::printf("%s\n", parsed.status().ToString().c_str());
      return 1;
    }
    const ir::Abstraction* prog = ir::Cast<ir::Abstraction>(parsed->value);
    std::string ptml = store::EncodePtml(m, prog);
    std::printf("process 1: term of %zu nodes -> %zu PTML bytes\n",
                1 + ir::TermSize(prog->body()), ptml.size());

    auto s = store::ObjectStore::Open(path);
    auto oid = (*s)->Allocate(store::ObjType::kPtml, ptml);
    ptml_oid = *oid;
    (void)(*s)->SetRoot("sum-function", ptml_oid);
    Status st = (*s)->Commit();
    std::printf("process 1: committed as <oid %llu> (%s)\n",
                static_cast<unsigned long long>(ptml_oid),
                st.ToString().c_str());
  }

  {
    // --- process 2: reopen, decode, optimize, execute ------------------
    auto s = store::ObjectStore::Open(path);
    if (!s.ok()) {
      std::printf("%s\n", s.status().ToString().c_str());
      return 1;
    }
    auto root = (*s)->GetRoot("sum-function");
    auto obj = (*s)->Get(*root);
    std::printf("\nprocess 2: loaded %zu PTML bytes from disk\n",
                obj->bytes.size());

    ir::Module m;
    auto decoded =
        store::DecodePtml(&m, prims::StandardRegistry(), obj->bytes);
    if (!decoded.ok()) {
      std::printf("%s\n", decoded.status().ToString().c_str());
      return 1;
    }
    const ir::Abstraction* prog = ir::Optimize(&m, decoded->abs);
    std::printf("process 2: decoded + optimized:\n%s\n",
                ir::PrintValue(m, prog).c_str());

    vm::CodeUnit unit;
    auto fn = vm::CompileProc(&unit, m, prog, "sum");
    vm::VM vm;
    vm::Value args[] = {vm::Value::Int(100)};
    auto r = vm.Run(*fn, args);
    std::printf("process 2: sum(100) = %s\n",
                vm::ToString(r->value).c_str());
  }
  std::remove(path.c_str());
  return 0;
}
