// Quickstart: parse a TML term, inspect it, optimize it, execute it.
//
// TML is the CPS intermediate representation of the paper — six node kinds,
// eight rewrite rules.  This example walks the smallest end-to-end path:
//
//   text --parse--> TML --validate--> --optimize--> TML --codegen--> TVM
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/module.h"
#include "core/optimizer.h"
#include "core/parser.h"
#include "core/printer.h"
#include "core/validate.h"
#include "prims/standard.h"
#include "vm/codegen.h"
#include "vm/vm.h"

int main() {
  using namespace tml;

  // A TML program is a proc abstraction λ(params.. ce cc): `ce` receives
  // exceptions, `cc` the result.  This one computes (x*6 + 2) with a
  // constant subterm (4*10) left for the optimizer.
  const char* kText =
      "(proc (x ce cc)"
      "  (* 4 10 ce (cont (forty)"
      "    (* x 6 ce (cont (t)"
      "      (+ t 2 ce (cont (r)"
      "        (- r forty ce cc))))))))";

  ir::Module m;
  auto parsed = ir::ParseValueText(&m, prims::StandardRegistry(), kText);
  if (!parsed.ok()) {
    std::printf("parse error: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  const ir::Abstraction* prog = ir::Cast<ir::Abstraction>(parsed->value);

  // Well-formedness: the five §2.2 constraints.
  Status st = ir::Validate(m, prog);
  std::printf("validates: %s\n\n", st.ToString().c_str());

  std::printf("-- input TML --\n%s\n\n", ir::PrintValue(m, prog).c_str());

  // The two-phase optimizer: reduction (subst/remove/reduce/eta/fold/...)
  // alternating with expansion (inlining), §3.
  ir::OptimizerStats stats;
  const ir::Abstraction* opt = ir::Optimize(&m, prog, {}, &stats);
  std::printf("-- optimized TML --\n%s\n\n", ir::PrintValue(m, opt).c_str());
  std::printf("optimizer: %s\n\n", stats.ToString().c_str());

  // Compile to TVM bytecode and run.
  vm::CodeUnit unit;
  auto fn = vm::CompileProc(&unit, m, opt, "quickstart");
  if (!fn.ok()) {
    std::printf("codegen error: %s\n", fn.status().ToString().c_str());
    return 1;
  }
  std::printf("-- TVM bytecode --\n%s\n", (*fn)->Disassemble().c_str());

  vm::VM vm;
  vm::Value args[] = {vm::Value::Int(7)};
  auto result = vm.Run(*fn, args);
  if (!result.ok()) {
    std::printf("run error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("quickstart(7) = %s  (in %llu instructions)\n",
              vm::ToString(result->value).c_str(),
              static_cast<unsigned long long>(result->steps));
  return 0;
}
