// Code shipping (paper §6): "we are also very interested in exploiting TML
// for other tasks in data-intensive applications, like code shipping in
// distributed systems [Mathiske et al. 1995]".
//
// PTML makes compiled functions *mobile*: a producer system encodes a
// function's TML tree to bytes; a consumer system — a different store, a
// different VM — decodes them, re-optimizes for its own bindings, generates
// code and runs.  Here the "wire" is a std::string; everything else is the
// real pipeline.
//
// Build & run:  ./build/examples/code_shipping

#include <cstdio>
#include <string>

#include "core/optimizer.h"
#include "core/printer.h"
#include "frontend/compile.h"
#include "prims/standard.h"
#include "store/ptml.h"
#include "vm/codegen.h"
#include "vm/vm.h"

int main() {
  using namespace tml;

  // ---- producer: compile a TL function and put its TML on the wire ----
  std::string wire;
  {
    fe::CompileOptions copts;  // direct binding: a self-contained function
    auto unit = fe::Compile(
        "fun horner(x) ="
        "  let a = array(3, -2, 0, 7, 1) in"  // 3x^4 - 2x^3 + 7x + 1
        "  var acc := 0 in"
        "  begin"
        "    for i = 0 upto size(a) - 1 do acc := acc * x + a[i] end;"
        "    acc"
        "  end "
        "end",
        prims::StandardRegistry(), copts);
    if (!unit.ok()) {
      std::printf("%s\n", unit.status().ToString().c_str());
      return 1;
    }
    const auto& fn = unit->functions[0];
    wire = store::EncodePtml(*unit->module, fn.abs);
    std::printf("producer: shipped 'horner' as %zu PTML bytes\n",
                wire.size());
  }

  // ---- consumer: decode, optimize locally, compile, execute -----------
  {
    ir::Module m;
    auto decoded = store::DecodePtml(&m, prims::StandardRegistry(), wire);
    if (!decoded.ok()) {
      std::printf("%s\n", decoded.status().ToString().c_str());
      return 1;
    }
    if (!decoded->free_vars.empty()) {
      std::printf("consumer: refusing code with unbound identifiers\n");
      return 1;
    }
    const ir::Abstraction* prog = ir::Optimize(&m, decoded->abs);
    vm::CodeUnit unit;
    auto fn = vm::CompileProc(&unit, m, prog, "horner");
    if (!fn.ok()) {
      std::printf("%s\n", fn.status().ToString().c_str());
      return 1;
    }
    vm::VM vm;
    for (int64_t x : {0, 1, 2, 5}) {
      vm::Value args[] = {vm::Value::Int(x)};
      auto r = vm.Run(*fn, args);
      if (!r.ok()) {
        std::printf("%s\n", r.status().ToString().c_str());
        return 1;
      }
      std::printf("consumer: horner(%lld) = %s\n",
                  static_cast<long long>(x),
                  vm::ToString(r->value).c_str());
    }
  }
  return 0;
}
