// tlc — a small command-line compiler/runner for TL programs.
//
//   tlc <file.tl> <function> [int args...]      run on the TVM
//   options:
//     --library      bind operators through stdlib closures (Tycoon mode)
//     --static       run the local static optimizer per function
//     --reflect      reflect.optimize the entry point before running
//     --emit-tml     print each function's TML instead of running
//     --emit-code    print the TVM disassembly instead of running
//
// Example:
//   echo 'fun tri(n) = var s := 0 in
//           begin for i = 1 upto n do s := s + i end; s end end' > /tmp/t.tl
//   ./build/examples/tlc /tmp/t.tl tri 100
//   ./build/examples/tlc --library --reflect /tmp/t.tl tri 100

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/printer.h"
#include "core/validate.h"
#include "prims/standard.h"
#include "runtime/universe.h"
#include "vm/codegen.h"

int main(int argc, char** argv) {
  using namespace tml;
  bool library = false, static_opt = false, reflect = false;
  bool emit_tml = false, emit_code = false;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--library") library = true;
    else if (a == "--static") static_opt = true;
    else if (a == "--reflect") reflect = true;
    else if (a == "--emit-tml") emit_tml = true;
    else if (a == "--emit-code") emit_code = true;
    else positional.push_back(a);
  }
  if (positional.size() < 1) {
    std::fprintf(stderr,
                 "usage: tlc [--library] [--static] [--reflect] "
                 "[--emit-tml|--emit-code] <file.tl> [function args...]\n");
    return 2;
  }
  std::ifstream in(positional[0]);
  if (!in) {
    std::fprintf(stderr, "tlc: cannot open %s\n", positional[0].c_str());
    return 2;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  std::string source = ss.str();

  fe::BindingMode mode =
      library ? fe::BindingMode::kLibrary : fe::BindingMode::kDirect;

  if (emit_tml) {
    fe::CompileOptions copts;
    copts.binding = mode;
    auto unit = fe::Compile(source, prims::StandardRegistry(), copts);
    if (!unit.ok()) {
      std::fprintf(stderr, "tlc: %s\n", unit.status().ToString().c_str());
      return 1;
    }
    for (const auto& fn : unit->functions) {
      std::printf(";; %s (free: ", fn.name.c_str());
      for (size_t i = 0; i < fn.free_names.size(); ++i) {
        std::printf("%s%s", i ? " " : "", fn.free_names[i].c_str());
      }
      std::printf(")\n%s\n\n",
                  ir::PrintValue(*unit->module, fn.abs).c_str());
    }
    return 0;
  }

  auto store = store::ObjectStore::Open("");
  rt::Universe u(store->get());
  rt::InstallOptions iopts;
  iopts.static_optimize = static_opt;
  Status st = u.InstallSource("main", source, mode, iopts);
  if (!st.ok()) {
    std::fprintf(stderr, "tlc: %s\n", st.ToString().c_str());
    return 1;
  }

  if (emit_code) {
    fe::CompileOptions copts;
    copts.binding = mode;
    auto unit = fe::Compile(source, prims::StandardRegistry(), copts);
    for (const auto& fn : unit->functions) {
      vm::CodeUnit cu;
      auto code = vm::CompileProc(&cu, *unit->module, fn.abs, fn.name);
      if (code.ok()) std::printf("%s\n", (*code)->Disassemble().c_str());
    }
    return 0;
  }

  if (positional.size() < 2) {
    std::fprintf(stderr, "tlc: no function to run\n");
    return 2;
  }
  auto f = u.Lookup("main", positional[1]);
  if (!f.ok()) {
    std::fprintf(stderr, "tlc: %s\n", f.status().ToString().c_str());
    return 1;
  }
  Oid target = *f;
  if (reflect) {
    auto r = u.ReflectOptimize(target);
    if (!r.ok()) {
      std::fprintf(stderr, "tlc: reflect: %s\n",
                   r.status().ToString().c_str());
      return 1;
    }
    target = *r;
  }
  std::vector<vm::Value> args;
  for (size_t i = 2; i < positional.size(); ++i) {
    args.push_back(vm::Value::Int(std::strtoll(positional[i].c_str(),
                                               nullptr, 10)));
  }
  auto r = u.Call(target, args);
  if (!r.ok()) {
    std::fprintf(stderr, "tlc: %s\n", r.status().ToString().c_str());
    return 1;
  }
  std::string out = u.vm()->TakeOutput();
  if (!out.empty()) std::fputs(out.c_str(), stdout);
  std::printf("%s%s = %s   [%llu instructions]\n", positional[1].c_str(),
              r->raised ? " raised" : "", vm::ToString(r->value).c_str(),
              static_cast<unsigned long long>(r->steps));
  return r->raised ? 1 : 0;
}
