// The paper's §4.1 running example, end to end.
//
// Module `complex` hides the representation of complex numbers behind
// accessor functions; client `abs` can only call them through the module
// barrier.  At compile time nothing can be inlined — the bindings are
// established at link time, as OIDs in the persistent store.  At run time,
//
//     let optimizedAbs = reflect.optimize(abs)
//
// maps the PTML records back to TML, re-establishes the R-value bindings of
// the closure record, collapses all contributing declarations into one
// scope, and lets the ordinary TML optimizer inline across the barrier.
//
// Build & run:  ./build/examples/reflective_optimization

#include <cstdio>

#include "core/printer.h"
#include "runtime/universe.h"

int main() {
  using namespace tml;

  auto store = store::ObjectStore::Open("");  // in-memory store
  rt::Universe u(store->get());

  // module complex: the hidden ADT (§4.1).
  Status st = u.InstallSource(
      "complex",
      "fun make(x, y) = array(x, y) end\n"
      "fun getx(c) = c[0] end\n"
      "fun gety(c) = c[1] end",
      fe::BindingMode::kLibrary);
  if (!st.ok()) {
    std::printf("%s\n", st.ToString().c_str());
    return 1;
  }

  // let abs(c : complex.T) : Real = sqrt(x(c)*x(c) + y(c)*y(c))
  st = u.InstallSource(
      "app",
      "fun cabs(c) ="
      "  sqrt(real(getx(c) * getx(c) + gety(c) * gety(c))) "
      "end",
      fe::BindingMode::kLibrary);
  if (!st.ok()) {
    std::printf("%s\n", st.ToString().c_str());
    return 1;
  }

  Oid make = *u.Lookup("complex", "make");
  Oid cabs = *u.Lookup("app", "cabs");

  vm::Value margs[] = {vm::Value::Int(3), vm::Value::Int(4)};
  auto c = u.Call(make, margs);
  vm::Value cargs[] = {c->value};

  auto before = u.Call(cabs, cargs);
  std::printf("abs(complex.new(3 4))          = %s   [%llu instructions]\n",
              vm::ToString(before->value).c_str(),
              static_cast<unsigned long long>(before->steps));

  // Show the term the reflective optimizer assembles: the §4.1 "single
  // scope" with every contributing declaration bound through Y.
  ir::Module m;
  auto term = u.ReflectTerm(cabs, &m);
  std::printf("\n-- abs with R-value bindings re-established (input to the "
              "optimizer) --\n%s\n",
              ir::PrintValue(m, *term).c_str());

  // let optimizedAbs = reflect.optimize(abs)
  rt::ReflectStats stats;
  auto optimized = u.ReflectOptimize(cabs, {}, &stats);
  if (!optimized.ok()) {
    std::printf("%s\n", optimized.status().ToString().c_str());
    return 1;
  }
  auto after = u.Call(*optimized, cargs);
  std::printf("\noptimizedAbs(complex.new(3 4)) = %s   [%llu instructions]\n",
              vm::ToString(after->value).c_str(),
              static_cast<unsigned long long>(after->steps));
  std::printf(
      "\nreflect.optimize: %zu bindings collapsed, term %zu -> %zu nodes\n",
      stats.bindings_resolved, stats.input_term_size,
      stats.output_term_size);
  std::printf("rewrites: %s\n", stats.optimizer.rewrite.ToString().c_str());
  std::printf("speedup: %.2fx fewer instructions per call\n",
              static_cast<double>(before->steps) / after->steps);
  return 0;
}
