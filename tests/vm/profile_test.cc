// Per-function execution profiling in the TVM: calls and steps are
// attributed to the Function whose frame executed them, so nested CallSync
// work (query predicate closures, §4.2) lands on the callee — the signal
// the adaptive optimizer promotes on.

#include <gtest/gtest.h>

#include "query/relation.h"
#include "tests/test_util.h"
#include "vm/codegen.h"
#include "vm/vm.h"

namespace tml {
namespace {

using ir::Abstraction;
using ir::Module;
using query::Relation;
using test::MustParseProgram;
using vm::FnSample;
using vm::Value;

// select over `r` with an inline predicate: the predicate compiles to its
// own Function, called once per tuple through CallSync.
const char* kSelectProg =
    "(proc (r ce cc)"
    " (select (proc (t pce pcc)"
    "           ([] t 0 pce (cont (v)"
    "            (< v 50 (cont () (pcc true)) (cont () (pcc false))))))"
    "   r ce"
    "   (cont (out) (card out cc))))";

Relation TestRelation(int n) {
  Relation rel;
  rel.columns = {"a", "b"};
  for (int i = 0; i < n; ++i) {
    rel.tuples.push_back({int64_t{(i * 7) % 100}, int64_t{i}});
  }
  return rel;
}

uint64_t TotalSampledSteps(const std::vector<FnSample>& samples) {
  uint64_t total = 0;
  for (const FnSample& s : samples) total += s.steps;
  return total;
}

const FnSample* SampleFor(const std::vector<FnSample>& samples,
                          const vm::Function* fn) {
  for (const FnSample& s : samples) {
    if (s.fn == fn) return &s;
  }
  return nullptr;
}

TEST(Profile, StepsAndCallsAttributedToFunction) {
  Module m;
  const Abstraction* prog =
      MustParseProgram(
          &m, "(proc (x ce cc) (+ x 1 ce (cont (y) (* y 2 ce cc))))");
  vm::CodeUnit unit;
  auto fn = vm::CompileProc(&unit, m, prog, "f");
  ASSERT_TRUE(fn.ok());
  vm::VM vm;
  Value args[] = {Value::Int(5)};
  auto r1 = vm.Run(*fn, args);
  ASSERT_TRUE(r1.ok());
  auto r2 = vm.Run(*fn, args);
  ASSERT_TRUE(r2.ok());

  auto samples = vm.SnapshotProfile();
  const FnSample* s = SampleFor(samples, *fn);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->calls, 2u);
  EXPECT_EQ(s->steps, r1->steps + r2->steps)
      << "all steps of a single-function run belong to that function";
}

TEST(Profile, NestedCallSyncStepsLandOnCallee) {
  Module m;
  const Abstraction* prog = MustParseProgram(&m, kSelectProg);
  vm::CodeUnit unit;
  auto fn = vm::CompileProc(&unit, m, prog, "q");
  ASSERT_TRUE(fn.ok());

  constexpr int kTuples = 64;
  vm::VM vm;
  Value args[] = {query::RelationValue(TestRelation(kTuples), vm.heap())};
  vm.Pin(args[0]);
  auto r = vm.Run(*fn, args);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_GT(r->value.i, 0);

  auto samples = vm.SnapshotProfile();
  ASSERT_EQ(samples.size(), 2u) << "outer proc + predicate subfunction";
  const FnSample* outer = SampleFor(samples, *fn);
  ASSERT_NE(outer, nullptr);
  const FnSample* pred =
      samples[0].fn == *fn ? &samples[1] : &samples[0];

  // The predicate ran once per tuple via CallSync, and its instruction
  // costs are attributed to it — not to the enclosing query function.
  EXPECT_EQ(outer->calls, 1u);
  EXPECT_EQ(pred->calls, static_cast<uint64_t>(kTuples));
  EXPECT_GT(pred->steps, 0u);
  EXPECT_LT(outer->steps, r->steps)
      << "predicate work must not be billed to the outer function";

  // Conservation: every step of the run is attributed to exactly one
  // function once all frames have been popped.
  EXPECT_EQ(TotalSampledSteps(samples), r->steps);
}

TEST(Profile, RaisedRunStillFlushesFrameSteps) {
  // A program whose nested call raises: the unwound frames' local step
  // counts must still be published to the profile.
  Module m;
  const Abstraction* prog = MustParseProgram(
      &m,
      "(proc (x ce cc)"
      " ((proc (y ice icc) (raise y)) x ce cc))");
  vm::CodeUnit unit;
  auto fn = vm::CompileProc(&unit, m, prog, "f");
  ASSERT_TRUE(fn.ok());
  vm::VM vm;
  Value args[] = {Value::Int(7)};
  auto r = vm.Run(*fn, args);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->raised);
  auto samples = vm.SnapshotProfile();
  EXPECT_EQ(TotalSampledSteps(samples), r->steps)
      << "unwinding must flush frame-local step counters";
}

TEST(Profile, DisabledProfilingKeepsMapEmpty) {
  Module m;
  const Abstraction* prog =
      MustParseProgram(&m, "(proc (x ce cc) (cc x))");
  vm::CodeUnit unit;
  auto fn = vm::CompileProc(&unit, m, prog, "id");
  ASSERT_TRUE(fn.ok());
  vm::VMOptions opts;
  opts.profile = false;
  vm::VM vm(nullptr, opts);
  Value args[] = {Value::Int(1)};
  ASSERT_TRUE(vm.Run(*fn, args).ok());
  EXPECT_TRUE(vm.SnapshotProfile().empty());
}

}  // namespace
}  // namespace tml
