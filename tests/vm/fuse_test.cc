// Superinstruction fusion (vm/fuse.h): pattern application and metadata,
// execution equivalence of fused vs unfused code — including jumps into
// the middle of a fused sequence, faults escaping from a non-final part,
// step-budget exhaustion between parts and a fused head as the last
// instruction — plus serialization of fused code records.

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "vm/code.h"
#include "vm/fuse.h"
#include "vm/vm.h"

namespace tml {
namespace {

using vm::Constant;
using vm::Function;
using vm::Instr;
using vm::Op;
using vm::Value;

Instr MakeInstr(Op op, uint16_t a = 0, uint16_t b = 0, uint16_t c = 0,
                int32_t d = 0) {
  Instr in;
  in.op = op;
  in.a = a;
  in.b = b;
  in.c = c;
  in.d = d;
  return in;
}

/// r1 = pool[0]; r2 = r1; ret r2 — the kLoadK+kMove prefix is a fused pair.
Function PairFn() {
  Function fn;
  fn.name = "pair";
  fn.num_params = 1;
  fn.num_regs = 3;
  fn.pool.push_back(Constant::Int(5));
  fn.code.push_back(MakeInstr(Op::kLoadK, 1, 0, 0, 0));
  fn.code.push_back(MakeInstr(Op::kMove, 2, 1));
  fn.code.push_back(MakeInstr(Op::kRet, 2));
  return fn;
}

struct RunObs {
  bool ok = false;
  std::string error;
  std::string value;
  bool raised = false;
  uint64_t steps = 0;
};

RunObs RunFn(const Function* fn, int64_t arg, uint64_t step_budget = 0) {
  vm::VMOptions opts;
  opts.step_budget = step_budget;
  vm::VM vm(nullptr, opts);
  Value args[] = {Value::Int(arg)};
  auto r = vm.Run(fn, args);
  RunObs obs;
  if (!r.ok()) {
    obs.error = r.status().ToString();
    return obs;
  }
  obs.ok = true;
  obs.value = vm::ToString(r->value);
  obs.raised = r->raised;
  obs.steps = r->steps;
  return obs;
}

void ExpectSameRun(const Function* unfused, const Function* fused,
                   int64_t arg, uint64_t step_budget = 0) {
  RunObs u = RunFn(unfused, arg, step_budget);
  RunObs f = RunFn(fused, arg, step_budget);
  EXPECT_EQ(u.ok, f.ok) << u.error << " vs " << f.error;
  EXPECT_EQ(u.error, f.error);
  EXPECT_EQ(u.value, f.value);
  EXPECT_EQ(u.raised, f.raised);
  EXPECT_EQ(u.steps, f.steps);
}

TEST(FuseTest, FusesPairAndIsIdempotent) {
  Function fn = PairFn();
  EXPECT_FALSE(vm::ContainsFusedOps(fn));
  vm::FuseStats st = vm::FuseSuperinstructions(&fn);
  EXPECT_EQ(st.pairs_fused, 1u);
  EXPECT_EQ(st.triples_fused, 0u);
  EXPECT_EQ(st.functions_touched, 1u);
  EXPECT_EQ(fn.code[0].op, Op::kFuseLoadKMove);
  // The trailing slot keeps its original instruction.
  EXPECT_EQ(fn.code[1].op, Op::kMove);
  EXPECT_TRUE(vm::ContainsFusedOps(fn));

  // Re-running the pass never re-fuses through a superinstruction.
  vm::FuseStats again = vm::FuseSuperinstructions(&fn);
  EXPECT_EQ(again.pairs_fused + again.triples_fused, 0u);
  EXPECT_EQ(fn.code[0].op, Op::kFuseLoadKMove);
}

TEST(FuseTest, TriplesWinOverPairs) {
  // kLoadK+kAddI+kJmp matches both the triple and the kLoadK+kAddI pair;
  // the longer pattern must win.
  Function fn;
  fn.name = "triple";
  fn.num_params = 1;
  fn.num_regs = 3;
  fn.pool.push_back(Constant::Int(1));
  fn.code.push_back(MakeInstr(Op::kLoadK, 1, 0, 0, 0));
  fn.code.push_back(MakeInstr(Op::kAddI, 2, 0, 1));
  fn.code.push_back(MakeInstr(Op::kJmp, 0, 0, 0, 3));
  fn.code.push_back(MakeInstr(Op::kRet, 2));
  vm::FuseStats st = vm::FuseSuperinstructions(&fn);
  EXPECT_EQ(st.triples_fused, 1u);
  EXPECT_EQ(fn.code[0].op, Op::kFuseLoadKAddIJmp);
  EXPECT_EQ(fn.code[1].op, Op::kAddI);
  EXPECT_EQ(fn.code[2].op, Op::kJmp);

  Function plain;
  plain.name = "triple";
  plain.num_params = 1;
  plain.num_regs = 3;
  plain.pool.push_back(Constant::Int(1));
  plain.code.push_back(MakeInstr(Op::kLoadK, 1, 0, 0, 0));
  plain.code.push_back(MakeInstr(Op::kAddI, 2, 0, 1));
  plain.code.push_back(MakeInstr(Op::kJmp, 0, 0, 0, 3));
  plain.code.push_back(MakeInstr(Op::kRet, 2));
  for (int64_t arg : {0, 7, -20}) ExpectSameRun(&plain, &fn, arg);
}

TEST(FuseTest, OpMetadataTables) {
  EXPECT_EQ(vm::OpWidth(Op::kLoadK), 1);
  EXPECT_EQ(vm::OpWidth(Op::kFuseLoadKMove), 2);
  EXPECT_EQ(vm::OpWidth(Op::kFuseLoadKAddIJmp), 3);
  EXPECT_TRUE(vm::IsFusedOp(Op::kFuseLoadKMove));
  EXPECT_FALSE(vm::IsFusedOp(Op::kRet));
  // A fused op keeps its first constituent's operand shape: the fused
  // slot keeps that instruction's operands.
  EXPECT_STREQ(vm::OpShape(Op::kFuseLoadKMove), vm::OpShape(Op::kLoadK));
  EXPECT_STREQ(vm::OpName(Op::kFuseLoadKMove), "loadk+move");
}

TEST(FuseTest, RunMatchesUnfused) {
  Function plain = PairFn();
  Function fused = PairFn();
  vm::FuseSuperinstructions(&fused);
  for (int64_t arg : {0, 42}) ExpectSameRun(&plain, &fused, arg);
  RunObs r = RunFn(&fused, 0);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value, "5");
  EXPECT_EQ(r.steps, 3u);  // fused execution still charges one step/slot
}

TEST(FuseTest, JumpIntoMiddleOfFusedSequenceIsValid) {
  // 0: jmp 2 / 1: loadk r1 / 2: move r2<-r0 / 3: ret r2.  Slots 1-2 fuse
  // into loadk+move; the jump lands on the *trailing* slot, which must
  // still execute as a plain kMove.
  auto build = [] {
    Function fn;
    fn.name = "midjump";
    fn.num_params = 1;
    fn.num_regs = 3;
    fn.pool.push_back(Constant::Int(7));
    fn.code.push_back(MakeInstr(Op::kJmp, 0, 0, 0, 2));
    fn.code.push_back(MakeInstr(Op::kLoadK, 1, 0, 0, 0));
    fn.code.push_back(MakeInstr(Op::kMove, 2, 0));
    fn.code.push_back(MakeInstr(Op::kRet, 2));
    return fn;
  };
  Function plain = build();
  Function fused = build();
  vm::FuseStats st = vm::FuseSuperinstructions(&fused);
  ASSERT_EQ(st.pairs_fused, 1u);
  ASSERT_EQ(fused.code[1].op, Op::kFuseLoadKMove);
  ASSERT_EQ(fused.code[2].op, Op::kMove);
  for (int64_t arg : {11, -4}) ExpectSameRun(&plain, &fused, arg);
  RunObs r = RunFn(&fused, 11);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value, "11");  // the jump skipped the loadk half entirely
}

TEST(FuseTest, FaultInFirstPartSkipsSecondPart) {
  // addi overflows on INT64_MAX + INT64_MAX; the second part is a jump
  // back to 0, so if the fused handler failed to escape after the fault
  // the test would spin forever (bounded by the step budget).
  auto build = [] {
    Function fn;
    fn.name = "faulty";
    fn.num_params = 1;
    fn.num_regs = 2;
    fn.code.push_back(MakeInstr(Op::kAddI, 1, 0, 0));
    fn.code.push_back(MakeInstr(Op::kJmp, 0, 0, 0, 2));
    fn.code.push_back(MakeInstr(Op::kRet, 1));
    return fn;
  };
  Function plain = build();
  Function fused = build();
  vm::FuseStats st = vm::FuseSuperinstructions(&fused);
  ASSERT_EQ(st.pairs_fused, 1u);
  ASSERT_EQ(fused.code[0].op, Op::kFuseAddIJmp);

  constexpr int64_t kMax = INT64_MAX;
  ExpectSameRun(&plain, &fused, kMax, /*step_budget=*/1000);
  RunObs r = RunFn(&fused, kMax, /*step_budget=*/1000);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.raised);            // overflow fault escaped as a raise
  EXPECT_EQ(r.steps, 1u);           // part B was never charged or run
  // The non-faulting path still runs both parts.
  ExpectSameRun(&plain, &fused, 3, /*step_budget=*/1000);
}

TEST(FuseTest, StepBudgetExhaustsBetweenParts) {
  // Budget of 1: the unfused program dies fetching its second
  // instruction; the fused program must die at the equivalent point — in
  // VM_FUSED_ARG between the two parts — with the same status.
  Function plain = PairFn();
  Function fused = PairFn();
  vm::FuseSuperinstructions(&fused);
  ExpectSameRun(&plain, &fused, 0, /*step_budget=*/1);
  RunObs r = RunFn(&fused, 0, /*step_budget=*/1);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("step budget"), std::string::npos) << r.error;
}

TEST(FuseTest, FusedHeadAsLastInstructionReportsPcPastEnd) {
  // A fused head whose trailing slot would lie past the end of the code
  // vector must fail exactly like the unfused program running off the
  // end.  The fusion pass never creates this (it bounds-checks), so the
  // fused opcode is planted by hand.
  Function plain;
  plain.name = "tail";
  plain.num_params = 1;
  plain.num_regs = 2;
  plain.pool.push_back(Constant::Int(5));
  plain.code.push_back(MakeInstr(Op::kLoadK, 1, 0, 0, 0));
  Function fused = plain;
  fused.code[0].op = Op::kFuseLoadKMove;
  ExpectSameRun(&plain, &fused, 0);
  RunObs r = RunFn(&fused, 0);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("pc past end"), std::string::npos) << r.error;
}

TEST(FuseTest, SerializationRoundtripsFusedCode) {
  Function fused = PairFn();
  vm::FuseSuperinstructions(&fused);
  std::string bytes = vm::SerializeFunction(fused);
  vm::CodeUnit unit;
  auto back = vm::DeserializeFunction(&unit, bytes);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ((*back)->code.size(), fused.code.size());
  EXPECT_EQ((*back)->code[0].op, Op::kFuseLoadKMove);
  EXPECT_EQ((*back)->code[1].op, Op::kMove);
  Function plain = PairFn();
  ExpectSameRun(&plain, *back, 9);
}

}  // namespace
}  // namespace tml
