// The dispatch-mode soundness property (DESIGN.md §12): the portable
// switch loop and the computed-goto threaded loop compile from the same
// handler bodies (vm/interp_loop.inc) and must be observably identical —
// same value, same raised flag, same printed output, same executed step
// count, same surviving heap object count — over the whole differential
// corpus.  The same must hold after the superinstruction fusion pass
// rewrites the code: fused execution charges one step per fused-away
// instruction, so even the step counts may not drift.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/module.h"
#include "core/validate.h"
#include "tests/test_util.h"
#include "tests/vm/corpus.h"
#include "vm/codegen.h"
#include "vm/fuse.h"
#include "vm/vm.h"

namespace tml {
namespace {

using ir::Abstraction;
using ir::Module;
using test::MustParseProgram;

struct Observed {
  bool run_ok = false;
  std::string run_error;
  std::string value;
  bool raised = false;
  std::string output;
  uint64_t steps = 0;
  size_t heap_objects = 0;
};

Observed RunUnder(const vm::Function* fn, int64_t arg,
                  vm::DispatchMode mode) {
  vm::VMOptions opts;
  opts.dispatch = mode;
  vm::VM vm(nullptr, opts);
  EXPECT_EQ(vm.dispatch_mode(), mode);
  vm::Value args[] = {vm::Value::Int(arg)};
  auto res = vm.Run(fn, args);
  Observed out;
  if (!res.ok()) {
    out.run_error = res.status().ToString();
    return out;
  }
  out.run_ok = true;
  out.value = vm::ToString(res->value);
  out.raised = res->raised;
  out.output = vm.TakeOutput();
  out.steps = res->steps;
  out.heap_objects = vm.heap()->num_objects();
  return out;
}

void ExpectSame(const Observed& a, const Observed& b, const char* what,
                const char* name, int64_t arg) {
  ASSERT_EQ(a.run_ok, b.run_ok)
      << what << " " << name << " arg=" << arg << ": " << a.run_error << " vs "
      << b.run_error;
  EXPECT_EQ(a.value, b.value) << what << " " << name << " arg=" << arg;
  EXPECT_EQ(a.raised, b.raised) << what << " " << name << " arg=" << arg;
  EXPECT_EQ(a.output, b.output) << what << " " << name << " arg=" << arg;
  EXPECT_EQ(a.steps, b.steps) << what << " " << name << " arg=" << arg;
  EXPECT_EQ(a.heap_objects, b.heap_objects)
      << what << " " << name << " arg=" << arg;
}

class DispatchDifferentialTest
    : public ::testing::TestWithParam<test::CorpusProgram> {};

TEST_P(DispatchDifferentialTest, SwitchThreadedAndFusedAgree) {
  const test::CorpusProgram& c = GetParam();
  const bool threaded = vm::ThreadedDispatchAvailable();
  for (int64_t arg : c.args) {
    Module m;
    const Abstraction* prog = MustParseProgram(&m, c.text);
    ASSERT_NE(prog, nullptr);
    ASSERT_OK(ir::Validate(m, prog));

    vm::CodeUnit unit;
    auto fn = vm::CompileProc(&unit, m, prog, "diff");
    ASSERT_TRUE(fn.ok()) << fn.status().ToString();

    // Unfused reference: the portable switch loop.
    Observed sw = RunUnder(*fn, arg, vm::DispatchMode::kSwitch);
    if (threaded) {
      Observed th = RunUnder(*fn, arg, vm::DispatchMode::kThreaded);
      ExpectSame(sw, th, "switch-vs-threaded", c.name, arg);
    }

    // Fuse a fresh compile of the same program and re-run under both
    // loops; every observable — including the step count — must match
    // the unfused reference.
    vm::CodeUnit funit;
    auto ffn = vm::CompileProc(&funit, m, prog, "diff");
    ASSERT_TRUE(ffn.ok()) << ffn.status().ToString();
    vm::FuseSuperinstructions(const_cast<vm::Function*>(*ffn));
    Observed fsw = RunUnder(*ffn, arg, vm::DispatchMode::kSwitch);
    ExpectSame(sw, fsw, "unfused-vs-fused(switch)", c.name, arg);
    if (threaded) {
      Observed fth = RunUnder(*ffn, arg, vm::DispatchMode::kThreaded);
      ExpectSame(sw, fth, "unfused-vs-fused(threaded)", c.name, arg);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, DispatchDifferentialTest,
    ::testing::ValuesIn(test::kDifferentialCorpus),
    [](const ::testing::TestParamInfo<test::CorpusProgram>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace tml
