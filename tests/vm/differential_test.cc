// The master soundness property (DESIGN.md §5): every program must produce
// identical observable results on the reference CPS interpreter and on the
// TVM, before optimization, after the reduction pass, and after the full
// optimizer — over a corpus of programs and a sweep of inputs.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/module.h"
#include "core/optimizer.h"
#include "core/printer.h"
#include "core/rewrite.h"
#include "core/validate.h"
#include "interp/interp.h"
#include "tests/test_util.h"
#include "tests/vm/corpus.h"
#include "vm/codegen.h"
#include "vm/vm.h"

namespace tml {
namespace {

using ir::Abstraction;
using ir::Module;
using test::MustParseProgram;

using Corpus = test::CorpusProgram;

struct Observed {
  std::string value;
  bool raised = false;
  std::string output;
};

Observed ObserveInterp(const Module& m, const Abstraction* prog,
                       int64_t arg) {
  auto res = interp::Run(m, prog, {interp::IValue{arg}});
  EXPECT_TRUE(res.ok()) << "interp: " << res.status().ToString();
  if (!res.ok()) return {};
  return {interp::ToString(res->value), res->raised, res->output};
}

Observed ObserveVm(const Module& m, const Abstraction* prog, int64_t arg) {
  vm::CodeUnit unit;
  auto fn = vm::CompileProc(&unit, m, prog, "diff");
  EXPECT_TRUE(fn.ok()) << "codegen: " << fn.status().ToString() << "\n"
                       << ir::PrintValue(m, prog);
  if (!fn.ok()) return {};
  vm::VM vm;
  vm::Value args[] = {vm::Value::Int(arg)};
  auto res = vm.Run(*fn, args);
  EXPECT_TRUE(res.ok()) << "vm: " << res.status().ToString() << "\n"
                        << (*fn)->Disassemble();
  if (!res.ok()) return {};
  return {vm::ToString(res->value), res->raised, vm.TakeOutput()};
}


class DifferentialTest : public ::testing::TestWithParam<Corpus> {};

TEST_P(DifferentialTest, InterpAndVmAgreeAtEveryOptLevel) {
  const Corpus& c = GetParam();
  for (int64_t arg : c.args) {
    Module m;
    const Abstraction* prog = MustParseProgram(&m, c.text);
    ASSERT_NE(prog, nullptr);
    ASSERT_OK(ir::Validate(m, prog));

    Observed base_i = ObserveInterp(m, prog, arg);

    // Level 0: unoptimized.
    Observed vm0 = ObserveVm(m, prog, arg);
    EXPECT_EQ(base_i.value, vm0.value) << c.name << " arg=" << arg;
    EXPECT_EQ(base_i.raised, vm0.raised) << c.name << " arg=" << arg;
    EXPECT_EQ(base_i.output, vm0.output) << c.name << " arg=" << arg;

    // Level 1: reduction pass only.
    const Abstraction* reduced = ir::Reduce(&m, prog);
    ASSERT_OK(ir::Validate(m, reduced));
    Observed i1 = ObserveInterp(m, reduced, arg);
    Observed v1 = ObserveVm(m, reduced, arg);
    EXPECT_EQ(base_i.value, i1.value) << c.name << " (reduce/interp)";
    EXPECT_EQ(base_i.raised, i1.raised) << c.name;
    EXPECT_EQ(base_i.value, v1.value) << c.name << " (reduce/vm)";
    EXPECT_EQ(base_i.raised, v1.raised) << c.name;
    EXPECT_EQ(base_i.output, v1.output) << c.name;

    // Level 2: full optimizer (reduction + expansion rounds).
    const Abstraction* optimized = ir::Optimize(&m, prog);
    ASSERT_OK(ir::Validate(m, optimized));
    Observed i2 = ObserveInterp(m, optimized, arg);
    Observed v2 = ObserveVm(m, optimized, arg);
    EXPECT_EQ(base_i.value, i2.value)
        << c.name << " (optimize/interp)\n"
        << ir::PrintValue(m, optimized);
    EXPECT_EQ(base_i.raised, i2.raised) << c.name;
    EXPECT_EQ(base_i.value, v2.value) << c.name << " (optimize/vm)";
    EXPECT_EQ(base_i.raised, v2.raised) << c.name;
    EXPECT_EQ(base_i.output, v2.output) << c.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, DifferentialTest, ::testing::ValuesIn(test::kDifferentialCorpus),
    [](const ::testing::TestParamInfo<Corpus>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace tml
