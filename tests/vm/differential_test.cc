// The master soundness property (DESIGN.md §5): every program must produce
// identical observable results on the reference CPS interpreter and on the
// TVM, before optimization, after the reduction pass, and after the full
// optimizer — over a corpus of programs and a sweep of inputs.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/module.h"
#include "core/optimizer.h"
#include "core/printer.h"
#include "core/rewrite.h"
#include "core/validate.h"
#include "interp/interp.h"
#include "vm/codegen.h"
#include "vm/vm.h"
#include "tests/test_util.h"

namespace tml {
namespace {

using ir::Abstraction;
using ir::Module;
using test::MustParseProgram;

struct Observed {
  std::string value;
  bool raised = false;
  std::string output;
};

Observed ObserveInterp(const Module& m, const Abstraction* prog,
                       int64_t arg) {
  auto res = interp::Run(m, prog, {interp::IValue{arg}});
  EXPECT_TRUE(res.ok()) << "interp: " << res.status().ToString();
  if (!res.ok()) return {};
  return {interp::ToString(res->value), res->raised, res->output};
}

Observed ObserveVm(const Module& m, const Abstraction* prog, int64_t arg) {
  vm::CodeUnit unit;
  auto fn = vm::CompileProc(&unit, m, prog, "diff");
  EXPECT_TRUE(fn.ok()) << "codegen: " << fn.status().ToString() << "\n"
                       << ir::PrintValue(m, prog);
  if (!fn.ok()) return {};
  vm::VM vm;
  vm::Value args[] = {vm::Value::Int(arg)};
  auto res = vm.Run(*fn, args);
  EXPECT_TRUE(res.ok()) << "vm: " << res.status().ToString() << "\n"
                        << (*fn)->Disassemble();
  if (!res.ok()) return {};
  return {vm::ToString(res->value), res->raised, vm.TakeOutput()};
}

struct Corpus {
  const char* name;
  const char* text;  // a proc taking one integer argument
  std::vector<int64_t> args;
};

const Corpus kCorpus[] = {
    {"identity", "(proc (x ce cc) (cc x))", {0, -3, 99}},
    {"arith",
     "(proc (x ce cc)"
     " (* x 6 ce (cont (t) (+ t 2 ce (cont (u) (% u 7 ce cc))))))",
     {0, 1, 7, 100, -13}},
    {"branch",
     "(proc (x ce cc)"
     " (< x 10 (cont () (cc 1)) (cont () (cc 2))))",
     {9, 10, 11}},
    {"div_fault_caught",
     "(proc (x ce cc) (/ 100 x (cont (e) (cc -1)) cc))",
     {0, 1, 7}},
    {"div_fault_uncaught", "(proc (x ce cc) (/ 100 x ce cc))", {0, 5}},
    {"loop_sum",
     "(proc (n ce cc)"
     " (Y (proc (/ c0 for c)"
     "      (c (cont () (for 1 0))"
     "         (cont (i acc)"
     "           (> i n"
     "              (cont () (cc acc))"
     "              (cont ()"
     "                (+ acc i ce (cont (a2)"
     "                  (+ i 1 ce (cont (t2) (for t2 a2))))))))))))",
     {0, 1, 10, 50}},
    {"recursion_factorial",
     "(proc (n ce cc)"
     " (Y (proc (^c0 fact ^c)"
     "      (c (cont () (fact n ce cc))"
     "         (proc (i ce1 cc1)"
     "           (<= i 1 (cont () (cc1 1))"
     "                   (cont ()"
     "                     (- i 1 ce1 (cont (t)"
     "                       (fact t ce1 (cont (r)"
     "                         (* i r ce1 cc1))))))))))))",
     {0, 1, 5, 12}},
    {"mutual_even_odd",
     "(proc (n ce cc)"
     " (Y (proc (^c0 even odd ^c)"
     "      (c (cont () (even n ce cc))"
     "         (proc (i ce1 cc1)"
     "           (== i 0 (cont () (cc1 true))"
     "                   (cont () (- i 1 ce1 (cont (t) (odd t ce1 cc1))))))"
     "         (proc (i ce2 cc2)"
     "           (== i 0 (cont () (cc2 false))"
     "                   (cont () (- i 1 ce2 (cont (t) (even t ce2 cc2))))))))))",
     {0, 1, 9, 10}},
    {"arrays",
     "(proc (n ce cc)"
     " (array 0 0 0 0 (cont (a)"
     "  ([]:= a 1 n ce (cont (g1)"
     "   ([] a 1 ce (cont (v)"
     "    (size a (cont (s)"
     "     (+ v s ce cc))))))))))",
     {5, -5}},
    {"array_bounds_fault",
     "(proc (n ce cc)"
     " (array 1 2 (cont (a)"
     "  ([] a n (cont (e) (cc -1)) cc))))",
     {0, 1, 2, -1}},
    {"bytes",
     "(proc (n ce cc)"
     " (new 8 0 (cont (b)"
     "  ($[]:= b 3 n ce (cont (g)"
     "   ($[] b 3 ce cc))))))",
     {0, 255, 256}},
    {"case_dispatch",
     "(proc (v ce cc)"
     " (== v 1 2 3"
     "     (cont () (cc 10)) (cont () (cc 20)) (cont () (cc 30))"
     "     (cont () (cc -1))))",
     {1, 2, 3, 4}},
    {"handlers",
     "(proc (x ce cc)"
     " (pushHandler (cont (e) (+ e 1000 ce cc))"
     "  (cont ()"
     "   (== x 0 (cont () (raise 5))"
     "           (cont () (popHandler (cont () (cc x))))))))",
     {0, 3}},
    {"exceptions_across_calls",
     "(proc (x ce cc)"
     " ((lambda (f)"
     "    (pushHandler (cont (e) (cc e))"
     "     (cont () (f x ce (cont (t) (cc t))))))"
     "  (proc (a ce2 cc2)"
     "    (== a 0 (cont () (raise 42))"
     "            (cont () (* a 2 ce2 cc2))))))",
     {0, 4}},
    {"higher_order",
     "(proc (x ce cc)"
     " ((lambda (twice f)"
     "    (twice f x ce cc))"
     "  (proc (g a ce1 cc1) (g a ce1 (cont (t) (g t ce1 cc1))))"
     "  (proc (a ce2 cc2) (* a 3 ce2 cc2))))",
     {1, 7}},
    {"shadowed_copy_prop",
     "(proc (x ce cc)"
     " ((lambda (a) ((lambda (b) ((lambda (d) (+ a d ce cc)) b)) a)) x))",
     {3, -9}},
    {"overflow_caught",
     "(proc (x ce cc)"
     " (+ x 9223372036854775807 (cont (e) (cc -1)) cc))",
     {0, 1, -1}},
    {"bitops",
     "(proc (x ce cc)"
     " (<< x 3 (cont (a)"
     "  (>> a 1 (cont (b)"
     "   (& b 255 (cont (andv)"
     "    (| andv 16 (cont (orv)"
     "     (^ orv 3 cc))))))))))",
     {0, 5, 1023}},
    {"print_effect",
     "(proc (x ce cc)"
     " (ccall \"print\" x ce (cont (g)"
     "  (+ x 1 ce (cont (y)"
     "   (ccall \"print\" y ce (cont (g2) (cc y))))))))",
     {7}},
};

class DifferentialTest : public ::testing::TestWithParam<Corpus> {};

TEST_P(DifferentialTest, InterpAndVmAgreeAtEveryOptLevel) {
  const Corpus& c = GetParam();
  for (int64_t arg : c.args) {
    Module m;
    const Abstraction* prog = MustParseProgram(&m, c.text);
    ASSERT_NE(prog, nullptr);
    ASSERT_OK(ir::Validate(m, prog));

    Observed base_i = ObserveInterp(m, prog, arg);

    // Level 0: unoptimized.
    Observed vm0 = ObserveVm(m, prog, arg);
    EXPECT_EQ(base_i.value, vm0.value) << c.name << " arg=" << arg;
    EXPECT_EQ(base_i.raised, vm0.raised) << c.name << " arg=" << arg;
    EXPECT_EQ(base_i.output, vm0.output) << c.name << " arg=" << arg;

    // Level 1: reduction pass only.
    const Abstraction* reduced = ir::Reduce(&m, prog);
    ASSERT_OK(ir::Validate(m, reduced));
    Observed i1 = ObserveInterp(m, reduced, arg);
    Observed v1 = ObserveVm(m, reduced, arg);
    EXPECT_EQ(base_i.value, i1.value) << c.name << " (reduce/interp)";
    EXPECT_EQ(base_i.raised, i1.raised) << c.name;
    EXPECT_EQ(base_i.value, v1.value) << c.name << " (reduce/vm)";
    EXPECT_EQ(base_i.raised, v1.raised) << c.name;
    EXPECT_EQ(base_i.output, v1.output) << c.name;

    // Level 2: full optimizer (reduction + expansion rounds).
    const Abstraction* optimized = ir::Optimize(&m, prog);
    ASSERT_OK(ir::Validate(m, optimized));
    Observed i2 = ObserveInterp(m, optimized, arg);
    Observed v2 = ObserveVm(m, optimized, arg);
    EXPECT_EQ(base_i.value, i2.value)
        << c.name << " (optimize/interp)\n"
        << ir::PrintValue(m, optimized);
    EXPECT_EQ(base_i.raised, i2.raised) << c.name;
    EXPECT_EQ(base_i.value, v2.value) << c.name << " (optimize/vm)";
    EXPECT_EQ(base_i.raised, v2.raised) << c.name;
    EXPECT_EQ(base_i.output, v2.output) << c.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, DifferentialTest, ::testing::ValuesIn(kCorpus),
    [](const ::testing::TestParamInfo<Corpus>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace tml
