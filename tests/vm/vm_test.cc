// TVM: code generation + execution of compiled TML.

#include <gtest/gtest.h>

#include "core/module.h"
#include "core/optimizer.h"
#include "vm/codegen.h"
#include "vm/vm.h"
#include "tests/test_util.h"

namespace tml {
namespace {

using ir::Abstraction;
using ir::Module;
using test::MustParseProgram;
using vm::CodeUnit;
using vm::CompileProc;
using vm::RunResult;
using vm::Value;
using vm::VM;

RunResult RunText(const char* text, std::vector<Value> args = {}) {
  Module m;
  const Abstraction* prog = MustParseProgram(&m, text);
  EXPECT_NE(prog, nullptr);
  if (prog == nullptr) return {};
  CodeUnit unit;
  auto fn = CompileProc(&unit, m, prog, "test");
  EXPECT_TRUE(fn.ok()) << fn.status().ToString();
  if (!fn.ok()) return {};
  VM vm;
  auto res = vm.Run(*fn, args);
  EXPECT_TRUE(res.ok()) << res.status().ToString() << "\n"
                        << (*fn)->Disassemble();
  return res.ok() ? *res : RunResult{};
}

TEST(Vm, ReturnsArgument) {
  RunResult r = RunText("(proc (x ce cc) (cc x))", {Value::Int(42)});
  EXPECT_EQ(r.value.i, 42);
  EXPECT_FALSE(r.raised);
}

TEST(Vm, ArithmeticChain) {
  RunResult r = RunText(
      "(proc (x ce cc)"
      " (* x 6 ce (cont (t) (+ t 2 ce cc))))",
      {Value::Int(7)});
  EXPECT_EQ(r.value.i, 44);
}

TEST(Vm, ComparisonBranches) {
  const char* text =
      "(proc (x ce cc)"
      " (< x 10 (cont () (cc 1)) (cont () (cc 2))))";
  EXPECT_EQ(RunText(text, {Value::Int(5)}).value.i, 1);
  EXPECT_EQ(RunText(text, {Value::Int(15)}).value.i, 2);
}

TEST(Vm, GreaterThanSwapsOperands) {
  const char* text =
      "(proc (x ce cc)"
      " (> x 10 (cont () (cc 1)) (cont () (cc 2))))";
  EXPECT_EQ(RunText(text, {Value::Int(50)}).value.i, 1);
  EXPECT_EQ(RunText(text, {Value::Int(5)}).value.i, 2);
  EXPECT_EQ(RunText(text, {Value::Int(10)}).value.i, 2);
}

TEST(Vm, DivisionByZeroRoutesToLocalHandler) {
  RunResult r = RunText(
      "(proc (x ce cc)"
      " (/ x 0 (cont (e) (cc -1)) cc))",
      {Value::Int(5)});
  EXPECT_EQ(r.value.i, -1);
  EXPECT_FALSE(r.raised);
}

TEST(Vm, UncaughtFaultRaisesToTop) {
  RunResult r = RunText("(proc (x ce cc) (/ x 0 ce cc))", {Value::Int(5)});
  EXPECT_TRUE(r.raised);
}

TEST(Vm, YLoopAccumulates) {
  RunResult r = RunText(
      "(proc (n ce cc)"
      " (Y (proc (/ c0 for c)"
      "      (c (cont () (for 1 0))"
      "         (cont (i acc)"
      "           (> i n"
      "              (cont () (cc acc))"
      "              (cont ()"
      "                (+ acc i ce (cont (a2)"
      "                  (+ i 1 ce (cont (t2) (for t2 a2))))))))))))",
      {Value::Int(100)});
  EXPECT_EQ(r.value.i, 5050);
}

TEST(Vm, NestedProcedureCalls) {
  RunResult r = RunText(
      "(proc (x ce cc)"
      " ((lambda (f)"
      "    (f x ce (cont (t1) (f t1 ce cc))))"
      "  (proc (a ce2 cc2) (* a a ce2 cc2))))",
      {Value::Int(3)});
  EXPECT_EQ(r.value.i, 81);
}

TEST(Vm, TailRecursionDoesNotOverflow) {
  // A deep tail-recursive countdown: must run in constant frame space.
  RunResult r = RunText(
      "(proc (n ce cc)"
      " (Y (proc (^c0 down ^c)"
      "      (c (cont () (down n ce cc))"
      "         (proc (i ce1 cc1)"
      "           (== i 0 (cont () (cc1 0))"
      "                   (cont () (- i 1 ce1 (cont (t) (down t ce1 cc1))))))))))",
      {Value::Int(200000)});
  EXPECT_EQ(r.value.i, 0);
}

TEST(Vm, MutualRecursionClosures) {
  RunResult r = RunText(
      "(proc (n ce cc)"
      " (Y (proc (^c0 even odd ^c)"
      "      (c (cont () (even n ce cc))"
      "         (proc (i ce1 cc1)"
      "           (== i 0 (cont () (cc1 true))"
      "                   (cont () (- i 1 ce1 (cont (t) (odd t ce1 cc1))))))"
      "         (proc (i ce2 cc2)"
      "           (== i 0 (cont () (cc2 false))"
      "                   (cont () (- i 1 ce2 (cont (t) (even t ce2 cc2))))))))))",
      {Value::Int(41)});
  EXPECT_FALSE(r.value.b);
}

TEST(Vm, ArraysVectorsBytes) {
  RunResult r = RunText(
      "(proc (ce cc)"
      " (array 10 20 30 (cont (a)"
      "  ([]:= a 2 40 ce (cont (ig)"
      "   ([] a 2 ce (cont (x)"
      "    (size a (cont (n)"
      "     (+ x n ce cc))))))))))");
  EXPECT_EQ(r.value.i, 43);
}

TEST(Vm, VectorWriteFaults) {
  RunResult r = RunText(
      "(proc (ce cc)"
      " (vector 1 2 (cont (v)"
      "  ([]:= v 0 9 (cont (e) (cc -7)) cc))))");
  EXPECT_EQ(r.value.i, -7);
}

TEST(Vm, HandlerStackAcrossCalls) {
  // raise inside a callee lands in the caller's pushHandler block.
  RunResult r = RunText(
      "(proc (x ce cc)"
      " ((lambda (f)"
      "    (pushHandler (cont (e) (cc e))"
      "     (cont () (f x ce (cont (t) (cc 0))))))"
      "  (proc (a ce2 cc2) (raise a))))",
      {Value::Int(77)});
  EXPECT_EQ(r.value.i, 77);
  EXPECT_FALSE(r.raised);
}

TEST(Vm, TailCallUnderHandlerIsDemotedNotLost) {
  // The tail call sits under an active handler; the handler must survive
  // the callee and the value must come back out.
  RunResult r = RunText(
      "(proc (x ce cc)"
      " ((lambda (f)"
      "    (pushHandler (cont (e) (cc -1))"
      "     (cont () (f x ce cc))))"
      "  (proc (a ce2 cc2) (+ a 1 ce2 cc2))))",
      {Value::Int(10)});
  EXPECT_EQ(r.value.i, 11);
}

TEST(Vm, CaseDispatchWithElse) {
  const char* text =
      "(proc (v ce cc)"
      " (== v 1 2 3"
      "     (cont () (cc 10))"
      "     (cont () (cc 20))"
      "     (cont () (cc 30))"
      "     (cont () (cc -1))))";
  EXPECT_EQ(RunText(text, {Value::Int(2)}).value.i, 20);
  EXPECT_EQ(RunText(text, {Value::Int(9)}).value.i, -1);
}

TEST(Vm, CaseWithoutElseRaisesOnMiss) {
  RunResult r = RunText(
      "(proc (v ce cc)"
      " (== v 1 (cont () (cc 10))))",
      {Value::Int(9)});
  EXPECT_TRUE(r.raised);
}

TEST(Vm, RealArithmetic) {
  RunResult r = RunText(
      "(proc (ce cc)"
      " (*. 3.0 3.0 ce (cont (a)"
      "  (*. 4.0 4.0 ce (cont (b)"
      "   (+. a b ce (cont (s)"
      "    (sqrt s ce cc))))))))");
  EXPECT_DOUBLE_EQ(r.value.r, 5.0);
}

TEST(Vm, PrintHostFunction) {
  Module m;
  const Abstraction* prog = MustParseProgram(
      &m,
      "(proc (x ce cc)"
      " (ccall \"print\" x ce (cont (ig) (cc x))))");
  CodeUnit unit;
  auto fn = CompileProc(&unit, m, prog, "test");
  ASSERT_TRUE(fn.ok()) << fn.status().ToString();
  VM vm;
  Value args[] = {Value::Int(7)};
  auto res = vm.Run(*fn, args);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(vm.TakeOutput(), "7\n");
}

TEST(Vm, ClosureCapturesEnvironment) {
  // Inner proc captures outer binding `k` and argument `x`.
  RunResult r = RunText(
      "(proc (x ce cc)"
      " ((lambda (k)"
      "    ((lambda (f) (f 5 ce cc))"
      "     (proc (a ce2 cc2) (+ a k ce2 (cont (t) (+ t x ce2 cc2))))))"
      "  100))",
      {Value::Int(3)});
  EXPECT_EQ(r.value.i, 108);
}

TEST(Vm, GcSurvivesHeavyAllocation) {
  // Allocate far more arrays than the GC threshold while keeping one live.
  RunResult r = RunText(
      "(proc (n ce cc)"
      " (array 7 (cont (keep)"
      "  (Y (proc (/ c0 loop c)"
      "       (c (cont () (loop 0))"
      "          (cont (i)"
      "            (> i n"
      "               (cont () ([] keep 0 ce cc))"
      "               (cont ()"
      "                 (array 1 2 3 (cont (junk)"
      "                  (+ i 1 ce (cont (t) (loop t))))))))))))))",
      {Value::Int(20000)});
  EXPECT_EQ(r.value.i, 7);
}

TEST(Vm, QuerySelectWithTmlPredicate) {
  // Relation built as an array of tuple-arrays; select tuples with
  // field0 > 10.
  RunResult r = RunText(
      "(proc (ce cc)"
      " (array 5 (cont (t1) (array 15 (cont (t2) (array 25 (cont (t3)"
      "  (vector t1 t2 t3 (cont (rel)"
      "   (select (proc (t pce pcc)"
      "             ([] t 0 pce (cont (v)"
      "              (> v 10 (cont () (pcc true))"
      "                      (cont () (pcc false))))))"
      "           rel ce (cont (out)"
      "    (card out cc))))))))))))");
  EXPECT_EQ(r.value.i, 2);
}

TEST(Vm, QueryExistsShortCircuits) {
  RunResult r = RunText(
      "(proc (ce cc)"
      " (array 1 (cont (t1) (array 2 (cont (t2)"
      "  (vector t1 t2 (cont (rel)"
      "   (exists (proc (t pce pcc)"
      "             ([] t 0 pce (cont (v)"
      "              (== v 2 (cont () (pcc true)) (cont () (pcc false))))))"
      "           rel ce cc))))))))");
  EXPECT_TRUE(r.value.b);
}

TEST(Vm, QueryPredicateExceptionRoutesToCe) {
  RunResult r = RunText(
      "(proc (ce cc)"
      " (array 1 (cont (t1)"
      "  (vector t1 (cont (rel)"
      "   (select (proc (t pce pcc) (raise 99))"
      "           rel (cont (e) (cc e)) cc))))))");
  EXPECT_EQ(r.value.i, 99);
  EXPECT_FALSE(r.raised);
}

TEST(Vm, EmptyAndCount) {
  RunResult r = RunText(
      "(proc (ce cc)"
      " (vector (cont (rel)"
      "  (empty rel (cont (e)"
      "   (== e true (cont () (cc 1)) (cont () (cc 0))))))))");
  EXPECT_EQ(r.value.i, 1);
}

TEST(VmCode, SerializeRoundTrip) {
  Module m;
  const Abstraction* prog = MustParseProgram(
      &m,
      "(proc (x ce cc)"
      " ((lambda (f) (f x ce cc))"
      "  (proc (a ce2 cc2) (+ a 1 ce2 cc2))))");
  CodeUnit unit;
  auto fn = CompileProc(&unit, m, prog, "ser");
  ASSERT_TRUE(fn.ok());
  std::string bytes = vm::SerializeFunction(**fn);
  CodeUnit unit2;
  auto fn2 = vm::DeserializeFunction(&unit2, bytes);
  ASSERT_TRUE(fn2.ok()) << fn2.status().ToString();
  EXPECT_EQ((*fn2)->name, (*fn)->name);
  EXPECT_EQ((*fn2)->code.size(), (*fn)->code.size());
  EXPECT_EQ((*fn2)->subfns.size(), (*fn)->subfns.size());
  // The deserialized code must actually run.
  VM vm;
  Value args[] = {Value::Int(9)};
  auto res = vm.Run(*fn2, args);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res->value.i, 10);
}

TEST(VmCode, DisassembleMentionsOps) {
  Module m;
  const Abstraction* prog =
      MustParseProgram(&m, "(proc (x ce cc) (+ x 1 ce cc))");
  CodeUnit unit;
  auto fn = CompileProc(&unit, m, prog, "dis");
  ASSERT_TRUE(fn.ok());
  std::string d = (*fn)->Disassemble();
  EXPECT_NE(d.find("addi"), std::string::npos);
  EXPECT_NE(d.find("ret"), std::string::npos);
}

TEST(VmCode, OptimizedProgramStillRuns) {
  Module m;
  const Abstraction* prog = MustParseProgram(
      &m,
      "(proc (x ce cc)"
      " ((lambda (f)"
      "    (f 1 ce (cont (t1) (f t1 ce (cont (t2) (+ t2 x ce cc))))))"
      "  (proc (a ce2 cc2) (+ a 10 ce2 cc2))))");
  const Abstraction* opt = ir::Optimize(&m, prog);
  CodeUnit unit;
  auto fn = CompileProc(&unit, m, opt, "opt");
  ASSERT_TRUE(fn.ok()) << fn.status().ToString();
  VM vm;
  Value args[] = {Value::Int(5)};
  auto res = vm.Run(*fn, args);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->value.i, 26);
}

}  // namespace
}  // namespace tml
