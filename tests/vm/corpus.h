// The shared differential-testing corpus: small CPS programs (each a proc
// taking one integer argument) exercising arithmetic, control flow,
// recursion, arrays/bytes, faults, handlers and higher-order calls.
//
// Used by tests/vm/differential_test.cc (reference interpreter vs TVM at
// every optimizer level) and tests/vm/dispatch_differential_test.cc
// (switch vs threaded dispatch, unfused vs superinstruction-fused code).

#ifndef TML_TESTS_VM_CORPUS_H_
#define TML_TESTS_VM_CORPUS_H_

#include <cstdint>
#include <vector>

namespace tml::test {

struct CorpusProgram {
  const char* name;
  const char* text;  // a proc taking one integer argument
  std::vector<int64_t> args;
};

inline const CorpusProgram kDifferentialCorpus[] = {
    {"identity", "(proc (x ce cc) (cc x))", {0, -3, 99}},
    {"arith",
     "(proc (x ce cc)"
     " (* x 6 ce (cont (t) (+ t 2 ce (cont (u) (% u 7 ce cc))))))",
     {0, 1, 7, 100, -13}},
    {"branch",
     "(proc (x ce cc)"
     " (< x 10 (cont () (cc 1)) (cont () (cc 2))))",
     {9, 10, 11}},
    {"div_fault_caught",
     "(proc (x ce cc) (/ 100 x (cont (e) (cc -1)) cc))",
     {0, 1, 7}},
    {"div_fault_uncaught", "(proc (x ce cc) (/ 100 x ce cc))", {0, 5}},
    {"loop_sum",
     "(proc (n ce cc)"
     " (Y (proc (/ c0 for c)"
     "      (c (cont () (for 1 0))"
     "         (cont (i acc)"
     "           (> i n"
     "              (cont () (cc acc))"
     "              (cont ()"
     "                (+ acc i ce (cont (a2)"
     "                  (+ i 1 ce (cont (t2) (for t2 a2))))))))))))",
     {0, 1, 10, 50}},
    {"recursion_factorial",
     "(proc (n ce cc)"
     " (Y (proc (^c0 fact ^c)"
     "      (c (cont () (fact n ce cc))"
     "         (proc (i ce1 cc1)"
     "           (<= i 1 (cont () (cc1 1))"
     "                   (cont ()"
     "                     (- i 1 ce1 (cont (t)"
     "                       (fact t ce1 (cont (r)"
     "                         (* i r ce1 cc1))))))))))))",
     {0, 1, 5, 12}},
    {"mutual_even_odd",
     "(proc (n ce cc)"
     " (Y (proc (^c0 even odd ^c)"
     "      (c (cont () (even n ce cc))"
     "         (proc (i ce1 cc1)"
     "           (== i 0 (cont () (cc1 true))"
     "                   (cont () (- i 1 ce1 (cont (t) (odd t ce1 cc1))))))"
     "         (proc (i ce2 cc2)"
     "           (== i 0 (cont () (cc2 false))"
     "                   (cont () (- i 1 ce2 (cont (t) (even t ce2 cc2))))))))))",
     {0, 1, 9, 10}},
    {"arrays",
     "(proc (n ce cc)"
     " (array 0 0 0 0 (cont (a)"
     "  ([]:= a 1 n ce (cont (g1)"
     "   ([] a 1 ce (cont (v)"
     "    (size a (cont (s)"
     "     (+ v s ce cc))))))))))",
     {5, -5}},
    {"array_bounds_fault",
     "(proc (n ce cc)"
     " (array 1 2 (cont (a)"
     "  ([] a n (cont (e) (cc -1)) cc))))",
     {0, 1, 2, -1}},
    {"bytes",
     "(proc (n ce cc)"
     " (new 8 0 (cont (b)"
     "  ($[]:= b 3 n ce (cont (g)"
     "   ($[] b 3 ce cc))))))",
     {0, 255, 256}},
    {"case_dispatch",
     "(proc (v ce cc)"
     " (== v 1 2 3"
     "     (cont () (cc 10)) (cont () (cc 20)) (cont () (cc 30))"
     "     (cont () (cc -1))))",
     {1, 2, 3, 4}},
    {"handlers",
     "(proc (x ce cc)"
     " (pushHandler (cont (e) (+ e 1000 ce cc))"
     "  (cont ()"
     "   (== x 0 (cont () (raise 5))"
     "           (cont () (popHandler (cont () (cc x))))))))",
     {0, 3}},
    {"exceptions_across_calls",
     "(proc (x ce cc)"
     " ((lambda (f)"
     "    (pushHandler (cont (e) (cc e))"
     "     (cont () (f x ce (cont (t) (cc t))))))"
     "  (proc (a ce2 cc2)"
     "    (== a 0 (cont () (raise 42))"
     "            (cont () (* a 2 ce2 cc2))))))",
     {0, 4}},
    {"higher_order",
     "(proc (x ce cc)"
     " ((lambda (twice f)"
     "    (twice f x ce cc))"
     "  (proc (g a ce1 cc1) (g a ce1 (cont (t) (g t ce1 cc1))))"
     "  (proc (a ce2 cc2) (* a 3 ce2 cc2))))",
     {1, 7}},
    {"shadowed_copy_prop",
     "(proc (x ce cc)"
     " ((lambda (a) ((lambda (b) ((lambda (d) (+ a d ce cc)) b)) a)) x))",
     {3, -9}},
    {"overflow_caught",
     "(proc (x ce cc)"
     " (+ x 9223372036854775807 (cont (e) (cc -1)) cc))",
     {0, 1, -1}},
    {"bitops",
     "(proc (x ce cc)"
     " (<< x 3 (cont (a)"
     "  (>> a 1 (cont (b)"
     "   (& b 255 (cont (andv)"
     "    (| andv 16 (cont (orv)"
     "     (^ orv 3 cc))))))))))",
     {0, 5, 1023}},
    {"print_effect",
     "(proc (x ce cc)"
     " (ccall \"print\" x ce (cont (g)"
     "  (+ x 1 ce (cont (y)"
     "   (ccall \"print\" y ce (cont (g2) (cc y))))))))",
     {7}},
};

}  // namespace tml::test

#endif  // TML_TESTS_VM_CORPUS_H_
