// TVM edge cases: runtime error paths, stack limits, host functions, GC
// behaviour under query re-entrancy, and Oid calls without a runtime env.

#include <gtest/gtest.h>

#include "core/module.h"
#include "vm/codegen.h"
#include "vm/vm.h"
#include "tests/test_util.h"

namespace tml {
namespace {

using ir::Abstraction;
using ir::Module;
using test::MustParseProgram;
using vm::CodeUnit;
using vm::Value;
using vm::VM;

Result<vm::RunResult> TryRun(const char* text, std::vector<Value> args,
                             VM* vm) {
  Module m;
  const Abstraction* prog = MustParseProgram(&m, text);
  if (prog == nullptr) return Status::Invalid("parse failed");
  CodeUnit unit;
  TML_ASSIGN_OR_RETURN(vm::Function * fn,
                       vm::CompileProc(&unit, m, prog, "edge"));
  return vm->Run(fn, args);
}

TEST(VmEdge, CallingNonProcedureIsRuntimeError) {
  VM vm;
  auto r = TryRun("(proc (x ce cc) (x 1 ce cc))", {Value::Int(5)}, &vm);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kRuntimeError);
}

TEST(VmEdge, ArityMismatchIsRuntimeError) {
  VM vm;
  auto r = TryRun(
      "(proc (x ce cc)"
      " ((lambda (f) (f x x ce cc))"  // f expects one value arg
      "  (proc (a ce2 cc2) (cc2 a))))",
      {Value::Int(1)}, &vm);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("arity"), std::string::npos);
}

TEST(VmEdge, NonTailRecursionOverflowsGracefully) {
  // Deep non-tail recursion must surface a Status, not crash.
  VM vm;
  auto r = TryRun(
      "(proc (n ce cc)"
      " (Y (proc (^c0 down ^c)"
      "      (c (cont () (down n ce cc))"
      "         (proc (i ce1 cc1)"
      "           (== i 0 (cont () (cc1 0))"
      "              (cont ()"
      "                (- i 1 ce1 (cont (t)"
      "                  (down t ce1 (cont (r) (+ r 1 ce1 cc1))))))))))))",
      {Value::Int(5'000'000)}, &vm);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("overflow"), std::string::npos);
}

TEST(VmEdge, StepLimitIsEnforced) {
  vm::VMOptions opts;
  opts.max_steps = 500;
  VM vm(nullptr, opts);
  auto r = TryRun(
      "(proc (n ce cc)"
      " (Y (proc (/ c0 loop c)"
      "      (c (cont () (loop))"
      "         (cont () (loop))))))",
      {Value::Int(0)}, &vm);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("step limit"), std::string::npos);
}

TEST(VmEdge, OidCallWithoutRuntimeEnvFails) {
  VM vm;  // no RuntimeEnv
  auto r = TryRun("(proc (f ce cc) (f 1 ce cc))", {Value::OidV(99)}, &vm);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("runtime env"), std::string::npos);
}

TEST(VmEdge, UnknownHostFunctionFails) {
  VM vm;
  auto r = TryRun(
      "(proc (x ce cc) (ccall \"no_such_host\" x ce cc))",
      {Value::Int(1)}, &vm);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("host"), std::string::npos);
}

TEST(VmEdge, CustomHostFunctionWorks) {
  VM vm;
  vm.RegisterHost("triple",
                  [](VM*, std::span<const Value> args) -> Result<Value> {
                    return Value::Int(args[0].i * 3);
                  });
  auto r = TryRun(
      "(proc (x ce cc) (ccall \"triple\" x ce cc))",
      {Value::Int(14)}, &vm);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->value.i, 42);
}

TEST(VmEdge, GcCollectsGarbageCreatedByQueryPredicates) {
  // Each predicate invocation allocates; the GC must run mid-query without
  // sweeping the relation, the output, or active frames.
  VM vm;
  Module m;
  const Abstraction* prog = MustParseProgram(
      &m,
      "(proc (r ce cc)"
      " (select (proc (t pce pcc)"
      "           (array 1 2 3 (cont (junk)"  // garbage per tuple
      "            ([] t 0 pce (cont (v)"
      "             (< v 500 (cont () (pcc true)) (cont () (pcc false))))))))"
      "   r ce (cont (out) (card out cc))))");
  CodeUnit unit;
  auto fn = vm::CompileProc(&unit, m, prog, "gcq");
  ASSERT_TRUE(fn.ok());
  // Relation with 20000 tuples: enough allocations to trigger collection.
  vm::ArrayObj* rel = vm.heap()->New<vm::ArrayObj>();
  rel->immutable = true;
  for (int i = 0; i < 20000; ++i) {
    vm::ArrayObj* row = vm.heap()->New<vm::ArrayObj>();
    row->slots.push_back(Value::Int(i % 1000));
    rel->slots.push_back(Value::ObjV(row));
  }
  Value args[] = {Value::ObjV(rel)};
  vm.Pin(args[0]);
  size_t before = vm.heap()->num_objects();
  auto r = vm.Run(*fn, args);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->value.i, 20 * 500);
  // The per-tuple junk must not have accumulated unboundedly.
  EXPECT_LT(vm.heap()->num_objects(), before + 30000u);
}

TEST(VmEdge, HandlerInsideLoopFiresEveryIteration) {
  VM vm;
  auto r = TryRun(
      "(proc (n ce cc)"
      " (Y (proc (/ c0 loop c)"
      "      (c (cont () (loop 1 0))"
      "         (cont (i acc)"
      "           (> i n"
      "              (cont () (cc acc))"
      "              (cont ()"
      "                (/ 100 0"
      "                   (cont (e)"
      "                     (+ acc 1 ce (cont (a2)"
      "                       (+ i 1 ce (cont (i2) (loop i2 a2))))))"
      "                   (cont (q) (cc -1))))))))))",
      {Value::Int(50)}, &vm);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->value.i, 50);  // every iteration caught its own fault
}

TEST(VmEdge, ScalarEqualsDistinguishesTypes) {
  EXPECT_FALSE(vm::ScalarEquals(Value::Int(1), Value::Bool(true)));
  EXPECT_FALSE(vm::ScalarEquals(Value::Int(0), Value::Nil()));
  EXPECT_TRUE(vm::ScalarEquals(Value::Nil(), Value::Nil()));
  EXPECT_TRUE(vm::ScalarEquals(Value::Real(2.5), Value::Real(2.5)));
  EXPECT_FALSE(vm::ScalarEquals(Value::Real(2.5), Value::Int(2)));
  EXPECT_TRUE(vm::ScalarEquals(Value::OidV(9), Value::OidV(9)));
}

TEST(VmEdge, ToStringRendersAllTags) {
  VM vm;
  EXPECT_EQ(vm::ToString(Value::Nil()), "nil");
  EXPECT_EQ(vm::ToString(Value::Bool(true)), "true");
  EXPECT_EQ(vm::ToString(Value::Int(-3)), "-3");
  EXPECT_EQ(vm::ToString(Value::Char('q')), "'q'");
  EXPECT_EQ(vm::ToString(Value::OidV(5)), "<oid 5>");
  vm::ArrayObj* a = vm.heap()->New<vm::ArrayObj>();
  a->slots.push_back(Value::Int(1));
  a->slots.push_back(Value::Int(2));
  EXPECT_EQ(vm::ToString(Value::ObjV(a)), "[1 2]");
}

}  // namespace
}  // namespace tml
