// VM resource limits (DESIGN.md §13): the per-VM heap budget (catchable
// OOM fault at the interp-loop allocation gates, byte accounting exact
// after each Sweep) and the wall-clock run deadline enforced through the
// step-budget polling seam.

#include <gtest/gtest.h>

#include "core/module.h"
#include "support/status.h"
#include "vm/codegen.h"
#include "vm/vm.h"
#include "tests/test_util.h"

namespace tml {
namespace {

using ir::Abstraction;
using ir::Module;
using test::MustParseProgram;
using vm::CodeUnit;
using vm::CompileProc;
using vm::RunResult;
using vm::Value;
using vm::VM;

const vm::Function* Compile(Module* m, CodeUnit* unit, const char* text) {
  const Abstraction* prog = MustParseProgram(m, text);
  EXPECT_NE(prog, nullptr);
  if (prog == nullptr) return nullptr;
  auto fn = CompileProc(unit, *m, prog, "test");
  EXPECT_TRUE(fn.ok()) << fn.status().ToString();
  return fn.ok() ? *fn : nullptr;
}

constexpr const char* kAlloc = "(proc (n ce cc) (mkarray n 0 ce cc))";

TEST(HeapBudget, UnlimitedByDefault) {
  Module m;
  CodeUnit unit;
  const vm::Function* fn = Compile(&m, &unit, kAlloc);
  ASSERT_NE(fn, nullptr);
  VM vm;
  EXPECT_EQ(vm.heap_budget(), 0u);
  Value a_r[] = {Value::Int(100'000)};
  auto r = vm.Run(fn, a_r);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r->raised);
}

TEST(HeapBudget, OverBudgetAllocationRaisesCatchableFault) {
  Module m;
  CodeUnit unit;
  const vm::Function* fn = Compile(&m, &unit, kAlloc);
  ASSERT_NE(fn, nullptr);
  VM vm;
  vm.set_heap_budget(64 * 1024);
  // 1M slots * 16 bytes is far past 64 KiB: the gate must fire even
  // after a collection, and as a TML fault — not a C++ failure.
  Value a_r[] = {Value::Int(1'000'000)};
  auto r = vm.Run(fn, a_r);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->raised);
  EXPECT_TRUE(vm.oom_raised());
  EXPECT_NE(vm::ToString(r->value).find("heap budget"), std::string::npos)
      << vm::ToString(r->value);
}

TEST(HeapBudget, WithinBudgetSucceedsAndVmSurvivesOom) {
  Module m;
  CodeUnit unit;
  const vm::Function* fn = Compile(&m, &unit, kAlloc);
  ASSERT_NE(fn, nullptr);
  VM vm;
  vm.set_heap_budget(1 * 1024 * 1024);
  Value a_small[] = {Value::Int(1'000)};
  auto small = vm.Run(fn, a_small);
  ASSERT_TRUE(small.ok());
  EXPECT_FALSE(small->raised);

  Value a_big[] = {Value::Int(10'000'000)};
  auto big = vm.Run(fn, a_big);
  ASSERT_TRUE(big.ok());
  EXPECT_TRUE(big->raised);

  // The VM is not poisoned: after the OOM kill the same VM serves a
  // small allocation again (the wedge the budget exists to prevent is a
  // dead worker, not a dead request).
  Value a_again[] = {Value::Int(1'000)};
  auto again = vm.Run(fn, a_again);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_FALSE(again->raised);
  EXPECT_FALSE(vm.oom_raised());
}

TEST(HeapBudget, TmlHandlerCatchesOomAndClearsFlag) {
  Module m;
  CodeUnit unit;
  // pushHandler around the allocation: the OOM fault is an ordinary TML
  // raise, so a handler converts it to a value and oom_raised() clears.
  const vm::Function* fn = Compile(
      &m, &unit,
      "(proc (n ce cc)"
      " (pushHandler (cont (e) (cc -1))"
      "  (cont () (mkarray n 0 ce (cont (a) (cc 1))))))");
  ASSERT_NE(fn, nullptr);
  VM vm;
  vm.set_heap_budget(64 * 1024);
  Value a_r[] = {Value::Int(1'000'000)};
  auto r = vm.Run(fn, a_r);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r->raised);
  EXPECT_EQ(r->value.i, -1);
  EXPECT_FALSE(vm.oom_raised());
}

TEST(HeapBudget, SweepRecomputesAccountedBytes) {
  Module m;
  CodeUnit unit;
  const vm::Function* fn = Compile(&m, &unit, kAlloc);
  ASSERT_NE(fn, nullptr);
  VM vm;
  // 50 runs x ~1.6 MB each under a 4 MB budget: this only stays under
  // budget because each over-budget gate collects and the Sweep
  // *recomputes* accounted bytes from survivors.  If accounting only
  // ever grew, run ~3 would spuriously OOM.
  vm.set_heap_budget(4 * 1024 * 1024);
  for (int k = 0; k < 50; ++k) {
    Value a_r[] = {Value::Int(100'000)};
  auto r = vm.Run(fn, a_r);
    ASSERT_TRUE(r.ok()) << "run " << k << ": " << r.status().ToString();
    ASSERT_FALSE(r->raised) << "run " << k << " spuriously OOM-killed; "
                            << "accounting drifted up instead of tracking "
                            << "survivors";
  }
  vm.set_heap_budget(0);
}

TEST(RunDeadline, ExpiredDeadlineStopsTheLoop) {
  Module m;
  CodeUnit unit;
  // Unbounded self-call: only the wall-clock deadline can stop it (no
  // step budget armed).
  const vm::Function* fn = Compile(
      &m, &unit,
      "(proc (ce cc)"
      " ((lambda (f) (f f ce cc))"
      "  (proc (g ce2 cc2) (g g ce2 cc2))))");
  ASSERT_NE(fn, nullptr);
  VM vm;
  vm.set_run_deadline_ns(VM::MonotonicNowNs() + 50'000'000ull);  // 50 ms
  auto t0 = VM::MonotonicNowNs();
  auto r = vm.Run(fn, {});
  auto elapsed_ms = (VM::MonotonicNowNs() - t0) / 1'000'000;
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadline) << r.status().ToString();
  // The polling seam checks every kDeadlinePollSteps: overshoot is
  // bounded (seconds would mean the seam is broken).
  EXPECT_LT(elapsed_ms, 5'000u);
  vm.set_run_deadline_ns(0);

  // A deadline in the future does not perturb a short run.
  const vm::Function* ok_fn =
      Compile(&m, &unit, "(proc (x ce cc) (+ x 1 ce cc))");
  ASSERT_NE(ok_fn, nullptr);
  vm.set_run_deadline_ns(VM::MonotonicNowNs() + 10'000'000'000ull);
  Value a_ok[] = {Value::Int(41)};
  auto ok = vm.Run(ok_fn, a_ok);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->value.i, 42);
  vm.set_run_deadline_ns(0);
}

TEST(RunDeadline, DeadlineAndStepBudgetCompose) {
  Module m;
  CodeUnit unit;
  const vm::Function* fn = Compile(
      &m, &unit,
      "(proc (ce cc)"
      " ((lambda (f) (f f ce cc))"
      "  (proc (g ce2 cc2) (g g ce2 cc2))))");
  ASSERT_NE(fn, nullptr);
  VM vm;
  // A tight step budget under a lax deadline: the budget fires first and
  // keeps its kOutOfRange identity (the server maps these to distinct
  // wire errors).
  vm.set_step_budget(10'000);
  vm.set_run_deadline_ns(VM::MonotonicNowNs() + 60'000'000'000ull);
  auto r = vm.Run(fn, {});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange) << r.status().ToString();
  vm.set_step_budget(0);
  vm.set_run_deadline_ns(0);
}

}  // namespace
}  // namespace tml
