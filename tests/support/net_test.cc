// FaultNet (support/net.h): the socket I/O seam's deterministic fault
// schedules — short I/O chopping, EAGAIN storms, transient and sticky
// mid-stream resets, and the env-knob Default() — over real socketpairs.

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "support/net.h"

namespace tml {
namespace {

struct Pair {
  int a = -1;
  int b = -1;
  Pair() {
    int fds[2];
    EXPECT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~Pair() {
    if (a >= 0) close(a);
    if (b >= 0) close(b);
  }
};

TEST(NetTest, PosixRoundTrip) {
  Pair p;
  Net* net = Net::Default();
  int err = 0;
  ASSERT_EQ(net->Send(p.a, "hello", 5, &err), 5);
  char buf[16];
  ASSERT_EQ(net->Recv(p.b, buf, sizeof buf, &err), 5);
  EXPECT_EQ(std::string(buf, 5), "hello");
}

TEST(NetTest, RecvReportsEof) {
  Pair p;
  Net* net = Net::Default();
  close(p.a);
  p.a = -1;
  char buf[8];
  int err = 0;
  EXPECT_EQ(net->Recv(p.b, buf, sizeof buf, &err), 0);
}

TEST(FaultNetTest, ShortIoCapsEveryOp) {
  Pair p;
  FaultNet::Options o;
  o.short_io = 4;
  o.seed = 7;
  FaultNet fn(o);
  const char msg[] = "twelve bytes";
  size_t off = 0;
  int guard = 0;
  while (off < sizeof msg - 1 && guard++ < 64) {
    int err = 0;
    ssize_t n = fn.Send(p.a, msg + off, sizeof msg - 1 - off, &err);
    ASSERT_GT(n, 0);
    ASSERT_LE(n, 4);  // never moves more than short_io bytes
    off += static_cast<size_t>(n);
  }
  ASSERT_EQ(off, sizeof msg - 1);
  // The reassembled stream is intact: only the schedule was perturbed.
  std::string got;
  while (got.size() < sizeof msg - 1) {
    char buf[16];
    int err = 0;
    ssize_t n = fn.Recv(p.b, buf, sizeof buf, &err);
    ASSERT_GT(n, 0);
    ASSERT_LE(n, 4);
    got.append(buf, static_cast<size_t>(n));
  }
  EXPECT_EQ(got, "twelve bytes");
  EXPECT_GE(fn.ops(), 6u);  // 12 bytes at <=4/op, both directions
}

TEST(FaultNetTest, EagainEveryNthOp) {
  Pair p;
  FaultNet::Options o;
  o.eagain_every = 3;
  FaultNet fn(o);
  int eagains = 0;
  for (int k = 0; k < 9; ++k) {
    int err = 0;
    ssize_t n = fn.Send(p.a, "x", 1, &err);
    if (n < 0) {
      EXPECT_EQ(err, EAGAIN);
      ++eagains;
    } else {
      EXPECT_EQ(n, 1);
    }
  }
  EXPECT_EQ(eagains, 3);  // ops 3, 6, 9
  EXPECT_EQ(fn.faults_injected(), 3u);
}

TEST(FaultNetTest, TransientResetFiresOnce) {
  Pair p;
  FaultNet::Options o;
  o.reset_after_ops = 2;
  o.sticky = false;
  FaultNet fn(o);
  int err = 0;
  EXPECT_EQ(fn.Send(p.a, "a", 1, &err), 1);
  EXPECT_EQ(fn.Send(p.a, "b", 1, &err), 1);
  EXPECT_EQ(fn.Send(p.a, "c", 1, &err), -1);  // op 3: injected reset
  EXPECT_EQ(err, ECONNRESET);
  EXPECT_EQ(fn.Send(p.a, "d", 1, &err), 1);  // transient: next op is clean
  EXPECT_EQ(fn.faults_injected(), 1u);
}

TEST(FaultNetTest, StickyResetKeepsFailing) {
  Pair p;
  FaultNet::Options o;
  o.reset_after_ops = 1;
  o.sticky = true;
  FaultNet fn(o);
  int err = 0;
  EXPECT_EQ(fn.Send(p.a, "a", 1, &err), 1);
  for (int k = 0; k < 3; ++k) {
    EXPECT_EQ(fn.Send(p.a, "b", 1, &err), -1);
    EXPECT_EQ(err, ECONNRESET);
  }
  EXPECT_EQ(fn.faults_injected(), 3u);
}

TEST(FaultNetTest, SetResetAfterOpsReArmsFromNow) {
  Pair p;
  FaultNet fn;  // no faults armed
  int err = 0;
  for (int k = 0; k < 5; ++k) {
    ASSERT_EQ(fn.Send(p.a, "x", 1, &err), 1);
  }
  fn.SetResetAfterOps(2);  // counted from now, not from op 0
  EXPECT_EQ(fn.Send(p.a, "y", 1, &err), 1);
  EXPECT_EQ(fn.Send(p.a, "y", 1, &err), 1);
  EXPECT_EQ(fn.Send(p.a, "z", 1, &err), -1);
  EXPECT_EQ(err, ECONNRESET);
}

TEST(FaultNetTest, ClearFaultsStopsInjection) {
  Pair p;
  FaultNet::Options o;
  o.eagain_every = 1;  // every op would fail
  FaultNet fn(o);
  int err = 0;
  EXPECT_EQ(fn.Send(p.a, "x", 1, &err), -1);
  fn.ClearFaults();
  EXPECT_EQ(fn.Send(p.a, "x", 1, &err), 1);
  char buf[4];
  EXPECT_EQ(fn.Recv(p.b, buf, sizeof buf, &err), 1);
}

TEST(FaultNetTest, WrapsABaseNet) {
  // FaultNet over FaultNet: the outer schedule gates, the inner moves the
  // bytes — the composition a chaos harness uses to stack behaviors.
  Pair p;
  FaultNet inner;  // clean pass-through
  FaultNet::Options o;
  o.short_io = 2;
  FaultNet outer(o, &inner);
  int err = 0;
  ssize_t n = outer.Send(p.a, "abcd", 4, &err);
  ASSERT_GT(n, 0);
  ASSERT_LE(n, 2);
  EXPECT_GE(inner.ops(), 1u);
}

}  // namespace
}  // namespace tml
