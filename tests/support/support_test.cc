// Support library: Status/Result, Arena, varint coding, interner.

#include <gtest/gtest.h>

#include "support/arena.h"
#include "support/interner.h"
#include "support/status.h"
#include "support/varint.h"

namespace tml {
namespace {

TEST(Status, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status st = Status::NotFound("no such oid");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.ToString(), "NotFound: no such oid");
}

TEST(Status, CopiesShareRep) {
  Status a = Status::Invalid("x");
  Status b = a;
  EXPECT_EQ(a, b);
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::Invalid("not positive");
  return v;
}

TEST(ResultTest, ValueAndError) {
  auto ok = ParsePositive(3);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 3);
  auto err = ParsePositive(-1);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalid);
}

Status UseAssignOrReturn(int v, int* out) {
  TML_ASSIGN_OR_RETURN(int x, ParsePositive(v));
  *out = x + 1;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(4, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_FALSE(UseAssignOrReturn(-4, &out).ok());
}

TEST(ArenaTest, AllocatesAligned) {
  Arena arena;
  for (size_t align : {1u, 2u, 4u, 8u, 16u, 32u}) {
    void* p = arena.Allocate(3, align);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u);
  }
}

TEST(ArenaTest, GrowsAcrossBlocks) {
  Arena arena(/*block_size=*/128);
  for (int i = 0; i < 100; ++i) {
    void* p = arena.Allocate(64);
    ASSERT_NE(p, nullptr);
    std::memset(p, 0xAB, 64);  // must be writable
  }
  EXPECT_GT(arena.num_blocks(), 1u);
  EXPECT_GE(arena.bytes_used(), 6400u);
}

TEST(ArenaTest, LargeAllocationGetsOwnBlock) {
  Arena arena(/*block_size=*/64);
  void* p = arena.Allocate(10'000);
  ASSERT_NE(p, nullptr);
  std::memset(p, 1, 10'000);
}

TEST(ArenaTest, StrDupNulTerminates) {
  Arena arena;
  const char* s = arena.StrDup("hello", 5);
  EXPECT_STREQ(s, "hello");
}

TEST(Varint, RoundTripUnsigned) {
  std::string buf;
  const uint64_t values[] = {0,    1,    127,        128,
                             300,  1u << 20,  (1ull << 35) + 17,
                             ~0ull};
  for (uint64_t v : values) PutVarint(&buf, v);
  VarintReader r(buf);
  for (uint64_t v : values) {
    auto got = r.ReadVarint();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(Varint, RoundTripSigned) {
  std::string buf;
  const int64_t values[] = {0, -1, 1, -64, 64, -12345678, INT64_MIN,
                            INT64_MAX};
  for (int64_t v : values) PutVarintSigned(&buf, v);
  VarintReader r(buf);
  for (int64_t v : values) {
    auto got = r.ReadVarintSigned();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);
  }
}

TEST(Varint, TruncatedInputIsCorruption) {
  std::string buf;
  PutVarint(&buf, 1u << 30);
  buf.resize(buf.size() - 1);
  VarintReader r(buf);
  auto got = r.ReadVarint();
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kCorruption);
}

TEST(Varint, ReadBytesBoundsChecked) {
  VarintReader r("abc", 3);
  auto ok = r.ReadBytes(3);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, "abc");
  VarintReader r2("abc", 3);
  EXPECT_FALSE(r2.ReadBytes(4).ok());
}

TEST(InternerTest, StableSymbols) {
  Interner in;
  Symbol a = in.Intern("alpha");
  Symbol b = in.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(in.Intern("alpha"), a);
  EXPECT_EQ(in.Name(a), "alpha");
  EXPECT_EQ(in.Name(b), "beta");
  EXPECT_EQ(in.size(), 2u);
}

}  // namespace
}  // namespace tml
