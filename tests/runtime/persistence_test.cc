// The open-database restart path: modules installed in one process
// (Universe) are called — and reflectively re-optimized — in another,
// with code, PTML and closure records all loaded back from the store file.

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "runtime/universe.h"
#include "tests/test_util.h"

namespace tml {
namespace {

using rt::Universe;
using vm::Value;

class PersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/tml_universe_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".db";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(PersistenceTest, ModulesSurviveRestart) {
  {
    auto s = store::ObjectStore::Open(path_);
    ASSERT_TRUE(s.ok());
    Universe u(s->get());
    ASSERT_OK(u.InstallSource(
        "m",
        "fun fact(n) = if n <= 1 then 1 else n * fact(n - 1) end end",
        fe::BindingMode::kLibrary));
    ASSERT_OK((*s)->Commit());
  }
  // "Restart": fresh store handle, fresh Universe, fresh VM.
  auto s = store::ObjectStore::Open(path_);
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  Universe u(s->get());
  ASSERT_OK(u.LoadPersistedModules());
  auto f = u.Lookup("m", "fact");
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  Value args[] = {Value::Int(10)};
  auto r = u.Call(*f, args);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->value.i, 3628800);
}

TEST_F(PersistenceTest, ReflectionWorksAfterRestart) {
  {
    auto s = store::ObjectStore::Open(path_);
    Universe u(s->get());
    ASSERT_OK(u.InstallSource(
        "m",
        "fun f(n) ="
        "  var sum := 0 in"
        "  begin for i = 1 upto n do sum := sum + i end; sum end "
        "end",
        fe::BindingMode::kLibrary));
    ASSERT_OK((*s)->Commit());
  }
  auto s = store::ObjectStore::Open(path_);
  Universe u(s->get());
  ASSERT_OK(u.LoadPersistedModules());
  Oid f = *u.Lookup("m", "f");
  Value args[] = {Value::Int(100)};
  auto slow = u.Call(f, args);
  ASSERT_TRUE(slow.ok()) << slow.status().ToString();
  // PTML came from disk; reflect must still collapse the barriers.
  auto fast_oid = u.ReflectOptimize(f);
  ASSERT_TRUE(fast_oid.ok()) << fast_oid.status().ToString();
  auto fast = u.Call(*fast_oid, args);
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(slow->value.i, 5050);
  EXPECT_EQ(fast->value.i, 5050);
  EXPECT_LT(fast->steps, slow->steps);
}

TEST_F(PersistenceTest, CrossModuleLinksSurviveRestart) {
  {
    auto s = store::ObjectStore::Open(path_);
    Universe u(s->get());
    ASSERT_OK(u.InstallSource("lib", "fun sq(x) = x * x end",
                              fe::BindingMode::kDirect));
    ASSERT_OK(u.InstallSource("app", "fun g(x) = sq(x) + 1 end",
                              fe::BindingMode::kDirect));
    ASSERT_OK((*s)->Commit());
  }
  auto s = store::ObjectStore::Open(path_);
  Universe u(s->get());
  ASSERT_OK(u.LoadPersistedModules());
  Value args[] = {Value::Int(9)};
  auto r = u.Call(*u.Lookup("app", "g"), args);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->value.i, 82);
}

TEST_F(PersistenceTest, UncommittedModuleDoesNotSurvive) {
  {
    auto s = store::ObjectStore::Open(path_);
    Universe u(s->get());
    ASSERT_OK(u.InstallSource("m", "fun f(x) = x end",
                              fe::BindingMode::kDirect));
    // no Commit()
  }
  auto s = store::ObjectStore::Open(path_);
  Universe u(s->get());
  ASSERT_OK(u.LoadPersistedModules());
  EXPECT_FALSE(u.Lookup("m", "f").ok());
}

TEST_F(PersistenceTest, CompactionPreservesUniverse) {
  {
    auto s = store::ObjectStore::Open(path_);
    Universe u(s->get());
    ASSERT_OK(u.InstallSource("m", "fun f(x) = x * 3 end",
                              fe::BindingMode::kLibrary));
    ASSERT_OK((*s)->Commit());
    ASSERT_OK((*s)->Compact());
  }
  auto s = store::ObjectStore::Open(path_);
  Universe u(s->get());
  ASSERT_OK(u.LoadPersistedModules());
  Value args[] = {Value::Int(14)};
  auto r = u.Call(*u.Lookup("m", "f"), args);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->value.i, 42);
}

}  // namespace
}  // namespace tml
