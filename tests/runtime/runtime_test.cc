// End-to-end runtime tests: installing persistent modules, linking through
// the object store, dynamic binding, and the reflective optimizer (§4.1).

#include <gtest/gtest.h>

#include "core/printer.h"
#include "query/relation.h"
#include "runtime/universe.h"
#include "tests/test_util.h"

namespace tml {
namespace {

using rt::InstallOptions;
using rt::Universe;
using vm::Value;

std::unique_ptr<store::ObjectStore> MemStore() {
  auto s = store::ObjectStore::Open("");
  EXPECT_TRUE(s.ok());
  return std::move(*s);
}

TEST(Runtime, InstallAndCallDirectMode) {
  auto s = MemStore();
  Universe u(s.get());
  ASSERT_OK(u.InstallSource("m", "fun f(x) = x * 2 + 1 end",
                            fe::BindingMode::kDirect));
  auto oid = u.Lookup("m", "f");
  ASSERT_TRUE(oid.ok());
  Value args[] = {Value::Int(20)};
  auto r = u.Call(*oid, args);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->value.i, 41);
}

TEST(Runtime, LibraryModeCallsThroughStore) {
  auto s = MemStore();
  Universe u(s.get());
  ASSERT_OK(u.InstallSource("m", "fun f(x) = x * 2 + 1 end",
                            fe::BindingMode::kLibrary));
  Value args[] = {Value::Int(20)};
  auto r = u.Call(*u.Lookup("m", "f"), args);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->value.i, 41);
}

TEST(Runtime, CrossFunctionCallsAndRecursion) {
  auto s = MemStore();
  Universe u(s.get());
  ASSERT_OK(u.InstallSource(
      "m",
      "fun fact(n) = if n <= 1 then 1 else n * fact(n - 1) end end\n"
      "fun twice_fact(n) = fact(n) + fact(n) end",
      fe::BindingMode::kDirect));
  Value args[] = {Value::Int(5)};
  auto r = u.Call(*u.Lookup("m", "twice_fact"), args);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->value.i, 240);
}

TEST(Runtime, CrossModuleLinking) {
  auto s = MemStore();
  Universe u(s.get());
  ASSERT_OK(u.InstallSource("lib", "fun square(x) = x * x end",
                            fe::BindingMode::kDirect));
  ASSERT_OK(u.InstallSource("app", "fun g(x) = square(x) + 1 end",
                            fe::BindingMode::kDirect));
  Value args[] = {Value::Int(6)};
  auto r = u.Call(*u.Lookup("app", "g"), args);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->value.i, 37);
}

TEST(Runtime, UnresolvedNameFailsInstall) {
  auto s = MemStore();
  Universe u(s.get());
  Status st = u.InstallSource("m", "fun f(x) = mystery(x) end",
                              fe::BindingMode::kDirect);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
}

TEST(Runtime, DuplicateModuleRejected) {
  auto s = MemStore();
  Universe u(s.get());
  ASSERT_OK(u.InstallSource("m", "fun f(x) = x end",
                            fe::BindingMode::kDirect));
  EXPECT_FALSE(u.InstallSource("m", "fun f(x) = x end",
                               fe::BindingMode::kDirect)
                   .ok());
}

TEST(Runtime, StaticOptimizationPreservesBehaviour) {
  auto s = MemStore();
  Universe u(s.get());
  InstallOptions opts;
  opts.static_optimize = true;
  ASSERT_OK(u.InstallSource(
      "m",
      "fun f(x) = let a = 2 * 3 in x * a + (10 - 4) end",
      fe::BindingMode::kLibrary, opts));
  Value args[] = {Value::Int(5)};
  auto r = u.Call(*u.Lookup("m", "f"), args);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->value.i, 36);
}

TEST(Reflect, OptimizedClosureComputesSameResult) {
  auto s = MemStore();
  Universe u(s.get());
  ASSERT_OK(u.InstallSource(
      "m",
      "fun f(x) ="
      "  var sum := 0 in"
      "  begin for i = 1 upto x do sum := sum + i * i end; sum end "
      "end",
      fe::BindingMode::kLibrary));
  Oid f = *u.Lookup("m", "f");
  Value args[] = {Value::Int(50)};
  auto before = u.Call(f, args);
  ASSERT_TRUE(before.ok()) << before.status().ToString();

  rt::ReflectStats stats;
  auto opt = u.ReflectOptimize(f, {}, &stats);
  ASSERT_TRUE(opt.ok()) << opt.status().ToString();
  auto after = u.Call(*opt, args);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(before->value.i, after->value.i);
  EXPECT_FALSE(after->raised);
  EXPECT_GT(stats.bindings_resolved, 0u);
}

TEST(Reflect, DynamicOptimizationBeatsStatic) {
  // The E1/E3 mechanism in miniature: library-mode code speeds up by more
  // than 1.5x once the reflective optimizer collapses the library
  // abstraction barrier (the paper reports > 2x for full programs).
  auto s = MemStore();
  Universe u(s.get());
  ASSERT_OK(u.InstallSource(
      "m",
      "fun f(n) ="
      "  var sum := 0 in"
      "  begin for i = 1 upto n do sum := sum + i end; sum end "
      "end",
      fe::BindingMode::kLibrary));
  Oid f = *u.Lookup("m", "f");
  Value args[] = {Value::Int(2000)};
  auto slow = u.Call(f, args);
  ASSERT_TRUE(slow.ok());
  auto opt = u.ReflectOptimize(f);
  ASSERT_TRUE(opt.ok()) << opt.status().ToString();
  auto fast = u.Call(*opt, args);
  ASSERT_TRUE(fast.ok()) << fast.status().ToString();
  EXPECT_EQ(slow->value.i, fast->value.i);
  EXPECT_EQ(fast->value.i, 2001000);
  EXPECT_LT(fast->steps * 3, slow->steps * 2)
      << "dynamic optimization should cut >= 1/3 of executed instructions: "
      << slow->steps << " -> " << fast->steps;
}

TEST(Reflect, RecursiveFunctionStaysRecursiveAndCorrect) {
  auto s = MemStore();
  Universe u(s.get());
  ASSERT_OK(u.InstallSource(
      "m", "fun fib(n) = if n < 2 then n else fib(n-1) + fib(n-2) end end",
      fe::BindingMode::kLibrary));
  Oid fib = *u.Lookup("m", "fib");
  auto opt = u.ReflectOptimize(fib);
  ASSERT_TRUE(opt.ok()) << opt.status().ToString();
  Value args[] = {Value::Int(15)};
  auto slow = u.Call(fib, args);
  auto fast = u.Call(*opt, args);
  ASSERT_TRUE(slow.ok());
  ASSERT_TRUE(fast.ok()) << fast.status().ToString();
  EXPECT_EQ(slow->value.i, 610);
  EXPECT_EQ(fast->value.i, 610);
  EXPECT_LT(fast->steps, slow->steps);
}

TEST(Reflect, PaperComplexAbsExample) {
  // §4.1: abs(c) = sqrt(x(c)*x(c) + y(c)*y(c)) with complex numbers as
  // 2-element arrays behind accessor functions in another module.
  auto s = MemStore();
  Universe u(s.get());
  ASSERT_OK(u.InstallSource(
      "complex",
      "fun make(x, y) = array(x, y) end\n"
      "fun getx(c) = c[0] end\n"
      "fun gety(c) = c[1] end",
      fe::BindingMode::kLibrary));
  ASSERT_OK(u.InstallSource(
      "app",
      "fun cabs(c) ="
      "  sqrt(real(getx(c) * getx(c) + gety(c) * gety(c))) "
      "end",
      fe::BindingMode::kLibrary));
  Oid make = *u.Lookup("complex", "make");
  Oid cabs = *u.Lookup("app", "cabs");

  Value margs[] = {Value::Int(3), Value::Int(4)};
  auto c = u.Call(make, margs);
  ASSERT_TRUE(c.ok());
  Value cargs[] = {c->value};
  auto plain = u.Call(cabs, cargs);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  EXPECT_DOUBLE_EQ(plain->value.r, 5.0);

  // let optimizedAbs = reflect.optimize(abs)
  rt::ReflectStats stats;
  auto optimized = u.ReflectOptimize(cabs, {}, &stats);
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
  auto fast = u.Call(*optimized, cargs);
  ASSERT_TRUE(fast.ok()) << fast.status().ToString();
  EXPECT_DOUBLE_EQ(fast->value.r, 5.0);
  // The accessor bodies (getx/gety) and library ops were inlined.
  EXPECT_GE(stats.bindings_resolved, 3u);
  EXPECT_LT(fast->steps, plain->steps);
}

TEST(Reflect, ReflectTermMentionsCollectedBindings) {
  auto s = MemStore();
  Universe u(s.get());
  ASSERT_OK(u.InstallSource("m", "fun f(x) = x + 1 end",
                            fe::BindingMode::kLibrary));
  ir::Module m;
  auto term = u.ReflectTerm(*u.Lookup("m", "f"), &m);
  ASSERT_TRUE(term.ok()) << term.status().ToString();
  std::string printed = ir::PrintValue(m, *term);
  EXPECT_NE(printed.find("Y"), std::string::npos);
  EXPECT_NE(printed.find("int_add"), std::string::npos);
}

TEST(Reflect, FailsWithoutPtml) {
  auto s = MemStore();
  Universe u(s.get());
  InstallOptions opts;
  opts.attach_ptml = false;
  ASSERT_OK(u.InstallSource("m", "fun f(x) = x end",
                            fe::BindingMode::kDirect, opts));
  auto r = u.ReflectOptimize(*u.Lookup("m", "f"));
  EXPECT_FALSE(r.ok());
}

TEST(Reflect, OptimizedClosureIsItselfReflectable) {
  auto s = MemStore();
  Universe u(s.get());
  ASSERT_OK(u.InstallSource("m", "fun f(x) = x * 2 end",
                            fe::BindingMode::kLibrary));
  auto once = u.ReflectOptimize(*u.Lookup("m", "f"));
  ASSERT_TRUE(once.ok()) << once.status().ToString();
  auto twice = u.ReflectOptimize(*once);
  ASSERT_TRUE(twice.ok()) << twice.status().ToString();
  Value args[] = {Value::Int(21)};
  auto r = u.Call(*twice, args);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->value.i, 42);
}

TEST(Runtime, SizeReportAccountsPtml) {
  auto s = MemStore();
  Universe u(s.get());
  InstallOptions with;
  with.attach_ptml = true;
  ASSERT_OK(u.InstallSource("m", "fun f(x) = x * 2 + x / 3 end",
                            fe::BindingMode::kDirect, with));
  auto sizes = u.Sizes();
  EXPECT_GT(sizes.code_bytes, 0u);
  EXPECT_GT(sizes.ptml_bytes, 0u);
}

TEST(Runtime, PersistentRelationSwizzles) {
  auto s = MemStore();
  Universe u(s.get());
  query::Relation rel;
  rel.columns = {"id", "score"};
  for (int i = 0; i < 10; ++i) {
    rel.tuples.push_back({int64_t{i}, int64_t{i * 10}});
  }
  auto rel_oid = u.StoreRelationBytes(query::EncodeRelation(rel));
  ASSERT_TRUE(rel_oid.ok());
  // A TL function that scans the relation OID like an array.
  ASSERT_OK(u.InstallSource(
      "q",
      "fun second_score(r) = let t = r[1] in t[1] end",
      fe::BindingMode::kDirect));
  Value args[] = {Value::OidV(*rel_oid)};
  auto r = u.Call(*u.Lookup("q", "second_score"), args);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->value.i, 10);
}

}  // namespace
}  // namespace tml
