// VM swizzle-cache invalidation: after a closure's stored code record
// changes (SwapCode, or raw store surgery plus InvalidateSwizzle), the VM
// re-resolves the OID on its next call — in-flight programs pick up the
// new code without a restart.  Includes the raised-exception path: an OID
// predicate that throws inside a query's CallSync, then is swapped for a
// non-throwing version.

#include <gtest/gtest.h>

#include "query/relation.h"
#include "runtime/universe.h"
#include "tests/test_util.h"
#include "vm/codegen.h"

namespace tml {
namespace {

using ir::Abstraction;
using ir::Module;
using query::Relation;
using rt::Universe;
using test::MustParseProgram;
using vm::Value;

std::unique_ptr<store::ObjectStore> MemStore() {
  auto s = store::ObjectStore::Open("");
  EXPECT_TRUE(s.ok());
  return std::move(*s);
}

constexpr const char* kComplexSrc =
    "fun make(x, y) = array(x, y) end\n"
    "fun getx(c) = c[0] end\n"
    "fun gety(c) = c[1] end";
constexpr const char* kAppSrc =
    "fun cabs(c) ="
    "  sqrt(real(getx(c) * getx(c) + gety(c) * gety(c))) "
    "end";

TEST(SwizzleInvalidation, SwapCodeTakesEffectOnNextCall) {
  auto s = MemStore();
  Universe u(s.get());
  ASSERT_OK(u.InstallSource("complex", kComplexSrc,
                            fe::BindingMode::kLibrary));
  ASSERT_OK(u.InstallSource("app", kAppSrc, fe::BindingMode::kLibrary));
  Oid cabs = *u.Lookup("app", "cabs");

  Value margs[] = {Value::Int(3), Value::Int(4)};
  auto c = u.Call(*u.Lookup("complex", "make"), margs);
  ASSERT_TRUE(c.ok());
  Value cargs[] = {c->value};

  // First call swizzles the unoptimized closure.
  auto before = u.Call(cabs, cargs);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->value.r, 5.0);

  auto optimized = u.ReflectOptimize(cabs);
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
  Oid old_code = *u.ClosureCodeOid(cabs);
  auto swapped = u.SwapCode(cabs, *optimized, u.binding_generation());
  ASSERT_TRUE(swapped.ok()) << swapped.status().ToString();
  ASSERT_TRUE(*swapped);
  EXPECT_NE(*u.ClosureCodeOid(cabs), old_code);

  // Same OID, same value, fewer steps: the stale swizzle was dropped and
  // the optimized code picked up without touching the caller.
  auto after = u.Call(cabs, cargs);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->value.r, 5.0);
  EXPECT_LT(after->steps, before->steps)
      << "post-swap call must run the optimized code";
}

TEST(SwizzleInvalidation, StaleGenerationRefusesInstall) {
  auto s = MemStore();
  Universe u(s.get());
  ASSERT_OK(u.InstallSource("complex", kComplexSrc,
                            fe::BindingMode::kLibrary));
  ASSERT_OK(u.InstallSource("app", kAppSrc, fe::BindingMode::kLibrary));
  Oid cabs = *u.Lookup("app", "cabs");
  auto optimized = u.ReflectOptimize(cabs);
  ASSERT_TRUE(optimized.ok());

  uint64_t gen = u.binding_generation();
  Oid code_before = *u.ClosureCodeOid(cabs);
  // A module installation moves the bindings: the snapshot is stale now.
  ASSERT_OK(u.InstallSource("late", "fun one() = 1 end",
                            fe::BindingMode::kLibrary));
  auto swapped = u.SwapCode(cabs, *optimized, gen);
  ASSERT_TRUE(swapped.ok());
  EXPECT_FALSE(*swapped) << "stale generation must reject the install";
  EXPECT_EQ(*u.ClosureCodeOid(cabs), code_before) << "nothing installed";

  // With a fresh snapshot the same swap goes through.
  auto retry = u.SwapCode(cabs, *optimized, u.binding_generation());
  ASSERT_TRUE(retry.ok());
  EXPECT_TRUE(*retry);
}

TEST(SwizzleInvalidation, RaisedPredicateThenSwapRecovers) {
  // A select whose predicate arrives as an OID value: the VM swizzles it
  // inside CallSync.  The first version throws; after swapping the OID's
  // code for a well-behaved predicate, the same query succeeds — the
  // exception unwind must not leave a stale swizzle behind.
  auto s = MemStore();
  Universe u(s.get());
  ASSERT_OK(u.InstallSource(
      "preds",
      "fun bad(t) = throw 13 end\n"
      "fun good(t) = t[0] < 50 end",
      fe::BindingMode::kLibrary));
  Oid bad = *u.Lookup("preds", "bad");
  Oid good = *u.Lookup("preds", "good");

  Module m;
  const Abstraction* prog = MustParseProgram(
      &m,
      "(proc (p r ce cc)"
      " (select p r ce (cont (out) (card out cc))))");
  vm::CodeUnit unit;
  auto fn = vm::CompileProc(&unit, m, prog, "q");
  ASSERT_TRUE(fn.ok());

  Relation rel;
  rel.columns = {"a"};
  for (int i = 0; i < 20; ++i) rel.tuples.push_back({int64_t{i * 10}});

  vm::VM* vm = u.vm();
  Value args[] = {Value::OidV(bad), query::RelationValue(rel, vm->heap())};
  vm->Pin(args[1]);
  auto r1 = vm->Run(*fn, args);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_TRUE(r1->raised) << "throwing predicate must raise out of select";

  // Swap bad's code for good's through the public path, then re-run the
  // *same* program with the *same* predicate OID.
  auto swapped = u.SwapCode(bad, good, u.binding_generation());
  ASSERT_TRUE(swapped.ok()) << swapped.status().ToString();
  ASSERT_TRUE(*swapped);

  auto r2 = vm->Run(*fn, args);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_FALSE(r2->raised);
  EXPECT_EQ(r2->value.i, 5) << "0,10,20,30,40 pass the swapped predicate";
}

TEST(SwizzleInvalidation, RawRecordChangePlusExplicitInvalidate) {
  // The lower-level contract: rewriting the closure record in the store
  // does nothing to a hot swizzle — or to the universe's published
  // binding snapshot — until InvalidateBinding drops both.
  auto s = MemStore();
  Universe u(s.get());
  ASSERT_OK(u.InstallSource(
      "preds",
      "fun bad(t) = throw 13 end\n"
      "fun good(t) = t[0] < 50 end",
      fe::BindingMode::kLibrary));
  Oid bad = *u.Lookup("preds", "bad");
  Oid good = *u.Lookup("preds", "good");

  Module m;
  const Abstraction* prog = MustParseProgram(
      &m,
      "(proc (p r ce cc)"
      " (select p r ce (cont (out) (card out cc))))");
  vm::CodeUnit unit;
  auto fn = vm::CompileProc(&unit, m, prog, "q");
  ASSERT_TRUE(fn.ok());

  Relation rel;
  rel.columns = {"a"};
  for (int i = 0; i < 4; ++i) rel.tuples.push_back({int64_t{i}});

  vm::VM* vm = u.vm();
  Value args[] = {Value::OidV(bad), query::RelationValue(rel, vm->heap())};
  vm->Pin(args[1]);
  ASSERT_TRUE(vm->Run(*fn, args)->raised);

  // Store surgery: point bad's record at good's bytes.
  auto good_rec = s->Get(good);
  ASSERT_TRUE(good_rec.ok());
  ASSERT_OK(s->Put(bad, store::ObjType::kClosure, good_rec->bytes));

  // The swizzle cache (and the published binding snapshot behind it)
  // still hold the old closure.
  EXPECT_TRUE(vm->Run(*fn, args)->raised)
      << "without invalidation the cached swizzle keeps the old code";

  // Dropping only the VM's swizzle is not enough anymore: re-resolution
  // hits the universe's published snapshot, which is invalidated by
  // InvalidateBinding (the out-of-band-surgery hook).
  vm->InvalidateSwizzle(bad);
  EXPECT_TRUE(vm->Run(*fn, args)->raised)
      << "the published snapshot still serves the old code";

  uint64_t gen = u.binding_generation();
  u.InvalidateBinding(bad);
  EXPECT_GT(u.binding_generation(), gen)
      << "surgery moves the binding generation";
  auto r = vm->Run(*fn, args);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->raised) << "invalidation forces re-resolution";
  EXPECT_EQ(r->value.i, 4);
}

}  // namespace
}  // namespace tml
