// The new concurrency surface of the un-serialized Universe: N mutator
// threads call through the published binding table (each on its own
// AddWorkerVm instance, lock-free snapshot reads) while writers install
// modules and swap code.  Invariants under test:
//
//   * calls never fail, raise, or compute a wrong answer during installs
//     and swaps (the snapshot a reader holds is always complete);
//   * swaps are never lost — after SwapCode returns true every worker
//     observes the optimized code within at most one further call;
//   * binding_generation() is monotone under concurrent installs/swaps;
//   * a live AdaptiveManager promoting in the background coexists with
//     the mutators (the end-to-end shape of bench_concurrent).
//
// Run under tools/check.sh --tsan (the suite name matches the Concurrent
// regex) as well as in the tier-1 build.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "adaptive/manager.h"
#include "runtime/universe.h"
#include "tests/test_util.h"

namespace tml {
namespace {

using adaptive::AdaptiveManager;
using adaptive::AdaptiveOptions;
using rt::Universe;
using vm::Value;

constexpr const char* kComplexSrc =
    "fun make(x, y) = array(x, y) end\n"
    "fun getx(c) = c[0] end\n"
    "fun gety(c) = c[1] end";
constexpr const char* kAppSrc =
    "fun cabs(c) ="
    "  sqrt(real(getx(c) * getx(c) + gety(c) * gety(c))) "
    "end";

std::unique_ptr<store::ObjectStore> MemStore() {
  auto s = store::ObjectStore::Open("");
  EXPECT_TRUE(s.ok());
  return std::move(*s);
}

void InstallComplexApp(Universe* u) {
  ASSERT_OK(
      u->InstallSource("complex", kComplexSrc, fe::BindingMode::kLibrary));
  ASSERT_OK(u->InstallSource("app", kAppSrc, fe::BindingMode::kLibrary));
}

// One worker thread's call loop: make a 3-4-5 argument on the worker's own
// heap, then hammer cabs.  Any failure/raise/wrong answer is counted, and
// the steps of the most recent call are exported so the main thread can
// watch a code swap propagate.
void MutatorLoop(vm::VM* w, Oid make, Oid cabs,
                 const std::atomic<bool>* stop, std::atomic<int>* failures,
                 std::atomic<uint64_t>* last_steps,
                 std::atomic<uint64_t>* calls_done) {
  Value margs[] = {Value::Int(3), Value::Int(4)};
  auto c = w->RunClosure(Value::OidV(make), margs);
  if (!c.ok() || c->raised) {
    failures->fetch_add(1);
    return;
  }
  w->Pin(c->value);  // root the argument against the worker's private GC
  Value cargs[] = {c->value};
  while (!stop->load(std::memory_order_acquire)) {
    auto r = w->RunClosure(Value::OidV(cabs), cargs);
    if (!r.ok() || r->raised || r->value.r != 5.0) {
      failures->fetch_add(1);
      return;
    }
    last_steps->store(r->steps, std::memory_order_release);
    calls_done->fetch_add(1, std::memory_order_acq_rel);
  }
}

TEST(ConcurrentUniverse, LookupsAndCallsSurviveConcurrentInstalls) {
  auto s = MemStore();
  Universe u(s.get());
  InstallComplexApp(&u);
  Oid make = *u.Lookup("complex", "make");
  Oid cabs = *u.Lookup("app", "cabs");

  constexpr int kThreads = 4;
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::atomic<uint64_t> last_steps[kThreads] = {};
  std::atomic<uint64_t> calls_done[kThreads] = {};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    vm::VM* w = u.AddWorkerVm();
    threads.emplace_back(MutatorLoop, w, make, cabs, &stop, &failures,
                         &last_steps[t], &calls_done[t]);
  }

  // Writer side: keep installing fresh modules (each bumps the binding
  // generation and republishes the snapshot) while lookups run hot.
  uint64_t gen0 = u.binding_generation();
  for (int i = 0; i < 20; ++i) {
    std::string name = "late" + std::to_string(i);
    ASSERT_OK(u.InstallSource(name,
                              "fun one() = " + std::to_string(i) + " end",
                              fe::BindingMode::kLibrary));
    ASSERT_TRUE(u.Lookup(name, "one").ok());
    ASSERT_TRUE(u.Lookup("app", "cabs").ok())
        << "existing bindings stay visible mid-install";
  }
  EXPECT_EQ(u.binding_generation(), gen0 + 20);

  // Let every worker prove it made progress after the last install.
  uint64_t marks[kThreads];
  for (int t = 0; t < kThreads; ++t) marks[t] = calls_done[t].load();
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  for (int t = 0; t < kThreads; ++t) {
    while (failures.load() == 0 && calls_done[t].load() <= marks[t] &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  stop.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0) << "no call may fail during installs";
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_GT(calls_done[t].load(), marks[t]);
  }
}

TEST(ConcurrentUniverse, SwapIsNeverLostAcrossWorkers) {
  auto s = MemStore();
  Universe u(s.get());
  InstallComplexApp(&u);
  Oid make = *u.Lookup("complex", "make");
  Oid cabs = *u.Lookup("app", "cabs");

  constexpr int kThreads = 4;
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::atomic<uint64_t> last_steps[kThreads] = {};
  std::atomic<uint64_t> calls_done[kThreads] = {};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    vm::VM* w = u.AddWorkerVm();
    threads.emplace_back(MutatorLoop, w, make, cabs, &stop, &failures,
                         &last_steps[t], &calls_done[t]);
  }

  // Baseline: wait until every worker has published an unoptimized step
  // count.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  for (int t = 0; t < kThreads; ++t) {
    while (last_steps[t].load(std::memory_order_acquire) == 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_GT(last_steps[t].load(), 0u) << "worker " << t << " never ran";
  }
  uint64_t unopt_steps = last_steps[0].load(std::memory_order_acquire);

  auto optimized = u.ReflectOptimize(cabs);
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
  uint64_t gen = u.binding_generation();
  auto swapped = u.SwapCode(cabs, *optimized, gen);
  ASSERT_TRUE(swapped.ok()) << swapped.status().ToString();
  ASSERT_TRUE(*swapped);
  EXPECT_GT(u.binding_generation(), gen) << "a swap moves the generation";

  // The no-lost-swap guarantee: every worker's calls drop below the
  // unoptimized step count (at most one in-flight stale call, then the
  // drained invalidation forces re-resolution against the new snapshot).
  deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  bool all_optimized = false;
  while (!all_optimized && failures.load() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    all_optimized = true;
    for (int t = 0; t < kThreads; ++t) {
      uint64_t steps = last_steps[t].load(std::memory_order_acquire);
      if (steps == 0 || steps >= unopt_steps) all_optimized = false;
    }
    if (!all_optimized) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  stop.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(all_optimized)
      << "every worker must pick up the swapped code — a swap was lost";
}

TEST(ConcurrentUniverse, GenerationMonotoneUnderAdaptiveWriter) {
  auto s = MemStore();
  Universe u(s.get());
  InstallComplexApp(&u);
  Oid make = *u.Lookup("complex", "make");
  Oid cabs = *u.Lookup("app", "cabs");

  // An aggressive real adaptive manager as the background writer.
  AdaptiveOptions aopts;
  aopts.poll_interval = std::chrono::milliseconds(1);
  aopts.policy.hot_steps = 200;
  aopts.policy.min_calls = 2;
  aopts.policy.decay = 1.0;
  aopts.persist_profile = false;
  AdaptiveManager m(&u, aopts);
  m.Start();

  constexpr int kThreads = 4;
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::atomic<uint64_t> last_steps[kThreads] = {};
  std::atomic<uint64_t> calls_done[kThreads] = {};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    vm::VM* w = u.AddWorkerVm();
    threads.emplace_back(MutatorLoop, w, make, cabs, &stop, &failures,
                         &last_steps[t], &calls_done[t]);
  }

  // Observer: the generation must never run backwards while the adaptive
  // worker promotes and swaps underneath the mutators.
  std::atomic<bool> monotone{true};
  std::thread observer([&] {
    uint64_t prev = u.binding_generation();
    while (!stop.load(std::memory_order_acquire)) {
      uint64_t cur = u.binding_generation();
      if (cur < prev) monotone.store(false, std::memory_order_release);
      prev = cur;
    }
  });

  // Run until the adaptive writer has actually promoted (the interesting
  // interleaving), bounded by a deadline on slow machines.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (u.adaptive_counters().promotions == 0 && failures.load() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();
  observer.join();
  m.Stop();

  EXPECT_EQ(failures.load(), 0)
      << "mutators must keep answering while the adaptive writer swaps";
  EXPECT_TRUE(monotone.load()) << "binding generation ran backwards";
  EXPECT_GT(u.adaptive_counters().promotions, 0u)
      << "the background writer never promoted — the race never happened";
  // Merged profile attribution: heat from the worker VMs reached the
  // manager (promotions prove it, but check the merge directly too).
  bool saw_cabs = false;
  for (const vm::FnSample& fs : u.SnapshotProfile()) {
    if (fs.fn != nullptr && fs.calls > 0) saw_cabs = true;
  }
  EXPECT_TRUE(saw_cabs);
}

}  // namespace
}  // namespace tml
