// The persistent reflect-optimize cache: repeated `reflect.optimize`
// calls — and calls in a fresh Universe after the store is reopened —
// link the previously regenerated code instead of re-running the §4.1
// pipeline, while any change to a binding OID or the optimizer options
// changes the fingerprint and forces a fresh run.

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "runtime/universe.h"
#include "support/varint.h"
#include "tests/test_util.h"

namespace tml {
namespace {

using rt::ReflectStats;
using rt::Universe;
using vm::Value;

constexpr const char* kComplexSrc =
    "fun make(x, y) = array(x, y) end\n"
    "fun getx(c) = c[0] end\n"
    "fun gety(c) = c[1] end";
constexpr const char* kAppSrc =
    "fun cabs(c) ="
    "  sqrt(real(getx(c) * getx(c) + gety(c) * gety(c))) "
    "end";

// The kCode OID inside a closure record is its leading varint.
Oid CodeOidOfClosure(store::ObjectStore* s, Oid closure_oid) {
  auto obj = s->Get(closure_oid);
  if (!obj.ok()) return kNullOid;
  VarintReader r(obj->bytes.data(), obj->bytes.size());
  auto code_oid = r.ReadVarint();
  return code_oid.ok() ? *code_oid : kNullOid;
}

// Re-encode a closure record with the binding for `name` pointing at
// `new_oid` (test-side surgery to simulate a rebound dependency).
std::string RebindClosure(const std::string& bytes, const std::string& name,
                          Oid new_oid) {
  VarintReader r(bytes.data(), bytes.size());
  uint64_t code_oid = *r.ReadVarint();
  uint64_t n = *r.ReadVarint();
  std::string out;
  PutVarint(&out, code_oid);
  PutVarint(&out, n);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t len = *r.ReadVarint();
    std::string bname = *r.ReadBytes(len);
    uint64_t boid = *r.ReadVarint();
    PutVarint(&out, bname.size());
    out.append(bname);
    PutVarint(&out, bname == name ? new_oid : boid);
  }
  return out;
}

class ReflectCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/tml_reflect_cache_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".db";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(ReflectCacheTest, RepeatedReflectHitsCache) {
  auto s = store::ObjectStore::Open("");
  ASSERT_TRUE(s.ok());
  Universe u(s->get());
  ASSERT_OK(u.InstallSource("complex", kComplexSrc,
                            fe::BindingMode::kLibrary));
  ASSERT_OK(u.InstallSource("app", kAppSrc, fe::BindingMode::kLibrary));
  Oid cabs = *u.Lookup("app", "cabs");

  ReflectStats first;
  auto r1 = u.ReflectOptimize(cabs, {}, &first);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_EQ(first.cache_misses, 1u);
  EXPECT_EQ(first.cache_hits, 0u);
  EXPECT_GT(first.cache_bytes, 0u);

  ReflectStats second;
  auto r2 = u.ReflectOptimize(cabs, {}, &second);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(second.cache_hits, 1u);
  EXPECT_EQ(second.cache_misses, 0u);
  EXPECT_EQ(*r1, *r2) << "a hit must return the cached closure";

  Value margs[] = {Value::Int(3), Value::Int(4)};
  auto c = u.Call(*u.Lookup("complex", "make"), margs);
  ASSERT_TRUE(c.ok());
  Value cargs[] = {c->value};
  auto v1 = u.Call(*r1, cargs);
  auto v2 = u.Call(*r2, cargs);
  ASSERT_TRUE(v1.ok() && v2.ok());
  EXPECT_EQ(v1->value.r, 5.0);
  EXPECT_EQ(v2->value.r, 5.0);
}

TEST_F(ReflectCacheTest, DifferentOptionsMiss) {
  auto s = store::ObjectStore::Open("");
  ASSERT_TRUE(s.ok());
  Universe u(s->get());
  ASSERT_OK(u.InstallSource("complex", kComplexSrc,
                            fe::BindingMode::kLibrary));
  ASSERT_OK(u.InstallSource("app", kAppSrc, fe::BindingMode::kLibrary));
  Oid cabs = *u.Lookup("app", "cabs");

  ReflectStats stats;
  ASSERT_TRUE(u.ReflectOptimize(cabs, {}, &stats).ok());
  EXPECT_EQ(stats.cache_misses, 1u);

  // The options participate in the fingerprint: a different optimizer
  // configuration must not be served the old result.
  ir::OptimizerOptions other;
  other.expand.budget = 1000;
  ReflectStats stats2;
  ASSERT_TRUE(u.ReflectOptimize(cabs, other, &stats2).ok());
  EXPECT_EQ(stats2.cache_misses, 1u);
  EXPECT_EQ(stats2.cache_hits, 0u);

  // Each configuration now hits its own entry.
  ReflectStats stats3;
  ASSERT_TRUE(u.ReflectOptimize(cabs, other, &stats3).ok());
  EXPECT_EQ(stats3.cache_hits, 1u);
}

TEST_F(ReflectCacheTest, RestartHitsCacheWithIdenticalCode) {
  Oid cabs = kNullOid;
  Oid cached = kNullOid;
  std::string code_bytes;
  double result = 0;
  {
    auto s = store::ObjectStore::Open(path_);
    ASSERT_TRUE(s.ok());
    Universe u(s->get());
    ASSERT_OK(u.InstallSource("complex", kComplexSrc,
                              fe::BindingMode::kLibrary));
    ASSERT_OK(u.InstallSource("app", kAppSrc, fe::BindingMode::kLibrary));
    cabs = *u.Lookup("app", "cabs");
    ReflectStats stats;
    auto r = u.ReflectOptimize(cabs, {}, &stats);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(stats.cache_misses, 1u);
    cached = *r;
    code_bytes = (*s)->Get(CodeOidOfClosure(s->get(), cached))->bytes;
    Value margs[] = {Value::Int(3), Value::Int(4)};
    auto c = u.Call(*u.Lookup("complex", "make"), margs);
    ASSERT_TRUE(c.ok());
    Value cargs[] = {c->value};
    auto v = u.Call(cached, cargs);
    ASSERT_TRUE(v.ok());
    result = v->value.r;
    ASSERT_OK((*s)->Commit());
  }
  // "Restart": fresh store handle, fresh Universe, fresh VM.
  auto s = store::ObjectStore::Open(path_);
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  Universe u(s->get());
  ASSERT_OK(u.LoadPersistedModules());
  ReflectStats stats;
  auto r = u.ReflectOptimize(cabs, {}, &stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(stats.cache_hits, 1u) << "post-restart call must hit the cache";
  EXPECT_EQ(stats.cache_misses, 0u);
  EXPECT_EQ(*r, cached);
  EXPECT_EQ((*s)->Get(CodeOidOfClosure(s->get(), *r))->bytes, code_bytes)
      << "cache hit must link byte-identical code";
  Value margs[] = {Value::Int(3), Value::Int(4)};
  auto c = u.Call(*u.Lookup("complex", "make"), margs);
  ASSERT_TRUE(c.ok());
  Value cargs[] = {c->value};
  auto v = u.Call(*r, cargs);
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->value.r, result);
}

TEST_F(ReflectCacheTest, CompactRetainsCacheRecords) {
  Oid cabs = kNullOid;
  {
    auto s = store::ObjectStore::Open(path_);
    ASSERT_TRUE(s.ok());
    Universe u(s->get());
    ASSERT_OK(u.InstallSource("complex", kComplexSrc,
                              fe::BindingMode::kLibrary));
    ASSERT_OK(u.InstallSource("app", kAppSrc, fe::BindingMode::kLibrary));
    cabs = *u.Lookup("app", "cabs");
    ASSERT_TRUE(u.ReflectOptimize(cabs).ok());
    ASSERT_OK((*s)->Commit());
    ASSERT_OK((*s)->Compact());
  }
  auto s = store::ObjectStore::Open(path_);
  ASSERT_TRUE(s.ok());
  EXPECT_GT((*s)->live_bytes(store::ObjType::kReflectCache), 0u);
  Universe u(s->get());
  ASSERT_OK(u.LoadPersistedModules());
  ReflectStats stats;
  auto r = u.ReflectOptimize(cabs, {}, &stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(stats.cache_hits, 1u);
}

TEST_F(ReflectCacheTest, RebindingADependencyInvalidates) {
  auto s = store::ObjectStore::Open("");
  ASSERT_TRUE(s.ok());
  Universe u(s->get());
  ASSERT_OK(u.InstallSource("lib",
                            "fun sq(x) = x * x end\n"
                            "fun cube(x) = x * x * x end",
                            fe::BindingMode::kLibrary));
  ASSERT_OK(u.InstallSource("app", "fun g(x) = sq(x) + 1 end",
                            fe::BindingMode::kLibrary));
  Oid g = *u.Lookup("app", "g");
  Oid cube = *u.Lookup("lib", "cube");

  Value args[] = {Value::Int(3)};
  ReflectStats stats;
  auto r1 = u.ReflectOptimize(g, {}, &stats);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_EQ(stats.cache_misses, 1u);
  auto v1 = u.Call(*r1, args);
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(v1->value.i, 10);  // sq(3) + 1

  // Rebind g's free identifier "sq" to cube's closure: the binding OID in
  // the fingerprint changes, so the stale optimized code is not served.
  auto rec = (*s)->Get(g);
  ASSERT_TRUE(rec.ok());
  ASSERT_OK((*s)->Put(g, store::ObjType::kClosure,
                      RebindClosure(rec->bytes, "sq", cube)));

  ReflectStats stats2;
  auto r2 = u.ReflectOptimize(g, {}, &stats2);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(stats2.cache_misses, 1u) << "rebound dependency must miss";
  EXPECT_EQ(stats2.cache_hits, 0u);
  auto v2 = u.Call(*r2, args);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v2->value.i, 28);  // cube(3) + 1

  // The rebound configuration is itself cached now.
  ReflectStats stats3;
  auto r3 = u.ReflectOptimize(g, {}, &stats3);
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(stats3.cache_hits, 1u);
  EXPECT_EQ(*r2, *r3);
}

}  // namespace
}  // namespace tml
