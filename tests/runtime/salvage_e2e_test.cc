// End-to-end salvage: flip bytes in a live store file and re-run the
// examples/adaptive_optimization flow.  Corruption of rebuildable records
// (the kReflectCache index, the kProfile hotness record) must degrade to
// a recompile / re-profile with the process up — never a refusal to open
// or a crash.

#include <string>

#include <gtest/gtest.h>

#include "adaptive/manager.h"
#include "adaptive/profile.h"
#include "runtime/universe.h"
#include "store/reflect_cache.h"
#include "support/fault_vfs.h"
#include "telemetry/metrics.h"
#include "tests/test_util.h"

namespace tml {
namespace {

using adaptive::AdaptiveManager;
using adaptive::AdaptiveOptions;
using rt::ReflectStats;
using rt::Universe;
using store::ObjectStore;
using store::ObjType;
using vm::Value;

constexpr const char* kPath = "universe.db";
constexpr const char* kComplexSrc =
    "fun make(x, y) = array(x, y) end\n"
    "fun getx(c) = c[0] end\n"
    "fun gety(c) = c[1] end";
constexpr const char* kAppSrc =
    "fun cabs(c) ="
    "  sqrt(real(getx(c) * getx(c) + gety(c) * gety(c))) "
    "end";

store::OpenOptions Salvage(FaultVfs* vfs) {
  store::OpenOptions o;
  o.vfs = vfs;
  o.recovery = store::RecoveryPolicy::kSalvage;
  return o;
}

Status InstallComplexApp(Universe* u) {
  TML_RETURN_NOT_OK(
      u->InstallSource("complex", kComplexSrc, fe::BindingMode::kLibrary));
  return u->InstallSource("app", kAppSrc, fe::BindingMode::kLibrary);
}

double CallCabs(Universe* u, Oid cabs) {
  Value margs[] = {Value::Int(3), Value::Int(4)};
  auto c = u->Call(*u->Lookup("complex", "make"), margs);
  if (!c.ok()) return -1.0;
  Value cargs[] = {c->value};
  auto v = u->Call(cabs, cargs);
  return v.ok() ? v->value.r : -1.0;
}

/// XOR one byte inside the payload of the record anchored at `root` so its
/// CRC no longer verifies; returns false if the record cannot be found.
bool CorruptRootRecord(FaultVfs* vfs, const std::string& root) {
  auto s = ObjectStore::Open(kPath, Salvage(vfs));
  if (!s.ok()) return false;
  auto oid = (*s)->GetRoot(root);
  if (!oid.ok()) return false;
  auto rec = (*s)->Get(*oid);
  if (!rec.ok() || rec->bytes.size() < 4) return false;
  auto snap = vfs->SnapshotFile(kPath);
  if (!snap.ok()) return false;
  size_t pos = snap->rfind(rec->bytes);  // latest version wins on replay
  if (pos == std::string::npos) return false;
  return vfs->CorruptFile(kPath, pos + rec->bytes.size() / 2, 0x55).ok();
}

TEST(SalvageE2E, CorruptReflectCacheDegradesToRecompile) {
  FaultVfs vfs;
  Oid cabs = kNullOid;
  Oid optimized = kNullOid;
  {
    auto s = ObjectStore::Open(kPath, Salvage(&vfs));
    ASSERT_TRUE(s.ok());
    Universe u(s->get());
    ASSERT_OK(InstallComplexApp(&u));
    cabs = *u.Lookup("app", "cabs");
    ReflectStats stats;
    auto r = u.ReflectOptimize(cabs, {}, &stats);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(stats.cache_misses, 1u);
    optimized = *r;
    EXPECT_EQ(CallCabs(&u, optimized), 5.0);
    ASSERT_OK((*s)->Commit());
  }

  ASSERT_TRUE(CorruptRootRecord(&vfs, store::kReflectCacheRoot));

  telemetry::Counter* degrades = telemetry::Registry::Global().GetCounter(
      "tml.reflect.cache_corrupt_degrades");
  uint64_t degrades_before = degrades->value();

  auto s = ObjectStore::Open(kPath, Salvage(&vfs));
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_TRUE((*s)->salvage_report().salvaged);
  EXPECT_GE((*s)->salvage_report().quarantined_records, 1u);
  Universe u(s->get());
  ASSERT_OK(u.LoadPersistedModules());
  // The cache index is gone, so this is a miss — a recompile, not an
  // error — and the database keeps answering.
  ReflectStats stats;
  auto r = u.ReflectOptimize(cabs, {}, &stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(degrades->value(), degrades_before + 1);
  EXPECT_EQ(CallCabs(&u, *r), 5.0);
  // The rebuilt index serves hits again.
  ReflectStats again;
  ASSERT_TRUE(u.ReflectOptimize(cabs, {}, &again).ok());
  EXPECT_EQ(again.cache_hits, 1u);
}

// The reflect-cache index is a rebuildable acceleration structure: a
// write fault while persisting it (ENOSPC on the index append) must not
// fail the ReflectOptimize that produced a perfectly good result.  Sweep
// a single transient fault across every syscall of one ReflectOptimize:
// faults on required writes surface as errors, a fault on the index
// persist is absorbed — and at least one such op must exist.
TEST(SalvageE2E, ReflectCachePersistFaultIsNonFatal) {
  telemetry::Counter* persist_failures =
      telemetry::Registry::Global().GetCounter(
          "tml.reflect.cache_persist_failures");

  // One run of the install + reflect flow with a transient fault armed to
  // hit the (k+1)th syscall of ReflectOptimize; k == kNoFault is clean.
  auto run = [&](uint64_t k, uint64_t* reflect_ops, bool* faulted,
                 bool* reflect_ok) {
    FaultVfs::Options vopts;
    vopts.sticky = false;
    vopts.fault_errno = 28;  // ENOSPC
    FaultVfs vfs(vopts);
    auto s = ObjectStore::Open("reflect.db", Salvage(&vfs));
    ASSERT_TRUE(s.ok());
    Universe u(s->get());
    ASSERT_OK(InstallComplexApp(&u));
    Oid cabs = *u.Lookup("app", "cabs");
    if (k != FaultVfs::kNoFault) vfs.SetFailAfterOps(k);
    uint64_t ops_before = vfs.ops();
    uint64_t faults_before = vfs.faults_injected();
    ReflectStats stats;
    auto r = u.ReflectOptimize(cabs, {}, &stats);
    *reflect_ops = vfs.ops() - ops_before;
    *faulted = vfs.faults_injected() > faults_before;
    *reflect_ok = r.ok();
    if (r.ok() && *faulted) {
      // Tolerated persist failure: the result is served from memory.
      EXPECT_EQ(CallCabs(&u, *r), 5.0);
      ReflectStats again;
      auto r2 = u.ReflectOptimize(cabs, {}, &again);
      ASSERT_TRUE(r2.ok());
      EXPECT_EQ(again.cache_hits, 1u);
      EXPECT_EQ(*r2, *r);
    }
  };

  uint64_t reflect_ops = 0;
  bool faulted = false, reflect_ok = false;
  run(FaultVfs::kNoFault, &reflect_ops, &faulted, &reflect_ok);
  ASSERT_TRUE(reflect_ok);
  ASSERT_FALSE(faulted);
  ASSERT_GT(reflect_ops, 2u);

  uint64_t tolerated = 0;
  for (uint64_t k = 0; k < reflect_ops; ++k) {
    SCOPED_TRACE("fault at reflect syscall " + std::to_string(k + 1));
    uint64_t persist_before = persist_failures->value();
    uint64_t ops = 0;
    run(k, &ops, &faulted, &reflect_ok);
    EXPECT_TRUE(faulted);
    if (reflect_ok) {
      ++tolerated;
      EXPECT_EQ(persist_failures->value(), persist_before + 1)
          << "a survived fault must be the tolerated index persist";
    }
  }
  EXPECT_GE(tolerated, 1u)
      << "the index persist ops must absorb their faults";
}

// The acceptance flow: run the adaptive_optimization example loop against
// a file store until the optimizer promotes, flip bytes in the live store
// (both rebuildable record kinds), then re-run the whole flow on the
// salvaged store.
TEST(SalvageE2E, ByteFlippedStoreRerunsAdaptiveFlow) {
  FaultVfs vfs;
  AdaptiveOptions opts;
  opts.policy.hot_steps = 200;
  opts.policy.min_calls = 2;
  opts.policy.decay = 1.0;
  opts.persist_profile = true;

  auto run_flow = [&](Universe* u, Oid cabs) -> uint64_t {
    AdaptiveManager m(u, opts);
    EXPECT_OK(m.LoadPersistedProfile());
    for (int i = 0; i < 200; ++i) {
      EXPECT_EQ(CallCabs(u, cabs), 5.0);
      if (i % 10 == 9) EXPECT_OK(m.PollOnce());
      if (u->adaptive_counters().promotions > 0) break;
    }
    return u->adaptive_counters().promotions;
  };

  Oid cabs = kNullOid;
  {
    auto s = ObjectStore::Open(kPath, Salvage(&vfs));
    ASSERT_TRUE(s.ok());
    Universe u(s->get());
    ASSERT_OK(InstallComplexApp(&u));
    cabs = *u.Lookup("app", "cabs");
    ASSERT_GT(run_flow(&u, cabs), 0u) << "flow must promote before crash";
    ASSERT_OK((*s)->Commit());
  }

  // Bit-rot both rebuildable records in the live file.
  ASSERT_TRUE(CorruptRootRecord(&vfs, store::kReflectCacheRoot));
  ASSERT_TRUE(CorruptRootRecord(&vfs, adaptive::kProfileRoot));

  auto s = ObjectStore::Open(kPath, Salvage(&vfs));
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_GE((*s)->salvage_report().quarantined_records, 2u);
  Universe u(s->get());
  ASSERT_OK(u.LoadPersistedModules());
  // Both damaged records were quarantined: the profile reads as never
  // persisted (a cold start), and the flow re-profiles and re-optimizes
  // to a promotion again, with the process up the whole time.
  EXPECT_EQ(u.GetRootRecord(adaptive::kProfileRoot).status().code(),
            StatusCode::kNotFound);
  EXPECT_GT(run_flow(&u, cabs), 0u)
      << "salvaged store must reach promotion again";
  EXPECT_EQ(CallCabs(&u, cabs), 5.0);
  ASSERT_OK((*s)->Commit());
}

}  // namespace
}  // namespace tml
