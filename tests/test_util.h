// Shared helpers for the TML test suite.

#ifndef TML_TESTS_TEST_UTIL_H_
#define TML_TESTS_TEST_UTIL_H_

#include <string>
#include <string_view>

#include <gtest/gtest.h>

#include "core/module.h"
#include "core/parser.h"
#include "core/printer.h"
#include "core/validate.h"
#include "prims/standard.h"
#include "support/status.h"

namespace tml::test {

#define ASSERT_OK(expr)                                         \
  do {                                                          \
    ::tml::Status _st = (expr);                                 \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                    \
  } while (0)

#define EXPECT_OK(expr)                                         \
  do {                                                          \
    ::tml::Status _st = (expr);                                 \
    EXPECT_TRUE(_st.ok()) << _st.ToString();                    \
  } while (0)

/// Parse a program (proc abstraction) or abort the test.
inline const ir::Abstraction* MustParseProgram(ir::Module* m,
                                               std::string_view text) {
  auto res = ir::ParseValueText(m, prims::StandardRegistry(), text);
  EXPECT_TRUE(res.ok()) << res.status().ToString();
  if (!res.ok()) return nullptr;
  const ir::Abstraction* abs = ir::DynCast<ir::Abstraction>(res->value);
  EXPECT_NE(abs, nullptr) << "program text is not an abstraction";
  return abs;
}

/// Parse a bare application or abort the test.
inline const ir::Application* MustParseApp(ir::Module* m,
                                           std::string_view text,
                                           bool allow_free = false) {
  ir::ParseOptions opts;
  opts.allow_free_vars = allow_free;
  auto res = ir::ParseAppText(m, prims::StandardRegistry(), text, opts);
  EXPECT_TRUE(res.ok()) << res.status().ToString();
  return res.ok() ? res->app : nullptr;
}

/// Compact single-line print (no uid suffixes) for structural assertions.
inline std::string Compact(const ir::Module& m, const ir::Application* app) {
  ir::PrintOptions opts;
  opts.uid_suffix = false;
  std::string s = ir::PrintApp(m, app, opts);
  std::string out;
  bool ws = false;
  for (char c : s) {
    if (c == '\n' || c == ' ') {
      ws = true;
      continue;
    }
    if (ws && !out.empty() && out.back() != '(' && c != ')') out += ' ';
    ws = false;
    out += c;
  }
  return out;
}

inline std::string Compact(const ir::Module& m, const ir::Value* v) {
  ir::PrintOptions opts;
  opts.uid_suffix = false;
  std::string s = ir::PrintValue(m, v, opts);
  std::string out;
  bool ws = false;
  for (char c : s) {
    if (c == '\n' || c == ' ') {
      ws = true;
      continue;
    }
    if (ws && !out.empty() && out.back() != '(' && c != ')') out += ' ';
    ws = false;
    out += c;
  }
  return out;
}

}  // namespace tml::test

#endif  // TML_TESTS_TEST_UTIL_H_
