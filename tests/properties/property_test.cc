// Property-based sweeps over the whole Stanford corpus: invariants that
// must hold for *every* program, not just hand-picked cases.
//
//   P1  compilation produces well-formed TML (validator, both modes)
//   P2  PTML round-trips to an α-equivalent term for every function
//   P3  bytecode serialization round-trips and the result still runs
//   P4  the optimizer preserves well-formedness and never grows the term
//       during the reduction pass
//   P5  the optimizer is idempotent at its fixpoint (second run: no rules)
//   P6  reduction output size is monotonically non-increasing per sweep
//       proxy: reduced term is never larger than the input

#include <gtest/gtest.h>

#include "core/analysis.h"
#include "core/optimizer.h"
#include "core/printer.h"
#include "core/rewrite.h"
#include "core/validate.h"
#include "corpus/stanford.h"
#include "frontend/compile.h"
#include "store/ptml.h"
#include "tests/test_util.h"
#include "vm/codegen.h"
#include "vm/vm.h"

namespace tml {
namespace {

using corpus::StanfordProgram;

struct ModeParam {
  StanfordProgram prog;
  fe::BindingMode mode;
};

std::vector<ModeParam> AllParams() {
  std::vector<ModeParam> out;
  for (const auto& p : corpus::StanfordSuite()) {
    out.push_back({p, fe::BindingMode::kDirect});
    out.push_back({p, fe::BindingMode::kLibrary});
  }
  return out;
}

std::string ParamName(const ::testing::TestParamInfo<ModeParam>& info) {
  return std::string(info.param.prog.name) +
         (info.param.mode == fe::BindingMode::kDirect ? "Direct" : "Library");
}

class CorpusProperty : public ::testing::TestWithParam<ModeParam> {
 protected:
  Result<fe::CompiledUnit> CompileIt() {
    fe::CompileOptions opts;
    opts.binding = GetParam().mode;
    return fe::Compile(GetParam().prog.source, prims::StandardRegistry(),
                       opts);
  }
};

TEST_P(CorpusProperty, P1_CompilationIsWellFormed) {
  auto unit = CompileIt();
  ASSERT_TRUE(unit.ok()) << unit.status().ToString();
  EXPECT_FALSE(unit->functions.empty());
  for (const auto& fn : unit->functions) {
    ir::ValidateOptions vopts;
    std::vector<const ir::Variable*> frees(fn.free_vars.begin(),
                                           fn.free_vars.end());
    vopts.free = frees;
    Status st = ir::Validate(*unit->module, fn.abs, vopts);
    EXPECT_TRUE(st.ok()) << fn.name << ": " << st.ToString();
  }
}

TEST_P(CorpusProperty, P2_PtmlRoundTripsAlphaEquivalent) {
  auto unit = CompileIt();
  ASSERT_TRUE(unit.ok());
  for (const auto& fn : unit->functions) {
    std::string bytes = store::EncodePtml(*unit->module, fn.abs);
    ir::Module m2;
    auto decoded = store::DecodePtml(&m2, prims::StandardRegistry(), bytes);
    ASSERT_TRUE(decoded.ok()) << fn.name << ": "
                              << decoded.status().ToString();
    EXPECT_TRUE(
        ir::AlphaEquivalent(*unit->module, fn.abs, m2, decoded->abs))
        << fn.name;
    EXPECT_EQ(decoded->free_vars.size(), fn.free_vars.size()) << fn.name;
  }
}

TEST_P(CorpusProperty, P3_BytecodeSerializationRoundTrips) {
  auto unit = CompileIt();
  ASSERT_TRUE(unit.ok());
  for (const auto& fn : unit->functions) {
    vm::CodeUnit cu;
    auto code = vm::CompileProc(&cu, *unit->module, fn.abs, fn.name);
    ASSERT_TRUE(code.ok()) << fn.name << ": " << code.status().ToString();
    std::string bytes = vm::SerializeFunction(**code);
    vm::CodeUnit cu2;
    auto back = vm::DeserializeFunction(&cu2, bytes);
    ASSERT_TRUE(back.ok()) << fn.name << ": " << back.status().ToString();
    EXPECT_EQ((*back)->num_params, (*code)->num_params);
    EXPECT_EQ((*back)->num_regs, (*code)->num_regs);
    EXPECT_EQ((*back)->code.size(), (*code)->code.size());
    EXPECT_EQ((*back)->cap_names, (*code)->cap_names);
    EXPECT_EQ((*back)->ByteSize(), (*code)->ByteSize());
    for (size_t i = 0; i < (*code)->code.size(); ++i) {
      EXPECT_EQ((*back)->code[i].op, (*code)->code[i].op) << fn.name;
    }
  }
}

TEST_P(CorpusProperty, P4_OptimizerPreservesWellFormedness) {
  auto unit = CompileIt();
  ASSERT_TRUE(unit.ok());
  for (const auto& fn : unit->functions) {
    ir::ValidateOptions vopts;
    std::vector<const ir::Variable*> frees(fn.free_vars.begin(),
                                           fn.free_vars.end());
    vopts.free = frees;
    const ir::Abstraction* opt = ir::Optimize(unit->module.get(), fn.abs);
    Status st = ir::Validate(*unit->module, opt, vopts);
    EXPECT_TRUE(st.ok()) << fn.name << ": " << st.ToString() << "\n"
                         << ir::PrintValue(*unit->module, opt);
  }
}

TEST_P(CorpusProperty, P5_OptimizerIsIdempotentAtFixpoint) {
  auto unit = CompileIt();
  ASSERT_TRUE(unit.ok());
  for (const auto& fn : unit->functions) {
    ir::OptimizerOptions oopts;
    oopts.expand.budget = 0;  // pure reduction: the paper's fixpoint claim
    oopts.expand.always_inline_cost = 0;
    oopts.expand.savings_per_static_arg = 0;
    const ir::Abstraction* once =
        ir::Optimize(unit->module.get(), fn.abs, oopts);
    ir::OptimizerStats stats;
    const ir::Abstraction* twice =
        ir::Optimize(unit->module.get(), once, oopts, &stats);
    EXPECT_EQ(stats.rewrite.TotalApplications(), 0u)
        << fn.name << ": " << stats.rewrite.ToString();
    EXPECT_EQ(ir::TermSize(twice->body()), ir::TermSize(once->body()))
        << fn.name;
  }
}

TEST_P(CorpusProperty, P6_ReductionNeverGrowsTerms) {
  auto unit = CompileIt();
  ASSERT_TRUE(unit.ok());
  for (const auto& fn : unit->functions) {
    size_t before = ir::TermSize(fn.abs->body());
    const ir::Abstraction* red = ir::Reduce(unit->module.get(), fn.abs);
    EXPECT_LE(ir::TermSize(red->body()), before) << fn.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, CorpusProperty,
                         ::testing::ValuesIn(AllParams()), ParamName);

// ---- rule-option sweep: every subset of disabled rule classes must keep
// the differential result intact on a fixed program -----------------------

class RuleSubsetProperty : public ::testing::TestWithParam<int> {};

TEST_P(RuleSubsetProperty, DisablingRuleClassesNeverChangesBehaviour) {
  int mask = GetParam();
  ir::RewriteOptions ropts;
  ropts.enable_subst = (mask & 1) == 0;
  ropts.enable_remove = (mask & 2) == 0;
  ropts.enable_fold = (mask & 4) == 0;
  ropts.enable_eta = (mask & 8) == 0;
  ropts.enable_case_subst = (mask & 16) == 0;
  ropts.enable_y_rules = (mask & 32) == 0;

  ir::Module m;
  const ir::Abstraction* prog = test::MustParseProgram(
      &m,
      "(proc (n ce cc)"
      " ((lambda (f)"
      "    (Y (proc (/ c0 loop c)"
      "         (c (cont () (loop n 0))"
      "            (cont (i acc)"
      "              (== i 0"
      "                  (cont () (cc acc))"
      "                  (cont ()"
      "                    (f i ce (cont (t)"
      "                      (+ acc t ce (cont (a2)"
      "                        (- i 1 ce (cont (i2) (loop i2 a2))))))))))))))"
      "  (proc (a ce2 cc2) (* a 2 ce2 cc2))))");
  ASSERT_NE(prog, nullptr);
  const ir::Abstraction* red = ir::Reduce(&m, prog, ropts);
  Status st = ir::Validate(m, red);
  ASSERT_TRUE(st.ok()) << "mask=" << mask << ": " << st.ToString();

  vm::CodeUnit unit;
  auto fn = vm::CompileProc(&unit, m, red, "sweep");
  ASSERT_TRUE(fn.ok()) << "mask=" << mask << ": "
                       << fn.status().ToString();
  vm::VM vm;
  vm::Value args[] = {vm::Value::Int(10)};
  auto r = vm.Run(*fn, args);
  ASSERT_TRUE(r.ok()) << "mask=" << mask;
  EXPECT_EQ(r->value.i, 110) << "mask=" << mask;  // 2*(1+..+10)
}

INSTANTIATE_TEST_SUITE_P(AllSubsets, RuleSubsetProperty,
                         ::testing::Range(0, 64));

}  // namespace
}  // namespace tml
