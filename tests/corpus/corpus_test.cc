// The Stanford suite must compute identical checksums in every
// configuration: direct binding, library binding (unoptimized), library +
// local static optimization, and library + reflective dynamic optimization.
// This is the correctness backbone under the E1 experiment, and it pins
// mathematically known results (Towers, Queens).

#include <gtest/gtest.h>

#include "corpus/stanford.h"
#include "runtime/universe.h"
#include "tests/test_util.h"

namespace tml {
namespace {

using corpus::StanfordProgram;
using rt::InstallOptions;
using rt::Universe;
using vm::Value;

struct Run {
  int64_t checksum = 0;
  uint64_t steps = 0;
};

Result<Run> RunConfig(const StanfordProgram& prog, fe::BindingMode mode,
                      bool static_opt, bool reflect, int64_t n) {
  auto s = store::ObjectStore::Open("");
  TML_RETURN_NOT_OK(s.status());
  Universe u(s->get());
  InstallOptions opts;
  opts.static_optimize = static_opt;
  TML_RETURN_NOT_OK(u.InstallSource("bench", prog.source, mode, opts));
  TML_ASSIGN_OR_RETURN(Oid f, u.Lookup("bench", "bench"));
  if (reflect) {
    TML_ASSIGN_OR_RETURN(f, u.ReflectOptimize(f));
  }
  Value args[] = {Value::Int(n)};
  TML_ASSIGN_OR_RETURN(vm::RunResult r, u.Call(f, args));
  if (r.raised) return Status::RuntimeError("benchmark raised an exception");
  if (!r.value.is_int()) {
    return Status::RuntimeError("benchmark returned a non-integer");
  }
  return Run{r.value.i, r.steps};
}

class StanfordTest : public ::testing::TestWithParam<StanfordProgram> {};

TEST_P(StanfordTest, AllConfigurationsAgree) {
  const StanfordProgram& prog = GetParam();
  auto direct =
      RunConfig(prog, fe::BindingMode::kDirect, false, false, prog.small_n);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  auto lib =
      RunConfig(prog, fe::BindingMode::kLibrary, false, false, prog.small_n);
  ASSERT_TRUE(lib.ok()) << lib.status().ToString();
  auto lib_static =
      RunConfig(prog, fe::BindingMode::kLibrary, true, false, prog.small_n);
  ASSERT_TRUE(lib_static.ok()) << lib_static.status().ToString();
  auto lib_reflect =
      RunConfig(prog, fe::BindingMode::kLibrary, false, true, prog.small_n);
  ASSERT_TRUE(lib_reflect.ok()) << lib_reflect.status().ToString();

  EXPECT_EQ(direct->checksum, lib->checksum);
  EXPECT_EQ(direct->checksum, lib_static->checksum);
  EXPECT_EQ(direct->checksum, lib_reflect->checksum);
  if (prog.small_checksum != -1) {
    EXPECT_EQ(direct->checksum, prog.small_checksum);
  }
  // Dynamic optimization must strictly reduce executed instructions.
  EXPECT_LT(lib_reflect->steps, lib->steps) << prog.name;
}

INSTANTIATE_TEST_SUITE_P(
    Suite, StanfordTest, ::testing::ValuesIn(corpus::StanfordSuite()),
    [](const ::testing::TestParamInfo<StanfordProgram>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace tml
