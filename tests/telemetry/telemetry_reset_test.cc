// Registry lifetime and reset semantics.  The contract under test: the
// global registry is a leaked singleton whose cells are NEVER destroyed or
// erased — Registry::Reset() zeroes values in place.  So a Counter* cached
// by a background thread (the adaptive worker, VM telemetry publication)
// can never dangle, no matter how reset and shutdown interleave with the
// thread still running.

#include <atomic>
#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "adaptive/manager.h"
#include "runtime/universe.h"
#include "telemetry/metrics.h"
#include "tests/test_util.h"

namespace tml {
namespace {

using adaptive::AdaptiveManager;
using adaptive::AdaptiveOptions;
using rt::Universe;
using telemetry::Counter;
using telemetry::Registry;
using vm::Value;

TEST(TelemetryReset, ResetZeroesInPlaceAndPinsCells) {
  Registry& reg = Registry::Global();
  Counter* c = reg.GetCounter("tml.test.reset_pin");
  telemetry::Gauge* g = reg.GetGauge("tml.test.reset_pin_gauge");
  telemetry::Histogram* h = reg.GetHistogram("tml.test.reset_pin_hist");
  c->Add(5);
  g->Set(-3);
  h->Observe(7);
  EXPECT_EQ(reg.CounterValue("tml.test.reset_pin"), 5u);

  reg.Reset();

  EXPECT_EQ(reg.CounterValue("tml.test.reset_pin"), 0u);
  EXPECT_EQ(g->value(), 0);
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(h->sum(), 0u);
  // Same addresses: a pointer cached before the reset is the live cell.
  EXPECT_EQ(reg.GetCounter("tml.test.reset_pin"), c);
  EXPECT_EQ(reg.GetGauge("tml.test.reset_pin_gauge"), g);
  EXPECT_EQ(reg.GetHistogram("tml.test.reset_pin_hist"), h);
  c->Increment();
  EXPECT_EQ(reg.CounterValue("tml.test.reset_pin"), 1u);
}

TEST(TelemetryReset, ResetRacesCachedPointerBumps) {
  // The dangling-static hazard, distilled: one thread hammers a cached
  // Counter* while another resets the registry repeatedly.  With
  // zero-in-place semantics this is merely a counting race, never a
  // use-after-free (TSan/ASan builds of this suite check exactly that).
  Registry& reg = Registry::Global();
  Counter* c = reg.GetCounter("tml.test.reset_race");
  std::atomic<bool> stop{false};
  std::thread bumper([&] {
    while (!stop.load(std::memory_order_acquire)) c->Increment();
  });
  for (int i = 0; i < 200; ++i) reg.Reset();
  stop.store(true, std::memory_order_release);
  bumper.join();
  c->Increment();  // the cached pointer still lands in the live cell
  EXPECT_GT(reg.CounterValue("tml.test.reset_race"), 0u);
}

TEST(TelemetryReset, ResetWhileAdaptiveWorkerRuns) {
  // End-to-end shutdown-order test: a real adaptive worker (which caches
  // registry cells at construction and bumps them from its own thread)
  // keeps running across registry resets, then shuts down cleanly.
  auto s = store::ObjectStore::Open("");
  ASSERT_TRUE(s.ok());
  Universe u(s->get());
  ASSERT_OK(u.InstallSource(
      "app", "fun sq(x) = x * x end", fe::BindingMode::kLibrary));
  Oid sq = *u.Lookup("app", "sq");

  AdaptiveOptions opts;
  opts.poll_interval = std::chrono::milliseconds(1);
  opts.persist_profile = true;
  AdaptiveManager m(&u, opts);
  m.Start();

  Value args[] = {Value::Int(12)};
  for (int i = 0; i < 50; ++i) {
    auto r = u.Call(sq, args);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r->value.i, 144);
    Registry::Global().Reset();
  }
  // Give the worker a few post-reset polls, then stop while everything is
  // still alive — the old function-local static caches would have been
  // the crash site here.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  m.Stop();

  // Counters resumed counting from zero after the last reset.
  Registry::Global().Reset();
  auto r = u.Call(sq, args);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(Registry::Global().CounterValue("tml.vm.steps"), 0u);
}

}  // namespace
}  // namespace tml
