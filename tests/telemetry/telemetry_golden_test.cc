// Golden per-rule firing counts.  Reflect-optimizing a known corpus
// program is deterministic, so the exact number of times each §3 rewrite
// rule fires in one reduce+expand cycle is a stable fingerprint of the
// optimizer.  A drift in these counts means the rule set, the traversal
// order, or the inlining policy changed — which is exactly what this
// test exists to surface (update the goldens deliberately when it does).
//
// The same run must leave identical deltas in the telemetry registry
// (`tml.rewrite.fired{rule=...}`): the counters are flushed from the same
// stats structs the optimizer fills, and this pins that plumbing.

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "corpus/stanford.h"
#include "runtime/universe.h"
#include "telemetry/metrics.h"
#include "tests/test_util.h"

namespace tml {
namespace {

using corpus::StanfordProgram;
using rt::ReflectStats;
using rt::Universe;
using telemetry::Registry;

const StanfordProgram* FindProgram(const char* name) {
  for (const StanfordProgram& p : corpus::StanfordSuite()) {
    if (std::string(p.name) == name) return &p;
  }
  return nullptr;
}

struct RuleCounts {
  uint64_t subst, remove, reduce, eta, fold, case_subst;
  uint64_t y_remove, y_reduce, y_subst;
};

// One reduce+expand cycle (max_rounds = 1) over the reflected term of
// `bench` in the named corpus program; returns the per-rule counts and
// checks the registry deltas match them.
RuleCounts ReflectOneCycle(const char* prog_name) {
  Registry& reg = Registry::Global();
  auto before = [&reg](const char* rule) {
    return reg.CounterValue(std::string("tml.rewrite.fired{rule=") + rule +
                            "}");
  };
  const uint64_t subst0 = before("subst");
  const uint64_t remove0 = before("remove");
  const uint64_t reduce0 = before("reduce");

  const StanfordProgram* prog = FindProgram(prog_name);
  EXPECT_NE(prog, nullptr);
  auto s = store::ObjectStore::Open("");
  EXPECT_TRUE(s.ok());
  Universe u(s->get());
  EXPECT_TRUE(
      u.InstallSource("bench", prog->source, fe::BindingMode::kLibrary).ok());
  auto f = u.Lookup("bench", "bench");
  EXPECT_TRUE(f.ok());

  ir::OptimizerOptions opts;
  opts.max_rounds = 1;
  ReflectStats rs;
  auto opt = u.ReflectOptimize(*f, opts, &rs);
  EXPECT_TRUE(opt.ok()) << opt.status().ToString();
  EXPECT_EQ(rs.optimizer.rounds, 1);

  const ir::RewriteStats& rw = rs.optimizer.rewrite;
  EXPECT_EQ(before("subst") - subst0, rw.subst);
  EXPECT_EQ(before("remove") - remove0, rw.remove);
  EXPECT_EQ(before("reduce") - reduce0, rw.reduce);
  return RuleCounts{rw.subst,      rw.remove,   rw.reduce,
                    rw.eta,        rw.fold,     rw.case_subst,
                    rw.y_remove,   rw.y_reduce, rw.y_subst};
}

TEST(TelemetryGolden, BubbleOneCycleRuleCounts) {
  RuleCounts c = ReflectOneCycle("Bubble");
  EXPECT_EQ(c.subst, 11u);
  EXPECT_EQ(c.remove, 21u);
  EXPECT_EQ(c.reduce, 9u);
  EXPECT_EQ(c.eta, 10u);
  EXPECT_EQ(c.fold, 0u);
  EXPECT_EQ(c.case_subst, 0u);
  EXPECT_EQ(c.y_remove, 2u);
  EXPECT_EQ(c.y_reduce, 0u);
  EXPECT_EQ(c.y_subst, 7u);
}

TEST(TelemetryGolden, QueensOneCycleRuleCounts) {
  RuleCounts c = ReflectOneCycle("Queens");
  EXPECT_EQ(c.subst, 15u);
  EXPECT_EQ(c.remove, 25u);
  EXPECT_EQ(c.reduce, 7u);
  EXPECT_EQ(c.eta, 6u);
  EXPECT_EQ(c.fold, 0u);
  EXPECT_EQ(c.case_subst, 0u);
  EXPECT_EQ(c.y_remove, 2u);
  EXPECT_EQ(c.y_reduce, 0u);
  EXPECT_EQ(c.y_subst, 4u);
}

}  // namespace
}  // namespace tml
