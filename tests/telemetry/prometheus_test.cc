// Prometheus text exposition (telemetry/prometheus.h): golden-output
// rendering of counters/gauges/histograms, name sanitization, label
// value escaping, and the histogram quantile estimators the exposition
// and FormatText lean on.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "telemetry/metrics.h"
#include "telemetry/prometheus.h"

namespace tml::telemetry {
namespace {

TEST(TelemetryPrometheus, NameSanitization) {
  EXPECT_EQ(PrometheusName("tml.server.requests"), "tml_server_requests");
  EXPECT_EQ(PrometheusName("already_ok:name"), "already_ok:name");
  EXPECT_EQ(PrometheusName("weird-chars%here"), "weird_chars_here");
  // A leading digit is invalid in the exposition grammar.
  EXPECT_EQ(PrometheusName("9lives"), "_9lives");
  EXPECT_EQ(PrometheusName(""), "_");
}

TEST(TelemetryPrometheus, LabelValueEscaping) {
  EXPECT_EQ(PrometheusLabelValue("plain"), "plain");
  EXPECT_EQ(PrometheusLabelValue("a\"b"), "a\\\"b");
  EXPECT_EQ(PrometheusLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(PrometheusLabelValue("a\nb"), "a\\nb");
}

TEST(TelemetryPrometheus, GoldenCounterAndGauge) {
  std::vector<MetricSample> samples;
  MetricSample c;
  c.name = "tml.test.hits{cmd=CALL}";
  c.kind = MetricKind::kCounter;
  c.count = 7;
  samples.push_back(c);
  MetricSample g;
  g.name = "tml.test.level";
  g.kind = MetricKind::kGauge;
  g.gauge = -3;
  samples.push_back(g);

  EXPECT_EQ(FormatPrometheus(samples),
            "# TYPE tml_test_hits counter\n"
            "tml_test_hits{cmd=\"CALL\"} 7\n"
            "# TYPE tml_test_level gauge\n"
            "tml_test_level -3\n");
}

TEST(TelemetryPrometheus, GoldenHistogramCumulativeBuckets) {
  MetricSample h;
  h.name = "tml.test.lat_us";
  h.kind = MetricKind::kHistogram;
  // Registry bucket b holds [2^(b-1), 2^b): bucket 0 = zeros, bucket 3 =
  // [4,8) whose inclusive le edge is 7.
  h.buckets = {{0, 2}, {3, 5}, {10, 1}};
  h.count = 8;
  h.sum = 1234;

  EXPECT_EQ(FormatPrometheus({h}),
            "# TYPE tml_test_lat_us histogram\n"
            "tml_test_lat_us_bucket{le=\"0\"} 2\n"
            "tml_test_lat_us_bucket{le=\"7\"} 7\n"
            "tml_test_lat_us_bucket{le=\"1023\"} 8\n"
            "tml_test_lat_us_bucket{le=\"+Inf\"} 8\n"
            "tml_test_lat_us_sum 1234\n"
            "tml_test_lat_us_count 8\n");
}

TEST(TelemetryPrometheus, TypeHeaderEmittedOncePerBaseName) {
  std::vector<MetricSample> samples;
  for (const char* cmd : {"CALL", "PING"}) {
    MetricSample c;
    c.name = std::string("tml.test.cmds{cmd=") + cmd + "}";
    c.kind = MetricKind::kCounter;
    c.count = 1;
    samples.push_back(c);
  }
  std::string out = FormatPrometheus(samples);
  size_t first = out.find("# TYPE tml_test_cmds counter");
  EXPECT_NE(first, std::string::npos);
  EXPECT_EQ(out.find("# TYPE tml_test_cmds counter", first + 1),
            std::string::npos)
      << out;
}

TEST(TelemetryPrometheus, RegistryRoundTrip) {
  // End to end through the real registry: labeled counter in, correctly
  // split base name and labels out.
  auto& reg = Registry::Global();
  reg.GetCounter("tml.prom_rt.ops", {{"kind", "write"}})->Add(11);
  reg.GetHistogram("tml.prom_rt.lat")->Observe(5);
  std::string out = FormatPrometheus(reg.Snapshot());
  EXPECT_NE(out.find("tml_prom_rt_ops{kind=\"write\"} 11\n"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("tml_prom_rt_lat_bucket{le=\"7\"} 1\n"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("tml_prom_rt_lat_count 1\n"), std::string::npos) << out;
}

TEST(TelemetryPrometheus, BucketQuantileInterpolation) {
  // 100 zeros: every quantile is exactly 0.
  EXPECT_DOUBLE_EQ(BucketQuantile({{0, 100}}, 0.5), 0.0);
  // Empty: 0 by convention.
  EXPECT_DOUBLE_EQ(BucketQuantile({}, 0.99), 0.0);
  // All mass in bucket 3 = [4,8): every quantile lands inside [4,8].
  double p50 = BucketQuantile({{3, 10}}, 0.5);
  EXPECT_GE(p50, 4.0);
  EXPECT_LE(p50, 8.0);
  // Two equal buckets: the median sits at the boundary region and p99 in
  // the upper bucket.
  double p99 = BucketQuantile({{3, 10}, {6, 10}}, 0.99);
  EXPECT_GE(p99, 32.0);
  EXPECT_LE(p99, 64.0);
}

TEST(TelemetryPrometheus, HistogramQuantileLive) {
  Histogram* h =
      Registry::Global().GetHistogram("tml.prom_rt.quantile_live");
  for (int k = 0; k < 90; ++k) h->Observe(10);    // bucket 4: [8,16)
  for (int k = 0; k < 10; ++k) h->Observe(1000);  // bucket 10: [512,1024)
  double p50 = h->Quantile(0.5);
  EXPECT_GE(p50, 8.0);
  EXPECT_LE(p50, 16.0);
  double p99 = h->Quantile(0.99);
  EXPECT_GE(p99, 512.0);
  EXPECT_LE(p99, 1024.0);
  // FormatText surfaces the estimates.
  std::string text = FormatText(Registry::Global().Snapshot());
  EXPECT_NE(text.find("tml.prom_rt.quantile_live"), std::string::npos);
  EXPECT_NE(text.find("p99="), std::string::npos);
}

}  // namespace
}  // namespace tml::telemetry
