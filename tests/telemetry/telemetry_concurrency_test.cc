// Telemetry under concurrency (run under tools/check.sh --tsan): a
// reader thread hammers Universe::TelemetrySnapshot() and the trace
// drain while the mutator executes calls and the adaptive background
// worker profiles, reflect-optimizes and swaps code.  Snapshots must
// never tear, block the mutator, or race the worker.

#include <atomic>
#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "adaptive/manager.h"
#include "runtime/universe.h"
#include "telemetry/trace.h"
#include "tests/test_util.h"

namespace tml {
namespace {

using adaptive::AdaptiveManager;
using adaptive::AdaptiveOptions;
using rt::Universe;
using vm::Value;

constexpr const char* kComplexSrc =
    "fun make(x, y) = array(x, y) end\n"
    "fun getx(c) = c[0] end\n"
    "fun gety(c) = c[1] end";
constexpr const char* kAppSrc =
    "fun cabs(c) ="
    "  sqrt(real(getx(c) * getx(c) + gety(c) * gety(c))) "
    "end";

TEST(TelemetryConcurrency, SnapshotWhileAdaptiveWorkerPromotes) {
  auto s = store::ObjectStore::Open("");
  ASSERT_TRUE(s.ok());
  Universe u(s->get());
  ASSERT_OK(u.InstallSource("complex", kComplexSrc,
                            fe::BindingMode::kLibrary));
  ASSERT_OK(u.InstallSource("app", kAppSrc, fe::BindingMode::kLibrary));
  Oid cabs = *u.Lookup("app", "cabs");

  // Tracing on: the worker, the mutator and the snapshot reader all hit
  // the ring concurrently.
  telemetry::Tracer::Global().Enable(1 << 14);

  AdaptiveOptions opts;
  opts.policy.hot_steps = 200;
  opts.policy.min_calls = 2;
  opts.policy.decay = 1.0;
  opts.persist_profile = false;
  opts.poll_interval = std::chrono::milliseconds(1);
  AdaptiveManager* mgr = adaptive::EnableAdaptive(&u, opts);
  ASSERT_NE(mgr, nullptr);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> snapshots{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      Universe::TelemetryReport rep = u.TelemetrySnapshot();
      // Touch the data so the loads are real.
      if (!rep.metrics.empty()) snapshots.fetch_add(1);
      (void)rep.ToText();
    }
  });

  Value margs[] = {Value::Int(3), Value::Int(4)};
  auto c = u.Call(*u.Lookup("complex", "make"), margs);
  ASSERT_TRUE(c.ok());
  Value cargs[] = {c->value};
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (u.adaptive_counters().promotions == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    for (int i = 0; i < 5; ++i) {
      auto r = u.Call(cabs, cargs);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      ASSERT_EQ(r->value.r, 5.0);
    }
  }
  stop.store(true);
  reader.join();
  telemetry::Tracer::Global().Disable();
  (void)telemetry::Tracer::Global().Drain();

  EXPECT_GE(u.adaptive_counters().promotions, 1u)
      << "worker never promoted under snapshot load";
  EXPECT_GT(snapshots.load(), 0u);
  // The registry agrees with the universe-local counters: the dual-bump
  // cells feed both.
  Universe::TelemetryReport rep = u.TelemetrySnapshot();
  uint64_t reg_promotions = 0;
  for (const telemetry::MetricSample& m : rep.metrics) {
    if (m.name == "tml.adaptive.promotions") reg_promotions = m.count;
  }
  EXPECT_GE(reg_promotions, u.adaptive_counters().promotions);
}

}  // namespace
}  // namespace tml
