// The telemetry library itself: registry identity and snapshots, the
// log2 histogram, the bounded trace ring (drop-on-full, drain order),
// Chrome trace_event serialization, and the JSON escaping helpers (both
// the registry's and the benchmark --json writer's, which used to emit
// unparseable files for names containing quotes or backslashes).

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "bench/bench_util.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace tml::telemetry {
namespace {

TEST(TelemetryRegistry, CounterIdentityAndValue) {
  Registry& r = Registry::Global();
  Counter* a = r.GetCounter("tml.test.counter_identity");
  Counter* b = r.GetCounter("tml.test.counter_identity");
  EXPECT_EQ(a, b) << "same (name, labels) must yield the same cell";
  a->Add(3);
  b->Increment();
  EXPECT_EQ(r.CounterValue("tml.test.counter_identity"), 4u);
  EXPECT_EQ(r.CounterValue("tml.test.never_registered"), 0u);
}

TEST(TelemetryRegistry, LabelsAreSortedIntoTheFullName) {
  Registry& r = Registry::Global();
  // Registration order of the label pairs must not matter.
  Counter* a = r.GetCounter("tml.test.labeled",
                            {{"zeta", "1"}, {"alpha", "2"}});
  Counter* b = r.GetCounter("tml.test.labeled",
                            {{"alpha", "2"}, {"zeta", "1"}});
  EXPECT_EQ(a, b);
  a->Increment();
  EXPECT_EQ(r.CounterValue("tml.test.labeled{alpha=2,zeta=1}"), 1u);
  // A different label value is a different metric.
  Counter* c = r.GetCounter("tml.test.labeled",
                            {{"alpha", "3"}, {"zeta", "1"}});
  EXPECT_NE(a, c);
}

TEST(TelemetryRegistry, GaugeSetAndAdd) {
  Gauge* g = Registry::Global().GetGauge("tml.test.gauge");
  g->Set(10);
  g->Add(-3);
  EXPECT_EQ(g->value(), 7);
}

TEST(TelemetryRegistry, HistogramLog2Buckets) {
  Histogram* h = Registry::Global().GetHistogram("tml.test.histo");
  h->Observe(0);  // bucket 0
  h->Observe(1);  // bucket 1: [1, 2)
  h->Observe(2);  // bucket 2: [2, 4)
  h->Observe(3);  // bucket 2
  h->Observe(1000);  // bucket 10: [512, 1024)
  EXPECT_EQ(h->count(), 5u);
  EXPECT_EQ(h->sum(), 1006u);
  EXPECT_EQ(h->bucket(0), 1u);
  EXPECT_EQ(h->bucket(1), 1u);
  EXPECT_EQ(h->bucket(2), 2u);
  EXPECT_EQ(h->bucket(10), 1u);
}

TEST(TelemetryRegistry, SnapshotIsSortedAndComplete) {
  Registry& r = Registry::Global();
  r.GetCounter("tml.test.snap_b")->Add(2);
  r.GetCounter("tml.test.snap_a")->Add(1);
  r.GetHistogram("tml.test.snap_h")->Observe(7);
  std::vector<MetricSample> snap = r.Snapshot();
  ASSERT_FALSE(snap.empty());
  for (size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1].name, snap[i].name) << "snapshot must be sorted";
  }
  bool saw_a = false, saw_h = false;
  for (const MetricSample& s : snap) {
    if (s.name == "tml.test.snap_a") {
      saw_a = true;
      EXPECT_EQ(s.kind, MetricKind::kCounter);
      EXPECT_EQ(s.count, 1u);
    }
    if (s.name == "tml.test.snap_h") {
      saw_h = true;
      EXPECT_EQ(s.kind, MetricKind::kHistogram);
      EXPECT_EQ(s.count, 1u);
      EXPECT_EQ(s.sum, 7u);
      ASSERT_EQ(s.buckets.size(), 1u);
      EXPECT_EQ(s.buckets[0].first, 3);  // 7 is in [4, 8)
      EXPECT_EQ(s.buckets[0].second, 1u);
    }
  }
  EXPECT_TRUE(saw_a);
  EXPECT_TRUE(saw_h);
}

TEST(TelemetryRegistry, ConcurrentRegistrationAndSnapshot) {
  Registry& r = Registry::Global();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&r, t] {
      for (int i = 0; i < 200; ++i) {
        r.GetCounter("tml.test.race",
                     {{"t", std::to_string(t % 2)}})->Increment();
        if (i % 16 == 0) (void)r.Snapshot();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(r.CounterValue("tml.test.race{t=0}") +
                r.CounterValue("tml.test.race{t=1}"),
            800u);
}

TEST(TelemetryJson, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string("\x01", 1)), "\\u0001");
}

// Satellite regression: the bench --json writer emits metric names
// verbatim; ablation labels like `- remove "dead" args` broke the file.
TEST(TelemetryBenchJson, MetricNamesAreEscaped) {
  using tml::bench::Metrics;
  EXPECT_EQ(Metrics::JsonEscape("steps/call"), "steps/call");
  EXPECT_EQ(Metrics::JsonEscape("opt \"quoted\""), "opt \\\"quoted\\\"");
  EXPECT_EQ(Metrics::JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(Metrics::JsonEscape("line\nbreak"), "line\\nbreak");
}

TEST(TelemetryTracer, RecordAndDrain) {
  Tracer& t = Tracer::Global();
  t.Enable(4096);
  (void)t.Drain();  // discard anything earlier tests left behind
  t.Record("test", "alpha", 100, 10);
  t.Record("test", "beta", 200, 20);
  std::vector<TraceEvent> ev = t.Drain();
  ASSERT_EQ(ev.size(), 2u);
  EXPECT_STREQ(ev[0].name, "alpha");
  EXPECT_STREQ(ev[1].name, "beta");
  EXPECT_EQ(ev[0].ts_ns, 100u);
  EXPECT_EQ(ev[1].dur_ns, 20u);
  EXPECT_GT(ev[0].tid, 0u);
  t.Disable();
}

TEST(TelemetryTracer, SpanGuardRecordsOnlyWhenEnabled) {
  Tracer& t = Tracer::Global();
  t.Disable();
  (void)t.Drain();
  { TML_TELEMETRY_SPAN("test", "disabled_span"); }
  EXPECT_TRUE(t.Drain().empty());

  t.Enable(4096);
  (void)t.Drain();
  {
    TML_TELEMETRY_SPAN("test", "outer");
    EXPECT_EQ(Tracer::ThreadSpanDepth(), 1u);
    {
      TML_TELEMETRY_SPAN("test", "inner");
      EXPECT_EQ(Tracer::ThreadSpanDepth(), 2u);
    }
  }
  EXPECT_EQ(Tracer::ThreadSpanDepth(), 0u);
  std::vector<TraceEvent> ev = t.Drain();
  ASSERT_EQ(ev.size(), 2u);
  // Spans close innermost-first.
  EXPECT_STREQ(ev[0].name, "inner");
  EXPECT_STREQ(ev[1].name, "outer");
  // The outer span brackets the inner one.
  EXPECT_LE(ev[1].ts_ns, ev[0].ts_ns);
  EXPECT_GE(ev[1].ts_ns + ev[1].dur_ns, ev[0].ts_ns + ev[0].dur_ns);
  t.Disable();
}

TEST(TelemetryTracer, FullRingDropsInsteadOfBlocking) {
  Tracer& t = Tracer::Global();
  t.Enable(1024);  // minimum capacity
  (void)t.Drain();
  const uint64_t dropped_before = t.dropped();
  for (int i = 0; i < 1500; ++i) t.Record("test", "spam", i, 1);
  std::vector<TraceEvent> ev = t.Drain();
  EXPECT_EQ(ev.size(), 1024u);
  EXPECT_EQ(t.dropped() - dropped_before, 1500u - 1024u);
  t.Disable();
}

TEST(TelemetryTracer, ChromeJsonShape) {
  std::vector<TraceEvent> ev;
  ev.push_back(TraceEvent{"reflect", "reflect.optimize", 1000, 500, 1});
  ev.push_back(TraceEvent{"optimizer", "reduce", 1100, 100, 1});
  std::string json = Tracer::ToChromeJson(ev, 3);
  // Structural spot checks (the full parse is covered by the bench smoke
  // in tools/check.sh, which loads the file with python -m json.tool).
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"reflect.optimize\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"optimizer\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped\": 3"), std::string::npos);
  // ts/dur are microseconds in trace_event; 1000ns -> 1us.
  EXPECT_NE(json.find("\"ts\": 1"), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check).
  int depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(TelemetryFormat, TextAndJsonRenderAllKinds) {
  Registry& r = Registry::Global();
  r.GetCounter("tml.test.fmt_c")->Add(5);
  r.GetGauge("tml.test.fmt_g")->Set(-2);
  r.GetHistogram("tml.test.fmt_h")->Observe(9);
  std::vector<MetricSample> snap = r.Snapshot();
  std::string text = FormatText(snap);
  EXPECT_NE(text.find("tml.test.fmt_c"), std::string::npos);
  EXPECT_NE(text.find("tml.test.fmt_g"), std::string::npos);
  std::string json = FormatJson(snap);
  EXPECT_NE(json.find("\"tml.test.fmt_c\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"tml.test.fmt_g\": -2"), std::string::npos);
  EXPECT_NE(json.find("\"tml.test.fmt_h\""), std::string::npos);
  EXPECT_NE(json.find("\"count\""), std::string::npos);
}

}  // namespace
}  // namespace tml::telemetry
