// Runtime-level telemetry: the registry counters the §4.1 loop publishes
// (rewrite-rule firings, reflect cache traffic, VM execution), the
// Universe::TelemetrySnapshot() export, the `reflect.stats` host
// primitive, and the partial-stats contract of ReflectOptimize error
// paths (out-params report what ran before the failure).

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/parser.h"
#include "runtime/universe.h"
#include "telemetry/metrics.h"
#include "tests/test_util.h"
#include "vm/codegen.h"

namespace tml {
namespace {

using rt::ReflectStats;
using rt::Universe;
using telemetry::Registry;
using vm::Value;

constexpr const char* kAppSrc =
    "fun sq(x) = x * x end\n"
    "fun hyp(a, b) = sqrt(real(sq(a) + sq(b))) end";

std::unique_ptr<store::ObjectStore> MemStore() {
  auto s = store::ObjectStore::Open("");
  EXPECT_TRUE(s.ok());
  return std::move(*s);
}

TEST(TelemetryUniverse, SnapshotReportsRuleFiringsAfterReflect) {
  Registry& reg = Registry::Global();
  const uint64_t subst0 = reg.CounterValue("tml.rewrite.fired{rule=subst}");
  const uint64_t remove0 = reg.CounterValue("tml.rewrite.fired{rule=remove}");
  const uint64_t reduce0 = reg.CounterValue("tml.rewrite.fired{rule=reduce}");
  const uint64_t runs0 = reg.CounterValue("tml.reflect.runs");

  auto s = MemStore();
  Universe u(s.get());
  ASSERT_OK(u.InstallSource("app", kAppSrc, fe::BindingMode::kLibrary));
  Oid hyp = *u.Lookup("app", "hyp");
  ReflectStats rs;
  auto opt = u.ReflectOptimize(hyp, {}, &rs);
  ASSERT_TRUE(opt.ok()) << opt.status().ToString();

  // The acceptance bar: collapsing the library abstraction fires at least
  // the three §3 workhorse rules, and the registry deltas agree with the
  // per-run stats struct.
  EXPECT_GT(rs.optimizer.rewrite.subst, 0u);
  EXPECT_GT(rs.optimizer.rewrite.remove, 0u);
  EXPECT_GT(rs.optimizer.rewrite.reduce, 0u);
  EXPECT_EQ(reg.CounterValue("tml.rewrite.fired{rule=subst}") - subst0,
            rs.optimizer.rewrite.subst);
  EXPECT_EQ(reg.CounterValue("tml.rewrite.fired{rule=remove}") - remove0,
            rs.optimizer.rewrite.remove);
  EXPECT_EQ(reg.CounterValue("tml.rewrite.fired{rule=reduce}") - reduce0,
            rs.optimizer.rewrite.reduce);
  EXPECT_EQ(reg.CounterValue("tml.reflect.runs") - runs0, 1u);

  // TelemetrySnapshot carries the same samples plus the universe-local
  // adaptive counters and store sizes.
  Universe::TelemetryReport rep = u.TelemetrySnapshot();
  bool saw_subst = false;
  for (const telemetry::MetricSample& m : rep.metrics) {
    if (m.name == "tml.rewrite.fired{rule=subst}") {
      saw_subst = true;
      EXPECT_GE(m.count, rs.optimizer.rewrite.subst);
    }
  }
  EXPECT_TRUE(saw_subst);
  EXPECT_GT(rep.sizes.code_bytes, 0u);
  std::string text = rep.ToText();
  EXPECT_NE(text.find("tml.rewrite.fired{rule=subst}"), std::string::npos);
  EXPECT_NE(text.find("adaptive: polls=0"), std::string::npos);
  std::string json = rep.ToJson();
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"adaptive\""), std::string::npos);
}

TEST(TelemetryUniverse, VmCountersAdvanceAcrossCalls) {
  Registry& reg = Registry::Global();
  const uint64_t steps0 = reg.CounterValue("tml.vm.steps");
  const uint64_t calls0 = reg.CounterValue("tml.vm.calls");

  auto s = MemStore();
  Universe u(s.get());
  ASSERT_OK(u.InstallSource("app", kAppSrc, fe::BindingMode::kLibrary));
  Oid hyp = *u.Lookup("app", "hyp");
  Value args[] = {Value::Int(3), Value::Int(4)};
  auto r = u.Call(hyp, args);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->value.r, 5.0);

  // The VM publishes its tallies when the outermost frame returns, so one
  // completed Call() must already be visible.
  EXPECT_GE(reg.CounterValue("tml.vm.steps") - steps0, r->steps);
  EXPECT_GT(reg.CounterValue("tml.vm.calls") - calls0, 0u);
}

TEST(TelemetryUniverse, ReflectStatsHostPrimitive) {
  auto s = MemStore();
  Universe u(s.get());
  ASSERT_OK(u.InstallSource("app", kAppSrc, fe::BindingMode::kLibrary));
  // One completed call so the VM counters exist in the registry (they are
  // registered lazily, on the first publish).
  Value hargs[] = {Value::Int(3), Value::Int(4)};
  ASSERT_TRUE(u.Call(*u.Lookup("app", "hyp"), hargs).ok());

  // `reflect.stats` is a ccall host — the reflective system can read its
  // own operational state.  Compile a raw TML stub that invokes it.
  ir::Module m;
  const ir::Abstraction* prog = test::MustParseProgram(
      &m, "(proc (ce cc) (ccall \"reflect.stats\" ce cc))");
  ASSERT_NE(prog, nullptr);
  vm::CodeUnit unit;
  auto fn = vm::CompileProc(&unit, m, prog, "stats_stub");
  ASSERT_TRUE(fn.ok()) << fn.status().ToString();
  auto res = u.vm()->Run(*fn, {});
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_TRUE(res->value.is_obj());
  auto* str = static_cast<vm::StringObj*>(res->value.obj);
  ASSERT_EQ(str->kind, vm::ObjKind::kString);
  EXPECT_NE(str->str.find("tml.vm.steps"), std::string::npos);
  EXPECT_NE(str->str.find("adaptive:"), std::string::npos);

  // Passing "json" selects the JSON rendering.
  ir::Module m2;
  const ir::Abstraction* prog2 = test::MustParseProgram(
      &m2, "(proc (x ce cc) (ccall \"reflect.stats\" x ce cc))");
  ASSERT_NE(prog2, nullptr);
  vm::CodeUnit unit2;
  auto fn2 = vm::CompileProc(&unit2, m2, prog2, "stats_stub_json");
  ASSERT_TRUE(fn2.ok()) << fn2.status().ToString();
  vm::StringObj* mode = u.vm()->heap()->New<vm::StringObj>();
  mode->str = "json";
  Value args[] = {Value::ObjV(mode)};
  auto res2 = u.vm()->Run(*fn2, args);
  ASSERT_TRUE(res2.ok()) << res2.status().ToString();
  auto* str2 = static_cast<vm::StringObj*>(res2->value.obj);
  ASSERT_EQ(str2->kind, vm::ObjKind::kString);
  EXPECT_NE(str2->str.find("\"metrics\""), std::string::npos);
  EXPECT_NE(str2->str.find("\"adaptive\""), std::string::npos);
}

// Satellite regression: a failing ReflectOptimize must still populate the
// stats fields for the phases that DID run — silently zeroed out-params
// made failures indistinguishable from "nothing happened".
TEST(TelemetryUniverse, PartialStatsSurviveReflectErrors) {
  // Case 1: the target closure carries no PTML.  Discovery runs, counts
  // the root as opaque, then errors out.
  {
    auto s = MemStore();
    Universe u(s.get());
    rt::InstallOptions io;
    io.attach_ptml = false;
    ASSERT_OK(u.InstallSource("app", kAppSrc, fe::BindingMode::kLibrary, io));
    Oid hyp = *u.Lookup("app", "hyp");
    ReflectStats rs;
    auto opt = u.ReflectOptimize(hyp, {}, &rs);
    EXPECT_FALSE(opt.ok());
    EXPECT_GE(rs.opaque_bindings, 1u)
        << "discovery ran before the error; its tally must be visible";
    EXPECT_EQ(rs.cache_misses, 0u) << "never reached the cache probe";
  }
  // Case 2: a dependency's PTML record is corrupt.  Discovery and the
  // cache probe run (miss), then the decode inside term building fails.
  {
    auto s = MemStore();
    Universe u(s.get());
    ASSERT_OK(u.InstallSource("app", kAppSrc, fe::BindingMode::kLibrary));
    Oid hyp = *u.Lookup("app", "hyp");
    // Corrupt every PTML record; the walk fetches them raw, the builder
    // decodes them.
    size_t seen = 0, live = s->num_objects(), corrupted = 0;
    for (Oid oid = 1; seen < live; ++oid) {
      if (!s->Contains(oid)) continue;
      ++seen;
      auto obj = s->Get(oid);
      if (obj.ok() && obj->type == store::ObjType::kPtml) {
        ASSERT_OK(s->Put(oid, store::ObjType::kPtml, "\xff\xff garbage"));
        ++corrupted;
      }
    }
    ASSERT_GT(corrupted, 0u);
    ReflectStats rs;
    auto opt = u.ReflectOptimize(hyp, {}, &rs);
    ASSERT_FALSE(opt.ok());
    EXPECT_EQ(rs.cache_misses, 1u)
        << "the cache probe ran and missed before the decode failed";
    EXPECT_EQ(rs.input_term_size, 0u) << "term building never finished";
  }
}

}  // namespace
}  // namespace tml
