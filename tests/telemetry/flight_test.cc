// The always-on flight recorder (telemetry/flight.h): ring recording and
// snapshot ordering, window filtering, wrap-around overwrite accounting,
// Chrome-JSON dumps, incident auto-dump bounding — and the seqlock
// protocol under concurrent writers and dumpers (the TSan suite target;
// suite names carry Telemetry/Concurrent for tools/check.sh --tsan).

#include <sys/stat.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "telemetry/flight.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace tml::telemetry {
namespace {

TEST(TelemetryFlight, RecordAndSnapshotSorted) {
  FlightRecorder& fr = FlightRecorder::Global();
  fr.set_enabled(true);
  uint64_t t0 = Tracer::NowNs();
  fr.Record("test", "flight.second", t0 + 200, 10);
  fr.Record("test", "flight.first", t0 + 100, 10);
  std::vector<FlightEvent> events = fr.Snapshot();
  // Our two events are present and the snapshot is sorted by start time.
  int seen_first = -1;
  int seen_second = -1;
  for (size_t k = 0; k < events.size(); ++k) {
    ASSERT_NE(events[k].name, nullptr);
    if (std::string(events[k].name) == "flight.first") {
      seen_first = static_cast<int>(k);
    }
    if (std::string(events[k].name) == "flight.second") {
      seen_second = static_cast<int>(k);
    }
    if (k > 0) {
      EXPECT_LE(events[k - 1].ts_ns, events[k].ts_ns);
    }
  }
  EXPECT_GE(seen_first, 0);
  EXPECT_GT(seen_second, seen_first);
}

TEST(TelemetryFlight, WindowFiltersOldEvents) {
  FlightRecorder& fr = FlightRecorder::Global();
  fr.set_enabled(true);
  // NowNs is relative to the first trace call in the process, so work at
  // millisecond scale: wait until the clock has room for "20ms ago".
  while (Tracer::NowNs() < 30'000'000ull) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  uint64_t now = Tracer::NowNs();
  fr.Record("test", "flight.old", now - 20'000'000ull, 1);
  fr.Record("test", "flight.fresh", now, 1);
  std::vector<FlightEvent> recent = fr.Snapshot(5'000'000ull);
  bool has_old = false;
  bool has_fresh = false;
  for (const FlightEvent& e : recent) {
    if (std::string(e.name) == "flight.old") has_old = true;
    if (std::string(e.name) == "flight.fresh") has_fresh = true;
  }
  EXPECT_FALSE(has_old);
  EXPECT_TRUE(has_fresh);
}

TEST(TelemetryFlight, WrapAroundCountsOverwritten) {
  FlightRecorder& fr = FlightRecorder::Global();
  fr.set_enabled(true);
  // Capacity applies to rings created after the call: record from a
  // fresh thread so its ring is small.
  fr.set_ring_capacity(256);
  uint64_t before = fr.overwritten();
  std::thread writer([&fr] {
    for (int k = 0; k < 1000; ++k) {
      fr.Record("test", "flight.wrap", static_cast<uint64_t>(k), 1);
    }
  });
  writer.join();
  fr.set_ring_capacity(8192);
  // 1000 events into a 256-slot ring: at least 744 overwritten.
  EXPECT_GE(fr.overwritten(), before + 744);
  EXPECT_GE(fr.recorded(), 1000u);
  EXPECT_GE(fr.rings(), 1u);
}

TEST(TelemetryFlight, DumpChromeJsonShape) {
  FlightRecorder& fr = FlightRecorder::Global();
  fr.set_enabled(true);
  fr.Record("test", "flight.span", Tracer::NowNs(), 42);
  fr.NoteIncident("test_incident");  // instant event, no dump dir
  std::string json = fr.DumpChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("flight.span"), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);  // complete span
  EXPECT_NE(json.find("test_incident"), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);  // instant
  EXPECT_NE(json.find("overwritten"), std::string::npos);
}

TEST(TelemetryFlight, DisabledRecordsNothing) {
  FlightRecorder& fr = FlightRecorder::Global();
  fr.set_enabled(false);
  uint64_t before = fr.recorded();
  fr.Record("test", "flight.disabled", Tracer::NowNs(), 1);
  EXPECT_EQ(fr.recorded(), before);
  fr.set_enabled(true);
}

TEST(TelemetryFlight, IncidentAutoDumpBounded) {
  FlightRecorder& fr = FlightRecorder::Global();
  fr.set_enabled(true);
  std::string dir = ::testing::TempDir() + "/flight_dumps";
  ::mkdir(dir.c_str(), 0755);  // WriteDump does not create directories
  fr.SetAutoDumpDir(dir, /*max_dumps=*/2);
  uint64_t before = fr.auto_dumps_written();
  fr.NoteIncident("unit_a");
  fr.NoteIncident("unit_b");
  fr.NoteIncident("unit_c");  // over the cap: counted, not dumped
  EXPECT_EQ(fr.auto_dumps_written(), before + 2);
  std::string last = fr.last_auto_dump_path();
  EXPECT_NE(last.find("flight-unit_b-"), std::string::npos) << last;
  FILE* f = std::fopen(last.c_str(), "rb");
  ASSERT_NE(f, nullptr) << last;
  char buf[64] = {0};
  size_t n = std::fread(buf, 1, sizeof buf - 1, f);
  std::fclose(f);
  EXPECT_GT(n, 0u);
  EXPECT_NE(std::string(buf).find("traceEvents"), std::string::npos);
  fr.SetAutoDumpDir("");  // disarm for the rest of the suite

  // Incidents surface as a labeled counter regardless of dumping.
  EXPECT_GE(Registry::Global().CounterValue(
                "tml.flight.incidents{reason=unit_c}"),
            1u);
}

TEST(TelemetryFlightConcurrent, WritersRaceDumpers) {
  // The seqlock protocol under fire: four writer threads wrapping small
  // rings as fast as they can while two reader threads snapshot and
  // render dumps.  TSan validates the memory ordering; the assertions
  // validate that readers only ever see well-formed events.
  FlightRecorder& fr = FlightRecorder::Global();
  fr.set_enabled(true);
  fr.set_ring_capacity(256);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&fr, &stop, w] {
      uint64_t ts = static_cast<uint64_t>(w) << 32;
      while (!stop.load(std::memory_order_relaxed)) {
        fr.Record("test", "flight.race", ts++, 7);
      }
    });
  }
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&fr, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        std::vector<FlightEvent> events = fr.Snapshot();
        for (const FlightEvent& e : events) {
          ASSERT_NE(e.name, nullptr);
          ASSERT_NE(e.cat, nullptr);
        }
        std::string json = fr.DumpChromeJson();
        ASSERT_FALSE(json.empty());
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : writers) t.join();
  for (auto& t : readers) t.join();
  fr.set_ring_capacity(8192);
  EXPECT_GT(fr.overwritten(), 0u);
}

TEST(TelemetryFlightConcurrent, GaugeRefreshPublishesCounts) {
  FlightRecorder& fr = FlightRecorder::Global();
  fr.set_enabled(true);
  fr.Record("test", "flight.gauge", Tracer::NowNs(), 1);
  RefreshObservabilityGauges();
  auto samples = Registry::Global().Snapshot();
  bool saw_recorded = false;
  bool saw_rings = false;
  for (const auto& s : samples) {
    if (s.name == "tml.flight.recorded_events" && s.gauge > 0) {
      saw_recorded = true;
    }
    if (s.name == "tml.flight.rings" && s.gauge > 0) saw_rings = true;
  }
  EXPECT_TRUE(saw_recorded);
  EXPECT_TRUE(saw_rings);
}

}  // namespace
}  // namespace tml::telemetry
