// Reference interpreter tests — the executable semantics of §2, including
// the paper's for-loop example and the exception machinery of Fig. 2.

#include <gtest/gtest.h>

#include "core/module.h"
#include "interp/interp.h"
#include "tests/test_util.h"

namespace tml {
namespace {

using interp::InterpResult;
using interp::IValue;
using ir::Abstraction;
using ir::Module;
using test::MustParseProgram;

InterpResult RunText(const char* text, std::vector<IValue> args = {}) {
  Module m;
  const Abstraction* prog = MustParseProgram(&m, text);
  EXPECT_NE(prog, nullptr);
  auto res = interp::Run(m, prog, args);
  EXPECT_TRUE(res.ok()) << res.status().ToString();
  return res.ok() ? *res : InterpResult{};
}

IValue I(int64_t v) { return IValue{v}; }

TEST(Interp, ReturnsArgument) {
  InterpResult r = RunText("(proc (x ce cc) (cc x))", {I(42)});
  EXPECT_EQ(r.value.as_int(), 42);
  EXPECT_FALSE(r.raised);
}

TEST(Interp, Arithmetic) {
  InterpResult r = RunText(
      "(proc (x ce cc)"
      " (* x 6 ce (cont (t) (+ t 2 ce cc))))",
      {I(7)});
  EXPECT_EQ(r.value.as_int(), 44);
}

TEST(Interp, DivisionByZeroInvokesExceptionContinuation) {
  InterpResult r = RunText(
      "(proc (x ce cc)"
      " (/ x 0 (cont (e) (cc -1)) cc))",
      {I(5)});
  EXPECT_EQ(r.value.as_int(), -1);
  EXPECT_FALSE(r.raised);
}

TEST(Interp, UncaughtArithmeticFaultReachesTopLevel) {
  InterpResult r = RunText("(proc (x ce cc) (/ x 0 ce cc))", {I(5)});
  EXPECT_TRUE(r.raised);
}

TEST(Interp, OverflowRoutesToExceptionContinuation) {
  InterpResult r = RunText(
      "(proc (x ce cc)"
      " (+ x 1 (cont (e) (cc 0)) cc))",
      {I(std::numeric_limits<int64_t>::max())});
  EXPECT_EQ(r.value.as_int(), 0);
}

TEST(Interp, ComparisonBranches) {
  const char* text =
      "(proc (x ce cc)"
      " (< x 10 (cont () (cc 1)) (cont () (cc 2))))";
  EXPECT_EQ(RunText(text, {I(5)}).value.as_int(), 1);
  EXPECT_EQ(RunText(text, {I(15)}).value.as_int(), 2);
}

TEST(Interp, PaperForLoopExample) {
  // §2.3: for i = 1 upto 10 do f(i) end — here f accumulates into an array
  // cell so the loop is observable.
  InterpResult r = RunText(
      "(proc (n ce cc)"
      " (array 0 (cont (acc)"
      "  (Y (proc (/ c0 for c)"
      "       (c (cont () (for 1))"
      "          (cont (i)"
      "            (> i n"
      "               (cont () ([] acc 0 ce cc))"
      "               (cont ()"
      "                 ([] acc 0 ce (cont (old)"
      "                  (+ old i ce (cont (sum)"
      "                   ([]:= acc 0 sum ce (cont (ig)"
      "                    (+ i 1 ce (cont (t2) (for t2))))))))))))))))))",
      {I(10)});
  EXPECT_EQ(r.value.as_int(), 55);
}

TEST(Interp, MutualRecursionThroughY) {
  // even/odd via the fixpoint combinator.
  InterpResult r = RunText(
      "(proc (n ce cc)"
      " (Y (proc (^c0 even odd ^c)"
      "      (c (cont () (even n ce cc))"
      "         (proc (i ce1 cc1)"
      "           (== i 0 (cont () (cc1 true))"
      "                   (cont () (- i 1 ce1 (cont (t) (odd t ce1 cc1))))))"
      "         (proc (i ce2 cc2)"
      "           (== i 0 (cont () (cc2 false))"
      "                   (cont () (- i 1 ce2 (cont (t) (even t ce2 cc2))))))))))",
      {I(10)});
  EXPECT_TRUE(r.value.as_bool());
}

TEST(Interp, HigherOrderProcedureValues) {
  InterpResult r = RunText(
      "(proc (x ce cc)"
      " ((lambda (twice f)"
      "    (twice f x ce cc))"
      "  (proc (g a ce1 cc1) (g a ce1 (cont (t) (g t ce1 cc1))))"
      "  (proc (a ce2 cc2) (* a 3 ce2 cc2))))",
      {I(2)});
  EXPECT_EQ(r.value.as_int(), 18);
}

TEST(Interp, ArraysAndSize) {
  InterpResult r = RunText(
      "(proc (ce cc)"
      " (array 10 20 30 (cont (a)"
      "  ([] a 1 ce (cont (x)"
      "   (size a (cont (n)"
      "    (+ x n ce cc))))))))");
  EXPECT_EQ(r.value.as_int(), 23);
}

TEST(Interp, VectorIsImmutable) {
  InterpResult r = RunText(
      "(proc (ce cc)"
      " (vector 1 2 (cont (v)"
      "  ([]:= v 0 9 (cont (e) (cc -7)) cc))))");
  EXPECT_EQ(r.value.as_int(), -7);
}

TEST(Interp, ArrayBoundsFaultRoutesToCe) {
  InterpResult r = RunText(
      "(proc (ce cc)"
      " (array 1 2 (cont (a)"
      "  ([] a 5 (cont (e) (cc -1)) cc))))");
  EXPECT_EQ(r.value.as_int(), -1);
}

TEST(Interp, ByteArrays) {
  InterpResult r = RunText(
      "(proc (ce cc)"
      " (new 4 0 (cont (b)"
      "  ($[]:= b 2 77 ce (cont (ig)"
      "   ($[] b 2 ce cc))))))");
  EXPECT_EQ(r.value.as_int(), 77);
}

TEST(Interp, MoveCopiesSlots) {
  InterpResult r = RunText(
      "(proc (ce cc)"
      " (array 1 2 3 (cont (src)"
      "  (array 0 0 0 (cont (dst)"
      "   (move dst 0 src 1 2 (cont (ig)"
      "    ([] dst 1 ce cc))))))))");
  EXPECT_EQ(r.value.as_int(), 3);
}

TEST(Interp, HandlerStackRaise) {
  InterpResult r = RunText(
      "(proc (x ce cc)"
      " (pushHandler (cont (e) (cc 100))"
      "              (cont () (raise 5))))",
      {I(0)});
  EXPECT_EQ(r.value.as_int(), 100);
  EXPECT_FALSE(r.raised);
}

TEST(Interp, RaiseWithoutHandlerReachesTop) {
  InterpResult r = RunText("(proc (x ce cc) (raise x))", {I(13)});
  EXPECT_TRUE(r.raised);
  EXPECT_EQ(r.value.as_int(), 13);
}

TEST(Interp, PopHandlerRestoresOuter) {
  InterpResult r = RunText(
      "(proc (x ce cc)"
      " (pushHandler (cont (e) (cc 1))"
      "  (cont ()"
      "   (pushHandler (cont (e2) (cc 2))"
      "    (cont ()"
      "     (popHandler (cont () (raise 0))))))))",
      {I(0)});
  EXPECT_EQ(r.value.as_int(), 1);
}

TEST(Interp, CaseDispatch) {
  const char* text =
      "(proc (v ce cc)"
      " (== v 1 2 3"
      "     (cont () (cc 10))"
      "     (cont () (cc 20))"
      "     (cont () (cc 30))"
      "     (cont () (cc -1))))";
  EXPECT_EQ(RunText(text, {I(1)}).value.as_int(), 10);
  EXPECT_EQ(RunText(text, {I(2)}).value.as_int(), 20);
  EXPECT_EQ(RunText(text, {I(3)}).value.as_int(), 30);
  EXPECT_EQ(RunText(text, {I(9)}).value.as_int(), -1);
}

TEST(Interp, CharConversions) {
  InterpResult r = RunText(
      "(proc (ce cc)"
      " (char2int 'a' (cont (i)"
      "  (+ i 1 ce (cont (j)"
      "   (int2char j cc))))))");
  EXPECT_EQ(std::get<uint8_t>(r.value.v), 'b');
}

TEST(Interp, RealArithmeticAndSqrt) {
  InterpResult r = RunText(
      "(proc (ce cc)"
      " (*. 3.0 3.0 ce (cont (a)"
      "  (*. 4.0 4.0 ce (cont (b)"
      "   (+. a b ce (cont (s)"
      "    (sqrt s ce cc))))))))");
  EXPECT_DOUBLE_EQ(r.value.as_real(), 5.0);
}

TEST(Interp, CCallPrintCapturesOutput) {
  InterpResult r = RunText(
      "(proc (x ce cc)"
      " (ccall \"print\" x ce (cont (ig) (cc x))))",
      {I(7)});
  EXPECT_EQ(r.output, "7\n");
}

TEST(Interp, StepLimitGuardsDivergence) {
  Module m;
  const Abstraction* prog = MustParseProgram(
      &m,
      "(proc (ce cc)"
      " (Y (proc (/ c0 loop c)"
      "      (c (cont () (loop))"
      "         (cont () (loop))))))");
  interp::InterpOptions opts;
  opts.max_steps = 1000;
  auto res = interp::Run(m, prog, {}, opts);
  EXPECT_FALSE(res.ok());
}

}  // namespace
}  // namespace tml
