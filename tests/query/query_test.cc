// Query rewriting (§4.2): rule-by-rule unit tests plus execution-equality
// checks (rewritten plans must return the same relations).

#include <gtest/gtest.h>

#include "core/optimizer.h"
#include "core/printer.h"
#include "core/validate.h"
#include "query/relation.h"
#include "query/rewrite.h"
#include "tests/test_util.h"
#include "vm/codegen.h"
#include "vm/vm.h"

namespace tml {
namespace {

using ir::Abstraction;
using ir::Module;
using query::QueryRewriteStats;
using query::Relation;
using query::RewriteQueries;
using test::MustParseProgram;

const char* kChained =
    "(proc (r ce cc)"
    " (select (proc (t pce pcc)"
    "           ([] t 0 pce (cont (v)"
    "            (< v 50 (cont () (pcc true)) (cont () (pcc false))))))"
    "   r ce"
    "   (cont (tmp)"
    "     (select (proc (t2 qce qcc)"
    "               ([] t2 1 qce (cont (w)"
    "                (> w 3 (cont () (qcc true)) (cont () (qcc false))))))"
    "       tmp ce"
    "       (cont (out) (card out cc))))))";

Relation TestRelation(int n) {
  Relation rel;
  rel.columns = {"a", "b"};
  for (int i = 0; i < n; ++i) {
    rel.tuples.push_back({int64_t{(i * 7) % 100}, int64_t{i}});
  }
  return rel;
}

int64_t Execute(const Module& m, const Abstraction* prog,
                const Relation& rel) {
  vm::CodeUnit unit;
  auto fn = vm::CompileProc(&unit, const_cast<Module&>(m), prog, "q");
  EXPECT_TRUE(fn.ok()) << fn.status().ToString();
  if (!fn.ok()) return -999;
  vm::VM vm;
  vm::Value args[] = {query::RelationValue(rel, vm.heap())};
  vm.Pin(args[0]);
  auto r = vm.Run(*fn, args);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  if (!r.ok()) return -999;
  if (r->value.tag == vm::Tag::kBool) return r->value.b ? 1 : 0;
  return r->value.i;
}

TEST(QueryRewrite, MergeSelectFires) {
  Module m;
  const Abstraction* prog = MustParseProgram(&m, kChained);
  QueryRewriteStats stats;
  const Abstraction* out = RewriteQueries(&m, prog, {}, &stats);
  EXPECT_EQ(stats.merge_select, 1u);
  ASSERT_OK(ir::Validate(m, out));
  // Only one `select` remains.
  std::string printed = ir::PrintValue(m, out);
  size_t first = printed.find("(select");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(printed.find("(select", first + 1), std::string::npos);
}

TEST(QueryRewrite, MergeSelectPreservesResults) {
  Module m;
  const Abstraction* prog = MustParseProgram(&m, kChained);
  const Abstraction* out = query::OptimizeWithQueries(&m, prog);
  ASSERT_OK(ir::Validate(m, out));
  Relation rel = TestRelation(200);
  EXPECT_EQ(Execute(m, prog, rel), Execute(m, out, rel));
  EXPECT_GT(Execute(m, prog, rel), 0);
}

TEST(QueryRewrite, MergeSelectRequiresSingleUse) {
  // tempRel is also passed to `card`: must NOT merge.
  Module m;
  const Abstraction* prog = MustParseProgram(
      &m,
      "(proc (r ce cc)"
      " (select (proc (t pce pcc) (pcc true))"
      "   r ce"
      "   (cont (tmp)"
      "     (select (proc (t2 qce qcc) (qcc true))"
      "       tmp ce"
      "       (cont (out) (card tmp cc))))))");
  QueryRewriteStats stats;
  query::QueryRewriteOptions opts;
  opts.const_select = false;  // isolate merge-select
  RewriteQueries(&m, prog, opts, &stats);
  EXPECT_EQ(stats.merge_select, 0u);
}

TEST(QueryRewrite, MergeSelectRequiresSameExceptionCont) {
  Module m;
  const Abstraction* prog = MustParseProgram(
      &m,
      "(proc (r ce cc)"
      " (select (proc (t pce pcc) (pcc true))"
      "   r ce"
      "   (cont (tmp)"
      "     (select (proc (t2 qce qcc) (qcc false))"
      "       tmp (cont (e) (cc 0))"
      "       (cont (out) (card out cc))))))");
  QueryRewriteStats stats;
  query::QueryRewriteOptions opts;
  opts.const_select = false;
  RewriteQueries(&m, prog, opts, &stats);
  EXPECT_EQ(stats.merge_select, 0u);
}

TEST(QueryRewrite, SelectTrueBecomesIdentity) {
  Module m;
  const Abstraction* prog = MustParseProgram(
      &m,
      "(proc (r ce cc)"
      " (select (proc (t pce pcc) (pcc true)) r ce"
      "   (cont (out) (card out cc))))");
  QueryRewriteStats stats;
  const Abstraction* out = RewriteQueries(&m, prog, {}, &stats);
  EXPECT_EQ(stats.select_true, 1u);
  std::string printed = ir::PrintValue(m, out);
  EXPECT_EQ(printed.find("select"), std::string::npos);
  Relation rel = TestRelation(10);
  EXPECT_EQ(Execute(m, out, rel), 10);
}

TEST(QueryRewrite, SelectFalseBecomesEmpty) {
  Module m;
  const Abstraction* prog = MustParseProgram(
      &m,
      "(proc (r ce cc)"
      " (select (proc (t pce pcc) (pcc false)) r ce"
      "   (cont (out) (card out cc))))");
  QueryRewriteStats stats;
  const Abstraction* out = RewriteQueries(&m, prog, {}, &stats);
  EXPECT_EQ(stats.select_false, 1u);
  Relation rel = TestRelation(10);
  EXPECT_EQ(Execute(m, out, rel), 0);
}

TEST(QueryRewrite, TrivialExistsFires) {
  // The paper's rule: x ∉ fv(p) ⇒ (∃x∈R: p) ≡ p ∧ R ≠ ∅.
  Module m;
  const Abstraction* prog = MustParseProgram(
      &m,
      "(proc (r h ce cc)"
      " (exists (proc (x pce pcc)"
      "           (> h 10 (cont () (pcc true)) (cont () (pcc false))))"
      "   r ce cc))");
  QueryRewriteStats stats;
  const Abstraction* out = RewriteQueries(&m, prog, {}, &stats);
  EXPECT_EQ(stats.trivial_exists, 1u);
  ASSERT_OK(ir::Validate(m, out));
  std::string printed = ir::PrintValue(m, out);
  EXPECT_EQ(printed.find("exists"), std::string::npos);
  EXPECT_NE(printed.find("empty"), std::string::npos);
}

TEST(QueryRewrite, TrivialExistsPreservesSemantics) {
  for (int64_t h : {5, 50}) {
    for (int n : {0, 7}) {
      Module m;
      std::string text =
          "(proc (r ce cc)"
          " ((lambda (h)"
          "   (exists (proc (x pce pcc)"
          "             (> h 10 (cont () (pcc true)) (cont () (pcc false))))"
          "     r ce cc))"
          "  " + std::to_string(h) + "))";
      const Abstraction* prog = MustParseProgram(&m, text.c_str());
      const Abstraction* naive = prog;
      const Abstraction* opt = query::OptimizeWithQueries(&m, prog);
      ASSERT_OK(ir::Validate(m, opt));
      Relation rel = TestRelation(n);
      EXPECT_EQ(Execute(m, naive, rel), Execute(m, opt, rel))
          << "h=" << h << " n=" << n;
    }
  }
}

TEST(QueryRewrite, TrivialExistsDoesNotFireWhenXOccurs) {
  Module m;
  const Abstraction* prog = MustParseProgram(
      &m,
      "(proc (r ce cc)"
      " (exists (proc (x pce pcc)"
      "           ([] x 0 pce (cont (v)"
      "            (> v 10 (cont () (pcc true)) (cont () (pcc false))))))"
      "   r ce cc))");
  QueryRewriteStats stats;
  RewriteQueries(&m, prog, {}, &stats);
  EXPECT_EQ(stats.trivial_exists, 0u);
}

TEST(QueryRewrite, ExistsConstTrue) {
  Module m;
  const Abstraction* prog = MustParseProgram(
      &m,
      "(proc (r ce cc)"
      " (exists (proc (x pce pcc) (pcc true)) r ce cc))");
  QueryRewriteStats stats;
  const Abstraction* out = RewriteQueries(&m, prog, {}, &stats);
  EXPECT_EQ(stats.exists_const, 1u);
  EXPECT_EQ(Execute(m, out, TestRelation(3)), 1);
  EXPECT_EQ(Execute(m, out, TestRelation(0)), 0);
}

TEST(QueryRewrite, ProjectProjectFuses) {
  Module m;
  const Abstraction* prog = MustParseProgram(
      &m,
      "(proc (r ce cc)"
      " (project (proc (t pce pcc)"
      "            ([] t 1 pce (cont (v) (array v pcc))))"
      "   r ce"
      "   (cont (tmp)"
      "     (project (proc (t2 qce qcc)"
      "                ([] t2 0 qce (cont (w)"
      "                 (* w 2 qce (cont (d) (array d qcc))))))"
      "       tmp ce"
      "       (cont (out) (card out cc))))))");
  QueryRewriteStats stats;
  const Abstraction* out = RewriteQueries(&m, prog, {}, &stats);
  EXPECT_EQ(stats.merge_project, 1u);
  ASSERT_OK(ir::Validate(m, out));
  Relation rel = TestRelation(17);
  EXPECT_EQ(Execute(m, prog, rel), Execute(m, out, rel));
}

TEST(QueryRewrite, IntegratedOptimizerReachesJointFixpoint) {
  // A view (constant-true select) exposed only after program optimization
  // inlines the predicate binding — Fig. 4's interplay.
  Module m;
  const Abstraction* prog = MustParseProgram(
      &m,
      "(proc (r ce cc)"
      " ((lambda (p)"
      "    (select p r ce (cont (out) (card out cc))))"
      "  (proc (t pce pcc) (pcc true))))");
  QueryRewriteStats qs;
  ir::OptimizerStats os;
  const Abstraction* out =
      query::OptimizeWithQueries(&m, prog, {}, {}, &os, &qs);
  EXPECT_EQ(qs.select_true, 1u);
  std::string printed = ir::PrintValue(m, out);
  EXPECT_EQ(printed.find("select"), std::string::npos);
  EXPECT_EQ(Execute(m, out, TestRelation(9)), 9);
}

TEST(RelationCodec, RoundTrip) {
  Relation rel;
  rel.columns = {"id", "name", "score", "flag"};
  rel.tuples.push_back({int64_t{1}, std::string("ada"), 3.5, true});
  rel.tuples.push_back({int64_t{2}, std::string("bob"), -1.25, false});
  rel.tuples.push_back({});  // empty tuple allowed
  std::string bytes = query::EncodeRelation(rel);
  auto back = query::DecodeRelation(bytes);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->columns, rel.columns);
  ASSERT_EQ(back->tuples.size(), 3u);
  EXPECT_EQ(back->tuples[0], rel.tuples[0]);
  EXPECT_EQ(back->tuples[1], rel.tuples[1]);
}

TEST(RelationCodec, RejectsCorruption) {
  Relation rel;
  rel.columns = {"x"};
  rel.tuples.push_back({int64_t{42}});
  std::string bytes = query::EncodeRelation(rel);
  EXPECT_FALSE(query::DecodeRelation(bytes.substr(0, bytes.size() - 1)).ok());
  EXPECT_FALSE(query::DecodeRelation("garbage").ok());
}

TEST(RelationCodec, HeapRoundTrip) {
  Relation rel;
  rel.columns = {"a", "b"};
  rel.tuples.push_back({int64_t{1}, 2.5});
  rel.tuples.push_back({std::string("s"), false});
  vm::Heap heap;
  vm::Value v = query::RelationValue(rel, &heap);
  auto back = query::RelationFromHeap(v);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->tuples.size(), 2u);
  EXPECT_EQ(back->tuples[0], rel.tuples[0]);
  EXPECT_EQ(back->tuples[1], rel.tuples[1]);
}

TEST(QueryExec, JoinProducesConcatenatedTuples) {
  Module m;
  const Abstraction* prog = MustParseProgram(
      &m,
      "(proc (r ce cc)"
      " (join (proc (t1 t2 pce pcc)"
      "         ([] t1 1 pce (cont (x)"
      "          ([] t2 1 pce (cont (y)"
      "           (beq x y (cont () (pcc true)) (cont () (pcc false))))))))"
      "   r r ce (cont (out) (card out cc))))");
  // Self-join on column b (unique) => |R| matches.
  Relation rel = TestRelation(12);
  EXPECT_EQ(Execute(m, prog, rel), 12);
}

}  // namespace
}  // namespace tml
