// Object store: CRUD, durability, atomic commit, compaction, roots.

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "store/object_store.h"
#include "tests/test_util.h"

namespace tml {
namespace {

using store::ObjectStore;
using store::ObjType;

class StoreFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/tmlstore_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".db";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST(StoreMemory, AllocateGetRoundTrip) {
  auto s = ObjectStore::Open("");
  ASSERT_TRUE(s.ok());
  auto oid = (*s)->Allocate(ObjType::kBlob, "hello");
  ASSERT_TRUE(oid.ok());
  auto obj = (*s)->Get(*oid);
  ASSERT_TRUE(obj.ok());
  EXPECT_EQ(obj->bytes, "hello");
  EXPECT_EQ(obj->type, ObjType::kBlob);
}

TEST(StoreMemory, DistinctOids) {
  auto s = ObjectStore::Open("");
  ASSERT_TRUE(s.ok());
  auto a = (*s)->Allocate(ObjType::kBlob, "a");
  auto b = (*s)->Allocate(ObjType::kBlob, "b");
  EXPECT_NE(*a, *b);
  EXPECT_EQ((*s)->num_objects(), 2u);
}

TEST(StoreMemory, GetMissingIsNotFound) {
  auto s = ObjectStore::Open("");
  auto obj = (*s)->Get(999);
  EXPECT_FALSE(obj.ok());
  EXPECT_EQ(obj.status().code(), StatusCode::kNotFound);
}

TEST(StoreMemory, PutOverwrites) {
  auto s = ObjectStore::Open("");
  auto oid = (*s)->Allocate(ObjType::kBlob, "v1");
  ASSERT_OK((*s)->Put(*oid, ObjType::kPtml, "v2"));
  auto obj = (*s)->Get(*oid);
  EXPECT_EQ(obj->bytes, "v2");
  EXPECT_EQ(obj->type, ObjType::kPtml);
}

TEST(StoreMemory, DeleteRemoves) {
  auto s = ObjectStore::Open("");
  auto oid = (*s)->Allocate(ObjType::kBlob, "x");
  ASSERT_OK((*s)->Delete(*oid));
  EXPECT_FALSE((*s)->Get(*oid).ok());
  EXPECT_FALSE((*s)->Delete(*oid).ok());
}

TEST(StoreMemory, LiveBytesByType) {
  auto s = ObjectStore::Open("");
  (void)(*s)->Allocate(ObjType::kCode, "1234");
  (void)(*s)->Allocate(ObjType::kPtml, "123456");
  (void)(*s)->Allocate(ObjType::kPtml, "12");
  EXPECT_EQ((*s)->live_bytes(ObjType::kCode), 4u);
  EXPECT_EQ((*s)->live_bytes(ObjType::kPtml), 8u);
  EXPECT_EQ((*s)->live_bytes(), 12u);
}

TEST_F(StoreFileTest, CommittedDataSurvivesReopen) {
  Oid oid;
  {
    auto s = ObjectStore::Open(path_);
    ASSERT_TRUE(s.ok()) << s.status().ToString();
    auto r = (*s)->Allocate(ObjType::kPtml, "persistent bytes");
    ASSERT_TRUE(r.ok());
    oid = *r;
    ASSERT_OK((*s)->Commit());
  }
  auto s = ObjectStore::Open(path_);
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  auto obj = (*s)->Get(oid);
  ASSERT_TRUE(obj.ok()) << obj.status().ToString();
  EXPECT_EQ(obj->bytes, "persistent bytes");
  EXPECT_EQ(obj->type, ObjType::kPtml);
}

TEST_F(StoreFileTest, UncommittedDataIsDiscardedOnReopen) {
  Oid committed, uncommitted;
  {
    auto s = ObjectStore::Open(path_);
    committed = *(*s)->Allocate(ObjType::kBlob, "yes");
    ASSERT_OK((*s)->Commit());
    uncommitted = *(*s)->Allocate(ObjType::kBlob, "no");
  }
  auto s = ObjectStore::Open(path_);
  EXPECT_TRUE((*s)->Get(committed).ok());
  EXPECT_FALSE((*s)->Get(uncommitted).ok());
}

TEST_F(StoreFileTest, UpdatesAndDeletesReplayInOrder) {
  Oid a, b;
  {
    auto s = ObjectStore::Open(path_);
    a = *(*s)->Allocate(ObjType::kBlob, "a1");
    b = *(*s)->Allocate(ObjType::kBlob, "b1");
    ASSERT_OK((*s)->Put(a, ObjType::kBlob, "a2"));
    ASSERT_OK((*s)->Delete(b));
    ASSERT_OK((*s)->Commit());
  }
  auto s = ObjectStore::Open(path_);
  EXPECT_EQ((*s)->Get(a)->bytes, "a2");
  EXPECT_FALSE((*s)->Get(b).ok());
}

TEST_F(StoreFileTest, OidsDoNotRecycleAcrossReopen) {
  Oid first;
  {
    auto s = ObjectStore::Open(path_);
    first = *(*s)->Allocate(ObjType::kBlob, "x");
    ASSERT_OK((*s)->Commit());
  }
  auto s = ObjectStore::Open(path_);
  Oid second = *(*s)->Allocate(ObjType::kBlob, "y");
  EXPECT_GT(second, first);
}

TEST_F(StoreFileTest, RootsSurviveReopen) {
  Oid oid;
  {
    auto s = ObjectStore::Open(path_);
    oid = *(*s)->Allocate(ObjType::kModule, "mod");
    ASSERT_OK((*s)->SetRoot("modules", oid));
    ASSERT_OK((*s)->Commit());
  }
  auto s = ObjectStore::Open(path_);
  auto root = (*s)->GetRoot("modules");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(*root, oid);
  EXPECT_FALSE((*s)->GetRoot("nope").ok());
}

TEST_F(StoreFileTest, TornTailDoesNotCorruptCommittedState) {
  Oid oid;
  {
    auto s = ObjectStore::Open(path_);
    oid = *(*s)->Allocate(ObjType::kBlob, "good");
    ASSERT_OK((*s)->Commit());
    // Simulate a crash mid-append: garbage past the durable length.
    (void)(*s)->Allocate(ObjType::kBlob, "half-written garbage");
    // no Commit
  }
  auto s = ObjectStore::Open(path_);
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_EQ((*s)->Get(oid)->bytes, "good");
  EXPECT_EQ((*s)->num_objects(), 1u);
}

TEST_F(StoreFileTest, CompactShrinksFileAndPreservesData) {
  Oid keep;
  {
    auto s = ObjectStore::Open(path_);
    keep = *(*s)->Allocate(ObjType::kBlob, std::string(1000, 'k'));
    for (int i = 0; i < 50; ++i) {
      ASSERT_OK((*s)->Put(keep, ObjType::kBlob, std::string(1000, 'k')));
    }
    Oid dead = *(*s)->Allocate(ObjType::kBlob, std::string(5000, 'd'));
    ASSERT_OK((*s)->Delete(dead));
    ASSERT_OK((*s)->SetRoot("r", keep));
    ASSERT_OK((*s)->Commit());
    uint64_t before = *(*s)->FileSize();
    ASSERT_OK((*s)->Compact());
    uint64_t after = *(*s)->FileSize();
    EXPECT_LT(after, before);
  }
  auto s = ObjectStore::Open(path_);
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_EQ((*s)->Get(keep)->bytes, std::string(1000, 'k'));
  EXPECT_EQ(*(*s)->GetRoot("r"), keep);
}

TEST_F(StoreFileTest, CommitIsRepeatable) {
  auto s = ObjectStore::Open(path_);
  for (int i = 0; i < 10; ++i) {
    (void)(*s)->Allocate(ObjType::kBlob, "v" + std::to_string(i));
    ASSERT_OK((*s)->Commit());
  }
  auto s2 = ObjectStore::Open(path_);
  EXPECT_EQ((*s2)->num_objects(), 10u);
}

}  // namespace
}  // namespace tml
