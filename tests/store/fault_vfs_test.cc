// FaultVfs semantics (syscall faults, torn writes, power loss, fsyncgate)
// and the ObjectStore behaviors they exist to prove: transient-error
// recovery, sticky poisoning after a failed fsync, salvage-mode opens of
// corrupted files, v1/v2 format compatibility, and Compact failure
// atomicity.

#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "store/object_store.h"
#include "support/crc32.h"
#include "support/fault_vfs.h"
#include "support/varint.h"
#include "tests/test_util.h"

namespace tml {
namespace {

using store::ObjectStore;
using store::ObjType;
using store::OpenOptions;
using store::RecoveryPolicy;

OpenOptions WithVfs(FaultVfs* vfs,
                    RecoveryPolicy rp = RecoveryPolicy::kStrict) {
  OpenOptions o;
  o.vfs = vfs;
  o.recovery = rp;
  return o;
}

std::unique_ptr<VfsFile> MustOpen(Vfs* vfs, const std::string& path) {
  auto f = vfs->Open(path, VfsOpenOptions{});
  EXPECT_TRUE(f.ok()) << f.status().ToString();
  return std::move(*f);
}

// ---------------------------------------------------------------- FaultVfs

TEST(FaultVfs, NthOpFailsAndStays) {
  FaultVfs vfs;
  auto f = MustOpen(&vfs, "a");  // op 1 (create)
  vfs.SetFailAfterOps(2);        // two more ops succeed, then all fail
  ASSERT_OK(f->Write("xx", 2, 0));
  ASSERT_OK(f->Sync());
  Status st = f->Write("yy", 2, 2);
  EXPECT_EQ(st.code(), StatusCode::kIOError) << st.ToString();
  EXPECT_FALSE(f->Sync().ok()) << "sticky: later ops keep failing";
  EXPECT_GE(vfs.faults_injected(), 2u);
  vfs.ClearFaults();
  ASSERT_OK(f->Sync());
}

TEST(FaultVfs, TransientFaultFailsExactlyOnce) {
  FaultVfs::Options opts;
  opts.sticky = false;
  opts.torn_writes = false;
  FaultVfs vfs(opts);
  auto f = MustOpen(&vfs, "a");
  vfs.SetFailAfterOps(1);
  ASSERT_OK(f->Write("a", 1, 0));
  EXPECT_FALSE(f->Write("b", 1, 1).ok());
  // Non-sticky: only one op fails.
  ASSERT_OK(f->Write("b", 1, 1));
  EXPECT_EQ(vfs.faults_injected(), 1u);
}

TEST(FaultVfs, TornWriteLandsStrictPrefix) {
  FaultVfs::Options opts;
  opts.seed = 7;
  FaultVfs vfs(opts);
  auto f = MustOpen(&vfs, "a");
  vfs.SetFailAfterOps(0);
  std::string payload(100, 'z');
  EXPECT_FALSE(f->Write(payload.data(), payload.size(), 0).ok());
  auto snap = vfs.SnapshotFile("a");
  ASSERT_TRUE(snap.ok());
  EXPECT_LT(snap->size(), payload.size()) << "never the full write";
  for (char c : *snap) EXPECT_EQ(c, 'z');
}

TEST(FaultVfs, PowerLossRevertsUnsyncedBytesButKeepsSynced) {
  FaultVfs vfs;
  const std::string path = "a";
  auto f = MustOpen(&vfs, path);
  std::string durable(FaultVfs::kPageSize, 'd');
  ASSERT_OK(f->Write(durable.data(), durable.size(), 0));
  ASSERT_OK(f->Sync());
  ASSERT_OK(vfs.SyncParentDir("."));
  // Overwrite the synced page and extend; none of it is synced.
  std::string dirty(3 * FaultVfs::kPageSize, 'u');
  ASSERT_OK(f->Write(dirty.data(), dirty.size(), 0));
  vfs.LosePower();
  auto snap = vfs.SnapshotFile(path);
  ASSERT_TRUE(snap.ok());
  // Every surviving byte is either the durable image or the un-synced
  // page that happened to survive its coin flip — never anything else.
  ASSERT_GE(snap->size(), durable.size());
  for (size_t i = 0; i < snap->size(); ++i) {
    char c = (*snap)[i];
    EXPECT_TRUE(c == 'd' || c == 'u' || c == '\0') << "byte " << i;
  }
  // Page flips are per-page: byte 0's fate matches its whole page.
  char first = (*snap)[0];
  for (size_t i = 1; i < FaultVfs::kPageSize; ++i) {
    EXPECT_EQ((*snap)[i], first) << "page is atomic at byte " << i;
  }
}

TEST(FaultVfs, PowerLossDropsUnsyncedDirectoryEntriesAsPrefix) {
  // With seed-dependent survival, the only guarantee worth asserting is
  // prefix order: if a later dir op survived, all earlier ones did too.
  for (uint64_t seed = 0; seed < 8; ++seed) {
    FaultVfs::Options opts;
    opts.seed = seed;
    FaultVfs vfs(opts);
    for (int i = 0; i < 4; ++i) {
      auto f = MustOpen(&vfs, "f" + std::to_string(i));
      ASSERT_OK(f->Write("x", 1, 0));
      ASSERT_OK(f->Sync());
    }
    vfs.LosePower();
    bool gap_seen = false;
    for (int i = 0; i < 4; ++i) {
      bool exists = vfs.Exists("f" + std::to_string(i));
      if (!exists) gap_seen = true;
      EXPECT_FALSE(exists && gap_seen)
          << "seed " << seed << ": dir op " << i
          << " survived after an earlier one was lost";
    }
  }
}

TEST(FaultVfs, SyncedDirectoryEntriesSurvivePowerLoss) {
  FaultVfs vfs;
  auto f = MustOpen(&vfs, "keep");
  ASSERT_OK(f->Write("x", 1, 0));
  ASSERT_OK(f->Sync());
  ASSERT_OK(vfs.SyncParentDir("."));
  vfs.LosePower();
  EXPECT_TRUE(vfs.Exists("keep"));
  auto snap = vfs.SnapshotFile("keep");
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(*snap, "x");
}

TEST(FaultVfs, FsyncgateFailedSyncEstablishesNothing) {
  FaultVfs::Options opts;
  opts.fsync_fail_at = 1;
  FaultVfs vfs(opts);
  auto f = MustOpen(&vfs, "a");
  ASSERT_OK(vfs.SyncParentDir("."));
  ASSERT_OK(f->Write("secret", 6, 0));
  EXPECT_FALSE(f->Sync().ok()) << "the gated fsync must fail";
  // The retry "succeeds" — but only covers writes still in the cache;
  // here nothing new was written, so it durably establishes... the same
  // dirty pages again.  FaultVfs models the dangerous kernel behavior of
  // dropping dirty flags on fsync failure ONLY via LosePower: we verify
  // that the failed sync alone did not mark the data durable by crashing
  // before any retry.
  vfs.LosePower();
  auto snap = vfs.SnapshotFile("a");
  ASSERT_TRUE(snap.ok());
  EXPECT_TRUE(snap->empty() || *snap == "secret")
      << "page either reverted or survived by flip, got: " << *snap;
}

// ----------------------------------------------- ObjectStore fault behavior

TEST(StoreFaults, TransientWriteErrorIsRecoverable) {
  FaultVfs::Options vopts;
  vopts.sticky = false;  // one ENOSPC-style error, then the disk recovers
  vopts.fault_errno = 28;  // ENOSPC
  FaultVfs vfs(vopts);
  const std::string path = "store.db";
  auto s = ObjectStore::Open(path, WithVfs(&vfs));
  ASSERT_TRUE(s.ok());
  auto oid = (*s)->Allocate(ObjType::kBlob, "first");
  ASSERT_TRUE(oid.ok());
  ASSERT_OK((*s)->Commit());

  vfs.SetFailAfterOps(0);  // next syscall fails (the record pwrite)
  auto failed = (*s)->Allocate(ObjType::kBlob, "second");
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kIOError);
  EXPECT_TRUE((*s)->poisoned().ok()) << "a failed pwrite must not poison";

  // The disk came back: the same store keeps working, and a reopen sees
  // exactly the committed data.
  auto oid2 = (*s)->Allocate(ObjType::kBlob, "second");
  ASSERT_TRUE(oid2.ok()) << oid2.status().ToString();
  ASSERT_OK((*s)->Commit());
  auto r = ObjectStore::Open(path, WithVfs(&vfs));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->Get(*oid)->bytes, "first");
  EXPECT_EQ((*r)->Get(*oid2)->bytes, "second");
  EXPECT_FALSE((*r)->salvage_report().salvaged);
}

TEST(StoreFaults, FailedFsyncPoisonsUntilReopen) {
  FaultVfs vfs;
  const std::string path = "store.db";
  auto s = ObjectStore::Open(path, WithVfs(&vfs));
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE((*s)->Allocate(ObjType::kBlob, "committed").ok());
  ASSERT_OK((*s)->Commit());

  ASSERT_TRUE((*s)->Allocate(ObjType::kBlob, "doomed").ok());
  vfs.SetFailAfterOps(0);
  Status st = (*s)->Commit();  // first syscall of Commit is the data fsync
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  vfs.ClearFaults();  // the kernel would now happily "fsync" again

  // Sticky poison: every mutation — including a retried Commit that would
  // succeed at the syscall level — must be refused with the same cause.
  EXPECT_FALSE((*s)->poisoned().ok());
  Status put = (*s)->Put(1, ObjType::kBlob, "nope");
  EXPECT_EQ(put.code(), StatusCode::kIOError);
  EXPECT_NE(put.message().find("poisoned"), std::string::npos)
      << put.ToString();
  EXPECT_EQ((*s)->Commit().code(), StatusCode::kIOError);
  EXPECT_FALSE((*s)->Compact().ok());

  // Reads still work (the in-memory directory is intact)...
  EXPECT_EQ((*s)->Get(1)->bytes, "committed");

  // ...and a reopen replays only proven-durable state and writes again.
  auto r = ObjectStore::Open(path, WithVfs(&vfs));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_OK((*r)->poisoned());
  EXPECT_EQ((*r)->Get(1)->bytes, "committed");
  EXPECT_FALSE((*r)->Contains(2)) << "the doomed append was never durable";
  ASSERT_TRUE((*r)->Allocate(ObjType::kBlob, "after").ok());
  ASSERT_OK((*r)->Commit());
}

TEST(StoreFaults, SalvageQuarantinesCorruptRecordKeepsRest) {
  FaultVfs vfs;
  const std::string path = "store.db";
  Oid a, b, c;
  {
    auto s = ObjectStore::Open(path, WithVfs(&vfs));
    ASSERT_TRUE(s.ok());
    a = *(*s)->Allocate(ObjType::kBlob, std::string(64, 'a'));
    b = *(*s)->Allocate(ObjType::kBlob, std::string(64, 'b'));
    c = *(*s)->Allocate(ObjType::kBlob, std::string(64, 'c'));
    ASSERT_OK((*s)->SetRoot("root-a", a));
    ASSERT_OK((*s)->Commit());
  }
  // Flip one payload byte of record b.  Records start at offset 80; the
  // payloads are distinctive runs, so find b's run in the raw image.
  auto snap = vfs.SnapshotFile(path);
  ASSERT_TRUE(snap.ok());
  size_t pos = snap->find(std::string(64, 'b'));
  ASSERT_NE(pos, std::string::npos);
  ASSERT_OK(vfs.CorruptFile(path, pos + 10, 0x40));

  // Strict open refuses; salvage opens with exactly one quarantined record.
  auto strict = ObjectStore::Open(path, WithVfs(&vfs));
  EXPECT_EQ(strict.status().code(), StatusCode::kCorruption)
      << strict.status().ToString();
  auto s = ObjectStore::Open(path, WithVfs(&vfs, RecoveryPolicy::kSalvage));
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_TRUE((*s)->salvage_report().salvaged);
  EXPECT_EQ((*s)->salvage_report().quarantined_records, 1u);
  EXPECT_FALSE((*s)->salvage_report().header_rebuilt);
  EXPECT_EQ((*s)->Get(a)->bytes, std::string(64, 'a'));
  EXPECT_EQ((*s)->Get(c)->bytes, std::string(64, 'c'));
  EXPECT_FALSE((*s)->Contains(b)) << "the damaged record is quarantined";
  EXPECT_EQ(*(*s)->GetRoot("root-a"), a);

  // The salvaged store is fully writable.  The quarantined record still
  // sits in the durable region (salvage only truncates the tail), so a
  // strict reopen would still refuse — until Compact rewrites the live
  // records and scrubs the damage.
  Oid b2 = *(*s)->Allocate(ObjType::kBlob, "b-again");
  ASSERT_OK((*s)->Commit());
  auto still = ObjectStore::Open(path, WithVfs(&vfs));
  EXPECT_EQ(still.status().code(), StatusCode::kCorruption)
      << "quarantine leaves the damage in place until compaction";
  ASSERT_OK((*s)->Compact());
  auto r = ObjectStore::Open(path, WithVfs(&vfs));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->Get(b2)->bytes, "b-again");
  EXPECT_EQ((*r)->Get(a)->bytes, std::string(64, 'a'));
  EXPECT_FALSE((*r)->Contains(b));
}

TEST(StoreFaults, QuarantineKeepsOlderVersionOfSameOid) {
  FaultVfs vfs;
  const std::string path = "store.db";
  Oid a;
  {
    auto s = ObjectStore::Open(path, WithVfs(&vfs));
    ASSERT_TRUE(s.ok());
    a = *(*s)->Allocate(ObjType::kBlob, std::string(48, 'x'));
    ASSERT_OK((*s)->Put(a, ObjType::kBlob, std::string(48, 'y')));
    ASSERT_OK((*s)->Commit());
  }
  auto snap = vfs.SnapshotFile(path);
  ASSERT_TRUE(snap.ok());
  size_t pos = snap->find(std::string(48, 'y'));
  ASSERT_NE(pos, std::string::npos);
  ASSERT_OK(vfs.CorruptFile(path, pos, 0x01));
  auto s = ObjectStore::Open(path, WithVfs(&vfs, RecoveryPolicy::kSalvage));
  ASSERT_TRUE(s.ok());
  EXPECT_EQ((*s)->salvage_report().quarantined_records, 1u);
  EXPECT_EQ((*s)->Get(a)->bytes, std::string(48, 'x'))
      << "last-writer-wins falls back to the previous valid version";
}

TEST(StoreFaults, SalvageRebuildsLostHeaders) {
  FaultVfs vfs;
  const std::string path = "store.db";
  Oid a;
  {
    auto s = ObjectStore::Open(path, WithVfs(&vfs));
    ASSERT_TRUE(s.ok());
    a = *(*s)->Allocate(ObjType::kBlob, "survivor");
    ASSERT_OK((*s)->SetRoot("r", a));
    ASSERT_OK((*s)->Commit());
  }
  // Wreck both header slots (bytes 0..79).
  for (uint64_t off : {0ull, 4ull, 40ull, 44ull}) {
    ASSERT_OK(vfs.CorruptFile(path, off, 0xFF));
  }
  EXPECT_FALSE(ObjectStore::Open(path, WithVfs(&vfs)).ok());
  auto s = ObjectStore::Open(path, WithVfs(&vfs, RecoveryPolicy::kSalvage));
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_TRUE((*s)->salvage_report().header_rebuilt);
  EXPECT_EQ((*s)->Get(a)->bytes, "survivor");
  EXPECT_EQ(*(*s)->GetRoot("r"), a);
  // The rebuilt next-oid must never re-issue a replayed OID.
  Oid fresh = *(*s)->Allocate(ObjType::kBlob, "fresh");
  EXPECT_GT(fresh, a);
  ASSERT_OK((*s)->Commit());
  auto r = ObjectStore::Open(path, WithVfs(&vfs));
  ASSERT_TRUE(r.ok()) << "salvage republished valid headers: "
                      << r.status().ToString();
}

// Handcraft a format-v1 store file: header magic "TMLSTOR1", records whose
// CRC covers payload + raw OID only (not the type/length varints).
void WriteV1Store(Vfs* vfs, const std::string& path,
                  const std::vector<std::pair<Oid, std::string>>& objs,
                  uint64_t extra_type_raw = 0) {
  std::string data;
  for (const auto& [oid, payload] : objs) {
    PutVarint(&data, oid);
    PutVarint(&data, static_cast<uint64_t>(ObjType::kBlob));
    PutVarint(&data, payload.size());
    data.append(payload);
    uint32_t crc = Crc32(payload);
    uint64_t oid64 = oid;
    crc = Crc32(&oid64, sizeof(oid64), crc);
    PutVarint(&data, crc);
  }
  if (extra_type_raw != 0) {
    // A v1 record whose type tag is out of range but whose CRC (which
    // does not cover the tag) still verifies.
    const std::string payload = "evil";
    const uint64_t oid64 = 99;
    PutVarint(&data, oid64);
    PutVarint(&data, extra_type_raw);
    PutVarint(&data, payload.size());
    data.append(payload);
    uint32_t crc = Crc32(payload);
    crc = Crc32(&oid64, sizeof(oid64), crc);
    PutVarint(&data, crc);
  }
  char header[40];
  std::memset(header, 0, sizeof(header));
  std::memcpy(header, "TMLSTOR1", 8);
  uint64_t epoch = 1, durable = data.size(), next_oid = 100;
  std::memcpy(header + 8, &epoch, 8);
  std::memcpy(header + 16, &durable, 8);
  std::memcpy(header + 24, &next_oid, 8);
  uint32_t hcrc = Crc32(header, 32);
  std::memcpy(header + 32, &hcrc, 4);
  auto f = MustOpen(vfs, path);
  ASSERT_OK(f->Write(header, sizeof(header), 0));
  epoch = 2;
  std::memcpy(header + 8, &epoch, 8);
  hcrc = Crc32(header, 32);
  std::memcpy(header + 32, &hcrc, 4);
  ASSERT_OK(f->Write(header, sizeof(header), 40));
  ASSERT_OK(f->Write(data.data(), data.size(), 80));
  ASSERT_OK(f->Sync());
  ASSERT_OK(vfs->SyncParentDir("."));
}

TEST(StoreFormats, V1StoreOpensAppendsAndCompactUpgrades) {
  FaultVfs vfs;
  const std::string path = "legacy.db";
  WriteV1Store(&vfs, path, {{1, "one"}, {2, "two"}});
  auto s = ObjectStore::Open(path, WithVfs(&vfs));
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_EQ((*s)->format_version(), 1u);
  EXPECT_EQ((*s)->Get(1)->bytes, "one");
  EXPECT_EQ((*s)->Get(2)->bytes, "two");

  // Appends to a v1 store stay v1 (mixed-format files would be
  // unreadable), and a plain reopen still works.
  ASSERT_TRUE((*s)->Allocate(ObjType::kBlob, "three").ok());
  ASSERT_OK((*s)->Commit());
  {
    auto r = ObjectStore::Open(path, WithVfs(&vfs));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ((*r)->format_version(), 1u);
    EXPECT_EQ((*r)->Get(100)->bytes, "three");
  }

  // Compact rewrites every record: the file comes back as v2.
  ASSERT_OK((*s)->Compact());
  EXPECT_EQ((*s)->format_version(), 2u);
  auto r = ObjectStore::Open(path, WithVfs(&vfs));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->format_version(), 2u);
  EXPECT_EQ((*r)->Get(1)->bytes, "one");
  EXPECT_EQ((*r)->Get(100)->bytes, "three");
}

TEST(StoreFormats, OutOfRangeTypeTagRejectedAtReplay) {
  // v1 CRCs do not cover the type tag, so a flipped tag byte passes the
  // checksum — the replay-time range check is the only line of defense.
  FaultVfs vfs;
  const std::string path = "legacy.db";
  WriteV1Store(&vfs, path, {{1, "good"}}, /*extra_type_raw=*/0x29);
  auto strict = ObjectStore::Open(path, WithVfs(&vfs));
  EXPECT_EQ(strict.status().code(), StatusCode::kCorruption);
  EXPECT_NE(strict.status().message().find("type tag"), std::string::npos)
      << strict.status().ToString();
  auto s = ObjectStore::Open(path, WithVfs(&vfs, RecoveryPolicy::kSalvage));
  ASSERT_TRUE(s.ok());
  EXPECT_EQ((*s)->salvage_report().quarantined_records, 1u);
  EXPECT_EQ((*s)->Get(1)->bytes, "good");
  EXPECT_FALSE((*s)->Contains(99));
}

TEST(StoreFormats, V2CrcCoversRecordHeaderVarints) {
  // Flip a bit inside the type varint of a committed v2 record: the CRC
  // now fails (v2 covers the header), so the record quarantines cleanly.
  FaultVfs vfs;
  const std::string path = "store.db";
  Oid a;
  {
    auto s = ObjectStore::Open(path, WithVfs(&vfs));
    ASSERT_TRUE(s.ok());
    EXPECT_EQ((*s)->format_version(), 2u);
    a = *(*s)->Allocate(ObjType::kBlob, std::string(32, 'q'));
    ASSERT_OK((*s)->Commit());
  }
  auto snap = vfs.SnapshotFile(path);
  ASSERT_TRUE(snap.ok());
  size_t pos = snap->find(std::string(32, 'q'));
  ASSERT_NE(pos, std::string::npos);
  // Record layout: oid(1) type(1) len(1) payload — the type byte sits two
  // bytes before the payload.
  ASSERT_OK(vfs.CorruptFile(path, pos - 2, 0x02));
  auto strict = ObjectStore::Open(path, WithVfs(&vfs));
  EXPECT_EQ(strict.status().code(), StatusCode::kCorruption);
  auto s = ObjectStore::Open(path, WithVfs(&vfs, RecoveryPolicy::kSalvage));
  ASSERT_TRUE(s.ok());
  EXPECT_EQ((*s)->salvage_report().quarantined_records, 1u);
  EXPECT_FALSE((*s)->Contains(a));
}

TEST(StoreCompact, StaleCompactTempRemovedOnOpen) {
  FaultVfs vfs;
  const std::string path = "store.db";
  {
    auto s = ObjectStore::Open(path, WithVfs(&vfs));
    ASSERT_TRUE(s.ok());
    ASSERT_TRUE((*s)->Allocate(ObjType::kBlob, "live").ok());
    ASSERT_OK((*s)->Commit());
  }
  // A crash between writing and renaming <path>.compact leaves this:
  auto leftover = MustOpen(&vfs, path + ".compact");
  ASSERT_OK(leftover->Write("partial garbage", 15, 0));
  leftover.reset();
  auto s = ObjectStore::Open(path, WithVfs(&vfs));
  ASSERT_TRUE(s.ok());
  EXPECT_FALSE(vfs.Exists(path + ".compact"));
  EXPECT_EQ((*s)->Get(1)->bytes, "live");
}

TEST(StoreCompact, AnySingleTransientFaultLeavesStoreConsistent) {
  // Count the syscalls one clean Compact issues, then re-run the same
  // scenario failing each one in turn (transient, torn).  Whatever the
  // failing op was — tmp create, a record write, a sync, the rename, the
  // final dir sync — the store must stay fully usable (or be poisoned
  // only by a genuine post-rename fsync failure) and keep all live data.
  uint64_t compact_ops = 0;
  {
    FaultVfs vfs;
    auto s = ObjectStore::Open("store.db", WithVfs(&vfs));
    ASSERT_TRUE(s.ok());
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(
          (*s)->Allocate(ObjType::kBlob, "payload-" + std::to_string(i))
              .ok());
    }
    ASSERT_OK((*s)->Delete(3));
    ASSERT_OK((*s)->SetRoot("r", 1));
    ASSERT_OK((*s)->Commit());
    uint64_t before = vfs.ops();
    ASSERT_OK((*s)->Compact());
    compact_ops = vfs.ops() - before;
    ASSERT_GT(compact_ops, 4u);
  }

  for (uint64_t k = 0; k < compact_ops; ++k) {
    SCOPED_TRACE("failing compact op " + std::to_string(k));
    FaultVfs::Options vopts;
    vopts.sticky = false;
    vopts.seed = k;
    FaultVfs vfs(vopts);
    auto s = ObjectStore::Open("store.db", WithVfs(&vfs));
    ASSERT_TRUE(s.ok());
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(
          (*s)->Allocate(ObjType::kBlob, "payload-" + std::to_string(i))
              .ok());
    }
    ASSERT_OK((*s)->Delete(3));
    ASSERT_OK((*s)->SetRoot("r", 1));
    ASSERT_OK((*s)->Commit());

    vfs.SetFailAfterOps(k);
    Status st = (*s)->Compact();
    vfs.ClearFaults();
    ASSERT_GE(vfs.faults_injected(), 1u) << "schedule must have fired";

    ObjectStore* live = s->get();
    std::unique_ptr<ObjectStore> reopened;
    if (!live->poisoned().ok()) {
      // Only the post-rename directory sync may poison; reopening must
      // then recover everything (the rename landed and was data-synced).
      auto r = ObjectStore::Open("store.db", WithVfs(&vfs));
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      reopened = std::move(*r);
      live = reopened.get();
    }
    // All live data is intact whether or not Compact went through.
    // Allocate issued OIDs 1..6 for i = 0..5, and OID 3 was deleted.
    for (int i = 0; i < 6; ++i) {
      if (i + 1 == 3) {
        EXPECT_FALSE(live->Contains(3));
        continue;
      }
      auto got = live->Get(static_cast<Oid>(i + 1));
      ASSERT_TRUE(got.ok()) << "oid " << i + 1 << ": "
                            << got.status().ToString();
      EXPECT_EQ(got->bytes, "payload-" + std::to_string(i));
    }
    EXPECT_EQ(*live->GetRoot("r"), 1u);
    // And the store keeps accepting writes.
    auto more = live->Allocate(ObjType::kBlob, "after-fault");
    ASSERT_TRUE(more.ok()) << more.status().ToString();
    ASSERT_OK(live->Commit());
    EXPECT_FALSE(vfs.Exists("store.db.compact"))
        << "failed compaction must not leave its temp file";
    // Whatever happened, a strict reopen agrees with the live handle.
    auto check = ObjectStore::Open("store.db", WithVfs(&vfs));
    ASSERT_TRUE(check.ok()) << check.status().ToString();
    EXPECT_EQ((*check)->Get(*more)->bytes, "after-fault");
    EXPECT_EQ((*check)->num_objects(), live->num_objects());
  }
}

}  // namespace
}  // namespace tml
