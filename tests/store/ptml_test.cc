// PTML encode/decode: round trips, free-variable lists, corruption handling,
// and the §6 size-accounting hooks.

#include <gtest/gtest.h>

#include "core/analysis.h"
#include "store/ptml.h"
#include "tests/test_util.h"

namespace tml {
namespace {

using ir::Abstraction;
using ir::Module;
using store::DecodePtml;
using store::EncodePtml;
using test::MustParseProgram;

void RoundTrip(const char* text, bool allow_free = false) {
  Module m;
  ir::ParseOptions popts;
  popts.allow_free_vars = allow_free;
  auto parsed =
      ir::ParseValueText(&m, prims::StandardRegistry(), text, popts);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Abstraction* abs = ir::Cast<Abstraction>(parsed->value);

  std::string bytes = EncodePtml(m, abs);
  Module m2;
  auto decoded = DecodePtml(&m2, prims::StandardRegistry(), bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(ir::AlphaEquivalent(m, abs, m2, decoded->abs))
      << ir::PrintValue(m, abs) << "\nvs\n"
      << ir::PrintValue(m2, decoded->abs);
  EXPECT_EQ(decoded->free_vars.size(), ir::FreeVariables(abs).size());
}

TEST(Ptml, ClosedScalarProgram) {
  RoundTrip("(proc (x ce cc) (+ x 1 ce cc))");
}

TEST(Ptml, AllLiteralKinds) {
  RoundTrip(
      "(proc (ce cc)"
      " ((lambda (a b c d e f g) (cc a))"
      "  13 -7 'z' 2.5 true nil \"str\"))");
}

TEST(Ptml, OidLeaves) {
  RoundTrip("(proc (x ce cc) ((lambda (t) (cc t)) <oid 0x5b4780>))");
}

TEST(Ptml, YLoopWithMixedSorts) {
  RoundTrip(
      "(proc (n ce cc)"
      " (Y (proc (/ c0 for c)"
      "      (c (cont () (for 1))"
      "         (cont (i)"
      "           (> i n"
      "              (cont () (cc i))"
      "              (cont () (+ i 1 ce (cont (t2) (for t2))))))))))");
}

TEST(Ptml, CaseAndExceptions) {
  RoundTrip(
      "(proc (v ce cc)"
      " (pushHandler (cont (e) (cc -1))"
      "  (cont ()"
      "   (== v 1 2 (cont () (raise v)) (cont () (cc 2))"
      "       (cont () (popHandler (cont () (cc 0))))))))");
}

TEST(Ptml, FreeVariablesAreListedInOrder) {
  Module m;
  ir::ParseOptions popts;
  popts.allow_free_vars = true;
  auto parsed = ir::ParseValueText(
      &m, prims::StandardRegistry(),
      "(proc (c ce cc) (complexx c ce (cont (t) (mysqrt t ce cc))))", popts);
  ASSERT_TRUE(parsed.ok());
  const Abstraction* abs = ir::Cast<Abstraction>(parsed->value);
  std::string bytes = EncodePtml(m, abs);
  Module m2;
  auto decoded = DecodePtml(&m2, prims::StandardRegistry(), bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->free_vars.size(), 2u);
  EXPECT_EQ(m2.NameOf(*decoded->free_vars[0]), "complexx");
  EXPECT_EQ(m2.NameOf(*decoded->free_vars[1]), "mysqrt");
  EXPECT_TRUE(ir::AlphaEquivalent(m, abs, m2, decoded->abs));
}

TEST(Ptml, VariableSortsSurvive) {
  Module m;
  const Abstraction* prog = MustParseProgram(
      &m, "(proc (n ce cc) (Y (proc (/ c0 f c) (c (cont () (cc n))))))");
  // Note: that Y is degenerate but syntactically valid for the codec.
  std::string bytes = EncodePtml(m, prog);
  Module m2;
  auto decoded = DecodePtml(&m2, prims::StandardRegistry(), bytes);
  ASSERT_TRUE(decoded.ok());
  const Abstraction* gen = ir::Cast<Abstraction>(
      decoded->abs->body()->arg(0));
  EXPECT_TRUE(gen->param(0)->is_cont());
  EXPECT_TRUE(gen->param(1)->is_cont());
}

TEST(Ptml, StringTableDeduplicates) {
  // Many occurrences of the same long name should not blow up the encoding.
  Module m;
  const Abstraction* a = MustParseProgram(
      &m,
      "(proc (longvariablename ce cc)"
      " (+ longvariablename longvariablename ce"
      "    (cont (t) (+ t longvariablename ce cc))))");
  std::string bytes = EncodePtml(m, a);
  // Name appears once in the table; occurrences are 1-2 byte indices.
  EXPECT_LT(bytes.size(), 80u);
}

TEST(Ptml, DecodeRejectsBadMagic) {
  Module m;
  auto r = DecodePtml(&m, prims::StandardRegistry(), "XXX junk");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

TEST(Ptml, DecodeRejectsTruncation) {
  Module m;
  const Abstraction* prog =
      MustParseProgram(&m, "(proc (x ce cc) (+ x 1 ce cc))");
  std::string bytes = EncodePtml(m, prog);
  for (size_t cut : {bytes.size() - 1, bytes.size() / 2, size_t{4}}) {
    Module m2;
    auto r = DecodePtml(&m2, prims::StandardRegistry(),
                        std::string_view(bytes).substr(0, cut));
    EXPECT_FALSE(r.ok()) << "cut at " << cut;
  }
}

TEST(Ptml, DecodeRejectsTrailingGarbage) {
  Module m;
  const Abstraction* prog =
      MustParseProgram(&m, "(proc (x ce cc) (cc x))");
  std::string bytes = EncodePtml(m, prog) + "extra";
  Module m2;
  auto r = DecodePtml(&m2, prims::StandardRegistry(), bytes);
  EXPECT_FALSE(r.ok());
}

TEST(Ptml, DecodeRejectsUnknownPrimitive) {
  // Encode with a registry containing an extra primitive, decode without.
  // Simpler: corrupt a prim name index is fragile; instead parse with the
  // standard registry and decode against an empty registry.
  Module m;
  const Abstraction* prog =
      MustParseProgram(&m, "(proc (x ce cc) (+ x 1 ce cc))");
  std::string bytes = EncodePtml(m, prog);
  Module m2;
  ir::PrimitiveRegistry empty;
  auto r = DecodePtml(&m2, empty, bytes);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(Ptml, EncodingIsCompactRelativeToPrintedForm) {
  // §6 observes the PTML encoding roughly doubles code size; it must at
  // least be much smaller than the printed text.
  Module m;
  const Abstraction* prog = MustParseProgram(
      &m,
      "(proc (n ce cc)"
      " (Y (proc (/ c0 for c)"
      "      (c (cont () (for 1 0))"
      "         (cont (i acc)"
      "           (> i n"
      "              (cont () (cc acc))"
      "              (cont ()"
      "                (+ acc i ce (cont (a2)"
      "                  (+ i 1 ce (cont (t2) (for t2 a2))))))))))))");
  std::string bytes = EncodePtml(m, prog);
  std::string printed = ir::PrintValue(m, prog);
  EXPECT_LT(bytes.size(), printed.size());
}

}  // namespace
}  // namespace tml
