// Model-based randomized testing of the object store: a long random
// sequence of allocate/put/delete/root/commit/reopen operations must keep
// the store consistent with a trivial in-memory model, across restarts.
//
// Also the decode-path fuzzers: 100k+ iterations of corrupt varint, PTML
// and code-record input must produce clean Corruption errors — no crash,
// no wild allocation (run tools/check.sh --asan for the sanitized run).

#include <cstdio>
#include <map>
#include <random>
#include <string>

#include <gtest/gtest.h>

#include "prims/standard.h"
#include "store/object_store.h"
#include "store/ptml.h"
#include "support/varint.h"
#include "tests/test_util.h"
#include "vm/code.h"
#include "vm/codegen.h"

namespace tml {
namespace {

using store::ObjectStore;
using store::ObjType;

struct ModelEntry {
  ObjType type;
  std::string bytes;
};

class StoreFuzz : public ::testing::TestWithParam<uint32_t> {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/tml_fuzz_" +
            std::to_string(GetParam()) + ".db";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_P(StoreFuzz, RandomOpsMatchModel) {
  std::mt19937 rng(GetParam());
  auto rnd_bytes = [&](size_t max) {
    std::string s(rng() % max, '\0');
    for (char& c : s) c = static_cast<char>('a' + rng() % 26);
    return s;
  };

  std::map<Oid, ModelEntry> committed;  // model of durable state
  std::map<Oid, ModelEntry> live;       // model of in-process state
  std::map<std::string, Oid> roots_committed, roots_live;

  auto opened = ObjectStore::Open(path_);
  ASSERT_TRUE(opened.ok());
  std::unique_ptr<ObjectStore> s = std::move(*opened);

  for (int step = 0; step < 400; ++step) {
    int op = static_cast<int>(rng() % 100);
    if (op < 40) {  // allocate
      ObjType t = static_cast<ObjType>(rng() % 6);
      std::string bytes = rnd_bytes(64);
      auto oid = s->Allocate(t, bytes);
      ASSERT_TRUE(oid.ok());
      ASSERT_EQ(live.count(*oid), 0u) << "OID reuse";
      live[*oid] = {t, bytes};
    } else if (op < 60 && !live.empty()) {  // put (overwrite)
      auto it = live.begin();
      std::advance(it, rng() % live.size());
      std::string bytes = rnd_bytes(64);
      ASSERT_OK(s->Put(it->first, ObjType::kBlob, bytes));
      it->second = {ObjType::kBlob, bytes};
    } else if (op < 72 && !live.empty()) {  // delete
      auto it = live.begin();
      std::advance(it, rng() % live.size());
      ASSERT_OK(s->Delete(it->first));
      live.erase(it);
    } else if (op < 80 && !live.empty()) {  // set a root
      auto it = live.begin();
      std::advance(it, rng() % live.size());
      std::string name = "r" + std::to_string(rng() % 4);
      ASSERT_OK(s->SetRoot(name, it->first));
      roots_live[name] = it->first;
    } else if (op < 90) {  // commit
      ASSERT_OK(s->Commit());
      committed = live;
      roots_committed = roots_live;
    } else if (op < 96) {  // reopen: uncommitted work disappears
      s.reset();
      auto reopened = ObjectStore::Open(path_);
      ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
      s = std::move(*reopened);
      live = committed;
      roots_live = roots_committed;
    } else {  // compact (implies durability)
      ASSERT_OK(s->Commit());
      committed = live;
      roots_committed = roots_live;
      ASSERT_OK(s->Compact());
    }

    // Invariant: the store agrees with the live model.
    ASSERT_EQ(s->num_objects(), live.size()) << "step " << step;
    if (!live.empty()) {
      auto it = live.begin();
      std::advance(it, rng() % live.size());
      auto got = s->Get(it->first);
      ASSERT_TRUE(got.ok()) << "step " << step;
      EXPECT_EQ(got->bytes, it->second.bytes) << "step " << step;
      EXPECT_EQ(got->type, it->second.type) << "step " << step;
    }
    for (const auto& [name, oid] : roots_live) {
      // Deleted targets may leave dangling roots — only the mapping is
      // checked.
      auto got = s->GetRoot(name);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(*got, oid);
    }
  }

  // Final durability check.
  ASSERT_OK(s->Commit());
  committed = live;
  s.reset();
  auto reopened = ObjectStore::Open(path_);
  ASSERT_TRUE(reopened.ok());
  s = std::move(*reopened);
  ASSERT_EQ(s->num_objects(), committed.size());
  for (const auto& [oid, entry] : committed) {
    auto got = s->Get(oid);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->bytes, entry.bytes);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreFuzz,
                         ::testing::Values(1u, 7u, 42u, 1337u, 99991u));

// ---- decode-path hardening ---------------------------------------------------

TEST(VarintHardening, HugeReadBytesLengthIsCorruptionNotWrap) {
  // Regression: `pos_ + n > size_` wrapped for n near SIZE_MAX, letting a
  // corrupt length pass the bounds check and read out of bounds.
  std::string bytes;
  PutVarint(&bytes, ~uint64_t{0});  // record claims ~2^64 payload bytes
  bytes += "abc";
  VarintReader r(bytes.data(), bytes.size());
  auto n = r.ReadVarint();
  ASSERT_TRUE(n.ok());
  auto payload = r.ReadBytes(static_cast<size_t>(*n));
  ASSERT_FALSE(payload.ok());
  EXPECT_EQ(payload.status().code(), StatusCode::kCorruption);
}

TEST(VarintHardening, NonCanonicalTenthByteRejected) {
  // 9 continuation bytes then a 10th whose high data bits cannot fit in 64
  // bits: previously truncated silently, so two byte strings decoded to
  // the same value.
  std::string bytes(9, '\xFF');
  bytes.push_back('\x02');
  VarintReader r(bytes.data(), bytes.size());
  auto v = r.ReadVarint();
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kCorruption);
}

TEST(VarintHardening, CanonicalMaxValueStillDecodes) {
  std::string bytes;
  PutVarint(&bytes, ~uint64_t{0});
  VarintReader r(bytes.data(), bytes.size());
  auto v = r.ReadVarint();
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(*v, ~uint64_t{0});
  EXPECT_TRUE(r.AtEnd());
}

TEST(VarintHardening, RoundTripIsUniqueDecoding) {
  std::mt19937_64 rng(7);
  for (int i = 0; i < 100000; ++i) {
    uint64_t v = rng() >> (rng() % 64);
    std::string bytes;
    PutVarint(&bytes, v);
    VarintReader r(bytes.data(), bytes.size());
    auto got = r.ReadVarint();
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(*got, v);
    ASSERT_TRUE(r.AtEnd());
  }
}

TEST(DecodeFuzz, RandomVarintStreams) {
  // 100k random byte windows driven through the reader: every outcome must
  // be a value or a clean Corruption, with positions staying in bounds.
  std::mt19937 rng(0xC0FFEE);
  std::string buf(64, '\0');
  for (int iter = 0; iter < 100000; ++iter) {
    for (char& c : buf) c = static_cast<char>(rng());
    size_t len = rng() % (buf.size() + 1);
    VarintReader r(buf.data(), len);
    while (!r.AtEnd()) {
      size_t before = r.position();
      if (rng() % 2 == 0) {
        if (!r.ReadVarint().ok()) break;
        ASSERT_GT(r.position(), before);
      } else {
        size_t n = rng() % 16;
        if (!r.ReadBytes(n).ok()) break;
        ASSERT_EQ(r.position(), before + n);
        if (n == 0) break;  // a zero-length read makes no progress
      }
      ASSERT_LE(r.position(), len);
    }
  }
}

TEST(DecodeFuzz, MutatedPtmlNeverCrashes) {
  // Encode a real program, then hammer the decoder with bit-flipped,
  // truncated and extended copies: any outcome must be a decoded term or a
  // clean error — never a crash or a multi-GB reserve from a corrupt count.
  ir::Module m;
  const ir::Abstraction* abs = test::MustParseProgram(
      &m,
      "(proc (n ce cc)"
      " (Y (proc (/ c0 loop c)"
      "      (c (cont () (loop 1 \"acc\"))"
      "         (cont (i s)"
      "           (> i n"
      "              (cont () (cc s))"
      "              (cont () (+ i 1 ce (cont (t) (loop t s))))))))))");
  ASSERT_NE(abs, nullptr);
  const std::string good = store::EncodePtml(m, abs);
  {
    ir::Module m2;
    ASSERT_TRUE(
        store::DecodePtml(&m2, prims::StandardRegistry(), good).ok());
  }
  std::mt19937 rng(0xBEEF);
  for (int iter = 0; iter < 100000; ++iter) {
    std::string bytes = good;
    switch (rng() % 3) {
      case 0:  // flip 1-4 bytes
        for (unsigned k = 0, n = 1 + rng() % 4; k < n; ++k) {
          bytes[rng() % bytes.size()] =
              static_cast<char>(rng());
        }
        break;
      case 1:  // truncate
        bytes.resize(rng() % bytes.size());
        break;
      default:  // extend with garbage
        for (unsigned k = 0, n = 1 + rng() % 8; k < n; ++k) {
          bytes.push_back(static_cast<char>(rng()));
        }
        break;
    }
    ir::Module scratch;
    auto decoded =
        store::DecodePtml(&scratch, prims::StandardRegistry(), bytes);
    (void)decoded;  // ok or error are both fine; crashing is not
  }
}

TEST(DecodeFuzz, MutatedCodeRecordsNeverCrash) {
  // Same treatment for serialized TVM code records (the other persistent
  // decode path a cache hit relinks through).
  ir::Module m;
  const ir::Abstraction* abs = test::MustParseProgram(
      &m,
      "(proc (x ce cc)"
      " ((lambda (f) (f 3 ce cc))"
      "  (proc (y ce2 cc2) (* y x ce2 cc2))))");
  ASSERT_NE(abs, nullptr);
  vm::CodeUnit unit;
  auto fn = vm::CompileProc(&unit, m, abs, "fuzz");
  ASSERT_TRUE(fn.ok()) << fn.status().ToString();
  const std::string good = vm::SerializeFunction(**fn);
  std::mt19937 rng(0xF00D);
  for (int iter = 0; iter < 100000; ++iter) {
    std::string bytes = good;
    if (rng() % 2 == 0) {
      for (unsigned k = 0, n = 1 + rng() % 4; k < n; ++k) {
        bytes[rng() % bytes.size()] = static_cast<char>(rng());
      }
    } else {
      bytes.resize(rng() % bytes.size());
    }
    vm::CodeUnit scratch;
    auto decoded = vm::DeserializeFunction(&scratch, bytes);
    (void)decoded;
  }
}

TEST(DecodeFuzz, CorruptStoreFilesNeverCrashOnOpen) {
  // Write a real committed store, then flip a byte anywhere in the file:
  // Open must either succeed or fail with a clean error.
  std::string path = ::testing::TempDir() + "/tml_fuzz_corrupt.db";
  std::remove(path.c_str());
  {
    auto s = store::ObjectStore::Open(path);
    ASSERT_TRUE(s.ok());
    for (int i = 0; i < 16; ++i) {
      ASSERT_TRUE(
          (*s)->Allocate(ObjType::kBlob, std::string(i * 7, 'x')).ok());
    }
    ASSERT_OK((*s)->SetRoot("r", 1));
    ASSERT_OK((*s)->Commit());
  }
  std::string original;
  {
    FILE* f = fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    size_t n;
    while ((n = fread(buf, 1, sizeof(buf), f)) > 0) original.append(buf, n);
    fclose(f);
  }
  std::mt19937 rng(0xDB);
  for (int iter = 0; iter < 500; ++iter) {
    std::string corrupt = original;
    corrupt[rng() % corrupt.size()] ^= static_cast<char>(1 + rng() % 255);
    if (rng() % 4 == 0) corrupt.resize(rng() % corrupt.size());
    FILE* f = fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    fwrite(corrupt.data(), 1, corrupt.size(), f);
    fclose(f);
    auto s = store::ObjectStore::Open(path);
    (void)s;  // ok or error; never a crash
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tml
