// Model-based randomized testing of the object store: a long random
// sequence of allocate/put/delete/root/commit/reopen operations must keep
// the store consistent with a trivial in-memory model, across restarts.

#include <cstdio>
#include <map>
#include <random>
#include <string>

#include <gtest/gtest.h>

#include "store/object_store.h"
#include "tests/test_util.h"

namespace tml {
namespace {

using store::ObjectStore;
using store::ObjType;

struct ModelEntry {
  ObjType type;
  std::string bytes;
};

class StoreFuzz : public ::testing::TestWithParam<uint32_t> {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/tml_fuzz_" +
            std::to_string(GetParam()) + ".db";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_P(StoreFuzz, RandomOpsMatchModel) {
  std::mt19937 rng(GetParam());
  auto rnd_bytes = [&](size_t max) {
    std::string s(rng() % max, '\0');
    for (char& c : s) c = static_cast<char>('a' + rng() % 26);
    return s;
  };

  std::map<Oid, ModelEntry> committed;  // model of durable state
  std::map<Oid, ModelEntry> live;       // model of in-process state
  std::map<std::string, Oid> roots_committed, roots_live;

  auto opened = ObjectStore::Open(path_);
  ASSERT_TRUE(opened.ok());
  std::unique_ptr<ObjectStore> s = std::move(*opened);

  for (int step = 0; step < 400; ++step) {
    int op = static_cast<int>(rng() % 100);
    if (op < 40) {  // allocate
      ObjType t = static_cast<ObjType>(rng() % 6);
      std::string bytes = rnd_bytes(64);
      auto oid = s->Allocate(t, bytes);
      ASSERT_TRUE(oid.ok());
      ASSERT_EQ(live.count(*oid), 0u) << "OID reuse";
      live[*oid] = {t, bytes};
    } else if (op < 60 && !live.empty()) {  // put (overwrite)
      auto it = live.begin();
      std::advance(it, rng() % live.size());
      std::string bytes = rnd_bytes(64);
      ASSERT_OK(s->Put(it->first, ObjType::kBlob, bytes));
      it->second = {ObjType::kBlob, bytes};
    } else if (op < 72 && !live.empty()) {  // delete
      auto it = live.begin();
      std::advance(it, rng() % live.size());
      ASSERT_OK(s->Delete(it->first));
      live.erase(it);
    } else if (op < 80 && !live.empty()) {  // set a root
      auto it = live.begin();
      std::advance(it, rng() % live.size());
      std::string name = "r" + std::to_string(rng() % 4);
      ASSERT_OK(s->SetRoot(name, it->first));
      roots_live[name] = it->first;
    } else if (op < 90) {  // commit
      ASSERT_OK(s->Commit());
      committed = live;
      roots_committed = roots_live;
    } else if (op < 96) {  // reopen: uncommitted work disappears
      s.reset();
      auto reopened = ObjectStore::Open(path_);
      ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
      s = std::move(*reopened);
      live = committed;
      roots_live = roots_committed;
    } else {  // compact (implies durability)
      ASSERT_OK(s->Commit());
      committed = live;
      roots_committed = roots_live;
      ASSERT_OK(s->Compact());
    }

    // Invariant: the store agrees with the live model.
    ASSERT_EQ(s->num_objects(), live.size()) << "step " << step;
    if (!live.empty()) {
      auto it = live.begin();
      std::advance(it, rng() % live.size());
      auto got = s->Get(it->first);
      ASSERT_TRUE(got.ok()) << "step " << step;
      EXPECT_EQ(got->bytes, it->second.bytes) << "step " << step;
      EXPECT_EQ(got->type, it->second.type) << "step " << step;
    }
    for (const auto& [name, oid] : roots_live) {
      // Deleted targets may leave dangling roots — only the mapping is
      // checked.
      auto got = s->GetRoot(name);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(*got, oid);
    }
  }

  // Final durability check.
  ASSERT_OK(s->Commit());
  committed = live;
  s.reset();
  auto reopened = ObjectStore::Open(path_);
  ASSERT_TRUE(reopened.ok());
  s = std::move(*reopened);
  ASSERT_EQ(s->num_objects(), committed.size());
  for (const auto& [oid, entry] : committed) {
    auto got = s->Get(oid);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->bytes, entry.bytes);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreFuzz,
                         ::testing::Values(1u, 7u, 42u, 1337u, 99991u));

}  // namespace
}  // namespace tml
