// Reflect-cache index records: round trips, deterministic encoding, and
// corruption handling of the decode path.

#include <gtest/gtest.h>

#include "store/reflect_cache.h"
#include "support/varint.h"

namespace tml {
namespace {

using store::DecodeReflectCache;
using store::EncodeReflectCache;
using store::ReflectCacheEntry;

TEST(ReflectCacheRecord, RoundTrip) {
  std::vector<ReflectCacheEntry> entries = {
      {0xDEADBEEFCAFEull, 12, 11, 10},
      {0x1ull, 42, 41, 0},
      {0xFFFFFFFFFFFFFFFFull, 7, 6, 5},
  };
  std::string bytes = EncodeReflectCache(entries);
  auto decoded = DecodeReflectCache(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->size(), 3u);
  // Encoding sorts by fingerprint, so the decode order is canonical.
  EXPECT_EQ((*decoded)[0], entries[1]);
  EXPECT_EQ((*decoded)[1], entries[0]);
  EXPECT_EQ((*decoded)[2], entries[2]);
}

TEST(ReflectCacheRecord, EmptyIndex) {
  std::string bytes = EncodeReflectCache({});
  auto decoded = DecodeReflectCache(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(ReflectCacheRecord, EncodingIsDeterministic) {
  std::vector<ReflectCacheEntry> a = {{2, 20, 21, 22}, {1, 10, 11, 12}};
  std::vector<ReflectCacheEntry> b = {{1, 10, 11, 12}, {2, 20, 21, 22}};
  EXPECT_EQ(EncodeReflectCache(a), EncodeReflectCache(b));
}

TEST(ReflectCacheRecord, RejectsBadMagic) {
  std::string bytes = EncodeReflectCache({{1, 2, 3, 4}});
  bytes[0] = 'X';
  auto decoded = DecodeReflectCache(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

TEST(ReflectCacheRecord, RejectsTruncation) {
  std::string bytes = EncodeReflectCache({{1, 2, 3, 4}, {5, 6, 7, 8}});
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    auto decoded = DecodeReflectCache(bytes.substr(0, cut));
    EXPECT_FALSE(decoded.ok()) << "cut at " << cut;
  }
}

TEST(ReflectCacheRecord, RejectsTrailingBytes) {
  std::string bytes = EncodeReflectCache({{1, 2, 3, 4}});
  bytes.push_back('\0');
  EXPECT_FALSE(DecodeReflectCache(bytes).ok());
}

TEST(ReflectCacheRecord, HugeCountDoesNotAllocate) {
  // A tiny record claiming 2^60 entries must be rejected by the bound on
  // remaining input, not attempted as a 2^60-element reserve.
  std::string bytes = "RC1";
  PutVarint(&bytes, uint64_t{1} << 60);
  auto decoded = DecodeReflectCache(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace tml
