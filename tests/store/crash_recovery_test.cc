// Crash-recovery sweep: run a mixed Allocate/Put/Delete/SetRoot/Commit/
// Compact workload against the FaultVfs, crash it at EVERY syscall
// boundary (sticky faults + power loss with seeded torn writes and
// shadow-page survival), reopen in salvage mode, and assert the crash
// contract:
//
//   * the store always opens,
//   * everything acknowledged by the last successful Commit/Compact is
//     readable, byte for byte,
//   * nothing unacknowledged is visible — except that a commit in flight
//     at the crash may land atomically as a whole,
//   * the reopened store accepts writes again.

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "store/object_store.h"
#include "support/fault_vfs.h"
#include "tests/test_util.h"

namespace tml {
namespace {

using store::ObjectStore;
using store::ObjType;
using store::OpenOptions;
using store::RecoveryPolicy;

constexpr const char* kPath = "crash.db";

/// What a correct store must remember: typed payloads by OID plus roots.
struct Model {
  std::map<Oid, std::pair<ObjType, std::string>> objects;
  std::map<std::string, Oid> roots;

  bool operator==(const Model& o) const {
    return objects == o.objects && roots == o.roots;
  }
};

/// Applies the scripted workload, mirroring every acknowledged effect into
/// `pending`, snapshotting `pending` into `acked` on every successful
/// Commit/Compact, and recording the in-flight state of the one
/// commit-class call the first injected fault interrupted.
struct Workload {
  ObjectStore* s;
  FaultVfs* vfs;
  Model pending;
  Model acked;
  Model inflight;
  bool have_inflight = false;

  void Put(Oid oid, ObjType type, std::string bytes) {
    if (s->Put(oid, type, bytes).ok()) {
      pending.objects[oid] = {type, std::move(bytes)};
    }
  }
  void Alloc(ObjType type, std::string bytes) {
    auto oid = s->Allocate(type, bytes);
    if (oid.ok()) pending.objects[*oid] = {type, std::move(bytes)};
  }
  void Delete(Oid oid) {
    if (s->Delete(oid).ok()) pending.objects.erase(oid);
  }
  void Root(const std::string& name, Oid oid) {
    if (s->SetRoot(name, oid).ok()) pending.roots[name] = oid;
  }
  void CommitClass(Status (ObjectStore::*op)()) {
    uint64_t faults_before = vfs->faults_injected();
    Status st = (s->*op)();
    if (st.ok()) {
      acked = pending;
    } else if (!have_inflight && vfs->faults_injected() > faults_before &&
               faults_before == 0) {
      // The first fault of the run hit inside this call: its whole batch
      // may or may not have made it to disk atomically.
      inflight = pending;
      have_inflight = true;
    }
  }

  void Run() {
    Put(1, ObjType::kBlob, std::string(700, 'a'));  // crosses a 512B page
    Put(2, ObjType::kPtml, "ptml-bytes-v1");
    Root("main", 1);
    CommitClass(&ObjectStore::Commit);
    Alloc(ObjType::kCode, std::string(300, 'c'));
    Put(2, ObjType::kPtml, "ptml-bytes-v2");  // supersede
    Put(4, ObjType::kClosure, std::string(60, 'k'));
    CommitClass(&ObjectStore::Commit);
    Delete(1);
    Root("main", 2);
    Alloc(ObjType::kBlob, std::string(900, 'd'));
    CommitClass(&ObjectStore::Compact);
    Put(6, ObjType::kProfile, std::string(120, 'p'));
    Root("aux", 6);
    CommitClass(&ObjectStore::Commit);
  }
};

::testing::AssertionResult StoreMatches(ObjectStore* s, const Model& m) {
  if (s->num_objects() != m.objects.size()) {
    return ::testing::AssertionFailure()
           << "object count " << s->num_objects() << " != "
           << m.objects.size();
  }
  for (const auto& [oid, obj] : m.objects) {
    auto got = s->Get(oid);
    if (!got.ok()) {
      return ::testing::AssertionFailure()
             << "missing oid " << oid << ": " << got.status().ToString();
    }
    if (got->type != obj.first || got->bytes != obj.second) {
      return ::testing::AssertionFailure() << "oid " << oid << " mismatch";
    }
  }
  if (s->RootNames().size() != m.roots.size()) {
    return ::testing::AssertionFailure()
           << "root count " << s->RootNames().size() << " != "
           << m.roots.size();
  }
  for (const auto& [name, oid] : m.roots) {
    auto got = s->GetRoot(name);
    if (!got.ok() || *got != oid) {
      return ::testing::AssertionFailure() << "root " << name << " mismatch";
    }
  }
  return ::testing::AssertionSuccess();
}

OpenOptions SalvageWith(FaultVfs* vfs) {
  OpenOptions o;
  o.vfs = vfs;
  o.recovery = RecoveryPolicy::kSalvage;
  return o;
}

TEST(CrashRecoverySweep, EverySyscallBoundary) {
  // Dry run: count the syscalls one clean workload issues.
  uint64_t total_ops = 0;
  {
    FaultVfs vfs;
    auto s = ObjectStore::Open(kPath, SalvageWith(&vfs));
    ASSERT_TRUE(s.ok()) << s.status().ToString();
    Workload w;
    w.vfs = &vfs;
    w.s = s->get();
    w.Run();
    ASSERT_EQ(vfs.faults_injected(), 0u);
    ASSERT_TRUE(StoreMatches(s->get(), w.acked));
    total_ops = vfs.ops();
    ASSERT_GT(total_ops, 20u) << "workload too small to be a sweep";
  }

  for (uint64_t seed : {0ull, 11ull, 42ull}) {
    for (uint64_t boundary = 0; boundary <= total_ops; ++boundary) {
      SCOPED_TRACE("seed " + std::to_string(seed) + ", crash after op " +
                   std::to_string(boundary));
      FaultVfs::Options vopts;
      vopts.seed = seed;
      vopts.fail_after_ops = boundary;
      FaultVfs vfs(vopts);

      Workload w;
      w.vfs = &vfs;
      {
        auto s = ObjectStore::Open(kPath, SalvageWith(&vfs));
        if (s.ok()) {
          w.s = s->get();
          w.Run();
        }
        // else: the crash window opened before the store finished
        // creating itself; nothing was ever acknowledged.
      }

      // Power cut: un-synced pages and directory ops survive by seeded
      // coin flip; then the "reboot" reopens through the same Vfs.
      vfs.LosePower();
      vfs.ClearFaults();
      auto r = ObjectStore::Open(kPath, SalvageWith(&vfs));
      ASSERT_TRUE(r.ok()) << "store must ALWAYS reopen: "
                          << r.status().ToString();

      ::testing::AssertionResult vs_acked = StoreMatches(r->get(), w.acked);
      ::testing::AssertionResult vs_inflight =
          w.have_inflight ? StoreMatches(r->get(), w.inflight)
                          : ::testing::AssertionFailure()
                                << "no commit was in flight";
      EXPECT_TRUE(vs_acked || vs_inflight)
          << "visible state is neither the last acknowledged commit nor "
             "the one in-flight commit.\n  vs acked: "
          << vs_acked.message() << "\n  vs inflight: "
          << vs_inflight.message();

      // The recovered store accepts new writes and commits them.
      auto fresh = (*r)->Allocate(ObjType::kBlob, "post-crash");
      ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
      ASSERT_OK((*r)->Commit());
      EXPECT_EQ((*r)->Get(*fresh)->bytes, "post-crash");
    }
  }
}

TEST(CrashRecoverySweep, RepeatedCrashesConverge) {
  // Crash the same store several times in a row (different boundaries,
  // same file), reopening with salvage each time: data committed before
  // each crash must be carried forward through every generation of damage.
  FaultVfs::Options vopts;
  vopts.seed = 3;
  FaultVfs vfs(vopts);
  for (int round = 0; round < 6; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    auto s = ObjectStore::Open(kPath, SalvageWith(&vfs));
    ASSERT_TRUE(s.ok()) << s.status().ToString();
    for (int j = 0; j < round; ++j) {
      auto got = (*s)->Get(100 + j);
      ASSERT_TRUE(got.ok()) << "round " << j << " commit lost: "
                            << got.status().ToString();
      EXPECT_EQ(got->bytes, "round-" + std::to_string(j));
    }

    // One cleanly committed write per round, then a crash mid-workload.
    std::string payload = "round-" + std::to_string(round);
    ASSERT_OK((*s)->Put(100 + round, ObjType::kBlob, payload));
    ASSERT_OK((*s)->Commit());

    vfs.SetFailAfterOps(static_cast<uint64_t>(round));  // vary the boundary
    (void)(*s)->Put(200 + round, ObjType::kBlob, std::string(600, 'x'));
    (void)(*s)->Commit();
    vfs.LosePower();
    vfs.ClearFaults();
  }
  auto s = ObjectStore::Open(kPath, SalvageWith(&vfs));
  ASSERT_TRUE(s.ok());
  for (int round = 0; round < 6; ++round) {
    EXPECT_EQ((*s)->Get(100 + round)->bytes,
              "round-" + std::to_string(round));
  }
}

}  // namespace
}  // namespace tml
