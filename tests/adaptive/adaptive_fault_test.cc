// Adaptive subsystem under storage faults: corrupt or retyped kProfile
// records cold-start instead of failing, transient IO errors on profile
// persistence are retried, and a dead (poisoned) store parks the worker
// after bounded exponential backoff while the database keeps serving.

#include <chrono>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "adaptive/manager.h"
#include "adaptive/profile.h"
#include "support/fault_vfs.h"
#include "telemetry/metrics.h"
#include "tests/test_util.h"

namespace tml {
namespace {

using adaptive::AdaptiveManager;
using adaptive::AdaptiveOptions;
using rt::Universe;
using store::ObjectStore;
using store::ObjType;
using vm::Value;

constexpr const char* kPath = "adaptive.db";
constexpr const char* kComplexSrc =
    "fun make(x, y) = array(x, y) end\n"
    "fun getx(c) = c[0] end\n"
    "fun gety(c) = c[1] end";
constexpr const char* kAppSrc =
    "fun cabs(c) ="
    "  sqrt(real(getx(c) * getx(c) + gety(c) * gety(c))) "
    "end";

store::OpenOptions Salvage(FaultVfs* vfs) {
  store::OpenOptions o;
  o.vfs = vfs;
  o.recovery = store::RecoveryPolicy::kSalvage;
  return o;
}

AdaptiveOptions TestOptions() {
  AdaptiveOptions opts;
  opts.policy.hot_steps = 200;
  opts.policy.min_calls = 2;
  opts.policy.decay = 1.0;
  opts.persist_profile = true;
  return opts;
}

Status InstallComplexApp(Universe* u) {
  TML_RETURN_NOT_OK(
      u->InstallSource("complex", kComplexSrc, fe::BindingMode::kLibrary));
  return u->InstallSource("app", kAppSrc, fe::BindingMode::kLibrary);
}

void DriveCalls(Universe* u, Oid cabs, int n) {
  Value margs[] = {Value::Int(3), Value::Int(4)};
  auto c = u->Call(*u->Lookup("complex", "make"), margs);
  ASSERT_TRUE(c.ok());
  Value cargs[] = {c->value};
  for (int i = 0; i < n; ++i) {
    auto v = u->Call(cabs, cargs);
    ASSERT_TRUE(v.ok());
    ASSERT_EQ(v->value.r, 5.0);
  }
}

TEST(AdaptiveFaults, RetypedProfileRecordColdStarts) {
  auto s = ObjectStore::Open("");
  ASSERT_TRUE(s.ok());
  Universe u(s->get());
  // A record exists under the profile root but with the wrong type tag.
  auto oid = u.PutRootRecord(adaptive::kProfileRoot, ObjType::kBlob,
                             "not a profile");
  ASSERT_TRUE(oid.ok());
  telemetry::Counter* resets = telemetry::Registry::Global().GetCounter(
      "tml.adaptive.profile_corrupt_resets");
  uint64_t before = resets->value();
  AdaptiveManager m(&u, TestOptions());
  ASSERT_OK(m.LoadPersistedProfile());
  EXPECT_EQ(resets->value(), before + 1);
  EXPECT_TRUE(m.ProfileSnapshot().entries().empty());
}

TEST(AdaptiveFaults, UndecodableProfileRecordColdStarts) {
  auto s = ObjectStore::Open("");
  ASSERT_TRUE(s.ok());
  Universe u(s->get());
  // Right type, garbage payload: Decode must fail, the manager must not.
  auto oid = u.PutRootRecord(adaptive::kProfileRoot, ObjType::kProfile,
                             std::string(13, '\xFF'));
  ASSERT_TRUE(oid.ok());
  telemetry::Counter* resets = telemetry::Registry::Global().GetCounter(
      "tml.adaptive.profile_corrupt_resets");
  uint64_t before = resets->value();
  AdaptiveManager m(&u, TestOptions());
  ASSERT_OK(m.LoadPersistedProfile());
  EXPECT_EQ(resets->value(), before + 1);
  EXPECT_TRUE(m.ProfileSnapshot().entries().empty());
}

TEST(AdaptiveFaults, TransientEnospcOnPersistRetriesClean) {
  FaultVfs::Options vopts;
  vopts.sticky = false;
  vopts.fault_errno = 28;  // ENOSPC
  FaultVfs vfs(vopts);
  auto s = ObjectStore::Open(kPath, Salvage(&vfs));
  ASSERT_TRUE(s.ok());
  Universe u(s->get());
  ASSERT_OK(InstallComplexApp(&u));
  Oid cabs = *u.Lookup("app", "cabs");
  // Keep the promotion policy quiet (nothing gets hot enough) so the
  // profile persist is the ONLY write the poll issues — otherwise the
  // single transient fault gets absorbed by ReflectOptimize, which is
  // non-fatal by design.
  AdaptiveOptions opts = TestOptions();
  opts.policy.hot_steps = 1u << 30;
  opts.policy.min_calls = 1u << 30;
  AdaptiveManager m(&u, opts);

  DriveCalls(&u, cabs, 20);
  vfs.SetFailAfterOps(0);  // the profile-record pwrite hits a full disk
  Status st = m.PollOnce();
  EXPECT_FALSE(st.ok()) << "the failed persist must surface";
  EXPECT_EQ(st.code(), StatusCode::kIOError);

  // The disk recovered (non-sticky): the next poll persists the still-
  // dirty profile and the heat survives a restart.
  ASSERT_OK(m.PollOnce());
  auto rec = u.GetRootRecord(adaptive::kProfileRoot);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->type, ObjType::kProfile);
  auto decoded = adaptive::HotnessProfile::Decode(rec->bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded->entries().empty());
}

TEST(AdaptiveFaults, PoisonedStoreParksWorkerProcessKeepsServing) {
  FaultVfs vfs;
  auto s = ObjectStore::Open(kPath, Salvage(&vfs));
  ASSERT_TRUE(s.ok());
  Universe u(s->get());
  ASSERT_OK(InstallComplexApp(&u));
  Oid cabs = *u.Lookup("app", "cabs");
  ASSERT_OK((*s)->Commit());

  AdaptiveOptions opts = TestOptions();
  opts.poll_interval = std::chrono::milliseconds(1);
  opts.max_poll_backoff = std::chrono::milliseconds(8);
  opts.park_after_failures = 3;
  AdaptiveManager m(&u, opts);

  telemetry::Counter* parks =
      telemetry::Registry::Global().GetCounter("tml.adaptive.parks");
  telemetry::Counter* retries =
      telemetry::Registry::Global().GetCounter("tml.adaptive.io_retries");
  uint64_t parks_before = parks->value();
  uint64_t retries_before = retries->value();

  // Kill the disk: every further syscall fails, so every profile persist
  // attempt errors out and the worker has nothing left to do but park.
  DriveCalls(&u, cabs, 50);
  vfs.SetFailAfterOps(0);
  m.Start();
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!m.parked() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(m.parked()) << "worker must park, not spin";
  m.Stop();
  EXPECT_EQ(parks->value(), parks_before + 1);
  EXPECT_GE(retries->value(), retries_before + opts.park_after_failures);

  // The database is degraded, not down: calls still answer.
  vfs.ClearFaults();
  DriveCalls(&u, cabs, 10);

  // Start() after Stop() re-arms a parked worker.
  m.Start();
  EXPECT_FALSE(m.parked());
  m.Stop();
}

// Satellite regression: a parked worker used to be stuck forever — nothing
// ever cleared parked_, and Start() without a Stop() refused to re-arm the
// still-joinable exited thread.  Now a successful explicit PollOnce (the
// "store recovered" signal) un-parks and relaunches the background worker.
TEST(AdaptiveFaults, SuccessfulPollUnparksRecoveredWorker) {
  // Sticky *write* faults, not a poisoned store: PersistProfile fails at
  // the record Put and returns before CommitStore, so no fsync ever runs
  // while the disk is down and the store never poisons.  That is exactly
  // the recoverable-in-process scenario Unpark exists for.
  FaultVfs::Options vopts;
  vopts.sticky = true;
  vopts.fault_errno = 28;  // ENOSPC
  FaultVfs vfs(vopts);
  auto s = ObjectStore::Open(kPath, Salvage(&vfs));
  ASSERT_TRUE(s.ok());
  Universe u(s->get());
  ASSERT_OK(InstallComplexApp(&u));
  Oid cabs = *u.Lookup("app", "cabs");
  ASSERT_OK((*s)->Commit());

  AdaptiveOptions opts = TestOptions();
  opts.poll_interval = std::chrono::milliseconds(1);
  opts.max_poll_backoff = std::chrono::milliseconds(8);
  opts.park_after_failures = 3;
  // Keep the promotion policy quiet so the profile persist is the only
  // write each poll issues (promotion work absorbs faults non-fatally).
  opts.policy.hot_steps = 1u << 30;
  opts.policy.min_calls = 1u << 30;
  AdaptiveManager m(&u, opts);

  DriveCalls(&u, cabs, 50);
  vfs.SetFailAfterOps(0);
  m.Start();
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!m.parked() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_TRUE(m.parked()) << "worker must park on a persistently bad disk";

  // The disk recovers.  Nothing un-parks by itself...
  vfs.ClearFaults();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(m.parked()) << "recovery alone must not silently resume";

  // ...but a successful explicit poll proves the store answers and
  // re-arms the background worker.
  DriveCalls(&u, cabs, 10);
  ASSERT_OK(m.PollOnce());
  EXPECT_FALSE(m.parked()) << "a good poll must un-park the worker";

  // The revived worker really polls again on its own.
  uint64_t polls_before = u.adaptive_counters().polls;
  deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (u.adaptive_counters().polls <= polls_before &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GT(u.adaptive_counters().polls, polls_before)
      << "the background thread must be live again";
  m.Stop();

  // And the heat finally reached the disk.
  auto rec = u.GetRootRecord(adaptive::kProfileRoot);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->type, ObjType::kProfile);
}

}  // namespace
}  // namespace tml
