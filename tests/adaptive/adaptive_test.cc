// The adaptive optimization subsystem end to end: hotness accounting,
// policy decisions (promotion, backoff, rest), the atomic swap through the
// manager, persistence of the profile across restarts, and the
// background-worker thread against a running mutator.

#include <chrono>
#include <cstdio>
#include <thread>

#include <gtest/gtest.h>

#include "adaptive/manager.h"
#include "adaptive/policy.h"
#include "adaptive/profile.h"
#include "tests/test_util.h"

namespace tml {
namespace {

using adaptive::AdaptiveManager;
using adaptive::AdaptiveOptions;
using adaptive::HotnessProfile;
using adaptive::ProfileEntry;
using rt::Universe;
using vm::Value;

constexpr const char* kComplexSrc =
    "fun make(x, y) = array(x, y) end\n"
    "fun getx(c) = c[0] end\n"
    "fun gety(c) = c[1] end";
constexpr const char* kAppSrc =
    "fun cabs(c) ="
    "  sqrt(real(getx(c) * getx(c) + gety(c) * gety(c))) "
    "end";

std::unique_ptr<store::ObjectStore> MemStore() {
  auto s = store::ObjectStore::Open("");
  EXPECT_TRUE(s.ok());
  return std::move(*s);
}

/// A policy that triggers quickly and deterministically in tests: no decay,
/// low thresholds.
AdaptiveOptions TestOptions() {
  AdaptiveOptions opts;
  opts.policy.hot_steps = 200;
  opts.policy.min_calls = 2;
  opts.policy.decay = 1.0;
  opts.policy.max_attempts = 3;
  opts.persist_profile = false;
  return opts;
}

Status InstallComplexApp(Universe* u, bool attach_ptml = true) {
  rt::InstallOptions io;
  io.attach_ptml = attach_ptml;
  TML_RETURN_NOT_OK(u->InstallSource("complex", kComplexSrc,
                                     fe::BindingMode::kLibrary, io));
  return u->InstallSource("app", kAppSrc, fe::BindingMode::kLibrary, io);
}

uint64_t CallCabs(Universe* u, Oid cabs, int times) {
  Value margs[] = {Value::Int(3), Value::Int(4)};
  auto c = u->Call(*u->Lookup("complex", "make"), margs);
  EXPECT_TRUE(c.ok());
  Value cargs[] = {c->value};
  uint64_t last_steps = 0;
  for (int i = 0; i < times; ++i) {
    auto r = u->Call(cabs, cargs);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->value.r, 5.0);
    last_steps = r->steps;
  }
  return last_steps;
}

TEST(HotnessProfileCodec, RoundTripAndCorruptRejection) {
  HotnessProfile p;
  ProfileEntry* a = p.Entry(7);
  a->calls = 100;
  a->steps = 123456;
  a->attempts = 2;
  a->code_oid = 9;
  a->promoted_code_oid = 11;
  p.Accumulate(42, 5, 500);

  std::string bytes = p.Encode();
  auto decoded = HotnessProfile::Decode(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->size(), 2u);
  const ProfileEntry* da = decoded->Find(7);
  ASSERT_NE(da, nullptr);
  EXPECT_EQ(da->calls, 100u);
  EXPECT_EQ(da->steps, 123456u);
  EXPECT_EQ(da->attempts, 2u);
  EXPECT_EQ(da->code_oid, 9u);
  EXPECT_EQ(da->promoted_code_oid, 11u);
  EXPECT_NE(decoded->Find(42), nullptr);

  // Deterministic bytes for a given state.
  EXPECT_EQ(decoded->Encode(), bytes);

  // Corruption is rejected, not crashed on.
  EXPECT_FALSE(HotnessProfile::Decode("XX1").ok());
  EXPECT_FALSE(HotnessProfile::Decode(bytes.substr(0, bytes.size() - 1)).ok());
  std::string huge = "HP1";
  huge.push_back(static_cast<char>(0xff));
  huge.push_back(static_cast<char>(0x7f));  // claims ~16k entries, no payload
  EXPECT_FALSE(HotnessProfile::Decode(huge).ok());
}

TEST(HotnessProfileCodec, DecayAgesAndReaps) {
  HotnessProfile p;
  p.Accumulate(1, 10, 1000);
  ProfileEntry* promoted = p.Entry(2);
  promoted->promoted_code_oid = 5;  // history: survives cooling
  p.Accumulate(3, 1, 1);            // no history: reaped at zero heat

  p.Decay(0.5);
  EXPECT_EQ(p.Find(1)->steps, 500u);
  p.Decay(0.0);
  EXPECT_EQ(p.Find(1), nullptr) << "cold entry without history is dropped";
  EXPECT_NE(p.Find(2), nullptr) << "promotion history is retained";
  EXPECT_EQ(p.Find(3), nullptr);
}

TEST(Adaptive, PollPromotesHotClosureAutomatically) {
  auto s = MemStore();
  Universe u(s.get());
  ASSERT_OK(InstallComplexApp(&u));
  Oid cabs = *u.Lookup("app", "cabs");
  AdaptiveManager mgr(&u, TestOptions());

  uint64_t before = CallCabs(&u, cabs, 20);
  ASSERT_OK(mgr.PollOnce());

  rt::AdaptiveCounters c = u.adaptive_counters();
  EXPECT_EQ(c.polls, 1u);
  EXPECT_GE(c.promotions, 1u) << "hot closure must be promoted";
  EXPECT_EQ(c.stale_rejections, 0u);

  uint64_t after = CallCabs(&u, cabs, 1);
  EXPECT_LT(after, before)
      << "the same OID must now run reflect-optimized code";

  HotnessProfile prof = mgr.ProfileSnapshot();
  const ProfileEntry* e = prof.Find(cabs);
  ASSERT_NE(e, nullptr);
  EXPECT_NE(e->promoted_code_oid, kNullOid);
  EXPECT_EQ(e->code_oid, e->promoted_code_oid);

  // Further polls let the promoted closure rest: no re-optimization churn.
  ASSERT_OK(mgr.PollOnce());
  EXPECT_EQ(u.adaptive_counters().promotions, c.promotions);
}

TEST(Adaptive, ColdClosureIsLeftAlone) {
  auto s = MemStore();
  Universe u(s.get());
  ASSERT_OK(InstallComplexApp(&u));
  Oid cabs = *u.Lookup("app", "cabs");
  AdaptiveOptions opts = TestOptions();
  opts.policy.hot_steps = 1'000'000;  // unreachably high
  AdaptiveManager mgr(&u, opts);

  CallCabs(&u, cabs, 20);
  ASSERT_OK(mgr.PollOnce());
  rt::AdaptiveCounters c = u.adaptive_counters();
  EXPECT_EQ(c.promotions, 0u);
  EXPECT_EQ(c.backoffs, 0u);

  // The heat was still recorded — it just sits below the threshold.
  HotnessProfile prof = mgr.ProfileSnapshot();
  const ProfileEntry* e = prof.Find(cabs);
  ASSERT_NE(e, nullptr);
  EXPECT_GT(e->steps, 0u);
}

TEST(Adaptive, FailingOptimizationBacksOffAfterPenaltyCap) {
  auto s = MemStore();
  Universe u(s.get());
  // Without PTML records reflect.optimize cannot rebuild the term: every
  // promotion attempt fails, and the §3 penalty counter must stop the
  // loop from retrying forever.
  ASSERT_OK(InstallComplexApp(&u, /*attach_ptml=*/false));
  Oid cabs = *u.Lookup("app", "cabs");
  AdaptiveOptions opts = TestOptions();
  AdaptiveManager mgr(&u, opts);

  CallCabs(&u, cabs, 20);
  for (int i = 0; i < 8; ++i) ASSERT_OK(mgr.PollOnce());

  rt::AdaptiveCounters c = u.adaptive_counters();
  EXPECT_EQ(c.promotions, 0u);
  EXPECT_GE(c.reflect_failures, opts.policy.max_attempts);
  EXPECT_GE(c.backoffs, 1u) << "exhausted candidates count as backoffs";
  HotnessProfile prof = mgr.ProfileSnapshot();
  EXPECT_EQ(prof.Find(cabs)->attempts, opts.policy.max_attempts);

  // The loop has terminated: more polls spend no further optimizer time
  // on any candidate (cabs and its hot callees are all at the cap).
  for (int i = 0; i < 2; ++i) ASSERT_OK(mgr.PollOnce());
  EXPECT_EQ(u.adaptive_counters().reflect_failures, c.reflect_failures)
      << "exhausted closures must not be retried";
}

TEST(Adaptive, ProfileAndPromotionSurviveRestart) {
  std::string path = ::testing::TempDir() + "/tml_adaptive_restart.db";
  std::remove(path.c_str());
  Oid cabs = kNullOid;
  uint64_t optimized_steps = 0;
  {
    auto s = store::ObjectStore::Open(path);
    ASSERT_TRUE(s.ok());
    Universe u(s->get());
    ASSERT_OK(InstallComplexApp(&u));
    cabs = *u.Lookup("app", "cabs");
    AdaptiveOptions opts = TestOptions();
    opts.persist_profile = true;
    AdaptiveManager mgr(&u, opts);
    CallCabs(&u, cabs, 20);
    ASSERT_OK(mgr.PollOnce());
    ASSERT_GE(u.adaptive_counters().promotions, 1u);
    EXPECT_GE(u.adaptive_counters().profile_persists, 1u);
    EXPECT_GT((*s)->live_bytes(store::ObjType::kProfile), 0u);
    optimized_steps = CallCabs(&u, cabs, 1);
    ASSERT_OK((*s)->Commit());
  }
  // Restart: the swap is durable (the closure record itself was
  // rewritten), and the profile comes back with its heat and history.
  auto s = store::ObjectStore::Open(path);
  ASSERT_TRUE(s.ok());
  Universe u(s->get());
  ASSERT_OK(u.LoadPersistedModules());
  AdaptiveManager mgr(&u, TestOptions());
  ASSERT_OK(mgr.LoadPersistedProfile());
  HotnessProfile prof = mgr.ProfileSnapshot();
  const ProfileEntry* e = prof.Find(cabs);
  ASSERT_NE(e, nullptr);
  EXPECT_GT(e->steps, 0u);
  EXPECT_NE(e->promoted_code_oid, kNullOid);

  EXPECT_EQ(CallCabs(&u, cabs, 1), optimized_steps)
      << "reopened database starts at the optimized steady state";
  std::remove(path.c_str());
}

TEST(Adaptive, BackgroundWorkerPromotesWhileMutatorRuns) {
  auto s = MemStore();
  Universe u(s.get());
  ASSERT_OK(InstallComplexApp(&u));
  Oid cabs = *u.Lookup("app", "cabs");

  AdaptiveOptions opts = TestOptions();
  opts.poll_interval = std::chrono::milliseconds(2);
  AdaptiveManager* mgr = adaptive::EnableAdaptive(&u, opts);
  ASSERT_NE(mgr, nullptr);

  // Mutator loop on this thread; the worker profiles, optimizes and swaps
  // concurrently.  Every call must keep returning the right answer.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (u.adaptive_counters().promotions == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    CallCabs(&u, cabs, 5);
  }
  EXPECT_GE(u.adaptive_counters().promotions, 1u)
      << "background worker never promoted the hot closure";
  uint64_t after = CallCabs(&u, cabs, 1);
  EXPECT_GT(after, 0u);
  // ~Universe stops the adopted worker before tearing down the VM.
}

}  // namespace
}  // namespace tml
