// The sampling VM profiler (adaptive/sampler.h): idle attribution, hot-
// function attribution against a running mutator, tier classification of
// reflect-optimized code, report JSON shape, and the Universe profile-
// provider wiring behind PROFILE / reflect.profile.  Suite name carries
// "Profile" so tools/check.sh --tsan races the sampler against the VM.

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "adaptive/sampler.h"
#include "core/parser.h"
#include "tests/test_util.h"
#include "vm/codegen.h"

namespace tml {
namespace {

using adaptive::EnableSampler;
using adaptive::SamplerOptions;
using adaptive::VmSampler;
using rt::Universe;
using vm::Value;

constexpr const char* kSpinSrc =
    "fun spin(n) = if n <= 0 then 0 else spin(n - 1) end end";

std::unique_ptr<store::ObjectStore> MemStore() {
  auto s = store::ObjectStore::Open("");
  EXPECT_TRUE(s.ok());
  return std::move(*s);
}

/// Drives `oid` with spin(depth) calls until told to stop.
class Spinner {
 public:
  Spinner(Universe* u, Oid oid, int depth) : u_(u), oid_(oid), depth_(depth) {
    worker_ = std::thread([this] {
      Value args[] = {Value::Int(depth_)};
      while (!stop_.load(std::memory_order_relaxed)) {
        auto r = u_->Call(oid_, args);
        ASSERT_TRUE(r.ok()) << r.status().ToString();
      }
    });
  }
  ~Spinner() {
    stop_.store(true, std::memory_order_relaxed);
    worker_.join();
  }

 private:
  Universe* u_;
  Oid oid_;
  int depth_;
  std::atomic<bool> stop_{false};
  std::thread worker_;
};

TEST(SamplerProfile, IdleUniverseSamplesAsIdle) {
  auto store = MemStore();
  Universe u(store.get());
  ASSERT_OK(u.InstallStdlib());
  VmSampler sampler(&u);
  for (int k = 0; k < 10; ++k) sampler.SampleOnce();
  VmSampler::Report rep = sampler.Snapshot();
  EXPECT_GT(rep.total_samples, 0u);
  EXPECT_EQ(rep.idle_samples, rep.total_samples);
  EXPECT_EQ(rep.attributed_samples, 0u);
}

TEST(SamplerProfile, AttributesHotFunctionWithHighCoverage) {
  auto store = MemStore();
  Universe u(store.get());
  ASSERT_OK(u.InstallStdlib());
  ASSERT_OK(u.InstallSource("m", kSpinSrc, fe::BindingMode::kLibrary));
  Oid spin = *u.Lookup("m", "spin");

  VmSampler sampler(&u);
  {
    Spinner load(&u, spin, /*depth=*/20000);
    // Sweep until enough busy samples accumulate (bounded by wall time).
    auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (std::chrono::steady_clock::now() < deadline) {
      sampler.SampleOnce();
      VmSampler::Report rep = sampler.Snapshot();
      if (rep.total_samples - rep.idle_samples >= 200) break;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }

  VmSampler::Report rep = sampler.Snapshot();
  uint64_t busy = rep.total_samples - rep.idle_samples;
  ASSERT_GE(busy, 200u) << "mutator never got sampled";
  // Acceptance bar: >= 90% of busy samples attributed to a named function.
  EXPECT_GE(static_cast<double>(rep.attributed_samples),
            0.9 * static_cast<double>(busy));

  // spin dominates the hot table and runs in the interpreted tier.
  ASSERT_FALSE(rep.hot.empty());
  EXPECT_EQ(rep.hot[0].name, "m.spin");
  EXPECT_FALSE(rep.hot[0].optimized);
  EXPECT_GT(rep.hot[0].samples, 0u);
  EXPECT_FALSE(rep.hot[0].top_op.empty());
  // The hot row links back to the persistent closure.
  EXPECT_EQ(rep.hot[0].closure_oid, spin);

  std::string json = rep.ToJson();
  EXPECT_NE(json.find("\"m.spin\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"interpreted\""), std::string::npos) << json;
  EXPECT_NE(json.find("attribution_pct"), std::string::npos) << json;
}

TEST(SamplerProfile, ClassifiesOptimizedTier) {
  auto store = MemStore();
  Universe u(store.get());
  ASSERT_OK(u.InstallStdlib());
  ASSERT_OK(u.InstallSource("m", kSpinSrc, fe::BindingMode::kLibrary));
  Oid spin = *u.Lookup("m", "spin");
  auto opt = u.ReflectOptimize(spin);
  ASSERT_TRUE(opt.ok()) << opt.status().ToString();

  VmSampler sampler(&u);
  bool saw_optimized = false;
  VmSampler::Tier seen_tier = VmSampler::Tier::kInterpreted;
  {
    Spinner load(&u, *opt, /*depth=*/20000);
    auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (std::chrono::steady_clock::now() < deadline) {
      sampler.SampleOnce();
      for (const auto& row : sampler.Snapshot().hot) {
        if (row.optimized && row.samples > 0) {
          saw_optimized = true;
          seen_tier = row.tier;
        }
      }
      if (saw_optimized) break;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  EXPECT_TRUE(saw_optimized);
  // The compat bool covers both upper rungs of the tier ladder.
  EXPECT_NE(seen_tier, VmSampler::Tier::kInterpreted);
  std::string json = sampler.Snapshot().ToJson();
  std::string label = std::string("\"") + VmSampler::TierName(seen_tier) + "\"";
  EXPECT_NE(json.find(label), std::string::npos) << json;
}

TEST(SamplerProfile, ClassifiesFusedTier) {
  // Default optimizer options fuse superinstructions, so the optimized
  // spin closure should classify as the top "fused" tier — provided the
  // fusion pass found a pattern, which the recursive spin body does hit.
  auto store = MemStore();
  Universe u(store.get());
  ASSERT_OK(u.InstallStdlib());
  ASSERT_OK(u.InstallSource("m", kSpinSrc, fe::BindingMode::kLibrary));
  Oid spin = *u.Lookup("m", "spin");
  rt::ReflectStats stats;
  auto opt = u.ReflectOptimize(spin, {}, &stats);
  ASSERT_TRUE(opt.ok()) << opt.status().ToString();
  if (stats.superinstructions_fused == 0) {
    GTEST_SKIP() << "no fusible pattern in optimized spin";
  }

  VmSampler sampler(&u);
  bool saw_fused = false;
  {
    Spinner load(&u, *opt, /*depth=*/20000);
    auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (std::chrono::steady_clock::now() < deadline) {
      sampler.SampleOnce();
      for (const auto& row : sampler.Snapshot().hot) {
        if (row.tier == VmSampler::Tier::kFused && row.samples > 0) {
          saw_fused = true;
        }
      }
      if (saw_fused) break;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  EXPECT_TRUE(saw_fused);
  std::string json = sampler.Snapshot().ToJson();
  EXPECT_NE(json.find("\"fused\""), std::string::npos) << json;
}

TEST(SamplerProfile, EnableSamplerWiresProfileProvider) {
  auto store = MemStore();
  Universe u(store.get());
  ASSERT_OK(u.InstallStdlib());
  // No provider yet: the seam reports the empty object.
  EXPECT_EQ(u.ProfileJson(), "{}");

  VmSampler* sampler = EnableSampler(&u);
  ASSERT_NE(sampler, nullptr);
  sampler->SampleOnce();
  std::string json = u.ProfileJson();
  EXPECT_NE(json.find("total_samples"), std::string::npos) << json;
  EXPECT_NE(json.find("functions"), std::string::npos) << json;
  // ~Universe stops the adopted sampler; nothing to clean up here.
}

TEST(SamplerProfile, ReflectProfileHostReturnsSamplerJson) {
  auto store = MemStore();
  Universe u(store.get());
  ASSERT_OK(u.InstallStdlib());
  VmSampler* sampler = EnableSampler(&u);
  sampler->SampleOnce();

  // `reflect.profile` is a ccall host; compile a raw TML stub to call it.
  ir::Module m;
  const ir::Abstraction* prog = test::MustParseProgram(
      &m, "(proc (ce cc) (ccall \"reflect.profile\" ce cc))");
  ASSERT_NE(prog, nullptr);
  vm::CodeUnit unit;
  auto fn = vm::CompileProc(&unit, m, prog, "profile_stub");
  ASSERT_TRUE(fn.ok()) << fn.status().ToString();
  auto res = u.vm()->Run(*fn, {});
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_TRUE(res->value.is_obj());
  auto* str = static_cast<vm::StringObj*>(res->value.obj);
  ASSERT_EQ(str->kind, vm::ObjKind::kString);
  EXPECT_NE(str->str.find("total_samples"), std::string::npos) << str->str;
}

}  // namespace
}  // namespace tml
