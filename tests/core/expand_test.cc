// Expansion pass (§3): inlining decisions, cost model, penalty behaviour.

#include <gtest/gtest.h>

#include "core/expand.h"
#include "core/optimizer.h"
#include "core/printer.h"
#include "core/rewrite.h"
#include "core/validate.h"
#include "tests/test_util.h"

namespace tml {
namespace {

using ir::Abstraction;
using ir::ExpandOptions;
using ir::ExpandStats;
using ir::Module;
using test::MustParseProgram;

// f called twice with a small body: both sites inline.
const char* kTwoSites =
    "(proc (x ce cc)"
    " ((lambda (f)"
    "    (f x ce (cont (t1) (f t1 ce cc))))"
    "  (proc (a ce2 cc2) (+ a 1 ce2 cc2))))";

TEST(Expand, SmallBodiesAlwaysInline) {
  Module m;
  const Abstraction* prog = MustParseProgram(&m, kTwoSites);
  ExpandStats stats;
  const Abstraction* out = ir::Expand(&m, prog, {}, 0, &stats);
  EXPECT_EQ(stats.inlined, 2u);
  EXPECT_NE(out, prog);
  EXPECT_OK(ir::Validate(m, out));
}

TEST(Expand, PenaltyShrinksBudget) {
  Module m;
  const Abstraction* prog = MustParseProgram(&m, kTwoSites);
  ExpandOptions opts;
  opts.always_inline_cost = 0;
  opts.budget = 4;
  opts.savings_per_static_arg = 0;
  // body cost ~2-4; with a huge penalty nothing may inline.
  ExpandStats stats;
  const Abstraction* out = ir::Expand(&m, prog, opts, /*penalty=*/1000,
                                      &stats);
  EXPECT_EQ(stats.inlined, 0u);
  EXPECT_EQ(out, prog);
  EXPECT_GT(stats.rejected_cost, 0u);
}

TEST(Expand, StaticArgumentsEarnSavings) {
  // A call with literal arguments gets extra budget (Appel's heuristic:
  // known arguments enable downstream folding).
  Module m;
  const Abstraction* prog = MustParseProgram(
      &m,
      "(proc (ce cc)"
      " ((lambda (f)"
      "    (f 3 ce (cont (t1) (f t1 ce cc))))"
      "  (proc (a ce2 cc2)"
      "    (* a a ce2 (cont (u) (+ u a ce2 (cont (v) (* v 2 ce2 cc2))))))))");
  ExpandOptions opts;
  opts.always_inline_cost = 0;
  opts.budget = 2;  // too small on its own
  opts.savings_per_static_arg = 16;
  ExpandStats stats;
  (void)ir::Expand(&m, prog, opts, 0, &stats);
  // The literal-argument site inlines; the variable-argument site may not.
  EXPECT_GE(stats.inlined, 1u);
  EXPECT_GE(stats.rejected_cost, 1u);
}

TEST(Expand, InlinedCopyIsAlphaRenamed) {
  Module m;
  const Abstraction* prog = MustParseProgram(&m, kTwoSites);
  const Abstraction* out = ir::Expand(&m, prog, {}, 0);
  // Unique binding must survive double inlining of the same body.
  EXPECT_OK(ir::Validate(m, out));
  // And a subsequent reduction collapses everything.
  const Abstraction* red = ir::Reduce(&m, out);
  EXPECT_OK(ir::Validate(m, red));
}

TEST(Expand, RecursiveInliningIsBoundedByDriver) {
  // Self-recursive function with unknown bound: the driver's penalty stops
  // runaway unrolling while keeping the term valid and executable.
  Module m;
  const Abstraction* prog = MustParseProgram(
      &m,
      "(proc (n ce cc)"
      " (Y (proc (^c0 f ^c)"
      "      (c (cont () (f n ce cc))"
      "         (proc (i ce1 cc1)"
      "           (<= i 0 (cont () (cc1 0))"
      "                   (cont () (- i 1 ce1 (cont (t) (f t ce1 cc1))))))))))");
  ir::OptimizerOptions opts;
  opts.expand.always_inline_cost = 100;
  opts.max_rounds = 50;  // far beyond the penalty limit
  ir::OptimizerStats stats;
  const Abstraction* out = ir::Optimize(&m, prog, opts, &stats);
  EXPECT_OK(ir::Validate(m, out));
  EXPECT_LT(stats.rounds, 50);  // stopped by penalty, not round budget
}

TEST(Expand, CostEstimateUsesPrimCosts) {
  Module m;
  // A division (cost 4) must estimate above an addition (cost 1).
  const Abstraction* add =
      MustParseProgram(&m, "(proc (a b ce cc) (+ a b ce cc))");
  const Abstraction* div =
      MustParseProgram(&m, "(proc (a b ce cc) (/ a b ce cc))");
  EXPECT_LT(ir::EstimateAbsCost(add), ir::EstimateAbsCost(div));
}

TEST(Expand, OptimizeResultIsReductionFixpoint) {
  // Even when rounds are exhausted mid-expansion, the driver cleans up.
  Module m;
  const Abstraction* prog = MustParseProgram(
      &m,
      "(proc (n ce cc)"
      " (Y (proc (^c0 f ^c)"
      "      (c (cont () (f n ce cc))"
      "         (proc (i ce1 cc1)"
      "           (<= i 0 (cont () (cc1 0))"
      "                   (cont () (- i 1 ce1 (cont (t) (f t ce1 cc1))))))))))");
  ir::OptimizerOptions opts;
  opts.expand.always_inline_cost = 100;
  opts.max_rounds = 2;  // stop while expansion still wants to go
  const Abstraction* out = ir::Optimize(&m, prog, opts);
  ir::RewriteStats stats;
  (void)ir::Reduce(&m, out, {}, &stats);
  EXPECT_EQ(stats.TotalApplications(), 0u) << stats.ToString();
}

}  // namespace
}  // namespace tml
