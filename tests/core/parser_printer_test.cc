// Parser / pretty-printer round trips over the paper's notation (§2.2).

#include <string>

#include <gtest/gtest.h>

#include "core/analysis.h"
#include "core/module.h"
#include "core/parser.h"
#include "core/printer.h"
#include "tests/test_util.h"

namespace tml {
namespace {

using ir::Abstraction;
using ir::Application;
using ir::Cast;
using ir::DynCast;
using ir::Isa;
using ir::LitKind;
using ir::Literal;
using ir::Module;
using test::Compact;
using test::MustParseApp;
using test::MustParseProgram;

TEST(Parser, LiteralKinds) {
  Module m;
  const Application* app =
      MustParseApp(&m, "(k 13 -5 'a' 3.25 true false nil \"hi\")", true);
  ASSERT_NE(app, nullptr);
  ASSERT_EQ(app->num_args(), 8u);
  EXPECT_EQ(Cast<Literal>(app->arg(0))->int_value(), 13);
  EXPECT_EQ(Cast<Literal>(app->arg(1))->int_value(), -5);
  EXPECT_EQ(Cast<Literal>(app->arg(2))->char_value(), 'a');
  EXPECT_DOUBLE_EQ(Cast<Literal>(app->arg(3))->real_value(), 3.25);
  EXPECT_TRUE(Cast<Literal>(app->arg(4))->bool_value());
  EXPECT_FALSE(Cast<Literal>(app->arg(5))->bool_value());
  EXPECT_EQ(Cast<Literal>(app->arg(6))->lit_kind(), LitKind::kNil);
  EXPECT_EQ(Cast<Literal>(app->arg(7))->string_value(), "hi");
}

TEST(Parser, OidLiteral) {
  Module m;
  const Application* app = MustParseApp(&m, "(k <oid 0x005b4780>)", true);
  ASSERT_NE(app, nullptr);
  const ir::OidRef* oid = DynCast<ir::OidRef>(app->arg(0));
  ASSERT_NE(oid, nullptr);
  EXPECT_EQ(oid->oid(), 0x005b4780u);
}

TEST(Parser, PaperExampleBindingLiterals) {
  // Paper §2.2: (λ(i ch oid) app 13 'a' <oid ..>).
  Module m;
  const Application* app = MustParseApp(
      &m, "((lambda (i ch oid) (k i ch oid)) 13 'a' <oid 0x005b4780>)",
      true);
  ASSERT_NE(app, nullptr);
  const Abstraction* abs = DynCast<Abstraction>(app->callee());
  ASSERT_NE(abs, nullptr);
  EXPECT_EQ(abs->num_params(), 3u);
  EXPECT_TRUE(abs->is_cont());
  EXPECT_EQ(app->num_args(), 3u);
}

TEST(Parser, PaperExampleHigherOrder) {
  // Paper §2.2: (λ(fn) (fn 13) λ(t)app).
  Module m;
  const Application* app =
      MustParseApp(&m, "((lambda (fn) (fn 13)) (lambda (t) (k t)))", true);
  ASSERT_NE(app, nullptr);
  const Abstraction* outer = DynCast<Abstraction>(app->callee());
  ASSERT_NE(outer, nullptr);
  EXPECT_TRUE(Isa<Abstraction>(app->arg(0)));
}

TEST(Parser, ProcDefaultsLastTwoParamsToConts) {
  Module m;
  const Abstraction* prog =
      MustParseProgram(&m, "(proc (a b ce cc) (cc a))");
  ASSERT_NE(prog, nullptr);
  EXPECT_EQ(prog->num_params(), 4u);
  EXPECT_EQ(prog->num_cont_params(), 2u);
  EXPECT_FALSE(prog->param(0)->is_cont());
  EXPECT_FALSE(prog->param(1)->is_cont());
  EXPECT_TRUE(prog->param(2)->is_cont());
  EXPECT_TRUE(prog->param(3)->is_cont());
}

TEST(Parser, ExplicitSlashSplitsSorts) {
  Module m;
  const auto res = ir::ParseValueText(&m, prims::StandardRegistry(),
                                      "(proc (/ c0 for c) (c0))");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  const Abstraction* abs = Cast<Abstraction>(res->value);
  EXPECT_EQ(abs->num_cont_params(), 3u);
}

TEST(Parser, ResolvesPrimitiveNames) {
  Module m;
  const Application* app = MustParseApp(&m, "(+ 1 2 ce cc)", true);
  ASSERT_NE(app, nullptr);
  const ir::PrimRef* pr = DynCast<ir::PrimRef>(app->callee());
  ASSERT_NE(pr, nullptr);
  EXPECT_EQ(pr->prim().name(), "+");
}

TEST(Parser, BoundVariableShadowsPrimitive) {
  Module m;
  // A parameter named `+` must win over the primitive.
  const Abstraction* prog = MustParseProgram(&m, "(proc (+ ce cc) (cc +))");
  ASSERT_NE(prog, nullptr);
  const Application* body = prog->body();
  EXPECT_TRUE(Isa<ir::Variable>(body->arg(0)));
}

TEST(Parser, RejectsUnboundWithoutFreeVarOption) {
  Module m;
  auto res = ir::ParseAppText(&m, prims::StandardRegistry(), "(k 1)");
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kNotFound);
}

TEST(Parser, CollectsFreeVariablesInOrder) {
  Module m;
  ir::ParseOptions opts;
  opts.allow_free_vars = true;
  auto res = ir::ParseAppText(&m, prims::StandardRegistry(),
                              "(f x (cont (t) (g t x)))", opts);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_EQ(res->free_vars.size(), 3u);
  EXPECT_EQ(m.NameOf(*res->free_vars[0]), "f");
  EXPECT_EQ(m.NameOf(*res->free_vars[1]), "x");
  EXPECT_EQ(m.NameOf(*res->free_vars[2]), "g");
}

TEST(Parser, RejectsNestedApplication) {
  Module m;
  ir::ParseOptions opts;
  opts.allow_free_vars = true;
  auto res =
      ir::ParseAppText(&m, prims::StandardRegistry(), "(f (g 1))", opts);
  EXPECT_FALSE(res.ok());
}

TEST(Parser, RejectsEmptyApplication) {
  Module m;
  auto res = ir::ParseAppText(&m, prims::StandardRegistry(), "()");
  EXPECT_FALSE(res.ok());
}

TEST(Parser, CommentsAreSkipped) {
  Module m;
  const Application* app = MustParseApp(
      &m, "; loop entry\n(k 1 ; inline comment\n 2)", true);
  ASSERT_NE(app, nullptr);
  EXPECT_EQ(app->num_args(), 2u);
}

TEST(Printer, ContVersusProcKeyword) {
  Module m;
  const Abstraction* prog =
      MustParseProgram(&m, "(proc (x ce cc) ((cont (t) (cc t)) x))");
  ASSERT_NE(prog, nullptr);
  std::string s = ir::PrintValue(m, prog);
  EXPECT_NE(s.find("proc("), std::string::npos);
  EXPECT_NE(s.find("cont("), std::string::npos);
}

TEST(Printer, RoundTripPreservesStructure) {
  Module m;
  const char* kText =
      "(proc (n ce cc)"
      " (Y (proc (/ c0 for c)"
      "      (c (cont () (for 1))"
      "         (cont (i)"
      "           (> i n"
      "              (cont () (cc i))"
      "              (cont () (+ i 1 ce (cont (t2) (for t2))))))))))";
  const Abstraction* prog = MustParseProgram(&m, kText);
  ASSERT_NE(prog, nullptr);
  // Print with uid suffixes, re-parse (suffixed names are fresh idents),
  // and require α-equivalence with the original.
  std::string printed = ir::PrintValue(m, prog);
  Module m2;
  auto res = ir::ParseValueText(&m2, prims::StandardRegistry(), printed);
  ASSERT_TRUE(res.ok()) << res.status().ToString() << "\n" << printed;
  EXPECT_TRUE(ir::AlphaEquivalent(m, prog, m2, res->value))
      << printed << "\nvs\n" << ir::PrintValue(m2, res->value);
}

TEST(Printer, OidPrintsInPaperNotation) {
  Module m;
  std::string s = ir::PrintValue(m, m.OidVal(0x5b4780));
  EXPECT_EQ(s, "<oid 0x005b4780>");
}

TEST(ModuleFactory, AlphaCloneCreatesFreshBinders) {
  Module m;
  const Abstraction* prog =
      MustParseProgram(&m, "(proc (x ce cc) (+ x 1 ce cc))");
  ASSERT_NE(prog, nullptr);
  const Abstraction* clone = m.AlphaClone(*prog);
  EXPECT_NE(clone->param(0), prog->param(0));
  EXPECT_EQ(m.NameOf(*clone->param(0)), m.NameOf(*prog->param(0)));
  EXPECT_EQ(test::Compact(m, clone), test::Compact(m, prog));
}

TEST(ModuleFactory, AlphaCloneSharesFreeVariables) {
  Module m;
  ir::ParseOptions opts;
  opts.allow_free_vars = true;
  auto res = ir::ParseValueText(&m, prims::StandardRegistry(),
                                "(proc (x ce cc) (g x ce cc))", opts);
  ASSERT_TRUE(res.ok());
  const Abstraction* abs = Cast<Abstraction>(res->value);
  const Abstraction* clone = m.AlphaClone(*abs);
  auto free_orig = ir::FreeVariables(abs);
  auto free_clone = ir::FreeVariables(clone);
  ASSERT_EQ(free_orig.size(), 1u);
  ASSERT_EQ(free_clone.size(), 1u);
  EXPECT_EQ(free_orig[0], free_clone[0]);  // shared, not renamed
}

TEST(ModuleFactory, TermSizeCountsPositions) {
  Module m;
  const Application* app = MustParseApp(&m, "(k 1 2)", true);
  // app + callee + two literals.
  EXPECT_EQ(ir::TermSize(app), 4u);
}

}  // namespace
}  // namespace tml
