// Binding analysis (§1, §3): occurrence counting |E|_v, free variables.

#include <gtest/gtest.h>

#include "core/analysis.h"
#include "core/module.h"
#include "core/subst.h"
#include "tests/test_util.h"

namespace tml {
namespace {

using ir::Abstraction;
using ir::Application;
using ir::CountOccurrences;
using ir::FreeVariables;
using ir::Module;
using ir::OccurrenceMap;
using test::MustParseProgram;

TEST(Occurrences, CountsPositions) {
  Module m;
  const Abstraction* prog =
      MustParseProgram(&m, "(proc (x y ce cc) (+ x x ce cc))");
  const ir::Variable* x = prog->param(0);
  const ir::Variable* y = prog->param(1);
  EXPECT_EQ(CountOccurrences(prog->body(), x), 2u);
  EXPECT_EQ(CountOccurrences(prog->body(), y), 0u);
}

TEST(Occurrences, CountsThroughNestedAbstractions) {
  Module m;
  const Abstraction* prog = MustParseProgram(
      &m, "(proc (x ce cc) (+ x 1 ce (cont (t) (+ t x ce cc))))");
  EXPECT_EQ(CountOccurrences(prog->body(), prog->param(0)), 2u);
}

TEST(OccurrenceMapTest, MatchesPerVariableCounts) {
  Module m;
  const Abstraction* prog = MustParseProgram(
      &m, "(proc (x ce cc) (+ x 1 ce (cont (t) (+ t x ce cc))))");
  OccurrenceMap map = OccurrenceMap::For(prog->body());
  EXPECT_EQ(map.Count(prog->param(0)), 2u);
  EXPECT_EQ(map.Count(prog->param(1)), 2u);  // ce used twice
  EXPECT_EQ(map.Count(prog->param(2)), 1u);  // cc once
}

TEST(OccurrenceMapTest, IncrementalDeltasMatchRecount) {
  Module m;
  const Abstraction* prog = MustParseProgram(
      &m,
      "(proc (x y ce cc)"
      " ((lambda (a) (+ a y ce (cont (t) (+ t a ce cc)))) x))");
  OccurrenceMap map = OccurrenceMap::For(prog->body());
  const Abstraction* let = ir::Cast<Abstraction>(prog->body()->callee());
  const ir::Variable* a = let->param(0);
  ASSERT_EQ(map.Count(a), 2u);
  // Simulate subst a := x and verify against a fresh recount.
  const Application* nb =
      ir::Substitute(&m, let->body(), a, prog->body()->arg(0));
  map.AccumulateValue(prog->body()->arg(0), 2);
  map.Add(a, -2);
  OccurrenceMap fresh = OccurrenceMap::For(nb);
  EXPECT_EQ(map.Count(a), 0u);
  EXPECT_EQ(fresh.Count(prog->param(0)), 2u);  // x occurrences in new body
}

TEST(FreeVars, ClosedProgramHasNone) {
  Module m;
  const Abstraction* prog =
      MustParseProgram(&m, "(proc (x ce cc) (+ x 1 ce cc))");
  EXPECT_TRUE(FreeVariables(prog).empty());
}

TEST(FreeVars, FirstOccurrenceOrder) {
  Module m;
  ir::ParseOptions opts;
  opts.allow_free_vars = true;
  auto res = ir::ParseValueText(
      &m, prims::StandardRegistry(),
      // The §4.1 pattern: abs uses module accessors and sqrt free.
      "(proc (c ce cc)"
      " (complexx c ce (cont (t13)"
      "   (complexy c ce (cont (t15)"
      "     (mul t13 t13 ce (cont (t16)"
      "       (mul t15 t15 ce (cont (t19)"
      "         (add t16 t19 ce (cont (t22)"
      "           (mysqrt t22 ce cc))))))))))))",
      opts);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  const Abstraction* abs = ir::Cast<Abstraction>(res->value);
  auto free = FreeVariables(abs);
  ASSERT_EQ(free.size(), 5u);
  EXPECT_EQ(m.NameOf(*free[0]), "complexx");
  EXPECT_EQ(m.NameOf(*free[1]), "complexy");
  EXPECT_EQ(m.NameOf(*free[2]), "mul");
  EXPECT_EQ(m.NameOf(*free[3]), "add");
  EXPECT_EQ(m.NameOf(*free[4]), "mysqrt");
}

TEST(Substitution, SharesUnchangedSubtrees) {
  Module m;
  const Abstraction* prog = MustParseProgram(
      &m,
      "(proc (x y ce cc)"
      " (+ x 1 ce (cont (t) (+ t y ce cc))))");
  // Substituting y only rebuilds the path to its occurrence.
  const Application* body = prog->body();
  const Application* nb =
      ir::Substitute(&m, body, prog->param(1), m.IntLit(7));
  EXPECT_NE(nb, body);
  // callee (the prim ref) and untouched args are shared.
  EXPECT_EQ(nb->callee(), body->callee());
  EXPECT_EQ(nb->arg(0), body->arg(0));
  // The original term is untouched (functional rewriting).
  EXPECT_EQ(ir::CountOccurrences(body, prog->param(1)), 1u);
  // Substituting a variable that does not occur returns the same pointer.
  const Application* noop =
      ir::Substitute(&m, nb, prog->param(1), m.IntLit(9));
  EXPECT_EQ(noop, nb);
}

}  // namespace
}  // namespace tml
