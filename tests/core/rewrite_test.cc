// Tests for the §3 reduction rules, each exercised in isolation and in
// combination, including the paper's worked examples.

#include <gtest/gtest.h>

#include "core/analysis.h"
#include "core/module.h"
#include "core/optimizer.h"
#include "core/printer.h"
#include "core/rewrite.h"
#include "core/validate.h"
#include "tests/test_util.h"

namespace tml {
namespace {

using ir::Abstraction;
using ir::Application;
using ir::Module;
using ir::Reduce;
using ir::ReduceApp;
using ir::RewriteOptions;
using ir::RewriteStats;
using test::Compact;
using test::MustParseProgram;

// Reduce a program and validate the result.
const Abstraction* ReduceOk(Module* m, const Abstraction* prog,
                            RewriteStats* stats = nullptr,
                            RewriteOptions opts = {}) {
  const Abstraction* out = Reduce(m, prog, opts, stats);
  Status st = ir::Validate(*m, out);
  EXPECT_TRUE(st.ok()) << st.ToString() << "\n" << ir::PrintValue(*m, out);
  return out;
}

TEST(Fold, PaperExampleAddFolds) {
  // (+ 1 2 ce cc) --fold--> (cc 3)   [paper §2.3 / §3]
  Module m;
  const Abstraction* prog =
      MustParseProgram(&m, "(proc (ce cc) (+ 1 2 ce cc))");
  RewriteStats stats;
  const Abstraction* out = ReduceOk(&m, prog, &stats);
  EXPECT_EQ(Compact(m, out->body()), "(cc 3)");
  EXPECT_EQ(stats.fold, 1u);
}

TEST(Fold, CaseOnLiteralScrutineeTakesMatchingBranch) {
  // (== 2 1 2 3 c1 c2 c3) --fold--> (c2)   [paper §3 example]
  Module m;
  const Abstraction* prog = MustParseProgram(
      &m,
      "(proc (x ce cc)"
      " ((lambda (/ c1 c2 c3) (== 2 1 2 3 c1 c2 c3))"
      "  (cont () (cc 10)) (cont () (cc 20)) (cont () (cc 30))))");
  const Abstraction* out = ReduceOk(&m, prog);
  EXPECT_EQ(Compact(m, out->body()), "(cc 20)");
}

TEST(Fold, CaseFallsToElseBranch) {
  Module m;
  const Abstraction* prog = MustParseProgram(
      &m,
      "(proc (x ce cc)"
      " ((lambda (/ c1 celse) (== 9 1 c1 celse))"
      "  (cont () (cc 10)) (cont () (cc 99))))");
  const Abstraction* out = ReduceOk(&m, prog);
  EXPECT_EQ(Compact(m, out->body()), "(cc 99)");
}

TEST(Fold, DivisionByZeroLiteralIsNotFolded) {
  // (/ 1 0 ce cc) must keep its exception path.
  Module m;
  const Abstraction* prog = MustParseProgram(&m, "(proc (ce cc) (/ 1 0 ce cc))");
  RewriteStats stats;
  const Abstraction* out = ReduceOk(&m, prog, &stats);
  EXPECT_EQ(stats.fold, 0u);
  EXPECT_EQ(Compact(m, out->body()), "(/ 1 0 ce cc)");
}

TEST(Fold, ComparisonBranchesStatically) {
  Module m;
  const Abstraction* prog = MustParseProgram(
      &m,
      "(proc (ce cc)"
      " (< 1 2 (cont () (cc 111)) (cont () (cc 222))))");
  const Abstraction* out = ReduceOk(&m, prog);
  EXPECT_EQ(Compact(m, out->body()), "(cc 111)");
}

TEST(Fold, ReflexiveComparisonOnSameVariable) {
  Module m;
  const Abstraction* prog = MustParseProgram(
      &m,
      "(proc (x ce cc)"
      " (<= x x (cont () (cc 1)) (cont () (cc 0))))");
  const Abstraction* out = ReduceOk(&m, prog);
  EXPECT_EQ(Compact(m, out->body()), "(cc 1)");
}

TEST(Fold, AlgebraicIdentityAddZero) {
  Module m;
  const Abstraction* prog =
      MustParseProgram(&m, "(proc (x ce cc) (+ x 0 ce cc))");
  const Abstraction* out = ReduceOk(&m, prog);
  EXPECT_EQ(Compact(m, out->body()), "(cc x)");
}

TEST(Fold, ConstantChainsPropagate) {
  // Constant folding cascades through continuation bindings.
  Module m;
  const Abstraction* prog = MustParseProgram(
      &m,
      "(proc (ce cc)"
      " (+ 1 2 ce (cont (a)"
      "   (* a 4 ce (cont (b)"
      "     (- b 2 ce cc))))))");
  const Abstraction* out = ReduceOk(&m, prog);
  EXPECT_EQ(Compact(m, out->body()), "(cc 10)");
}

TEST(Subst, CopyPropagationThroughBinding) {
  // ((λ(t) (cc t)) x) reduces to (cc x) — via η on the callee or via
  // subst/remove/reduce; either route is a legal derivation.
  Module m;
  const Abstraction* prog =
      MustParseProgram(&m, "(proc (x ce cc) ((lambda (t) (cc t)) x))");
  RewriteStats stats;
  const Abstraction* out = ReduceOk(&m, prog, &stats);
  EXPECT_EQ(Compact(m, out->body()), "(cc x)");
  EXPECT_GE(stats.TotalApplications(), 1u);
}

TEST(Subst, CopyPropagationWithoutEta) {
  // With η disabled the derivation must go subst -> remove -> reduce.
  Module m;
  const Abstraction* prog =
      MustParseProgram(&m, "(proc (x ce cc) ((lambda (t) (cc t)) x))");
  RewriteStats stats;
  RewriteOptions opts;
  opts.enable_eta = false;
  const Abstraction* out = ReduceOk(&m, prog, &stats, opts);
  EXPECT_EQ(Compact(m, out->body()), "(cc x)");
  EXPECT_EQ(stats.subst, 1u);
  EXPECT_EQ(stats.remove, 1u);
  EXPECT_EQ(stats.reduce, 1u);
}

TEST(Subst, AbstractionUsedOnceIsInlined) {
  // A once-referenced proc is substituted and β-reduced away.
  Module m;
  const Abstraction* prog = MustParseProgram(
      &m,
      "(proc (x ce cc)"
      " ((lambda (f) (f x ce cc))"
      "  (proc (a ce2 cc2) (+ a 1 ce2 cc2))))");
  const Abstraction* out = ReduceOk(&m, prog);
  EXPECT_EQ(Compact(m, out->body()), "(+ x 1 ce cc)");
}

TEST(Subst, AbstractionUsedTwiceIsNotSubstituted) {
  // |app|_f = 2: the subst precondition forbids duplication.
  Module m;
  const Abstraction* prog = MustParseProgram(
      &m,
      "(proc (x ce cc)"
      " ((lambda (f) (f x ce (cont (t) (f t ce cc))))"
      "  (proc (a ce2 cc2) (+ a 1 ce2 cc2))))");
  RewriteStats stats;
  RewriteOptions opts;
  const Abstraction* out = ReduceOk(&m, prog, &stats, opts);
  EXPECT_EQ(stats.subst, 0u);
  // The binding must still be present.
  const Application* body = out->body();
  EXPECT_TRUE(ir::Isa<Abstraction>(body->callee()));
}

TEST(Remove, DeadBindingIsStruck) {
  Module m;
  const Abstraction* prog = MustParseProgram(
      &m,
      "(proc (x ce cc)"
      " ((lambda (unused t) (cc t)) 42 x))");
  RewriteStats stats;
  const Abstraction* out = ReduceOk(&m, prog, &stats);
  EXPECT_EQ(Compact(m, out->body()), "(cc x)");
  EXPECT_GE(stats.remove, 2u);  // `unused` and `t` (after subst)
}

TEST(Remove, DeadAbstractionValueIsStruck) {
  // Dead code elimination of an entire unused procedure.
  Module m;
  const Abstraction* prog = MustParseProgram(
      &m,
      "(proc (x ce cc)"
      " ((lambda (dead) (cc x))"
      "  (proc (a ce2 cc2) (* a a ce2 cc2))))");
  const Abstraction* out = ReduceOk(&m, prog);
  EXPECT_EQ(Compact(m, out->body()), "(cc x)");
}

TEST(Eta, UnnecessaryAbstractionIsRemoved) {
  // λ(t)(cc t) --η--> cc
  Module m;
  const Abstraction* prog = MustParseProgram(
      &m,
      "(proc (x ce cc)"
      " (+ x 1 ce (cont (t) (cc t))))");
  RewriteStats stats;
  const Abstraction* out = ReduceOk(&m, prog, &stats);
  EXPECT_EQ(Compact(m, out->body()), "(+ x 1 ce cc)");
  EXPECT_EQ(stats.eta, 1u);
}

TEST(Eta, DoesNotFireWhenArgOrderDiffers) {
  // λ(a b)(k b a) is not an η-redex.
  Module m;
  const Abstraction* prog = MustParseProgram(
      &m,
      "(proc (k2 x y ce cc)"
      " ((lambda (/ k) (k x y)) (cont (a b) (cc b))))");
  RewriteStats stats;
  ReduceOk(&m, prog, &stats);
  EXPECT_EQ(stats.eta, 0u);
}

TEST(CaseSubst, BranchSeesTagValue) {
  // In the branch for tag 5, occurrences of the scrutinee variable are
  // replaced by 5, enabling a downstream fold.
  Module m;
  const Abstraction* prog = MustParseProgram(
      &m,
      "(proc (v ce cc)"
      " (== v 5"
      "     (cont () (+ v 1 ce cc))"
      "     (cont () (cc 0))))");
  RewriteStats stats;
  const Abstraction* out = ReduceOk(&m, prog, &stats);
  EXPECT_GE(stats.case_subst, 1u);
  EXPECT_GE(stats.fold, 1u);  // (+ 5 1 ..) folded inside the branch
  EXPECT_NE(Compact(m, out->body()).find("(cc 6)"), std::string::npos);
}

TEST(YRules, DeadRecursiveBindingIsRemoved) {
  // A recursive function referenced only by itself is struck (Y-remove),
  // after which the empty fixpoint collapses (Y-reduce).
  Module m;
  const Abstraction* prog = MustParseProgram(
      &m,
      "(proc (x ce cc)"
      " (Y (proc (/ c0 loop c)"
      "      (c (cont () (cc x))"
      "         (cont (i) (loop i))))))");
  RewriteStats stats;
  const Abstraction* out = ReduceOk(&m, prog, &stats);
  EXPECT_EQ(stats.y_remove, 1u);
  EXPECT_EQ(stats.y_reduce, 1u);
  EXPECT_EQ(Compact(m, out->body()), "(cc x)");
}

TEST(YRules, LiveLoopIsPreserved) {
  Module m;
  const Abstraction* prog = MustParseProgram(
      &m,
      "(proc (n ce cc)"
      " (Y (proc (/ c0 for c)"
      "      (c (cont () (for 1))"
      "         (cont (i)"
      "           (> i n"
      "              (cont () (cc i))"
      "              (cont () (+ i 1 ce (cont (t2) (for t2))))))))))");
  RewriteStats stats;
  const Abstraction* out = ReduceOk(&m, prog, &stats);
  EXPECT_EQ(stats.y_remove, 0u);
  EXPECT_EQ(stats.y_reduce, 0u);
  EXPECT_NE(Compact(m, out->body()).find("Y"), std::string::npos);
}

TEST(Reduction, TerminatesAndShrinksMonotonically) {
  Module m;
  const Abstraction* prog = MustParseProgram(
      &m,
      "(proc (ce cc)"
      " ((lambda (a) ((lambda (b) ((lambda (d) (+ a d ce cc)) b)) a)) 7))");
  size_t before = ir::TermSize(prog->body());
  const Abstraction* out = ReduceOk(&m, prog);
  size_t after = ir::TermSize(out->body());
  EXPECT_LT(after, before);
  EXPECT_EQ(Compact(m, out->body()), "(cc 14)");
}

TEST(Reduction, DisabledRulesDoNotFire) {
  Module m;
  const Abstraction* prog =
      MustParseProgram(&m, "(proc (ce cc) (+ 1 2 ce cc))");
  RewriteOptions opts;
  opts.enable_fold = false;
  RewriteStats stats;
  const Abstraction* out = Reduce(&m, prog, opts, &stats);
  EXPECT_EQ(stats.fold, 0u);
  EXPECT_EQ(Compact(m, out->body()), "(+ 1 2 ce cc)");
}

TEST(Optimizer, ExpansionInlinesMultiplyReferencedProc) {
  // f is called twice; the reduction pass must keep it, the expansion pass
  // inlines both sites (procedure inlining / view expansion), and folding
  // then collapses everything to a constant.
  Module m;
  const Abstraction* prog = MustParseProgram(
      &m,
      "(proc (ce cc)"
      " ((lambda (f)"
      "    (f 1 ce (cont (t1)"
      "      (f t1 ce (cont (t2) (cc t2))))))"
      "  (proc (a ce2 cc2) (+ a 10 ce2 cc2))))");
  ir::OptimizerStats stats;
  const Abstraction* out = ir::Optimize(&m, prog, {}, &stats);
  EXPECT_OK(ir::Validate(m, out));
  EXPECT_EQ(Compact(m, out->body()), "(cc 21)");
  EXPECT_GE(stats.expand.inlined, 1u);
}

TEST(Optimizer, LoopUnrollingThroughYExpansion) {
  // A counted loop with constant bounds fully evaluates at compile time —
  // loop unrolling as a special case of the general rules (§3).
  Module m;
  const Abstraction* prog = MustParseProgram(
      &m,
      "(proc (ce cc)"
      " (Y (proc (/ c0 for c)"
      "      (c (cont () (for 1 0))"
      "         (cont (i acc)"
      "           (> i 3"
      "              (cont () (cc acc))"
      "              (cont ()"
      "                (+ acc i ce (cont (a2)"
      "                  (+ i 1 ce (cont (t2) (for t2 a2))))))))))))");
  ir::OptimizerOptions opts;
  opts.expand.budget = 64;
  opts.expand.always_inline_cost = 100;
  opts.penalty_limit = 512;
  opts.max_rounds = 32;
  const Abstraction* out = ir::Optimize(&m, prog, opts);
  EXPECT_OK(ir::Validate(m, out));
  // 0+1+2+3 = 6.
  EXPECT_EQ(Compact(m, out->body()), "(cc 6)");
}

TEST(Optimizer, PenaltyBoundsRecursiveInlining) {
  // An unbounded recursion must not make the optimizer diverge: the
  // accumulated penalty (§3) stops expansion.
  Module m;
  const Abstraction* prog = MustParseProgram(
      &m,
      "(proc (n ce cc)"
      " (Y (proc (/ c0 loop c)"
      "      (c (cont () (loop n))"
      "         (cont (i)"
      "           (> i 0"
      "              (cont () (- i 1 ce (cont (t) (loop t))))"
      "              (cont () (cc i))))))))");
  ir::OptimizerOptions opts;
  opts.expand.budget = 128;
  opts.expand.always_inline_cost = 64;
  const Abstraction* out = ir::Optimize(&m, prog, opts);
  EXPECT_OK(ir::Validate(m, out));  // terminated and still well-formed
}

}  // namespace
}  // namespace tml
