// Well-formedness constraints 1–5 of §2.2.

#include <gtest/gtest.h>

#include "core/module.h"
#include "core/validate.h"
#include "tests/test_util.h"

namespace tml {
namespace {

using ir::Abstraction;
using ir::Module;
using ir::Validate;
using test::MustParseProgram;

Status ValidateText(const char* text) {
  Module m;
  auto res = ir::ParseValueText(&m, prims::StandardRegistry(), text);
  if (!res.ok()) return res.status();
  return Validate(m, ir::Cast<Abstraction>(res->value));
}

TEST(Validate, AcceptsWellFormedProgram) {
  EXPECT_OK(ValidateText("(proc (x ce cc) (+ x 1 ce cc))"));
}

TEST(Validate, Constraint1ArityMismatch) {
  Status st = ValidateText("(proc (x ce cc) ((lambda (a b) (cc a)) x))");
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("arity"), std::string::npos);
}

TEST(Validate, Constraint2PrimitiveConvention) {
  // '+' requires 2 values + 2 continuations.
  Status st = ValidateText("(proc (x ce cc) (+ x ce cc))");
  EXPECT_FALSE(st.ok());
}

TEST(Validate, Constraint2PrimitiveContPosition) {
  // A literal where '+' expects a continuation.
  Status st = ValidateText("(proc (x ce cc) (+ x 1 2 cc))");
  EXPECT_FALSE(st.ok());
}

TEST(Validate, Constraint3ContinuationMayNotEscape) {
  // cc passed in a value position of a proc call.
  Status st =
      ValidateText("(proc (f x ce cc) (f cc ce cc))");
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("escape"), std::string::npos);
}

TEST(Validate, Constraint3ContAbstractionInValuePosition) {
  Status st = ValidateText(
      "(proc (f x ce cc) (f (cont (t) (cc t)) ce cc))");
  EXPECT_FALSE(st.ok());
}

TEST(Validate, Constraint4UniqueBinding) {
  // Construct λ(x)(λ(x)app val) manually — the same Variable object bound
  // twice (the paper's forbidden example).
  Module m;
  ir::Variable* x = m.NewValueVar("x");
  ir::Variable* ce = m.NewContVar("ce");
  ir::Variable* cc = m.NewContVar("cc");
  const ir::Application* inner_app = m.App(cc, {x});
  const ir::Abstraction* inner = m.Abs({x}, inner_app);
  const ir::Application* outer_app = m.App(inner, {m.IntLit(1)});
  const ir::Abstraction* outer = m.Abs({x, ce, cc}, outer_app);
  Status st = Validate(m, outer);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("unique-binding"), std::string::npos);
}

TEST(Validate, Constraint4OccurrenceOutsideScope) {
  Module m;
  ir::Variable* x = m.NewValueVar("x");
  ir::Variable* ce = m.NewContVar("ce");
  ir::Variable* cc = m.NewContVar("cc");
  // x occurs but is never bound.
  const ir::Abstraction* prog = m.Abs({ce, cc}, m.App(cc, {x}));
  Status st = Validate(m, prog);
  EXPECT_FALSE(st.ok());
  // ... unless declared free (the §4.1 runtime-binding scenario).
  const ir::Variable* free[] = {x};
  ir::ValidateOptions opts;
  opts.free = free;
  EXPECT_OK(Validate(m, prog, opts));
}

TEST(Validate, Constraint5ProcShape) {
  // An abstraction used as a value with only one continuation parameter.
  Module m;
  ir::Variable* f = m.NewValueVar("f");
  ir::Variable* ce = m.NewContVar("ce");
  ir::Variable* cc = m.NewContVar("cc");
  ir::Variable* a = m.NewValueVar("a");
  ir::Variable* k = m.NewContVar("k");
  const ir::Abstraction* bad = m.Abs({a, k}, m.App(k, {a}));
  const ir::Abstraction* prog =
      m.Abs({f, ce, cc}, m.App(f, {bad, ce, cc}));
  Status st = Validate(m, prog);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("two trailing"), std::string::npos);
}

TEST(Validate, AcceptsYLoop) {
  EXPECT_OK(ValidateText(
      "(proc (n ce cc)"
      " (Y (proc (/ c0 for c)"
      "      (c (cont () (for 1))"
      "         (cont (i)"
      "           (> i n"
      "              (cont () (cc i))"
      "              (cont () (+ i 1 ce (cont (t2) (for t2))))))))))"));
}

TEST(Validate, RejectsMalformedYBody) {
  // Y body must apply the final continuation parameter.
  Status st = ValidateText(
      "(proc (n ce cc)"
      " (Y (proc (/ c0 c) (c0))))");
  EXPECT_FALSE(st.ok());
}

TEST(Validate, RejectsLiteralCallee) {
  Module m;
  ir::Variable* ce = m.NewContVar("ce");
  ir::Variable* cc = m.NewContVar("cc");
  const ir::Abstraction* prog =
      m.Abs({ce, cc}, m.App(m.IntLit(3), {}));
  EXPECT_FALSE(Validate(m, prog).ok());
}

TEST(Validate, CaseNeedsLiteralTags) {
  EXPECT_OK(ValidateText(
      "(proc (v ce cc)"
      " (== v 1 2 (cont () (cc 1)) (cont () (cc 2)) (cont () (cc 0))))"));
  Status st = ValidateText(
      "(proc (v ce cc) (== v (cont () (cc 1))))");
  EXPECT_FALSE(st.ok());
}

TEST(Validate, CCallShape) {
  EXPECT_OK(ValidateText(
      "(proc (x ce cc) (ccall \"print\" x ce cc))"));
  Status st = ValidateText("(proc (x ce cc) (ccall x ce cc))");
  EXPECT_FALSE(st.ok());
}

}  // namespace
}  // namespace tml
