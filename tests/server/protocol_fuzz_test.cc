// Fuzz suite for the tyd wire codec (server/protocol.h).  Pins down the
// decoder contract: arbitrary bytes, truncations of valid frames,
// hostile length prefixes, huge element counts, and over-deep nesting all
// yield kOk / kNeedMore / kError — never a crash, an over-read, or an
// unbounded allocation.  CI additionally runs this binary under ASan
// (check.sh --asan), which turns any over-read into a hard failure.
//
// Deterministic: every case derives from a fixed-seed mt19937.

#include <cstdint>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "server/protocol.h"

namespace tml::server {
namespace {

// ---------------------------------------------------------------------------
// Generators

WireValue RandomValue(std::mt19937* rng, int depth) {
  std::uniform_int_distribution<int> tag_dist(0, depth >= 4 ? 4 : 5);
  switch (tag_dist(*rng)) {
    case 0:
      return WireValue::Nil();
    case 1: {
      std::uniform_int_distribution<uint32_t> code((*rng)() % 8, 8);
      return WireValue::Err(code(*rng) % 8, "fuzz error message");
    }
    case 2: {
      std::uniform_int_distribution<size_t> len(0, 64);
      std::string s(len(*rng), '\0');
      for (auto& c : s) c = static_cast<char>((*rng)() & 0xff);
      return WireValue::Str(std::move(s));
    }
    case 3:
      return WireValue::Int(static_cast<int64_t>(
          (static_cast<uint64_t>((*rng)()) << 32) | (*rng)()));
    case 4: {
      std::uniform_real_distribution<double> d(-1e18, 1e18);
      return WireValue::Dbl(d(*rng));
    }
    default: {
      std::uniform_int_distribution<size_t> count(0, 5);
      std::vector<WireValue> elems;
      size_t n = count(*rng);
      elems.reserve(n);
      for (size_t k = 0; k < n; ++k) {
        elems.push_back(RandomValue(rng, depth + 1));
      }
      return WireValue::Arr(std::move(elems));
    }
  }
}

bool WireEq(const WireValue& a, const WireValue& b) {
  if (a.tag != b.tag) return false;
  switch (a.tag) {
    case TAG_NIL:
      return true;
    case TAG_ERR:
      return a.err_code == b.err_code && a.s == b.s;
    case TAG_STR:
      return a.s == b.s;
    case TAG_INT:
      return a.i == b.i;
    case TAG_DBL:
      // Bit-exact: the wire carries IEEE-754 bits, including NaNs.
      return std::memcmp(&a.d, &b.d, sizeof(double)) == 0;
    case TAG_ARR: {
      if (a.elems.size() != b.elems.size()) return false;
      for (size_t k = 0; k < a.elems.size(); ++k) {
        if (!WireEq(a.elems[k], b.elems[k])) return false;
      }
      return true;
    }
    default:
      return false;
  }
}

void PutU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

const uint8_t* Bytes(const std::string& s) {
  return reinterpret_cast<const uint8_t*>(s.data());
}

// ---------------------------------------------------------------------------
// Round-trip property

TEST(ProtocolFuzzTest, EncodeDecodeRoundTrip) {
  std::mt19937 rng(0xC0FFEE);
  for (int iter = 0; iter < 20000; ++iter) {
    WireValue v = RandomValue(&rng, 0);
    std::string frame;
    ASSERT_TRUE(EncodeFrame(v, &frame).ok());

    WireValue back;
    size_t consumed = 0;
    ASSERT_EQ(DecodeFrame(Bytes(frame), frame.size(), &back, &consumed),
              DecodeStatus::kOk);
    EXPECT_EQ(consumed, frame.size());
    EXPECT_TRUE(WireEq(v, back)) << ToString(v) << " != " << ToString(back);
  }
}

TEST(ProtocolFuzzTest, RoundTripSurvivesConcatenation) {
  // Pipelined streams: many frames back to back decode one by one, each
  // reporting its exact length.
  std::mt19937 rng(0xF00D);
  std::string stream;
  std::vector<WireValue> sent;
  for (int k = 0; k < 100; ++k) {
    WireValue v = RandomValue(&rng, 0);
    ASSERT_TRUE(EncodeFrame(v, &stream).ok());
    sent.push_back(std::move(v));
  }
  size_t off = 0;
  for (const auto& want : sent) {
    WireValue got;
    size_t consumed = 0;
    ASSERT_EQ(
        DecodeFrame(Bytes(stream) + off, stream.size() - off, &got, &consumed),
        DecodeStatus::kOk);
    ASSERT_GT(consumed, 0u);
    off += consumed;
    EXPECT_TRUE(WireEq(want, got));
  }
  EXPECT_EQ(off, stream.size());
}

// ---------------------------------------------------------------------------
// Truncation: every proper prefix of a valid frame is kNeedMore, and the
// decoder must not read past the bytes it was given.

TEST(ProtocolFuzzTest, EveryPrefixOfValidFrameNeedsMore) {
  std::mt19937 rng(0xBEEF);
  for (int iter = 0; iter < 500; ++iter) {
    std::string frame;
    ASSERT_TRUE(EncodeFrame(RandomValue(&rng, 0), &frame).ok());
    for (size_t cut = 0; cut < frame.size(); ++cut) {
      WireValue out;
      size_t consumed = 123;
      DecodeStatus st = DecodeFrame(Bytes(frame), cut, &out, &consumed);
      EXPECT_EQ(st, DecodeStatus::kNeedMore)
          << "prefix of " << cut << "/" << frame.size() << " bytes";
      EXPECT_EQ(consumed, 0u);
    }
  }
}

// ---------------------------------------------------------------------------
// Arbitrary garbage never crashes, and kOk never consumes more bytes than
// were offered.

TEST(ProtocolFuzzTest, RandomBytesNeverCrash) {
  std::mt19937 rng(0xDEAD);
  std::uniform_int_distribution<size_t> len_dist(0, 512);
  for (int iter = 0; iter < 100000; ++iter) {
    std::string junk(len_dist(rng), '\0');
    for (auto& c : junk) c = static_cast<char>(rng() & 0xff);
    WireValue out;
    size_t consumed = 0;
    DecodeStatus st = DecodeFrame(Bytes(junk), junk.size(), &out, &consumed);
    if (st == DecodeStatus::kOk) {
      EXPECT_LE(consumed, junk.size());
      EXPECT_GT(consumed, 4u);
    } else {
      EXPECT_EQ(consumed, 0u);
    }
  }
}

TEST(ProtocolFuzzTest, MutatedValidFramesNeverCrash) {
  // Flip bytes inside otherwise-valid frames: decode must still terminate
  // with one of the three statuses and in-bounds consumption.
  std::mt19937 rng(0xFACE);
  for (int iter = 0; iter < 20000; ++iter) {
    std::string frame;
    ASSERT_TRUE(EncodeFrame(RandomValue(&rng, 0), &frame).ok());
    std::uniform_int_distribution<size_t> pos_dist(0, frame.size() - 1);
    for (int flips = 1 + static_cast<int>(rng() % 4); flips > 0; --flips) {
      frame[pos_dist(rng)] = static_cast<char>(rng() & 0xff);
    }
    WireValue out;
    size_t consumed = 0;
    DecodeStatus st = DecodeFrame(Bytes(frame), frame.size(), &out, &consumed);
    if (st == DecodeStatus::kOk) {
      EXPECT_LE(consumed, frame.size());
    } else {
      EXPECT_EQ(consumed, 0u);
    }
  }
}

// ---------------------------------------------------------------------------
// Hostile length prefixes and counts: bounded allocation by construction.

TEST(ProtocolFuzzTest, OversizedLengthPrefixIsError) {
  for (uint32_t body_len : {kMaxFrameLen + 1, 0x7fffffffu, 0xffffffffu}) {
    std::string frame;
    PutU32(&frame, body_len);
    frame.push_back(static_cast<char>(TAG_NIL));
    WireValue out;
    size_t consumed = 0;
    // Even though the body is incomplete, a prefix beyond the cap is an
    // immediate protocol error — a hostile peer cannot make the server
    // buffer 4 GiB waiting for "more".
    EXPECT_EQ(DecodeFrame(Bytes(frame), frame.size(), &out, &consumed),
              DecodeStatus::kError);
  }
}

TEST(ProtocolFuzzTest, ZeroLengthBodyIsError) {
  std::string frame;
  PutU32(&frame, 0);
  WireValue out;
  size_t consumed = 0;
  EXPECT_EQ(DecodeFrame(Bytes(frame), frame.size(), &out, &consumed),
            DecodeStatus::kError);
}

TEST(ProtocolFuzzTest, HugeElementCountIsErrorNotAllocation) {
  // TAG_ARR claiming 2^32-1 elements inside a tiny body must be rejected
  // by the count-vs-remaining-bytes check before any reservation.
  std::string body;
  body.push_back(static_cast<char>(TAG_ARR));
  PutU32(&body, 0xffffffffu);
  std::string frame;
  PutU32(&frame, static_cast<uint32_t>(body.size()));
  frame += body;
  WireValue out;
  size_t consumed = 0;
  EXPECT_EQ(DecodeFrame(Bytes(frame), frame.size(), &out, &consumed),
            DecodeStatus::kError);
}

TEST(ProtocolFuzzTest, HugeStringLengthIsError) {
  std::string body;
  body.push_back(static_cast<char>(TAG_STR));
  PutU32(&body, 0xffffffu);  // claims 16 MiB of payload, provides none
  std::string frame;
  PutU32(&frame, static_cast<uint32_t>(body.size()));
  frame += body;
  WireValue out;
  size_t consumed = 0;
  EXPECT_EQ(DecodeFrame(Bytes(frame), frame.size(), &out, &consumed),
            DecodeStatus::kError);
}

TEST(ProtocolFuzzTest, NestingBeyondMaxDepthIsError) {
  // kMaxDepth nested [ [ [ ... nil ] ] ] decodes; one deeper does not.
  auto nested = [](uint32_t depth) {
    std::string body;
    for (uint32_t k = 0; k < depth; ++k) {
      body.push_back(static_cast<char>(TAG_ARR));
      PutU32(&body, 1);
    }
    body.push_back(static_cast<char>(TAG_NIL));
    std::string frame;
    PutU32(&frame, static_cast<uint32_t>(body.size()));
    frame += body;
    return frame;
  };

  WireValue out;
  size_t consumed = 0;
  std::string ok_frame = nested(kMaxDepth - 1);
  EXPECT_EQ(DecodeFrame(Bytes(ok_frame), ok_frame.size(), &out, &consumed),
            DecodeStatus::kOk);

  std::string deep_frame = nested(kMaxDepth + 1);
  consumed = 0;
  EXPECT_EQ(DecodeFrame(Bytes(deep_frame), deep_frame.size(), &out, &consumed),
            DecodeStatus::kError);
}

TEST(ProtocolFuzzTest, TrailingGarbageInsideFrameIsError) {
  // The body length must be exactly the value's encoding: smuggled extra
  // bytes inside a frame poison the stream instead of desynchronizing it.
  std::string frame;
  ASSERT_TRUE(EncodeFrame(WireValue::Int(7), &frame).ok());
  // Extend the body by one byte and patch the prefix.
  frame.push_back('\0');
  uint32_t body_len = static_cast<uint32_t>(frame.size() - 4);
  frame[0] = static_cast<char>(body_len & 0xff);
  frame[1] = static_cast<char>((body_len >> 8) & 0xff);
  frame[2] = static_cast<char>((body_len >> 16) & 0xff);
  frame[3] = static_cast<char>((body_len >> 24) & 0xff);
  WireValue out;
  size_t consumed = 0;
  EXPECT_EQ(DecodeFrame(Bytes(frame), frame.size(), &out, &consumed),
            DecodeStatus::kError);
}

TEST(ProtocolFuzzTest, UnknownTagIsError) {
  for (uint8_t tag = 6; tag != 0; tag = static_cast<uint8_t>(tag + 50)) {
    std::string body(1, static_cast<char>(tag));
    std::string frame;
    PutU32(&frame, 1);
    frame += body;
    WireValue out;
    size_t consumed = 0;
    EXPECT_EQ(DecodeFrame(Bytes(frame), frame.size(), &out, &consumed),
              DecodeStatus::kError)
        << "tag " << static_cast<int>(tag);
  }
}

TEST(ProtocolFuzzTest, EncodeRejectsOverDeepAndOversize) {
  WireValue deep = WireValue::Nil();
  for (uint32_t k = 0; k < kMaxDepth + 1; ++k) {
    deep = WireValue::Arr({std::move(deep)});
  }
  std::string out;
  EXPECT_FALSE(EncodeFrame(deep, &out).ok());

  WireValue big = WireValue::Str(std::string(kMaxFrameLen + 1, 'x'));
  out.clear();
  EXPECT_FALSE(EncodeFrame(big, &out).ok());
}

TEST(ProtocolFuzzTest, SmallMaxFrameIsHonored) {
  // Tests shrink the decoder bound; a frame legal at the default bound is
  // rejected at the smaller one.
  std::string frame;
  ASSERT_TRUE(EncodeFrame(WireValue::Str(std::string(256, 'a')), &frame).ok());
  WireValue out;
  size_t consumed = 0;
  EXPECT_EQ(
      DecodeFrame(Bytes(frame), frame.size(), &out, &consumed, /*max_frame=*/64),
      DecodeStatus::kError);
}

}  // namespace
}  // namespace tml::server
