// Concurrency surface of the tyd server: several clients pipelining CALLs
// in parallel — across worker VMs and the lock-free published binding
// snapshot — while code is promoted mid-stream, both explicitly (OPTIMIZE
// from a competing session) and by a live AdaptiveManager.  Every reply
// must stay correct and in per-session order through the SwapCode.
//
// The suite name matches the `Concurrent` regex in tools/check.sh so this
// also runs under TSan.

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "adaptive/manager.h"
#include "runtime/universe.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "tests/test_util.h"

namespace tml::server {
namespace {

using adaptive::AdaptiveManager;
using adaptive::AdaptiveOptions;
using rt::Universe;

// The shared hot function (the 3-4-5 complex-modulus exemplar used across
// the bench suite): hyp(3, 4) must always be 5.
std::unique_ptr<store::ObjectStore> OpenStore(const std::string& path = "") {
  auto s = store::ObjectStore::Open(path);
  EXPECT_TRUE(s.ok()) << s.status().ToString();
  return std::move(*s);
}

constexpr const char* kComplexSrc =
    "fun make(x, y) = array(x, y) end\n"
    "fun getx(c) = c[0] end\n"
    "fun gety(c) = c[1] end";
constexpr const char* kAppSrc =
    "fun cabs(c) ="
    "  sqrt(real(getx(c) * getx(c) + gety(c) * gety(c))) "
    "end\n"
    "fun hyp(x, y) = cabs(make(x, y)) end";

std::string UniqueSock(const char* tag) {
  return ::testing::TempDir() + "/tyd_conc_" + tag + ".sock";
}

// One client session hammering `call app hyp 3 4` with a pipeline depth
// of `kDepth`, verifying every reply is exactly 5.0 and in order.
void ClientLoop(const std::string& sock, int rounds, std::atomic<int>* wrong,
                std::atomic<int>* transport_errors) {
  constexpr int kDepth = 16;
  auto conn = Client::ConnectUnix(sock);
  if (!conn.ok()) {
    transport_errors->fetch_add(1);
    return;
  }
  Client c = std::move(*conn);
  WireValue req = WireValue::Arr({WireValue::Str("call"), WireValue::Str("app"),
                                  WireValue::Str("hyp"), WireValue::Int(3),
                                  WireValue::Int(4)});
  for (int round = 0; round < rounds; ++round) {
    for (int k = 0; k < kDepth; ++k) {
      if (!c.Send(req).ok()) {
        transport_errors->fetch_add(1);
        return;
      }
    }
    for (int k = 0; k < kDepth; ++k) {
      auto r = c.Recv();
      if (!r.ok()) {
        transport_errors->fetch_add(1);
        return;
      }
      if (r->tag != TAG_DBL || r->d != 5.0) {
        wrong->fetch_add(1);
      }
    }
  }
}

TEST(ServerConcurrentTest, PipelinedClientsStayCorrectAcrossExplicitSwap) {
  auto store = OpenStore("");
  Universe u(store.get());
  ASSERT_OK(u.InstallStdlib());
  ASSERT_OK(u.InstallSource("complex", kComplexSrc, fe::BindingMode::kLibrary));
  ASSERT_OK(u.InstallSource("app", kAppSrc, fe::BindingMode::kLibrary));

  std::string sock = UniqueSock("swap");
  ServerOptions opts;
  opts.unix_path = sock;
  opts.workers = 4;
  Server server(&u, opts);
  ASSERT_OK(server.Start());

  constexpr int kClients = 4;
  constexpr int kRounds = 30;
  std::atomic<int> wrong{0}, transport_errors{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int k = 0; k < kClients; ++k) {
    clients.emplace_back(ClientLoop, sock, kRounds, &wrong, &transport_errors);
  }

  // Meanwhile a fifth session repeatedly promotes the whole hot path —
  // every OPTIMIZE swaps the published binding under the callers' feet.
  {
    auto conn = Client::ConnectUnix(sock);
    ASSERT_TRUE(conn.ok());
    Client opt = std::move(*conn);
    const char* targets[][2] = {{"app", "hyp"},
                                {"app", "cabs"},
                                {"complex", "getx"},
                                {"complex", "gety"},
                                {"complex", "make"}};
    for (int round = 0; round < 10; ++round) {
      for (const auto& t : targets) {
        auto r = opt.Call({"optimize", t[0], t[1]});
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        // "stale" (lost a generation race) is fine; a wire error is not.
        ASSERT_FALSE(r->is_err()) << ToString(*r);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  for (auto& t : clients) t.join();
  EXPECT_EQ(wrong.load(), 0);
  EXPECT_EQ(transport_errors.load(), 0);

  server.Stop();
  server.Join();
}

TEST(ServerConcurrentTest, AdaptiveManagerPromotesUnderLiveTraffic) {
  auto store = OpenStore("");
  Universe u(store.get());
  ASSERT_OK(u.InstallStdlib());
  ASSERT_OK(u.InstallSource("complex", kComplexSrc, fe::BindingMode::kLibrary));
  ASSERT_OK(u.InstallSource("app", kAppSrc, fe::BindingMode::kLibrary));

  // Aggressive policy so promotion reliably fires inside the test window.
  AdaptiveOptions aopts;
  aopts.policy.hot_steps = 200;
  aopts.policy.min_calls = 2;
  aopts.policy.decay = 1.0;
  aopts.poll_interval = std::chrono::milliseconds(5);
  auto manager = std::make_unique<AdaptiveManager>(&u, aopts);
  manager->Start();
  u.AdoptService(std::move(manager));

  std::string sock = UniqueSock("adaptive");
  ServerOptions opts;
  opts.unix_path = sock;
  opts.workers = 4;
  Server server(&u, opts);
  ASSERT_OK(server.Start());

  uint64_t gen_before = u.binding_generation();

  constexpr int kClients = 4;
  constexpr int kRounds = 40;
  std::atomic<int> wrong{0}, transport_errors{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int k = 0; k < kClients; ++k) {
    clients.emplace_back(ClientLoop, sock, kRounds, &wrong, &transport_errors);
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(wrong.load(), 0);
  EXPECT_EQ(transport_errors.load(), 0);
  // The manager saw the traffic (worker-VM profiles aggregate into the
  // universe) and promoted at least one closure mid-stream.
  EXPECT_GT(u.adaptive_counters().promotions, 0u)
      << "adaptive manager never promoted during traffic";
  EXPECT_GT(u.binding_generation(), gen_before);

  server.Stop();
  server.Join();  // also stops the adopted manager and commits
}

TEST(ServerConcurrentTest, ManySessionsInstallDistinctModules) {
  // Cross-session write traffic: installs from parallel sessions contend
  // on the universe writer lock but never corrupt the binding snapshot.
  auto store = OpenStore("");
  Universe u(store.get());
  ASSERT_OK(u.InstallStdlib());

  std::string sock = UniqueSock("install");
  ServerOptions opts;
  opts.unix_path = sock;
  opts.workers = 4;
  Server server(&u, opts);
  ASSERT_OK(server.Start());

  constexpr int kClients = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int k = 0; k < kClients; ++k) {
    clients.emplace_back([&sock, k, &failures] {
      auto conn = Client::ConnectUnix(sock);
      if (!conn.ok()) {
        failures.fetch_add(1);
        return;
      }
      Client c = std::move(*conn);
      std::string mod = "mod" + std::to_string(k);
      std::string src = "fun f(x) = x + " + std::to_string(k) + " end";
      auto inst = c.Call({"install", mod, src});
      if (!inst.ok() || inst->is_err()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < 50; ++i) {
        auto r = c.Call(WireValue::Arr({WireValue::Str("call"),
                                        WireValue::Str(mod),
                                        WireValue::Str("f"),
                                        WireValue::Int(i)}));
        if (!r.ok() || r->tag != TAG_INT || r->i != i + k) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);

  server.Stop();
  server.Join();
}

}  // namespace
}  // namespace tml::server
