// Chaos soak (ISSUE 10 acceptance): a disk-backed tyd server under
// concurrent hostile clients — budget kills, OOM allocations, deadline
// kills, garbage bytes, abandoned pipelines — with FaultNet chopping and
// EAGAIN-storming every socket op, then a SIGTERM-style Stop() mid-load.
// The store must reopen with a zero salvage report (graceful drain means
// no salvage, ever), every frame any client decoded must be well-formed,
// and a restarted server over the same store must serve immediately.
//
// The suite name contains "Concurrent" so the --tsan sweep runs it.
// TYCOON_CHAOS_SECONDS lengthens the soak (default is CI-short).

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/universe.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "support/net.h"
#include "tests/test_util.h"

namespace tml::server {
namespace {

using rt::Universe;

/// splitmix64: per-thread deterministic op schedule.
uint64_t Mix(uint64_t a, uint64_t b) {
  uint64_t z = a * 0x9E3779B97F4A7C15ull + b;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t SoakMillis() {
  const char* env = std::getenv("TYCOON_CHAOS_SECONDS");
  if (env != nullptr && *env != '\0') {
    uint64_t secs = std::strtoull(env, nullptr, 10);
    if (secs > 0) return secs * 1000;
  }
  return 1500;  // CI-short default
}

struct SoakStats {
  std::atomic<uint64_t> ok{0};             ///< non-ERR replies
  std::atomic<uint64_t> err_frames{0};     ///< clean ERR_* replies
  std::atomic<uint64_t> transport{0};      ///< connect/IO failures (fine)
  std::atomic<uint64_t> torn_frames{0};    ///< decode Corruption (MUST be 0)
  std::atomic<uint64_t> unknown_errs{0};   ///< ERR code outside the enum
};

bool KnownErrCode(uint32_t code) {
  switch (code) {
    case ERR_TOO_BIG:
    case ERR_BAD_ARG:
    case ERR_UNKNOWN:
    case ERR_NOT_FOUND:
    case ERR_RUNTIME:
    case ERR_BUDGET:
    case ERR_RAISED:
    case ERR_SHUTDOWN:
    case ERR_OOM:
    case ERR_DEADLINE:
    case ERR_OVERLOAD:
      return true;
    default:
      return false;
  }
}

/// One hostile client thread: a deterministic mix of well-behaved and
/// abusive traffic until `stop` flips.
void HostileClient(const std::string& sock, uint64_t seed,
                   std::atomic<bool>* stop, SoakStats* stats) {
  uint64_t op = 0;
  while (!stop->load(std::memory_order_acquire)) {
    auto c = Client::ConnectUnix(sock);
    if (!c.ok()) {
      // Shed at accept, listener mid-shutdown, backlog full: all fine.
      stats->transport.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      continue;
    }
    // A handful of ops per connection, then churn the session.
    int per_conn = 1 + static_cast<int>(Mix(seed, op) % 6);
    for (int k = 0; k < per_conn && !stop->load(std::memory_order_acquire);
         ++k, ++op) {
      uint64_t dice = Mix(seed, op) % 10;
      Result<WireValue> r = WireValue::Nil();
      switch (dice) {
        case 0:  // plain liveness
          r = c->Call({"PING"});
          break;
        case 1:  // honest work
        case 2:
          r = c->Call(WireValue::Arr(
              {WireValue::Str("CALL"), WireValue::Str("m"),
               WireValue::Str("double"),
               WireValue::Int(static_cast<int64_t>(op % 1000))}));
          break;
        case 3: {  // budget kill
          (void)c->Call(WireValue::Arr(
              {WireValue::Str("BUDGET"), WireValue::Int(200'000)}));
          r = c->Call(WireValue::Arr({WireValue::Str("CALL"),
                                      WireValue::Str("s"),
                                      WireValue::Str("spin"),
                                      WireValue::Int(0)}));
          break;
        }
        case 4: {  // OOM kill
          (void)c->Call(WireValue::Arr({WireValue::Str("BUDGET"),
                                        WireValue::Str("MEM"),
                                        WireValue::Int(256 * 1024)}));
          r = c->Call(WireValue::Arr({WireValue::Str("CALL"),
                                      WireValue::Str("a"),
                                      WireValue::Str("alloc"),
                                      WireValue::Int(10'000'000)}));
          break;
        }
        case 5: {  // deadline kill (steps unlimited)
          (void)c->Call(WireValue::Arr(
              {WireValue::Str("BUDGET"), WireValue::Int(0)}));
          (void)c->Call(WireValue::Arr(
              {WireValue::Str("DEADLINE"), WireValue::Int(20)}));
          r = c->Call(WireValue::Arr({WireValue::Str("CALL"),
                                      WireValue::Str("s"),
                                      WireValue::Str("spin"),
                                      WireValue::Int(0)}));
          break;
        }
        case 6: {  // store mutation under chaos
          std::string mod = "chaos_" + std::to_string(seed % 7);
          r = c->Call({"INSTALL", mod, "fun id(x) = x end"});
          break;
        }
        case 7: {  // garbage bytes, then vanish
          uint8_t junk[16];
          for (size_t j = 0; j < sizeof junk; ++j) {
            junk[j] = static_cast<uint8_t>(Mix(op, j));
          }
          (void)send(c->fd(), junk, sizeof junk, MSG_NOSIGNAL);
          c->Close();
          k = per_conn;  // next connection
          break;
        }
        case 8: {  // abandoned pipeline: requests in flight, peer dies
          for (int q = 0; q < 4; ++q) {
            (void)c->Send(WireValue::Arr(
                {WireValue::Str("CALL"), WireValue::Str("m"),
                 WireValue::Str("double"), WireValue::Int(q)}));
          }
          c->Close();
          k = per_conn;
          break;
        }
        default:  // read-side load
          r = c->Call({"STATS"});
          break;
      }
      if (dice == 7 || dice == 8) continue;
      if (!r.ok()) {
        if (r.status().code() == StatusCode::kCorruption) {
          stats->torn_frames.fetch_add(1, std::memory_order_relaxed);
        } else {
          stats->transport.fetch_add(1, std::memory_order_relaxed);
        }
        break;  // dead socket: reconnect
      }
      if (r->is_err()) {
        stats->err_frames.fetch_add(1, std::memory_order_relaxed);
        if (!KnownErrCode(r->err_code)) {
          stats->unknown_errs.fetch_add(1, std::memory_order_relaxed);
        }
      } else {
        stats->ok.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
}

class ChaosConcurrentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_path_ = ::testing::TempDir() + "/tyd_chaos_" +
               std::to_string(reinterpret_cast<uintptr_t>(this)) + ".db";
    sock_path_ = ::testing::TempDir() + "/tyd_chaos_" +
                 std::to_string(reinterpret_cast<uintptr_t>(this)) + ".sock";
    std::remove(db_path_.c_str());
  }
  void TearDown() override { std::remove(db_path_.c_str()); }

  std::string db_path_;
  std::string sock_path_;
};

TEST_F(ChaosConcurrentTest, SoakThenSigtermLeavesACleanStore) {
  SoakStats stats;
  const uint64_t soak_ms = SoakMillis();

  // Every server-side socket op goes through a fault schedule: chopped
  // to at most 9 bytes, with a spurious EAGAIN every 13th op.
  FaultNet::Options fo;
  fo.short_io = 9;
  fo.eagain_every = 13;
  fo.seed = 0xC4A05;
  FaultNet fnet(fo);

  // Phase 1: serve hostile traffic, then Stop() mid-load (tyd's SIGTERM
  // handler calls exactly this).
  {
    auto s = store::ObjectStore::Open(db_path_);
    ASSERT_TRUE(s.ok()) << s.status().ToString();
    Universe u(s->get());
    ASSERT_OK(u.InstallStdlib());
    ASSERT_OK(u.InstallSource("m", "fun double(x) = x + x end",
                              fe::BindingMode::kLibrary));
    ASSERT_OK(u.InstallSource("s", "fun spin(n) = spin(n + 1) end",
                              fe::BindingMode::kLibrary));
    ASSERT_OK(u.InstallSource("a", "fun alloc(n) = size(newarray(n, 0)) end",
                              fe::BindingMode::kLibrary));

    ServerOptions o;
    o.unix_path = sock_path_;
    o.net = &fnet;
    o.max_sessions = 32;
    o.max_queued_batches = 4;
    o.max_session_buffer = 64 * 1024;
    o.default_step_budget = 5'000'000;
    o.default_deadline_ms = 2'000;
    o.read_timeout_ms = 1'000;
    Server server(&u, o);
    ASSERT_OK(server.Start());

    std::atomic<bool> stop{false};
    std::vector<std::thread> clients;
    for (uint64_t t = 0; t < 4; ++t) {
      clients.emplace_back(HostileClient, sock_path_, t + 1, &stop, &stats);
    }

    // Stop the server while the clients are still firing — the SIGTERM
    // case.  Only then tell the clients to wind down.
    std::this_thread::sleep_for(std::chrono::milliseconds(soak_ms));
    server.Stop();
    server.Join();
    stop.store(true, std::memory_order_release);
    for (auto& th : clients) th.join();
  }

  // The soak must have exercised both the happy path and the error paths,
  // with zero torn frames and no error code outside the protocol enum.
  EXPECT_GT(stats.ok.load(), 0u);
  EXPECT_GT(stats.err_frames.load(), 0u);
  EXPECT_EQ(stats.torn_frames.load(), 0u)
      << "a client decoded a torn/corrupt frame during the soak";
  EXPECT_EQ(stats.unknown_errs.load(), 0u);
  EXPECT_GT(fnet.faults_injected(), 0u) << "FaultNet never fired: the soak "
                                           "did not actually test the seam";

  // Phase 2: the store reopens with salvage *allowed* but *unneeded* — a
  // graceful drain commits; it never leans on recovery.
  {
    store::OpenOptions oo;
    oo.recovery = store::RecoveryPolicy::kSalvage;
    auto s = store::ObjectStore::Open(db_path_, oo);
    ASSERT_TRUE(s.ok()) << s.status().ToString();
    const store::SalvageReport& rep = (*s)->salvage_report();
    EXPECT_FALSE(rep.salvaged);
    EXPECT_FALSE(rep.header_rebuilt);
    EXPECT_EQ(rep.quarantined_records, 0u);
    EXPECT_EQ(rep.truncated_bytes, 0u);

    // Phase 3: a restarted server over the same store serves immediately.
    Universe u(s->get());
    ASSERT_OK(u.LoadPersistedModules());
    ServerOptions o;
    o.unix_path = sock_path_;
    Server server(&u, o);
    ASSERT_OK(server.Start());
    auto c = Client::ConnectUnix(sock_path_);
    ASSERT_TRUE(c.ok()) << c.status().ToString();
    auto r = c->Call(WireValue::Arr({WireValue::Str("CALL"),
                                     WireValue::Str("m"),
                                     WireValue::Str("double"),
                                     WireValue::Int(21)}));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_FALSE(r->is_err()) << r->s;
    EXPECT_EQ(r->i, 42);
    server.Stop();
    server.Join();
  }
}

}  // namespace
}  // namespace tml::server
