// The server's observability surface end to end (DESIGN.md §11): the
// OBSERVE / PROFILE / METRICS wire commands, STATS SLOW and the
// slow-request log, the budget-kill incident auto-dump, and the embedded
// metrics HTTP listener (routing and a real socket round-trip).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "adaptive/sampler.h"
#include "runtime/universe.h"
#include "server/client.h"
#include "server/metrics_http.h"
#include "server/protocol.h"
#include "server/server.h"
#include "telemetry/flight.h"
#include "telemetry/metrics.h"
#include "tests/test_util.h"

namespace tml::server {
namespace {

using rt::Universe;

constexpr const char* kMathSrc = "fun double(x) = x + x end";
// Unbounded recursion: only a step budget stops it.
constexpr const char* kSpinSrc = "fun spin(n) = spin(n + 1) end";

std::unique_ptr<store::ObjectStore> OpenStore() {
  auto s = store::ObjectStore::Open("");
  EXPECT_TRUE(s.ok()) << s.status().ToString();
  return std::move(*s);
}

std::string UniqueSock(const void* self) {
  return ::testing::TempDir() + "/tyd_obs_" +
         std::to_string(reinterpret_cast<uintptr_t>(self)) + ".sock";
}

class ObserveTest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions opts = {}) {
    store_ = OpenStore();
    universe_ = std::make_unique<Universe>(store_.get());
    ASSERT_OK(universe_->InstallStdlib());
    opts_ = std::move(opts);
    if (opts_.unix_path.empty()) opts_.unix_path = UniqueSock(this);
    server_ = std::make_unique<Server>(universe_.get(), opts_);
    ASSERT_OK(server_->Start());
  }

  void TearDown() override {
    if (server_ != nullptr) {
      server_->Stop();
      server_->Join();
    }
    // Never leave an auto-dump directory armed for later tests.
    telemetry::FlightRecorder::Global().SetAutoDumpDir("");
  }

  Client Connect() {
    auto c = Client::ConnectUnix(opts_.unix_path);
    EXPECT_TRUE(c.ok()) << c.status().ToString();
    return std::move(*c);
  }

  std::unique_ptr<store::ObjectStore> store_;
  std::unique_ptr<Universe> universe_;
  std::unique_ptr<Server> server_;
  ServerOptions opts_;
};

TEST_F(ObserveTest, ObserveDumpsChromeTraceJson) {
  StartServer();
  Client c = Connect();
  ASSERT_OK(c.Call({"install", "m", kMathSrc}).status());
  auto r = c.Call(WireValue::Arr({WireValue::Str("call"), WireValue::Str("m"),
                                  WireValue::Str("double"),
                                  WireValue::Int(21)}));
  ASSERT_OK(r.status());

  auto dump = c.Call({"observe"});
  ASSERT_OK(dump.status());
  ASSERT_TRUE(dump->is_str()) << dump->s;
  EXPECT_NE(dump->s.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(dump->s.find("\"overwritten\""), std::string::npos);

  // Windowed variant: a huge window still includes the CALL span.
  auto windowed = c.Call(
      WireValue::Arr({WireValue::Str("observe"), WireValue::Int(3600)}));
  ASSERT_OK(windowed.status());
  ASSERT_TRUE(windowed->is_str());
  EXPECT_NE(windowed->s.find("\"traceEvents\""), std::string::npos);

  // Garbage argument is a client error, not a crash.
  auto bad = c.Call({"observe", "soon"});
  ASSERT_OK(bad.status());
  EXPECT_TRUE(bad->is_err());
}

TEST_F(ObserveTest, ProfileCommandReflectsSamplerState) {
  StartServer();
  Client c = Connect();
  // No sampler attached: the provider seam serves the empty object.
  auto empty = c.Call({"profile"});
  ASSERT_OK(empty.status());
  ASSERT_TRUE(empty->is_str());
  EXPECT_EQ(empty->s, "{}");

  adaptive::VmSampler* sampler = adaptive::EnableSampler(universe_.get());
  sampler->SampleOnce();
  auto prof = c.Call({"profile"});
  ASSERT_OK(prof.status());
  ASSERT_TRUE(prof->is_str());
  EXPECT_NE(prof->s.find("total_samples"), std::string::npos) << prof->s;
  EXPECT_NE(prof->s.find("functions"), std::string::npos) << prof->s;
}

TEST_F(ObserveTest, MetricsCommandRendersAllFormats) {
  StartServer();
  Client c = Connect();
  ASSERT_OK(c.Call({"ping"}).status());

  // Default: Prometheus 0.0.4 exposition with server counters present.
  auto prom = c.Call({"metrics"});
  ASSERT_OK(prom.status());
  ASSERT_TRUE(prom->is_str());
  EXPECT_NE(prom->s.find("# TYPE tml_server_requests counter"),
            std::string::npos)
      << prom->s.substr(0, 400);
  EXPECT_NE(prom->s.find("tml_server_request_us_bucket"), std::string::npos);
  // The per-command latency family carries cmd labels.
  EXPECT_NE(prom->s.find("cmd=\"PING\""), std::string::npos);
  // Observability gauges are refreshed into the scrape.
  EXPECT_NE(prom->s.find("tml_flight_rings"), std::string::npos);

  auto text = c.Call({"metrics", "text"});
  ASSERT_OK(text.status());
  ASSERT_TRUE(text->is_str());
  EXPECT_NE(text->s.find("tml.server.requests"), std::string::npos);

  auto json = c.Call({"metrics", "json"});
  ASSERT_OK(json.status());
  ASSERT_TRUE(json->is_str());
  EXPECT_NE(json->s.find("\"tml.server.requests\""), std::string::npos);

  auto bad = c.Call({"metrics", "xml"});
  ASSERT_OK(bad.status());
  EXPECT_TRUE(bad->is_err());
}

TEST_F(ObserveTest, StatsSlowSurfacesSlowRequests) {
  ServerOptions opts;
  opts.slow_request_us = 1;  // every request is a worst offender
  opts.slow_log_size = 4;
  StartServer(std::move(opts));
  Client c = Connect();
  ASSERT_OK(c.Call({"install", "m", kMathSrc}).status());
  for (int k = 0; k < 8; ++k) {
    auto r = c.Call(WireValue::Arr({WireValue::Str("call"), WireValue::Str("m"),
                                    WireValue::Str("double"),
                                    WireValue::Int(7)}));
    ASSERT_OK(r.status());
    ASSERT_FALSE(r->is_err()) << r->s;
  }

  auto slow = c.Call({"stats", "slow"});
  ASSERT_OK(slow.status());
  ASSERT_TRUE(slow->is_str());
  EXPECT_NE(slow->s.find("\"cmd\":\"CALL\""), std::string::npos) << slow->s;
  EXPECT_NE(slow->s.find("\"us\":"), std::string::npos);

  // The log is bounded at slow_log_size entries.
  size_t entries = 0;
  for (size_t pos = 0; (pos = slow->s.find("\"cmd\"", pos)) != std::string::npos;
       ++pos) {
    ++entries;
  }
  EXPECT_LE(entries, 4u);
  EXPECT_GE(entries, 1u);

  // Plain STATS still answers (the pre-existing shape).
  auto stats = c.Call({"stats"});
  ASSERT_OK(stats.status());
  ASSERT_TRUE(stats->is_str());
}

TEST_F(ObserveTest, BudgetKillWritesIncidentAutoDump) {
  StartServer();
  std::string dir = ::testing::TempDir() + "/observe_dumps";
  ::mkdir(dir.c_str(), 0755);
  auto& fr = telemetry::FlightRecorder::Global();
  fr.set_enabled(true);
  fr.SetAutoDumpDir(dir, /*max_dumps=*/8);
  uint64_t dumps_before = fr.auto_dumps_written();
  uint64_t incidents_before = telemetry::Registry::Global().CounterValue(
      "tml.flight.incidents{reason=budget_kill}");

  Client c = Connect();
  ASSERT_OK(c.Call({"install", "m", kSpinSrc}).status());
  auto b = c.Call(
      WireValue::Arr({WireValue::Str("budget"), WireValue::Int(50'000)}));
  ASSERT_OK(b.status());
  ASSERT_FALSE(b->is_err()) << b->s;
  auto r = c.Call(WireValue::Arr({WireValue::Str("call"), WireValue::Str("m"),
                                  WireValue::Str("spin"), WireValue::Int(0)}));
  ASSERT_OK(r.status());
  ASSERT_TRUE(r->is_err());
  EXPECT_EQ(r->err_code, ERR_BUDGET);

  // The kill is an incident: counted, and auto-dumped to the armed dir.
  EXPECT_GE(telemetry::Registry::Global().CounterValue(
                "tml.flight.incidents{reason=budget_kill}"),
            incidents_before + 1);
  EXPECT_GE(fr.auto_dumps_written(), dumps_before + 1);
  std::string path = fr.last_auto_dump_path();
  EXPECT_NE(path.find("flight-budget_kill-"), std::string::npos) << path;
  FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr) << path;
  std::fclose(f);
  fr.SetAutoDumpDir("");

  // The session survives the kill.
  auto reset = c.Call(
      WireValue::Arr({WireValue::Str("budget"), WireValue::Int(0)}));
  ASSERT_OK(reset.status());
  auto ok = c.Call({"ping"});
  ASSERT_OK(ok.status());
}

TEST_F(ObserveTest, MetricsHttpRouting) {
  StartServer();
  Client c = Connect();
  ASSERT_OK(c.Call({"ping"}).status());
  MetricsHttpServer http(universe_.get(), server_.get());

  std::string health = http.Respond("/healthz");
  EXPECT_NE(health.find("200"), std::string::npos);
  EXPECT_NE(health.find("ok"), std::string::npos);

  std::string metrics = http.Respond("/metrics");
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("# TYPE tml_server_requests counter"),
            std::string::npos);

  std::string profile = http.Respond("/profile");
  EXPECT_NE(profile.find("200"), std::string::npos);
  EXPECT_NE(profile.find("{}"), std::string::npos);  // no sampler attached

  std::string flight = http.Respond("/flight");
  EXPECT_NE(flight.find("traceEvents"), std::string::npos);
  std::string windowed = http.Respond("/flight?window=60");
  EXPECT_NE(windowed.find("traceEvents"), std::string::npos);

  std::string slow = http.Respond("/slow");
  EXPECT_NE(slow.find("200"), std::string::npos);

  std::string missing = http.Respond("/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);
}

TEST_F(ObserveTest, MetricsHttpServesRealSockets) {
  StartServer();
  MetricsHttpServer http(universe_.get(), server_.get());
  ASSERT_OK(http.Start("127.0.0.1", 0));
  ASSERT_GT(http.port(), 0);

  auto get = [&](const std::string& path) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(http.port()));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
              0)
        << strerror(errno);
    std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
    EXPECT_EQ(::send(fd, req.data(), req.size(), 0),
              static_cast<ssize_t>(req.size()));
    std::string out;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) {
      out.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return out;
  };

  std::string health = get("/healthz");
  EXPECT_NE(health.find("HTTP/1.0 200"), std::string::npos) << health;
  EXPECT_NE(health.find("ok"), std::string::npos);

  std::string metrics = get("/metrics");
  EXPECT_NE(metrics.find("# TYPE"), std::string::npos);

  http.Stop();
  http.Stop();  // idempotent
}

TEST_F(ObserveTest, MetricsHttpSurvivesAStallingScraper) {
  StartServer();
  MetricsHttpServer http(universe_.get(), server_.get());
  ASSERT_OK(http.Start("127.0.0.1", 0));
  ASSERT_GT(http.port(), 0);

  auto dial = [&] {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(http.port()));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
              0)
        << strerror(errno);
    return fd;
  };

  // A slowloris scraper: one byte of a request, then silence.  The
  // single-threaded listener must cut it at the overall 2s deadline
  // instead of waiting on it forever (or, worse, being trickled one byte
  // every 1.9s indefinitely).
  int stall_fd = dial();
  ASSERT_EQ(::send(stall_fd, "G", 1, MSG_NOSIGNAL), 1);

  // Meanwhile a well-behaved scrape queued behind it must still complete
  // in bounded time: listener wedge would make this hang past the bound.
  auto t0 = std::chrono::steady_clock::now();
  int good_fd = dial();
  std::string req = "GET /healthz HTTP/1.0\r\n\r\n";
  ASSERT_EQ(::send(good_fd, req.data(), req.size(), 0),
            static_cast<ssize_t>(req.size()));
  std::string out;
  char buf[1024];
  ssize_t n;
  while ((n = ::recv(good_fd, buf, sizeof buf, 0)) > 0) {
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(good_fd);
  auto waited = std::chrono::duration_cast<std::chrono::seconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_NE(out.find("HTTP/1.0 200"), std::string::npos) << out;
  EXPECT_LT(waited.count(), 10) << "listener wedged behind a stalled scraper";

  ::close(stall_fd);
  http.Stop();
}

}  // namespace
}  // namespace tml::server
