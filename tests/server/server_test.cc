// End-to-end tests for the tyd server (server/server.h): command
// round-trips over a real Unix socket, pipelining order, the per-session
// step budget (and its Universe/VM substrate), protocol-violation
// handling, the poll(2) fallback loop, and graceful shutdown with store
// commit.

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/universe.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "tests/test_util.h"

namespace tml::server {
namespace {

using rt::Universe;
using vm::Value;

std::unique_ptr<store::ObjectStore> OpenStore(const std::string& path = "") {
  auto s = store::ObjectStore::Open(path);
  EXPECT_TRUE(s.ok()) << s.status().ToString();
  return std::move(*s);
}

constexpr const char* kMathSrc =
    "fun double(x) = x + x end\n"
    "fun fact(n) = if n <= 1 then 1 else n * fact(n - 1) end end";
// Unbounded recursion: only a step budget stops it.
constexpr const char* kSpinSrc = "fun spin(n) = spin(n + 1) end";

std::string UniqueSock(const void* self) {
  return ::testing::TempDir() + "/tyd_" +
         std::to_string(reinterpret_cast<uintptr_t>(self)) + ".sock";
}

class ServerTest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions opts) {
    store_ = OpenStore("");
    universe_ = std::make_unique<Universe>(store_.get());
    ASSERT_OK(universe_->InstallStdlib());
    opts_ = std::move(opts);
    if (opts_.unix_path.empty() && opts_.tcp_port < 0) {
      opts_.unix_path = UniqueSock(this);
    }
    server_ = std::make_unique<Server>(universe_.get(), opts_);
    ASSERT_OK(server_->Start());
  }

  void TearDown() override {
    if (server_ != nullptr) {
      server_->Stop();
      server_->Join();
    }
  }

  Client Connect() {
    auto c = Client::ConnectUnix(opts_.unix_path);
    EXPECT_TRUE(c.ok()) << c.status().ToString();
    return std::move(*c);
  }

  std::unique_ptr<store::ObjectStore> store_;
  std::unique_ptr<Universe> universe_;
  std::unique_ptr<Server> server_;
  ServerOptions opts_;
};

// ---------------------------------------------------------------------------
// The budget substrate: Universe::Call's budgeted overload (the fix this
// server depends on — previously a hostile CALL could spin the VM forever).

TEST(StepBudgetTest, UniverseCallAbortsWithOutOfRange) {
  auto store = OpenStore("");
  Universe u(store.get());
  ASSERT_OK(u.InstallSource("m", kSpinSrc, fe::BindingMode::kLibrary));
  auto spin = u.Lookup("m", "spin");
  ASSERT_TRUE(spin.ok());

  Value args[] = {Value::Int(0)};
  auto r = u.Call(*spin, args, /*step_budget=*/10'000);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange)
      << r.status().ToString();

  // The VM survives budget exhaustion: a normal call still works, and a
  // budget of 0 means unlimited.
  ASSERT_OK(u.InstallSource("n", kMathSrc, fe::BindingMode::kLibrary));
  auto fact = u.Lookup("n", "fact");
  ASSERT_TRUE(fact.ok());
  Value fargs[] = {Value::Int(10)};
  auto ok = u.Call(*fact, fargs, /*step_budget=*/0);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->value.i, 3628800);
}

TEST(StepBudgetTest, BudgetIsPerRunNotCumulative) {
  auto store = OpenStore("");
  Universe u(store.get());
  ASSERT_OK(u.InstallSource("n", kMathSrc, fe::BindingMode::kLibrary));
  auto fact = u.Lookup("n", "fact");
  ASSERT_TRUE(fact.ok());
  Value args[] = {Value::Int(12)};
  // Each run re-arms the deadline: many calls under the same budget all
  // succeed even though their total steps exceed it.
  for (int k = 0; k < 50; ++k) {
    auto r = u.Call(*fact, args, /*step_budget=*/100'000);
    ASSERT_TRUE(r.ok()) << "iteration " << k << ": " << r.status().ToString();
    EXPECT_EQ(r->value.i, 479001600);
  }
}

// ---------------------------------------------------------------------------
// Command round-trips

TEST_F(ServerTest, PingAndUnknownCommand) {
  StartServer({});
  Client c = Connect();
  auto pong = c.Call({"ping"});
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(pong->tag, TAG_STR);
  EXPECT_EQ(pong->s, "PONG");

  auto unknown = c.Call({"frobnicate"});
  ASSERT_TRUE(unknown.ok());
  ASSERT_TRUE(unknown->is_err());
  EXPECT_EQ(unknown->err_code, ERR_UNKNOWN);
}

TEST_F(ServerTest, InstallCallLookupOptimize) {
  StartServer({});
  Client c = Connect();
  auto ok = c.Call({"install", "m", kMathSrc});
  ASSERT_TRUE(ok.ok());
  ASSERT_FALSE(ok->is_err()) << ToString(*ok);

  auto r = c.Call(WireValue::Arr({WireValue::Str("call"), WireValue::Str("m"),
                                  WireValue::Str("double"),
                                  WireValue::Int(21)}));
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->tag, TAG_INT) << ToString(*r);
  EXPECT_EQ(r->i, 42);

  auto oid = c.Call({"lookup", "m", "double"});
  ASSERT_TRUE(oid.ok());
  ASSERT_EQ(oid->tag, TAG_INT) << ToString(*oid);

  auto opt = c.Call({"optimize", "m", "double"});
  ASSERT_TRUE(opt.ok());
  ASSERT_EQ(opt->tag, TAG_ARR) << ToString(*opt);
  ASSERT_EQ(opt->elems.size(), 2u);
  EXPECT_EQ(opt->elems[1].s, "swapped");

  // Same answer from the promoted code, and CALLOID hits it directly.
  r = c.Call(WireValue::Arr({WireValue::Str("call"), WireValue::Str("m"),
                             WireValue::Str("double"), WireValue::Int(21)}));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->i, 42);
  auto r2 = c.Call(WireValue::Arr({WireValue::Str("calloid"),
                                   WireValue::Int(opt->elems[0].i),
                                   WireValue::Int(-8)}));
  ASSERT_TRUE(r2.ok());
  ASSERT_EQ(r2->tag, TAG_INT) << ToString(*r2);
  EXPECT_EQ(r2->i, -16);
}

TEST_F(ServerTest, CallErrorsMapToWireCodes) {
  StartServer({});
  Client c = Connect();
  auto nf = c.Call({"call", "nope", "f"});
  ASSERT_TRUE(nf.ok());
  ASSERT_TRUE(nf->is_err());
  EXPECT_EQ(nf->err_code, ERR_NOT_FOUND);

  auto bad = c.Call({"install", "only-a-name"});
  ASSERT_TRUE(bad.ok());
  ASSERT_TRUE(bad->is_err());
  EXPECT_EQ(bad->err_code, ERR_BAD_ARG);

  // An uncaught TML throw arrives as ERR_RAISED, not a dead connection.
  auto ok = c.Call({"install", "boom", "fun go(x) = throw 42 end"});
  ASSERT_TRUE(ok.ok());
  ASSERT_FALSE(ok->is_err()) << ToString(*ok);
  auto raised = c.Call(WireValue::Arr({WireValue::Str("call"),
                                       WireValue::Str("boom"),
                                       WireValue::Str("go"),
                                       WireValue::Int(1)}));
  ASSERT_TRUE(raised.ok());
  ASSERT_TRUE(raised->is_err()) << ToString(*raised);
  EXPECT_EQ(raised->err_code, ERR_RAISED);
}

TEST_F(ServerTest, SessionBudgetStopsRunawayCall) {
  StartServer({});
  Client c = Connect();
  ASSERT_FALSE(c.Call({"install", "s", kSpinSrc})->is_err());

  auto ok = c.Call(
      WireValue::Arr({WireValue::Str("budget"), WireValue::Int(20'000)}));
  ASSERT_TRUE(ok.ok());
  ASSERT_FALSE(ok->is_err());

  auto r = c.Call(WireValue::Arr({WireValue::Str("call"), WireValue::Str("s"),
                                  WireValue::Str("spin"), WireValue::Int(0)}));
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->is_err()) << ToString(*r);
  EXPECT_EQ(r->err_code, ERR_BUDGET);

  // The session (and its worker VM) survive; later calls still run.
  ASSERT_FALSE(c.Call({"install", "m", kMathSrc})->is_err());
  auto good = c.Call(WireValue::Arr({WireValue::Str("call"),
                                     WireValue::Str("m"),
                                     WireValue::Str("double"),
                                     WireValue::Int(5)}));
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good->i, 10);
}

TEST_F(ServerTest, StatsReportsServerMetrics) {
  StartServer({});
  Client c = Connect();
  ASSERT_EQ(c.Call({"ping"})->s, "PONG");
  auto stats = c.Call({"stats"});
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->tag, TAG_STR) << ToString(*stats);
  EXPECT_NE(stats->s.find("tml.server.requests"), std::string::npos)
      << stats->s;
}

// ---------------------------------------------------------------------------
// Pipelining

TEST_F(ServerTest, PipelinedRequestsAnswerInOrder) {
  StartServer({});
  Client c = Connect();
  ASSERT_FALSE(c.Call({"install", "m", kMathSrc})->is_err());

  constexpr int kN = 200;
  for (int k = 0; k < kN; ++k) {
    ASSERT_OK(c.Send(
        WireValue::Arr({WireValue::Str("call"), WireValue::Str("m"),
                        WireValue::Str("double"), WireValue::Int(k)})));
  }
  for (int k = 0; k < kN; ++k) {
    auto r = c.Recv();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ(r->tag, TAG_INT) << "reply " << k << ": " << ToString(*r);
    EXPECT_EQ(r->i, 2 * k);
  }
}

TEST_F(ServerTest, PipelinedInstallThenCallSeesTheInstall) {
  // Program order within a session: a CALL pipelined behind the INSTALL
  // of its own module must succeed.
  StartServer({});
  Client c = Connect();
  ASSERT_OK(c.Send(WireValue::Arr({WireValue::Str("install"),
                                   WireValue::Str("late"),
                                   WireValue::Str("fun f(x) = x * 3 end")})));
  ASSERT_OK(c.Send(WireValue::Arr({WireValue::Str("call"),
                                   WireValue::Str("late"), WireValue::Str("f"),
                                   WireValue::Int(7)})));
  auto inst = c.Recv();
  ASSERT_TRUE(inst.ok());
  ASSERT_FALSE(inst->is_err()) << ToString(*inst);
  auto r = c.Recv();
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->tag, TAG_INT) << ToString(*r);
  EXPECT_EQ(r->i, 21);
}

// ---------------------------------------------------------------------------
// Protocol violations at the socket level

TEST_F(ServerTest, OversizedFrameGetsErrorThenClose) {
  StartServer({});
  int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                opts_.unix_path.c_str());
  ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

  // A length prefix beyond kMaxFrameLen: the server answers one
  // ERR_TOO_BIG frame and closes the connection.
  uint8_t evil[5] = {0xff, 0xff, 0xff, 0xff, TAG_NIL};
  ASSERT_EQ(write(fd, evil, sizeof(evil)), static_cast<ssize_t>(sizeof(evil)));

  std::string got;
  char buf[512];
  for (;;) {
    ssize_t n = read(fd, buf, sizeof(buf));
    if (n <= 0) break;  // EOF: server closed us
    got.append(buf, static_cast<size_t>(n));
  }
  close(fd);

  WireValue reply;
  size_t consumed = 0;
  ASSERT_EQ(DecodeFrame(reinterpret_cast<const uint8_t*>(got.data()),
                        got.size(), &reply, &consumed),
            DecodeStatus::kOk);
  ASSERT_TRUE(reply.is_err());
  EXPECT_EQ(reply.err_code, ERR_TOO_BIG);
  EXPECT_EQ(consumed, got.size());  // nothing after the error frame
}

TEST_F(ServerTest, GarbageBytesDoNotKillOtherSessions) {
  StartServer({});
  Client healthy = Connect();

  int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                opts_.unix_path.c_str());
  ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  // Valid length prefix, garbage body (unknown tag).
  uint8_t junk[6] = {0x02, 0x00, 0x00, 0x00, 0xee, 0xee};
  ASSERT_EQ(write(fd, junk, sizeof(junk)), static_cast<ssize_t>(sizeof(junk)));
  char buf[256];
  while (read(fd, buf, sizeof(buf)) > 0) {
  }
  close(fd);

  auto pong = healthy.Call({"ping"});
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_EQ(pong->s, "PONG");
}

// ---------------------------------------------------------------------------
// TCP listener + poll(2) fallback loop

TEST_F(ServerTest, TcpEphemeralPortRoundTrip) {
  ServerOptions opts;
  opts.tcp_port = 0;  // ephemeral
  StartServer(opts);
  ASSERT_GT(server_->tcp_port(), 0);
  auto c = Client::ConnectTcp("127.0.0.1", server_->tcp_port());
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_EQ(c->Call({"ping"})->s, "PONG");
}

TEST_F(ServerTest, PollFallbackServesTraffic) {
  ServerOptions opts;
  opts.use_poll = true;
  StartServer(opts);
  Client c = Connect();
  ASSERT_FALSE(c.Call({"install", "m", kMathSrc})->is_err());
  for (int k = 0; k < 20; ++k) {
    ASSERT_OK(c.Send(
        WireValue::Arr({WireValue::Str("call"), WireValue::Str("m"),
                        WireValue::Str("double"), WireValue::Int(k)})));
  }
  for (int k = 0; k < 20; ++k) {
    auto r = c.Recv();
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->i, 2 * k);
  }
}

// ---------------------------------------------------------------------------
// Graceful shutdown

TEST(ServerShutdownTest, StopCommitsStoreAndModulesSurviveRestart) {
  std::string db = ::testing::TempDir() + "/tyd_shutdown.db";
  std::string sock = ::testing::TempDir() + "/tyd_shutdown.sock";
  std::remove(db.c_str());
  {
    auto store = OpenStore(db);
    Universe u(store.get());
    ASSERT_OK(u.InstallStdlib());
    ServerOptions opts;
    opts.unix_path = sock;
    Server server(&u, opts);
    ASSERT_OK(server.Start());

    auto c = Client::ConnectUnix(sock);
    ASSERT_TRUE(c.ok());
    ASSERT_FALSE(c->Call({"install", "m", kMathSrc})->is_err());
    // No explicit commit: the graceful-shutdown path must do it.
    server.Stop();
    server.Join();
  }
  // Restart: the module is there, loaded from the committed store.
  auto store = OpenStore(db);
  Universe u(store.get());
  ASSERT_OK(u.LoadPersistedModules());
  auto f = u.Lookup("m", "fact");
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  Value args[] = {Value::Int(6)};
  auto r = u.Call(*f, args);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->value.i, 720);
  std::remove(db.c_str());
}

TEST(ServerShutdownTest, StopDrainsPipelinedRequests) {
  // Requests already received when Stop() lands are answered before the
  // connection closes.
  auto store = OpenStore("");
  Universe u(store.get());
  ASSERT_OK(u.InstallStdlib());
  std::string sock = ::testing::TempDir() + "/tyd_drain.sock";
  ServerOptions opts;
  opts.unix_path = sock;
  Server server(&u, opts);
  ASSERT_OK(server.Start());

  auto c = Client::ConnectUnix(sock);
  ASSERT_TRUE(c.ok());
  ASSERT_FALSE(c->Call({"install", "m", kMathSrc})->is_err());
  constexpr int kN = 50;
  for (int k = 0; k < kN; ++k) {
    ASSERT_OK(c->Send(
        WireValue::Arr({WireValue::Str("call"), WireValue::Str("m"),
                        WireValue::Str("fact"), WireValue::Int(10)})));
  }
  // Give the loop a beat to pull the frames in, then stop mid-stream.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server.Stop();
  int answered = 0;
  for (int k = 0; k < kN; ++k) {
    auto r = c->Recv();
    if (!r.ok()) break;  // connection closed after the drain
    EXPECT_EQ(r->i, 3628800);
    ++answered;
  }
  server.Join();
  // Everything the server had read by Stop() time was answered; at
  // minimum the first batch made it.
  EXPECT_GT(answered, 0);
}

TEST(ServerShutdownTest, ShutdownCommandStopsTheServer) {
  auto store = OpenStore("");
  Universe u(store.get());
  ASSERT_OK(u.InstallStdlib());
  std::string sock = ::testing::TempDir() + "/tyd_cmd_shutdown.sock";
  ServerOptions opts;
  opts.unix_path = sock;
  Server server(&u, opts);
  ASSERT_OK(server.Start());

  auto c = Client::ConnectUnix(sock);
  ASSERT_TRUE(c.ok());
  auto ok = c->Call({"shutdown"});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->s, "OK");
  server.Join();  // returns because SHUTDOWN initiated the drain
}

}  // namespace
}  // namespace tml::server
