// The overload- and failure-resilience layer of the tyd server
// (DESIGN.md §13): admission control and ERR_OVERLOAD shedding,
// per-session backpressure, request deadlines (DEADLINE / ERR_DEADLINE),
// heap budgets (BUDGET MEM / ERR_OOM), idle and slow-read timeouts, the
// FaultNet chaos seam threaded through the server loop, Unix-socket
// takeover refusal, and the client's idempotent-only retry/backoff.

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/universe.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "support/net.h"
#include "telemetry/metrics.h"
#include "tests/test_util.h"

namespace tml::server {
namespace {

using rt::Universe;

std::unique_ptr<store::ObjectStore> OpenStore(const std::string& path = "") {
  auto s = store::ObjectStore::Open(path);
  EXPECT_TRUE(s.ok()) << s.status().ToString();
  return std::move(*s);
}

constexpr const char* kMathSrc = "fun double(x) = x + x end";
constexpr const char* kSpinSrc = "fun spin(n) = spin(n + 1) end";
constexpr const char* kAllocSrc = "fun alloc(n) = size(newarray(n, 0)) end";
constexpr const char* kSafeAllocSrc =
    "fun safe(n) = try size(newarray(n, 0)) catch e -> 0 - 1 end end";

std::string UniqueSock(const void* self) {
  return ::testing::TempDir() + "/tyd_res_" +
         std::to_string(reinterpret_cast<uintptr_t>(self)) + ".sock";
}

class ResilienceTest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions opts) {
    store_ = OpenStore("");
    universe_ = std::make_unique<Universe>(store_.get());
    ASSERT_OK(universe_->InstallStdlib());
    opts_ = std::move(opts);
    if (opts_.unix_path.empty() && opts_.tcp_port < 0) {
      opts_.unix_path = UniqueSock(this);
    }
    server_ = std::make_unique<Server>(universe_.get(), opts_);
    ASSERT_OK(server_->Start());
  }

  void TearDown() override {
    if (server_ != nullptr) {
      server_->Stop();
      server_->Join();
    }
  }

  Client Connect(ClientOptions copts = {}) {
    auto c = Client::ConnectUnix(opts_.unix_path, copts);
    EXPECT_TRUE(c.ok()) << c.status().ToString();
    return std::move(*c);
  }

  std::unique_ptr<store::ObjectStore> store_;
  std::unique_ptr<Universe> universe_;
  std::unique_ptr<Server> server_;
  ServerOptions opts_;
};

// ---------------------------------------------------------------------------
// Admission control

TEST_F(ResilienceTest, OverCapacityConnectIsShedWithCleanFrame) {
  ServerOptions o;
  o.max_sessions = 1;
  StartServer(o);
  uint64_t shed_before =
      telemetry::Registry::Global().GetCounter("tml.server.shed_total")->value();

  Client keeper = Connect();
  auto pong = keeper.Call({"PING"});
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();

  // The second connect is accepted at the socket layer and then shed: it
  // reads exactly one decodable ERR_OVERLOAD frame, never a hang or a
  // torn stream.
  Client shed = Connect();
  auto r = shed.Call({"PING"});
  ASSERT_TRUE(r.ok()) << "shed client saw transport garbage: "
                      << r.status().ToString();
  ASSERT_TRUE(r->is_err());
  EXPECT_EQ(r->err_code, ERR_OVERLOAD) << r->s;

  // The counter is bumped on the loop thread; give it a moment to land
  // (the relaxed increment is not ordered against the frame delivery).
  auto* shed_total =
      telemetry::Registry::Global().GetCounter("tml.server.shed_total");
  for (int k = 0; k < 200 && shed_total->value() <= shed_before; ++k) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(shed_total->value(), shed_before);

  // The admitted session is unaffected, and capacity frees on disconnect.
  ASSERT_TRUE(keeper.Call({"PING"}).ok());
  keeper.Close();
  for (int k = 0; k < 100; ++k) {
    Client again = Connect();
    auto ok = again.Call({"PING"});
    if (ok.ok() && !ok->is_err()) return;  // slot reclaimed
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  FAIL() << "capacity never freed after the admitted session closed";
}

// ---------------------------------------------------------------------------
// Backpressure

TEST_F(ResilienceTest, DeepPipelineDrainsUnderQueueCaps) {
  ServerOptions o;
  o.max_queued_batches = 2;
  o.max_session_buffer = 4 * 1024;
  StartServer(o);
  ASSERT_OK(universe_->InstallSource("m", kMathSrc, fe::BindingMode::kLibrary));

  // Pipeline far more requests than the queue caps allow to be buffered:
  // the loop pauses reads (EPOLLIN disarm) and resumes as batches drain —
  // every request still answers, in order.
  Client c = Connect();
  constexpr int kN = 500;
  for (int k = 0; k < kN; ++k) {
    WireValue req = WireValue::Arr({WireValue::Str("CALL"), WireValue::Str("m"),
                                    WireValue::Str("double"),
                                    WireValue::Int(k)});
    ASSERT_OK(c.Send(req));
  }
  for (int k = 0; k < kN; ++k) {
    auto r = c.Recv();
    ASSERT_TRUE(r.ok()) << "response " << k << ": " << r.status().ToString();
    ASSERT_FALSE(r->is_err()) << "response " << k << ": " << r->s;
    EXPECT_EQ(r->i, 2 * k);
  }
}

// ---------------------------------------------------------------------------
// Deadlines

TEST_F(ResilienceTest, DeadlineCommandKillsSlowRequestWithErrDeadline) {
  StartServer({});
  ASSERT_OK(universe_->InstallSource("s", kSpinSrc, fe::BindingMode::kLibrary));

  Client c = Connect();
  // Unlimited steps, 50 ms of wall clock: only the deadline can stop the
  // spin, and it must come back as ERR_DEADLINE (not ERR_BUDGET).
  auto b = c.Call(WireValue::Arr({WireValue::Str("BUDGET"), WireValue::Int(0)}));
  ASSERT_TRUE(b.ok() && !b->is_err()) << b.status().ToString();
  auto d = c.Call(
      WireValue::Arr({WireValue::Str("DEADLINE"), WireValue::Int(50)}));
  ASSERT_TRUE(d.ok() && !d->is_err()) << d.status().ToString();

  auto r = c.Call(WireValue::Arr({WireValue::Str("CALL"), WireValue::Str("s"),
                                  WireValue::Str("spin"), WireValue::Int(0)}));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_TRUE(r->is_err());
  EXPECT_EQ(r->err_code, ERR_DEADLINE) << r->s;

  // DEADLINE 0 clears it; the session survives the kill.
  auto clear = c.Call(
      WireValue::Arr({WireValue::Str("DEADLINE"), WireValue::Int(0)}));
  ASSERT_TRUE(clear.ok() && !clear->is_err());
  ASSERT_OK(universe_->InstallSource("m", kMathSrc, fe::BindingMode::kLibrary));
  auto ok = c.Call(WireValue::Arr({WireValue::Str("CALL"), WireValue::Str("m"),
                                   WireValue::Str("double"),
                                   WireValue::Int(21)}));
  ASSERT_TRUE(ok.ok() && !ok->is_err()) << ok.status().ToString();
  EXPECT_EQ(ok->i, 42);
}

TEST_F(ResilienceTest, DefaultDeadlineAppliesWithoutCommand) {
  ServerOptions o;
  o.default_step_budget = 0;  // only the deadline can stop the spin
  o.default_deadline_ms = 50;
  StartServer(o);
  ASSERT_OK(universe_->InstallSource("s", kSpinSrc, fe::BindingMode::kLibrary));
  Client c = Connect();
  auto r = c.Call(WireValue::Arr({WireValue::Str("CALL"), WireValue::Str("s"),
                                  WireValue::Str("spin"), WireValue::Int(0)}));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_TRUE(r->is_err());
  EXPECT_EQ(r->err_code, ERR_DEADLINE) << r->s;
}

// ---------------------------------------------------------------------------
// Heap budgets

TEST_F(ResilienceTest, BudgetMemKillsAllocatorWithErrOom) {
  StartServer({});
  ASSERT_OK(
      universe_->InstallSource("a", kAllocSrc, fe::BindingMode::kLibrary));

  Client c = Connect();
  auto b = c.Call(WireValue::Arr({WireValue::Str("BUDGET"),
                                  WireValue::Str("MEM"),
                                  WireValue::Int(256 * 1024)}));
  ASSERT_TRUE(b.ok() && !b->is_err()) << b.status().ToString();

  // Small allocation fits the budget.
  auto small = c.Call(WireValue::Arr({WireValue::Str("CALL"),
                                      WireValue::Str("a"),
                                      WireValue::Str("alloc"),
                                      WireValue::Int(100)}));
  ASSERT_TRUE(small.ok() && !small->is_err()) << small.status().ToString();
  EXPECT_EQ(small->i, 100);

  // A 10M-slot array does not: the uncaught OOM fault is classified on
  // the wire as ERR_OOM, distinct from an application raise.
  auto big = c.Call(WireValue::Arr({WireValue::Str("CALL"),
                                    WireValue::Str("a"),
                                    WireValue::Str("alloc"),
                                    WireValue::Int(10'000'000)}));
  ASSERT_TRUE(big.ok()) << big.status().ToString();
  ASSERT_TRUE(big->is_err());
  EXPECT_EQ(big->err_code, ERR_OOM) << big->s;

  // The session (and its worker VM) survive the kill.
  auto again = c.Call(WireValue::Arr({WireValue::Str("CALL"),
                                      WireValue::Str("a"),
                                      WireValue::Str("alloc"),
                                      WireValue::Int(100)}));
  ASSERT_TRUE(again.ok() && !again->is_err()) << again.status().ToString();

  // BUDGET MEM 0 lifts the cap again.
  auto lift = c.Call(WireValue::Arr({WireValue::Str("BUDGET"),
                                     WireValue::Str("MEM"), WireValue::Int(0)}));
  ASSERT_TRUE(lift.ok() && !lift->is_err());
  auto now_ok = c.Call(WireValue::Arr({WireValue::Str("CALL"),
                                       WireValue::Str("a"),
                                       WireValue::Str("alloc"),
                                       WireValue::Int(1'000'000)}));
  ASSERT_TRUE(now_ok.ok() && !now_ok->is_err()) << now_ok.status().ToString();
}

TEST_F(ResilienceTest, TmlCatchOfOomIsNotErrOom) {
  ServerOptions o;
  o.default_heap_budget = 256 * 1024;
  StartServer(o);
  ASSERT_OK(
      universe_->InstallSource("a", kSafeAllocSrc, fe::BindingMode::kLibrary));
  Client c = Connect();
  // The program catches its own OOM: that is an ordinary value on the
  // wire (-1 from the handler), not an ERR_OOM.
  auto r = c.Call(WireValue::Arr({WireValue::Str("CALL"), WireValue::Str("a"),
                                  WireValue::Str("safe"),
                                  WireValue::Int(10'000'000)}));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_FALSE(r->is_err()) << r->s;
  EXPECT_EQ(r->i, -1);
}

// ---------------------------------------------------------------------------
// Timeouts

TEST_F(ResilienceTest, IdleSessionIsClosed) {
  ServerOptions o;
  o.idle_timeout_ms = 100;
  StartServer(o);
  Client c = Connect();
  ASSERT_TRUE(c.Call({"PING"}).ok());
  // Sit idle past the timeout (+ the poll loop's 500 ms sweep tick): the
  // server must close us, observed as EOF on a blocking read.
  auto r = c.Recv();
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("closed"), std::string::npos)
      << r.status().ToString();
}

TEST_F(ResilienceTest, SlowlorisPartialFrameIsCut) {
  ServerOptions o;
  o.read_timeout_ms = 100;
  StartServer(o);

  // Hand-roll a raw connection and send only a prefix of a valid frame.
  int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, opts_.unix_path.c_str(),
               sizeof addr.sun_path - 1);
  ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);

  std::string frame;
  ASSERT_OK(EncodeFrame(WireValue::Str("PING"), &frame));
  ASSERT_GT(frame.size(), 3u);
  ASSERT_EQ(send(fd, frame.data(), 3, MSG_NOSIGNAL), 3);

  // The sweep cuts us within read_timeout_ms + one poll tick; the close
  // is preceded by a best-effort ERR_OVERLOAD "read timeout" frame.
  std::string got;
  char buf[512];
  while (true) {
    ssize_t n = recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    got.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  WireValue v;
  size_t consumed = 0;
  ASSERT_EQ(DecodeFrame(reinterpret_cast<const uint8_t*>(got.data()),
                        got.size(), &v, &consumed),
            DecodeStatus::kOk)
      << "no decodable courtesy frame before the cut (" << got.size()
      << " bytes)";
  ASSERT_TRUE(v.is_err());
  EXPECT_EQ(v.err_code, ERR_OVERLOAD);
  EXPECT_NE(v.s.find("read timeout"), std::string::npos) << v.s;
}

// ---------------------------------------------------------------------------
// Unix-socket takeover refusal (the unconditional-unlink fix)

TEST_F(ResilienceTest, SecondServerRefusesLiveSocketAndTakesStaleOne) {
  StartServer({});
  Client c = Connect();
  ASSERT_TRUE(c.Call({"PING"}).ok());

  // A second server on the same path must refuse to steal it while the
  // first is alive...
  auto store2 = OpenStore("");
  Universe u2(store2.get());
  ASSERT_OK(u2.InstallStdlib());
  ServerOptions o2;
  o2.unix_path = opts_.unix_path;
  {
    Server s2(&u2, o2);
    Status st = s2.Start();
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kAlreadyExists) << st.ToString();
  }
  // ...and the first server is still serving afterwards.
  ASSERT_TRUE(c.Call({"PING"}).ok());

  // A *stale* socket file (dead predecessor) is fair game: stop server 1
  // and fake a crash by re-creating the socket file it unlinked.
  c.Close();
  server_->Stop();
  server_->Join();
  int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, opts_.unix_path.c_str(),
               sizeof addr.sun_path - 1);
  ASSERT_EQ(bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  close(fd);  // bound but never listening: connects refuse, file remains

  Server s3(&u2, o2);
  ASSERT_OK(s3.Start());
  auto c3 = Client::ConnectUnix(o2.unix_path);
  ASSERT_TRUE(c3.ok()) << c3.status().ToString();
  ASSERT_TRUE(c3->Call({"PING"}).ok());
  s3.Stop();
  s3.Join();
}

// ---------------------------------------------------------------------------
// FaultNet through the server loop

TEST_F(ResilienceTest, ServesCorrectlyOverChoppedAndStormySockets) {
  FaultNet::Options fo;
  fo.short_io = 7;       // every op moves 1..7 bytes
  fo.eagain_every = 5;   // plus periodic spurious EAGAINs
  fo.seed = 42;
  FaultNet fnet(fo);
  ServerOptions o;
  o.net = &fnet;
  StartServer(o);
  ASSERT_OK(universe_->InstallSource("m", kMathSrc, fe::BindingMode::kLibrary));

  Client c = Connect();
  for (int k = 0; k < 20; ++k) {
    auto r = c.Call(WireValue::Arr({WireValue::Str("CALL"), WireValue::Str("m"),
                                    WireValue::Str("double"),
                                    WireValue::Int(k)}));
    ASSERT_TRUE(r.ok()) << "call " << k << ": " << r.status().ToString();
    ASSERT_FALSE(r->is_err()) << "call " << k << ": " << r->s;
    EXPECT_EQ(r->i, 2 * k);
  }
  EXPECT_GT(fnet.ops(), 40u);
  EXPECT_GT(fnet.faults_injected(), 0u);
}

// ---------------------------------------------------------------------------
// Client retry/backoff

TEST_F(ResilienceTest, IdempotentCallRetriesAcrossServerRestart) {
  StartServer({});
  ClientOptions copts;
  copts.max_retries = 20;
  copts.base_backoff_ms = 5;
  copts.max_backoff_ms = 50;
  copts.seed = 3;
  Client c = Connect(copts);
  ASSERT_TRUE(c.Call({"PING"}).ok());

  // Bounce the server.  The client's next PING hits a dead socket, then
  // reconnects under backoff once the new listener is up.
  server_->Stop();
  server_->Join();
  Server replacement(universe_.get(), opts_);
  ASSERT_OK(replacement.Start());

  auto r = c.Call({"PING"});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r->is_err());
  EXPECT_GT(c.reconnects(), 0u);
  replacement.Stop();
  replacement.Join();
  server_.reset();  // TearDown: nothing left to stop
}

TEST_F(ResilienceTest, NonIdempotentCallIsNeverRetried) {
  StartServer({});
  ASSERT_OK(universe_->InstallSource("m", kMathSrc, fe::BindingMode::kLibrary));
  ClientOptions copts;
  copts.max_retries = 5;
  copts.base_backoff_ms = 1;
  Client c = Connect(copts);
  ASSERT_TRUE(c.Call({"PING"}).ok());

  server_->Stop();
  server_->Join();
  server_.reset();

  // CALL executes code: with the reply lost the client cannot know if it
  // ran, so the transport error must surface instead of a blind replay.
  auto r = c.Call(WireValue::Arr({WireValue::Str("CALL"), WireValue::Str("m"),
                                  WireValue::Str("double"),
                                  WireValue::Int(1)}));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(c.reconnects(), 0u);

  // An ERR reply is a successful round-trip: no retry, no reconnect.
  StartServer({});
  Client c2 = Connect(copts);
  auto err = c2.Call({"LOOKUP", "nope", "nope"});
  ASSERT_TRUE(err.ok()) << err.status().ToString();
  EXPECT_TRUE(err->is_err());
  EXPECT_EQ(c2.reconnects(), 0u);
}

// ---------------------------------------------------------------------------
// Dead peer mid-batch (named *Concurrent* so the TSan sweep picks it up)

class ResilienceConcurrentTest : public ResilienceTest {};

TEST_F(ResilienceConcurrentTest, PeerDeathDuringBatchIsReapedCleanly) {
  StartServer({});
  ASSERT_OK(universe_->InstallSource("s", kSpinSrc, fe::BindingMode::kLibrary));
  ASSERT_OK(universe_->InstallSource("m", kMathSrc, fe::BindingMode::kLibrary));

  for (int round = 0; round < 10; ++round) {
    Client doomed = Connect();
    // A pipelined batch of budget-limited spins keeps a worker busy for a
    // few ms; the peer vanishes while the batch is in flight, so the
    // completion must find a dead session and drop the bytes (the
    // `if (s->dead) continue;` path) without leaking or crashing.
    ASSERT_TRUE(
        doomed
            .Call(WireValue::Arr(
                {WireValue::Str("BUDGET"), WireValue::Int(500'000)}))
            .ok());
    for (int k = 0; k < 8; ++k) {
      ASSERT_OK(doomed.Send(
          WireValue::Arr({WireValue::Str("CALL"), WireValue::Str("s"),
                          WireValue::Str("spin"), WireValue::Int(0)})));
    }
    doomed.Close();  // gone before (most of) the batch executes
  }

  // The server is fully alive afterwards.
  Client c = Connect();
  auto r = c.Call(WireValue::Arr({WireValue::Str("CALL"), WireValue::Str("m"),
                                  WireValue::Str("double"),
                                  WireValue::Int(21)}));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_FALSE(r->is_err()) << r->s;
  EXPECT_EQ(r->i, 42);
}

}  // namespace
}  // namespace tml::server
