// TL front end: parsing, CPS conversion, both binding modes; compiled
// programs are validated and executed on the reference interpreter.

#include <gtest/gtest.h>

#include "core/printer.h"
#include "core/validate.h"
#include "frontend/compile.h"
#include "frontend/parser.h"
#include "interp/interp.h"
#include "tests/test_util.h"

namespace tml {
namespace {

using fe::BindingMode;
using fe::CompiledUnit;
using interp::IValue;

Result<CompiledUnit> CompileTl(const char* src,
                               BindingMode mode = BindingMode::kDirect) {
  fe::CompileOptions opts;
  opts.binding = mode;
  return fe::Compile(src, prims::StandardRegistry(), opts);
}

// Compile (direct mode), validate, and run `fname` on the interpreter.
interp::InterpResult RunTl(const char* src, const char* fname,
                           std::vector<IValue> args) {
  auto unit = CompileTl(src);
  EXPECT_TRUE(unit.ok()) << unit.status().ToString();
  if (!unit.ok()) return {};
  for (const auto& fn : unit->functions) {
    ir::ValidateOptions vopts;
    std::vector<const ir::Variable*> frees(fn.free_vars.begin(),
                                           fn.free_vars.end());
    vopts.free = frees;
    Status st = ir::Validate(*unit->module, fn.abs, vopts);
    EXPECT_TRUE(st.ok()) << fn.name << ": " << st.ToString() << "\n"
                         << ir::PrintValue(*unit->module, fn.abs);
  }
  for (const auto& fn : unit->functions) {
    if (fn.name != fname) continue;
    EXPECT_TRUE(fn.free_names.empty())
        << "direct-mode single-function program should be closed; frees: "
        << fn.free_names[0];
    auto res = interp::Run(*unit->module, fn.abs, args);
    EXPECT_TRUE(res.ok()) << res.status().ToString();
    return res.ok() ? *res : interp::InterpResult{};
  }
  ADD_FAILURE() << "no function named " << fname;
  return {};
}

IValue I(int64_t v) { return IValue{v}; }

TEST(TlParser, ParsesFunctions) {
  auto unit = fe::ParseUnit(
      "fun add(a, b) = a + b end\n"
      "fun main(x) = add(x, 1) end\n");
  ASSERT_TRUE(unit.ok()) << unit.status().ToString();
  ASSERT_EQ(unit->functions.size(), 2u);
  EXPECT_EQ(unit->functions[0].name, "add");
  EXPECT_EQ(unit->functions[0].params.size(), 2u);
}

TEST(TlParser, RejectsBadSyntax) {
  EXPECT_FALSE(fe::ParseUnit("fun f( = 1 end").ok());
  EXPECT_FALSE(fe::ParseUnit("fun f() = 1").ok());          // missing end
  EXPECT_FALSE(fe::ParseUnit("fun f() = (1 ; end").ok());
  EXPECT_FALSE(fe::ParseUnit("fun f() = x := end").ok());
}

TEST(TlParser, PrecedenceMulOverAdd) {
  interp::InterpResult r =
      RunTl("fun f(x) = 2 + 3 * x end", "f", {I(10)});
  EXPECT_EQ(r.value.as_int(), 32);
}

TEST(TlCompile, SimpleArith) {
  interp::InterpResult r =
      RunTl("fun f(x) = (x * 6 + 2) % 10 end", "f", {I(7)});
  EXPECT_EQ(r.value.as_int(), 4);
}

TEST(TlCompile, IfElse) {
  const char* src =
      "fun f(x) = if x < 10 then 1 else 2 end end";
  EXPECT_EQ(RunTl(src, "f", {I(5)}).value.as_int(), 1);
  EXPECT_EQ(RunTl(src, "f", {I(15)}).value.as_int(), 2);
}

TEST(TlCompile, IfWithoutElseYieldsNil) {
  const char* src = "fun f(x) = if x < 0 then 1 end end";
  EXPECT_TRUE(RunTl(src, "f", {I(5)}).value.is_nil());
}

TEST(TlCompile, LetBinding) {
  interp::InterpResult r = RunTl(
      "fun f(x) = let y = x + 1 in let z = y * y in z - x end",
      "f", {I(3)});
  EXPECT_EQ(r.value.as_int(), 13);
}

TEST(TlCompile, MutableVarAndWhile) {
  interp::InterpResult r = RunTl(
      "fun f(n) ="
      "  var s := 0 in"
      "  var i := 1 in"
      "  begin"
      "    while i <= n do"
      "      s := s + i;"
      "      i := i + 1"
      "    end;"
      "    s"
      "  end "
      "end",
      "f", {I(100)});
  EXPECT_EQ(r.value.as_int(), 5050);
}

TEST(TlCompile, ForLoopUptoAndDownto) {
  const char* src =
      "fun up(n) ="
      "  var s := 0 in"
      "  begin for i = 1 upto n do s := s + i end; s end "
      "end\n"
      "fun down(n) ="
      "  var s := 0 in"
      "  begin for i = n downto 1 do s := s + i end; s end "
      "end";
  EXPECT_EQ(RunTl(src, "up", {I(10)}).value.as_int(), 55);
  EXPECT_EQ(RunTl(src, "down", {I(10)}).value.as_int(), 55);
}

TEST(TlCompile, AssignedParameterIsBoxed) {
  interp::InterpResult r = RunTl(
      "fun f(x) = begin x := x + 1; x * 2 end end", "f", {I(10)});
  EXPECT_EQ(r.value.as_int(), 22);
}

TEST(TlCompile, ArraysIndexingAndSize) {
  interp::InterpResult r = RunTl(
      "fun f(n) ="
      "  let a = newarray(n, 0) in"
      "  begin"
      "    for i = 0 upto n - 1 do a[i] := i * i end;"
      "    a[3] + size(a)"
      "  end "
      "end",
      "f", {I(10)});
  EXPECT_EQ(r.value.as_int(), 19);
}

TEST(TlCompile, ArrayLiteralAndBytes) {
  interp::InterpResult r = RunTl(
      "fun f(x) ="
      "  let a = array(10, 20, 30) in"
      "  let b = newbytes(4, 7) in"
      "  a[1] + b[2] + x "
      "end",
      "f", {I(1)});
  EXPECT_EQ(r.value.as_int(), 28);
}

TEST(TlCompile, BooleansAndShortCircuit) {
  const char* src =
      "fun f(x) ="
      "  let a = newarray(2, 0) in"
      // the right operand of `and` must not evaluate when the left is
      // false: a[5] would fault.
      "  if x > 0 and x < 2 then 1 else 0 end "
      "end";
  EXPECT_EQ(RunTl(src, "f", {I(1)}).value.as_int(), 1);
  EXPECT_EQ(RunTl(src, "f", {I(5)}).value.as_int(), 0);
}

TEST(TlCompile, ShortCircuitSkipsEffects) {
  const char* src =
      "fun f(x) ="
      "  let a = array(9) in"
      "  if x < 0 and a[5] == 0 then 1 else 0 end "
      "end";
  // x >= 0: the faulting a[5] must not run.
  EXPECT_EQ(RunTl(src, "f", {I(3)}).value.as_int(), 0);
}

TEST(TlCompile, RecursionAcrossFreeName) {
  // Recursion goes through a free variable (linked at install time); for a
  // closed interpreter run we emulate the binding via a self-contained
  // variant: compile in direct mode and check the free name is reported.
  auto unit = CompileTl("fun fact(n) = if n <= 1 then 1 else n * fact(n - 1) end end");
  ASSERT_TRUE(unit.ok());
  ASSERT_EQ(unit->functions.size(), 1u);
  ASSERT_EQ(unit->functions[0].free_names.size(), 1u);
  EXPECT_EQ(unit->functions[0].free_names[0], "fact");
}

TEST(TlCompile, TryCatchThrow) {
  const char* src =
      "fun f(x) ="
      "  try"
      "    if x == 0 then throw 42 end;"
      "    x * 2"
      "  catch e -> e + 100 end "
      "end";
  EXPECT_EQ(RunTl(src, "f", {I(0)}).value.as_int(), 142);
  EXPECT_EQ(RunTl(src, "f", {I(5)}).value.as_int(), 10);
}

TEST(TlCompile, DivisionFaultIsCatchable) {
  const char* src =
      "fun f(x) = try 100 / x catch e -> -1 end end";
  EXPECT_EQ(RunTl(src, "f", {I(0)}).value.as_int(), -1);
  EXPECT_EQ(RunTl(src, "f", {I(4)}).value.as_int(), 25);
}

TEST(TlCompile, NestedTryRestoresOuterHandler) {
  const char* src =
      "fun f(x) ="
      "  try"
      "    (try 10 / x catch inner -> throw 7 end)"
      "  catch outer -> outer * 2 end "
      "end";
  EXPECT_EQ(RunTl(src, "f", {I(0)}).value.as_int(), 14);
  EXPECT_EQ(RunTl(src, "f", {I(2)}).value.as_int(), 5);
}

TEST(TlCompile, RealArithmetic) {
  interp::InterpResult r = RunTl(
      "fun f(x) = trunc(sqrt(real(x) *. 4.0)) end", "f", {I(25)});
  EXPECT_EQ(r.value.as_int(), 10);
}

TEST(TlCompile, CharsAndConversions) {
  interp::InterpResult r =
      RunTl("fun f(x) = ord(chr(x + 1)) end", "f", {I(65)});
  EXPECT_EQ(r.value.as_int(), 66);
}

TEST(TlCompile, PrintProducesOutput) {
  interp::InterpResult r =
      RunTl("fun f(x) = begin print(x); x end end", "f", {I(9)});
  EXPECT_EQ(r.output, "9\n");
}

TEST(TlCompile, NotEqualOperator) {
  const char* src = "fun f(x) = if x != 3 then 1 else 0 end end";
  EXPECT_EQ(RunTl(src, "f", {I(3)}).value.as_int(), 0);
  EXPECT_EQ(RunTl(src, "f", {I(4)}).value.as_int(), 1);
}

TEST(TlCompile, LibraryModeEmitsFreeLibraryCalls) {
  auto unit = CompileTl("fun f(x) = x + 1 end", BindingMode::kLibrary);
  ASSERT_TRUE(unit.ok()) << unit.status().ToString();
  const auto& fn = unit->functions[0];
  ASSERT_EQ(fn.free_names.size(), 1u);
  EXPECT_EQ(fn.free_names[0], "int_add");
  // No `+` primitive appears in the term.
  std::string printed = ir::PrintValue(*unit->module, fn.abs);
  EXPECT_EQ(printed.find("(+ "), std::string::npos);
}

TEST(TlCompile, LibraryModeCoversArraysAndComparisons) {
  auto unit = CompileTl(
      "fun f(a, i) = if a[i] < 10 then size(a) else 0 end end",
      BindingMode::kLibrary);
  ASSERT_TRUE(unit.ok()) << unit.status().ToString();
  const auto& names = unit->functions[0].free_names;
  auto has = [&](const char* n) {
    return std::find(names.begin(), names.end(), n) != names.end();
  };
  EXPECT_TRUE(has("arr_get"));
  EXPECT_TRUE(has("int_lt"));
  EXPECT_TRUE(has("arr_size"));
}

TEST(TlCompile, StdlibEntriesAllParseAndValidate) {
  for (const fe::LibraryEntry& entry : fe::StdlibEntries()) {
    ir::Module m;
    auto parsed =
        ir::ParseValueText(&m, prims::StandardRegistry(), entry.tml);
    ASSERT_TRUE(parsed.ok()) << entry.name << ": "
                             << parsed.status().ToString();
    Status st = ir::Validate(m, ir::Cast<ir::Abstraction>(parsed->value));
    EXPECT_TRUE(st.ok()) << entry.name << ": " << st.ToString();
  }
}

}  // namespace
}  // namespace tml
