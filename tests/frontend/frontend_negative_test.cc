// TL front end: rejection paths and diagnostics.

#include <gtest/gtest.h>

#include "frontend/compile.h"
#include "frontend/parser.h"
#include "tests/test_util.h"

namespace tml {
namespace {

Status CompileStatus(const char* src) {
  fe::CompileOptions opts;
  auto r = fe::Compile(src, prims::StandardRegistry(), opts);
  return r.status();
}

TEST(TlNegative, AssignmentToForLoopVariableIsRejected) {
  Status st = CompileStatus(
      "fun f(n) = begin for i = 1 upto n do i := 0 end; 0 end end");
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("unassignable"), std::string::npos);
}

TEST(TlNegative, AssignmentToUnknownNameIsRejected) {
  Status st = CompileStatus("fun f(n) = begin ghost := 1; 0 end end");
  EXPECT_FALSE(st.ok());
}

TEST(TlNegative, CallingAMutableVariableIsRejected) {
  Status st = CompileStatus(
      "fun f(n) = var g := 1 in begin g := 2; g(3) end end");
  EXPECT_FALSE(st.ok());
}

TEST(TlNegative, ErrorsCarryLineNumbers) {
  Status st = CompileStatus("fun f(n) =\n\n  ghost := 1\nend");
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("line 3"), std::string::npos)
      << st.ToString();
}

TEST(TlNegative, LexRejectsStrayCharacters) {
  auto r = fe::ParseUnit("fun f() = 1 @ 2 end");
  EXPECT_FALSE(r.ok());
}

TEST(TlNegative, UnterminatedStringIsRejected) {
  auto r = fe::ParseUnit("fun f() = \"oops end");
  EXPECT_FALSE(r.ok());
}

TEST(TlNegative, KeywordAsOperandIsRejected) {
  auto r = fe::ParseUnit("fun f() = 1 + upto end");
  EXPECT_FALSE(r.ok());
}

TEST(TlNegative, NewArrayArityIsChecked) {
  Status st = CompileStatus("fun f(n) = newarray(n) end");
  EXPECT_FALSE(st.ok());
}

TEST(TlNegative, HashCommentsAreSkipped) {
  fe::CompileOptions opts;
  auto r = fe::Compile(
      "# leading comment\n"
      "fun f(n) = n # trailing comment\n"
      "end\n",
      prims::StandardRegistry(), opts);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
}

TEST(TlNegative, ShadowingIntrinsicNamesIsAllowed) {
  // A parameter named `size` wins over the intrinsic.
  fe::CompileOptions opts;
  auto r = fe::Compile("fun f(size) = size + 1 end",
                       prims::StandardRegistry(), opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->functions[0].free_names.empty());
}

}  // namespace
}  // namespace tml
