// Cross-layer differential testing: TL source -> CPS -> {reference
// interpreter, TVM} at several optimization levels must agree on results —
// this closes the loop between the front end, the optimizer and both
// execution engines for realistic imperative programs.

#include <gtest/gtest.h>

#include "core/optimizer.h"
#include "core/printer.h"
#include "core/validate.h"
#include "frontend/compile.h"
#include "interp/interp.h"
#include "tests/test_util.h"
#include "vm/codegen.h"
#include "vm/vm.h"

namespace tml {
namespace {

struct TlCase {
  const char* name;
  const char* source;  // single closed function `bench(n)`
  std::vector<int64_t> args;
};

const TlCase kCases[] = {
    {"bubble",
     "fun bench(n) ="
     "  let a = newarray(n, 0) in"
     "  var seed := 4321 in"
     "  begin"
     "    for i = 0 upto n - 1 do"
     "      seed := (seed * 1309 + 13849) % 65536;"
     "      a[i] := seed"
     "    end;"
     "    for i = n - 1 downto 1 do"
     "      for j = 0 upto i - 1 do"
     "        if a[j + 1] < a[j] then"
     "          let t = a[j] in"
     "          begin a[j] := a[j + 1]; a[j + 1] := t end"
     "        end"
     "      end"
     "    end;"
     "    a[0] + a[n / 2] + a[n - 1]"
     "  end "
     "end",
     {2, 16, 33}},
    {"collatz",
     "fun bench(n) ="
     "  var steps := 0 in"
     "  var x := n in"
     "  begin"
     "    while x != 1 do"
     "      if x % 2 == 0 then x := x / 2"
     "      else x := 3 * x + 1 end;"
     "      steps := steps + 1"
     "    end;"
     "    steps"
     "  end "
     "end",
     {1, 6, 27}},
    {"gcd_iterative",
     "fun bench(n) ="
     "  var a := n in"
     "  var b := 252 in"
     "  begin"
     "    while b != 0 do"
     "      let t = a % b in"
     "      begin a := b; b := t end"
     "    end;"
     "    a"
     "  end "
     "end",
     {1071, 17, 252}},
    {"try_in_loop",
     "fun bench(n) ="
     "  var hits := 0 in"
     "  begin"
     "    for i = 0 upto n do"
     "      try"
     "        if 100 / i > 20 then hits := hits + 1 end"
     "      catch e -> hits := hits + 100 end"
     "    end;"
     "    hits"
     "  end "
     "end",
     {0, 3, 10}},
    {"newton_sqrt",
     "fun bench(n) ="
     "  var x := real(n) in"
     "  begin"
     "    for i = 1 upto 20 do"
     "      x := (x +. real(n) /. x) /. 2.0"
     "    end;"
     "    trunc(x *. 1000.0)"
     "  end "
     "end",
     {4, 2, 10}},
    {"string_and_chars",
     "fun bench(n) ="
     "  let c = chr(n) in"
     "  begin print(\"value:\", n); ord(c) * 2 end "
     "end",
     {65, 90}},
};

class TlDifferential : public ::testing::TestWithParam<TlCase> {};

TEST_P(TlDifferential, EnginesAgreeAtAllLevels) {
  const TlCase& c = GetParam();
  fe::CompileOptions copts;  // direct mode => closed single function
  auto unit = fe::Compile(c.source, prims::StandardRegistry(), copts);
  ASSERT_TRUE(unit.ok()) << unit.status().ToString();
  ASSERT_EQ(unit->functions.size(), 1u);
  const auto& fn = unit->functions[0];
  ASSERT_TRUE(fn.free_names.empty())
      << "case must be closed; free: " << fn.free_names[0];
  ir::Module* m = unit->module.get();
  ASSERT_OK(ir::Validate(*m, fn.abs));

  const ir::Abstraction* levels[3];
  levels[0] = fn.abs;
  levels[1] = ir::Reduce(m, fn.abs);
  levels[2] = ir::Optimize(m, fn.abs);
  for (const ir::Abstraction* prog : levels) {
    ASSERT_OK(ir::Validate(*m, prog));
  }

  for (int64_t arg : c.args) {
    std::string expected_value;
    std::string expected_output;
    bool expected_raised = false;
    bool have_expected = false;
    for (int level = 0; level < 3; ++level) {
      const ir::Abstraction* prog = levels[level];
      // Reference interpreter.
      auto ires = interp::Run(*m, prog, {interp::IValue{arg}});
      ASSERT_TRUE(ires.ok()) << c.name << " L" << level << ": "
                             << ires.status().ToString();
      // TVM.
      vm::CodeUnit cu;
      auto code = vm::CompileProc(&cu, *m, prog, c.name);
      ASSERT_TRUE(code.ok()) << c.name << " L" << level << ": "
                             << code.status().ToString();
      vm::VM vm;
      vm::Value args[] = {vm::Value::Int(arg)};
      auto vres = vm.Run(*code, args);
      ASSERT_TRUE(vres.ok()) << c.name << " L" << level << ": "
                             << vres.status().ToString();

      std::string iv = interp::ToString(ires->value);
      std::string vv = vm::ToString(vres->value);
      EXPECT_EQ(iv, vv) << c.name << " L" << level << " arg=" << arg;
      EXPECT_EQ(ires->raised, vres->raised) << c.name << " L" << level;
      EXPECT_EQ(ires->output, vm.TakeOutput()) << c.name << " L" << level;
      if (!have_expected) {
        expected_value = iv;
        expected_output = ires->output;
        expected_raised = ires->raised;
        have_expected = true;
      } else {
        EXPECT_EQ(iv, expected_value)
            << c.name << ": level " << level << " diverged, arg=" << arg;
        EXPECT_EQ(ires->output, expected_output) << c.name;
        EXPECT_EQ(ires->raised, expected_raised) << c.name;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, TlDifferential, ::testing::ValuesIn(kCases),
                         [](const ::testing::TestParamInfo<TlCase>& info) {
                           return std::string(info.param.name);
                         });

}  // namespace
}  // namespace tml
