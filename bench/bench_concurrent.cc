// E7 — multi-threaded scaling of the un-serialized Universe: N worker
// threads, each on its own AddWorkerVm instance, hammer a shared universe
// with a read-heavy call workload (Resolve/Lookup/code fetch are lock-free
// snapshot reads) while a background AdaptiveManager keeps the write side
// live (merged profile snapshots + profile persists take the writer lock).
//
// For thread counts {1, 2, 4, 8} the bench measures calls/second over a
// fixed wall-clock window and reports speedup_Nx = throughput_N /
// throughput_1.  Under the old recursive big lock this curve was flat
// (0.93x at eight threads); with the published-snapshot design it should
// track the hardware parallelism.  `hw_threads` is emitted so CI can gate
// hardware-aware (tools/check.sh --bench refuses to apply the 8-thread
// floor on a 1-core runner).
//
// The adaptive policy is kept quiet (nothing ever gets hot enough to
// promote) so every timed call runs the SAME unoptimized code — a
// mid-window code swap would change the per-call cost and corrupt the
// scaling ratio.  The writer still runs: every poll merges the per-worker
// profiles and persists the profile record through the writer lock.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "adaptive/manager.h"
#include "bench/bench_util.h"
#include "runtime/universe.h"

namespace {

using tml::Oid;
using tml::adaptive::AdaptiveManager;
using tml::adaptive::AdaptiveOptions;
using tml::rt::Universe;
using tml::vm::Value;

constexpr const char* kComplexSrc =
    "fun make(x, y) = array(x, y) end\n"
    "fun getx(c) = c[0] end\n"
    "fun gety(c) = c[1] end";
constexpr const char* kAppSrc =
    "fun cabs(c) ="
    "  sqrt(real(getx(c) * getx(c) + gety(c) * gety(c))) "
    "end";

constexpr int kThreadCounts[] = {1, 2, 4, 8};
constexpr auto kWindow = std::chrono::milliseconds(300);
constexpr int kWarmupCalls = 50;

// One measurement thread: warm the worker VM's swizzle cache, check in,
// spin until the shared start flag, then count cabs calls until stop.
void WorkerLoop(tml::vm::VM* w, Oid make, Oid cabs,
                std::atomic<int>* ready, const std::atomic<bool>* start,
                const std::atomic<bool>* stop, std::atomic<uint64_t>* calls,
                std::atomic<uint64_t>* steps, std::atomic<int>* failures) {
  Value margs[] = {Value::Int(3), Value::Int(4)};
  auto c = w->RunClosure(Value::OidV(make), margs);
  if (!c.ok() || c->raised) {
    failures->fetch_add(1);
    ready->fetch_add(1);
    return;
  }
  w->Pin(c->value);
  Value cargs[] = {c->value};
  for (int i = 0; i < kWarmupCalls; ++i) {
    auto r = w->RunClosure(Value::OidV(cabs), cargs);
    if (!r.ok() || r->raised || r->value.r != 5.0) {
      failures->fetch_add(1);
      ready->fetch_add(1);
      return;
    }
  }
  ready->fetch_add(1);
  while (!start->load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  uint64_t n = 0;
  uint64_t nsteps = 0;
  while (!stop->load(std::memory_order_acquire)) {
    auto r = w->RunClosure(Value::OidV(cabs), cargs);
    if (!r.ok() || r->raised || r->value.r != 5.0) {
      failures->fetch_add(1);
      break;
    }
    ++n;
    nsteps += r->steps;
  }
  calls->store(n, std::memory_order_release);
  steps->store(nsteps, std::memory_order_release);
}

// Calls/second with `nthreads` concurrent workers over one timed window.
// `steps_per_sec` (optional) receives the aggregate TVM instruction rate.
double MeasureThroughput(Universe* u, Oid make, Oid cabs, int nthreads,
                         std::atomic<int>* failures,
                         double* steps_per_sec = nullptr) {
  std::atomic<int> ready{0};
  std::atomic<bool> start{false};
  std::atomic<bool> stop{false};
  std::vector<std::atomic<uint64_t>> calls(nthreads);
  std::vector<std::atomic<uint64_t>> steps(nthreads);
  std::vector<std::thread> threads;
  threads.reserve(nthreads);
  for (int t = 0; t < nthreads; ++t) {
    // A fresh private VM per thread per run: cold swizzle caches at the
    // start of every window, warmed before the clock starts.
    tml::vm::VM* w = u->AddWorkerVm();
    threads.emplace_back(WorkerLoop, w, make, cabs, &ready, &start, &stop,
                         &calls[t], &steps[t], failures);
  }
  while (ready.load(std::memory_order_acquire) < nthreads) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto t0 = std::chrono::steady_clock::now();
  start.store(true, std::memory_order_release);
  std::this_thread::sleep_for(kWindow);
  stop.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();
  auto t1 = std::chrono::steady_clock::now();
  double secs = std::chrono::duration<double>(t1 - t0).count();
  uint64_t total = 0;
  uint64_t total_steps = 0;
  for (auto& c : calls) total += c.load(std::memory_order_acquire);
  for (auto& st : steps) total_steps += st.load(std::memory_order_acquire);
  if (steps_per_sec != nullptr) {
    *steps_per_sec = static_cast<double>(total_steps) / secs;
  }
  return static_cast<double>(total) / secs;
}

}  // namespace

int main(int argc, char** argv) {
  tml::bench::Metrics metrics(argc, argv);
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  std::printf(
      "== E7: concurrent scaling -- published binding snapshot, per-worker "
      "VMs ==\n\nhardware threads: %u\n\n", hw);

  auto s = tml::store::ObjectStore::Open("");
  if (!s.ok()) return 1;
  Universe u(s->get());
  if (!u.InstallSource("complex", kComplexSrc, tml::fe::BindingMode::kLibrary)
           .ok() ||
      !u.InstallSource("app", kAppSrc, tml::fe::BindingMode::kLibrary).ok()) {
    return 1;
  }
  Oid make = *u.Lookup("complex", "make");
  Oid cabs = *u.Lookup("app", "cabs");

  // Background writer: quiet promotion policy (see file comment), but the
  // worker merges all per-VM profiles and persists the profile record on
  // every poll — real writer-lock traffic throughout every window.
  AdaptiveOptions aopts;
  aopts.poll_interval = std::chrono::milliseconds(2);
  aopts.policy.hot_steps = 1u << 30;
  aopts.policy.min_calls = 1u << 30;
  aopts.persist_profile = true;
  AdaptiveManager mgr(&u, aopts);
  mgr.Start();

  std::atomic<int> failures{0};
  double throughput[4] = {0, 0, 0, 0};
  double steps_rate[4] = {0, 0, 0, 0};
  for (int i = 0; i < 4; ++i) {
    int n = kThreadCounts[i];
    throughput[i] =
        MeasureThroughput(&u, make, cabs, n, &failures, &steps_rate[i]);
    std::printf("threads=%d    %12.0f calls/s  %12.0f steps/s    speedup "
                "%.2fx\n",
                n, throughput[i], steps_rate[i],
                throughput[0] > 0 ? throughput[i] / throughput[0] : 0.0);
  }
  mgr.Stop();

  if (failures.load() != 0) {
    std::printf("\nFAIL: %d call(s) failed during measurement\n",
                failures.load());
    return 1;
  }

  tml::rt::AdaptiveCounters c = u.adaptive_counters();
  std::printf(
      "\nbackground writer: polls=%llu persists=%llu (promotions=%llu — "
      "policy is quiet by design)\n",
      static_cast<unsigned long long>(c.polls),
      static_cast<unsigned long long>(c.profile_persists),
      static_cast<unsigned long long>(c.promotions));

  metrics.Add("hw_threads", static_cast<double>(hw));
  for (int i = 0; i < 4; ++i) {
    metrics.Add("throughput_" + std::to_string(kThreadCounts[i]),
                throughput[i]);
  }
  for (int i = 0; i < 4; ++i) {
    metrics.Add("speedup_" + std::to_string(kThreadCounts[i]) + "x",
                throughput[0] > 0 ? throughput[i] / throughput[0] : 0.0);
  }
  for (int i = 0; i < 4; ++i) {
    metrics.Add("steps_per_sec_" + std::to_string(kThreadCounts[i]),
                steps_rate[i]);
  }
  metrics.Add("ns_per_step_1",
              steps_rate[0] > 0 ? 1e9 / steps_rate[0] : 0.0);
  metrics.Add("writer_polls", static_cast<double>(c.polls));
  metrics.Add("writer_persists", static_cast<double>(c.profile_persists));

  // Scaling floors are enforced hardware-aware by tools/check.sh --bench
  // (this binary may run on a 1-core container where 8 threads MUST NOT
  // beat 1); here only correctness fails the run.
  std::printf("\nPASS: %d/%d/%d/%d-thread windows completed without a "
              "failed call\n",
              kThreadCounts[0], kThreadCounts[1], kThreadCounts[2],
              kThreadCounts[3]);
  return 0;
}
