// E5 — optimizer mechanics (paper §3): per-rule application counts, the
// contribution of each rule class to the E1 dynamic speedup (ablation), and
// raw rewriting throughput.
//
// The ablation disables one rule class at a time in the *runtime* optimizer
// and re-measures the dynamic speedup on a Stanford program — quantifying
// the DESIGN.md claim that the §3 rules jointly subsume classic
// optimizations (disabling subst kills copy/constant propagation, fold
// kills constant folding, Y rules kill loop cleanup, the expansion pass
// kills inlining/view expansion).

#include <chrono>
#include <cstdio>

#include "core/optimizer.h"
#include "bench/bench_util.h"
#include "corpus/stanford.h"
#include "runtime/universe.h"

namespace {

using tml::Oid;
using tml::corpus::StanfordProgram;
using tml::ir::OptimizerOptions;
using tml::rt::Universe;
using tml::vm::Value;

const StanfordProgram* FindProgram(const char* name) {
  for (const auto& p : tml::corpus::StanfordSuite()) {
    if (std::string(p.name) == name) return &p;
  }
  return nullptr;
}

struct AblationRow {
  const char* label;
  OptimizerOptions opts;
};

uint64_t StepsWith(const StanfordProgram& prog, const OptimizerOptions* opt,
                   int64_t n, tml::ir::OptimizerStats* stats = nullptr) {
  auto s = tml::store::ObjectStore::Open("");
  Universe u(s->get());
  if (!u.InstallSource("bench", prog.source, tml::fe::BindingMode::kLibrary)
           .ok()) {
    return 0;
  }
  Oid f = *u.Lookup("bench", "bench");
  if (opt != nullptr) {
    tml::rt::ReflectStats rs;
    auto r = u.ReflectOptimize(f, *opt, &rs);
    if (!r.ok()) {
      std::printf("  reflect failed: %s\n", r.status().ToString().c_str());
      return 0;
    }
    f = *r;
    if (stats != nullptr) *stats = rs.optimizer;
  }
  Value args[] = {Value::Int(n)};
  auto r = u.Call(f, args);
  return r.ok() ? r->steps : 0;
}

}  // namespace

int main(int argc, char** argv) {
  tml::bench::Metrics metrics(argc, argv);
  std::printf("== E5: optimizer mechanics and rule ablation (paper Sec. 3) ==\n");

  OptimizerOptions base;
  base.expand.budget = 96;
  base.expand.always_inline_cost = 24;
  base.penalty_limit = 192;
  base.max_rounds = 24;

  const StanfordProgram* prog = FindProgram("Bubble");
  if (prog == nullptr) return 1;
  int64_t n = prog->bench_n;

  std::printf("\n-- rule ablation on %s (dynamic speedup vs unoptimized "
              "library code) --\n",
              prog->name);
  uint64_t unopt_steps = StepsWith(*prog, nullptr, n);
  std::printf("%-22s %14s %10s\n", "configuration", "steps", "speedup");
  std::printf("%-22s %14llu %9.2fx\n", "unoptimized",
              static_cast<unsigned long long>(unopt_steps), 1.0);

  std::vector<AblationRow> rows;
  rows.push_back({"full optimizer", base});
  {
    OptimizerOptions o = base;
    o.rewrite.enable_subst = false;
    rows.push_back({"- subst", o});
  }
  {
    OptimizerOptions o = base;
    o.rewrite.enable_fold = false;
    rows.push_back({"- fold", o});
  }
  {
    OptimizerOptions o = base;
    o.rewrite.enable_eta = false;
    rows.push_back({"- eta", o});
  }
  {
    OptimizerOptions o = base;
    o.rewrite.enable_remove = false;
    rows.push_back({"- remove", o});
  }
  {
    OptimizerOptions o = base;
    o.rewrite.enable_y_rules = false;
    rows.push_back({"- Y rules", o});
  }
  {
    OptimizerOptions o = base;
    o.expand.budget = 0;
    o.expand.always_inline_cost = 0;
    rows.push_back({"- expansion (inline)", o});
  }
  for (const AblationRow& row : rows) {
    uint64_t steps = StepsWith(*prog, &row.opts, n);
    if (steps == 0) {
      std::printf("%-22s %14s\n", row.label, "FAILED");
      continue;
    }
    std::printf("%-22s %14llu %9.2fx\n", row.label,
                static_cast<unsigned long long>(steps),
                static_cast<double>(unopt_steps) / steps);
    if (std::string(row.label) == "full optimizer") {
      metrics.Add("bubble_unopt_steps", static_cast<double>(unopt_steps));
      metrics.Add("bubble_full_optimizer_speedup",
                  static_cast<double>(unopt_steps) / steps);
    }
  }

  std::printf("\n-- rewrite-rule application profile (full optimizer, per "
              "program) --\n");
  std::printf("%-8s %8s %8s %8s %8s %8s %8s %8s %8s %9s\n", "program",
              "subst", "remove", "reduce", "eta", "fold", "case", "Y-rm",
              "Y-sub", "inlined");
  for (const StanfordProgram& p : tml::corpus::StanfordSuite()) {
    tml::ir::OptimizerStats stats;
    (void)StepsWith(p, &base, p.small_n, &stats);
    std::printf("%-8s %8llu %8llu %8llu %8llu %8llu %8llu %8llu %8llu %9llu\n",
                p.name,
                static_cast<unsigned long long>(stats.rewrite.subst),
                static_cast<unsigned long long>(stats.rewrite.remove),
                static_cast<unsigned long long>(stats.rewrite.reduce),
                static_cast<unsigned long long>(stats.rewrite.eta),
                static_cast<unsigned long long>(stats.rewrite.fold),
                static_cast<unsigned long long>(stats.rewrite.case_subst),
                static_cast<unsigned long long>(stats.rewrite.y_remove),
                static_cast<unsigned long long>(stats.rewrite.y_subst),
                static_cast<unsigned long long>(stats.expand.inlined));
  }

  std::printf("\n-- optimizer throughput (reflect + optimize latency per "
              "program) --\n");
  std::printf("%-8s %12s %12s %12s\n", "program", "latency(ms)",
              "in(nodes)", "out(nodes)");
  for (const StanfordProgram& p : tml::corpus::StanfordSuite()) {
    auto s = tml::store::ObjectStore::Open("");
    Universe u(s->get());
    if (!u.InstallSource("bench", p.source, tml::fe::BindingMode::kLibrary)
             .ok()) {
      continue;
    }
    Oid f = *u.Lookup("bench", "bench");
    tml::rt::ReflectStats rs;
    auto t0 = std::chrono::steady_clock::now();
    auto r = u.ReflectOptimize(f, base, &rs);
    auto t1 = std::chrono::steady_clock::now();
    if (!r.ok()) continue;
    std::printf("%-8s %12.2f %12zu %12zu\n", p.name,
                std::chrono::duration<double, std::milli>(t1 - t0).count(),
                rs.input_term_size, rs.output_term_size);
  }
  return 0;
}
