// Tycoon-as-a-service throughput and latency (DESIGN.md §10).
//
// Spins an in-process server on a Unix socket and drives it with closed-
// loop clients calling the hot complex-modulus function, measuring:
//
//   * unpipelined vs pipelined throughput at N concurrent clients — the
//     batch dispatch should make pipelining >= 2x (the driver gates on
//     pipeline_speedup in BENCH_server.json);
//   * request latency percentiles (p50 / p99) under unpipelined load;
//   * client-visible CALL latency before vs after OPTIMIZE — the paper's
//     §4.1 payoff observed end to end at the wire: one reflective
//     optimization of server-resident code speeds up every client.
//
// Emits BENCH_server.json via --json (tools/check.sh --bench).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "runtime/universe.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "store/object_store.h"

namespace {

using tml::rt::Universe;
using tml::server::Client;
using tml::server::Server;
using tml::server::ServerOptions;
using tml::server::WireValue;
using Clock = std::chrono::steady_clock;

// The hot path: the 3-4-5 complex-modulus exemplar behind a recursive
// driver so VM time dominates the socket round-trip and the OPTIMIZE
// speedup is visible at the wire.
constexpr const char* kComplexSrc =
    "fun make(x, y) = array(x, y) end\n"
    "fun getx(c) = c[0] end\n"
    "fun gety(c) = c[1] end";
constexpr const char* kAppSrc =
    "fun cabs(c) ="
    "  sqrt(real(getx(c) * getx(c) + gety(c) * gety(c))) "
    "end\n"
    "fun work(x, y, n) ="
    "  if n <= 0 then cabs(make(x, y))"
    "  else cabs(make(x, y)) +. work(x, y, n - 1) end "
    "end";

constexpr int kWorkDepth = 50;  // cabs calls per heavy request

// Heavy request (VM-bound): exercises the full hot path; what OPTIMIZE
// speeds up.
WireValue WorkRequest() {
  return WireValue::Arr({WireValue::Str("call"), WireValue::Str("app"),
                         WireValue::Str("work"), WireValue::Int(3),
                         WireValue::Int(4), WireValue::Int(kWorkDepth)});
}

bool WorkReplyOk(const WireValue& v) {
  // work(3,4,n) = 5*(n+1); any non-DBL or wrong value is a bench bug.
  return v.tag == tml::server::TAG_DBL && v.d == 5.0 * (kWorkDepth + 1);
}

// Light request (round-trip-bound): one field access.  This is where
// pipelining pays — batching K frames per readiness event amortizes the
// syscall + dispatch cost that dominates when the call itself is cheap.
WireValue LightRequest() {
  return WireValue::Arr(
      {WireValue::Str("call"), WireValue::Str("complex"), WireValue::Str("getx"),
       WireValue::Arr({WireValue::Int(3), WireValue::Int(4)})});
}

bool LightReplyOk(const WireValue& v) {
  return v.tag == tml::server::TAG_INT && v.i == 3;
}

double Percentile(std::vector<double>* xs, double p) {
  if (xs->empty()) return 0;
  std::sort(xs->begin(), xs->end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(xs->size() - 1));
  return (*xs)[idx];
}

struct LoadResult {
  double throughput = 0;  ///< requests/sec across all clients
  std::vector<double> latencies_us;
  int errors = 0;
};

// `pipeline` = frames in flight per client (1 = strict request/response).
LoadResult RunLoad(const std::string& sock, int clients, int requests_each,
                   int pipeline, bool heavy) {
  std::vector<std::thread> threads;
  std::vector<LoadResult> per_client(static_cast<size_t>(clients));
  threads.reserve(static_cast<size_t>(clients));
  auto t0 = Clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      LoadResult& out = per_client[static_cast<size_t>(c)];
      auto conn = Client::ConnectUnix(sock);
      if (!conn.ok()) {
        out.errors++;
        return;
      }
      Client cli = std::move(*conn);
      WireValue req = heavy ? WorkRequest() : LightRequest();
      int sent = 0;
      while (sent < requests_each) {
        int batch = std::min(pipeline, requests_each - sent);
        auto s0 = Clock::now();
        for (int k = 0; k < batch; ++k) {
          if (!cli.Send(req).ok()) {
            out.errors++;
            return;
          }
        }
        for (int k = 0; k < batch; ++k) {
          auto r = cli.Recv();
          if (!r.ok() || !(heavy ? WorkReplyOk(*r) : LightReplyOk(*r))) {
            out.errors++;
            return;
          }
        }
        auto s1 = Clock::now();
        // Per-request latency: batch wall time over batch size (equals the
        // true round-trip when pipeline == 1).
        double us = std::chrono::duration<double, std::micro>(s1 - s0).count() /
                    batch;
        for (int k = 0; k < batch; ++k) out.latencies_us.push_back(us);
        sent += batch;
      }
    });
  }
  for (auto& t : threads) t.join();
  double secs = std::chrono::duration<double>(Clock::now() - t0).count();

  LoadResult total;
  for (auto& pc : per_client) {
    total.errors += pc.errors;
    total.latencies_us.insert(total.latencies_us.end(),
                              pc.latencies_us.begin(), pc.latencies_us.end());
  }
  total.throughput =
      static_cast<double>(total.latencies_us.size()) / (secs > 0 ? secs : 1);
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  tml::bench::Metrics metrics(argc, argv);

  auto store_r = tml::store::ObjectStore::Open("");
  if (!store_r.ok()) {
    std::fprintf(stderr, "bench_server: %s\n",
                 store_r.status().ToString().c_str());
    return 1;
  }
  auto store = std::move(*store_r);
  Universe universe(store.get());
  if (!universe.InstallStdlib().ok() ||
      !universe
           .InstallSource("complex", kComplexSrc,
                          tml::fe::BindingMode::kLibrary)
           .ok() ||
      !universe.InstallSource("app", kAppSrc, tml::fe::BindingMode::kLibrary)
           .ok()) {
    std::fprintf(stderr, "bench_server: install failed\n");
    return 1;
  }

  std::string sock = "/tmp/tml_bench_server_" +
                     std::to_string(static_cast<long>(getpid())) + ".sock";
  ServerOptions opts;
  opts.unix_path = sock;
  opts.workers = 4;
  Server server(&universe, opts);
  if (!server.Start().ok()) {
    std::fprintf(stderr, "bench_server: server start failed\n");
    return 1;
  }

  constexpr int kClients = 4;
  constexpr int kRequestsEach = 2000;
  constexpr int kPipelineDepth = 32;

  // Warmup (also seeds worker-VM swizzle caches).
  (void)RunLoad(sock, kClients, 200, 8, /*heavy=*/false);
  (void)RunLoad(sock, kClients, 50, 8, /*heavy=*/true);

  std::printf("bench_server: %d clients x %d requests, work depth %d\n",
              kClients, kRequestsEach, kWorkDepth);

  LoadResult unpiped =
      RunLoad(sock, kClients, kRequestsEach, 1, /*heavy=*/false);
  LoadResult piped =
      RunLoad(sock, kClients, kRequestsEach, kPipelineDepth, /*heavy=*/false);
  if (unpiped.errors + piped.errors > 0) {
    std::fprintf(stderr, "bench_server: %d errors under load\n",
                 unpiped.errors + piped.errors);
    return 1;
  }

  double p50 = Percentile(&unpiped.latencies_us, 0.50);
  double p99 = Percentile(&unpiped.latencies_us, 0.99);
  double piped_p50 = Percentile(&piped.latencies_us, 0.50);
  double piped_p99 = Percentile(&piped.latencies_us, 0.99);
  double speedup = piped.throughput / unpiped.throughput;
  std::printf("  unpipelined: %10.0f req/s   p50 %6.1f us   p99 %6.1f us\n",
              unpiped.throughput, p50, p99);
  std::printf("  pipelined:   %10.0f req/s   p50 %6.1f us   p99 %6.1f us"
              "   (depth %d, %.2fx)\n",
              piped.throughput, piped_p50, piped_p99, kPipelineDepth, speedup);

  // ---- the §4.1 payoff at the wire: CALL latency before/after OPTIMIZE --
  LoadResult before = RunLoad(sock, 1, 1500, 1, /*heavy=*/true);
  double before_p50 = Percentile(&before.latencies_us, 0.50);

  {
    auto conn = Client::ConnectUnix(sock);
    if (!conn.ok()) {
      std::fprintf(stderr, "bench_server: optimize connect failed\n");
      return 1;
    }
    Client cli = std::move(*conn);
    for (const char* fn : {"work", "cabs"}) {
      auto r = cli.Call({"optimize", "app", fn});
      if (!r.ok() || r->is_err()) {
        std::fprintf(stderr, "bench_server: OPTIMIZE app.%s failed\n", fn);
        return 1;
      }
    }
    for (const char* fn : {"make", "getx", "gety"}) {
      auto r = cli.Call({"optimize", "complex", fn});
      if (!r.ok() || r->is_err()) {
        std::fprintf(stderr, "bench_server: OPTIMIZE complex.%s failed\n", fn);
        return 1;
      }
    }
  }

  LoadResult after = RunLoad(sock, 1, 1500, 1, /*heavy=*/true);
  double after_p50 = Percentile(&after.latencies_us, 0.50);
  if (before.errors + after.errors > 0) {
    std::fprintf(stderr, "bench_server: errors around OPTIMIZE\n");
    return 1;
  }
  double opt_speedup = after_p50 > 0 ? before_p50 / after_p50 : 0;
  std::printf("  CALL p50 before OPTIMIZE: %6.1f us, after: %6.1f us (%.2fx)\n",
              before_p50, after_p50, opt_speedup);

  // ---- overload: 2x admission capacity (DESIGN.md §13) ------------------
  // A server capped at kClients sessions, driven by 2x that many clients:
  // the excess must be shed immediately with one clean ERR_OVERLOAD frame
  // (fail fast — no queueing behind admitted work), while the admitted
  // clients' p99 stays in the same regime as the uncontended run.
  int shed_total = 0;
  double overload_p99 = 0;
  {
    std::string osock = sock + ".ov";
    ServerOptions oopts;
    oopts.unix_path = osock;
    oopts.workers = 4;
    oopts.max_sessions = kClients;
    Server oserver(&universe, oopts);
    if (!oserver.Start().ok()) {
      std::fprintf(stderr, "bench_server: overload server start failed\n");
      return 1;
    }
    constexpr int kOverClients = 2 * kClients;
    constexpr int kOverRequests = 600;
    std::atomic<int> shed{0};
    std::atomic<int> over_errors{0};
    std::vector<std::vector<double>> lat(kOverClients);
    std::vector<double> shed_us(kOverClients, 0);
    std::vector<std::thread> threads;
    for (int c = 0; c < kOverClients; ++c) {
      threads.emplace_back([&, c] {
        auto s0 = Clock::now();
        auto conn = Client::ConnectUnix(osock);
        if (!conn.ok()) {
          over_errors++;
          return;
        }
        Client cli = std::move(*conn);
        WireValue req = LightRequest();
        for (int k = 0; k < kOverRequests; ++k) {
          auto r0 = Clock::now();
          if (!cli.Send(req).ok()) {
            over_errors++;
            return;
          }
          auto r = cli.Recv();
          if (!r.ok()) {
            over_errors++;
            return;
          }
          if (r->is_err()) {
            // Shed at admission: one decodable frame, then done.  Record
            // how fast the rejection came back.
            shed++;
            shed_us[static_cast<size_t>(c)] =
                std::chrono::duration<double, std::micro>(Clock::now() - s0)
                    .count();
            return;
          }
          if (!LightReplyOk(*r)) {
            over_errors++;
            return;
          }
          lat[static_cast<size_t>(c)].push_back(
              std::chrono::duration<double, std::micro>(Clock::now() - r0)
                  .count());
        }
      });
    }
    for (auto& t : threads) t.join();
    oserver.Stop();
    oserver.Join();
    std::remove(osock.c_str());
    if (over_errors.load() > 0) {
      std::fprintf(stderr, "bench_server: %d transport errors under overload"
                           " (shed must be a clean frame, not a dead socket)\n",
                   over_errors.load());
      return 1;
    }
    std::vector<double> accepted;
    for (auto& l : lat) accepted.insert(accepted.end(), l.begin(), l.end());
    shed_total = shed.load();
    overload_p99 = Percentile(&accepted, 0.99);
    double worst_shed = 0;
    for (double us : shed_us) worst_shed = std::max(worst_shed, us);
    std::printf("  overload (2x capacity): %d shed (worst %.0f us to reject),"
                " accepted p99 %6.1f us over %zu requests\n",
                shed_total, worst_shed, overload_p99, accepted.size());
  }

  metrics.Add("clients", kClients);
  metrics.Add("requests_per_client", kRequestsEach);
  metrics.Add("pipeline_depth", kPipelineDepth);
  metrics.Add("throughput_unpipelined_rps", unpiped.throughput);
  metrics.Add("throughput_pipelined_rps", piped.throughput);
  metrics.Add("pipeline_speedup", speedup);
  metrics.Add("p50_us", p50);
  metrics.Add("p99_us", p99);
  metrics.Add("pipelined_p50_us", piped_p50);
  metrics.Add("pipelined_p99_us", piped_p99);
  metrics.Add("call_us_before_optimize", before_p50);
  metrics.Add("call_us_after_optimize", after_p50);
  metrics.Add("optimize_speedup", opt_speedup);
  metrics.Add("shed_total", shed_total);
  metrics.Add("p99_under_overload_us", overload_p99);

  server.Stop();
  server.Join();
  std::remove(sock.c_str());
  return 0;
}
