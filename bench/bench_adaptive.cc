// E6 — adaptive optimization: profile-guided reflect.optimize with atomic
// code swap (no manual `reflect.optimize` calls anywhere in the workload).
//
// Four phases:
//
//   0. Baselines in a throwaway universe: steps/call of the unoptimized
//      closure and of a *manually* reflect-optimized one.
//   1. Adaptive run (background worker): the mutator just calls `cabs`;
//      the manager notices the heat, optimizes in the background, and
//      swaps the code under the live OID.  Steady-state steps/call must
//      land within 10% of the manual baseline.
//   2. Store close/reopen: the swap is durable — the first call after
//      restart already runs optimized code.
//   3. Rollback/redeploy: the original closure record is restored
//      (byte-identical bindings).  Re-adaptation is driven by the
//      *persisted* hotness profile (the closure is already known hot) and
//      served by the *persistent* reflect cache (same fingerprint, zero
//      re-optimization) — both must hit.

#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "adaptive/manager.h"
#include "bench/bench_util.h"
#include "runtime/universe.h"

namespace {

using tml::Oid;
using tml::adaptive::AdaptiveManager;
using tml::adaptive::AdaptiveOptions;
using tml::rt::Universe;
using tml::vm::Value;

constexpr const char* kComplexSrc =
    "fun make(x, y) = array(x, y) end\n"
    "fun getx(c) = c[0] end\n"
    "fun gety(c) = c[1] end";
constexpr const char* kAppSrc =
    "fun cabs(c) ="
    "  sqrt(real(getx(c) * getx(c) + gety(c) * gety(c))) "
    "end";

AdaptiveOptions BenchOptions() {
  AdaptiveOptions opts;
  opts.policy.hot_steps = 5000;
  opts.policy.min_calls = 8;
  opts.poll_interval = std::chrono::milliseconds(5);
  return opts;
}

bool Install(Universe* u) {
  return u->InstallSource("complex", kComplexSrc,
                          tml::fe::BindingMode::kLibrary)
             .ok() &&
         u->InstallSource("app", kAppSrc, tml::fe::BindingMode::kLibrary)
             .ok();
}

// One cabs(3+4i) call; returns its step count (0 on failure).
uint64_t CallOnce(Universe* u, Oid cabs, Value arg) {
  Value args[] = {arg};
  auto r = u->Call(cabs, args);
  if (!r.ok() || r->value.r != 5.0) return 0;
  return r->steps;
}

tml::Result<Value> MakeArg(Universe* u) {
  Value margs[] = {Value::Int(3), Value::Int(4)};
  auto c = u->Call(*u->Lookup("complex", "make"), margs);
  if (!c.ok()) return c.status();
  return c->value;
}

}  // namespace

int main(int argc, char** argv) {
  tml::bench::Metrics metrics(argc, argv);
  std::printf(
      "== E6: adaptive optimization -- hotness profile, background "
      "reflect.optimize, atomic swap ==\n\n");

  // ---- phase 0: baselines (separate universe; the adaptive store below
  // never sees a manual reflect.optimize call) ----
  uint64_t unopt_steps = 0, manual_steps = 0;
  {
    auto s = tml::store::ObjectStore::Open("");
    if (!s.ok() ) return 1;
    Universe u(s->get());
    if (!Install(&u)) return 1;
    Oid cabs = *u.Lookup("app", "cabs");
    auto arg = MakeArg(&u);
    if (!arg.ok()) return 1;
    unopt_steps = CallOnce(&u, cabs, *arg);
    auto manual = u.ReflectOptimize(cabs);
    if (!manual.ok()) {
      std::printf("manual reflect: %s\n", manual.status().ToString().c_str());
      return 1;
    }
    manual_steps = CallOnce(&u, *manual, *arg);
  }
  std::printf("baseline steps/call          unoptimized=%llu manual=%llu\n",
              static_cast<unsigned long long>(unopt_steps),
              static_cast<unsigned long long>(manual_steps));

  // ---- phase 1: adaptive run with the background worker ----
  const std::string path = "/tmp/tml_bench_adaptive.db";
  std::remove(path.c_str());
  auto s = tml::store::ObjectStore::Open(path);
  if (!s.ok()) return 1;
  Oid cabs = tml::kNullOid;
  // Original closure records of EVERY installed function (stdlib included:
  // the adaptive manager promotes hot library callees too), for the
  // phase-3 rollback.
  std::vector<std::pair<Oid, std::string>> orig_records;
  uint64_t adaptive_steps = 0;
  uint64_t calls_until_optimized = 0;
  {
    Universe u(s->get());
    if (!Install(&u)) return 1;
    cabs = *u.Lookup("app", "cabs");
    size_t seen = 0, live = (*s)->num_objects();
    for (Oid oid = 1; seen < live; ++oid) {
      if (!(*s)->Contains(oid)) continue;
      ++seen;
      auto obj = (*s)->Get(oid);
      if (obj.ok() && obj->type == tml::store::ObjType::kClosure) {
        orig_records.emplace_back(oid, obj->bytes);
      }
    }
    auto arg = MakeArg(&u);
    if (!arg.ok()) return 1;

    AdaptiveManager* mgr = tml::adaptive::EnableAdaptive(&u, BenchOptions());
    (void)mgr;
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    uint64_t calls = 0;
    uint64_t steps = 0;
    // Plain workload loop: call cabs until the manager has swapped in
    // optimized code under the same OID.
    do {
      steps = CallOnce(&u, cabs, *arg);
      if (steps == 0) return 1;
      ++calls;
    } while (steps > manual_steps * 1.1 &&
             std::chrono::steady_clock::now() < deadline);
    calls_until_optimized = calls;
    // Steady state: the next calls stay optimized.
    adaptive_steps = steps;
    for (int i = 0; i < 100; ++i) {
      uint64_t st = CallOnce(&u, cabs, *arg);
      if (st > adaptive_steps) adaptive_steps = st;
    }
    tml::rt::AdaptiveCounters c = u.adaptive_counters();
    std::printf(
        "\nadaptive run:                %llu calls until optimized\n"
        "  steady-state steps/call    %llu (manual: %llu)\n"
        "  manager counters           polls=%llu promotions=%llu "
        "backoffs=%llu stale=%llu failures=%llu persists=%llu\n",
        static_cast<unsigned long long>(calls_until_optimized),
        static_cast<unsigned long long>(adaptive_steps),
        static_cast<unsigned long long>(manual_steps),
        static_cast<unsigned long long>(c.polls),
        static_cast<unsigned long long>(c.promotions),
        static_cast<unsigned long long>(c.backoffs),
        static_cast<unsigned long long>(c.stale_rejections),
        static_cast<unsigned long long>(c.reflect_failures),
        static_cast<unsigned long long>(c.profile_persists));
    if (c.promotions == 0) {
      std::printf("FAIL: no automatic promotion happened\n");
      return 1;
    }
    // ~Universe stops the worker before the store closes.
  }
  if (!(*s)->Commit().ok()) return 1;
  s->reset();

  double vs_manual =
      static_cast<double>(adaptive_steps) / static_cast<double>(manual_steps);
  bool within_10pct = vs_manual <= 1.10;
  std::printf("  adaptive vs manual         %.3fx (%s)\n", vs_manual,
              within_10pct ? "within 10%" : "FAIL: outside 10%");

  // ---- phase 2: restart — the swap is durable ----
  auto s2 = tml::store::ObjectStore::Open(path);
  if (!s2.ok()) return 1;
  uint64_t restart_steps = 0;
  {
    Universe u(s2->get());
    if (!u.LoadPersistedModules().ok()) return 1;
    auto arg = MakeArg(&u);
    if (!arg.ok()) return 1;
    restart_steps = CallOnce(&u, cabs, *arg);
    std::printf(
        "\nafter close/reopen:          first call steps/call = %llu (%s)\n",
        static_cast<unsigned long long>(restart_steps),
        restart_steps == adaptive_steps ? "optimized steady state"
                                        : "FAIL: lost the swap");
  }

  // ---- phase 3: rollback to the original code (byte-identical records —
  // a redeploy of the unoptimized modules), then re-adapt from the
  // persisted profile + reflect cache ----
  for (const auto& [oid, bytes] : orig_records) {
    if (!(*s2)->Put(oid, tml::store::ObjType::kClosure, bytes).ok()) return 1;
  }
  if (!(*s2)->Commit().ok()) return 1;
  uint64_t repromote_polls = 0;
  uint64_t reoptimize_cache_hits = 0;
  uint64_t rollback_steps = 0, readapted_steps = 0;
  uint64_t profile_heat_loaded = 0;
  {
    Universe u(s2->get());
    if (!u.LoadPersistedModules().ok()) return 1;
    auto arg = MakeArg(&u);
    if (!arg.ok()) return 1;
    rollback_steps = CallOnce(&u, cabs, *arg);

    AdaptiveOptions opts = BenchOptions();
    AdaptiveManager mgr(&u, opts);
    if (!mgr.LoadPersistedProfile().ok()) return 1;
    tml::adaptive::HotnessProfile loaded = mgr.ProfileSnapshot();
    const tml::adaptive::ProfileEntry* e = loaded.Find(cabs);
    profile_heat_loaded = e != nullptr ? e->steps : 0;

    // Deterministic re-adaptation: polls only; the persisted heat makes
    // the closure a candidate without re-warming the counters.
    for (int i = 0; i < 50 && u.adaptive_counters().promotions == 0; ++i) {
      if (!mgr.PollOnce().ok()) return 1;
      ++repromote_polls;
      CallOnce(&u, cabs, *arg);  // keep a trickle of fresh heat flowing
    }
    reoptimize_cache_hits = mgr.stats().reflect_cache_hits;
    readapted_steps = CallOnce(&u, cabs, *arg);
    std::printf(
        "\nrollback + re-adaptation:    rolled-back steps/call = %llu\n"
        "  persisted profile heat     %llu steps (loaded from kProfile)\n"
        "  polls to re-promote        %llu\n"
        "  reflect cache hits         %llu (re-optimization skipped)\n"
        "  re-adapted steps/call      %llu\n",
        static_cast<unsigned long long>(rollback_steps),
        static_cast<unsigned long long>(profile_heat_loaded),
        static_cast<unsigned long long>(repromote_polls),
        static_cast<unsigned long long>(reoptimize_cache_hits),
        static_cast<unsigned long long>(readapted_steps));
  }

  metrics.Add("steps_per_call_unopt", static_cast<double>(unopt_steps));
  metrics.Add("steps_per_call_manual", static_cast<double>(manual_steps));
  metrics.Add("steps_per_call_adaptive", static_cast<double>(adaptive_steps));
  metrics.Add("adaptive_vs_manual_ratio", vs_manual);
  metrics.Add("calls_until_optimized",
              static_cast<double>(calls_until_optimized));
  metrics.Add("restart_steps_per_call", static_cast<double>(restart_steps));
  metrics.Add("profile_heat_loaded", static_cast<double>(profile_heat_loaded));
  metrics.Add("repromote_polls", static_cast<double>(repromote_polls));
  metrics.Add("reoptimize_reflect_cache_hits",
              static_cast<double>(reoptimize_cache_hits));
  metrics.Add("readapted_steps_per_call",
              static_cast<double>(readapted_steps));

  bool ok = within_10pct && restart_steps == adaptive_steps &&
            rollback_steps == unopt_steps && readapted_steps == adaptive_steps &&
            reoptimize_cache_hits >= 1 && profile_heat_loaded > 0;
  std::printf("\n%s\n", ok ? "PASS: automatic online optimization, durable "
                             "across restart, re-adapts from persisted "
                             "profile + reflect cache"
                           : "FAIL");
  std::remove(path.c_str());
  return ok ? 0 : 1;
}
