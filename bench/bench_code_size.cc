// E2 — PTML space overhead (paper §6).
//
// "Due to the space requirements for the additional persistent encoding of
//  the TML tree for each function, the code size doubles (1.2MB vs 600kB
//  for the complete Tycoon system)."
//
// We install the whole Stanford suite plus the standard library into one
// store, with and without PTML attachment, and report executable bytes,
// PTML bytes, and the ratio (code+PTML)/code.

#include <cstdio>

#include "bench/bench_util.h"
#include "corpus/stanford.h"
#include "runtime/universe.h"

namespace {

using tml::corpus::StanfordProgram;
using tml::rt::InstallOptions;
using tml::rt::Universe;

struct Sizes {
  size_t code = 0;
  size_t ptml = 0;
  size_t closures = 0;
};

}  // namespace

int main(int argc, char** argv) {
  tml::bench::Metrics metrics(argc, argv);
  std::printf("== E2: persistent TML (PTML) space overhead (paper Sec. 6) ==\n\n");
  std::printf("%-10s %12s %12s %12s %8s\n", "module", "code(B)", "ptml(B)",
              "code+ptml", "ratio");

  auto s = tml::store::ObjectStore::Open("");
  if (!s.ok()) return 1;
  Universe u(s->get());
  if (!u.InstallStdlib().ok()) return 1;
  Sizes prev{};
  {
    auto sz = u.Sizes();
    size_t total = sz.code_bytes + sz.ptml_bytes;
    std::printf("%-10s %12zu %12zu %12zu %7.2fx\n", "stdlib", sz.code_bytes,
                sz.ptml_bytes, total,
                static_cast<double>(total) / sz.code_bytes);
    prev = {sz.code_bytes, sz.ptml_bytes, sz.closure_bytes};
  }

  for (const StanfordProgram& prog : tml::corpus::StanfordSuite()) {
    InstallOptions opts;
    opts.attach_ptml = true;
    tml::Status st = u.InstallSource(prog.name, prog.source,
                                     tml::fe::BindingMode::kLibrary, opts);
    if (!st.ok()) {
      std::printf("%-10s ERROR %s\n", prog.name, st.ToString().c_str());
      continue;
    }
    auto sz = u.Sizes();
    size_t dcode = sz.code_bytes - prev.code;
    size_t dptml = sz.ptml_bytes - prev.ptml;
    std::printf("%-10s %12zu %12zu %12zu %7.2fx\n", prog.name, dcode, dptml,
                dcode + dptml,
                static_cast<double>(dcode + dptml) / dcode);
    prev = {sz.code_bytes, sz.ptml_bytes, sz.closure_bytes};
  }

  auto sz = u.Sizes();
  size_t total = sz.code_bytes + sz.ptml_bytes;
  std::printf("%-10s %12zu %12zu %12zu %7.2fx\n", "TOTAL", sz.code_bytes,
              sz.ptml_bytes, total,
              static_cast<double>(total) / sz.code_bytes);
  std::printf(
      "\n(paper: whole-system code size doubles with PTML attached —\n"
      " 1.2MB vs 600kB; compare the TOTAL ratio above)\n");
  metrics.Add("code_bytes", static_cast<double>(sz.code_bytes));
  metrics.Add("ptml_bytes", static_cast<double>(sz.ptml_bytes));
  metrics.Add("closure_bytes", static_cast<double>(sz.closure_bytes));
  metrics.Add("ptml_overhead_ratio",
              static_cast<double>(total) / sz.code_bytes);
  return 0;
}
