// Shared benchmark utilities: the --json metric emitter.
//
// Every bench_*.cc binary accepts `--json <path>`; when given, the named
// metrics collected during the run are written to <path> as a flat JSON
// object (metric name -> number).  tools/check.sh --bench uses this to
// drop a BENCH_<name>.json per binary so runs can be diffed or tracked
// without scraping stdout.

#ifndef TML_BENCH_BENCH_UTIL_H_
#define TML_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

namespace tml::bench {

class Metrics {
 public:
  Metrics(int argc, char** argv) {
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0) path_ = argv[i + 1];
    }
  }

  ~Metrics() { Flush(); }
  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

  void Add(const std::string& name, double value) {
    metrics_.emplace_back(name, value);
  }

  /// Write the collected metrics if --json was given; safe to call twice.
  void Flush() {
    if (path_.empty() || metrics_.empty()) return;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path_.c_str());
      return;
    }
    std::fprintf(f, "{\n");
    for (size_t i = 0; i < metrics_.size(); ++i) {
      double v = metrics_[i].second;
      std::fprintf(f, "  \"%s\": %s%s\n",
                   JsonEscape(metrics_[i].first).c_str(),
                   std::isfinite(v) ? FormatNumber(v).c_str() : "null",
                   i + 1 < metrics_.size() ? "," : "");
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
    metrics_.clear();
  }

  /// Escape a metric name for use inside a JSON string literal.  Names are
  /// caller-controlled and have contained `"`/`\` (ablation labels), which
  /// used to produce unparseable BENCH_*.json files.
  static std::string JsonEscape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
          if (c < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
          } else {
            out += static_cast<char>(c);
          }
      }
    }
    return out;
  }

 private:
  static std::string FormatNumber(double v) {
    char buf[64];
    if (v == static_cast<double>(static_cast<long long>(v)) &&
        std::fabs(v) < 1e15) {
      std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    } else {
      std::snprintf(buf, sizeof buf, "%.6g", v);
    }
    return buf;
  }

  std::string path_;
  std::vector<std::pair<std::string, double>> metrics_;
};

}  // namespace tml::bench

#endif  // TML_BENCH_BENCH_UTIL_H_
