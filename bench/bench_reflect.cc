// E3 — optimization across abstraction barriers (paper §4.1).
//
// The paper's running example: module `complex` exports an ADT with
// accessor functions; client function `abs` uses them through the module
// barrier.  `reflect.optimize(abs)` inlines the accessors and library
// arithmetic, yielding `optimizedAbs` equivalent to
//     sqrt(c.x*c.x + c.y*c.y)
// computed without any cross-module call.
//
// Reported series: calls/second before/after, executed instructions per
// call, optimizer latency, and TML term sizes through the pipeline —
// plus the persistent reflect-cache series: warm (cache-hit) vs. cold
// (cache-miss) reflect latency, and a store close/reopen round trip
// showing the cache serving byte-identical regenerated code.

#include <chrono>
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "core/printer.h"
#include "runtime/universe.h"
#include "support/varint.h"

namespace {

using tml::Oid;
using tml::rt::ReflectStats;
using tml::rt::Universe;
using tml::vm::Value;

// The kCode OID inside a closure record is its leading varint.
Oid CodeOidOfClosure(tml::store::ObjectStore* s, Oid closure_oid) {
  auto obj = s->Get(closure_oid);
  if (!obj.ok()) return tml::kNullOid;
  tml::VarintReader r(obj->bytes.data(), obj->bytes.size());
  auto code_oid = r.ReadVarint();
  return code_oid.ok() ? *code_oid : tml::kNullOid;
}

double MsPerCall(Universe* u, Oid f, const Value* args, size_t nargs,
                 int iters, uint64_t* steps) {
  std::span<const Value> span(args, nargs);
  (void)u->Call(f, span);  // warm caches
  auto t0 = std::chrono::steady_clock::now();
  uint64_t total_steps = 0;
  for (int i = 0; i < iters; ++i) {
    auto r = u->Call(f, span);
    if (!r.ok()) return -1;
    total_steps += r->steps;
  }
  auto t1 = std::chrono::steady_clock::now();
  *steps = total_steps / iters;
  return std::chrono::duration<double, std::milli>(t1 - t0).count() / iters;
}

}  // namespace

int main(int argc, char** argv) {
  tml::bench::Metrics metrics(argc, argv);
  std::printf(
      "== E3: reflect.optimize across abstraction barriers "
      "(paper Sec. 4.1) ==\n\n");

  // File-backed so the close/reopen (open-database restart) path below is
  // the real thing.
  const std::string path = "/tmp/tml_bench_reflect.db";
  std::remove(path.c_str());
  auto s = tml::store::ObjectStore::Open(path);
  if (!s.ok()) return 1;
  Universe u(s->get());
  tml::Status st = u.InstallSource(
      "complex",
      "fun make(x, y) = array(x, y) end\n"
      "fun getx(c) = c[0] end\n"
      "fun gety(c) = c[1] end",
      tml::fe::BindingMode::kLibrary);
  if (!st.ok()) {
    std::printf("install complex: %s\n", st.ToString().c_str());
    return 1;
  }
  st = u.InstallSource(
      "app",
      "fun cabs(c) ="
      "  sqrt(real(getx(c) * getx(c) + gety(c) * gety(c))) "
      "end",
      tml::fe::BindingMode::kLibrary);
  if (!st.ok()) {
    std::printf("install app: %s\n", st.ToString().c_str());
    return 1;
  }

  Oid make = *u.Lookup("complex", "make");
  Oid cabs = *u.Lookup("app", "cabs");
  Value margs[] = {Value::Int(3), Value::Int(4)};
  auto c = u.Call(make, margs);
  if (!c.ok()) return 1;
  Value cargs[] = {c->value};

  uint64_t steps_before = 0;
  double ms_before = MsPerCall(&u, cabs, cargs, 1, 20000, &steps_before);

  ReflectStats stats;
  auto t0 = std::chrono::steady_clock::now();
  auto optimized = u.ReflectOptimize(cabs, {}, &stats);
  auto t1 = std::chrono::steady_clock::now();
  if (!optimized.ok()) {
    std::printf("reflect: %s\n", optimized.status().ToString().c_str());
    return 1;
  }
  double reflect_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();

  // Warm path: the persistent cache serves the regenerated code without
  // decoding, optimizing or generating anything.
  constexpr int kWarmIters = 200;
  ReflectStats warm_stats;
  auto tw0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kWarmIters; ++i) {
    auto again = u.ReflectOptimize(cabs, {}, &warm_stats);
    if (!again.ok() || *again != *optimized) {
      std::printf("warm reflect diverged\n");
      return 1;
    }
  }
  auto tw1 = std::chrono::steady_clock::now();
  double warm_ms =
      std::chrono::duration<double, std::milli>(tw1 - tw0).count() /
      kWarmIters;

  uint64_t steps_after = 0;
  double ms_after = MsPerCall(&u, *optimized, cargs, 1, 20000, &steps_after);

  std::printf("abs(3+4i)                 = 5.0 (both versions)\n\n");
  std::printf("%-28s %12s %12s\n", "", "abs", "optimizedAbs");
  std::printf("%-28s %12.4f %12.4f\n", "time per call (ms)", ms_before,
              ms_after);
  std::printf("%-28s %12llu %12llu\n", "TVM instructions per call",
              static_cast<unsigned long long>(steps_before),
              static_cast<unsigned long long>(steps_after));
  std::printf("%-28s %12s %11.2fx\n", "speedup (instructions)", "",
              static_cast<double>(steps_before) / steps_after);
  std::printf("\nreflective optimizer:\n");
  std::printf("  latency                  %10.3f ms\n", reflect_ms);
  std::printf("  R-value bindings inlined %6zu (opaque: %zu)\n",
              stats.bindings_resolved, stats.opaque_bindings);
  std::printf("  TML term size            %6zu -> %zu nodes\n",
              stats.input_term_size, stats.output_term_size);
  std::printf("  rewrite rules            %s\n",
              stats.optimizer.rewrite.ToString().c_str());
  std::printf("  expansion                %s\n",
              stats.optimizer.expand.ToString().c_str());

  std::printf("\npersistent reflect cache:\n");
  std::printf("  cold reflect (miss)      %10.3f ms\n", reflect_ms);
  std::printf("  warm reflect (hit)       %10.3f ms\n", warm_ms);
  std::printf("  speedup (warm vs cold)   %10.1fx\n", reflect_ms / warm_ms);
  std::printf("  hits / misses            %6zu / %zu\n",
              warm_stats.cache_hits,
              stats.cache_misses + warm_stats.cache_misses);
  std::printf("  index bytes              %6zu\n", warm_stats.cache_bytes);

  // Show the optimized TML term (the paper prints the wrapped input).
  tml::ir::Module m;
  auto term = u.ReflectTerm(cabs, &m);
  if (term.ok()) {
    const tml::ir::Abstraction* opt = tml::ir::Optimize(&m, *term);
    std::printf("\noptimizedAbs as TML (after barrier collapse):\n%s\n",
                tml::ir::PrintValue(m, opt).c_str());
  }

  // ---- open-database restart: the cache survives close/reopen ----
  Oid cached_clo = *optimized;
  Oid cached_code = CodeOidOfClosure(s->get(), cached_clo);
  std::string code_bytes_before = (*s)->Get(cached_code)->bytes;
  auto r_before = u.Call(cached_clo, cargs);
  if (!r_before.ok()) return 1;
  if (!(*s)->Commit().ok()) return 1;
  s->reset();  // close the store (and drop the old Universe's backing)

  auto s2 = tml::store::ObjectStore::Open(path);
  if (!s2.ok()) return 1;
  Universe u2(s2->get());
  if (!u2.LoadPersistedModules().ok()) return 1;
  ReflectStats restart_stats;
  auto tr0 = std::chrono::steady_clock::now();
  auto reopened = u2.ReflectOptimize(cabs, {}, &restart_stats);
  auto tr1 = std::chrono::steady_clock::now();
  if (!reopened.ok()) {
    std::printf("post-restart reflect: %s\n",
                reopened.status().ToString().c_str());
    return 1;
  }
  double restart_ms =
      std::chrono::duration<double, std::milli>(tr1 - tr0).count();
  std::string code_bytes_after =
      (*s2)->Get(CodeOidOfClosure(s2->get(), *reopened))->bytes;
  // Rebuild the argument in u2's heap — values don't cross universes.
  auto c2 = u2.Call(*u2.Lookup("complex", "make"), margs);
  if (!c2.ok()) return 1;
  Value cargs2[] = {c2->value};
  auto r_after = u2.Call(*reopened, cargs2);
  if (!r_after.ok()) return 1;

  std::printf("\nafter store close/reopen:\n");
  std::printf("  reflect (hit)            %10.3f ms  (hits=%zu misses=%zu)\n",
              restart_ms, restart_stats.cache_hits,
              restart_stats.cache_misses);
  std::printf("  linked code              %s (%zu bytes)\n",
              code_bytes_after == code_bytes_before ? "byte-identical"
                                                    : "MISMATCH",
              code_bytes_after.size());
  std::printf("  abs(3+4i)                %s\n",
              r_after->value.r == r_before->value.r ? "identical result"
                                                    : "MISMATCH");
  metrics.Add("ms_per_call_before", ms_before);
  metrics.Add("ms_per_call_after", ms_after);
  metrics.Add("steps_per_call_before", static_cast<double>(steps_before));
  metrics.Add("steps_per_call_after", static_cast<double>(steps_after));
  metrics.Add("step_speedup",
              static_cast<double>(steps_before) / steps_after);
  metrics.Add("reflect_cold_ms", reflect_ms);
  metrics.Add("reflect_warm_ms", warm_ms);
  metrics.Add("reflect_restart_ms", restart_ms);
  metrics.Add("restart_cache_hits",
              static_cast<double>(restart_stats.cache_hits));

  std::remove(path.c_str());
  return (code_bytes_after == code_bytes_before &&
          restart_stats.cache_hits == 1)
             ? 0
             : 1;
}
