// E3 — optimization across abstraction barriers (paper §4.1).
//
// The paper's running example: module `complex` exports an ADT with
// accessor functions; client function `abs` uses them through the module
// barrier.  `reflect.optimize(abs)` inlines the accessors and library
// arithmetic, yielding `optimizedAbs` equivalent to
//     sqrt(c.x*c.x + c.y*c.y)
// computed without any cross-module call.
//
// Reported series: calls/second before/after, executed instructions per
// call, optimizer latency, and TML term sizes through the pipeline.

#include <chrono>
#include <cstdio>

#include "core/printer.h"
#include "runtime/universe.h"

namespace {

using tml::Oid;
using tml::rt::ReflectStats;
using tml::rt::Universe;
using tml::vm::Value;

double MsPerCall(Universe* u, Oid f, const Value* args, size_t nargs,
                 int iters, uint64_t* steps) {
  std::span<const Value> span(args, nargs);
  (void)u->Call(f, span);  // warm caches
  auto t0 = std::chrono::steady_clock::now();
  uint64_t total_steps = 0;
  for (int i = 0; i < iters; ++i) {
    auto r = u->Call(f, span);
    if (!r.ok()) return -1;
    total_steps += r->steps;
  }
  auto t1 = std::chrono::steady_clock::now();
  *steps = total_steps / iters;
  return std::chrono::duration<double, std::milli>(t1 - t0).count() / iters;
}

}  // namespace

int main() {
  std::printf(
      "== E3: reflect.optimize across abstraction barriers "
      "(paper Sec. 4.1) ==\n\n");

  auto s = tml::store::ObjectStore::Open("");
  if (!s.ok()) return 1;
  Universe u(s->get());
  tml::Status st = u.InstallSource(
      "complex",
      "fun make(x, y) = array(x, y) end\n"
      "fun getx(c) = c[0] end\n"
      "fun gety(c) = c[1] end",
      tml::fe::BindingMode::kLibrary);
  if (!st.ok()) {
    std::printf("install complex: %s\n", st.ToString().c_str());
    return 1;
  }
  st = u.InstallSource(
      "app",
      "fun cabs(c) ="
      "  sqrt(real(getx(c) * getx(c) + gety(c) * gety(c))) "
      "end",
      tml::fe::BindingMode::kLibrary);
  if (!st.ok()) {
    std::printf("install app: %s\n", st.ToString().c_str());
    return 1;
  }

  Oid make = *u.Lookup("complex", "make");
  Oid cabs = *u.Lookup("app", "cabs");
  Value margs[] = {Value::Int(3), Value::Int(4)};
  auto c = u.Call(make, margs);
  if (!c.ok()) return 1;
  Value cargs[] = {c->value};

  uint64_t steps_before = 0;
  double ms_before = MsPerCall(&u, cabs, cargs, 1, 20000, &steps_before);

  ReflectStats stats;
  auto t0 = std::chrono::steady_clock::now();
  auto optimized = u.ReflectOptimize(cabs, {}, &stats);
  auto t1 = std::chrono::steady_clock::now();
  if (!optimized.ok()) {
    std::printf("reflect: %s\n", optimized.status().ToString().c_str());
    return 1;
  }
  double reflect_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();

  uint64_t steps_after = 0;
  double ms_after = MsPerCall(&u, *optimized, cargs, 1, 20000, &steps_after);

  std::printf("abs(3+4i)                 = 5.0 (both versions)\n\n");
  std::printf("%-28s %12s %12s\n", "", "abs", "optimizedAbs");
  std::printf("%-28s %12.4f %12.4f\n", "time per call (ms)", ms_before,
              ms_after);
  std::printf("%-28s %12llu %12llu\n", "TVM instructions per call",
              static_cast<unsigned long long>(steps_before),
              static_cast<unsigned long long>(steps_after));
  std::printf("%-28s %12s %11.2fx\n", "speedup (instructions)", "",
              static_cast<double>(steps_before) / steps_after);
  std::printf("\nreflective optimizer:\n");
  std::printf("  latency                  %10.3f ms\n", reflect_ms);
  std::printf("  R-value bindings inlined %6zu (opaque: %zu)\n",
              stats.bindings_resolved, stats.opaque_bindings);
  std::printf("  TML term size            %6zu -> %zu nodes\n",
              stats.input_term_size, stats.output_term_size);
  std::printf("  rewrite rules            %s\n",
              stats.optimizer.rewrite.ToString().c_str());
  std::printf("  expansion                %s\n",
              stats.optimizer.expand.ToString().c_str());

  // Show the optimized TML term (the paper prints the wrapped input).
  tml::ir::Module m;
  auto term = u.ReflectTerm(cabs, &m);
  if (term.ok()) {
    const tml::ir::Abstraction* opt = tml::ir::Optimize(&m, *term);
    std::printf("\noptimizedAbs as TML (after barrier collapse):\n%s\n",
                tml::ir::PrintValue(m, opt).c_str());
  }
  return 0;
}
