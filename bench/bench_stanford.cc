// E1 — the paper's §6 headline experiment.
//
// "Performing local program optimizations on standard benchmarks for
//  imperative programs (the Stanford Suite) do not yield a significant
//  speedup [...] even operations on integers and arrays are factored out
//  into dynamically bound libraries and therefore not amenable to local
//  optimization.  However, a move to dynamic (link-time or runtime)
//  optimization more than doubles the execution speed."
//
// Configurations (all in kLibrary binding mode, mirroring Tycoon):
//   unopt    — compiled, linked, no optimization
//   static   — the local static optimizer ran per function; library
//              bindings are opaque free variables (abstraction barriers)
//   dynamic  — reflect.optimize() at run time with R-value bindings
// `direct` (operators compiled straight to primitives) is shown as the
// upper-bound reference the paper's Tycoon system did not have.
//
// Expected shape: static/unopt ≈ 1x, dynamic/unopt > 2x.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "corpus/stanford.h"
#include "runtime/universe.h"
#include "vm/vm.h"

namespace {

using tml::Oid;
using tml::corpus::StanfordProgram;
using tml::rt::InstallOptions;
using tml::rt::Universe;
using tml::vm::Value;

struct Measurement {
  double ms = 0;
  uint64_t steps = 0;
  int64_t checksum = 0;
  bool ok = false;
  std::string error;
};

Measurement RunConfig(const StanfordProgram& prog, tml::fe::BindingMode mode,
                      bool static_opt, bool reflect) {
  Measurement out;
  auto s = tml::store::ObjectStore::Open("");
  if (!s.ok()) {
    out.error = s.status().ToString();
    return out;
  }
  Universe u(s->get());
  InstallOptions opts;
  opts.static_optimize = static_opt;
  tml::Status st = u.InstallSource("bench", prog.source, mode, opts);
  if (!st.ok()) {
    out.error = st.ToString();
    return out;
  }
  auto f = u.Lookup("bench", "bench");
  if (!f.ok()) {
    out.error = f.status().ToString();
    return out;
  }
  Oid target = *f;
  if (reflect) {
    // The runtime optimizer can afford a more generous inlining budget
    // than the per-function compile-time one (it runs once per program).
    tml::ir::OptimizerOptions ropts;
    ropts.expand.budget = 96;
    ropts.expand.always_inline_cost = 24;
    ropts.penalty_limit = 192;
    ropts.max_rounds = 24;
    auto r = u.ReflectOptimize(target, ropts);
    if (!r.ok()) {
      out.error = r.status().ToString();
      return out;
    }
    target = *r;
  }
  Value args[] = {Value::Int(prog.bench_n)};
  // Warm the swizzle caches, then take the best of three measured calls:
  // the minimum is the noise-robust estimator the check.sh --bench
  // dispatch gate relies on.
  (void)u.Call(target, args);
  out.ms = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    auto r = u.Call(target, args);
    auto t1 = std::chrono::steady_clock::now();
    if (!r.ok()) {
      out.error = r.status().ToString();
      return out;
    }
    double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (ms < out.ms) out.ms = ms;
    out.steps = r->steps;
    out.checksum = r->value.is_int() ? r->value.i : -1;
  }
  out.ok = true;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  tml::bench::Metrics metrics(argc, argv);
  std::printf(
      "== E1: Stanford suite -- local (static) vs dynamic optimization "
      "(paper Sec. 6) ==\n");
  std::printf(
      "library binding mode; speedups are vs the unoptimized library "
      "configuration\n\n");
  std::printf("%-8s %10s %10s %8s %10s %8s %10s %8s %12s\n", "program",
              "unopt(ms)", "static", "spdup", "dynamic", "spdup", "direct",
              "spdup", "checksum");

  double geo_static = 0, geo_dyn = 0, geo_direct = 0;
  double unopt_ms_total = 0, dyn_ms_total = 0;
  uint64_t unopt_steps_total = 0, dyn_steps_total = 0;
  int count = 0;
  for (const StanfordProgram& prog : tml::corpus::StanfordSuite()) {
    Measurement unopt =
        RunConfig(prog, tml::fe::BindingMode::kLibrary, false, false);
    Measurement stat =
        RunConfig(prog, tml::fe::BindingMode::kLibrary, true, false);
    Measurement dyn =
        RunConfig(prog, tml::fe::BindingMode::kLibrary, false, true);
    Measurement direct =
        RunConfig(prog, tml::fe::BindingMode::kDirect, false, false);
    if (!unopt.ok || !stat.ok || !dyn.ok || !direct.ok) {
      std::printf("%-8s ERROR %s%s%s%s\n", prog.name, unopt.error.c_str(),
                  stat.error.c_str(), dyn.error.c_str(),
                  direct.error.c_str());
      continue;
    }
    bool agree = unopt.checksum == stat.checksum &&
                 unopt.checksum == dyn.checksum &&
                 unopt.checksum == direct.checksum;
    double s_stat = static_cast<double>(unopt.steps) / stat.steps;
    double s_dyn = static_cast<double>(unopt.steps) / dyn.steps;
    double s_dir = static_cast<double>(unopt.steps) / direct.steps;
    std::printf("%-8s %10.2f %10.2f %7.2fx %10.2f %7.2fx %10.2f %7.2fx %12lld%s\n",
                prog.name, unopt.ms, stat.ms, s_stat, dyn.ms, s_dyn,
                direct.ms, s_dir,
                static_cast<long long>(unopt.checksum),
                agree ? "" : "  !! MISMATCH");
    geo_static += std::log(s_stat);
    geo_dyn += std::log(s_dyn);
    geo_direct += std::log(s_dir);
    unopt_ms_total += unopt.ms;
    unopt_steps_total += unopt.steps;
    dyn_ms_total += dyn.ms;
    dyn_steps_total += dyn.steps;
    ++count;
  }
  if (count > 0) {
    std::printf("\n%-8s %10s %10s %7.2fx %10s %7.2fx %10s %7.2fx\n",
                "geomean", "", "", std::exp(geo_static / count), "",
                std::exp(geo_dyn / count), "", std::exp(geo_direct / count));
    std::printf(
        "\n(speedups computed from executed TVM instructions; the paper "
        "reports\n local static ~ no speedup, dynamic > 2x -- compare the "
        "'static' and\n 'dynamic' columns)\n");
    metrics.Add("geomean_static_speedup", std::exp(geo_static / count));
    metrics.Add("geomean_dynamic_speedup", std::exp(geo_dyn / count));
    metrics.Add("geomean_direct_speedup", std::exp(geo_direct / count));
    // Raw interpreter throughput across the whole suite (per binding
    // configuration): ns per executed TVM instruction and its inverse.
    // check.sh --bench compares these between dispatch modes.
    double unopt_ns = unopt_ms_total * 1e6 / unopt_steps_total;
    double dyn_ns = dyn_ms_total * 1e6 / dyn_steps_total;
    std::printf("per-step: unopt %.2f ns, dynamic %.2f ns (dispatch: %s)\n",
                unopt_ns, dyn_ns,
                tml::vm::DispatchModeName(
                    tml::vm::ResolveDispatchMode(tml::vm::DispatchMode::kAuto)));
    metrics.Add("ns_per_step_unopt", unopt_ns);
    metrics.Add("ns_per_step_dynamic", dyn_ns);
    metrics.Add("steps_per_sec_unopt", 1e9 / unopt_ns);
    metrics.Add("steps_per_sec_dynamic", 1e9 / dyn_ns);
    metrics.Add("dispatch_threaded",
                tml::vm::ResolveDispatchMode(tml::vm::DispatchMode::kAuto) ==
                        tml::vm::DispatchMode::kThreaded
                    ? 1
                    : 0);
  }
  return 0;
}
