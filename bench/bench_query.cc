// E4 — integrated program and query optimization (paper §4.2, Fig. 4).
//
// Three series over synthetic relations:
//
//   A. merge-select:    σp(σq(R)) vs the fused σ(q∧p)(R) — the paper's
//                       worked rewrite rule; saves the intermediate
//                       relation and one pass of per-tuple dispatch.
//   B. trivial-exists:  ∃x∈R: p with x ∉ fv(p) vs p ∧ R≠∅ — the paper's
//                       scoping-sensitive rule; turns O(|R|) into O(1).
//   C. predicate inlining: a select whose predicate calls a user function
//                       through the store (library binding) vs the same
//                       query after reflect.optimize — program
//                       optimization working inside a query (Fig. 4).

#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "core/parser.h"
#include "core/printer.h"
#include "core/validate.h"
#include "prims/standard.h"
#include "query/relation.h"
#include "query/rewrite.h"
#include "runtime/universe.h"
#include "vm/codegen.h"

namespace {

using tml::Oid;
using tml::ir::Abstraction;
using tml::query::QueryRewriteStats;
using tml::query::Relation;
using tml::vm::Value;

Relation MakeRelation(int n) {
  Relation rel;
  rel.columns = {"a", "b"};
  int64_t seed = 42;
  for (int i = 0; i < n; ++i) {
    seed = (seed * 1309 + 13849) % 65536;
    rel.tuples.push_back({int64_t{seed % 1000}, int64_t{i}});
  }
  return rel;
}

struct Timing {
  double ms = 0;
  uint64_t steps = 0;
  int64_t result = 0;
};

// Compile a (proc (r ce cc) ...) text and run it against a heap relation.
Timing RunQuery(const char* text, const Relation& rel, int iters = 3) {
  Timing out;
  tml::ir::Module m;
  auto parsed =
      tml::ir::ParseValueText(&m, tml::prims::StandardRegistry(), text);
  if (!parsed.ok()) {
    std::printf("parse error: %s\n", parsed.status().ToString().c_str());
    return out;
  }
  const Abstraction* prog = tml::ir::Cast<Abstraction>(parsed->value);
  tml::vm::CodeUnit unit;
  auto fn = tml::vm::CompileProc(&unit, m, prog, "query");
  if (!fn.ok()) {
    std::printf("codegen error: %s\n", fn.status().ToString().c_str());
    return out;
  }
  tml::vm::VM vm;
  Value args[] = {tml::query::RelationValue(rel, vm.heap())};
  vm.Pin(args[0]);
  (void)vm.Run(*fn, args);  // warm
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    auto r = vm.Run(*fn, args);
    if (!r.ok()) {
      std::printf("run error: %s\n", r.status().ToString().c_str());
      return out;
    }
    out.steps = r->steps;
    out.result = r->value.tag == tml::vm::Tag::kBool
                     ? (r->value.b ? 1 : 0)
                     : r->value.i;
  }
  auto t1 = std::chrono::steady_clock::now();
  out.ms = std::chrono::duration<double, std::milli>(t1 - t0).count() / iters;
  return out;
}

// Apply the query rewriter to a text, returning the rewritten term printed
// back (compiled and run through the same path).
Timing RunRewritten(const char* text, const Relation& rel,
                    QueryRewriteStats* stats, int iters = 3) {
  Timing out;
  tml::ir::Module m;
  auto parsed =
      tml::ir::ParseValueText(&m, tml::prims::StandardRegistry(), text);
  if (!parsed.ok()) return out;
  const Abstraction* prog = tml::ir::Cast<Abstraction>(parsed->value);
  const Abstraction* rewritten =
      tml::query::RewriteQueries(&m, prog, {}, stats);
  // Clean up the β-redexes the rewrite introduced (Fig. 4 interplay).
  rewritten = tml::ir::Optimize(&m, rewritten);
  tml::vm::CodeUnit unit;
  auto fn = tml::vm::CompileProc(&unit, m, rewritten, "query_opt");
  if (!fn.ok()) {
    std::printf("codegen error: %s\n", fn.status().ToString().c_str());
    return out;
  }
  tml::vm::VM vm;
  Value args[] = {tml::query::RelationValue(rel, vm.heap())};
  vm.Pin(args[0]);
  (void)vm.Run(*fn, args);
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    auto r = vm.Run(*fn, args);
    if (!r.ok()) return out;
    out.steps = r->steps;
    out.result = r->value.tag == tml::vm::Tag::kBool
                     ? (r->value.b ? 1 : 0)
                     : r->value.i;
  }
  auto t1 = std::chrono::steady_clock::now();
  out.ms = std::chrono::duration<double, std::milli>(t1 - t0).count() / iters;
  return out;
}

// σ(b > N/2)(σ(a < 500)(R)) |> card   — the paper's nested-select shape.
const char* kChainedSelect = R"TML(
(proc (r ce cc)
 (select (proc (t pce pcc)
           ([] t 0 pce
            (cont (v) (< v 500 (cont () (pcc true)) (cont () (pcc false))))))
   r ce
   (cont (tmp)
     (select (proc (t2 qce qcc)
               ([] t2 1 qce
                (cont (w) (> w 100 (cont () (qcc true)) (cont () (qcc false))))))
       tmp ce
       (cont (out) (card out cc))))))
)TML";

// ∃x∈R: h > 10 where x does not occur in the predicate.
const char* kTrivialExists = R"TML(
(proc (r ce cc)
 ((lambda (h)
   (exists (proc (x pce pcc)
             (> h 10 (cont () (pcc true)) (cont () (pcc false))))
     r ce cc))
  7))
)TML";

}  // namespace

int main(int argc, char** argv) {
  tml::bench::Metrics metrics(argc, argv);
  std::printf(
      "== E4: integrated query + program optimization (paper Sec. 4.2) "
      "==\n");

  std::printf("\n-- A: merge-select  sigma_p(sigma_q(R)) => "
              "sigma_(q and p)(R) --\n");
  std::printf("%-10s %12s %12s %12s %12s %8s\n", "|R|", "naive(ms)",
              "steps", "merged(ms)", "steps", "spdup");
  for (int n : {1000, 10000, 100000}) {
    Relation rel = MakeRelation(n);
    Timing naive = RunQuery(kChainedSelect, rel);
    QueryRewriteStats qs;
    Timing merged = RunRewritten(kChainedSelect, rel, &qs);
    std::printf("%-10d %12.3f %12llu %12.3f %12llu %7.2fx%s\n", n, naive.ms,
                static_cast<unsigned long long>(naive.steps), merged.ms,
                static_cast<unsigned long long>(merged.steps),
                static_cast<double>(naive.steps) / merged.steps,
                naive.result == merged.result ? "" : "  !! MISMATCH");
    if (n == 100000) {
      metrics.Add("merge_select_step_speedup",
                  static_cast<double>(naive.steps) / merged.steps);
    }
    if (n == 1000) {
      std::printf("           (query rewrites fired: %s)\n",
                  qs.ToString().c_str());
    }
  }

  std::printf("\n-- B: trivial-exists  (x not in fv(p)) : EX x in R: p => "
              "p and R != {} --\n");
  std::printf("%-10s %12s %12s %12s %12s %10s\n", "|R|", "naive(ms)",
              "steps", "rewr(ms)", "steps", "spdup");
  for (int n : {1000, 10000, 100000}) {
    Relation rel = MakeRelation(n);
    Timing naive = RunQuery(kTrivialExists, rel, 5);
    QueryRewriteStats qs;
    Timing rewr = RunRewritten(kTrivialExists, rel, &qs, 5);
    std::printf("%-10d %12.3f %12llu %12.3f %12llu %9.1fx%s\n", n, naive.ms,
                static_cast<unsigned long long>(naive.steps), rewr.ms,
                static_cast<unsigned long long>(rewr.steps),
                naive.ms / rewr.ms,
                naive.result == rewr.result ? "" : "  !! MISMATCH");
    if (n == 100000) {
      metrics.Add("trivial_exists_step_speedup",
                  static_cast<double>(naive.steps) / rewr.steps);
    }
  }
  std::printf("           (the rewritten query is O(1): the predicate is "
              "evaluated once)\n");

  std::printf(
      "\n-- C: predicate inlining inside a query (program optimizer "
      "invoked on a query subterm) --\n");
  {
    auto s = tml::store::ObjectStore::Open("");
    tml::rt::Universe u(s->get());
    tml::Status st = u.InstallSource(
        "views", "fun interesting(t) = t[0] < 500 and t[1] > 100 end",
        tml::fe::BindingMode::kLibrary);
    if (!st.ok()) {
      std::printf("install: %s\n", st.ToString().c_str());
      return 1;
    }
    // Hand-assemble a unit whose query calls the view through the store.
    auto unit_mod = std::make_unique<tml::ir::Module>();
    tml::ir::ParseOptions popts;
    popts.allow_free_vars = true;
    auto parsed = tml::ir::ParseValueText(
        unit_mod.get(), tml::prims::StandardRegistry(),
        "(proc (r ce cc)"
        " (select (proc (t pce pcc) (interesting t pce pcc))"
        "   r ce (cont (out) (card out cc))))",
        popts);
    if (!parsed.ok()) {
      std::printf("parse: %s\n", parsed.status().ToString().c_str());
      return 1;
    }
    tml::fe::CompiledUnit unit;
    unit.module = std::move(unit_mod);
    tml::fe::CompiledFunction qf;
    qf.name = "q";
    qf.abs = tml::ir::Cast<Abstraction>(parsed->value);
    for (tml::ir::Variable* fv : parsed->free_vars) {
      qf.free_names.emplace_back("interesting");
      qf.free_vars.push_back(fv);
    }
    unit.functions.push_back(std::move(qf));
    st = u.InstallUnit("qmod", unit);
    if (!st.ok()) {
      std::printf("install unit: %s\n", st.ToString().c_str());
      return 1;
    }
    Oid q = *u.Lookup("qmod", "q");
    auto opt = u.ReflectOptimize(q);
    if (!opt.ok()) {
      std::printf("reflect: %s\n", opt.status().ToString().c_str());
      return 1;
    }
    std::printf("%-10s %12s %12s %12s %12s %8s\n", "|R|", "store(ms)",
                "steps", "inlined(ms)", "steps", "spdup");
    for (int n : {1000, 10000, 100000}) {
      Relation rel = MakeRelation(n);
      Oid rel_oid = *u.StoreRelationBytes(tml::query::EncodeRelation(rel));
      Value args[] = {Value::OidV(rel_oid)};
      (void)u.Call(q, args);
      auto t0 = std::chrono::steady_clock::now();
      auto naive = u.Call(q, args);
      auto t1 = std::chrono::steady_clock::now();
      auto fast = u.Call(*opt, args);
      auto t2 = std::chrono::steady_clock::now();
      if (!naive.ok() || !fast.ok()) {
        std::printf("%d run error %s %s\n", n,
                    naive.status().ToString().c_str(),
                    fast.status().ToString().c_str());
        continue;
      }
      double ms1 = std::chrono::duration<double, std::milli>(t1 - t0).count();
      double ms2 = std::chrono::duration<double, std::milli>(t2 - t1).count();
      std::printf("%-10d %12.3f %12llu %12.3f %12llu %7.2fx%s\n", n, ms1,
                  static_cast<unsigned long long>(naive->steps), ms2,
                  static_cast<unsigned long long>(fast->steps),
                  static_cast<double>(naive->steps) / fast->steps,
                  naive->value.i == fast->value.i ? "" : "  !! MISMATCH");
      if (n == 100000) {
        metrics.Add("predicate_inline_step_speedup",
                    static_cast<double>(naive->steps) / fast->steps);
      }
    }
  }
  return 0;
}
