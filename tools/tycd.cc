// tycd — the Tycoon database daemon: one persistent universe served to
// many network clients (DESIGN.md §10).
//
//   tycd <store.db> [--unix <path>] [--tcp <port>] [--host <addr>]
//        [--workers <n>] [--budget <steps>] [--no-adaptive] [--poll]
//        [--metrics-port <p>] [--flight-dir <dir>] [--no-profiler]
//        [--max-sessions <n>] [--max-queued <n>] [--deadline-ms <ms>]
//        [--heap-budget <bytes>] [--idle-timeout-ms <ms>]
//        [--read-timeout-ms <ms>]
//
// Overload resilience (DESIGN.md §13): --max-sessions sheds connects past
// the cap with one clean ERR_OVERLOAD frame; --max-queued stops reading a
// session that pipelines too far ahead (backpressure via the kernel
// buffer); --deadline-ms / --heap-budget bound each request's wall clock
// and each session's VM heap (ERR_DEADLINE / ERR_OOM); the timeout flags
// reap idle and slowloris sessions.  The TYCOON_NETFAULT_* env knobs
// (support/net.h) inject socket faults for chaos drills.
//
// Opens (or creates) the store, re-attaches persisted modules, starts the
// background adaptive optimizer, and serves the tagged binary protocol
// until SIGTERM/SIGINT.  Shutdown is graceful: in-flight requests finish,
// the adaptive manager stops, and the store is committed — killing tycd
// with SIGTERM never relies on salvage recovery.
//
// Observability: --metrics-port starts the embedded HTTP listener
// (/metrics Prometheus scrape, /healthz, /profile, /flight, /slow);
// --flight-dir arms automatic flight-recorder dumps on incidents (budget
// kills, salvage recovery, SIGUSR2); SIGUSR2 dumps the recorder's
// retained window on demand (to --flight-dir, else <store.db>.flight.json).
// --no-profiler disables the background sampling VM profiler.
//
// Quick start:
//   ./build/tools/tycd /tmp/u.db --unix /tmp/tycd.sock &
//   ./build/tools/tyccli --unix /tmp/tycd.sock
//   tyc> install m "fun double(x) = x + x end"
//   tyc> call m double 21

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "adaptive/manager.h"
#include "adaptive/sampler.h"
#include "runtime/universe.h"
#include "server/metrics_http.h"
#include "server/server.h"
#include "store/object_store.h"
#include "telemetry/flight.h"

namespace {

tml::server::Server* g_server = nullptr;

// Async-signal-safe by construction: Server::Stop is one atomic store
// plus one write(2) to the wake pipe.
void HandleSignal(int) {
  if (g_server != nullptr) g_server->Stop();
}

// SIGUSR2 = "dump the flight recorder".  The handler only sets a flag
// (NoteIncident allocates and takes locks, so it must not run in signal
// context); a watcher thread polls the flag and performs the dump.
volatile std::sig_atomic_t g_sigusr2 = 0;
void HandleUsr2(int) { g_sigusr2 = 1; }

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <store.db> [--unix <path>] [--tcp <port>] [--host <addr>]\n"
      "          [--workers <n>] [--budget <steps>] [--no-adaptive] [--poll]\n"
      "          [--metrics-port <p>] [--flight-dir <dir>] [--no-profiler]\n"
      "          [--max-sessions <n>] [--max-queued <n>] [--deadline-ms <ms>]\n"
      "          [--heap-budget <bytes>] [--idle-timeout-ms <ms>]\n"
      "          [--read-timeout-ms <ms>]\n"
      "At least one of --unix/--tcp is required.\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tml;

  if (argc < 2) return Usage(argv[0]);
  std::string store_path = argv[1];
  server::ServerOptions opts;
  bool adaptive = true;
  bool profiler = true;
  int metrics_port = -1;
  std::string flight_dir;
  for (int i = 2; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--unix") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opts.unix_path = v;
    } else if (a == "--tcp") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opts.tcp_port = std::atoi(v);
    } else if (a == "--host") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opts.tcp_host = v;
    } else if (a == "--workers") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opts.workers = std::atoi(v);
    } else if (a == "--budget") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opts.default_step_budget = std::strtoull(v, nullptr, 10);
    } else if (a == "--max-sessions") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opts.max_sessions = std::strtoull(v, nullptr, 10);
    } else if (a == "--max-queued") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opts.max_queued_batches = std::strtoull(v, nullptr, 10);
    } else if (a == "--deadline-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opts.default_deadline_ms = std::strtoull(v, nullptr, 10);
    } else if (a == "--heap-budget") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opts.default_heap_budget = std::strtoull(v, nullptr, 10);
    } else if (a == "--idle-timeout-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opts.idle_timeout_ms = std::strtoull(v, nullptr, 10);
    } else if (a == "--read-timeout-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      opts.read_timeout_ms = std::strtoull(v, nullptr, 10);
    } else if (a == "--no-adaptive") {
      adaptive = false;
    } else if (a == "--no-profiler") {
      profiler = false;
    } else if (a == "--poll") {
      opts.use_poll = true;
    } else if (a == "--metrics-port") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      metrics_port = std::atoi(v);
    } else if (a == "--flight-dir") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      flight_dir = v;
    } else {
      return Usage(argv[0]);
    }
  }
  if (opts.unix_path.empty() && opts.tcp_port < 0) return Usage(argv[0]);

  auto store = store::ObjectStore::Open(store_path);
  if (!store.ok()) {
    std::fprintf(stderr, "tycd: cannot open %s: %s\n", store_path.c_str(),
                 store.status().ToString().c_str());
    return 1;
  }

  rt::Universe universe(store->get());
  Status st = universe.InstallStdlib();
  if (st.ok()) st = universe.LoadPersistedModules();
  if (!st.ok()) {
    std::fprintf(stderr, "tycd: universe init failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }

  if (adaptive) {
    auto manager = std::make_unique<adaptive::AdaptiveManager>(
        &universe, adaptive::AdaptiveOptions{});
    (void)manager->LoadPersistedProfile();  // absent on a fresh store
    manager->Start();
    universe.AdoptService(std::move(manager));
  }
  if (profiler) adaptive::EnableSampler(&universe);
  if (!flight_dir.empty()) {
    telemetry::FlightRecorder::Global().SetAutoDumpDir(flight_dir);
  }

  server::Server server(&universe, opts);
  st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "tycd: %s\n", st.ToString().c_str());
    return 1;
  }

  server::MetricsHttpServer metrics_http(&universe, &server);
  if (metrics_port >= 0) {
    st = metrics_http.Start(opts.tcp_host, metrics_port);
    if (!st.ok()) {
      std::fprintf(stderr, "tycd: %s\n", st.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "tycd: metrics on http://%s:%d/metrics\n",
                 opts.tcp_host.c_str(), metrics_http.port());
  }

  g_server = &server;
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGUSR2, HandleUsr2);
  std::signal(SIGPIPE, SIG_IGN);

  // SIGUSR2 watcher: performs the flight dump the handler may not.
  std::atomic<bool> watcher_stop{false};
  std::thread usr2_watcher([&watcher_stop, &flight_dir, &store_path] {
    while (!watcher_stop.load(std::memory_order_acquire)) {
      if (g_sigusr2 != 0) {
        g_sigusr2 = 0;
        auto& flight = tml::telemetry::FlightRecorder::Global();
        flight.NoteIncident("sigusr2");  // auto-dumps into --flight-dir
        if (flight_dir.empty()) {
          std::string path = store_path + ".flight.json";
          Status dst = flight.WriteDump(path);
          std::fprintf(stderr, "tycd: SIGUSR2 flight dump %s (%s)\n",
                       path.c_str(),
                       dst.ok() ? "ok" : dst.ToString().c_str());
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
  });

  std::fprintf(stderr, "tycd: serving %s%s%s%s (workers=%d, adaptive=%s)\n",
               store_path.c_str(),
               opts.unix_path.empty() ? "" : (" on unix " + opts.unix_path).c_str(),
               opts.tcp_port >= 0 ? " on tcp port " : "",
               opts.tcp_port >= 0 ? std::to_string(server.tcp_port()).c_str()
                                  : "",
               opts.workers, adaptive ? "on" : "off");

  server.Join();  // returns after a signal or a SHUTDOWN command drains
  g_server = nullptr;
  watcher_stop.store(true, std::memory_order_release);
  usr2_watcher.join();
  metrics_http.Stop();
  std::fprintf(stderr, "tycd: clean shutdown (store committed)\n");
  return 0;
}
