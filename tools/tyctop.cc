// tyctop — inspect a persistent Tycoon store.
//
// Opens a store file read-only (the running system can keep it open: no
// locks are taken, no bytes are written) and prints the observability
// summary an operator wants before reaching for a full trace:
//
//   * object and byte counts per record kind (code/PTML/closure/...),
//   * the named roots,
//   * the hottest closures from the persisted hotness profile, with their
//     promotion state (the adaptive optimizer's working set),
//   * reflect-cache size and how many entries still point at live records.
//
// Damaged stores are opened in salvage mode, so tyctop is also the
// post-incident inspector: it reports what recovery had to quarantine or
// truncate instead of refusing to open.
//
// --watch flips tyctop from store inspector to live monitor: it connects
// to a running tycd (--unix or --tcp), polls the METRICS and PROFILE wire
// commands every --interval seconds, and redraws a one-screen summary —
// request rates, latency quantiles, the hot-function table with its
// interpreted/optimized/fused execution-tier split.
//
// Usage: tyctop <store-file> [--top N] [--json]
//        tyctop --watch (--unix <path> | --tcp <host:port>)
//               [--interval <secs>] [--count <n>]

#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "adaptive/profile.h"
#include "server/client.h"
#include "store/object_store.h"
#include "store/reflect_cache.h"
#include "telemetry/metrics.h"

namespace {

using tml::Oid;
using tml::adaptive::HotnessProfile;
using tml::adaptive::ProfileEntry;
using tml::store::ObjectStore;
using tml::store::ObjType;
using tml::store::ObjTypeName;

int Run(const std::string& path, int top_n, bool json) {
  tml::store::OpenOptions open_opts;
  open_opts.recovery = tml::store::RecoveryPolicy::kSalvage;
  auto store = ObjectStore::OpenReadOnly(path, open_opts);
  if (!store.ok()) {
    std::fprintf(stderr, "tyctop: %s\n", store.status().ToString().c_str());
    return 1;
  }
  ObjectStore* s = store->get();
  const tml::store::SalvageReport& salvage = s->salvage_report();

  // Live payload bytes per record kind (the E2 trade-off at a glance).
  std::map<std::string, size_t> tallies;
  constexpr ObjType kAllTypes[] = {
      ObjType::kBlob,      ObjType::kPtml,         ObjType::kCode,
      ObjType::kClosure,   ObjType::kModule,       ObjType::kRelation,
      ObjType::kReflectCache, ObjType::kProfile,
  };
  for (ObjType t : kAllTypes) {
    size_t b = s->live_bytes(t);
    if (b != 0) tallies[ObjTypeName(t)] = b;
  }

  std::vector<std::string> roots = s->RootNames();
  std::sort(roots.begin(), roots.end());

  // Hotness profile: top-N closures by steps.
  std::vector<ProfileEntry> hot;
  uint64_t attempts_total = 0;
  uint64_t promoted_total = 0;
  auto prof_root = s->GetRoot(tml::adaptive::kProfileRoot);
  if (prof_root.ok()) {
    auto rec = s->Get(*prof_root);
    if (rec.ok() && rec->type == ObjType::kProfile) {
      auto prof = HotnessProfile::Decode(rec->bytes);
      if (prof.ok()) {
        for (const auto& [oid, e] : prof->entries()) {
          hot.push_back(e);
          attempts_total += e.attempts;
          if (e.promoted_code_oid != tml::kNullOid) ++promoted_total;
        }
        std::sort(hot.begin(), hot.end(),
                  [](const ProfileEntry& a, const ProfileEntry& b) {
                    return a.steps > b.steps;
                  });
        if (hot.size() > static_cast<size_t>(top_n)) hot.resize(top_n);
      }
    }
  }

  // Reflect cache: entry count and how many still resolve.
  size_t cache_entries = 0;
  size_t cache_live = 0;
  size_t cache_bytes = s->live_bytes(ObjType::kReflectCache);
  auto cache_root = s->GetRoot(tml::store::kReflectCacheRoot);
  if (cache_root.ok()) {
    auto rec = s->Get(*cache_root);
    if (rec.ok() && rec->type == ObjType::kReflectCache) {
      auto entries = tml::store::DecodeReflectCache(rec->bytes);
      if (entries.ok()) {
        cache_entries = entries->size();
        for (const auto& e : *entries) {
          if (s->Contains(e.closure_oid) && s->Contains(e.code_oid)) {
            ++cache_live;
          }
        }
      }
    }
  }

  uint64_t file_size = 0;
  if (auto fs = s->FileSize(); fs.ok()) file_size = *fs;

  if (json) {
    std::string out = "{\n";
    out += "  \"store\": \"" + tml::telemetry::JsonEscape(path) + "\",\n";
    out += "  \"format_version\": " + std::to_string(s->format_version()) +
           ",\n";
    out += "  \"salvage\": {\"salvaged\": " +
           std::string(salvage.salvaged ? "true" : "false") +
           ", \"header_rebuilt\": " +
           (salvage.header_rebuilt ? "true" : "false") +
           ", \"quarantined_records\": " +
           std::to_string(salvage.quarantined_records) +
           ", \"truncated_bytes\": " +
           std::to_string(salvage.truncated_bytes) + "},\n";
    out += "  \"file_bytes\": " + std::to_string(file_size) + ",\n";
    out += "  \"objects\": " + std::to_string(s->num_objects()) + ",\n";
    out += "  \"live_bytes\": " + std::to_string(s->live_bytes()) + ",\n";
    out += "  \"bytes_by_type\": {";
    bool first = true;
    for (const auto& [name, bytes] : tallies) {
      if (!first) out += ", ";
      first = false;
      out += "\"" + name + "\": " + std::to_string(bytes);
    }
    out += "},\n  \"roots\": [";
    for (size_t i = 0; i < roots.size(); ++i) {
      if (i > 0) out += ", ";
      out += "\"" + tml::telemetry::JsonEscape(roots[i]) + "\"";
    }
    out += "],\n  \"hot_closures\": [\n";
    for (size_t i = 0; i < hot.size(); ++i) {
      const ProfileEntry& e = hot[i];
      out += "    {\"closure_oid\": " + std::to_string(e.closure_oid) +
             ", \"steps\": " + std::to_string(e.steps) +
             ", \"calls\": " + std::to_string(e.calls) +
             ", \"attempts\": " + std::to_string(e.attempts) +
             ", \"promoted\": " +
             (e.promoted_code_oid != tml::kNullOid ? "true" : "false") + "}";
      out += i + 1 < hot.size() ? ",\n" : "\n";
    }
    out += "  ],\n";
    out += "  \"promotions\": " + std::to_string(promoted_total) + ",\n";
    out += "  \"optimize_attempts\": " + std::to_string(attempts_total) +
           ",\n";
    out += "  \"reflect_cache\": {\"entries\": " +
           std::to_string(cache_entries) +
           ", \"live_entries\": " + std::to_string(cache_live) +
           ", \"bytes\": " + std::to_string(cache_bytes) + "}\n";
    out += "}\n";
    std::fputs(out.c_str(), stdout);
    return 0;
  }

  std::printf("store    %s (format v%u)\n", path.c_str(),
              s->format_version());
  std::printf("file     %llu bytes, %zu live objects, %zu live bytes\n",
              static_cast<unsigned long long>(file_size), s->num_objects(),
              s->live_bytes());
  if (salvage.salvaged) {
    std::printf(
        "salvage  RECOVERED:%s %llu quarantined record(s), "
        "%llu byte(s) truncated from the tail\n",
        salvage.header_rebuilt ? " header rebuilt from record scan," : "",
        static_cast<unsigned long long>(salvage.quarantined_records),
        static_cast<unsigned long long>(salvage.truncated_bytes));
  }
  std::printf("\nbytes by record kind:\n");
  for (const auto& [name, bytes] : tallies) {
    std::printf("  %-14s %10zu\n", name.c_str(), bytes);
  }
  std::printf("\nroots:\n");
  for (const std::string& r : roots) std::printf("  %s\n", r.c_str());
  if (!hot.empty()) {
    std::printf("\nhot closures (by profiled steps):\n");
    std::printf("  %-12s %12s %10s %9s %s\n", "closure", "steps", "calls",
                "attempts", "state");
    for (const ProfileEntry& e : hot) {
      std::printf("  %-12llu %12llu %10llu %9u %s\n",
                  static_cast<unsigned long long>(e.closure_oid),
                  static_cast<unsigned long long>(e.steps),
                  static_cast<unsigned long long>(e.calls), e.attempts,
                  e.promoted_code_oid != tml::kNullOid ? "promoted" : "-");
    }
    std::printf("  %llu promoted, %llu optimize attempts total\n",
                static_cast<unsigned long long>(promoted_total),
                static_cast<unsigned long long>(attempts_total));
  } else {
    std::printf("\nhot closures: no hotness profile persisted\n");
  }
  std::printf("\nreflect cache: %zu entries (%zu still live), %zu bytes\n",
              cache_entries, cache_live, cache_bytes);
  return 0;
}

// ---- live watch mode ---------------------------------------------------------

/// Pull a string field ("key":"value") out of a flat JSON object slice.
std::string JsonStrField(const std::string& obj, const std::string& key) {
  std::string needle = "\"" + key + "\":\"";
  size_t at = obj.find(needle);
  if (at == std::string::npos) return "";
  at += needle.size();
  size_t end = obj.find('"', at);
  if (end == std::string::npos) return "";
  return obj.substr(at, end - at);
}

/// Pull a numeric field ("key":123) out of a flat JSON object slice.
std::string JsonNumField(const std::string& obj, const std::string& key) {
  std::string needle = "\"" + key + "\":";
  size_t at = obj.find(needle);
  if (at == std::string::npos) return "-";
  at += needle.size();
  size_t end = at;
  while (end < obj.size() &&
         (std::isdigit(static_cast<unsigned char>(obj[end])) ||
          obj[end] == '.' || obj[end] == '-')) {
    ++end;
  }
  return end == at ? "-" : obj.substr(at, end - at);
}

/// Render the sampler's PROFILE JSON as the hot-function table an operator
/// wants: one row per function with its execution tier
/// (interpreted/optimized/fused), sample count, and modal opcode.  Falls
/// back to printing the raw JSON when the shape is unrecognized.
void RenderProfile(const std::string& json) {
  size_t arr = json.find("\"functions\":[");
  if (arr == std::string::npos) {
    std::printf("\nprofile: %s\n", json.c_str());
    return;
  }
  std::printf("\nprofile: %s total, %s idle, %s%% attributed\n",
              JsonNumField(json, "total_samples").c_str(),
              JsonNumField(json, "idle_samples").c_str(),
              JsonNumField(json, "attribution_pct").c_str());
  std::printf("  %-28s %-12s %10s  %s\n", "function", "tier", "samples",
              "top op");
  size_t pos = arr + std::strlen("\"functions\":[");
  while (pos < json.size() && json[pos] == '{') {
    size_t end = json.find('}', pos);
    if (end == std::string::npos) break;
    std::string obj = json.substr(pos, end - pos + 1);
    std::printf("  %-28s %-12s %10s  %s\n",
                JsonStrField(obj, "name").c_str(),
                JsonStrField(obj, "tier").c_str(),
                JsonNumField(obj, "samples").c_str(),
                JsonStrField(obj, "top_op").c_str());
    pos = end + 1;
    if (pos < json.size() && json[pos] == ',') ++pos;
  }
}

/// One METRICS TEXT + PROFILE poll against a running tycd, rendered as a
/// refreshing screen.  `count` bounds the redraws (0 = until ^C / error).
int Watch(const std::string& unix_path, const std::string& tcp_host,
          int tcp_port, int interval_secs, int count) {
  using tml::server::Client;
  using tml::server::WireValue;
  auto conn = unix_path.empty() ? Client::ConnectTcp(tcp_host, tcp_port)
                                : Client::ConnectUnix(unix_path);
  if (!conn.ok()) {
    std::fprintf(stderr, "tyctop: connect failed: %s\n",
                 conn.status().ToString().c_str());
    return 1;
  }
  Client client = std::move(*conn);
  for (int iter = 0; count == 0 || iter < count; ++iter) {
    if (iter != 0) {
      std::this_thread::sleep_for(std::chrono::seconds(interval_secs));
    }
    auto metrics = client.Call({"METRICS", "text"});
    if (!metrics.ok() || !metrics->is_str()) {
      std::fprintf(stderr, "tyctop: METRICS failed: %s\n",
                   metrics.ok() ? "unexpected reply"
                                : metrics.status().ToString().c_str());
      return 1;
    }
    auto profile = client.Call({"PROFILE"});
    auto slow = client.Call({"STATS", "slow"});
    // ANSI clear + home keeps the display in place like top(1); plain
    // scrolling when stdout is not a terminal.
    if (isatty(1)) std::fputs("\033[2J\033[H", stdout);
    std::printf("tyctop --watch  (interval %ds, poll %d)\n\n", interval_secs,
                iter + 1);
    // The interesting server lines first, then everything else.
    const std::string& text = metrics->s;
    size_t pos = 0;
    while (pos < text.size()) {
      size_t eol = text.find('\n', pos);
      if (eol == std::string::npos) eol = text.size();
      std::string line = text.substr(pos, eol - pos);
      pos = eol + 1;
      if (line.rfind("tml.server.", 0) == 0 ||
          line.rfind("tml.profiler.", 0) == 0 ||
          line.rfind("tml.flight.", 0) == 0 ||
          line.rfind("tml.trace.", 0) == 0) {
        std::printf("%s\n", line.c_str());
      }
    }
    if (profile.ok() && profile->is_str()) {
      RenderProfile(profile->s);
    }
    if (slow.ok() && slow->is_str() && slow->s != "[]") {
      std::printf("\nslow requests: %s\n", slow->s.c_str());
    }
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  int top_n = 10;
  bool json = false;
  bool watch = false;
  std::string unix_path;
  std::string tcp_host = "127.0.0.1";
  int tcp_port = -1;
  int interval_secs = 2;
  int count = 0;
  const char* usage =
      "usage: tyctop <store-file> [--top N] [--json]\n"
      "       tyctop --watch (--unix <path> | --tcp <host:port>)\n"
      "              [--interval <secs>] [--count <n>]\n";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
      top_n = std::atoi(argv[++i]);
      if (top_n <= 0) top_n = 10;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--watch") == 0) {
      watch = true;
    } else if (std::strcmp(argv[i], "--unix") == 0 && i + 1 < argc) {
      unix_path = argv[++i];
    } else if (std::strcmp(argv[i], "--tcp") == 0 && i + 1 < argc) {
      std::string hp = argv[++i];
      size_t colon = hp.rfind(':');
      if (colon == std::string::npos) {
        tcp_port = std::atoi(hp.c_str());
      } else {
        tcp_host = hp.substr(0, colon);
        tcp_port = std::atoi(hp.c_str() + colon + 1);
      }
    } else if (std::strcmp(argv[i], "--interval") == 0 && i + 1 < argc) {
      interval_secs = std::atoi(argv[++i]);
      if (interval_secs <= 0) interval_secs = 2;
    } else if (std::strcmp(argv[i], "--count") == 0 && i + 1 < argc) {
      count = std::atoi(argv[++i]);
    } else if (path.empty() && argv[i][0] != '-') {
      path = argv[i];
    } else {
      std::fputs(usage, stderr);
      return 2;
    }
  }
  if (watch) {
    if (unix_path.empty() && tcp_port < 0) {
      std::fputs(usage, stderr);
      return 2;
    }
    return Watch(unix_path, tcp_host, tcp_port, interval_secs, count);
  }
  if (path.empty()) {
    std::fputs(usage, stderr);
    return 2;
  }
  return Run(path, top_n, json);
}
