#!/usr/bin/env bash
# Tier-1 check: configure, build, run the full test suite.
#
#   tools/check.sh          # RelWithDebInfo (the tier-1 gate)
#   tools/check.sh --asan   # ASan+UBSan build of the same suite; use this
#                           # for the store fuzz/decode-hardening tests
#
# Extra arguments after the mode are forwarded to ctest, e.g.
#   tools/check.sh --asan -R 'DecodeFuzz|VarintHardening'
set -euo pipefail
cd "$(dirname "$0")/.."

build_dir=build
cmake_args=()
if [[ "${1:-}" == "--asan" ]]; then
  shift
  build_dir=build-asan
  cmake_args+=(-DCMAKE_BUILD_TYPE=Asan)
fi

cmake -B "$build_dir" -S . "${cmake_args[@]}"
cmake --build "$build_dir" -j
cd "$build_dir" && ctest --output-on-failure -j "$@"
