#!/usr/bin/env bash
# Tier-1 check: configure, build, run the full test suite.
#
#   tools/check.sh          # RelWithDebInfo (the tier-1 gate)
#   tools/check.sh --asan   # ASan+UBSan build of the same suite; use this
#                           # for the store fuzz/decode-hardening tests
#   tools/check.sh --tsan   # TSan build; runs the concurrency-sensitive
#                           # tests (adaptive background worker, VM, runtime)
#   tools/check.sh --bench  # build + run every bench_* binary, writing
#                           # machine-readable BENCH_<name>.json and a
#                           # Chrome trace TRACE_<name>.json next to it
#   tools/check.sh --telemetry  # just the telemetry suites (incl. the
#                           # golden per-rule firing counts)
#   tools/check.sh --faults # ASan+UBSan build of the fault-injection and
#                           # crash-recovery suites: the FaultVfs semantics
#                           # tests, the every-syscall-boundary sweep, the
#                           # salvage end-to-end flow, and the adaptive
#                           # park/backoff behavior
#   tools/check.sh --server # end-to-end smoke of the tycd daemon: start it
#                           # on a Unix socket, drive an install / call /
#                           # optimize / stats round-trip with tyccli,
#                           # SIGTERM it, and require a clean exit
#   tools/check.sh --observe # end-to-end smoke of the observability plane:
#                           # tycd with --metrics-port/--flight-dir, the
#                           # OBSERVE/PROFILE/METRICS commands, the
#                           # /metrics //healthz //profile //flight HTTP
#                           # endpoints, a budget-kill incident auto-dump,
#                           # and a SIGUSR2 on-demand flight dump
#   tools/check.sh --chaos  # resilience drill (DESIGN.md §13): the
#                           # in-process chaos soak (TYCOON_CHAOS_SECONDS
#                           # lengthens it), then a real tycd under
#                           # TYCOON_NETFAULT_* socket faults + hostile
#                           # clients, SIGTERM'd mid-load and restarted —
#                           # the restart must be clean (tycd opens the
#                           # store kStrict, so damage refuses to start).
#                           # CHAOS_ARTIFACT_DIR keeps logs/flight dumps.
#
# Extra arguments after the mode are forwarded to ctest, e.g.
#   tools/check.sh --asan -R 'DecodeFuzz|VarintHardening'
set -euo pipefail
cd "$(dirname "$0")/.."

build_dir=build
cmake_args=()
mode=test
case "${1:-}" in
  --asan)
    shift
    build_dir=build-asan
    cmake_args+=(-DCMAKE_BUILD_TYPE=Asan)
    ;;
  --tsan)
    shift
    build_dir=build-tsan
    cmake_args+=(-DCMAKE_BUILD_TYPE=Tsan)
    mode=tsan
    ;;
  --bench)
    shift
    mode=bench
    ;;
  --telemetry)
    shift
    mode=telemetry
    ;;
  --faults)
    shift
    build_dir=build-asan
    cmake_args+=(-DCMAKE_BUILD_TYPE=Asan)
    mode=faults
    ;;
  --server)
    shift
    mode=server
    ;;
  --observe)
    shift
    mode=observe
    ;;
  --chaos)
    shift
    mode=chaos
    ;;
esac

cmake -B "$build_dir" -S . "${cmake_args[@]}"
cmake --build "$build_dir" -j

case "$mode" in
  test)
    cd "$build_dir" && ctest --output-on-failure -j "$(nproc)" "$@"
    ;;
  tsan)
    # The suites that exercise threads (the adaptive worker, the telemetry
    # snapshot reader, the server) plus the VM and runtime paths they race
    # against.  gtest-derived ctest names are CamelCase.  NB: ctest's bare
    # `-j` eats the next argument as a job count, which used to swallow
    # `-R` and run the whole suite unfiltered — always give -j an explicit
    # value.  tsan.supp silences the benign libstdc++ _Sp_atomic report
    # (see the file for the analysis).
    export TSAN_OPTIONS="suppressions=$PWD/tools/tsan.supp${TSAN_OPTIONS:+ $TSAN_OPTIONS}"
    # Race the concurrency suites against the computed-goto loop: the
    # threaded dispatcher shares the exec-status seam and the published
    # binding snapshot with the sampler/adaptive threads, so it must be
    # the loop under test whenever the binary carries it (VMs silently
    # fall back to the switch loop when it doesn't).
    export TML_VM_DISPATCH=threaded
    cd "$build_dir" && ctest --output-on-failure -j "$(nproc)" \
      -R 'Adaptive|Profile|Swizzle|Runtime|Vm|Telemetry|Concurrent' "$@"
    ;;
  bench)
    for bench in "$build_dir"/bench/bench_*; do
      [[ -x "$bench" && ! -d "$bench" ]] || continue
      name=$(basename "$bench")
      echo "== $name =="
      TYCOON_TRACE="$build_dir/TRACE_${name#bench_}.json" \
        "$bench" --json "$build_dir/BENCH_${name#bench_}.json"
      echo
    done
    echo "bench JSON written to $build_dir/BENCH_*.json, traces to TRACE_*.json"
    # Dispatch gate: rerun the Stanford suite pinned to the portable
    # switch loop and require that the default (threaded) loop is not
    # slower per executed instruction.  The threshold is tolerant (0.9x)
    # because single-core CI runners show double-digit noise and some
    # GCC versions genuinely tie the two loops; the gate exists to catch
    # a *broken* threaded build (e.g. dispatch-table misgeneration), not
    # to police microarchitectural luck.
    if python3 -c "import json,sys; sys.exit(0 if json.load(open('$build_dir/BENCH_stanford.json')).get('dispatch_threaded') == 1 else 1)"; then
      echo "== bench_stanford (switch dispatch) =="
      TML_VM_DISPATCH=switch "$build_dir/bench/bench_stanford" \
        --json "$build_dir/BENCH_stanford_switch.json"
      echo
      python3 - "$build_dir/BENCH_stanford.json" "$build_dir/BENCH_stanford_switch.json" <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    threaded = json.load(f)
with open(sys.argv[2]) as f:
    switch = json.load(f)
failed = []
for key in ("ns_per_step_unopt", "ns_per_step_dynamic"):
    t, s = threaded.get(key), switch.get(key)
    if not isinstance(t, (int, float)) or not isinstance(s, (int, float)):
        failed.append((key, t, s, "missing"))
        continue
    ratio = s / t  # >1: threaded faster
    if ratio < 0.9:
        failed.append((key, t, s, f"threaded/switch speedup {ratio:.2f} < 0.9"))
    else:
        print(f"dispatch gate: {key} threaded {t:.2f} ns vs switch {s:.2f} ns "
              f"(speedup {ratio:.2f}x)")
for key, t, s, why in failed:
    print(f"FAIL: {key} threaded={t} switch={s}: {why}")
if failed:
    sys.exit(1)
print("dispatch gate OK: threaded loop >= 0.9x switch-loop throughput")
PYEOF
    else
      echo "dispatch gate skipped: binary has no threaded loop"
    fi
    # Hardware-aware scaling gate on the concurrency bench: the speedup
    # floor only makes sense when the runner actually has the cores (an
    # 8-thread window on a 1-core container is contention, not scaling —
    # there we only require that threads don't make it collapse).
    python3 - "$build_dir/BENCH_concurrent.json" <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    m = json.load(f)
hw = int(m.get("hw_threads", 1))
if hw >= 8:
    checks = [("speedup_8x", 2.0)]
elif hw >= 4:
    checks = [("speedup_4x", 1.8)]
elif hw >= 2:
    checks = [("speedup_2x", 1.3)]
else:
    checks = [("speedup_8x", 0.6)]
failed = [(k, m.get(k), floor) for k, floor in checks
          if m.get(k) is None or m[k] < floor]
for k, got, floor in failed:
    print(f"FAIL: {k} = {got} below the {floor} floor (hw_threads={hw})")
if failed:
    sys.exit(1)
print(f"scaling gate OK (hw_threads={hw}): " +
      ", ".join(f"{k} >= {floor}" for k, floor in checks))
PYEOF
    # Wire-protocol gate: pipelining must pay (batch dispatch), and the
    # post-OPTIMIZE CALL latency must beat the unoptimized one at the wire.
    python3 - "$build_dir/BENCH_server.json" <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    m = json.load(f)
required = ["clients", "throughput_unpipelined_rps", "throughput_pipelined_rps",
            "pipeline_speedup", "p50_us", "p99_us",
            "pipelined_p50_us", "pipelined_p99_us",
            "call_us_before_optimize", "call_us_after_optimize",
            "optimize_speedup", "shed_total", "p99_under_overload_us"]
missing = [k for k in required if not isinstance(m.get(k), (int, float))]
if missing:
    print(f"FAIL: BENCH_server.json missing numeric keys: {missing}")
    sys.exit(1)
failed = []
if m["clients"] < 4:
    failed.append(("clients", m["clients"], 4))
if m["pipeline_speedup"] < 2.0:
    failed.append(("pipeline_speedup", m["pipeline_speedup"], 2.0))
if m["optimize_speedup"] < 1.2:
    failed.append(("optimize_speedup", m["optimize_speedup"], 1.2))
# Overload gate (DESIGN.md §13): at 2x admission capacity some clients
# must actually be shed (fail fast, not queued), and the admitted
# clients' p99 must stay bounded — 200ms is generous for a light
# request; an unbounded value means shed load leaked into served load.
if m["shed_total"] < 1:
    failed.append(("shed_total", m["shed_total"], 1))
if not (0 < m["p99_under_overload_us"] < 200_000):
    failed.append(("p99_under_overload_us", m["p99_under_overload_us"],
                   "(0, 200000)"))
for k, got, floor in failed:
    print(f"FAIL: {k} = {got} outside bound {floor}")
if failed:
    sys.exit(1)
print("server gate OK: pipeline_speedup >= 2.0, optimize_speedup >= 1.2, "
      f"clients = {m['clients']}, shed_total = {m['shed_total']}, "
      f"p99_under_overload_us = {m['p99_under_overload_us']:.0f}")
PYEOF
    ;;
  telemetry)
    cd "$build_dir" && ctest --output-on-failure -j "$(nproc)" -R 'Telemetry' "$@"
    ;;
  faults)
    cd "$build_dir" && ctest --output-on-failure -j "$(nproc)" \
      -R 'FaultVfs|StoreFaults|StoreFormats|StoreCompact|CrashRecovery|Salvage|AdaptiveFaults' "$@"
    ;;
  server)
    # End-to-end daemon smoke: real processes, real Unix socket, real
    # SIGTERM.  Everything a client needs for the quick-start must work.
    tmpdir=$(mktemp -d)
    trap 'kill "$tycd_pid" 2>/dev/null || true; rm -rf "$tmpdir"' EXIT
    sock="$tmpdir/tycd.sock"
    db="$tmpdir/universe.db"
    "$build_dir/tools/tycd" "$db" --unix "$sock" --workers 2 &
    tycd_pid=$!
    for _ in $(seq 50); do [[ -S "$sock" ]] && break; sleep 0.1; done
    [[ -S "$sock" ]] || { echo "FAIL: tycd never bound $sock"; exit 1; }

    cli="$build_dir/tools/tyccli"
    "$cli" --unix "$sock" -c 'ping' | grep PONG >/dev/null
    "$cli" --unix "$sock" -c 'install m "fun double(x) = x + x end"' | grep OK >/dev/null
    [[ "$("$cli" --unix "$sock" -c 'call m double 21')" == "42" ]]
    "$cli" --unix "$sock" -c 'optimize m double' | grep swapped >/dev/null
    [[ "$("$cli" --unix "$sock" -c 'call m double 21')" == "42" ]]
    "$cli" --unix "$sock" -c 'stats' | grep 'tml.server.requests' >/dev/null

    kill -TERM "$tycd_pid"
    wait "$tycd_pid"   # non-zero exit fails the check via set -e

    # The graceful shutdown committed the store: a restarted daemon serves
    # the module without reinstalling.
    "$build_dir/tools/tycd" "$db" --unix "$sock" --workers 2 &
    tycd_pid=$!
    for _ in $(seq 50); do [[ -S "$sock" ]] && break; sleep 0.1; done
    [[ "$("$cli" --unix "$sock" -c 'call m double 50')" == "100" ]]
    kill -TERM "$tycd_pid"
    wait "$tycd_pid"
    echo "server smoke OK: install/call/optimize/stats round-trip, clean SIGTERM shutdown, module survived restart"
    ;;
  observe)
    # End-to-end smoke of the observability plane (DESIGN.md §11): the
    # flight recorder, the wire commands, the scrape endpoints, and the
    # incident auto-dump paths — against a real tycd process.
    tmpdir=$(mktemp -d)
    trap 'kill "$tycd_pid" 2>/dev/null || true; rm -rf "$tmpdir"' EXIT
    sock="$tmpdir/tycd.sock"
    db="$tmpdir/universe.db"
    flight_dir="$tmpdir/flight"
    mkdir -p "$flight_dir"
    "$build_dir/tools/tycd" "$db" --unix "$sock" --workers 2 \
      --metrics-port 0 --flight-dir "$flight_dir" 2>"$tmpdir/tycd.log" &
    tycd_pid=$!
    for _ in $(seq 50); do [[ -S "$sock" ]] && break; sleep 0.1; done
    [[ -S "$sock" ]] || { echo "FAIL: tycd never bound $sock"; cat "$tmpdir/tycd.log"; exit 1; }

    # The ephemeral metrics port is announced on stderr.
    metrics_port=""
    for _ in $(seq 50); do
      metrics_port=$(sed -n 's|.*metrics on http://[^:]*:\([0-9]*\)/metrics.*|\1|p' "$tmpdir/tycd.log" | head -1)
      [[ -n "$metrics_port" ]] && break
      sleep 0.1
    done
    [[ -n "$metrics_port" ]] || { echo "FAIL: tycd never announced the metrics port"; cat "$tmpdir/tycd.log"; exit 1; }

    cli="$build_dir/tools/tyccli"
    "$cli" --unix "$sock" -c 'ping' | grep PONG >/dev/null
    "$cli" --unix "$sock" -c 'install m "fun double(x) = x + x end"' | grep OK >/dev/null
    [[ "$("$cli" --unix "$sock" -c 'call m double 21')" == "42" ]]

    # The observability wire commands.  (Plain grep, not -q: these payloads
    # can exceed the pipe buffer, and -q's early exit would SIGPIPE tyccli
    # under pipefail.)
    "$cli" --unix "$sock" -c 'observe' | grep traceEvents >/dev/null
    "$cli" --unix "$sock" -c 'observe 60' | grep traceEvents >/dev/null
    "$cli" --unix "$sock" -c 'profile' | grep total_samples >/dev/null
    "$cli" --unix "$sock" -c 'metrics' | grep '# TYPE tml_server_requests counter' >/dev/null
    "$cli" --unix "$sock" -c 'metrics text' | grep 'tml.server.requests' >/dev/null
    "$cli" --unix "$sock" -c 'metrics json' | grep 'tml.server.requests' >/dev/null

    # The scrape surface: /healthz liveness, Prometheus exposition on
    # /metrics, and machine-valid JSON on /profile and /flight.
    python3 - "$metrics_port" <<'PYEOF'
import json, sys, urllib.request
port = sys.argv[1]
def get(path):
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}", timeout=10) as r:
        return r.read().decode()
assert get("/healthz").strip() == "ok", "healthz"
metrics = get("/metrics")
assert "# TYPE tml_server_requests counter" in metrics, metrics[:400]
assert "tml_flight_rings" in metrics, "observability gauges missing"
profile = json.loads(get("/profile"))
assert profile.get("total_samples", 0) >= 0, profile
flight = json.loads(get("/flight"))
assert "traceEvents" in flight, flight
json.loads(get("/slow"))
print("scrape endpoints OK: /healthz /metrics /profile /flight /slow")
PYEOF

    # A budget kill is an incident: it must leave a flight dump behind.
    "$cli" --unix "$sock" -c 'install s "fun spin(n) = spin(n + 1) end"' | grep OK >/dev/null
    # The kill reply is an ERR frame, so tyccli exits non-zero by design.
    kill_out=$("$cli" --unix "$sock" -c 'call s spin 0' 2>&1 || true)
    echo "$kill_out" | grep -i budget >/dev/null || { echo "FAIL: CALL was not budget-killed: $kill_out"; exit 1; }
    kill_dump=""
    for _ in $(seq 20); do
      kill_dump=$(ls "$flight_dir"/flight-budget_kill-*.json 2>/dev/null | head -1 || true)
      [[ -n "$kill_dump" ]] && break
      sleep 0.1
    done
    [[ -n "$kill_dump" ]] || { echo "FAIL: no budget_kill flight dump in $flight_dir"; exit 1; }
    python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$kill_dump"

    # SIGUSR2 dumps the retained window on demand.
    kill -USR2 "$tycd_pid"
    usr2_dump=""
    for _ in $(seq 30); do
      usr2_dump=$(ls "$flight_dir"/flight-sigusr2-*.json 2>/dev/null | head -1 || true)
      [[ -n "$usr2_dump" ]] && break
      sleep 0.1
    done
    [[ -n "$usr2_dump" ]] || { echo "FAIL: no sigusr2 flight dump in $flight_dir"; exit 1; }

    kill -TERM "$tycd_pid"
    wait "$tycd_pid"   # non-zero exit fails the check via set -e

    # CI artifact hook: keep the dumps past the tmpdir cleanup trap.
    if [[ -n "${OBSERVE_ARTIFACT_DIR:-}" ]]; then
      mkdir -p "$OBSERVE_ARTIFACT_DIR"
      cp "$flight_dir"/flight-*.json "$OBSERVE_ARTIFACT_DIR"/ 2>/dev/null || true
    fi
    echo "observe smoke OK: OBSERVE/PROFILE/METRICS round-trip, scrape endpoints, budget-kill + SIGUSR2 flight dumps, clean shutdown"
    ;;
  chaos)
    # Part 1: the in-process soak — concurrent hostile clients, FaultNet
    # on every server socket op, SIGTERM-style Stop() mid-load, store must
    # reopen with a zero salvage report.  TYCOON_CHAOS_SECONDS lengthens
    # it beyond the CI-short default.
    "$build_dir/tests/chaos_test"

    # Part 2: the same story against real processes.  tycd runs with the
    # resilience knobs on and TYCOON_NETFAULT_* chopping/EAGAIN-storming
    # its socket I/O; hostile clients fire until a mid-load SIGTERM.  The
    # restart is the verdict: tycd opens the store kStrict, so a store
    # that needed salvage refuses to start and fails the check.
    tmpdir=$(mktemp -d)
    artifacts() {
      if [[ -n "${CHAOS_ARTIFACT_DIR:-}" ]]; then
        mkdir -p "$CHAOS_ARTIFACT_DIR"
        cp "$tmpdir"/tycd*.log "$tmpdir"/flight/flight-*.json \
          "$CHAOS_ARTIFACT_DIR"/ 2>/dev/null || true
      fi
    }
    trap 'artifacts; kill "$tycd_pid" "$hostile_pid" 2>/dev/null || true; rm -rf "$tmpdir"' EXIT
    sock="$tmpdir/tycd.sock"
    db="$tmpdir/universe.db"
    mkdir -p "$tmpdir/flight"
    TYCOON_NETFAULT_SHORT_IO=9 TYCOON_NETFAULT_EAGAIN_EVERY=13 \
      "$build_dir/tools/tycd" "$db" --unix "$sock" --workers 2 \
      --max-sessions 16 --max-queued 4 --deadline-ms 2000 \
      --read-timeout-ms 1000 --flight-dir "$tmpdir/flight" \
      2>"$tmpdir/tycd.log" &
    tycd_pid=$!
    hostile_pid=
    for _ in $(seq 50); do [[ -S "$sock" ]] && break; sleep 0.1; done
    [[ -S "$sock" ]] || { echo "FAIL: tycd never bound $sock"; cat "$tmpdir/tycd.log"; exit 1; }

    cli="$build_dir/tools/tyccli"
    # The protocol works end to end *through* the fault schedule.
    "$cli" --unix "$sock" -c 'install m "fun double(x) = x + x end"' | grep OK >/dev/null
    "$cli" --unix "$sock" -c 'install s "fun spin(n) = spin(n + 1) end"' | grep OK >/dev/null
    [[ "$("$cli" --unix "$sock" -c 'call m double 21')" == "42" ]]

    # Hostile load: honest calls, budget kills, and raw garbage bytes.
    (
      i=0
      while :; do
        i=$((i + 1))
        "$cli" --unix "$sock" -c "call m double $i" >/dev/null 2>&1 || true
        printf 'budget 200000\ncall s spin 0\n' | "$cli" --unix "$sock" >/dev/null 2>&1 || true
        python3 - "$sock" <<'PYEOF' >/dev/null 2>&1 || true
import socket, sys
s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
s.settimeout(1)
s.connect(sys.argv[1])
s.sendall(bytes((7 * k + 3) % 256 for k in range(64)))
s.close()
PYEOF
      done
    ) &
    hostile_pid=$!

    sleep 2
    kill -TERM "$tycd_pid"
    wait "$tycd_pid"   # non-zero exit (crash, unclean drain) fails via set -e
    kill "$hostile_pid" 2>/dev/null || true
    wait "$hostile_pid" 2>/dev/null || true
    hostile_pid=

    # The verdict: a strict reopen serves the pre-chaos module at once.
    "$build_dir/tools/tycd" "$db" --unix "$sock" --workers 2 \
      2>"$tmpdir/tycd2.log" &
    tycd_pid=$!
    for _ in $(seq 50); do [[ -S "$sock" ]] && break; sleep 0.1; done
    [[ -S "$sock" ]] || { echo "FAIL: tycd did not restart cleanly after chaos"; cat "$tmpdir/tycd2.log"; exit 1; }
    [[ "$("$cli" --unix "$sock" -c 'call m double 50')" == "100" ]]
    kill -TERM "$tycd_pid"
    wait "$tycd_pid"
    artifacts
    echo "chaos drill OK: soak survived, SIGTERM mid-load left a store that reopens strict and serves immediately"
    ;;
esac
