#!/usr/bin/env bash
# Tier-1 check: configure, build, run the full test suite.
#
#   tools/check.sh          # RelWithDebInfo (the tier-1 gate)
#   tools/check.sh --asan   # ASan+UBSan build of the same suite; use this
#                           # for the store fuzz/decode-hardening tests
#   tools/check.sh --tsan   # TSan build; runs the concurrency-sensitive
#                           # tests (adaptive background worker, VM, runtime)
#   tools/check.sh --bench  # build + run every bench_* binary, writing
#                           # machine-readable BENCH_<name>.json and a
#                           # Chrome trace TRACE_<name>.json next to it
#   tools/check.sh --telemetry  # just the telemetry suites (incl. the
#                           # golden per-rule firing counts)
#   tools/check.sh --faults # ASan+UBSan build of the fault-injection and
#                           # crash-recovery suites: the FaultVfs semantics
#                           # tests, the every-syscall-boundary sweep, the
#                           # salvage end-to-end flow, and the adaptive
#                           # park/backoff behavior
#
# Extra arguments after the mode are forwarded to ctest, e.g.
#   tools/check.sh --asan -R 'DecodeFuzz|VarintHardening'
set -euo pipefail
cd "$(dirname "$0")/.."

build_dir=build
cmake_args=()
mode=test
case "${1:-}" in
  --asan)
    shift
    build_dir=build-asan
    cmake_args+=(-DCMAKE_BUILD_TYPE=Asan)
    ;;
  --tsan)
    shift
    build_dir=build-tsan
    cmake_args+=(-DCMAKE_BUILD_TYPE=Tsan)
    mode=tsan
    ;;
  --bench)
    shift
    mode=bench
    ;;
  --telemetry)
    shift
    mode=telemetry
    ;;
  --faults)
    shift
    build_dir=build-asan
    cmake_args+=(-DCMAKE_BUILD_TYPE=Asan)
    mode=faults
    ;;
esac

cmake -B "$build_dir" -S . "${cmake_args[@]}"
cmake --build "$build_dir" -j

case "$mode" in
  test)
    cd "$build_dir" && ctest --output-on-failure -j "$(nproc)" "$@"
    ;;
  tsan)
    # The suites that exercise threads (the adaptive worker, the telemetry
    # snapshot reader) plus the VM and runtime paths they race against.
    # gtest-derived ctest names are CamelCase.  NB: ctest's bare `-j` eats
    # the next argument as a job count, which used to swallow `-R` and run
    # the whole suite unfiltered — always give -j an explicit value.
    cd "$build_dir" && ctest --output-on-failure -j "$(nproc)" \
      -R 'Adaptive|Profile|Swizzle|Runtime|Vm|Telemetry|Concurrent' "$@"
    ;;
  bench)
    for bench in "$build_dir"/bench/bench_*; do
      [[ -x "$bench" && ! -d "$bench" ]] || continue
      name=$(basename "$bench")
      echo "== $name =="
      TYCOON_TRACE="$build_dir/TRACE_${name#bench_}.json" \
        "$bench" --json "$build_dir/BENCH_${name#bench_}.json"
      echo
    done
    echo "bench JSON written to $build_dir/BENCH_*.json, traces to TRACE_*.json"
    # Hardware-aware scaling gate on the concurrency bench: the speedup
    # floor only makes sense when the runner actually has the cores (an
    # 8-thread window on a 1-core container is contention, not scaling —
    # there we only require that threads don't make it collapse).
    python3 - "$build_dir/BENCH_concurrent.json" <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    m = json.load(f)
hw = int(m.get("hw_threads", 1))
if hw >= 8:
    checks = [("speedup_8x", 2.0)]
elif hw >= 4:
    checks = [("speedup_4x", 1.8)]
elif hw >= 2:
    checks = [("speedup_2x", 1.3)]
else:
    checks = [("speedup_8x", 0.6)]
failed = [(k, m.get(k), floor) for k, floor in checks
          if m.get(k) is None or m[k] < floor]
for k, got, floor in failed:
    print(f"FAIL: {k} = {got} below the {floor} floor (hw_threads={hw})")
if failed:
    sys.exit(1)
print(f"scaling gate OK (hw_threads={hw}): " +
      ", ".join(f"{k} >= {floor}" for k, floor in checks))
PYEOF
    ;;
  telemetry)
    cd "$build_dir" && ctest --output-on-failure -j "$(nproc)" -R 'Telemetry' "$@"
    ;;
  faults)
    cd "$build_dir" && ctest --output-on-failure -j "$(nproc)" \
      -R 'FaultVfs|StoreFaults|StoreFormats|StoreCompact|CrashRecovery|Salvage|AdaptiveFaults' "$@"
    ;;
esac
