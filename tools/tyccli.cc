// tyccli — interactive line client for tycd (DESIGN.md §10).
//
//   tyccli (--unix <path> | --tcp <host:port>) [-c "<command...>"]
//
// Each input line is tokenized into words (double quotes group words,
// backslash escapes inside quotes) and sent as one TAG_ARR-of-TAG_STR
// request frame; the reply is decoded and pretty-printed.  With -c the
// single command is sent non-interactively and the exit status reflects
// whether the reply was an error — handy for shell scripts and
// `check.sh --server`.

#include <unistd.h>

#include <cstdio>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "server/client.h"
#include "server/protocol.h"

namespace {

using tml::server::Client;
using tml::server::WireValue;

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--unix <path> | --tcp <host:port>) "
               "[-c \"<command...>\"]\n",
               argv0);
  return 2;
}

struct Token {
  std::string text;
  bool quoted = false;  // quoted tokens always go over the wire as TAG_STR
};

// Splits a command line into words; double-quoted spans keep spaces and
// honor \" and \\ escapes so module source can be passed inline:
//   install m "fun f(x) = x + 1 end"
std::vector<Token> Tokenize(const std::string& line) {
  std::vector<Token> words;
  Token cur;
  bool in_word = false, in_quote = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quote) {
      if (c == '\\' && i + 1 < line.size() &&
          (line[i + 1] == '"' || line[i + 1] == '\\')) {
        cur.text.push_back(line[++i]);
      } else if (c == '"') {
        in_quote = false;
      } else {
        cur.text.push_back(c);
      }
    } else if (c == '"') {
      in_quote = true;
      in_word = true;
      cur.quoted = true;
    } else if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      if (in_word) words.push_back(cur);
      cur = Token{};
      in_word = false;
    } else {
      cur.text.push_back(c);
      in_word = true;
    }
  }
  if (in_word) words.push_back(cur);
  return words;
}

// Unquoted words that parse fully as numbers become TAG_INT/TAG_DBL so
// `call m double 21` passes an integer, not the string "21".
WireValue ToWire(const Token& t) {
  if (!t.quoted && !t.text.empty()) {
    char* end = nullptr;
    errno = 0;
    long long i = std::strtoll(t.text.c_str(), &end, 10);
    if (errno == 0 && end != nullptr && *end == '\0') {
      return WireValue::Int(i);
    }
    errno = 0;
    double d = std::strtod(t.text.c_str(), &end);
    if (errno == 0 && end != nullptr && *end == '\0' && end != t.text.c_str()) {
      return WireValue::Dbl(d);
    }
  }
  return WireValue::Str(t.text);
}

void Print(const WireValue& v, int indent = 0) {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  switch (v.tag) {
    case tml::server::TAG_ARR:
      std::printf("%s[%zu elements]\n", pad.c_str(), v.elems.size());
      for (const auto& e : v.elems) Print(e, indent + 1);
      break;
    case tml::server::TAG_ERR:
      std::printf("%s(error %s) %s\n", pad.c_str(),
                  tml::server::ErrCodeName(v.err_code), v.s.c_str());
      break;
    default:
      std::printf("%s%s\n", pad.c_str(), tml::server::ToString(v).c_str());
  }
}

// Returns 0 on a non-error reply, 1 on TAG_ERR, 2 on transport failure.
int RunOne(Client& client, const std::vector<Token>& words) {
  std::vector<WireValue> elems;
  elems.reserve(words.size());
  for (const auto& w : words) elems.push_back(ToWire(w));
  auto reply = client.Call(WireValue::Arr(std::move(elems)));
  if (!reply.ok()) {
    std::fprintf(stderr, "tyccli: %s\n", reply.status().ToString().c_str());
    return 2;
  }
  Print(*reply);
  return reply->is_err() ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string unix_path, tcp_spec, command;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--unix") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      unix_path = v;
    } else if (a == "--tcp") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      tcp_spec = v;
    } else if (a == "-c") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      command = v;
    } else {
      return Usage(argv[0]);
    }
  }
  if (unix_path.empty() == tcp_spec.empty()) return Usage(argv[0]);

  tml::Result<Client> conn = [&]() -> tml::Result<Client> {
    if (!unix_path.empty()) return Client::ConnectUnix(unix_path);
    size_t colon = tcp_spec.rfind(':');
    if (colon == std::string::npos)
      return tml::Status::Invalid("tyccli: --tcp wants host:port");
    return Client::ConnectTcp(tcp_spec.substr(0, colon),
                              std::atoi(tcp_spec.c_str() + colon + 1));
  }();
  if (!conn.ok()) {
    std::fprintf(stderr, "tyccli: %s\n", conn.status().ToString().c_str());
    return 2;
  }
  Client client = std::move(*conn);

  if (!command.empty()) {
    auto words = Tokenize(command);
    if (words.empty()) return Usage(argv[0]);
    return RunOne(client, words);
  }

  bool tty = isatty(0) != 0;
  std::string line;
  while (true) {
    if (tty) {
      std::printf("tyc> ");
      std::fflush(stdout);
    }
    if (!std::getline(std::cin, line)) break;
    auto words = Tokenize(line);
    if (words.empty()) continue;
    if (words.size() == 1 && !words[0].quoted &&
        (words[0].text == "quit" || words[0].text == "exit")) {
      break;
    }
    if (RunOne(client, words) == 2) return 2;  // transport gone
  }
  return 0;
}
