// AST for the TL subset — the source language compiled to TML.
//
// TL (the Tycoon Language) is a value-oriented imperative language.  This
// subset is rich enough for the paper's running examples and the Stanford
// benchmark programs: top-level functions, let/var bindings, assignment,
// conditionals, while/for loops, try/catch/throw, integer/real/char/bool
// scalars, arrays and byte arrays.
//
// Grammar (blocks are `;`-separated expression sequences):
//
//   unit    := fndef*
//   fndef   := 'fun' IDENT '(' [IDENT (',' IDENT)*] ')' '=' block 'end'
//   block   := expr (';' expr)*
//   expr    := 'let' IDENT '=' expr 'in' block
//            | 'var' IDENT ':=' expr 'in' block
//            | 'if' expr 'then' block ['else' block] 'end'
//            | 'while' expr 'do' block 'end'
//            | 'for' IDENT '=' expr ('upto'|'downto') expr 'do' block 'end'
//            | 'try' block 'catch' IDENT '->' block 'end'
//            | 'throw' expr
//            | assign
//   assign  := IDENT ':=' expr | postfix '[' expr ']' ':=' expr | or
//   or      := and ('or' and)*                  (short-circuit)
//   and     := cmp ('and' cmp)*
//   cmp     := add (('<'|'<='|'>'|'>='|'=='|'!='|'<.'|'<=.') add)?
//   add     := mul (('+'|'-'|'+.'|'-.') mul)*
//   mul     := unary (('*'|'/'|'%'|'*.'|'/.') unary)*
//   unary   := '-' unary | 'not' unary | postfix
//   postfix := primary ('(' args ')' | '[' expr ']')*
//   primary := INT | REAL | CHAR | STRING | 'true' | 'false' | 'nil'
//            | IDENT | '(' block ')'
//            | 'array' '(' args ')'          -- array literal
//            | 'newarray' '(' expr ',' expr ')'
//            | 'newbytes' '(' expr ',' expr ')'
//
// Intrinsic call forms recognized by the CPS converter: print, size, sqrt,
// real, trunc, ord, chr.

#ifndef TML_FRONTEND_AST_H_
#define TML_FRONTEND_AST_H_

#include <memory>
#include <string>
#include <vector>

namespace tml::fe {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind : uint8_t {
  kIntLit,
  kRealLit,
  kCharLit,
  kStringLit,
  kBoolLit,
  kNilLit,
  kName,
  kLet,      // let/var name = init in body   (is_var distinguishes)
  kAssign,   // name := value
  kIndex,    // base[index]
  kIndexAssign,  // base[index] := value
  kCall,     // callee-name(args)
  kBinary,   // op, lhs, rhs
  kUnary,    // op, operand
  kIf,
  kWhile,
  kFor,
  kSeq,      // e1; e2; ...
  kTry,      // body catch name -> handler
  kThrow,
};

enum class BinOp : uint8_t {
  kAdd, kSub, kMul, kDiv, kMod,
  kAddR, kSubR, kMulR, kDivR,
  kLt, kLe, kGt, kGe, kEq, kNe,
  kLtR, kLeR,
  kAnd, kOr,  // short-circuit
};

enum class UnOp : uint8_t { kNeg, kNot };

struct Expr {
  ExprKind kind;
  int line = 0;

  // literals
  int64_t int_val = 0;
  double real_val = 0;
  uint8_t char_val = 0;
  bool bool_val = false;
  std::string str_val;

  std::string name;   // kName, kLet, kAssign, kCall, kFor, kTry (catch var)
  bool is_var = false;  // kLet: introduced with `var` (mutable)
  bool downto = false;  // kFor

  BinOp bin_op = BinOp::kAdd;
  UnOp un_op = UnOp::kNeg;

  ExprPtr a, b, c;              // operands / init / cond / bounds
  std::vector<ExprPtr> elems;   // kSeq items, kCall args
};

struct FnDef {
  std::string name;
  std::vector<std::string> params;
  ExprPtr body;
  int line = 0;
};

struct Unit {
  std::vector<FnDef> functions;
};

}  // namespace tml::fe

#endif  // TML_FRONTEND_AST_H_
