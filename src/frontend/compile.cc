#include "frontend/compile.h"

#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "core/primitive.h"
#include "frontend/parser.h"

namespace tml::fe {

using ir::Abstraction;
using ir::Application;
using ir::Module;
using ir::Variable;
using ir::VarSort;

namespace {

// ---- assigned-name analysis (decides boxing) ------------------------------

void CollectAssigned(const Expr* e, std::unordered_set<std::string>* out) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kAssign) out->insert(e->name);
  CollectAssigned(e->a.get(), out);
  CollectAssigned(e->b.get(), out);
  CollectAssigned(e->c.get(), out);
  for (const ExprPtr& x : e->elems) CollectAssigned(x.get(), out);
}

// ---- CPS conversion --------------------------------------------------------

class Converter {
 public:
  Converter(Module* m, const ir::PrimitiveRegistry& prims,
            const CompileOptions& opts)
      : m_(m), prims_(prims), opts_(opts) {}

  Result<CompiledFunction> ConvertFn(const FnDef& fn) {
    std::unordered_set<std::string> assigned;
    CollectAssigned(fn.body.get(), &assigned);

    std::vector<Variable*> params;
    size_t scope_base = scope_.size();
    std::vector<std::pair<Variable*, Variable*>> boxed_params;  // raw, box
    for (const std::string& p : fn.params) {
      Variable* v = m_->NewValueVar(p);
      params.push_back(v);
      if (assigned.count(p)) {
        Variable* box = m_->NewValueVar(p + "$box");
        boxed_params.emplace_back(v, box);
        scope_.push_back(ScopeEntry{p, box, /*boxed=*/true});
      } else {
        scope_.push_back(ScopeEntry{p, v, /*boxed=*/false});
      }
    }
    Variable* ce = m_->NewContVar("ce");
    Variable* cc = m_->NewContVar("cc");
    params.push_back(ce);
    params.push_back(cc);
    ce_ = ce;
    assigned_ = std::move(assigned);

    TML_ASSIGN_OR_RETURN(const Application* body,
                         Conv(fn.body.get(), K::Cont(cc)));
    // Wrap boxed parameters: (array p (cont (p$box) ...)).
    for (auto it = boxed_params.rbegin(); it != boxed_params.rend(); ++it) {
      body = m_->App(Prim(ir::PrimOp::kArray),
                     {it->first, m_->Abs({it->second}, body)});
    }
    scope_.resize(scope_base);

    CompiledFunction out;
    out.name = fn.name;
    out.abs = m_->Abs(std::span<Variable* const>(params.data(), params.size()),
                      body);
    out.free_names = std::move(free_names_);
    out.free_vars = std::move(free_vars_);
    free_names_.clear();
    free_vars_.clear();
    free_map_.clear();
    return out;
  }

 private:
  // A continuation under construction: either an existing TML continuation
  // value or a builder consuming the result value.
  struct K {
    const ir::Value* cont = nullptr;
    std::function<Result<const Application*>(const ir::Value*)> fn;

    static K Cont(const ir::Value* c) {
      K k;
      k.cont = c;
      return k;
    }
    static K Fn(std::function<Result<const Application*>(const ir::Value*)>
                    f) {
      K k;
      k.fn = std::move(f);
      return k;
    }
  };

  Result<const Application*> Apply(const K& k, const ir::Value* v) {
    if (k.cont != nullptr) return m_->App(k.cont, {v});
    return k.fn(v);
  }

  /// Reify k as a continuation value usable exactly once.
  Result<const ir::Value*> Reify(const K& k, const char* hint) {
    if (k.cont != nullptr) return k.cont;
    Variable* t = m_->NewValueVar(hint);
    TML_ASSIGN_OR_RETURN(const Application* app, k.fn(t));
    return static_cast<const ir::Value*>(m_->Abs({t}, app));
  }

  /// Run `body` with a continuation *variable* for k, binding the reified
  /// continuation once — needed when k is consumed at several join points.
  Result<const Application*> WithJoin(
      const K& k,
      const std::function<Result<const Application*>(const ir::Value*)>&
          body) {
    if (k.cont != nullptr && ir::Isa<Variable>(k.cont)) {
      return body(k.cont);
    }
    Variable* kv = m_->NewContVar("k");
    TML_ASSIGN_OR_RETURN(const Application* inner, body(kv));
    TML_ASSIGN_OR_RETURN(const ir::Value* reified, Reify(k, "t"));
    return m_->App(m_->Abs({kv}, inner), {reified});
  }

  const ir::Value* Prim(ir::PrimOp op) {
    const ir::Primitive* p = nullptr;
    for (const ir::Primitive* cand : prims_.All()) {
      if (cand->op() == op) {
        p = cand;
        break;
      }
    }
    return m_->Prim(p);
  }

  /// The free variable (creating it on first use) for `name`.
  Variable* FreeVar(const std::string& name) {
    auto it = free_map_.find(name);
    if (it != free_map_.end()) return it->second;
    Variable* v = m_->NewValueVar(name);
    free_map_[name] = v;
    free_names_.push_back(name);
    free_vars_.push_back(v);
    return v;
  }

  struct ScopeEntry {
    std::string name;
    const ir::Value* value;  // the binding value, or the box variable
    bool boxed;
  };

  const ScopeEntry* Lookup(const std::string& name) const {
    for (auto it = scope_.rbegin(); it != scope_.rend(); ++it) {
      if (it->name == name) return &*it;
    }
    return nullptr;
  }

  Status Err(const Expr* e, const std::string& msg) const {
    return Status::Invalid("TL compile error at line " +
                           std::to_string(e->line) + ": " + msg);
  }

  // ---- operator lowering ---------------------------------------------------

  struct OpInfo {
    ir::PrimOp prim;      // kDirect
    const char* lib;      // kLibrary free-variable name
    bool is_cmp;          // two branch continuations in direct mode
  };

  static Result<OpInfo> InfoFor(BinOp op) {
    switch (op) {
      case BinOp::kAdd: return OpInfo{ir::PrimOp::kAddI, "int_add", false};
      case BinOp::kSub: return OpInfo{ir::PrimOp::kSubI, "int_sub", false};
      case BinOp::kMul: return OpInfo{ir::PrimOp::kMulI, "int_mul", false};
      case BinOp::kDiv: return OpInfo{ir::PrimOp::kDivI, "int_div", false};
      case BinOp::kMod: return OpInfo{ir::PrimOp::kModI, "int_mod", false};
      case BinOp::kAddR: return OpInfo{ir::PrimOp::kAddR, "real_add", false};
      case BinOp::kSubR: return OpInfo{ir::PrimOp::kSubR, "real_sub", false};
      case BinOp::kMulR: return OpInfo{ir::PrimOp::kMulR, "real_mul", false};
      case BinOp::kDivR: return OpInfo{ir::PrimOp::kDivR, "real_div", false};
      case BinOp::kLt: return OpInfo{ir::PrimOp::kLtI, "int_lt", true};
      case BinOp::kLe: return OpInfo{ir::PrimOp::kLeI, "int_le", true};
      case BinOp::kGt: return OpInfo{ir::PrimOp::kGtI, "int_gt", true};
      case BinOp::kGe: return OpInfo{ir::PrimOp::kGeI, "int_ge", true};
      case BinOp::kEq: return OpInfo{ir::PrimOp::kEqB, "scalar_eq", true};
      case BinOp::kNe: return OpInfo{ir::PrimOp::kEqB, "scalar_eq", true};
      case BinOp::kLtR: return OpInfo{ir::PrimOp::kLtR, "real_lt", true};
      case BinOp::kLeR: return OpInfo{ir::PrimOp::kLeR, "real_le", true};
      default:
        return Status::Invalid("no operator info");
    }
  }

  /// Emit a binary operation producing a value for k.
  Result<const Application*> EmitBinary(const Expr* site, BinOp op,
                                        const ir::Value* a,
                                        const ir::Value* b, const K& k) {
    TML_ASSIGN_OR_RETURN(OpInfo info, InfoFor(op));
    if (opts_.binding == BindingMode::kLibrary) {
      // (lib a b ce k): the library function returns the value (a boolean
      // for comparisons).
      if (op == BinOp::kNe) return NegateResult(a, b, k);
      TML_ASSIGN_OR_RETURN(const ir::Value* kv, Reify(k, "t"));
      return m_->App(FreeVar(info.lib), {a, b, ce_, kv});
    }
    if (!info.is_cmp) {
      TML_ASSIGN_OR_RETURN(const ir::Value* kv, Reify(k, "t"));
      return m_->App(Prim(info.prim), {a, b, ce_, kv});
    }
    // Comparison: branch continuations materialize a boolean.
    bool negate = (op == BinOp::kNe);
    return WithJoin(k, [&](const ir::Value* kv)
                           -> Result<const Application*> {
      const Abstraction* t_branch =
          m_->Abs({}, m_->App(kv, {m_->BoolLit(!negate)}));
      const Abstraction* f_branch =
          m_->Abs({}, m_->App(kv, {m_->BoolLit(negate)}));
      return m_->App(Prim(info.prim), {a, b, t_branch, f_branch});
    });
  }

  // kNe in library mode: (scalar_eq a b ce (cont (t) (not t k'))).
  Result<const Application*> NegateResult(const ir::Value* a,
                                          const ir::Value* b, const K& k) {
    TML_ASSIGN_OR_RETURN(const ir::Value* kv, Reify(k, "t"));
    Variable* t = m_->NewValueVar("t");
    const Application* body =
        m_->App(Prim(ir::PrimOp::kNot), {t, kv});
    return m_->App(FreeVar("scalar_eq"), {a, b, ce_, m_->Abs({t}, body)});
  }

  /// Branch on a boolean value: (beq v true then else).
  Result<const Application*> BranchBool(const ir::Value* cond,
                                        const Abstraction* then_k,
                                        const Abstraction* else_k) {
    return m_->App(Prim(ir::PrimOp::kEqB),
                   {cond, m_->BoolLit(true), then_k, else_k});
  }

  // ---- expression conversion -------------------------------------------------

  Result<const Application*> Conv(const Expr* e, const K& k) {
    switch (e->kind) {
      case ExprKind::kIntLit:
        return Apply(k, m_->IntLit(e->int_val));
      case ExprKind::kRealLit:
        return Apply(k, m_->RealLit(e->real_val));
      case ExprKind::kCharLit:
        return Apply(k, m_->CharLit(e->char_val));
      case ExprKind::kStringLit:
        return Apply(k, m_->StringLit(e->str_val));
      case ExprKind::kBoolLit:
        return Apply(k, m_->BoolLit(e->bool_val));
      case ExprKind::kNilLit:
        return Apply(k, m_->NilLit());
      case ExprKind::kName: {
        const ScopeEntry* s = Lookup(e->name);
        if (s == nullptr) return Apply(k, FreeVar(e->name));
        if (!s->boxed) return Apply(k, s->value);
        return LoadIndexed(s->value, m_->IntLit(0), k, /*force_prim=*/true);
      }
      case ExprKind::kLet:
        return Conv(e->a.get(),
                    K::Fn([this, e, &k](const ir::Value* v)
                              -> Result<const Application*> {
                      bool boxed = e->is_var && assigned_.count(e->name) > 0;
                      if (!boxed && assigned_.count(e->name) > 0) {
                        boxed = true;  // `let` re-assigned: box anyway
                      }
                      if (!boxed) {
                        scope_.push_back(ScopeEntry{e->name, v, false});
                        auto body = Conv(e->b.get(), k);
                        scope_.pop_back();
                        return body;
                      }
                      Variable* box = m_->NewValueVar(e->name + "$box");
                      scope_.push_back(ScopeEntry{e->name, box, true});
                      auto body = Conv(e->b.get(), k);
                      scope_.pop_back();
                      if (!body.ok()) return body.status();
                      return m_->App(Prim(ir::PrimOp::kArray),
                                     {v, m_->Abs({box}, *body)});
                    }));
      case ExprKind::kAssign: {
        const ScopeEntry* s = Lookup(e->name);
        if (s == nullptr || !s->boxed) {
          return Err(e, "assignment to unassignable name '" + e->name + "'");
        }
        const ir::Value* box = s->value;
        return Conv(e->a.get(),
                    K::Fn([this, box, &k](const ir::Value* v)
                              -> Result<const Application*> {
                      return StoreIndexed(box, m_->IntLit(0), v, k,
                                          /*force_prim=*/true);
                    }));
      }
      case ExprKind::kIndex:
        return Conv(e->a.get(),
                    K::Fn([this, e, &k](const ir::Value* base)
                              -> Result<const Application*> {
                      return Conv(
                          e->b.get(),
                          K::Fn([this, base, &k](const ir::Value* idx)
                                    -> Result<const Application*> {
                            return LoadIndexed(base, idx, k, false);
                          }));
                    }));
      case ExprKind::kIndexAssign:
        return Conv(
            e->a.get(),
            K::Fn([this, e, &k](const ir::Value* base)
                      -> Result<const Application*> {
              return Conv(
                  e->b.get(),
                  K::Fn([this, e, base, &k](const ir::Value* idx)
                            -> Result<const Application*> {
                    return Conv(
                        e->c.get(),
                        K::Fn([this, base, idx, &k](const ir::Value* v)
                                  -> Result<const Application*> {
                          return StoreIndexed(base, idx, v, k, false);
                        }));
                  }));
            }));
      case ExprKind::kCall:
        return ConvCall(e, k);
      case ExprKind::kBinary:
        return ConvBinary(e, k);
      case ExprKind::kUnary:
        if (e->un_op == UnOp::kNot) {
          return Conv(e->a.get(),
                      K::Fn([this, &k](const ir::Value* v)
                                -> Result<const Application*> {
                        TML_ASSIGN_OR_RETURN(const ir::Value* kv,
                                             Reify(k, "t"));
                        return m_->App(Prim(ir::PrimOp::kNot), {v, kv});
                      }));
        }
        return Err(e, "unsupported unary operator");
      case ExprKind::kIf:
        return Conv(
            e->a.get(),
            K::Fn([this, e, &k](const ir::Value* cond)
                      -> Result<const Application*> {
              return WithJoin(k, [&](const ir::Value* kv)
                                     -> Result<const Application*> {
                TML_ASSIGN_OR_RETURN(const Application* then_app,
                                     Conv(e->b.get(), K::Cont(kv)));
                const Application* else_app = nullptr;
                if (e->c != nullptr) {
                  TML_ASSIGN_OR_RETURN(else_app,
                                       Conv(e->c.get(), K::Cont(kv)));
                } else {
                  else_app = m_->App(kv, {m_->NilLit()});
                }
                return BranchBool(cond, m_->Abs({}, then_app),
                                  m_->Abs({}, else_app));
              });
            }));
      case ExprKind::kWhile:
        return ConvWhile(e, k);
      case ExprKind::kFor:
        return ConvFor(e, k);
      case ExprKind::kSeq: {
        // e1; e2; ...; en — all but the last for effect.
        return ConvSeq(e, 0, k);
      }
      case ExprKind::kTry:
        return ConvTry(e, k);
      case ExprKind::kThrow:
        return Conv(e->a.get(),
                    K::Fn([this](const ir::Value* v)
                              -> Result<const Application*> {
                      return m_->App(ce_, {v});
                    }));
    }
    return Err(e, "unsupported expression");
  }

  Result<const Application*> ConvSeq(const Expr* e, size_t i, const K& k) {
    if (i + 1 == e->elems.size()) return Conv(e->elems[i].get(), k);
    return Conv(e->elems[i].get(),
                K::Fn([this, e, i, &k](const ir::Value*)
                          -> Result<const Application*> {
                  return ConvSeq(e, i + 1, k);
                }));
  }

  Result<const Application*> ConvBinary(const Expr* e, const K& k) {
    if (e->bin_op == BinOp::kAnd || e->bin_op == BinOp::kOr) {
      bool is_and = e->bin_op == BinOp::kAnd;
      return Conv(
          e->a.get(),
          K::Fn([this, e, is_and, &k](const ir::Value* av)
                    -> Result<const Application*> {
            return WithJoin(k, [&](const ir::Value* kv)
                                   -> Result<const Application*> {
              TML_ASSIGN_OR_RETURN(const Application* rhs,
                                   Conv(e->b.get(), K::Cont(kv)));
              const Application* shortc =
                  m_->App(kv, {m_->BoolLit(!is_and)});
              // and: if a then b else false; or: if a then true else b.
              const Abstraction* then_k =
                  m_->Abs({}, is_and ? rhs : shortc);
              const Abstraction* else_k =
                  m_->Abs({}, is_and ? shortc : rhs);
              return BranchBool(av, then_k, else_k);
            });
          }));
    }
    return Conv(e->a.get(),
                K::Fn([this, e, &k](const ir::Value* av)
                          -> Result<const Application*> {
                  return Conv(e->b.get(),
                              K::Fn([this, e, av, &k](const ir::Value* bv)
                                        -> Result<const Application*> {
                                return EmitBinary(e, e->bin_op, av, bv, k);
                              }));
                }));
  }

  Result<const Application*> ConvCall(const Expr* e, const K& k) {
    // Intrinsic forms first.
    if (e->name == "__array") {
      return ConvArgs(e, 0, {},
                      [this, &k](std::vector<const ir::Value*> vals)
                          -> Result<const Application*> {
                        TML_ASSIGN_OR_RETURN(const ir::Value* kv,
                                             Reify(k, "a"));
                        vals.push_back(kv);
                        return m_->App(Prim(ir::PrimOp::kArray),
                                       std::span<const ir::Value* const>(
                                           vals.data(), vals.size()));
                      });
    }
    if (e->name == "__newarray" || e->name == "__newbytes") {
      if (e->elems.size() != 2) return Err(e, "newarray/newbytes need 2 args");
      bool bytes = e->name == "__newbytes";
      return ConvArgs(e, 0, {},
                      [this, bytes, &k](std::vector<const ir::Value*> vals)
                          -> Result<const Application*> {
                        TML_ASSIGN_OR_RETURN(const ir::Value* kv,
                                             Reify(k, "a"));
                        if (bytes) {
                          return m_->App(Prim(ir::PrimOp::kNewByteArray),
                                         {vals[0], vals[1], kv});
                        }
                        return m_->App(Prim(ir::PrimOp::kMkArray),
                                       {vals[0], vals[1], ce_, kv});
                      });
    }
    if (e->name == "print") {
      return ConvArgs(e, 0, {},
                      [this, &k](std::vector<const ir::Value*> vals)
                          -> Result<const Application*> {
                        TML_ASSIGN_OR_RETURN(const ir::Value* kv,
                                             Reify(k, "g"));
                        std::vector<const ir::Value*> args;
                        args.push_back(m_->StringLit("print"));
                        for (const ir::Value* v : vals) args.push_back(v);
                        args.push_back(ce_);
                        args.push_back(kv);
                        return m_->App(Prim(ir::PrimOp::kCCall),
                                       std::span<const ir::Value* const>(
                                           args.data(), args.size()));
                      });
    }
    if (e->name == "size" && e->elems.size() == 1 && Lookup("size") == nullptr) {
      return ConvArgs(e, 0, {},
                      [this, &k](std::vector<const ir::Value*> vals)
                          -> Result<const Application*> {
                        if (opts_.binding == BindingMode::kLibrary) {
                          TML_ASSIGN_OR_RETURN(const ir::Value* kv,
                                               Reify(k, "t"));
                          return m_->App(FreeVar("arr_size"),
                                         {vals[0], ce_, kv});
                        }
                        TML_ASSIGN_OR_RETURN(const ir::Value* kv,
                                             Reify(k, "t"));
                        return m_->App(Prim(ir::PrimOp::kSize),
                                       {vals[0], kv});
                      });
    }
    if (e->name == "sqrt" && e->elems.size() == 1 &&
        Lookup("sqrt") == nullptr) {
      return ConvArgs(e, 0, {},
                      [this, &k](std::vector<const ir::Value*> vals)
                          -> Result<const Application*> {
                        TML_ASSIGN_OR_RETURN(const ir::Value* kv,
                                             Reify(k, "t"));
                        if (opts_.binding == BindingMode::kLibrary) {
                          return m_->App(FreeVar("math_sqrt"),
                                         {vals[0], ce_, kv});
                        }
                        return m_->App(Prim(ir::PrimOp::kSqrt),
                                       {vals[0], ce_, kv});
                      });
    }
    if ((e->name == "real" || e->name == "trunc" || e->name == "ord" ||
         e->name == "chr") &&
        e->elems.size() == 1 && Lookup(e->name) == nullptr) {
      ir::PrimOp op = e->name == "real"    ? ir::PrimOp::kIntToReal
                      : e->name == "trunc" ? ir::PrimOp::kTruncR
                      : e->name == "ord"   ? ir::PrimOp::kChar2Int
                                           : ir::PrimOp::kInt2Char;
      return ConvArgs(e, 0, {},
                      [this, op, &k](std::vector<const ir::Value*> vals)
                          -> Result<const Application*> {
                        TML_ASSIGN_OR_RETURN(const ir::Value* kv,
                                             Reify(k, "t"));
                        if (op == ir::PrimOp::kTruncR) {
                          return m_->App(Prim(op), {vals[0], kv});
                        }
                        return m_->App(Prim(op), {vals[0], kv});
                      });
    }
    // Ordinary call: (f a1..an ce k).
    const ScopeEntry* s = Lookup(e->name);
    const ir::Value* f =
        s != nullptr ? s->value
                     : static_cast<const ir::Value*>(FreeVar(e->name));
    if (s != nullptr && s->boxed) {
      return Err(e, "calling a mutable variable is not supported");
    }
    return ConvArgs(e, 0, {},
                    [this, f, &k](std::vector<const ir::Value*> vals)
                        -> Result<const Application*> {
                      TML_ASSIGN_OR_RETURN(const ir::Value* kv,
                                           Reify(k, "r"));
                      vals.push_back(ce_);
                      vals.push_back(kv);
                      return m_->App(f, std::span<const ir::Value* const>(
                                            vals.data(), vals.size()));
                    });
  }

  /// Convert call arguments left to right, then invoke `done`.
  Result<const Application*> ConvArgs(
      const Expr* e, size_t i, std::vector<const ir::Value*> acc,
      const std::function<Result<const Application*>(
          std::vector<const ir::Value*>)>& done) {
    if (i == e->elems.size()) return done(std::move(acc));
    return Conv(e->elems[i].get(),
                K::Fn([this, e, i, acc = std::move(acc), &done](
                          const ir::Value* v) mutable
                          -> Result<const Application*> {
                  acc.push_back(v);
                  return ConvArgs(e, i + 1, std::move(acc), done);
                }));
  }

  Result<const Application*> LoadIndexed(const ir::Value* base,
                                         const ir::Value* idx, const K& k,
                                         bool force_prim) {
    TML_ASSIGN_OR_RETURN(const ir::Value* kv, Reify(k, "v"));
    if (!force_prim && opts_.binding == BindingMode::kLibrary) {
      return m_->App(FreeVar("arr_get"), {base, idx, ce_, kv});
    }
    return m_->App(Prim(ir::PrimOp::kALoad), {base, idx, ce_, kv});
  }

  Result<const Application*> StoreIndexed(const ir::Value* base,
                                          const ir::Value* idx,
                                          const ir::Value* v, const K& k,
                                          bool force_prim) {
    // The assignment expression's value is nil.
    TML_ASSIGN_OR_RETURN(const Application* rest, Apply(k, m_->NilLit()));
    Variable* ig = m_->NewValueVar("g");
    const Abstraction* kv = m_->Abs({ig}, rest);
    if (!force_prim && opts_.binding == BindingMode::kLibrary) {
      return m_->App(FreeVar("arr_set"), {base, idx, v, ce_, kv});
    }
    return m_->App(Prim(ir::PrimOp::kAStore), {base, idx, v, ce_, kv});
  }

  // while cond do body end — the paper's Y-loop shape.
  Result<const Application*> ConvWhile(const Expr* e, const K& k) {
    return WithJoin(k, [&](const ir::Value* kv)
                           -> Result<const Application*> {
      Variable* c0 = m_->NewContVar("c0");
      Variable* loop = m_->NewContVar("loop");
      Variable* c = m_->NewContVar("c");
      // loop body: eval cond; true -> body; loop()  false -> (kv nil)
      TML_ASSIGN_OR_RETURN(
          const Application* check,
          Conv(e->a.get(),
               K::Fn([&](const ir::Value* cv) -> Result<const Application*> {
                 TML_ASSIGN_OR_RETURN(
                     const Application* body_app,
                     Conv(e->b.get(),
                          K::Fn([&](const ir::Value*)
                                    -> Result<const Application*> {
                            return m_->App(loop, {});
                          })));
                 const Application* exit_app = m_->App(kv, {m_->NilLit()});
                 return BranchBool(cv, m_->Abs({}, body_app),
                                   m_->Abs({}, exit_app));
               })));
      const Abstraction* loop_abs = m_->Abs({}, check);
      const Abstraction* entry = m_->Abs({}, m_->App(loop, {}));
      const Application* ybody = m_->App(c, {entry, loop_abs});
      const Abstraction* gen = m_->Abs({c0, loop, c}, ybody);
      return m_->App(Prim(ir::PrimOp::kY), {gen});
    });
  }

  // for i = lo upto/downto hi do body end
  Result<const Application*> ConvFor(const Expr* e, const K& k) {
    return Conv(e->a.get(), K::Fn([&](const ir::Value* lo)
                                      -> Result<const Application*> {
      return Conv(e->b.get(), K::Fn([&](const ir::Value* hi)
                                        -> Result<const Application*> {
        return WithJoin(k, [&](const ir::Value* kv)
                               -> Result<const Application*> {
          Variable* c0 = m_->NewContVar("c0");
          Variable* loop = m_->NewContVar("for");
          Variable* c = m_->NewContVar("c");
          Variable* i = m_->NewValueVar(e->name);
          scope_.push_back(ScopeEntry{e->name, i, false});
          // exit test: upto: i > hi; downto: i < hi.
          TML_ASSIGN_OR_RETURN(
              const Application* test,
              EmitBinary(e, e->downto ? BinOp::kLt : BinOp::kGt, i, hi,
                         K::Fn([&](const ir::Value* cv)
                                   -> Result<const Application*> {
                           TML_ASSIGN_OR_RETURN(
                               const Application* body_app,
                               Conv(e->c.get(),
                                    K::Fn([&](const ir::Value*)
                                              -> Result<const Application*> {
                                      return EmitBinary(
                                          e,
                                          e->downto ? BinOp::kSub
                                                    : BinOp::kAdd,
                                          i, m_->IntLit(1),
                                          K::Fn([&](const ir::Value* ni)
                                                    -> Result<
                                                        const Application*> {
                                            return m_->App(loop, {ni});
                                          }));
                                    })));
                           const Application* exit_app =
                               m_->App(kv, {m_->NilLit()});
                           return BranchBool(cv, m_->Abs({}, exit_app),
                                             m_->Abs({}, body_app));
                         })));
          scope_.pop_back();
          const Abstraction* loop_abs = m_->Abs({i}, test);
          const Abstraction* entry = m_->Abs({}, m_->App(loop, {lo}));
          const Application* ybody = m_->App(c, {entry, loop_abs});
          const Abstraction* gen = m_->Abs({c0, loop, c}, ybody);
          return m_->App(Prim(ir::PrimOp::kY), {gen});
        });
      }));
    }));
  }

  // try body catch x -> handler end: pure ce-passing (§2.3).
  Result<const Application*> ConvTry(const Expr* e, const K& k) {
    return WithJoin(k, [&](const ir::Value* kv)
                           -> Result<const Application*> {
      Variable* h = m_->NewContVar("h");
      const ir::Value* outer_ce = ce_;
      // Handler: (cont (x) handler-code) with the *outer* ce.
      Variable* x = m_->NewValueVar(e->name);
      scope_.push_back(ScopeEntry{e->name, x, false});
      TML_ASSIGN_OR_RETURN(const Application* handler_app,
                           Conv(e->b.get(), K::Cont(kv)));
      scope_.pop_back();
      const Abstraction* handler = m_->Abs({x}, handler_app);
      // Body with ce := h.
      ce_ = h;
      auto body = Conv(e->a.get(), K::Cont(kv));
      ce_ = outer_ce;
      if (!body.ok()) return body.status();
      return m_->App(m_->Abs({h}, *body), {handler});
    });
  }

  Module* m_;
  const ir::PrimitiveRegistry& prims_;
  CompileOptions opts_;
  std::vector<ScopeEntry> scope_;
  std::unordered_set<std::string> assigned_;
  const ir::Value* ce_ = nullptr;
  std::vector<std::string> free_names_;
  std::vector<Variable*> free_vars_;
  std::unordered_map<std::string, Variable*> free_map_;
};

}  // namespace

const std::vector<LibraryEntry>& StdlibEntries() {
  static const auto* entries = new std::vector<LibraryEntry>{
      {"int_add", "(proc (a b ce cc) (+ a b ce cc))"},
      {"int_sub", "(proc (a b ce cc) (- a b ce cc))"},
      {"int_mul", "(proc (a b ce cc) (* a b ce cc))"},
      {"int_div", "(proc (a b ce cc) (/ a b ce cc))"},
      {"int_mod", "(proc (a b ce cc) (% a b ce cc))"},
      {"int_lt",
       "(proc (a b ce cc) (< a b (cont () (cc true)) (cont () (cc false))))"},
      {"int_le",
       "(proc (a b ce cc) (<= a b (cont () (cc true)) (cont () (cc false))))"},
      {"int_gt",
       "(proc (a b ce cc) (> a b (cont () (cc true)) (cont () (cc false))))"},
      {"int_ge",
       "(proc (a b ce cc) (>= a b (cont () (cc true)) (cont () (cc false))))"},
      {"scalar_eq",
       "(proc (a b ce cc) (beq a b (cont () (cc true)) (cont () (cc false))))"},
      {"real_add", "(proc (a b ce cc) (+. a b ce cc))"},
      {"real_sub", "(proc (a b ce cc) (-. a b ce cc))"},
      {"real_mul", "(proc (a b ce cc) (*. a b ce cc))"},
      {"real_div", "(proc (a b ce cc) (/. a b ce cc))"},
      {"real_lt",
       "(proc (a b ce cc) (<. a b (cont () (cc true)) (cont () (cc false))))"},
      {"real_le",
       "(proc (a b ce cc) (<=. a b (cont () (cc true)) (cont () (cc false))))"},
      {"math_sqrt", "(proc (a ce cc) (sqrt a ce cc))"},
      {"arr_get", "(proc (a i ce cc) ([] a i ce cc))"},
      {"arr_set", "(proc (a i v ce cc) ([]:= a i v ce cc))"},
      {"arr_size", "(proc (a ce cc) (size a cc))"},
  };
  return *entries;
}

Result<CompiledUnit> Compile(std::string_view source,
                             const ir::PrimitiveRegistry& prims,
                             const CompileOptions& opts) {
  TML_ASSIGN_OR_RETURN(Unit unit, ParseUnit(source));
  CompiledUnit out;
  out.module = std::make_unique<Module>();
  Converter conv(out.module.get(), prims, opts);
  for (const FnDef& fn : unit.functions) {
    TML_ASSIGN_OR_RETURN(CompiledFunction cf, conv.ConvertFn(fn));
    out.functions.push_back(std::move(cf));
  }
  return out;
}

}  // namespace tml::fe
