#include "frontend/parser.h"

#include <cctype>
#include <cstdlib>
#include <unordered_set>

namespace tml::fe {

namespace {

enum class Tk : uint8_t {
  kEnd, kIdent, kInt, kReal, kChar, kString,
  kLParen, kRParen, kLBracket, kRBracket, kComma, kSemi, kArrow,
  kAssign,  // :=
  kEq,      // =
  kOp,      // operator spelled in text
  kKeyword,
};

struct Token {
  Tk kind = Tk::kEnd;
  std::string text;
  int64_t int_val = 0;
  double real_val = 0;
  uint8_t char_val = 0;
  int line = 1;
};

const std::unordered_set<std::string>& Keywords() {
  static const auto* kw = new std::unordered_set<std::string>{
      "fun", "let", "var", "in", "if", "then", "else", "end", "while",
      "do", "for", "upto", "downto", "begin", "try", "catch", "throw",
      "true", "false", "nil", "and", "or", "not", "array", "newarray",
      "newbytes"};
  return *kw;
}

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  Result<Token> Next() {
    SkipWs();
    Token t;
    t.line = line_;
    if (pos_ >= src_.size()) return t;
    char c = src_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_;
      while (pos_ < src_.size() &&
             (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
              src_[pos_] == '_')) {
        ++pos_;
      }
      t.text = std::string(src_.substr(start, pos_ - start));
      t.kind = Keywords().count(t.text) ? Tk::kKeyword : Tk::kIdent;
      return t;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = pos_;
      bool is_real = false;
      while (pos_ < src_.size()) {
        char d = src_[pos_];
        if (std::isdigit(static_cast<unsigned char>(d))) {
          ++pos_;
        } else if (d == '.' && pos_ + 1 < src_.size() &&
                   std::isdigit(static_cast<unsigned char>(src_[pos_ + 1]))) {
          is_real = true;
          ++pos_;
        } else if ((d == 'e' || d == 'E') && pos_ + 1 < src_.size()) {
          is_real = true;
          ++pos_;
          if (pos_ < src_.size() && (src_[pos_] == '+' || src_[pos_] == '-')) {
            ++pos_;
          }
        } else {
          break;
        }
      }
      std::string num(src_.substr(start, pos_ - start));
      if (is_real) {
        t.kind = Tk::kReal;
        t.real_val = std::strtod(num.c_str(), nullptr);
      } else {
        t.kind = Tk::kInt;
        t.int_val = std::strtoll(num.c_str(), nullptr, 10);
      }
      return t;
    }
    if (c == '\'') {
      if (pos_ + 2 >= src_.size() || src_[pos_ + 2] != '\'') {
        return Err("bad character literal");
      }
      t.kind = Tk::kChar;
      t.char_val = static_cast<uint8_t>(src_[pos_ + 1]);
      pos_ += 3;
      return t;
    }
    if (c == '"') {
      ++pos_;
      std::string s;
      while (pos_ < src_.size() && src_[pos_] != '"') {
        s.push_back(src_[pos_++]);
      }
      if (pos_ >= src_.size()) return Err("unterminated string");
      ++pos_;
      t.kind = Tk::kString;
      t.text = std::move(s);
      return t;
    }
    ++pos_;
    switch (c) {
      case '(': t.kind = Tk::kLParen; return t;
      case ')': t.kind = Tk::kRParen; return t;
      case '[': t.kind = Tk::kLBracket; return t;
      case ']': t.kind = Tk::kRBracket; return t;
      case ',': t.kind = Tk::kComma; return t;
      case ';': t.kind = Tk::kSemi; return t;
      case ':':
        if (Peek() == '=') {
          ++pos_;
          t.kind = Tk::kAssign;
          return t;
        }
        return Err("expected ':='");
      case '-':
        if (Peek() == '>') {
          ++pos_;
          t.kind = Tk::kArrow;
          return t;
        }
        t.kind = Tk::kOp;
        t.text = WithDot("-");
        return t;
      case '+': t.kind = Tk::kOp; t.text = WithDot("+"); return t;
      case '*': t.kind = Tk::kOp; t.text = WithDot("*"); return t;
      case '/': t.kind = Tk::kOp; t.text = WithDot("/"); return t;
      case '%': t.kind = Tk::kOp; t.text = "%"; return t;
      case '<':
        if (Peek() == '=') {
          ++pos_;
          t.kind = Tk::kOp;
          t.text = WithDot("<=");
          return t;
        }
        t.kind = Tk::kOp;
        t.text = WithDot("<");
        return t;
      case '>':
        if (Peek() == '=') {
          ++pos_;
          t.kind = Tk::kOp;
          t.text = ">=";
          return t;
        }
        t.kind = Tk::kOp;
        t.text = ">";
        return t;
      case '=':
        if (Peek() == '=') {
          ++pos_;
          t.kind = Tk::kOp;
          t.text = "==";
          return t;
        }
        t.kind = Tk::kEq;
        return t;
      case '!':
        if (Peek() == '=') {
          ++pos_;
          t.kind = Tk::kOp;
          t.text = "!=";
          return t;
        }
        return Err("expected '!='");
      default:
        return Err(std::string("unexpected character '") + c + "'");
    }
  }

 private:
  char Peek() const { return pos_ < src_.size() ? src_[pos_] : '\0'; }

  // "+." real-operator suffix.
  std::string WithDot(std::string base) {
    if (Peek() == '.') {
      ++pos_;
      base += '.';
    }
    return base;
  }

  void SkipWs() {
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#') {  // comment to end of line
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  Status Err(const std::string& msg) const {
    return Status::Invalid("TL lex error at line " + std::to_string(line_) +
                           ": " + msg);
  }

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
};

class Parser {
 public:
  explicit Parser(std::string_view src) : lexer_(src) {}

  Result<Unit> Parse() {
    TML_RETURN_NOT_OK(Advance());
    Unit unit;
    while (cur_.kind != Tk::kEnd) {
      TML_ASSIGN_OR_RETURN(FnDef fn, ParseFn());
      unit.functions.push_back(std::move(fn));
    }
    return unit;
  }

 private:
  Result<FnDef> ParseFn() {
    TML_RETURN_NOT_OK(ExpectKeyword("fun"));
    FnDef fn;
    fn.line = cur_.line;
    TML_ASSIGN_OR_RETURN(fn.name, ExpectIdent());
    TML_RETURN_NOT_OK(Expect(Tk::kLParen, "'('"));
    while (cur_.kind != Tk::kRParen) {
      TML_ASSIGN_OR_RETURN(std::string p, ExpectIdent());
      fn.params.push_back(std::move(p));
      if (cur_.kind == Tk::kComma) TML_RETURN_NOT_OK(Advance());
    }
    TML_RETURN_NOT_OK(Advance());  // ')'
    TML_RETURN_NOT_OK(Expect(Tk::kEq, "'='"));
    TML_ASSIGN_OR_RETURN(fn.body, ParseBlock());
    TML_RETURN_NOT_OK(ExpectKeyword("end"));
    return fn;
  }

  // expr (';' expr)*
  Result<ExprPtr> ParseBlock() {
    TML_ASSIGN_OR_RETURN(ExprPtr first, ParseExpr());
    if (cur_.kind != Tk::kSemi) return first;
    auto seq = New(ExprKind::kSeq);
    seq->elems.push_back(std::move(first));
    while (cur_.kind == Tk::kSemi) {
      TML_RETURN_NOT_OK(Advance());
      TML_ASSIGN_OR_RETURN(ExprPtr next, ParseExpr());
      seq->elems.push_back(std::move(next));
    }
    return seq;
  }

  Result<ExprPtr> ParseExpr() {
    if (cur_.kind == Tk::kKeyword) {
      const std::string& kw = cur_.text;
      if (kw == "let" || kw == "var") return ParseLet(kw == "var");
      if (kw == "if") return ParseIf();
      if (kw == "while") return ParseWhile();
      if (kw == "for") return ParseFor();
      if (kw == "begin") return ParseBegin();
      if (kw == "try") return ParseTry();
      if (kw == "throw") {
        TML_RETURN_NOT_OK(Advance());
        auto e = New(ExprKind::kThrow);
        TML_ASSIGN_OR_RETURN(e->a, ParseExpr());
        return e;
      }
    }
    return ParseAssign();
  }

  Result<ExprPtr> ParseLet(bool is_var) {
    TML_RETURN_NOT_OK(Advance());  // let/var
    auto e = New(ExprKind::kLet);
    e->is_var = is_var;
    TML_ASSIGN_OR_RETURN(e->name, ExpectIdent());
    if (is_var) {
      TML_RETURN_NOT_OK(Expect(Tk::kAssign, "':='"));
    } else {
      TML_RETURN_NOT_OK(Expect(Tk::kEq, "'='"));
    }
    TML_ASSIGN_OR_RETURN(e->a, ParseExpr());
    TML_RETURN_NOT_OK(ExpectKeyword("in"));
    TML_ASSIGN_OR_RETURN(e->b, ParseBlock());
    return e;
  }

  Result<ExprPtr> ParseIf() {
    TML_RETURN_NOT_OK(Advance());
    auto e = New(ExprKind::kIf);
    TML_ASSIGN_OR_RETURN(e->a, ParseExpr());
    TML_RETURN_NOT_OK(ExpectKeyword("then"));
    TML_ASSIGN_OR_RETURN(e->b, ParseBlock());
    if (cur_.kind == Tk::kKeyword && cur_.text == "else") {
      TML_RETURN_NOT_OK(Advance());
      TML_ASSIGN_OR_RETURN(e->c, ParseBlock());
    }
    TML_RETURN_NOT_OK(ExpectKeyword("end"));
    return e;
  }

  Result<ExprPtr> ParseWhile() {
    TML_RETURN_NOT_OK(Advance());
    auto e = New(ExprKind::kWhile);
    TML_ASSIGN_OR_RETURN(e->a, ParseExpr());
    TML_RETURN_NOT_OK(ExpectKeyword("do"));
    TML_ASSIGN_OR_RETURN(e->b, ParseBlock());
    TML_RETURN_NOT_OK(ExpectKeyword("end"));
    return e;
  }

  Result<ExprPtr> ParseFor() {
    TML_RETURN_NOT_OK(Advance());
    auto e = New(ExprKind::kFor);
    TML_ASSIGN_OR_RETURN(e->name, ExpectIdent());
    TML_RETURN_NOT_OK(Expect(Tk::kEq, "'='"));
    TML_ASSIGN_OR_RETURN(e->a, ParseExpr());
    if (cur_.kind == Tk::kKeyword && cur_.text == "downto") {
      e->downto = true;
      TML_RETURN_NOT_OK(Advance());
    } else {
      TML_RETURN_NOT_OK(ExpectKeyword("upto"));
    }
    TML_ASSIGN_OR_RETURN(e->b, ParseExpr());
    TML_RETURN_NOT_OK(ExpectKeyword("do"));
    TML_ASSIGN_OR_RETURN(e->c, ParseBlock());
    TML_RETURN_NOT_OK(ExpectKeyword("end"));
    return e;
  }

  Result<ExprPtr> ParseBegin() {
    TML_RETURN_NOT_OK(Advance());
    TML_ASSIGN_OR_RETURN(ExprPtr block, ParseBlock());
    TML_RETURN_NOT_OK(ExpectKeyword("end"));
    return block;
  }

  Result<ExprPtr> ParseTry() {
    TML_RETURN_NOT_OK(Advance());
    auto e = New(ExprKind::kTry);
    TML_ASSIGN_OR_RETURN(e->a, ParseBlock());
    TML_RETURN_NOT_OK(ExpectKeyword("catch"));
    TML_ASSIGN_OR_RETURN(e->name, ExpectIdent());
    TML_RETURN_NOT_OK(Expect(Tk::kArrow, "'->'"));
    TML_ASSIGN_OR_RETURN(e->b, ParseBlock());
    TML_RETURN_NOT_OK(ExpectKeyword("end"));
    return e;
  }

  Result<ExprPtr> ParseAssign() {
    TML_ASSIGN_OR_RETURN(ExprPtr lhs, ParseOr());
    if (cur_.kind != Tk::kAssign) return lhs;
    TML_RETURN_NOT_OK(Advance());
    if (lhs->kind == ExprKind::kName) {
      auto e = New(ExprKind::kAssign);
      e->name = lhs->name;
      TML_ASSIGN_OR_RETURN(e->a, ParseExpr());
      return e;
    }
    if (lhs->kind == ExprKind::kIndex) {
      auto e = New(ExprKind::kIndexAssign);
      e->a = std::move(lhs->a);
      e->b = std::move(lhs->b);
      TML_ASSIGN_OR_RETURN(e->c, ParseExpr());
      return e;
    }
    return Err("invalid assignment target");
  }

  Result<ExprPtr> ParseOr() {
    TML_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (cur_.kind == Tk::kKeyword && cur_.text == "or") {
      TML_RETURN_NOT_OK(Advance());
      auto e = New(ExprKind::kBinary);
      e->bin_op = BinOp::kOr;
      e->a = std::move(lhs);
      TML_ASSIGN_OR_RETURN(e->b, ParseAnd());
      lhs = std::move(e);
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    TML_ASSIGN_OR_RETURN(ExprPtr lhs, ParseCmp());
    while (cur_.kind == Tk::kKeyword && cur_.text == "and") {
      TML_RETURN_NOT_OK(Advance());
      auto e = New(ExprKind::kBinary);
      e->bin_op = BinOp::kAnd;
      e->a = std::move(lhs);
      TML_ASSIGN_OR_RETURN(e->b, ParseCmp());
      lhs = std::move(e);
    }
    return lhs;
  }

  Result<ExprPtr> ParseCmp() {
    TML_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdd());
    if (cur_.kind != Tk::kOp) return lhs;
    BinOp op;
    if (cur_.text == "<") op = BinOp::kLt;
    else if (cur_.text == "<=") op = BinOp::kLe;
    else if (cur_.text == ">") op = BinOp::kGt;
    else if (cur_.text == ">=") op = BinOp::kGe;
    else if (cur_.text == "==") op = BinOp::kEq;
    else if (cur_.text == "!=") op = BinOp::kNe;
    else if (cur_.text == "<.") op = BinOp::kLtR;
    else if (cur_.text == "<=.") op = BinOp::kLeR;
    else return lhs;
    TML_RETURN_NOT_OK(Advance());
    auto e = New(ExprKind::kBinary);
    e->bin_op = op;
    e->a = std::move(lhs);
    TML_ASSIGN_OR_RETURN(e->b, ParseAdd());
    return e;
  }

  Result<ExprPtr> ParseAdd() {
    TML_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMul());
    while (cur_.kind == Tk::kOp &&
           (cur_.text == "+" || cur_.text == "-" || cur_.text == "+." ||
            cur_.text == "-.")) {
      BinOp op = cur_.text == "+"    ? BinOp::kAdd
                 : cur_.text == "-"  ? BinOp::kSub
                 : cur_.text == "+." ? BinOp::kAddR
                                     : BinOp::kSubR;
      TML_RETURN_NOT_OK(Advance());
      auto e = New(ExprKind::kBinary);
      e->bin_op = op;
      e->a = std::move(lhs);
      TML_ASSIGN_OR_RETURN(e->b, ParseMul());
      lhs = std::move(e);
    }
    return lhs;
  }

  Result<ExprPtr> ParseMul() {
    TML_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (cur_.kind == Tk::kOp &&
           (cur_.text == "*" || cur_.text == "/" || cur_.text == "%" ||
            cur_.text == "*." || cur_.text == "/.")) {
      BinOp op = cur_.text == "*"    ? BinOp::kMul
                 : cur_.text == "/"  ? BinOp::kDiv
                 : cur_.text == "%"  ? BinOp::kMod
                 : cur_.text == "*." ? BinOp::kMulR
                                     : BinOp::kDivR;
      TML_RETURN_NOT_OK(Advance());
      auto e = New(ExprKind::kBinary);
      e->bin_op = op;
      e->a = std::move(lhs);
      TML_ASSIGN_OR_RETURN(e->b, ParseUnary());
      lhs = std::move(e);
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnary() {
    if (cur_.kind == Tk::kOp && (cur_.text == "-" || cur_.text == "-.")) {
      bool real = cur_.text == "-.";
      TML_RETURN_NOT_OK(Advance());
      // Constant-fold negative literals directly.
      if (!real && cur_.kind == Tk::kInt) {
        auto e = New(ExprKind::kIntLit);
        e->int_val = -cur_.int_val;
        TML_RETURN_NOT_OK(Advance());
        return e;
      }
      if (cur_.kind == Tk::kReal) {
        auto e = New(ExprKind::kRealLit);
        e->real_val = -cur_.real_val;
        TML_RETURN_NOT_OK(Advance());
        return e;
      }
      auto e = New(ExprKind::kBinary);
      e->bin_op = real ? BinOp::kSubR : BinOp::kSub;
      e->a = New(real ? ExprKind::kRealLit : ExprKind::kIntLit);
      TML_ASSIGN_OR_RETURN(e->b, ParseUnary());
      return e;
    }
    if (cur_.kind == Tk::kKeyword && cur_.text == "not") {
      TML_RETURN_NOT_OK(Advance());
      auto e = New(ExprKind::kUnary);
      e->un_op = UnOp::kNot;
      TML_ASSIGN_OR_RETURN(e->a, ParseUnary());
      return e;
    }
    return ParsePostfix();
  }

  Result<ExprPtr> ParsePostfix() {
    TML_ASSIGN_OR_RETURN(ExprPtr e, ParsePrimary());
    while (true) {
      if (cur_.kind == Tk::kLParen) {
        if (e->kind != ExprKind::kName) {
          return Err("only named functions can be called");
        }
        TML_RETURN_NOT_OK(Advance());
        auto call = New(ExprKind::kCall);
        call->name = e->name;
        while (cur_.kind != Tk::kRParen) {
          TML_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
          call->elems.push_back(std::move(arg));
          if (cur_.kind == Tk::kComma) TML_RETURN_NOT_OK(Advance());
        }
        TML_RETURN_NOT_OK(Advance());
        e = std::move(call);
      } else if (cur_.kind == Tk::kLBracket) {
        TML_RETURN_NOT_OK(Advance());
        auto idx = New(ExprKind::kIndex);
        idx->a = std::move(e);
        TML_ASSIGN_OR_RETURN(idx->b, ParseExpr());
        TML_RETURN_NOT_OK(Expect(Tk::kRBracket, "']'"));
        e = std::move(idx);
      } else {
        return e;
      }
    }
  }

  Result<ExprPtr> ParsePrimary() {
    switch (cur_.kind) {
      case Tk::kInt: {
        auto e = New(ExprKind::kIntLit);
        e->int_val = cur_.int_val;
        TML_RETURN_NOT_OK(Advance());
        return e;
      }
      case Tk::kReal: {
        auto e = New(ExprKind::kRealLit);
        e->real_val = cur_.real_val;
        TML_RETURN_NOT_OK(Advance());
        return e;
      }
      case Tk::kChar: {
        auto e = New(ExprKind::kCharLit);
        e->char_val = cur_.char_val;
        TML_RETURN_NOT_OK(Advance());
        return e;
      }
      case Tk::kString: {
        auto e = New(ExprKind::kStringLit);
        e->str_val = cur_.text;
        TML_RETURN_NOT_OK(Advance());
        return e;
      }
      case Tk::kIdent: {
        auto e = New(ExprKind::kName);
        e->name = cur_.text;
        TML_RETURN_NOT_OK(Advance());
        return e;
      }
      case Tk::kLParen: {
        TML_RETURN_NOT_OK(Advance());
        TML_ASSIGN_OR_RETURN(ExprPtr e, ParseBlock());
        TML_RETURN_NOT_OK(Expect(Tk::kRParen, "')'"));
        return e;
      }
      case Tk::kKeyword: {
        const std::string& kw = cur_.text;
        if (kw == "true" || kw == "false") {
          auto e = New(ExprKind::kBoolLit);
          e->bool_val = (kw == "true");
          TML_RETURN_NOT_OK(Advance());
          return e;
        }
        if (kw == "nil") {
          TML_RETURN_NOT_OK(Advance());
          return New(ExprKind::kNilLit);
        }
        if (kw == "array" || kw == "newarray" || kw == "newbytes") {
          auto e = New(ExprKind::kCall);
          e->name = "__" + kw;
          TML_RETURN_NOT_OK(Advance());
          TML_RETURN_NOT_OK(Expect(Tk::kLParen, "'('"));
          while (cur_.kind != Tk::kRParen) {
            TML_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
            e->elems.push_back(std::move(arg));
            if (cur_.kind == Tk::kComma) TML_RETURN_NOT_OK(Advance());
          }
          TML_RETURN_NOT_OK(Advance());
          return e;
        }
        // `if`/`while`/... appearing in operand position: allow the full
        // expression forms here too.
        if (kw == "let" || kw == "var" || kw == "if" || kw == "while" ||
            kw == "for" || kw == "begin" || kw == "try" || kw == "throw") {
          return ParseExpr();
        }
        return Err("unexpected keyword '" + kw + "'");
      }
      default:
        return Err("expected an expression");
    }
  }

  // ---- token plumbing ---------------------------------------------------

  Status Advance() {
    TML_ASSIGN_OR_RETURN(cur_, lexer_.Next());
    return Status::OK();
  }

  Status Expect(Tk kind, const char* what) {
    if (cur_.kind != kind) return Err(std::string("expected ") + what);
    return Advance();
  }

  Status ExpectKeyword(const char* kw) {
    if (cur_.kind != Tk::kKeyword || cur_.text != kw) {
      return Err(std::string("expected '") + kw + "', found '" + cur_.text +
                 "'");
    }
    return Advance();
  }

  Result<std::string> ExpectIdent() {
    if (cur_.kind != Tk::kIdent) return Err("expected an identifier");
    std::string s = cur_.text;
    TML_RETURN_NOT_OK(Advance());
    return s;
  }

  ExprPtr New(ExprKind kind) {
    auto e = std::make_unique<Expr>();
    e->kind = kind;
    e->line = cur_.line;
    return e;
  }

  Status Err(const std::string& msg) const {
    return Status::Invalid("TL parse error at line " +
                           std::to_string(cur_.line) + ": " + msg);
  }

  Lexer lexer_;
  Token cur_;
};

}  // namespace

Result<Unit> ParseUnit(std::string_view source) {
  Parser p(source);
  return p.Parse();
}

}  // namespace tml::fe
