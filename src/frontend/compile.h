// TL -> TML compilation (CPS conversion).
//
// Every TL function becomes a TML proc abstraction λ(p1..pn ce cc)app.
// Exceptions use pure ce-passing (§2.3): `try e catch x -> h` binds a new
// exception continuation for e's extent; `throw v` applies the current one.
// Mutable locals (anything assigned) are boxed in one-slot arrays so the
// conversion stays a straightforward source-to-CPS mapping; loops compile
// to the Y fixpoint exactly as in the paper's for-loop example.
//
// Binding modes (the E1 experiment's independent variable):
//
//   kDirect  — operators compile to TML primitives; a local static
//              optimizer can fold and simplify them.
//   kLibrary — operators compile to calls through *free variables*
//              (int_add, arr_get, math_sqrt, ...), later bound to library
//              closures in the persistent store.  This reproduces the
//              Tycoon situation of §6: "even operations on integers and
//              arrays are factored out into dynamically bound libraries and
//              therefore not amenable to local optimization."
//
// Unresolved names (other unit functions, library entries) are reported as
// free variables in first-occurrence order; the runtime linker binds them
// to OIDs — the R-value bindings of §4.1.

#ifndef TML_FRONTEND_COMPILE_H_
#define TML_FRONTEND_COMPILE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/module.h"
#include "core/node.h"
#include "core/primitive_registry.h"
#include "frontend/ast.h"
#include "support/status.h"

namespace tml::fe {

enum class BindingMode { kDirect, kLibrary };

struct CompileOptions {
  BindingMode binding = BindingMode::kDirect;
};

struct CompiledFunction {
  std::string name;
  const ir::Abstraction* abs = nullptr;
  /// Free identifiers in first-occurrence order, parallel to free_vars.
  std::vector<std::string> free_names;
  std::vector<ir::Variable*> free_vars;
};

struct CompiledUnit {
  std::unique_ptr<ir::Module> module;
  std::vector<CompiledFunction> functions;
};

/// Names of the standard-library entries the kLibrary mode emits, paired
/// with the TML body each one wraps (used to build the stdlib module).
struct LibraryEntry {
  const char* name;  // e.g. "int_add"
  const char* tml;   // proc text parsable by ir::ParseValueText
};
const std::vector<LibraryEntry>& StdlibEntries();

/// Compile TL source to TML.
Result<CompiledUnit> Compile(std::string_view source,
                             const ir::PrimitiveRegistry& prims,
                             const CompileOptions& opts = {});

}  // namespace tml::fe

#endif  // TML_FRONTEND_COMPILE_H_
