// TL-subset lexer and parser (grammar in ast.h).

#ifndef TML_FRONTEND_PARSER_H_
#define TML_FRONTEND_PARSER_H_

#include <string_view>

#include "frontend/ast.h"
#include "support/status.h"

namespace tml::fe {

/// Parse a compilation unit (a sequence of `fun` definitions).
Result<Unit> ParseUnit(std::string_view source);

}  // namespace tml::fe

#endif  // TML_FRONTEND_PARSER_H_
