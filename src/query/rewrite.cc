#include "query/rewrite.h"

#include <vector>

#include "core/analysis.h"
#include "core/primitive.h"
#include "prims/standard.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace tml::query {

using ir::Abstraction;
using ir::Application;
using ir::Cast;
using ir::DynCast;
using ir::Isa;
using ir::Module;
using ir::PrimOp;
using ir::Variable;

std::string QueryRewriteStats::ToString() const {
  return "merge-select=" + std::to_string(merge_select) +
         " merge-project=" + std::to_string(merge_project) +
         " select-true=" + std::to_string(select_true) +
         " select-false=" + std::to_string(select_false) +
         " exists-const=" + std::to_string(exists_const) +
         " trivial-exists=" + std::to_string(trivial_exists);
}

namespace {

const ir::Primitive* PrimFor(PrimOp op) {
  return prims::StandardRegistry().LookupOp(op);
}

bool IsPrimCall(const Application* app, PrimOp op) {
  const ir::PrimRef* pr = DynCast<ir::PrimRef>(app->callee());
  return pr != nullptr && pr->prim().op() == op;
}

/// Is `abs` a constant predicate proc(x ce cc)(cc <bool>)?
bool IsConstPredicate(const ir::Value* v, bool* value) {
  const Abstraction* abs = DynCast<Abstraction>(v);
  if (abs == nullptr || abs->num_params() < 2) return false;
  const Application* body = abs->body();
  const Variable* cc = abs->param(abs->num_params() - 1);
  if (body->callee() != cc || body->num_args() != 1) return false;
  const ir::Literal* lit = DynCast<ir::Literal>(body->arg(0));
  if (lit == nullptr || lit->lit_kind() != ir::LitKind::kBool) return false;
  *value = lit->bool_value();
  return true;
}

class QueryRewriter {
 public:
  QueryRewriter(Module* m, const QueryRewriteOptions& opts,
                QueryRewriteStats* stats)
      : m_(m), opts_(opts), stats_(stats) {}

  const Application* Fixpoint(const Application* app) {
    for (int i = 0; i < opts_.max_sweeps; ++i) {
      changed_ = false;
      app = RewriteApp(app);
      if (!changed_) break;
    }
    return app;
  }

 private:
  const ir::Value* RewriteValue(const ir::Value* v) {
    const Abstraction* abs = DynCast<Abstraction>(v);
    if (abs == nullptr) return v;
    const Application* body = RewriteApp(abs->body());
    if (body == abs->body()) return v;
    return m_->Abs(abs->params(), body);
  }

  const Application* RewriteApp(const Application* app) {
    bool rebuilt = false;
    std::vector<const ir::Value*> elems;
    elems.reserve(app->num_args() + 1);
    const ir::Value* callee = RewriteValue(app->callee());
    rebuilt |= callee != app->callee();
    elems.push_back(callee);
    for (const ir::Value* a : app->args()) {
      const ir::Value* na = RewriteValue(a);
      rebuilt |= na != a;
      elems.push_back(na);
    }
    if (rebuilt) app = m_->AppWith(*app, std::move(elems));

    if (IsPrimCall(app, PrimOp::kSelect) && app->num_args() == 4) {
      if (const Application* r = TryConstSelect(app)) return r;
      if (const Application* r = TryMergeSelect(app)) return r;
    }
    if (IsPrimCall(app, PrimOp::kProject) && app->num_args() == 4) {
      if (const Application* r = TryMergeProject(app)) return r;
    }
    if (IsPrimCall(app, PrimOp::kExists) && app->num_args() == 4) {
      if (const Application* r = TryConstExists(app)) return r;
      if (const Application* r = TryTrivialExists(app)) return r;
    }
    return app;
  }

  // σtrue(R) => (cc R);  σfalse(R) => (vector cc)  [empty relation]
  const Application* TryConstSelect(const Application* app) {
    if (!opts_.const_select) return nullptr;
    bool value;
    if (!IsConstPredicate(app->arg(0), &value)) return nullptr;
    changed_ = true;
    if (value) {
      ++stats_->select_true;
      return m_->App(app->arg(3), {app->arg(1)});
    }
    ++stats_->select_false;
    return m_->App(m_->Prim(PrimFor(PrimOp::kVector)), {app->arg(3)});
  }

  // (select q R ce (cont (t) (select p t ce2 cc2))), |..|_t = 1
  //   => (select (λx. q(x) ∧ p(x)) R ce2' cc2)   [merge-select]
  const Application* TryMergeSelect(const Application* app) {
    if (!opts_.merge_select) return nullptr;
    const Abstraction* k = DynCast<Abstraction>(app->arg(3));
    if (k == nullptr || k->num_params() != 1 || !k->is_cont()) {
      return nullptr;
    }
    const Variable* t = k->param(0);
    const Application* inner = k->body();
    if (!IsPrimCall(inner, PrimOp::kSelect) || inner->num_args() != 4) {
      return nullptr;
    }
    if (inner->arg(1) != t) return nullptr;
    if (ir::CountOccurrences(inner, t) != 1) return nullptr;
    // Soundness: both selections must report exceptions to the same
    // continuation (the usual passed-through ce, as in the paper's rule).
    if (inner->arg(2) != app->arg(2)) return nullptr;
    const ir::Value* q = app->arg(0);
    const ir::Value* p = inner->arg(0);
    // Fused predicate: proc(x fce fcc)
    //   (q x fce (cont (b) (beq b true (cont()(p x fce fcc))
    //                                  (cont()(fcc false)))))
    Variable* x = m_->NewValueVar("x");
    Variable* fce = m_->NewContVar("fce");
    Variable* fcc = m_->NewContVar("fcc");
    Variable* b = m_->NewValueVar("b");
    const Application* p_call = m_->App(p, {x, fce, fcc});
    const Application* false_app = m_->App(fcc, {m_->BoolLit(false)});
    const Application* branch =
        m_->App(m_->Prim(PrimFor(PrimOp::kEqB)),
                {b, m_->BoolLit(true), m_->Abs({}, p_call),
                 m_->Abs({}, false_app)});
    const Application* q_call = m_->App(q, {x, fce, m_->Abs({b}, branch)});
    const Abstraction* fused = m_->Abs({x, fce, fcc}, q_call);
    changed_ = true;
    ++stats_->merge_select;
    return m_->App(app->callee(),
                   {fused, app->arg(1), inner->arg(2), inner->arg(3)});
  }

  // πf(πg(R)) => π(f∘g)(R)
  const Application* TryMergeProject(const Application* app) {
    if (!opts_.merge_project) return nullptr;
    const Abstraction* k = DynCast<Abstraction>(app->arg(3));
    if (k == nullptr || k->num_params() != 1 || !k->is_cont()) {
      return nullptr;
    }
    const Variable* t = k->param(0);
    const Application* inner = k->body();
    if (!IsPrimCall(inner, PrimOp::kProject) || inner->num_args() != 4) {
      return nullptr;
    }
    if (inner->arg(1) != t || ir::CountOccurrences(inner, t) != 1) {
      return nullptr;
    }
    if (inner->arg(2) != app->arg(2)) return nullptr;
    const ir::Value* g = app->arg(0);
    const ir::Value* f = inner->arg(0);
    Variable* x = m_->NewValueVar("x");
    Variable* fce = m_->NewContVar("fce");
    Variable* fcc = m_->NewContVar("fcc");
    Variable* mid = m_->NewValueVar("t");
    const Application* f_call = m_->App(f, {mid, fce, fcc});
    const Application* g_call =
        m_->App(g, {x, fce, m_->Abs({mid}, f_call)});
    const Abstraction* composed = m_->Abs({x, fce, fcc}, g_call);
    changed_ = true;
    ++stats_->merge_project;
    return m_->App(app->callee(),
                   {composed, app->arg(1), inner->arg(2), inner->arg(3)});
  }

  // ∃x∈R:true => not(empty R);  ∃x∈R:false => false
  const Application* TryConstExists(const Application* app) {
    if (!opts_.const_exists) return nullptr;
    bool value;
    if (!IsConstPredicate(app->arg(0), &value)) return nullptr;
    changed_ = true;
    ++stats_->exists_const;
    if (!value) {
      return m_->App(app->arg(3), {m_->BoolLit(false)});
    }
    Variable* e = m_->NewValueVar("e");
    const Application* not_app =
        m_->App(m_->Prim(PrimFor(PrimOp::kNot)), {e, app->arg(3)});
    return m_->App(m_->Prim(PrimFor(PrimOp::kEmpty)),
                   {app->arg(1), m_->Abs({e}, not_app)});
  }

  // x ∉ fv(p): (exists (λ(x ce cc) p) R ce cc)
  //   => (pred nil ce (cont (pv)
  //        (empty R (cont (em) (not em (cont (ne) (and pv ne cc)))))))
  const Application* TryTrivialExists(const Application* app) {
    if (!opts_.trivial_exists) return nullptr;
    const Abstraction* pred = DynCast<Abstraction>(app->arg(0));
    if (pred == nullptr || pred->num_params() != 3) return nullptr;
    const Variable* x = pred->param(0);
    if (ir::CountOccurrences(pred->body(), x) != 0) return nullptr;
    bool ignored;
    if (IsConstPredicate(pred, &ignored)) return nullptr;  // simpler rule
    const ir::Value* rel = app->arg(1);
    const ir::Value* ce = app->arg(2);
    const ir::Value* cc = app->arg(3);
    Variable* pv = m_->NewValueVar("pv");
    Variable* em = m_->NewValueVar("em");
    Variable* ne = m_->NewValueVar("ne");
    const Application* and_app =
        m_->App(m_->Prim(PrimFor(PrimOp::kAnd)), {pv, ne, cc});
    const Application* not_app =
        m_->App(m_->Prim(PrimFor(PrimOp::kNot)), {em, m_->Abs({ne}, and_app)});
    const Application* empty_app = m_->App(
        m_->Prim(PrimFor(PrimOp::kEmpty)), {rel, m_->Abs({em}, not_app)});
    const Application* pred_call =
        m_->App(pred, {m_->NilLit(), ce, m_->Abs({pv}, empty_app)});
    changed_ = true;
    ++stats_->trivial_exists;
    return pred_call;
  }

  Module* m_;
  const QueryRewriteOptions& opts_;
  QueryRewriteStats* stats_;
  bool changed_ = false;
};

}  // namespace

namespace {

/// Flush one query-rewrite run's rule firings to the registry as deltas
/// (same scheme as the §3 rewriter: labeled counters, resolved once).
void PublishQueryStats(const QueryRewriteStats& after,
                       const QueryRewriteStats& before) {
  using telemetry::Counter;
  using telemetry::Registry;
  static Counter* merge_select = Registry::Global().GetCounter(
      "tml.query.rewrite_fired", {{"rule", "merge-select"}});
  static Counter* merge_project = Registry::Global().GetCounter(
      "tml.query.rewrite_fired", {{"rule", "merge-project"}});
  static Counter* select_true = Registry::Global().GetCounter(
      "tml.query.rewrite_fired", {{"rule", "select-true"}});
  static Counter* select_false = Registry::Global().GetCounter(
      "tml.query.rewrite_fired", {{"rule", "select-false"}});
  static Counter* exists_const = Registry::Global().GetCounter(
      "tml.query.rewrite_fired", {{"rule", "exists-const"}});
  static Counter* trivial_exists = Registry::Global().GetCounter(
      "tml.query.rewrite_fired", {{"rule", "trivial-exists"}});
  if (after.merge_select != before.merge_select) {
    merge_select->Add(after.merge_select - before.merge_select);
  }
  if (after.merge_project != before.merge_project) {
    merge_project->Add(after.merge_project - before.merge_project);
  }
  if (after.select_true != before.select_true) {
    select_true->Add(after.select_true - before.select_true);
  }
  if (after.select_false != before.select_false) {
    select_false->Add(after.select_false - before.select_false);
  }
  if (after.exists_const != before.exists_const) {
    exists_const->Add(after.exists_const - before.exists_const);
  }
  if (after.trivial_exists != before.trivial_exists) {
    trivial_exists->Add(after.trivial_exists - before.trivial_exists);
  }
}

}  // namespace

const Application* RewriteQueries(Module* m, const Application* app,
                                  const QueryRewriteOptions& opts,
                                  QueryRewriteStats* stats) {
  TML_TELEMETRY_SPAN("query", "query.rewrite");
  QueryRewriteStats local;
  QueryRewriteStats* used = stats != nullptr ? stats : &local;
  const QueryRewriteStats before = *used;
  QueryRewriter r(m, opts, used);
  const Application* out = r.Fixpoint(app);
  PublishQueryStats(*used, before);
  return out;
}

const Abstraction* RewriteQueries(Module* m, const Abstraction* prog,
                                  const QueryRewriteOptions& opts,
                                  QueryRewriteStats* stats) {
  const Application* body = RewriteQueries(m, prog->body(), opts, stats);
  if (body == prog->body()) return prog;
  return m->Abs(prog->params(), body);
}

const Abstraction* OptimizeWithQueries(Module* m, const Abstraction* prog,
                                       const ir::OptimizerOptions& opt_opts,
                                       const QueryRewriteOptions& q_opts,
                                       ir::OptimizerStats* opt_stats,
                                       QueryRewriteStats* q_stats) {
  // Fig. 4: the two optimizers invoke each other until neither makes
  // progress.
  for (int round = 0; round < 8; ++round) {
    const Abstraction* after_prog = ir::Optimize(m, prog, opt_opts, opt_stats);
    const Abstraction* after_query =
        RewriteQueries(m, after_prog, q_opts, q_stats);
    bool stable = (after_prog == prog) && (after_query == after_prog);
    prog = after_query;
    if (stable) break;
  }
  return prog;
}

}  // namespace tml::query
