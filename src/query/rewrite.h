// Algebraic query rewriting on TML terms (paper §4.2).
//
// Queries are ordinary TML applications of the query primitives, so the
// query optimizer is just another TML rewriter; scoping-sensitive rules
// (trivial-exists) use the same |E|_v machinery as §3.  Rules:
//
//   merge-select     σp(σq(R)) => σ(q∧p)(R)          [paper's example]
//   merge-project    πf(πg(R)) => π(f∘g)(R)
//   select-true      σtrue(R)  => R
//   select-false     σfalse(R) => ∅
//   exists-const     ∃x∈R:true => R ≠ ∅ ;  ∃x∈R:false => false
//   trivial-exists   x ∉ fv(p): (∃x∈R: p) => p ∧ R ≠ ∅   [paper's example]
//
// OptimizeWithQueries interleaves this pass with the general TML optimizer
// (Fig. 4): program optimization exposes query patterns (e.g. by inlining a
// view that builds the inner select) and query rewriting exposes new
// program redexes (the fused predicate is a β-redex chain).

#ifndef TML_QUERY_REWRITE_H_
#define TML_QUERY_REWRITE_H_

#include <cstdint>
#include <string>

#include "core/module.h"
#include "core/node.h"
#include "core/optimizer.h"

namespace tml::query {

struct QueryRewriteOptions {
  bool merge_select = true;
  bool merge_project = true;
  bool const_select = true;
  bool const_exists = true;
  bool trivial_exists = true;
  int max_sweeps = 16;
};

struct QueryRewriteStats {
  uint64_t merge_select = 0;
  uint64_t merge_project = 0;
  uint64_t select_true = 0;
  uint64_t select_false = 0;
  uint64_t exists_const = 0;
  uint64_t trivial_exists = 0;
  uint64_t TotalApplications() const {
    return merge_select + merge_project + select_true + select_false +
           exists_const + trivial_exists;
  }
  std::string ToString() const;
};

/// One query-rewriting fixpoint over a term.
const ir::Application* RewriteQueries(ir::Module* m,
                                      const ir::Application* app,
                                      const QueryRewriteOptions& opts = {},
                                      QueryRewriteStats* stats = nullptr);
const ir::Abstraction* RewriteQueries(ir::Module* m,
                                      const ir::Abstraction* prog,
                                      const QueryRewriteOptions& opts = {},
                                      QueryRewriteStats* stats = nullptr);

/// Integrated program + query optimization (Fig. 4): alternate the general
/// TML optimizer and the query rewriter until neither changes the term.
const ir::Abstraction* OptimizeWithQueries(
    ir::Module* m, const ir::Abstraction* prog,
    const ir::OptimizerOptions& opt_opts = {},
    const QueryRewriteOptions& q_opts = {},
    ir::OptimizerStats* opt_stats = nullptr,
    QueryRewriteStats* q_stats = nullptr);

}  // namespace tml::query

#endif  // TML_QUERY_REWRITE_H_
