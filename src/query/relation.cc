#include "query/relation.h"

#include <cstring>

#include "support/varint.h"

namespace tml::query {

namespace {

enum : uint8_t {
  kDNil = 0,
  kDBool = 1,
  kDInt = 2,
  kDReal = 3,
  kDString = 4,
};

void PutDatum(std::string* out, const Datum& d) {
  if (std::holds_alternative<std::monostate>(d)) {
    out->push_back(kDNil);
  } else if (const bool* b = std::get_if<bool>(&d)) {
    out->push_back(kDBool);
    out->push_back(*b ? 1 : 0);
  } else if (const int64_t* i = std::get_if<int64_t>(&d)) {
    out->push_back(kDInt);
    PutVarintSigned(out, *i);
  } else if (const double* r = std::get_if<double>(&d)) {
    out->push_back(kDReal);
    char buf[8];
    std::memcpy(buf, r, 8);
    out->append(buf, 8);
  } else {
    const std::string& s = std::get<std::string>(d);
    out->push_back(kDString);
    PutVarint(out, s.size());
    out->append(s);
  }
}

Result<Datum> ReadDatum(VarintReader* r) {
  TML_ASSIGN_OR_RETURN(std::string tag, r->ReadBytes(1));
  switch (static_cast<uint8_t>(tag[0])) {
    case kDNil:
      return Datum{};
    case kDBool: {
      TML_ASSIGN_OR_RETURN(std::string b, r->ReadBytes(1));
      return Datum{b[0] != 0};
    }
    case kDInt: {
      TML_ASSIGN_OR_RETURN(int64_t v, r->ReadVarintSigned());
      return Datum{v};
    }
    case kDReal: {
      TML_ASSIGN_OR_RETURN(std::string b, r->ReadBytes(8));
      double d;
      std::memcpy(&d, b.data(), 8);
      return Datum{d};
    }
    case kDString: {
      TML_ASSIGN_OR_RETURN(uint64_t len, r->ReadVarint());
      TML_ASSIGN_OR_RETURN(std::string s, r->ReadBytes(len));
      return Datum{std::move(s)};
    }
    default:
      return Status::Corruption("relation: bad datum tag");
  }
}

}  // namespace

std::string EncodeRelation(const Relation& rel) {
  std::string out = "REL1";
  PutVarint(&out, rel.columns.size());
  for (const std::string& c : rel.columns) {
    PutVarint(&out, c.size());
    out.append(c);
  }
  PutVarint(&out, rel.tuples.size());
  for (const Tuple& t : rel.tuples) {
    PutVarint(&out, t.size());
    for (const Datum& d : t) PutDatum(&out, d);
  }
  return out;
}

Result<Relation> DecodeRelation(std::string_view bytes) {
  VarintReader r(bytes.data(), bytes.size());
  TML_ASSIGN_OR_RETURN(std::string magic, r.ReadBytes(4));
  if (magic != "REL1") return Status::Corruption("relation: bad magic");
  Relation rel;
  TML_ASSIGN_OR_RETURN(uint64_t ncols, r.ReadVarint());
  for (uint64_t i = 0; i < ncols; ++i) {
    TML_ASSIGN_OR_RETURN(uint64_t len, r.ReadVarint());
    TML_ASSIGN_OR_RETURN(std::string c, r.ReadBytes(len));
    rel.columns.push_back(std::move(c));
  }
  TML_ASSIGN_OR_RETURN(uint64_t nrows, r.ReadVarint());
  rel.tuples.reserve(nrows);
  for (uint64_t i = 0; i < nrows; ++i) {
    TML_ASSIGN_OR_RETURN(uint64_t arity, r.ReadVarint());
    Tuple t;
    t.reserve(arity);
    for (uint64_t j = 0; j < arity; ++j) {
      TML_ASSIGN_OR_RETURN(Datum d, ReadDatum(&r));
      t.push_back(std::move(d));
    }
    rel.tuples.push_back(std::move(t));
  }
  if (!r.AtEnd()) return Status::Corruption("relation: trailing bytes");
  return rel;
}

vm::Value RelationValue(const Relation& rel, vm::Heap* heap) {
  vm::ArrayObj* out = heap->New<vm::ArrayObj>();
  out->immutable = true;
  out->slots.reserve(rel.tuples.size());
  for (const Tuple& t : rel.tuples) {
    vm::ArrayObj* row = heap->New<vm::ArrayObj>();
    row->immutable = true;
    row->slots.reserve(t.size());
    for (const Datum& d : t) {
      if (std::holds_alternative<std::monostate>(d)) {
        row->slots.push_back(vm::Value::Nil());
      } else if (const bool* b = std::get_if<bool>(&d)) {
        row->slots.push_back(vm::Value::Bool(*b));
      } else if (const int64_t* i = std::get_if<int64_t>(&d)) {
        row->slots.push_back(vm::Value::Int(*i));
      } else if (const double* r = std::get_if<double>(&d)) {
        row->slots.push_back(vm::Value::Real(*r));
      } else {
        vm::StringObj* s = heap->New<vm::StringObj>();
        s->str = std::get<std::string>(d);
        row->slots.push_back(vm::Value::ObjV(s));
      }
    }
    out->slots.push_back(vm::Value::ObjV(row));
  }
  return vm::Value::ObjV(out);
}

Result<vm::Value> RelationToHeap(std::string_view bytes, vm::Heap* heap) {
  TML_ASSIGN_OR_RETURN(Relation rel, DecodeRelation(bytes));
  return RelationValue(rel, heap);
}

Result<Relation> RelationFromHeap(const vm::Value& v) {
  const vm::ArrayObj* arr = vm::As<vm::ArrayObj>(v);
  if (arr == nullptr) {
    return Status::Invalid("value is not a heap relation");
  }
  Relation rel;
  for (const vm::Value& row_v : arr->slots) {
    const vm::ArrayObj* row = vm::As<vm::ArrayObj>(row_v);
    if (row == nullptr) return Status::Invalid("tuple is not an array");
    Tuple t;
    for (const vm::Value& f : row->slots) {
      switch (f.tag) {
        case vm::Tag::kNil:
          t.emplace_back();
          break;
        case vm::Tag::kBool:
          t.emplace_back(f.b);
          break;
        case vm::Tag::kInt:
          t.emplace_back(f.i);
          break;
        case vm::Tag::kReal:
          t.emplace_back(f.r);
          break;
        case vm::Tag::kObj:
          if (f.obj->kind == vm::ObjKind::kString) {
            t.emplace_back(static_cast<vm::StringObj*>(f.obj)->str);
            break;
          }
          return Status::Invalid("unsupported field type in tuple");
        default:
          return Status::Invalid("unsupported field type in tuple");
      }
    }
    rel.tuples.push_back(std::move(t));
  }
  return rel;
}

}  // namespace tml::query
