// Relations over the persistent store (§4.2 substrate).
//
// A relation is a bag of tuples of scalar fields.  On disk it is a kRelation
// object (schema + rows, varint-coded); at run time it is swizzled into the
// TVM representation the query primitives operate on: an immutable array of
// immutable tuple-arrays, so TML predicates access fields with the ordinary
// `[]` primitive — programs and queries share one data model.

#ifndef TML_QUERY_RELATION_H_
#define TML_QUERY_RELATION_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "support/status.h"
#include "vm/value.h"

namespace tml::query {

/// A scalar field value.
using Datum = std::variant<std::monostate, bool, int64_t, double, std::string>;

using Tuple = std::vector<Datum>;

struct Relation {
  std::vector<std::string> columns;
  std::vector<Tuple> tuples;

  size_t arity() const { return columns.size(); }
  size_t cardinality() const { return tuples.size(); }
};

/// Serialize for the object store (ObjType::kRelation payload).
std::string EncodeRelation(const Relation& rel);
Result<Relation> DecodeRelation(std::string_view bytes);

/// Swizzle a serialized relation into the VM heap representation.
Result<vm::Value> RelationToHeap(std::string_view bytes, vm::Heap* heap);

/// Build the heap representation directly (benchmarks, tests).
vm::Value RelationValue(const Relation& rel, vm::Heap* heap);

/// Read back a heap relation (array of tuple-arrays) into a Relation.
Result<Relation> RelationFromHeap(const vm::Value& v);

}  // namespace tml::query

#endif  // TML_QUERY_RELATION_H_
