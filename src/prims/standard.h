// The standard primitive set (paper Fig. 2) plus the extensions the paper's
// mechanism anticipates (§2.3): real arithmetic for the numeric Stanford
// programs and the §4.2 query primitives.
//
// Every primitive carries its meta-evaluation (fold) function, cost
// estimate and optimizer attributes; see core/primitive.h.

#ifndef TML_PRIMS_STANDARD_H_
#define TML_PRIMS_STANDARD_H_

#include "core/primitive_registry.h"
#include "support/status.h"

namespace tml::prims {

/// Install the full standard set into `reg`.
tml::Status RegisterStandard(ir::PrimitiveRegistry* reg);

/// Process-wide registry with the standard set pre-installed.
const ir::PrimitiveRegistry& StandardRegistry();

}  // namespace tml::prims

#endif  // TML_PRIMS_STANDARD_H_
