#include "prims/standard.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>

#include "core/module.h"
#include "core/node.h"
#include "core/primitive.h"

namespace tml::prims {

using ir::Application;
using ir::Cast;
using ir::DynCast;
using ir::EffectClass;
using ir::Isa;
using ir::LitKind;
using ir::Literal;
using ir::Module;
using ir::PrimOp;
using ir::Value;

namespace {

/// Shorthand: (cont result) — the normal continuation receives the result.
const Application* Continue(Module* m, const Value* cont, const Value* v) {
  return m->App(cont, {v});
}
const Application* Jump(Module* m, const Value* cont) {
  return m->App(cont, {});
}

const Literal* AsInt(const Value* v) {
  const Literal* lit = DynCast<Literal>(v);
  return lit != nullptr && lit->lit_kind() == LitKind::kInt ? lit : nullptr;
}
const Literal* AsReal(const Value* v) {
  const Literal* lit = DynCast<Literal>(v);
  return lit != nullptr && lit->lit_kind() == LitKind::kReal ? lit : nullptr;
}
const Literal* AsBool(const Value* v) {
  const Literal* lit = DynCast<Literal>(v);
  return lit != nullptr && lit->lit_kind() == LitKind::kBool ? lit : nullptr;
}

bool IsIntConst(const Value* v, int64_t c) {
  const Literal* lit = AsInt(v);
  return lit != nullptr && lit->int_value() == c;
}

// ---- Per-op meta-evaluation (the paper's `eval` function, §3) -----------

const Application* FoldIntArith(PrimOp op, Module* m, const Application& c) {
  if (c.num_args() != 4) return nullptr;
  const Value* a = c.arg(0);
  const Value* b = c.arg(1);
  const Value* cc = c.arg(3);
  const Literal* la = AsInt(a);
  const Literal* lb = AsInt(b);
  if (la != nullptr && lb != nullptr) {
    int64_t x = la->int_value(), y = lb->int_value(), r = 0;
    switch (op) {
      case PrimOp::kAddI:
        if (__builtin_add_overflow(x, y, &r)) return nullptr;
        break;
      case PrimOp::kSubI:
        if (__builtin_sub_overflow(x, y, &r)) return nullptr;
        break;
      case PrimOp::kMulI:
        if (__builtin_mul_overflow(x, y, &r)) return nullptr;
        break;
      case PrimOp::kDivI:
        if (y == 0 || (x == std::numeric_limits<int64_t>::min() && y == -1)) {
          return nullptr;  // would raise at runtime; keep the ce path
        }
        r = x / y;
        break;
      case PrimOp::kModI:
        if (y == 0 || (x == std::numeric_limits<int64_t>::min() && y == -1)) {
          return nullptr;
        }
        r = x % y;
        break;
      default:
        return nullptr;
    }
    return Continue(m, cc, m->IntLit(r));
  }
  // Algebraic identities that can neither overflow nor raise.
  switch (op) {
    case PrimOp::kAddI:
      if (IsIntConst(b, 0)) return Continue(m, cc, a);
      if (IsIntConst(a, 0)) return Continue(m, cc, b);
      break;
    case PrimOp::kSubI:
      if (IsIntConst(b, 0)) return Continue(m, cc, a);
      break;
    case PrimOp::kMulI:
      if (IsIntConst(b, 1)) return Continue(m, cc, a);
      if (IsIntConst(a, 1)) return Continue(m, cc, b);
      if (IsIntConst(b, 0) || IsIntConst(a, 0)) {
        return Continue(m, cc, m->IntLit(0));
      }
      break;
    case PrimOp::kDivI:
      if (IsIntConst(b, 1)) return Continue(m, cc, a);
      break;
    case PrimOp::kModI:
      if (IsIntConst(b, 1)) return Continue(m, cc, m->IntLit(0));
      break;
    default:
      break;
  }
  return nullptr;
}

const Application* FoldIntCmp(PrimOp op, Module* m, const Application& c) {
  if (c.num_args() != 4) return nullptr;
  const Value* a = c.arg(0);
  const Value* b = c.arg(1);
  const Value* c_then = c.arg(2);
  const Value* c_else = c.arg(3);
  const Literal* la = AsInt(a);
  const Literal* lb = AsInt(b);
  if (la != nullptr && lb != nullptr) {
    int64_t x = la->int_value(), y = lb->int_value();
    bool taken = false;
    switch (op) {
      case PrimOp::kLtI: taken = x < y; break;
      case PrimOp::kGtI: taken = x > y; break;
      case PrimOp::kLeI: taken = x <= y; break;
      case PrimOp::kGeI: taken = x >= y; break;
      default: return nullptr;
    }
    return Jump(m, taken ? c_then : c_else);
  }
  if (a == b && Isa<ir::Variable>(a)) {
    // (p x x): reflexive comparisons decide statically.
    switch (op) {
      case PrimOp::kLeI:
      case PrimOp::kGeI:
        return Jump(m, c_then);
      case PrimOp::kLtI:
      case PrimOp::kGtI:
        return Jump(m, c_else);
      default:
        break;
    }
  }
  return nullptr;
}

const Application* FoldBitOp(PrimOp op, Module* m, const Application& c) {
  if (c.num_args() != 3) return nullptr;
  const Literal* la = AsInt(c.arg(0));
  const Literal* lb = AsInt(c.arg(1));
  if (la == nullptr || lb == nullptr) return nullptr;
  int64_t x = la->int_value(), y = lb->int_value(), r = 0;
  uint64_t ux = static_cast<uint64_t>(x);
  switch (op) {
    case PrimOp::kShl:
      if (y < 0 || y >= 64) return nullptr;
      r = static_cast<int64_t>(ux << y);
      break;
    case PrimOp::kShr:
      if (y < 0 || y >= 64) return nullptr;
      r = static_cast<int64_t>(ux >> y);
      break;
    case PrimOp::kBitAnd: r = x & y; break;
    case PrimOp::kBitOr: r = x | y; break;
    case PrimOp::kBitXor: r = x ^ y; break;
    default: return nullptr;
  }
  return Continue(m, c.arg(2), m->IntLit(r));
}

const Application* FoldRealArith(PrimOp op, Module* m, const Application& c) {
  if (c.num_args() != 4) return nullptr;
  const Literal* la = AsReal(c.arg(0));
  const Literal* lb = AsReal(c.arg(1));
  if (la == nullptr || lb == nullptr) return nullptr;
  double x = la->real_value(), y = lb->real_value(), r = 0;
  switch (op) {
    case PrimOp::kAddR: r = x + y; break;
    case PrimOp::kSubR: r = x - y; break;
    case PrimOp::kMulR: r = x * y; break;
    case PrimOp::kDivR:
      if (y == 0.0) return nullptr;
      r = x / y;
      break;
    default: return nullptr;
  }
  return Continue(m, c.arg(3), m->RealLit(r));
}

const Application* FoldRealCmp(PrimOp op, Module* m, const Application& c) {
  if (c.num_args() != 4) return nullptr;
  const Literal* la = AsReal(c.arg(0));
  const Literal* lb = AsReal(c.arg(1));
  if (la == nullptr || lb == nullptr) return nullptr;
  double x = la->real_value(), y = lb->real_value();
  bool taken = op == PrimOp::kLtR ? x < y : x <= y;
  return Jump(m, taken ? c.arg(2) : c.arg(3));
}

const Application* FoldBool(PrimOp op, Module* m, const Application& c) {
  switch (op) {
    case PrimOp::kAnd: {
      if (c.num_args() != 3) return nullptr;
      const Literal* la = AsBool(c.arg(0));
      const Literal* lb = AsBool(c.arg(1));
      const Value* cc = c.arg(2);
      if (la != nullptr) {
        return la->bool_value() ? Continue(m, cc, c.arg(1))
                                : Continue(m, cc, m->BoolLit(false));
      }
      if (lb != nullptr) {
        return lb->bool_value() ? Continue(m, cc, c.arg(0))
                                : Continue(m, cc, m->BoolLit(false));
      }
      return nullptr;
    }
    case PrimOp::kOr: {
      if (c.num_args() != 3) return nullptr;
      const Literal* la = AsBool(c.arg(0));
      const Literal* lb = AsBool(c.arg(1));
      const Value* cc = c.arg(2);
      if (la != nullptr) {
        return la->bool_value() ? Continue(m, cc, m->BoolLit(true))
                                : Continue(m, cc, c.arg(1));
      }
      if (lb != nullptr) {
        return lb->bool_value() ? Continue(m, cc, m->BoolLit(true))
                                : Continue(m, cc, c.arg(0));
      }
      return nullptr;
    }
    case PrimOp::kNot: {
      if (c.num_args() != 2) return nullptr;
      const Literal* la = AsBool(c.arg(0));
      if (la == nullptr) return nullptr;
      return Continue(m, c.arg(1), m->BoolLit(!la->bool_value()));
    }
    case PrimOp::kEqB: {
      if (c.num_args() != 4) return nullptr;
      const Literal* la = DynCast<Literal>(c.arg(0));
      const Literal* lb = DynCast<Literal>(c.arg(1));
      if (la == nullptr || lb == nullptr) return nullptr;
      return Jump(m, LiteralEquals(*la, *lb) ? c.arg(2) : c.arg(3));
    }
    default:
      return nullptr;
  }
}

const Application* FoldMisc(PrimOp op, Module* m, const Application& c) {
  switch (op) {
    case PrimOp::kChar2Int: {
      if (c.num_args() != 2) return nullptr;
      const Literal* l = DynCast<Literal>(c.arg(0));
      if (l == nullptr || l->lit_kind() != LitKind::kChar) return nullptr;
      return Continue(m, c.arg(1), m->IntLit(l->char_value()));
    }
    case PrimOp::kInt2Char: {
      if (c.num_args() != 2) return nullptr;
      const Literal* l = AsInt(c.arg(0));
      if (l == nullptr || l->int_value() < 0 || l->int_value() > 255) {
        return nullptr;
      }
      return Continue(m, c.arg(1),
                      m->CharLit(static_cast<uint8_t>(l->int_value())));
    }
    case PrimOp::kIntToReal: {
      if (c.num_args() != 2) return nullptr;
      const Literal* l = AsInt(c.arg(0));
      if (l == nullptr) return nullptr;
      return Continue(m, c.arg(1),
                      m->RealLit(static_cast<double>(l->int_value())));
    }
    case PrimOp::kTruncR: {
      if (c.num_args() != 2) return nullptr;
      const Literal* l = AsReal(c.arg(0));
      if (l == nullptr) return nullptr;
      double r = l->real_value();
      if (!(r > -9.0e18 && r < 9.0e18)) return nullptr;
      return Continue(m, c.arg(1), m->IntLit(static_cast<int64_t>(r)));
    }
    case PrimOp::kSqrt: {
      if (c.num_args() != 3) return nullptr;
      const Literal* l = AsReal(c.arg(0));
      if (l == nullptr || l->real_value() < 0) return nullptr;
      return Continue(m, c.arg(2), m->RealLit(std::sqrt(l->real_value())));
    }
    default:
      return nullptr;
  }
}

// ---- Primitive descriptor ------------------------------------------------

struct Spec {
  const char* name;
  PrimOp op;
  int nv;  // value args, -1 variadic
  int nc;  // cont args, -1 variadic
  EffectClass effect;
  bool commutative;
  int cost;
};

class StdPrimitive final : public ir::Primitive {
 public:
  explicit StdPrimitive(const Spec& spec) : spec_(spec) {}

  std::string_view name() const override { return spec_.name; }
  PrimOp op() const override { return spec_.op; }
  int num_value_args() const override { return spec_.nv; }
  int num_cont_args() const override { return spec_.nc; }
  EffectClass effect() const override { return spec_.effect; }
  bool commutative() const override { return spec_.commutative; }

  int CostEstimate(const Application& call) const override {
    if (spec_.op == PrimOp::kCase) {
      return 1 + static_cast<int>(call.num_args()) / 2;
    }
    return spec_.cost;
  }

  bool foldable() const override {
    return effect() == EffectClass::kPure;
  }

  const Application* Fold(Module* m, const Application& call) const override {
    switch (spec_.op) {
      case PrimOp::kAddI:
      case PrimOp::kSubI:
      case PrimOp::kMulI:
      case PrimOp::kDivI:
      case PrimOp::kModI:
        return FoldIntArith(spec_.op, m, call);
      case PrimOp::kLtI:
      case PrimOp::kGtI:
      case PrimOp::kLeI:
      case PrimOp::kGeI:
        return FoldIntCmp(spec_.op, m, call);
      case PrimOp::kShl:
      case PrimOp::kShr:
      case PrimOp::kBitAnd:
      case PrimOp::kBitOr:
      case PrimOp::kBitXor:
        return FoldBitOp(spec_.op, m, call);
      case PrimOp::kAddR:
      case PrimOp::kSubR:
      case PrimOp::kMulR:
      case PrimOp::kDivR:
        return FoldRealArith(spec_.op, m, call);
      case PrimOp::kLtR:
      case PrimOp::kLeR:
        return FoldRealCmp(spec_.op, m, call);
      case PrimOp::kAnd:
      case PrimOp::kOr:
      case PrimOp::kNot:
      case PrimOp::kEqB:
        return FoldBool(spec_.op, m, call);
      default:
        return FoldMisc(spec_.op, m, call);
    }
  }

 private:
  Spec spec_;
};

constexpr EffectClass kPure = EffectClass::kPure;
constexpr EffectClass kRead = EffectClass::kRead;
constexpr EffectClass kWrite = EffectClass::kWrite;
constexpr EffectClass kAlloc = EffectClass::kAlloc;
constexpr EffectClass kControl = EffectClass::kControl;

const Spec kSpecs[] = {
    // Fig. 2: integer arithmetic (normal + exception continuation).
    {"+", PrimOp::kAddI, 2, 2, kPure, true, 1},
    {"-", PrimOp::kSubI, 2, 2, kPure, false, 1},
    {"*", PrimOp::kMulI, 2, 2, kPure, true, 2},
    {"/", PrimOp::kDivI, 2, 2, kPure, false, 4},
    {"%", PrimOp::kModI, 2, 2, kPure, false, 4},
    // Fig. 2: integer comparison (two branch continuations).
    {"<", PrimOp::kLtI, 2, 2, kPure, false, 1},
    {">", PrimOp::kGtI, 2, 2, kPure, false, 1},
    {"<=", PrimOp::kLeI, 2, 2, kPure, false, 1},
    {">=", PrimOp::kGeI, 2, 2, kPure, false, 1},
    // Fig. 2: bit operations.
    {"<<", PrimOp::kShl, 2, 1, kPure, false, 1},
    {">>", PrimOp::kShr, 2, 1, kPure, false, 1},
    {"&", PrimOp::kBitAnd, 2, 1, kPure, true, 1},
    {"|", PrimOp::kBitOr, 2, 1, kPure, true, 1},
    {"^", PrimOp::kBitXor, 2, 1, kPure, true, 1},
    // Fig. 2: conversions.
    {"char2int", PrimOp::kChar2Int, 1, 1, kPure, false, 1},
    {"int2char", PrimOp::kInt2Char, 1, 1, kPure, false, 1},
    // Real arithmetic (§2.3 extension mechanism).
    {"+.", PrimOp::kAddR, 2, 2, kPure, true, 1},
    {"-.", PrimOp::kSubR, 2, 2, kPure, false, 1},
    {"*.", PrimOp::kMulR, 2, 2, kPure, true, 2},
    {"/.", PrimOp::kDivR, 2, 2, kPure, false, 4},
    {"<.", PrimOp::kLtR, 2, 2, kPure, false, 1},
    {"<=.", PrimOp::kLeR, 2, 2, kPure, false, 1},
    {"sqrt", PrimOp::kSqrt, 1, 2, kPure, false, 6},
    {"int2real", PrimOp::kIntToReal, 1, 1, kPure, false, 1},
    {"real2int", PrimOp::kTruncR, 1, 1, kPure, false, 1},
    // Booleans as values.
    {"and", PrimOp::kAnd, 2, 1, kPure, true, 1},
    {"or", PrimOp::kOr, 2, 1, kPure, true, 1},
    {"not", PrimOp::kNot, 1, 1, kPure, false, 1},
    {"beq", PrimOp::kEqB, 2, 2, kPure, true, 1},
    // Fig. 2: aggregates.
    {"array", PrimOp::kArray, -1, 1, kAlloc, false, 4},
    {"vector", PrimOp::kVector, -1, 1, kAlloc, false, 4},
    {"mkarray", PrimOp::kMkArray, 2, 2, kAlloc, false, 8},
    {"new", PrimOp::kNewByteArray, 2, 1, kAlloc, false, 4},
    {"[]", PrimOp::kALoad, 2, 2, kRead, false, 2},
    {"[]:=", PrimOp::kAStore, 3, 2, kWrite, false, 2},
    {"$[]", PrimOp::kBLoad, 2, 2, kRead, false, 2},
    {"$[]:=", PrimOp::kBStore, 3, 2, kWrite, false, 2},
    {"size", PrimOp::kSize, 1, 1, kRead, false, 1},
    {"move", PrimOp::kMove, 5, 1, kWrite, false, 8},
    {"$move", PrimOp::kBMove, 5, 1, kWrite, false, 8},
    // Fig. 2: control.
    {"==", PrimOp::kCase, -1, -1, kPure, false, 2},
    {"Y", PrimOp::kY, 1, 0, kPure, false, 1},
    {"ccall", PrimOp::kCCall, -1, 2, kControl, false, 16},
    {"pushHandler", PrimOp::kPushHandler, 0, 2, kControl, false, 2},
    {"popHandler", PrimOp::kPopHandler, 0, 1, kControl, false, 2},
    {"raise", PrimOp::kRaise, 1, 0, kControl, false, 4},
    // §4.2: query primitives over relations in the persistent store.
    {"select", PrimOp::kSelect, 2, 2, kRead, false, 64},
    {"project", PrimOp::kProject, 2, 2, kRead, false, 64},
    {"join", PrimOp::kQJoin, 3, 2, kRead, false, 128},
    {"exists", PrimOp::kExists, 2, 2, kRead, false, 48},
    {"empty", PrimOp::kEmpty, 1, 1, kRead, false, 4},
    {"card", PrimOp::kQCount, 1, 1, kRead, false, 4},
};

}  // namespace

Status RegisterStandard(ir::PrimitiveRegistry* reg) {
  for (const Spec& spec : kSpecs) {
    TML_RETURN_NOT_OK(reg->Register(std::make_unique<StdPrimitive>(spec)));
  }
  return Status::OK();
}

const ir::PrimitiveRegistry& StandardRegistry() {
  static const ir::PrimitiveRegistry* kRegistry = [] {
    auto* reg = new ir::PrimitiveRegistry();
    Status st = RegisterStandard(reg);
    assert(st.ok());
    (void)st;
    return reg;
  }();
  return *kRegistry;
}

}  // namespace tml::prims
