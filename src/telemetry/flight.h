// The always-on flight recorder (observability plane; DESIGN.md §11).
//
// Where the Tracer (trace.h) is an opt-in capture — enabled explicitly,
// records until its ring fills, then drops — the FlightRecorder is on by
// default and never stops: every thread that emits spans owns a small
// private ring that wraps, so at any moment the recorder holds the *most
// recent* window of activity per thread.  When something goes wrong (a
// budget kill, salvage-mode recovery, SIGUSR2, a fatal error) the last
// seconds before the incident can be dumped as Chrome trace JSON — the
// post-hoc answer to "what was the server doing right before that?".
//
// Design constraints, in order:
//   1. Recording must be cheap enough to leave on under the tier-1 bench
//      overhead budget (≤2% on bench_stanford dynamic): one thread-local
//      load, one monotone bump of a thread-owned cursor, five relaxed
//      stores and two seq stores per span.  No locks, no allocation after
//      ring creation, no fences beyond the seq protocol.
//   2. Wrap-around must be data-race-free against a concurrent dump.
//      Slots use a seqlock-style commit: the writer makes the slot's
//      sequence odd, writes the (individually atomic) fields, then
//      publishes an even sequence with release order; the dumper
//      acquire-loads the sequence, reads the fields, and re-checks the
//      sequence — a slot observed mid-overwrite is skipped.  Every field
//      is an atomic, so even an adversarial interleaving can at worst
//      yield a skipped slot or (in the theoretical limit of the C++
//      seqlock idiom) a mixed-but-well-formed event — never a torn
//      pointer or UB, which is the right trade for a diagnostic ring.
//   3. Rings are registered once per thread and deliberately leaked (like
//      the Tracer and the metrics registry) so a dump can run from signal
//      watchers and atexit handlers after thread exit.
//
// "Last N seconds" is capacity-based: each ring holds the newest
// `capacity` events of its thread; Snapshot(window_ns) additionally
// filters to events ending within the window.  Overwritten events are
// counted per ring (the flight-recorder analogue of Tracer::dropped()).

#ifndef TML_TELEMETRY_FLIGHT_H_
#define TML_TELEMETRY_FLIGHT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "support/status.h"

namespace tml::telemetry {

/// One event read back out of a ring.  `cat`/`name` are the string
/// literals the span sites passed in; `dur_ns == 0` marks an instant
/// event (incidents).
struct FlightEvent {
  const char* cat = nullptr;
  const char* name = nullptr;
  uint64_t ts_ns = 0;   ///< start, Tracer::NowNs() epoch
  uint64_t dur_ns = 0;  ///< 0 = instant event
  uint32_t tid = 0;     ///< Tracer::ThreadId() of the recording thread
};

class FlightRecorder {
 public:
  static FlightRecorder& Global();

  /// Recording is on by default; TYCOON_FLIGHT=0 (via trace.h's
  /// InitFromEnv) or set_enabled(false) turns it off for overhead A/B
  /// runs.  Checked with one relaxed load per span.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Events retained per thread ring.  Affects rings created *after* the
  /// call; clamped to [256, 1<<20].  (TYCOON_FLIGHT_BUF env knob.)
  void set_ring_capacity(size_t capacity);
  size_t ring_capacity() const {
    return ring_capacity_.load(std::memory_order_relaxed);
  }

  /// Record one complete span on the calling thread's ring.  Lock-free;
  /// wraps (overwriting the oldest event) when the ring is full.
  /// `cat`/`name` must be string literals or otherwise immortal.
  void Record(const char* cat, const char* name, uint64_t ts_ns,
              uint64_t dur_ns);

  /// Record an instant incident event ("budget_kill", "salvage", ...),
  /// bump the tml.flight.incidents counter, and — when an auto-dump
  /// directory is configured — write a bounded number of
  /// flight-<reason>-<n>.json dumps.  Safe from any thread; NOT
  /// async-signal-safe (signal handlers should set a flag and let a
  /// watcher thread call this, as tycd does for SIGUSR2).
  void NoteIncident(const char* reason);

  /// Committed events across all rings with end time inside the trailing
  /// `window_ns` (0 = everything retained), sorted by start time.
  std::vector<FlightEvent> Snapshot(uint64_t window_ns = 0) const;

  /// Snapshot rendered as a Chrome trace_event JSON document (loads in
  /// chrome://tracing / ui.perfetto.dev).  otherData carries the
  /// overwritten-event count and ring geometry.
  std::string DumpChromeJson(uint64_t window_ns = 0) const;

  /// Events overwritten by ring wrap-around, summed across rings — the
  /// silent-loss counter surfaced in STATS and /metrics.
  uint64_t overwritten() const;
  /// Total events ever recorded (committed), summed across rings.
  uint64_t recorded() const;
  /// Number of per-thread rings created so far.
  size_t rings() const;

  /// Configure automatic incident dumps: NoteIncident writes
  /// <dir>/flight-<reason>-<seq>.json until `max_dumps` files have been
  /// written (a crash loop must not fill the disk).  Empty dir disables.
  void SetAutoDumpDir(const std::string& dir, uint64_t max_dumps = 8);
  uint64_t auto_dumps_written() const;
  /// Path of the most recent auto dump (tests; empty if none).
  std::string last_auto_dump_path() const;

  /// Write the current snapshot to `path` as Chrome trace JSON.
  Status WriteDump(const std::string& path, uint64_t window_ns = 0) const;

 private:
  FlightRecorder() = default;

  /// One seqlock slot.  All fields atomic so a concurrent reader races
  /// benignly with an overwriting writer; `seq` odd = write in progress.
  struct Slot {
    std::atomic<uint64_t> seq{0};
    std::atomic<const char*> cat{nullptr};
    std::atomic<const char*> name{nullptr};
    std::atomic<uint64_t> ts_ns{0};
    std::atomic<uint64_t> dur_ns{0};
  };

  /// One thread's ring.  `cursor` is written only by the owning thread
  /// (atomic for cross-thread visibility to the dumper); `overwritten`
  /// counts wrapped slots.  Rings are leaked on thread exit — the thread
  /// id stays attributed in later dumps.
  struct Ring {
    explicit Ring(size_t cap) : slots(cap) {}
    std::vector<Slot> slots;
    std::atomic<uint64_t> cursor{0};  ///< next monotone slot index
    uint32_t tid = 0;
  };

  Ring* ThreadRing();

  std::atomic<bool> enabled_{true};
  std::atomic<size_t> ring_capacity_{8192};

  /// Guards rings_ growth and the auto-dump configuration; never taken on
  /// the record path.
  mutable std::mutex mu_;
  std::vector<Ring*> rings_;  ///< leaked Ring objects, one per thread

  // Auto-dump state (mu_).
  std::string auto_dump_dir_;
  uint64_t auto_dump_max_ = 8;
  uint64_t auto_dump_seq_ = 0;
  std::string last_auto_dump_path_;
};

/// Push the derived observability gauges (trace drops, flight overwrites,
/// ring count) into the metrics registry so they appear in every snapshot
/// and scrape.  Called by TelemetrySnapshot, the METRICS command, and the
/// /metrics HTTP handler just before rendering.
void RefreshObservabilityGauges();

}  // namespace tml::telemetry

#endif  // TML_TELEMETRY_FLIGHT_H_
