#include "telemetry/flight.h"

#include <algorithm>
#include <cstdio>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace tml::telemetry {

namespace {

Counter* MIncidents(const char* reason) {
  // Incident reasons form a tiny fixed set (budget_kill/salvage/sigusr2/
  // fatal), so a labeled counter per reason stays bounded.
  return Registry::Global().GetCounter("tml.flight.incidents",
                                       {{"reason", reason}});
}

thread_local void* t_ring = nullptr;  // FlightRecorder::Ring*, this process

}  // namespace

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* f = new FlightRecorder();  // leaked: atexit-safe
  return *f;
}

void FlightRecorder::set_ring_capacity(size_t capacity) {
  if (capacity < 256) capacity = 256;
  if (capacity > (1u << 20)) capacity = 1u << 20;
  ring_capacity_.store(capacity, std::memory_order_relaxed);
}

FlightRecorder::Ring* FlightRecorder::ThreadRing() {
  if (t_ring != nullptr) return static_cast<Ring*>(t_ring);
  auto* ring = new Ring(ring_capacity_.load(std::memory_order_relaxed));
  ring->tid = Tracer::ThreadId();
  {
    std::lock_guard<std::mutex> lock(mu_);
    rings_.push_back(ring);
  }
  t_ring = ring;
  return ring;
}

void FlightRecorder::Record(const char* cat, const char* name, uint64_t ts_ns,
                            uint64_t dur_ns) {
  if (!enabled()) return;
  Ring* ring = ThreadRing();
  uint64_t idx = ring->cursor.load(std::memory_order_relaxed);
  Slot& s = ring->slots[idx % ring->slots.size()];
  // Seqlock write: odd seq opens the slot, even seq (released) commits it.
  // Only the owning thread writes, so plain increments of the cursor and
  // an unconditional odd/even pair are enough.
  uint64_t seq = s.seq.load(std::memory_order_relaxed);
  s.seq.store(seq + 1, std::memory_order_release);  // odd: in progress
  s.cat.store(cat, std::memory_order_relaxed);
  s.name.store(name, std::memory_order_relaxed);
  s.ts_ns.store(ts_ns, std::memory_order_relaxed);
  s.dur_ns.store(dur_ns, std::memory_order_relaxed);
  s.seq.store(seq + 2, std::memory_order_release);  // even: committed
  ring->cursor.store(idx + 1, std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::Snapshot(uint64_t window_ns) const {
  std::vector<Ring*> rings;
  {
    std::lock_guard<std::mutex> lock(mu_);
    rings = rings_;
  }
  uint64_t now = Tracer::NowNs();
  uint64_t cutoff = (window_ns == 0 || window_ns > now) ? 0 : now - window_ns;
  std::vector<FlightEvent> out;
  for (Ring* ring : rings) {
    uint64_t end = ring->cursor.load(std::memory_order_acquire);
    size_t cap = ring->slots.size();
    uint64_t begin = end > cap ? end - cap : 0;
    for (uint64_t i = begin; i < end; ++i) {
      const Slot& s = ring->slots[i % cap];
      uint64_t seq_before = s.seq.load(std::memory_order_acquire);
      if (seq_before & 1) continue;  // mid-write
      FlightEvent e;
      e.cat = s.cat.load(std::memory_order_relaxed);
      e.name = s.name.load(std::memory_order_relaxed);
      e.ts_ns = s.ts_ns.load(std::memory_order_relaxed);
      e.dur_ns = s.dur_ns.load(std::memory_order_relaxed);
      e.tid = ring->tid;
      std::atomic_thread_fence(std::memory_order_acquire);
      if (s.seq.load(std::memory_order_relaxed) != seq_before) {
        continue;  // overwritten while we read it
      }
      if (e.name == nullptr) continue;  // never committed
      if (e.ts_ns + e.dur_ns < cutoff) continue;
      out.push_back(e);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& a, const FlightEvent& b) {
              return a.ts_ns < b.ts_ns;
            });
  return out;
}

uint64_t FlightRecorder::overwritten() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const Ring* ring : rings_) {
    uint64_t end = ring->cursor.load(std::memory_order_relaxed);
    size_t cap = ring->slots.size();
    if (end > cap) n += end - cap;
  }
  return n;
}

uint64_t FlightRecorder::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const Ring* ring : rings_) {
    n += ring->cursor.load(std::memory_order_relaxed);
  }
  return n;
}

size_t FlightRecorder::rings() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rings_.size();
}

std::string FlightRecorder::DumpChromeJson(uint64_t window_ns) const {
  std::vector<FlightEvent> events = Snapshot(window_ns);
  std::string out = "{\"traceEvents\": [\n";
  char buf[256];
  for (size_t i = 0; i < events.size(); ++i) {
    const FlightEvent& e = events[i];
    // Instant incidents render as ph "i" marks; spans as "X" like the
    // Tracer's output, so both load in the same viewers.
    if (e.dur_ns == 0) {
      std::snprintf(buf, sizeof buf,
                    "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"i\", "
                    "\"s\": \"g\", \"ts\": %.3f, \"pid\": 1, \"tid\": %u}%s\n",
                    JsonEscape(e.name).c_str(), JsonEscape(e.cat).c_str(),
                    static_cast<double>(e.ts_ns) / 1000.0, e.tid,
                    i + 1 < events.size() ? "," : "");
    } else {
      std::snprintf(buf, sizeof buf,
                    "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
                    "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %u}%s\n",
                    JsonEscape(e.name).c_str(), JsonEscape(e.cat).c_str(),
                    static_cast<double>(e.ts_ns) / 1000.0,
                    static_cast<double>(e.dur_ns) / 1000.0, e.tid,
                    i + 1 < events.size() ? "," : "");
    }
    out += buf;
  }
  out += "], \"displayTimeUnit\": \"ms\", \"otherData\": {"
         "\"overwritten\": " + std::to_string(overwritten()) +
         ", \"rings\": " + std::to_string(rings()) +
         ", \"ring_capacity\": " + std::to_string(ring_capacity()) + "}}\n";
  return out;
}

Status FlightRecorder::WriteDump(const std::string& path,
                                 uint64_t window_ns) const {
  std::string json = DumpChromeJson(window_ns);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot write flight dump " + path);
  }
  size_t n = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (n != json.size()) {
    return Status::IOError("short write to flight dump " + path);
  }
  return Status::OK();
}

void FlightRecorder::SetAutoDumpDir(const std::string& dir,
                                    uint64_t max_dumps) {
  std::lock_guard<std::mutex> lock(mu_);
  auto_dump_dir_ = dir;
  auto_dump_max_ = max_dumps;
}

uint64_t FlightRecorder::auto_dumps_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return auto_dump_seq_;
}

std::string FlightRecorder::last_auto_dump_path() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_auto_dump_path_;
}

void FlightRecorder::NoteIncident(const char* reason) {
  MIncidents(reason)->Increment();
  if (enabled()) {
    uint64_t now = Tracer::NowNs();
    Record("incident", reason, now, 0);
  }
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (auto_dump_dir_.empty() || auto_dump_seq_ >= auto_dump_max_) return;
    ++auto_dump_seq_;
    path = auto_dump_dir_ + "/flight-" + reason + "-" +
           std::to_string(auto_dump_seq_) + ".json";
    last_auto_dump_path_ = path;
  }
  Status st = WriteDump(path);
  if (!st.ok()) {
    std::fprintf(stderr, "flight: %s\n", st.ToString().c_str());
  } else {
    std::fprintf(stderr, "flight: incident '%s' dumped to %s\n", reason,
                 path.c_str());
    Registry::Global().GetCounter("tml.flight.auto_dumps")->Increment();
  }
}

void RefreshObservabilityGauges() {
  FlightRecorder& fr = FlightRecorder::Global();
  Registry& reg = Registry::Global();
  reg.GetGauge("tml.trace.dropped_events")
      ->Set(static_cast<int64_t>(Tracer::Global().dropped()));
  reg.GetGauge("tml.flight.overwritten_events")
      ->Set(static_cast<int64_t>(fr.overwritten()));
  reg.GetGauge("tml.flight.recorded_events")
      ->Set(static_cast<int64_t>(fr.recorded()));
  reg.GetGauge("tml.flight.rings")->Set(static_cast<int64_t>(fr.rings()));
}

}  // namespace tml::telemetry
