#include "telemetry/prometheus.h"

#include <cstdint>

namespace tml::telemetry {

namespace {

/// Split a registry full name "base{k=v,k2=v2}" back into base + labels.
/// Registry label keys/values are plain identifiers and short tokens (the
/// FullName join is unescaped), so first-'{' / ',' / first-'=' splitting
/// is exact.
void SplitFullName(const std::string& full, std::string* base,
                   Labels* labels) {
  size_t brace = full.find('{');
  if (brace == std::string::npos) {
    *base = full;
    return;
  }
  *base = full.substr(0, brace);
  size_t end = full.rfind('}');
  if (end == std::string::npos || end <= brace + 1) return;
  std::string body = full.substr(brace + 1, end - brace - 1);
  size_t pos = 0;
  while (pos < body.size()) {
    size_t comma = body.find(',', pos);
    std::string pair = comma == std::string::npos
                           ? body.substr(pos)
                           : body.substr(pos, comma - pos);
    size_t eq = pair.find('=');
    if (eq != std::string::npos) {
      labels->emplace_back(pair.substr(0, eq), pair.substr(eq + 1));
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
}

/// Render a label set, optionally with an extra trailing label (le=...).
std::string RenderLabels(const Labels& labels, const char* extra_key,
                         const std::string& extra_value) {
  if (labels.empty() && extra_key == nullptr) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += PrometheusName(k) + "=\"" + PrometheusLabelValue(v) + "\"";
  }
  if (extra_key != nullptr) {
    if (!first) out += ',';
    out += std::string(extra_key) + "=\"" + extra_value + "\"";
  }
  out += '}';
  return out;
}

}  // namespace

std::string PrometheusName(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, "_");
  return out;
}

std::string PrometheusLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string FormatPrometheus(const std::vector<MetricSample>& samples) {
  std::string out;
  std::string last_typed;  // base that already has its # TYPE header
  for (const MetricSample& s : samples) {
    std::string base;
    Labels labels;
    SplitFullName(s.name, &base, &labels);
    std::string pname = PrometheusName(base);
    switch (s.kind) {
      case MetricKind::kCounter:
        if (pname != last_typed) {
          out += "# TYPE " + pname + " counter\n";
          last_typed = pname;
        }
        out += pname + RenderLabels(labels, nullptr, "") + " " +
               std::to_string(s.count) + "\n";
        break;
      case MetricKind::kGauge:
        if (pname != last_typed) {
          out += "# TYPE " + pname + " gauge\n";
          last_typed = pname;
        }
        out += pname + RenderLabels(labels, nullptr, "") + " " +
               std::to_string(s.gauge) + "\n";
        break;
      case MetricKind::kHistogram: {
        if (pname != last_typed) {
          out += "# TYPE " + pname + " histogram\n";
          last_typed = pname;
        }
        // Cumulative buckets: registry bucket b holds integer values in
        // [2^(b-1), 2^b), whose inclusive upper bound is 2^b - 1 — that
        // is the le edge Prometheus wants.  Bucket 0 is exactly zero.
        uint64_t cum = 0;
        for (const auto& [b, n] : s.buckets) {
          cum += n;
          uint64_t le = b == 0 ? 0
                       : b >= 64 ? UINT64_MAX
                                 : (1ull << b) - 1;
          out += pname + "_bucket" +
                 RenderLabels(labels, "le", std::to_string(le)) + " " +
                 std::to_string(cum) + "\n";
        }
        out += pname + "_bucket" + RenderLabels(labels, "le", "+Inf") + " " +
               std::to_string(cum) + "\n";
        out += pname + "_sum" + RenderLabels(labels, nullptr, "") + " " +
               std::to_string(s.sum) + "\n";
        out += pname + "_count" + RenderLabels(labels, nullptr, "") + " " +
               std::to_string(cum) + "\n";
        break;
      }
    }
  }
  return out;
}

}  // namespace tml::telemetry
