// Prometheus text exposition (format 0.0.4) of the metrics registry —
// the scrape surface behind `tycd --metrics-port` and the native METRICS
// command (DESIGN.md §11).
//
// The registry's dotted names ("tml.server.request_us") and embedded
// label syntax ("tml.vm.steps{op=call}") are mapped onto the Prometheus
// data model:
//
//   * name sanitization: every character outside [a-zA-Z0-9_:] becomes
//     '_' (dots included), a leading digit gets a '_' prefix;
//   * label values are escaped per the exposition format (backslash,
//     double quote, newline);
//   * counters emit `# TYPE <name> counter` + one sample line, gauges
//     likewise; histograms emit cumulative `_bucket{le="..."}` lines
//     derived from the log2 buckets (le = upper bound of each occupied
//     bucket), a `+Inf` bucket, `_sum` and `_count` — the shape
//     histogram_quantile() expects.
//
// Metrics sharing a base name but different labels are grouped under one
// TYPE header, as the format requires.

#ifndef TML_TELEMETRY_PROMETHEUS_H_
#define TML_TELEMETRY_PROMETHEUS_H_

#include <string>
#include <vector>

#include "telemetry/metrics.h"

namespace tml::telemetry {

/// Render a registry snapshot in Prometheus text exposition format.
std::string FormatPrometheus(const std::vector<MetricSample>& samples);

/// Sanitize one metric name to the Prometheus grammar
/// [a-zA-Z_:][a-zA-Z0-9_:]* (exposed for the golden test).
std::string PrometheusName(std::string_view name);

/// Escape a label value (backslash, quote, newline).
std::string PrometheusLabelValue(std::string_view value);

}  // namespace tml::telemetry

#endif  // TML_TELEMETRY_PROMETHEUS_H_
