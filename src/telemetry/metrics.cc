#include "telemetry/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace tml::telemetry {

void Histogram::Observe(uint64_t v) {
  int b = std::bit_width(v);  // 0 for v == 0, else floor(log2(v)) + 1
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

uint64_t Histogram::count() const {
  uint64_t n = 0;
  for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
  return n;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

namespace {

/// Canonical full name: name{k1=v1,k2=v2} with labels sorted by key, so the
/// same metric always maps to the same registry cell regardless of the
/// label order at the call site.
std::string FullName(std::string_view name, const Labels& labels) {
  std::string out(name);
  if (labels.empty()) return out;
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  out += '{';
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) out += ',';
    out += sorted[i].first;
    out += '=';
    out += sorted[i].second;
  }
  out += '}';
  return out;
}

}  // namespace

Registry& Registry::Global() {
  static Registry* r = new Registry();  // leaked: outlives static dtors
  return *r;
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, cell] : cells_) {
    switch (cell.kind) {
      case MetricKind::kCounter:
        cell.counter->Reset();
        break;
      case MetricKind::kGauge:
        cell.gauge->Reset();
        break;
      case MetricKind::kHistogram:
        cell.histogram->Reset();
        break;
    }
  }
}

Registry::Cell* Registry::FindOrCreate(std::string_view name,
                                       const Labels& labels,
                                       MetricKind kind) {
  std::string key = FullName(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cells_.find(key);
  if (it == cells_.end()) {
    Cell cell;
    cell.kind = kind;
    switch (kind) {
      case MetricKind::kCounter:
        cell.counter = std::make_unique<Counter>();
        break;
      case MetricKind::kGauge:
        cell.gauge = std::make_unique<Gauge>();
        break;
      case MetricKind::kHistogram:
        cell.histogram = std::make_unique<Histogram>();
        break;
    }
    it = cells_.emplace(std::move(key), std::move(cell)).first;
  }
  return &it->second;
}

Counter* Registry::GetCounter(std::string_view name, const Labels& labels) {
  return FindOrCreate(name, labels, MetricKind::kCounter)->counter.get();
}

Gauge* Registry::GetGauge(std::string_view name, const Labels& labels) {
  return FindOrCreate(name, labels, MetricKind::kGauge)->gauge.get();
}

Histogram* Registry::GetHistogram(std::string_view name,
                                  const Labels& labels) {
  return FindOrCreate(name, labels, MetricKind::kHistogram)->histogram.get();
}

std::vector<MetricSample> Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(cells_.size());
  for (const auto& [key, cell] : cells_) {
    MetricSample s;
    s.name = key;
    s.kind = cell.kind;
    switch (cell.kind) {
      case MetricKind::kCounter:
        s.count = cell.counter->value();
        break;
      case MetricKind::kGauge:
        s.gauge = cell.gauge->value();
        break;
      case MetricKind::kHistogram:
        s.sum = cell.histogram->sum();
        for (int b = 0; b < Histogram::kBuckets; ++b) {
          uint64_t n = cell.histogram->bucket(b);
          if (n != 0) {
            s.buckets.emplace_back(b, n);
            s.count += n;
          }
        }
        break;
    }
    out.push_back(std::move(s));
  }
  return out;
}

uint64_t Registry::CounterValue(std::string_view full_name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cells_.find(full_name);
  if (it == cells_.end() || it->second.kind != MetricKind::kCounter) {
    return 0;
  }
  return it->second.counter->value();
}

std::string FormatText(const std::vector<MetricSample>& samples) {
  std::string out;
  char buf[160];
  for (const MetricSample& s : samples) {
    switch (s.kind) {
      case MetricKind::kCounter:
        std::snprintf(buf, sizeof buf, "%-52s %20llu\n", s.name.c_str(),
                      static_cast<unsigned long long>(s.count));
        out += buf;
        break;
      case MetricKind::kGauge:
        std::snprintf(buf, sizeof buf, "%-52s %20lld\n", s.name.c_str(),
                      static_cast<long long>(s.gauge));
        out += buf;
        break;
      case MetricKind::kHistogram: {
        double mean =
            s.count == 0 ? 0.0
                         : static_cast<double>(s.sum) /
                               static_cast<double>(s.count);
        std::snprintf(buf, sizeof buf,
                      "%-52s count=%llu sum=%llu mean=%.1f\n", s.name.c_str(),
                      static_cast<unsigned long long>(s.count),
                      static_cast<unsigned long long>(s.sum), mean);
        out += buf;
        for (const auto& [b, n] : s.buckets) {
          // Bucket b covers [2^(b-1), 2^b); bucket 0 is exactly zero.
          unsigned long long lo = b == 0 ? 0 : 1ull << (b - 1);
          unsigned long long hi = b == 0 ? 0 : (1ull << b) - 1;
          std::snprintf(buf, sizeof buf, "    [%llu..%llu] %llu\n", lo, hi,
                        static_cast<unsigned long long>(n));
          out += buf;
        }
        break;
      }
    }
  }
  return out;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string FormatJson(const std::vector<MetricSample>& samples) {
  std::string out = "{\n";
  char buf[96];
  for (size_t i = 0; i < samples.size(); ++i) {
    const MetricSample& s = samples[i];
    out += "  \"" + JsonEscape(s.name) + "\": ";
    switch (s.kind) {
      case MetricKind::kCounter:
        out += std::to_string(s.count);
        break;
      case MetricKind::kGauge:
        out += std::to_string(s.gauge);
        break;
      case MetricKind::kHistogram:
        out += "{\"count\": " + std::to_string(s.count) +
               ", \"sum\": " + std::to_string(s.sum) + ", \"buckets\": {";
        for (size_t j = 0; j < s.buckets.size(); ++j) {
          std::snprintf(buf, sizeof buf, "%s\"%d\": %llu",
                        j > 0 ? ", " : "", s.buckets[j].first,
                        static_cast<unsigned long long>(s.buckets[j].second));
          out += buf;
        }
        out += "}}";
        break;
    }
    out += i + 1 < samples.size() ? ",\n" : "\n";
  }
  out += "}\n";
  return out;
}

}  // namespace tml::telemetry
