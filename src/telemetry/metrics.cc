#include "telemetry/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace tml::telemetry {

void Histogram::Observe(uint64_t v) {
  int b = std::bit_width(v);  // 0 for v == 0, else floor(log2(v)) + 1
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

uint64_t Histogram::count() const {
  uint64_t n = 0;
  for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
  return n;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

double BucketQuantile(const std::vector<std::pair<int, uint64_t>>& buckets,
                      double q) {
  uint64_t total = 0;
  for (const auto& [b, n] : buckets) total += n;
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // 0-based rank of the target observation; walk buckets in index order
  // (the pairs come from Snapshot(), which emits them ascending).
  double rank = q * static_cast<double>(total - 1);
  uint64_t cum = 0;
  for (const auto& [b, n] : buckets) {
    if (static_cast<double>(cum + n) > rank) {
      // Interpolate within [2^(b-1), 2^b); bucket 0 is exactly zero.
      if (b == 0) return 0.0;
      double lo = static_cast<double>(1ull << (b - 1));
      double hi = b >= 64 ? 2.0 * lo : static_cast<double>(1ull << b);
      double frac = (rank - static_cast<double>(cum) + 0.5) /
                    static_cast<double>(n);
      if (frac < 0.0) frac = 0.0;
      if (frac > 1.0) frac = 1.0;
      return lo + frac * (hi - lo);
    }
    cum += n;
  }
  // rank beyond the last bucket (rounding): top of the last bucket.
  int last = buckets.back().first;
  if (last == 0) return 0.0;
  double lo = static_cast<double>(1ull << (last - 1));
  return last >= 64 ? 2.0 * lo : static_cast<double>(1ull << last);
}

double Histogram::Quantile(double q) const {
  std::vector<std::pair<int, uint64_t>> occupied;
  for (int b = 0; b < kBuckets; ++b) {
    uint64_t n = buckets_[b].load(std::memory_order_relaxed);
    if (n != 0) occupied.emplace_back(b, n);
  }
  if (occupied.empty()) return 0.0;
  return BucketQuantile(occupied, q);
}

namespace {

/// Canonical full name: name{k1=v1,k2=v2} with labels sorted by key, so the
/// same metric always maps to the same registry cell regardless of the
/// label order at the call site.
std::string FullName(std::string_view name, const Labels& labels) {
  std::string out(name);
  if (labels.empty()) return out;
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  out += '{';
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) out += ',';
    out += sorted[i].first;
    out += '=';
    out += sorted[i].second;
  }
  out += '}';
  return out;
}

}  // namespace

Registry& Registry::Global() {
  static Registry* r = new Registry();  // leaked: outlives static dtors
  return *r;
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, cell] : cells_) {
    switch (cell.kind) {
      case MetricKind::kCounter:
        cell.counter->Reset();
        break;
      case MetricKind::kGauge:
        cell.gauge->Reset();
        break;
      case MetricKind::kHistogram:
        cell.histogram->Reset();
        break;
    }
  }
}

Registry::Cell* Registry::FindOrCreate(std::string_view name,
                                       const Labels& labels,
                                       MetricKind kind) {
  std::string key = FullName(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cells_.find(key);
  if (it == cells_.end()) {
    Cell cell;
    cell.kind = kind;
    switch (kind) {
      case MetricKind::kCounter:
        cell.counter = std::make_unique<Counter>();
        break;
      case MetricKind::kGauge:
        cell.gauge = std::make_unique<Gauge>();
        break;
      case MetricKind::kHistogram:
        cell.histogram = std::make_unique<Histogram>();
        break;
    }
    it = cells_.emplace(std::move(key), std::move(cell)).first;
  }
  return &it->second;
}

Counter* Registry::GetCounter(std::string_view name, const Labels& labels) {
  return FindOrCreate(name, labels, MetricKind::kCounter)->counter.get();
}

Gauge* Registry::GetGauge(std::string_view name, const Labels& labels) {
  return FindOrCreate(name, labels, MetricKind::kGauge)->gauge.get();
}

Histogram* Registry::GetHistogram(std::string_view name,
                                  const Labels& labels) {
  return FindOrCreate(name, labels, MetricKind::kHistogram)->histogram.get();
}

std::vector<MetricSample> Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(cells_.size());
  for (const auto& [key, cell] : cells_) {
    MetricSample s;
    s.name = key;
    s.kind = cell.kind;
    switch (cell.kind) {
      case MetricKind::kCounter:
        s.count = cell.counter->value();
        break;
      case MetricKind::kGauge:
        s.gauge = cell.gauge->value();
        break;
      case MetricKind::kHistogram:
        s.sum = cell.histogram->sum();
        for (int b = 0; b < Histogram::kBuckets; ++b) {
          uint64_t n = cell.histogram->bucket(b);
          if (n != 0) {
            s.buckets.emplace_back(b, n);
            s.count += n;
          }
        }
        break;
    }
    out.push_back(std::move(s));
  }
  return out;
}

uint64_t Registry::CounterValue(std::string_view full_name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cells_.find(full_name);
  if (it == cells_.end() || it->second.kind != MetricKind::kCounter) {
    return 0;
  }
  return it->second.counter->value();
}

std::string FormatText(const std::vector<MetricSample>& samples) {
  std::string out;
  char buf[256];
  for (const MetricSample& s : samples) {
    switch (s.kind) {
      case MetricKind::kCounter:
        std::snprintf(buf, sizeof buf, "%-52s %20llu\n", s.name.c_str(),
                      static_cast<unsigned long long>(s.count));
        out += buf;
        break;
      case MetricKind::kGauge:
        std::snprintf(buf, sizeof buf, "%-52s %20lld\n", s.name.c_str(),
                      static_cast<long long>(s.gauge));
        out += buf;
        break;
      case MetricKind::kHistogram: {
        double mean =
            s.count == 0 ? 0.0
                         : static_cast<double>(s.sum) /
                               static_cast<double>(s.count);
        std::snprintf(buf, sizeof buf,
                      "%-52s count=%llu sum=%llu mean=%.1f"
                      " p50=%.0f p90=%.0f p99=%.0f\n",
                      s.name.c_str(),
                      static_cast<unsigned long long>(s.count),
                      static_cast<unsigned long long>(s.sum), mean,
                      s.count == 0 ? 0.0 : BucketQuantile(s.buckets, 0.50),
                      s.count == 0 ? 0.0 : BucketQuantile(s.buckets, 0.90),
                      s.count == 0 ? 0.0 : BucketQuantile(s.buckets, 0.99));
        out += buf;
        for (const auto& [b, n] : s.buckets) {
          // Bucket b covers [2^(b-1), 2^b); bucket 0 is exactly zero.
          unsigned long long lo = b == 0 ? 0 : 1ull << (b - 1);
          unsigned long long hi = b == 0 ? 0 : (1ull << b) - 1;
          std::snprintf(buf, sizeof buf, "    [%llu..%llu] %llu\n", lo, hi,
                        static_cast<unsigned long long>(n));
          out += buf;
        }
        break;
      }
    }
  }
  return out;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string FormatJson(const std::vector<MetricSample>& samples) {
  std::string out = "{\n";
  char buf[96];
  for (size_t i = 0; i < samples.size(); ++i) {
    const MetricSample& s = samples[i];
    out += "  \"" + JsonEscape(s.name) + "\": ";
    switch (s.kind) {
      case MetricKind::kCounter:
        out += std::to_string(s.count);
        break;
      case MetricKind::kGauge:
        out += std::to_string(s.gauge);
        break;
      case MetricKind::kHistogram:
        out += "{\"count\": " + std::to_string(s.count) +
               ", \"sum\": " + std::to_string(s.sum) + ", \"buckets\": {";
        for (size_t j = 0; j < s.buckets.size(); ++j) {
          std::snprintf(buf, sizeof buf, "%s\"%d\": %llu",
                        j > 0 ? ", " : "", s.buckets[j].first,
                        static_cast<unsigned long long>(s.buckets[j].second));
          out += buf;
        }
        out += "}}";
        break;
    }
    out += i + 1 < samples.size() ? ",\n" : "\n";
  }
  out += "}\n";
  return out;
}

}  // namespace tml::telemetry
