// Span tracing for the §4.1 loop (observability layer).
//
// A span is one timed region — a reflect.optimize run, one optimizer
// reduction sweep, a PTML decode, a store commit, an adaptive poll.  Spans
// are recorded as Chrome trace_event "complete" events (ph "X") so a
// capture loads directly into chrome://tracing or https://ui.perfetto.dev
// and nested calls on one thread render as a flame graph.
//
// Design constraints, in order:
//   1. Disabled cost ~0: TML_TELEMETRY_SPAN compiles to one relaxed atomic
//      load when tracing is off (the ≤3% overhead budget of the tier-1
//      benches).
//   2. Thread-safe recording without locks: events go into a bounded
//      ring buffer via a fetch_add cursor; when the buffer is full new
//      events are dropped and counted (never blocking the mutator or the
//      adaptive worker).
//   3. Thread-local span stacks: each thread tracks its open spans so
//      nesting depth is available to instrumentation (and a guard that
//      outlives an enabled->disabled flip still closes cleanly).
//
// Capture is env-var driven (see InitFromEnv): TYCOON_TRACE=<path> enables
// tracing and writes the JSON at process exit; TYCOON_TRACE_BUF=<n> sizes
// the ring; TYCOON_METRICS_DUMP=1 dumps the metrics registry to stderr at
// exit.

#ifndef TML_TELEMETRY_TRACE_H_
#define TML_TELEMETRY_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "support/status.h"

namespace tml::telemetry {

/// One recorded span.  `cat` and `name` must be string literals (or
/// otherwise outlive the tracer): the ring stores pointers, not copies.
struct TraceEvent {
  const char* cat = nullptr;
  const char* name = nullptr;
  uint64_t ts_ns = 0;   ///< start, nanoseconds since process trace epoch
  uint64_t dur_ns = 0;  ///< duration in nanoseconds
  uint32_t tid = 0;     ///< small dense thread id (1, 2, ...)
};

class Tracer {
 public:
  static Tracer& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Allocate the ring (idempotent while already enabled) and start
  /// recording.  Capacity is clamped to [1024, 1<<22].
  void Enable(size_t capacity = 1 << 16);
  /// Stop recording; already-buffered events stay until Drain().
  void Disable();

  /// Record one complete span (called by SpanGuard; public so tests and
  /// non-RAII call sites can emit events directly).
  void Record(const char* cat, const char* name, uint64_t ts_ns,
              uint64_t dur_ns);

  /// Monotonic nanoseconds since the trace epoch (first use).
  static uint64_t NowNs();

  /// Small dense id of the calling thread (1-based).
  static uint32_t ThreadId();

  /// Open-span depth of the calling thread (0 outside any span).
  static size_t ThreadSpanDepth();

  /// Events recorded so far (and not yet drained), oldest first.
  std::vector<TraceEvent> Drain();
  /// Events dropped because the ring was full.
  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Serialize `events` as a Chrome trace_event JSON document.
  static std::string ToChromeJson(const std::vector<TraceEvent>& events,
                                  uint64_t dropped);
  /// Drain and write everything to `path` as Chrome trace JSON.
  Status WriteChromeJson(const std::string& path);

 private:
  Tracer() = default;

  /// One ring slot.  `name` doubles as the commit flag: Record writes the
  /// plain fields first and release-stores `name` last, so a Drain that
  /// acquire-loads a non-null name is guaranteed to see the whole event
  /// (and skips slots a racing thread has claimed but not yet committed).
  struct Slot {
    std::atomic<const char*> name{nullptr};
    const char* cat = nullptr;
    uint64_t ts_ns = 0;
    uint64_t dur_ns = 0;
    uint32_t tid = 0;
  };

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> cursor_{0};  ///< next write slot (monotone)
  std::atomic<uint64_t> dropped_{0};
  uint64_t drained_ = 0;  ///< slots already consumed by Drain
  /// The ring.  Published via release-stores (slots_ before capacity_) and
  /// read with acquire loads (capacity_ before slots_), so a recorder that
  /// observes the new capacity also observes the new buffer.  Replaced
  /// buffers are intentionally leaked: an in-flight Record on another
  /// thread may still hold the old pointer.
  std::atomic<Slot*> slots_{nullptr};
  std::atomic<size_t> capacity_{0};
  /// Serializes Enable/Disable/Drain (never taken on the record path).
  std::mutex control_mu_;
};

/// RAII span: records a complete event over its own lifetime — into the
/// opt-in Tracer ring when tracing is enabled, and (independently) into
/// the calling thread's always-on flight-recorder ring (telemetry/
/// flight.h).  Both enabled() checks are captured at construction so a
/// mid-span flip still pairs begin/end consistently.
class SpanGuard {
 public:
  SpanGuard(const char* cat, const char* name);
  ~SpanGuard();
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  const char* cat_;
  const char* name_;
  uint64_t start_ns_ = 0;
  bool active_ = false;  ///< Tracer was enabled at construction
  bool flight_ = false;  ///< FlightRecorder was enabled at construction
};

/// Read TYCOON_TRACE / TYCOON_TRACE_BUF / TYCOON_METRICS_DUMP once and
/// arrange the corresponding at-exit capture.  Idempotent and thread-safe;
/// called from Universe construction and the tools, so any process that
/// touches the runtime honors the env contract automatically.
void InitFromEnv();

}  // namespace tml::telemetry

// Spans want distinct variable names when two live in one scope.
#define TML_TELEMETRY_CONCAT2(a, b) a##b
#define TML_TELEMETRY_CONCAT(a, b) TML_TELEMETRY_CONCAT2(a, b)

/// Trace the enclosing scope as a span.  `cat`/`name` must be literals.
#define TML_TELEMETRY_SPAN(cat, name)              \
  ::tml::telemetry::SpanGuard TML_TELEMETRY_CONCAT( \
      tml_telemetry_span_, __COUNTER__)(cat, name)

#endif  // TML_TELEMETRY_TRACE_H_
