// The process-wide metrics registry (observability layer).
//
// Every subsystem publishes its operational counters through one registry
// so operators (and the reflective system itself, via the `reflect.stats`
// host primitive) see the whole §4.1 loop — rewrite-rule firings, PTML
// codec traffic, store I/O per record kind, VM execution, reflect-cache
// effectiveness, adaptive promotions — in a single snapshot instead of
// five unrelated ad-hoc structs.
//
// Three metric kinds:
//
//   Counter    monotone uint64 (relaxed atomic add)
//   Gauge      int64 last-writer-wins level
//   Histogram  log2-bucketed distribution (65 buckets: bit_width of the
//              observed value) plus a running sum — enough to recover
//              p50/p99 within a factor of 2 and the mean exactly, which is
//              what Appel-style cost-model tuning needs from latency data
//
// Metrics are registered by (name, labels) and live forever: the returned
// pointer is stable, so call sites cache it in a function-local static and
// pay one relaxed atomic RMW per update.  Registration is mutex-protected;
// updates and snapshots are lock-free, so a reader thread can snapshot
// while mutator and adaptive-worker threads bump counters.

#ifndef TML_TELEMETRY_METRICS_H_
#define TML_TELEMETRY_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tml::telemetry {

class Counter {
 public:
  void Add(uint64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  /// Zero in place (Registry::Reset); the cell itself stays alive.
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Log2-bucketed histogram: Observe(v) lands in bucket bit_width(v), i.e.
/// bucket b counts values in [2^(b-1), 2^b).  Bucket 0 counts zeros.
class Histogram {
 public:
  static constexpr int kBuckets = 65;  // bit_width of a uint64 is 0..64

  void Observe(uint64_t v);
  uint64_t count() const;
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void Reset();

  /// Estimated q-quantile (q in [0,1]) of the observed distribution:
  /// rank-based walk over the log2 buckets with linear interpolation
  /// inside the landing bucket, so the estimate is exact to within the
  /// bucket's factor-of-2 span.  Returns 0 for an empty histogram.
  double Quantile(double q) const;

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> sum_{0};
};

/// Label set attached at registration; (name, labels) is the identity.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One metric's state at snapshot time.
struct MetricSample {
  std::string name;  ///< full key: name{k=v,...} (labels sorted by key)
  MetricKind kind = MetricKind::kCounter;
  uint64_t count = 0;  ///< counter value / histogram observation count
  int64_t gauge = 0;
  uint64_t sum = 0;  ///< histogram sum of observed values
  /// Non-empty histogram buckets as (bucket index, count) pairs; bucket b
  /// holds values in [2^(b-1), 2^b).
  std::vector<std::pair<int, uint64_t>> buckets;
};

/// The process-wide registry.  Metric naming scheme (see DESIGN.md §7):
/// dotted lowercase path "tml.<layer>.<what>", unit suffix for non-counts
/// (_bytes, _us), labels for the dimension that would otherwise explode
/// the name (rule=, type=).
///
/// Lifetime contract: the global registry is a deliberately leaked
/// singleton, and registered cells are NEVER destroyed or erased — Reset()
/// zeroes values in place.  Call sites (including background threads: the
/// adaptive worker, VM telemetry publication) may therefore cache a
/// Counter*/Gauge*/Histogram* forever; a reset between a cache fill and a
/// later bump cannot dangle the pointer.
class Registry {
 public:
  /// The singleton every instrumentation site uses.
  static Registry& Global();

  /// Zero every registered metric IN PLACE.  Cells stay alive at the same
  /// addresses, so pointers cached by concurrent threads remain valid and
  /// their next update simply lands in the zeroed cell — safe to call
  /// while background workers are still bumping counters (tests use this
  /// to isolate suites).
  void Reset();

  /// Find-or-create; the pointer is stable for the process lifetime.
  Counter* GetCounter(std::string_view name, const Labels& labels = {});
  Gauge* GetGauge(std::string_view name, const Labels& labels = {});
  Histogram* GetHistogram(std::string_view name, const Labels& labels = {});

  /// Consistent-enough copy of every registered metric (values are read
  /// with relaxed loads while writers keep running), sorted by full name.
  std::vector<MetricSample> Snapshot() const;

  /// Value of a counter by its full snapshot name ("tml.x.y{k=v}"); 0 when
  /// absent (tests and the tyctop tool use this).
  uint64_t CounterValue(std::string_view full_name) const;

 private:
  struct Cell {
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Cell* FindOrCreate(std::string_view name, const Labels& labels,
                     MetricKind kind);

  mutable std::mutex mu_;
  /// std::map keeps snapshots sorted and node pointers stable.
  std::map<std::string, Cell, std::less<>> cells_;
};

/// Estimated q-quantile from snapshot bucket pairs (the MetricSample
/// form of Histogram::Quantile — same rank walk + interpolation, usable
/// on serialized snapshots without the live cells).
double BucketQuantile(const std::vector<std::pair<int, uint64_t>>& buckets,
                      double q);

/// Render samples as aligned text (one metric per line; histograms show
/// count/sum/mean, p50/p90/p99 estimates, and their occupied log2
/// buckets).
std::string FormatText(const std::vector<MetricSample>& samples);

/// Render samples as a JSON object keyed by full metric name.  Counters
/// and gauges map to numbers; histograms to {"count","sum","buckets"}.
std::string FormatJson(const std::vector<MetricSample>& samples);

/// Escape `"`, `\` and control characters for embedding in JSON strings.
std::string JsonEscape(std::string_view s);

}  // namespace tml::telemetry

#endif  // TML_TELEMETRY_METRICS_H_
