#include "telemetry/trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "telemetry/flight.h"
#include "telemetry/metrics.h"

namespace tml::telemetry {

namespace {

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t TraceEpochNs() {
  static const uint64_t epoch = SteadyNowNs();
  return epoch;
}

std::atomic<uint32_t> g_next_tid{0};

thread_local uint32_t t_tid = 0;
thread_local size_t t_span_depth = 0;

}  // namespace

Tracer& Tracer::Global() {
  static Tracer* t = new Tracer();  // leaked: usable from atexit handlers
  return *t;
}

uint64_t Tracer::NowNs() {
  // Pin the epoch before sampling the clock: with unspecified operand
  // order, `SteadyNowNs() - TraceEpochNs()` can sample first and pin
  // second on the very first call, underflowing to ~2^64.
  const uint64_t epoch = TraceEpochNs();
  return SteadyNowNs() - epoch;
}

uint32_t Tracer::ThreadId() {
  if (t_tid == 0) {
    t_tid = g_next_tid.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  return t_tid;
}

size_t Tracer::ThreadSpanDepth() { return t_span_depth; }

void Tracer::Enable(size_t capacity) {
  std::lock_guard<std::mutex> lock(control_mu_);
  if (enabled_.load(std::memory_order_relaxed)) return;
  if (capacity < 1024) capacity = 1024;
  if (capacity > (1u << 22)) capacity = 1u << 22;
  if (capacity_.load(std::memory_order_relaxed) != capacity) {
    // The old buffer (if any) leaks deliberately: a span that straddled a
    // Disable may still Record into it from another thread.  Publish the
    // buffer before the capacity so a recorder that sees the new bound
    // also sees the new slots (acquire pairs in Record).
    slots_.store(new Slot[capacity], std::memory_order_release);
    capacity_.store(capacity, std::memory_order_release);
    cursor_.store(0, std::memory_order_relaxed);
    drained_ = 0;
  }
  (void)TraceEpochNs();  // pin the epoch before the first span
  enabled_.store(true, std::memory_order_release);
}

void Tracer::Disable() {
  std::lock_guard<std::mutex> lock(control_mu_);
  enabled_.store(false, std::memory_order_release);
}

void Tracer::Record(const char* cat, const char* name, uint64_t ts_ns,
                    uint64_t dur_ns) {
  // Load capacity before the buffer (pairs with the store order in
  // Enable): seeing the new capacity guarantees seeing the new slots.
  size_t cap = capacity_.load(std::memory_order_acquire);
  Slot* slots = slots_.load(std::memory_order_acquire);
  if (slots == nullptr) return;
  // Claim a monotone slot; slots past the ring capacity are dropped rather
  // than overwritten, so a drain never observes a torn event.
  uint64_t slot = cursor_.fetch_add(1, std::memory_order_relaxed);
  if (slot >= cap) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Slot& s = slots[slot];
  s.cat = cat;
  s.ts_ns = ts_ns;
  s.dur_ns = dur_ns;
  s.tid = ThreadId();
  // Commit: everything above happens-before a Drain that sees this name.
  s.name.store(name, std::memory_order_release);
}

std::vector<TraceEvent> Tracer::Drain() {
  std::lock_guard<std::mutex> lock(control_mu_);
  Slot* slots = slots_.load(std::memory_order_acquire);
  size_t cap = capacity_.load(std::memory_order_acquire);
  uint64_t end = cursor_.load(std::memory_order_acquire);
  if (end > cap) end = cap;
  std::vector<TraceEvent> out;
  for (uint64_t i = drained_; i < end; ++i) {
    const Slot& s = slots[i];
    // Skip slots claimed but not yet committed by a racing thread.
    const char* name = s.name.load(std::memory_order_acquire);
    if (name != nullptr) {
      out.push_back(TraceEvent{s.cat, name, s.ts_ns, s.dur_ns, s.tid});
    }
  }
  drained_ = end;
  return out;
}

std::string Tracer::ToChromeJson(const std::vector<TraceEvent>& events,
                                 uint64_t dropped) {
  // Chrome trace_event JSON object format; ts/dur are in microseconds.
  std::string out = "{\"traceEvents\": [\n";
  char buf[256];
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    std::snprintf(
        buf, sizeof buf,
        "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
        "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %u}%s\n",
        JsonEscape(e.name).c_str(), JsonEscape(e.cat).c_str(),
        static_cast<double>(e.ts_ns) / 1000.0,
        static_cast<double>(e.dur_ns) / 1000.0, e.tid,
        i + 1 < events.size() ? "," : "");
    out += buf;
  }
  out += "], \"displayTimeUnit\": \"ms\", \"otherData\": {\"dropped\": " +
         std::to_string(dropped) + "}}\n";
  return out;
}

Status Tracer::WriteChromeJson(const std::string& path) {
  std::string json =
      ToChromeJson(Drain(), dropped_.load(std::memory_order_relaxed));
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot write trace file " + path);
  }
  size_t n = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (n != json.size()) {
    return Status::IOError("short write to trace file " + path);
  }
  return Status::OK();
}

SpanGuard::SpanGuard(const char* cat, const char* name)
    : cat_(cat), name_(name) {
  active_ = Tracer::Global().enabled();
  flight_ = FlightRecorder::Global().enabled();
  if (!active_ && !flight_) return;
  ++t_span_depth;
  start_ns_ = Tracer::NowNs();
}

SpanGuard::~SpanGuard() {
  if (!active_ && !flight_) return;
  --t_span_depth;
  uint64_t end = Tracer::NowNs();
  // Clamp to 1ns so a sub-tick span stays a span (dur 0 marks instant
  // events in the flight dump).
  uint64_t dur = end > start_ns_ ? end - start_ns_ : 1;
  if (active_) Tracer::Global().Record(cat_, name_, start_ns_, dur);
  if (flight_) FlightRecorder::Global().Record(cat_, name_, start_ns_, dur);
}

namespace {

std::string g_trace_path;  // set once by InitFromEnv
bool g_metrics_dump = false;

void AtExitDump() {
  if (!g_trace_path.empty()) {
    Status st = Tracer::Global().WriteChromeJson(g_trace_path);
    if (!st.ok()) {
      std::fprintf(stderr, "telemetry: %s\n", st.ToString().c_str());
    } else {
      std::fprintf(stderr, "telemetry: trace written to %s\n",
                   g_trace_path.c_str());
    }
  }
  if (g_metrics_dump) {
    std::string text = FormatText(Registry::Global().Snapshot());
    std::fprintf(stderr, "== telemetry metrics ==\n%s", text.c_str());
  }
}

}  // namespace

void InitFromEnv() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* trace = std::getenv("TYCOON_TRACE");
    const char* dump = std::getenv("TYCOON_METRICS_DUMP");
    // Flight-recorder knobs: TYCOON_FLIGHT=0 disables (overhead A/B
    // runs), TYCOON_FLIGHT_BUF sizes the per-thread rings,
    // TYCOON_FLIGHT_DIR arms automatic incident dumps.
    if (const char* flight = std::getenv("TYCOON_FLIGHT")) {
      if (std::strcmp(flight, "0") == 0) {
        FlightRecorder::Global().set_enabled(false);
      }
    }
    if (const char* fbuf = std::getenv("TYCOON_FLIGHT_BUF")) {
      char* endp = nullptr;
      unsigned long long v = std::strtoull(fbuf, &endp, 10);
      if (endp != fbuf && v > 0) {
        FlightRecorder::Global().set_ring_capacity(static_cast<size_t>(v));
      }
    }
    if (const char* fdir = std::getenv("TYCOON_FLIGHT_DIR")) {
      if (fdir[0] != '\0') FlightRecorder::Global().SetAutoDumpDir(fdir);
    }
    g_metrics_dump = dump != nullptr && dump[0] != '\0' &&
                     std::strcmp(dump, "0") != 0;
    if (trace != nullptr && trace[0] != '\0') {
      g_trace_path = trace;
      size_t capacity = 1 << 16;
      if (const char* cap = std::getenv("TYCOON_TRACE_BUF")) {
        char* endp = nullptr;
        unsigned long long v = std::strtoull(cap, &endp, 10);
        if (endp != cap && v > 0) capacity = static_cast<size_t>(v);
      }
      Tracer::Global().Enable(capacity);
    }
    if (!g_trace_path.empty() || g_metrics_dump) {
      std::atexit(AtExitDump);
    }
  });
}

}  // namespace tml::telemetry
