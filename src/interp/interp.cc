#include "interp/interp.h"

#include <cmath>
#include <cstring>
#include <deque>
#include <limits>

#include "core/primitive.h"

namespace tml::interp {

using ir::Abstraction;
using ir::Application;
using ir::Cast;
using ir::DynCast;
using ir::Isa;
using ir::LitKind;
using ir::Literal;
using ir::PrimOp;
using ir::PrimRef;
using ir::Variable;

std::string ToString(const IValue& v) {
  struct Visitor {
    std::string operator()(std::monostate) const { return "nil"; }
    std::string operator()(bool b) const { return b ? "true" : "false"; }
    std::string operator()(int64_t i) const { return std::to_string(i); }
    std::string operator()(uint8_t c) const {
      return std::string("'") + static_cast<char>(c) + "'";
    }
    std::string operator()(double r) const {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%g", r);
      return buf;
    }
    std::string operator()(const std::string& s) const { return s; }
    std::string operator()(const std::shared_ptr<IArrayObj>& a) const {
      std::string out = "[";
      for (size_t i = 0; i < a->slots.size(); ++i) {
        if (i > 0) out += ' ';
        out += ToString(a->slots[i]);
      }
      return out + "]";
    }
    std::string operator()(const std::shared_ptr<IBytesObj>& b) const {
      return "<bytes " + std::to_string(b->bytes.size()) + ">";
    }
    std::string operator()(const IClosure*) const { return "<closure>"; }
    std::string operator()(Oid oid) const {
      return "<oid " + std::to_string(oid) + ">";
    }
  };
  return std::visit(Visitor{}, v.v);
}

namespace {

IValue Nil() { return IValue{}; }
IValue Int(int64_t i) { return IValue{i}; }
IValue Bool(bool b) { return IValue{b}; }
IValue Real(double r) { return IValue{r}; }
IValue Str(std::string s) { return IValue{std::move(s)}; }

/// Deep-copy a result, replacing machine-owned closures with nil so nothing
/// dangles after the machine's pools are freed.
IValue Sanitize(const IValue& v) {
  if (std::holds_alternative<const IClosure*>(v.v)) return Nil();
  if (auto* arr = std::get_if<std::shared_ptr<IArrayObj>>(&v.v)) {
    auto copy = std::make_shared<IArrayObj>();
    copy->immutable = (*arr)->immutable;
    copy->slots.reserve((*arr)->slots.size());
    for (const IValue& s : (*arr)->slots) copy->slots.push_back(Sanitize(s));
    return IValue{copy};
  }
  return v;
}

class Machine {
 public:
  Machine(const ir::Module& m, const InterpOptions& opts)
      : m_(m), opts_(opts) {}

  Result<InterpResult> Run(const Abstraction* prog,
                           const std::vector<IValue>& args) {
    if (prog->num_params() != args.size() + 2) {
      return Status::Invalid("program arity: expected " +
                             std::to_string(prog->num_params()) +
                             " params incl. (ce cc), got " +
                             std::to_string(args.size()) + " args");
    }
    const IClosure* halt = NewSpecial(SpecialCont::kHalt);
    const IClosure* top_handler = NewSpecial(SpecialCont::kTopHandler);
    handlers_.push_back(top_handler);

    const EnvNode* env = nullptr;
    for (size_t i = 0; i < args.size(); ++i) {
      env = Bind(env, prog->param(i), args[i]);
    }
    env = Bind(env, prog->param(prog->num_params() - 2),
               IValue{top_handler});
    env = Bind(env, prog->param(prog->num_params() - 1), IValue{halt});

    app_ = prog->body();
    env_ = env;
    while (!done_) {
      if (++steps_ > opts_.max_steps) {
        return Status::RuntimeError("interpreter step limit exceeded");
      }
      TML_RETURN_NOT_OK(Step());
    }
    InterpResult res;
    res.value = Sanitize(result_);
    res.raised = raised_;
    res.steps = steps_;
    res.output = std::move(output_);
    return res;
  }

 private:
  // ---- Allocation ------------------------------------------------------

  const EnvNode* Bind(const EnvNode* env, const Variable* var, IValue val) {
    env_pool_.push_back(EnvNode{var, std::move(val), env});
    return &env_pool_.back();
  }

  const IClosure* NewClosure(const Abstraction* abs, const EnvNode* env) {
    clo_pool_.push_back(IClosure{abs, env, SpecialCont::kNone});
    return &clo_pool_.back();
  }

  const IClosure* NewSpecial(SpecialCont s) {
    clo_pool_.push_back(IClosure{nullptr, nullptr, s});
    return &clo_pool_.back();
  }

  // ---- Evaluation ------------------------------------------------------

  Result<IValue> Eval(const ir::Value* v, const EnvNode* env) {
    switch (v->kind()) {
      case ir::NodeKind::kLiteral: {
        const Literal* lit = Cast<Literal>(v);
        switch (lit->lit_kind()) {
          case LitKind::kNil: return Nil();
          case LitKind::kBool: return Bool(lit->bool_value());
          case LitKind::kInt: return Int(lit->int_value());
          case LitKind::kChar: return IValue{lit->char_value()};
          case LitKind::kReal: return Real(lit->real_value());
          case LitKind::kString: return Str(std::string(lit->string_value()));
        }
        return Nil();
      }
      case ir::NodeKind::kOid:
        return IValue{Cast<ir::OidRef>(v)->oid()};
      case ir::NodeKind::kVariable: {
        const Variable* var = Cast<Variable>(v);
        for (const EnvNode* e = env; e != nullptr; e = e->next) {
          if (e->var == var) return e->val;
        }
        return Status::RuntimeError("unbound variable at runtime: " +
                                    std::string(m_.NameOf(*var)));
      }
      case ir::NodeKind::kPrimitive:
        return Status::RuntimeError("primitive used as a value");
      case ir::NodeKind::kAbstraction:
        return IValue{NewClosure(Cast<Abstraction>(v), env)};
      case ir::NodeKind::kApplication:
        return Status::RuntimeError("application in value position");
    }
    return Nil();
  }

  Status Step() {
    const Application* app = app_;
    const ir::Value* callee = app->callee();
    if (const PrimRef* pr = DynCast<PrimRef>(callee)) {
      return StepPrim(pr->prim(), app);
    }
    TML_ASSIGN_OR_RETURN(IValue f, Eval(callee, env_));
    std::vector<IValue> vals;
    vals.reserve(app->num_args());
    for (const ir::Value* a : app->args()) {
      TML_ASSIGN_OR_RETURN(IValue v, Eval(a, env_));
      vals.push_back(std::move(v));
    }
    return Invoke(f, vals);
  }

  Status Invoke(const IValue& f, const std::vector<IValue>& vals) {
    const IClosure* const* cp = std::get_if<const IClosure*>(&f.v);
    if (cp == nullptr) {
      return Status::RuntimeError(
          "application of a non-procedure value: " + ToString(f));
    }
    const IClosure* clo = *cp;
    switch (clo->special) {
      case SpecialCont::kHalt:
        done_ = true;
        raised_ = false;
        result_ = vals.empty() ? Nil() : vals[0];
        return Status::OK();
      case SpecialCont::kTopHandler:
        done_ = true;
        raised_ = true;
        result_ = vals.empty() ? Nil() : vals[0];
        return Status::OK();
      case SpecialCont::kNone:
        break;
    }
    if (clo->abs->num_params() != vals.size()) {
      return Status::RuntimeError("arity mismatch in application");
    }
    const EnvNode* env = clo->env;
    for (size_t i = 0; i < vals.size(); ++i) {
      env = Bind(env, clo->abs->param(i), vals[i]);
    }
    app_ = clo->abs->body();
    env_ = env;
    return Status::OK();
  }

  Status Raise(IValue err) {
    if (handlers_.empty()) {
      done_ = true;
      raised_ = true;
      result_ = std::move(err);
      return Status::OK();
    }
    const IClosure* h = handlers_.back();
    handlers_.pop_back();
    return Invoke(IValue{h}, {std::move(err)});
  }

  // ---- Primitive dispatch ----------------------------------------------

  Status StepPrim(const ir::Primitive& prim, const Application* app) {
    std::vector<IValue> a;
    a.reserve(app->num_args());
    for (const ir::Value* arg : app->args()) {
      TML_ASSIGN_OR_RETURN(IValue v, Eval(arg, env_));
      a.push_back(std::move(v));
    }
    switch (prim.op()) {
      case PrimOp::kAddI:
      case PrimOp::kSubI:
      case PrimOp::kMulI:
      case PrimOp::kDivI:
      case PrimOp::kModI:
        return IntArith(prim.op(), a);
      case PrimOp::kLtI:
      case PrimOp::kGtI:
      case PrimOp::kLeI:
      case PrimOp::kGeI:
        return IntCmp(prim.op(), a);
      case PrimOp::kShl:
      case PrimOp::kShr:
      case PrimOp::kBitAnd:
      case PrimOp::kBitOr:
      case PrimOp::kBitXor:
        return BitOp(prim.op(), a);
      case PrimOp::kAddR:
      case PrimOp::kSubR:
      case PrimOp::kMulR:
      case PrimOp::kDivR:
        return RealArith(prim.op(), a);
      case PrimOp::kLtR:
      case PrimOp::kLeR: {
        if (!a[0].is_real() || !a[1].is_real()) return TypeErr("real cmp");
        bool taken = prim.op() == PrimOp::kLtR
                         ? a[0].as_real() < a[1].as_real()
                         : a[0].as_real() <= a[1].as_real();
        return Invoke(taken ? a[2] : a[3], {});
      }
      case PrimOp::kSqrt: {
        if (!a[0].is_real()) return TypeErr("sqrt");
        if (a[0].as_real() < 0) return Invoke(a[1], {Str("sqrt: negative")});
        return Invoke(a[2], {Real(std::sqrt(a[0].as_real()))});
      }
      case PrimOp::kIntToReal:
        if (!a[0].is_int()) return TypeErr("int2real");
        return Invoke(a[1], {Real(static_cast<double>(a[0].as_int()))});
      case PrimOp::kTruncR: {
        if (!a[0].is_real()) return TypeErr("real2int");
        double r = a[0].as_real();
        if (!(r > -9.0e18 && r < 9.0e18)) return TypeErr("real2int range");
        return Invoke(a[1], {Int(static_cast<int64_t>(r))});
      }
      case PrimOp::kChar2Int: {
        auto* c = std::get_if<uint8_t>(&a[0].v);
        if (c == nullptr) return TypeErr("char2int");
        return Invoke(a[1], {Int(*c)});
      }
      case PrimOp::kInt2Char:
        if (!a[0].is_int()) return TypeErr("int2char");
        return Invoke(a[1], {IValue{static_cast<uint8_t>(
                                a[0].as_int() & 0xFF)}});
      case PrimOp::kAnd:
      case PrimOp::kOr: {
        if (!a[0].is_bool() || !a[1].is_bool()) return TypeErr("and/or");
        bool r = prim.op() == PrimOp::kAnd
                     ? (a[0].as_bool() && a[1].as_bool())
                     : (a[0].as_bool() || a[1].as_bool());
        return Invoke(a[2], {Bool(r)});
      }
      case PrimOp::kNot:
        if (!a[0].is_bool()) return TypeErr("not");
        return Invoke(a[1], {Bool(!a[0].as_bool())});
      case PrimOp::kEqB:
        return Invoke(ScalarEq(a[0], a[1]) ? a[2] : a[3], {});
      case PrimOp::kArray:
      case PrimOp::kVector: {
        auto arr = std::make_shared<IArrayObj>();
        arr->immutable = prim.op() == PrimOp::kVector;
        arr->slots.assign(a.begin(), a.end() - 1);
        return Invoke(a.back(), {IValue{arr}});
      }
      case PrimOp::kNewByteArray: {
        if (!a[0].is_int() || !a[1].is_int()) return TypeErr("new");
        int64_t n = a[0].as_int();
        if (n < 0) return TypeErr("new: negative size");
        auto b = std::make_shared<IBytesObj>();
        b->bytes.assign(static_cast<size_t>(n),
                        static_cast<uint8_t>(a[1].as_int() & 0xFF));
        return Invoke(a[2], {IValue{b}});
      }
      case PrimOp::kMkArray: {
        if (!a[0].is_int()) return TypeErr("mkarray");
        int64_t n = a[0].as_int();
        if (n < 0) return Invoke(a[2], {Str("mkarray: negative size")});
        auto arr = std::make_shared<IArrayObj>();
        arr->slots.assign(static_cast<size_t>(n), a[1]);
        return Invoke(a[3], {IValue{arr}});
      }
      case PrimOp::kALoad: {
        // `[]` is polymorphic over arrays and byte arrays (the TL front
        // end indexes both with the same syntax).
        if (!a[1].is_int()) return TypeErr("[]");
        int64_t i = a[1].as_int();
        if (auto* b = std::get_if<std::shared_ptr<IBytesObj>>(&a[0].v)) {
          if (i < 0 || static_cast<size_t>(i) >= (*b)->bytes.size()) {
            return Invoke(a[2], {Str("[]: index out of range")});
          }
          return Invoke(a[3], {Int((*b)->bytes[static_cast<size_t>(i)])});
        }
        auto* arr = std::get_if<std::shared_ptr<IArrayObj>>(&a[0].v);
        if (arr == nullptr) return TypeErr("[]");
        if (i < 0 || static_cast<size_t>(i) >= (*arr)->slots.size()) {
          return Invoke(a[2], {Str("[]: index out of range")});
        }
        return Invoke(a[3], {(*arr)->slots[static_cast<size_t>(i)]});
      }
      case PrimOp::kAStore: {
        if (!a[1].is_int()) return TypeErr("[]:=");
        int64_t i = a[1].as_int();
        if (auto* b = std::get_if<std::shared_ptr<IBytesObj>>(&a[0].v)) {
          if (!a[2].is_int()) return TypeErr("[]:= byte value");
          if (i < 0 || static_cast<size_t>(i) >= (*b)->bytes.size()) {
            return Invoke(a[3], {Str("[]:=: index out of range")});
          }
          (*b)->bytes[static_cast<size_t>(i)] =
              static_cast<uint8_t>(a[2].as_int() & 0xFF);
          return Invoke(a[4], {Nil()});
        }
        auto* arr = std::get_if<std::shared_ptr<IArrayObj>>(&a[0].v);
        if (arr == nullptr) return TypeErr("[]:=");
        if ((*arr)->immutable) {
          return Invoke(a[3], {Str("[]:=: immutable vector")});
        }
        if (i < 0 || static_cast<size_t>(i) >= (*arr)->slots.size()) {
          return Invoke(a[3], {Str("[]:=: index out of range")});
        }
        (*arr)->slots[static_cast<size_t>(i)] = a[2];
        return Invoke(a[4], {Nil()});
      }
      case PrimOp::kBLoad: {
        auto* b = std::get_if<std::shared_ptr<IBytesObj>>(&a[0].v);
        if (b == nullptr || !a[1].is_int()) return TypeErr("$[]");
        int64_t i = a[1].as_int();
        if (i < 0 || static_cast<size_t>(i) >= (*b)->bytes.size()) {
          return Invoke(a[2], {Str("$[]: index out of range")});
        }
        return Invoke(a[3], {Int((*b)->bytes[static_cast<size_t>(i)])});
      }
      case PrimOp::kBStore: {
        auto* b = std::get_if<std::shared_ptr<IBytesObj>>(&a[0].v);
        if (b == nullptr || !a[1].is_int() || !a[2].is_int()) {
          return TypeErr("$[]:=");
        }
        int64_t i = a[1].as_int();
        if (i < 0 || static_cast<size_t>(i) >= (*b)->bytes.size()) {
          return Invoke(a[3], {Str("$[]:=: index out of range")});
        }
        (*b)->bytes[static_cast<size_t>(i)] =
            static_cast<uint8_t>(a[2].as_int() & 0xFF);
        return Invoke(a[4], {Nil()});
      }
      case PrimOp::kSize: {
        if (auto* arr = std::get_if<std::shared_ptr<IArrayObj>>(&a[0].v)) {
          return Invoke(a[1], {Int(static_cast<int64_t>(
                                 (*arr)->slots.size()))});
        }
        if (auto* b = std::get_if<std::shared_ptr<IBytesObj>>(&a[0].v)) {
          return Invoke(a[1], {Int(static_cast<int64_t>(
                                 (*b)->bytes.size()))});
        }
        return TypeErr("size");
      }
      case PrimOp::kMove:
        return Move(a, /*bytes=*/false);
      case PrimOp::kBMove:
        return Move(a, /*bytes=*/true);
      case PrimOp::kCase:
        return Case(app, a);
      case PrimOp::kY:
        return FixY(app);
      case PrimOp::kPushHandler: {
        auto* h = std::get_if<const IClosure*>(&a[0].v);
        if (h == nullptr) return TypeErr("pushHandler");
        handlers_.push_back(*h);
        return Invoke(a[1], {});
      }
      case PrimOp::kPopHandler:
        if (handlers_.size() <= 1) return TypeErr("popHandler: empty stack");
        handlers_.pop_back();
        return Invoke(a[0], {});
      case PrimOp::kRaise:
        return Raise(a[0]);
      case PrimOp::kCCall:
        return CCall(a);
      default:
        return Status::Unimplemented(
            "primitive not supported by the reference interpreter: " +
            std::string(prim.name()));
    }
  }

  Status IntArith(PrimOp op, const std::vector<IValue>& a) {
    if (!a[0].is_int() || !a[1].is_int()) return TypeErr("int arith");
    int64_t x = a[0].as_int(), y = a[1].as_int(), r = 0;
    bool fail = false;
    switch (op) {
      case PrimOp::kAddI: fail = __builtin_add_overflow(x, y, &r); break;
      case PrimOp::kSubI: fail = __builtin_sub_overflow(x, y, &r); break;
      case PrimOp::kMulI: fail = __builtin_mul_overflow(x, y, &r); break;
      case PrimOp::kDivI:
        fail = (y == 0 ||
                (x == std::numeric_limits<int64_t>::min() && y == -1));
        if (!fail) r = x / y;
        break;
      case PrimOp::kModI:
        fail = (y == 0 ||
                (x == std::numeric_limits<int64_t>::min() && y == -1));
        if (!fail) r = x % y;
        break;
      default: return TypeErr("int arith");
    }
    if (fail) return Invoke(a[2], {Str("integer arithmetic fault")});
    return Invoke(a[3], {Int(r)});
  }

  Status IntCmp(PrimOp op, const std::vector<IValue>& a) {
    if (!a[0].is_int() || !a[1].is_int()) return TypeErr("int cmp");
    int64_t x = a[0].as_int(), y = a[1].as_int();
    bool taken = false;
    switch (op) {
      case PrimOp::kLtI: taken = x < y; break;
      case PrimOp::kGtI: taken = x > y; break;
      case PrimOp::kLeI: taken = x <= y; break;
      case PrimOp::kGeI: taken = x >= y; break;
      default: break;
    }
    return Invoke(taken ? a[2] : a[3], {});
  }

  Status BitOp(PrimOp op, const std::vector<IValue>& a) {
    if (!a[0].is_int() || !a[1].is_int()) return TypeErr("bit op");
    int64_t x = a[0].as_int(), y = a[1].as_int(), r = 0;
    uint64_t ux = static_cast<uint64_t>(x);
    switch (op) {
      case PrimOp::kShl:
        r = (y >= 0 && y < 64) ? static_cast<int64_t>(ux << y) : 0;
        break;
      case PrimOp::kShr:
        r = (y >= 0 && y < 64) ? static_cast<int64_t>(ux >> y) : 0;
        break;
      case PrimOp::kBitAnd: r = x & y; break;
      case PrimOp::kBitOr: r = x | y; break;
      case PrimOp::kBitXor: r = x ^ y; break;
      default: break;
    }
    return Invoke(a[2], {Int(r)});
  }

  Status RealArith(PrimOp op, const std::vector<IValue>& a) {
    if (!a[0].is_real() || !a[1].is_real()) return TypeErr("real arith");
    double x = a[0].as_real(), y = a[1].as_real(), r = 0;
    switch (op) {
      case PrimOp::kAddR: r = x + y; break;
      case PrimOp::kSubR: r = x - y; break;
      case PrimOp::kMulR: r = x * y; break;
      case PrimOp::kDivR:
        if (y == 0.0) return Invoke(a[2], {Str("real division by zero")});
        r = x / y;
        break;
      default: break;
    }
    return Invoke(a[3], {Real(r)});
  }

  static bool ScalarEq(const IValue& a, const IValue& b) {
    if (a.v.index() != b.v.index()) return false;
    if (a.is_int()) return a.as_int() == b.as_int();
    if (a.is_bool()) return a.as_bool() == b.as_bool();
    if (a.is_real()) return a.as_real() == b.as_real();
    if (auto* c = std::get_if<uint8_t>(&a.v)) {
      return *c == std::get<uint8_t>(b.v);
    }
    if (auto* s = std::get_if<std::string>(&a.v)) {
      return *s == std::get<std::string>(b.v);
    }
    if (a.is_nil()) return true;
    if (auto* o = std::get_if<Oid>(&a.v)) return *o == std::get<Oid>(b.v);
    return false;  // arrays/closures: identity not comparable here
  }

  Status Move(const std::vector<IValue>& a, bool bytes) {
    // (move dst dstoff src srcoff n c)
    if (!a[1].is_int() || !a[3].is_int() || !a[4].is_int()) {
      return TypeErr("move");
    }
    int64_t doff = a[1].as_int(), soff = a[3].as_int(), n = a[4].as_int();
    if (bytes) {
      auto* d = std::get_if<std::shared_ptr<IBytesObj>>(&a[0].v);
      auto* s = std::get_if<std::shared_ptr<IBytesObj>>(&a[2].v);
      if (d == nullptr || s == nullptr) return TypeErr("$move");
      if (n < 0 || doff < 0 || soff < 0 ||
          static_cast<size_t>(doff + n) > (*d)->bytes.size() ||
          static_cast<size_t>(soff + n) > (*s)->bytes.size()) {
        return TypeErr("$move bounds");
      }
      std::memmove((*d)->bytes.data() + doff, (*s)->bytes.data() + soff,
                   static_cast<size_t>(n));
    } else {
      auto* d = std::get_if<std::shared_ptr<IArrayObj>>(&a[0].v);
      auto* s = std::get_if<std::shared_ptr<IArrayObj>>(&a[2].v);
      if (d == nullptr || s == nullptr || (*d)->immutable) {
        return TypeErr("move");
      }
      if (n < 0 || doff < 0 || soff < 0 ||
          static_cast<size_t>(doff + n) > (*d)->slots.size() ||
          static_cast<size_t>(soff + n) > (*s)->slots.size()) {
        return TypeErr("move bounds");
      }
      for (int64_t i = 0; i < n; ++i) {
        (*d)->slots[static_cast<size_t>(doff + i)] =
            (*s)->slots[static_cast<size_t>(soff + i)];
      }
    }
    return Invoke(a[5], {Nil()});
  }

  // (== v t1..tn c1..cn [celse]) with literal tags.
  Status Case(const Application* app, const std::vector<IValue>& a) {
    size_t num_tags = 0;
    while (1 + num_tags < app->num_args() &&
           Isa<Literal>(app->arg(1 + num_tags))) {
      ++num_tags;
    }
    size_t num_conts = app->num_args() - 1 - num_tags;
    bool has_else = num_conts == num_tags + 1;
    for (size_t i = 0; i < num_tags; ++i) {
      if (ScalarEq(a[0], a[1 + i])) {
        return Invoke(a[1 + num_tags + i], {});
      }
    }
    if (has_else) return Invoke(a.back(), {});
    return Status::RuntimeError("'==' fell through without else branch");
  }

  // (Y λ(c0 v1..vn c)(c k0 abs1..absn)): establish the mutually recursive
  // bindings in a cyclic environment, then run the entry continuation.
  Status FixY(const Application* app) {
    if (app->num_args() != 1 || !Isa<Abstraction>(app->arg(0))) {
      return TypeErr("Y");
    }
    const Abstraction* gen = Cast<Abstraction>(app->arg(0));
    if (gen->num_params() < 2) return TypeErr("Y generator");
    const Application* ybody = gen->body();
    size_t n = gen->num_params() - 2;
    if (ybody->num_args() != n + 1 ||
        ybody->callee() != gen->param(gen->num_params() - 1)) {
      return TypeErr("Y generator body");
    }
    // Bind c0, v1..vn to env nodes first, then create the closures sharing
    // the extended environment head — this ties the recursive knot.
    const EnvNode* base = env_;
    std::vector<EnvNode*> cells;
    const EnvNode* env = base;
    for (size_t i = 0; i + 1 < gen->num_params(); ++i) {
      env_pool_.push_back(EnvNode{gen->param(i), Nil(), env});
      cells.push_back(&env_pool_.back());
      env = cells.back();
    }
    for (size_t i = 0; i <= n; ++i) {
      const Abstraction* abs = DynCast<Abstraction>(ybody->arg(i));
      if (abs == nullptr) return TypeErr("Y binding");
      cells[i]->val = IValue{NewClosure(abs, env)};
    }
    // Invoke the entry continuation cont() bound to c0.
    const Abstraction* entry = Cast<Abstraction>(ybody->arg(0));
    app_ = entry->body();
    env_ = env;
    return Status::OK();
  }

  Status CCall(const std::vector<IValue>& a) {
    auto* name = std::get_if<std::string>(&a[0].v);
    if (name == nullptr) return TypeErr("ccall name");
    const IValue& ce = a[a.size() - 2];
    const IValue& cc = a[a.size() - 1];
    (void)ce;
    if (*name == "print") {
      for (size_t i = 1; i + 2 < a.size(); ++i) {
        output_ += ToString(a[i]);
      }
      output_ += '\n';
      return Invoke(cc, {Nil()});
    }
    return Status::Unimplemented("ccall: unknown host function " + *name);
  }

  Status TypeErr(const std::string& what) {
    return Status::RuntimeError("interpreter type error: " + what);
  }

  const ir::Module& m_;
  InterpOptions opts_;
  std::deque<EnvNode> env_pool_;
  std::deque<IClosure> clo_pool_;
  std::vector<const IClosure*> handlers_;
  const Application* app_ = nullptr;
  const EnvNode* env_ = nullptr;
  bool done_ = false;
  bool raised_ = false;
  IValue result_;
  uint64_t steps_ = 0;
  std::string output_;
};

}  // namespace

Result<InterpResult> Run(const ir::Module& m, const ir::Abstraction* prog,
                         const std::vector<IValue>& args,
                         const InterpOptions& opts) {
  Machine machine(m, opts);
  return machine.Run(prog, args);
}

}  // namespace tml::interp
