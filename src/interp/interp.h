// Reference CPS interpreter — the executable semantics of TML (§2).
//
// Executes closed TML terms directly (environment passing, no compilation).
// It is deliberately simple and slow: its role is to give the rewrite rules
// an independent oracle.  The differential test harness runs every program
// on this interpreter and on the TVM bytecode machine, before and after
// every optimization level, and requires identical observable results.
//
// Supported: the full Fig. 2 primitive set over scalars, arrays and byte
// arrays, `==` case analysis, the Y fixpoint, handler-stack exceptions and
// ce-passing exceptions.  Not supported: OID dereferencing and the query
// primitives — terms containing cross-module OIDs execute on the VM, which
// owns the runtime object table (see src/runtime).
//
// Memory model: environments and closures are bump-allocated in the running
// machine and freed wholesale when Run returns (the same arena discipline
// the IR uses; recursive Y environments are cyclic, which refcounting could
// not reclaim).  Consequently closure values never escape: the result value
// is deep-sanitized, with any closure replaced by nil.

#ifndef TML_INTERP_INTERP_H_
#define TML_INTERP_INTERP_H_

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "core/module.h"
#include "core/node.h"
#include "support/status.h"

namespace tml::interp {

struct EnvNode;
struct IClosure;
struct IArrayObj;
struct IBytesObj;

/// A runtime value of the reference interpreter.
struct IValue {
  std::variant<std::monostate,              // nil
               bool, int64_t, uint8_t, double,
               std::string,                 // string literal
               std::shared_ptr<IArrayObj>,  // mutable or immutable array
               std::shared_ptr<IBytesObj>,  // byte array
               const IClosure*,             // proc or cont (machine-owned)
               Oid>
      v;

  bool is_nil() const { return std::holds_alternative<std::monostate>(v); }
  bool is_int() const { return std::holds_alternative<int64_t>(v); }
  int64_t as_int() const { return std::get<int64_t>(v); }
  bool is_bool() const { return std::holds_alternative<bool>(v); }
  bool as_bool() const { return std::get<bool>(v); }
  bool is_real() const { return std::holds_alternative<double>(v); }
  double as_real() const { return std::get<double>(v); }
};

struct IArrayObj {
  std::vector<IValue> slots;
  bool immutable = false;
};

struct IBytesObj {
  std::vector<uint8_t> bytes;
};

struct EnvNode {
  const ir::Variable* var = nullptr;
  IValue val;
  const EnvNode* next = nullptr;
};

/// Distinguished continuations closing the top level.
enum class SpecialCont : uint8_t { kNone, kHalt, kTopHandler };

struct IClosure {
  const ir::Abstraction* abs = nullptr;
  const EnvNode* env = nullptr;
  SpecialCont special = SpecialCont::kNone;
};

/// Render a value for test assertions ("13", "'a'", "[1 2 3]", ...).
std::string ToString(const IValue& v);

struct InterpOptions {
  /// Abort after this many application steps (guards non-termination in
  /// property tests).
  uint64_t max_steps = 200'000'000;
};

struct InterpResult {
  IValue value;         ///< value passed to the halt continuation (sanitized)
  bool raised = false;  ///< true when an exception reached top level
  uint64_t steps = 0;   ///< applications executed (a cost proxy)
  std::string output;   ///< text printed via (ccall "print" ..)
};

/// Run a whole program: a proc λ(p1..pn ce cc); `args` bind p1..pn, ce/cc
/// are the top-level handler/halt continuations.
Result<InterpResult> Run(const ir::Module& m, const ir::Abstraction* prog,
                         const std::vector<IValue>& args,
                         const InterpOptions& opts = {});

}  // namespace tml::interp

#endif  // TML_INTERP_INTERP_H_
