// The sampling VM profiler (observability plane; DESIGN.md §11).
//
// Where the per-function counters (VMOptions::profile) tell you what has
// been hot since process start, the sampler tells you what is hot *right
// now*: a background thread periodically snapshots every VM's execution
// status — the function on top of the frame stack and the opcode about to
// dispatch — via the lock-free VM::exec_status() seam, and folds the
// samples into a hot-function table.  The call path pays nothing beyond
// the two relaxed stores it already makes per instruction; the sampler
// never takes a VM lock.
//
// Each sample is attributed to a named function, classified by tier
// (reflect-optimized code units are named "reflect$N"; everything else
// runs the interpreter's baseline code), and tagged with its opcode so a
// hot table row says "fib, interpreted, mostly CALL".  Idle VMs (no
// outermost run in progress) sample as idle and are counted separately.
//
// Surfaces: the PROFILE wire command and the `reflect.profile` host
// primitive (both via Universe::SetProfileProvider), the /profile HTTP
// endpoint, and tml.profiler.* registry counters.

#ifndef TML_ADAPTIVE_SAMPLER_H_
#define TML_ADAPTIVE_SAMPLER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "runtime/universe.h"

namespace tml::adaptive {

struct SamplerOptions {
  /// Sampling period of the background worker (500 Hz default — coarse
  /// enough to be invisible, fine enough to rank hot functions within a
  /// second of workload).
  std::chrono::microseconds interval{2000};
  /// Rows retained in the rendered hot-function report (the table itself
  /// keeps every function ever sampled).
  size_t max_report_rows = 32;
};

class VmSampler final : public rt::BackgroundService {
 public:
  VmSampler(rt::Universe* universe, const SamplerOptions& opts = {});
  ~VmSampler() override;

  /// Launch the background sampling thread; idempotent.
  void Start();
  /// Stop and join; idempotent (also called by ~Universe via adoption).
  void Stop() override;

  /// One synchronous sampling sweep over every VM of the universe.
  /// Public so tests drive the profiler deterministically.
  void SampleOnce();

  /// The execution-tier ladder (DESIGN.md §12): baseline interpreted
  /// code, reflect-optimized code units ("reflect$N"), and optimized
  /// units whose hot sequences were additionally fused into
  /// superinstructions (vm/fuse.h).
  enum class Tier : uint8_t { kInterpreted, kOptimized, kFused };
  static const char* TierName(Tier t);

  struct FnRow {
    std::string name;          ///< Function::name ("<anon>" if empty)
    Oid closure_oid = kNullOid;  ///< persistent closure, if linked
    uint64_t samples = 0;
    Tier tier = Tier::kInterpreted;
    bool optimized = false;    ///< compat: tier != kInterpreted
    std::string top_op;        ///< modal opcode across this row's samples
  };
  struct Report {
    uint64_t total_samples = 0;       ///< VM-samples taken (VMs x sweeps)
    uint64_t idle_samples = 0;        ///< VM was outside any run
    uint64_t attributed_samples = 0;  ///< landed on a named function
    std::vector<FnRow> hot;           ///< sorted by samples, descending
    std::string ToJson() const;
  };
  /// Consistent copy of the hot table (worst-case max_report_rows rows).
  Report Snapshot() const;

 private:
  void WorkerLoop();
  /// Closure OID for `fn`, refreshing the cached index from the universe
  /// when the binding generation moved (or on first miss this sweep).
  Oid ClosureOidFor(const vm::Function* fn, bool* refreshed);

  rt::Universe* universe_;
  SamplerOptions opts_;
  telemetry::Counter* samples_counter_;
  telemetry::Counter* idle_counter_;

  /// Guards the sample table and the cached closure index.
  mutable std::mutex mu_;
  struct FnStats {
    uint64_t samples = 0;
    Oid closure_oid = kNullOid;
    /// Classified once at first sample: a Function's code never mutates
    /// after publication (recompiles swap in a fresh Function object).
    Tier tier = Tier::kInterpreted;
    /// Opcode histogram of this function's samples (tiny: a function
    /// only ever dispatches a handful of distinct opcodes).
    std::map<uint8_t, uint64_t> ops;
  };
  std::unordered_map<const vm::Function*, FnStats> table_;
  uint64_t total_samples_ = 0;
  uint64_t idle_samples_ = 0;
  std::unordered_map<const vm::Function*, Oid> closure_index_;
  uint64_t closure_index_gen_ = ~0ull;

  std::mutex worker_mu_;
  std::condition_variable worker_cv_;
  bool stop_requested_ = false;
  bool started_ = false;
  std::thread worker_;
};

/// Create a VmSampler for `universe`, start it, register it as the
/// universe's profile provider (PROFILE / reflect.profile), and hand
/// ownership to the universe.  Returns the sampler for test access; the
/// pointer stays valid for the universe's lifetime.
VmSampler* EnableSampler(rt::Universe* universe,
                         const SamplerOptions& opts = {});

}  // namespace tml::adaptive

#endif  // TML_ADAPTIVE_SAMPLER_H_
