#include "adaptive/sampler.h"

#include <algorithm>
#include <cstdio>

#include "telemetry/metrics.h"
#include "vm/code.h"
#include "vm/fuse.h"

namespace tml::adaptive {

namespace {

VmSampler::Tier TierOf(const vm::Function* fn) {
  // Reflect-optimized code units are named "reflect$N" by the universe's
  // optimizer; everything else is baseline interpreted code.  An optimized
  // unit that carries superinstructions (the fusion pass ran on it) sits
  // on the top rung of the ladder.
  if (vm::ContainsFusedOps(*fn)) return VmSampler::Tier::kFused;
  if (fn->name.rfind("reflect$", 0) == 0) return VmSampler::Tier::kOptimized;
  return VmSampler::Tier::kInterpreted;
}

}  // namespace

const char* VmSampler::TierName(Tier t) {
  switch (t) {
    case Tier::kInterpreted: return "interpreted";
    case Tier::kOptimized: return "optimized";
    case Tier::kFused: return "fused";
  }
  return "interpreted";
}

VmSampler::VmSampler(rt::Universe* universe, const SamplerOptions& opts)
    : universe_(universe), opts_(opts) {
  auto& reg = telemetry::Registry::Global();
  samples_counter_ = reg.GetCounter("tml.profiler.samples");
  idle_counter_ = reg.GetCounter("tml.profiler.idle_samples");
}

VmSampler::~VmSampler() {
  Stop();
  // The provider closure captures `this`; unhook before the members die.
  universe_->SetProfileProvider(nullptr);
}

void VmSampler::Start() {
  std::lock_guard<std::mutex> lock(worker_mu_);
  if (started_) return;
  started_ = true;
  stop_requested_ = false;
  worker_ = std::thread([this] { WorkerLoop(); });
}

void VmSampler::Stop() {
  {
    std::lock_guard<std::mutex> lock(worker_mu_);
    if (!started_) return;
    stop_requested_ = true;
  }
  worker_cv_.notify_all();
  if (worker_.joinable()) worker_.join();
  std::lock_guard<std::mutex> lock(worker_mu_);
  started_ = false;
}

void VmSampler::WorkerLoop() {
  std::unique_lock<std::mutex> lock(worker_mu_);
  while (!stop_requested_) {
    lock.unlock();
    SampleOnce();
    lock.lock();
    worker_cv_.wait_for(lock, opts_.interval,
                        [this] { return stop_requested_; });
  }
}

Oid VmSampler::ClosureOidFor(const vm::Function* fn, bool* refreshed) {
  // mu_ held.  The index is refreshed lazily: when the universe's binding
  // generation moved, or at most once per sweep when a sampled function
  // is missing (it may have been linked since the last refresh).
  uint64_t gen = universe_->binding_generation();
  if (gen != closure_index_gen_) {
    closure_index_ = universe_->FunctionClosureIndex();
    closure_index_gen_ = gen;
    *refreshed = true;
  }
  auto it = closure_index_.find(fn);
  if (it == closure_index_.end() && !*refreshed) {
    closure_index_ = universe_->FunctionClosureIndex();
    *refreshed = true;
    it = closure_index_.find(fn);
  }
  return it == closure_index_.end() ? kNullOid : it->second;
}

void VmSampler::SampleOnce() {
  std::vector<vm::VM::ExecStatus> statuses = universe_->SampleExecStatus();
  uint64_t idle = 0;
  std::lock_guard<std::mutex> lock(mu_);
  bool refreshed = false;
  for (const vm::VM::ExecStatus& s : statuses) {
    ++total_samples_;
    if (s.fn == nullptr) {
      ++idle_samples_;
      ++idle;
      continue;
    }
    FnStats& st = table_[s.fn];
    if (st.samples == 0) {
      st.closure_oid = ClosureOidFor(s.fn, &refreshed);
      st.tier = TierOf(s.fn);
    }
    ++st.samples;
    ++st.ops[s.op];
  }
  samples_counter_->Add(statuses.size());
  idle_counter_->Add(idle);
}

VmSampler::Report VmSampler::Snapshot() const {
  Report rep;
  std::lock_guard<std::mutex> lock(mu_);
  rep.total_samples = total_samples_;
  rep.idle_samples = idle_samples_;
  rep.hot.reserve(table_.size());
  for (const auto& [fn, st] : table_) {
    FnRow row;
    row.name = fn->name.empty() ? "<anon>" : fn->name;
    row.closure_oid = st.closure_oid;
    row.samples = st.samples;
    row.tier = st.tier;
    row.optimized = st.tier != Tier::kInterpreted;
    uint64_t best = 0;
    for (const auto& [op, n] : st.ops) {
      if (n > best) {
        best = n;
        row.top_op = vm::OpName(static_cast<vm::Op>(op));
      }
    }
    if (!fn->name.empty()) rep.attributed_samples += st.samples;
    rep.hot.push_back(std::move(row));
  }
  std::sort(rep.hot.begin(), rep.hot.end(),
            [](const FnRow& a, const FnRow& b) { return a.samples > b.samples; });
  if (rep.hot.size() > opts_.max_report_rows) {
    rep.hot.resize(opts_.max_report_rows);
  }
  return rep;
}

std::string VmSampler::Report::ToJson() const {
  uint64_t busy = total_samples - idle_samples;
  double pct = busy == 0 ? 100.0
                         : 100.0 * static_cast<double>(attributed_samples) /
                               static_cast<double>(busy);
  std::string out = "{";
  out += "\"total_samples\":" + std::to_string(total_samples);
  out += ",\"idle_samples\":" + std::to_string(idle_samples);
  out += ",\"attributed_samples\":" + std::to_string(attributed_samples);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", pct);
  out += ",\"attribution_pct\":";
  out += buf;
  out += ",\"functions\":[";
  for (size_t k = 0; k < hot.size(); ++k) {
    const FnRow& r = hot[k];
    if (k != 0) out += ',';
    out += "{\"name\":\"" + telemetry::JsonEscape(r.name) + "\"";
    out += ",\"oid\":" + std::to_string(r.closure_oid);
    out += ",\"samples\":" + std::to_string(r.samples);
    out += ",\"tier\":\"";
    out += TierName(r.tier);
    out += "\",\"top_op\":\"" + telemetry::JsonEscape(r.top_op) + "\"}";
  }
  out += "]}";
  return out;
}

VmSampler* EnableSampler(rt::Universe* universe, const SamplerOptions& opts) {
  auto sampler = std::make_unique<VmSampler>(universe, opts);
  VmSampler* raw = sampler.get();
  universe->SetProfileProvider([raw] { return raw->Snapshot().ToJson(); });
  raw->Start();
  universe->AdoptService(std::move(sampler));
  return raw;
}

}  // namespace tml::adaptive
