#include "adaptive/policy.h"

#include <algorithm>

namespace tml::adaptive {

std::vector<Oid> AdaptivePolicy::PickCandidates(const HotnessProfile& profile,
                                                size_t max_n,
                                                uint64_t* backoffs) const {
  std::vector<const ProfileEntry*> hot;
  for (const auto& [oid, e] : profile.entries()) {
    if (!IsHot(e) || AlreadyPromoted(e)) continue;
    if (Exhausted(e)) {
      if (backoffs != nullptr) ++*backoffs;
      continue;
    }
    hot.push_back(&e);
  }
  std::sort(hot.begin(), hot.end(),
            [](const ProfileEntry* a, const ProfileEntry* b) {
              if (a->steps != b->steps) return a->steps > b->steps;
              return a->closure_oid < b->closure_oid;
            });
  if (hot.size() > max_n) hot.resize(max_n);
  std::vector<Oid> out;
  out.reserve(hot.size());
  for (const ProfileEntry* e : hot) out.push_back(e->closure_oid);
  return out;
}

}  // namespace tml::adaptive
