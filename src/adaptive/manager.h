// The adaptive optimization manager: the control loop that ties the VM's
// hotness profile to `reflect.optimize` and the atomic code swap.
//
// Pipeline (one poll):
//
//   VM profile snapshot ──delta──▶ HotnessProfile (per-closure, decayed)
//        │                              │ AdaptivePolicy: hot? exhausted?
//        │                              ▼
//        │                  ReflectOptimize(closure)      [universe lock]
//        │                              │ generation check
//        │                              ▼
//        └──────────────── SwapCode + swizzle invalidation ──▶ running code
//
// Thread model: the manager owns one background worker thread that wakes
// every `poll_interval` and runs PollOnce().  PollOnce only touches the
// Universe through its locked public surface (ReflectOptimize, SwapCode,
// FunctionClosureIndex, PutRootRecord, ...) and the VM through the two
// thread-safe profile entry points (SnapshotProfile, InvalidateSwizzle via
// SwapCode), so it is safe against a concurrently executing mutator.  The
// stale-install guard is the Universe binding generation: the worker
// snapshots it before optimizing, and SwapCode refuses the install if any
// module was (re)installed in between.
//
// The profile is persisted as a kProfile record under the
// "hotness-profile" root after each poll that changed it, so a restarted
// database resumes with its heat intact; combined with the persistent
// reflect cache, re-promotion after a restart is a cache hit, not a
// re-optimization.

#ifndef TML_ADAPTIVE_MANAGER_H_
#define TML_ADAPTIVE_MANAGER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "adaptive/policy.h"
#include "adaptive/profile.h"
#include "runtime/universe.h"

namespace tml::adaptive {

struct AdaptiveOptions {
  PolicyOptions policy;
  /// Optimizer configuration handed to ReflectOptimize (also part of the
  /// reflect-cache fingerprint, so it must stay stable across restarts for
  /// the cache to hit).
  ir::OptimizerOptions optimizer;
  /// Worker wake interval.
  std::chrono::milliseconds poll_interval{50};
  /// Cap on promotions per poll, to bound the store/optimizer work a
  /// single cycle can inject.
  size_t max_promotions_per_poll = 4;
  /// Persist the profile (kProfile record + store commit) after polls
  /// that changed it.
  bool persist_profile = true;
  /// Transient-IO-failure handling for the worker: each consecutive
  /// failed poll doubles the wake interval (bounded by max_poll_backoff);
  /// after `park_after_failures` consecutive failures the worker parks —
  /// it stops polling entirely (profiling/promotion pause, the process
  /// stays up) instead of hammering a dead or poisoned store.
  uint32_t park_after_failures = 6;
  std::chrono::milliseconds max_poll_backoff{2000};
};

/// Manager-side statistics (universe-wide promote/backoff/reject counters
/// live in Universe::adaptive_counters()).
struct ManagerStats {
  uint64_t reflect_cache_hits = 0;
  uint64_t reflect_cache_misses = 0;
};

class AdaptiveManager final : public rt::BackgroundService {
 public:
  AdaptiveManager(rt::Universe* universe, const AdaptiveOptions& opts);
  ~AdaptiveManager() override;

  /// Load the persisted kProfile record, if any (call before Start()).
  Status LoadPersistedProfile();

  /// Launch the background worker; idempotent.
  void Start();
  /// Stop and join the worker; idempotent (also called by ~Universe).
  void Stop() override;

  /// One synchronous profiling/promotion cycle.  Public so tests and
  /// benchmarks can drive the loop deterministically without the thread.
  /// A successful explicit poll also un-parks a parked worker: the store
  /// evidently recovered, so background polling may resume.
  Status PollOnce();

  /// Re-arm a parked worker without a Stop()/Start() cycle — the recovery
  /// hook for "the store came back" (a successful explicit PollOnce, a
  /// store reopen).  Joins the exited worker thread and spawns a fresh
  /// one.  No-op if the worker is not parked, was never started, or Stop()
  /// was requested.  Never called from the worker thread itself: parked_
  /// only latches as that thread exits its loop.
  void Unpark();

  /// Snapshot of the per-closure profile (copies under the manager lock).
  HotnessProfile ProfileSnapshot() const;
  ManagerStats stats() const;

  /// True once the worker gave up after `park_after_failures` consecutive
  /// failed polls (e.g. a poisoned store).  A parked worker never polls
  /// again; Start() after Stop() re-arms it.
  bool parked() const { return parked_.load(std::memory_order_acquire); }

 private:
  void WorkerLoop();
  /// The body of PollOnce, with mu_ held.
  Status PollOnceLocked();
  /// Promote one hot closure; bumps universe counters as it goes.
  void TryPromote(Oid closure_oid);
  Status PersistProfile();

  rt::Universe* universe_;
  AdaptiveOptions opts_;
  AdaptivePolicy policy_;
  rt::AtomicAdaptiveCounters* counters_;
  // Registry cells resolved once at construction.  The registry is a
  // leaked singleton whose cells are never erased (Reset() zeroes them in
  // place), so these pointers stay valid for the process lifetime — no
  // function-local static caches racing a registry teardown from the
  // worker thread.
  telemetry::Counter* io_retries_counter_;
  telemetry::Counter* parks_counter_;
  telemetry::Counter* profile_corrupt_resets_counter_;

  /// Serializes PollOnce (worker vs. tests) and guards profile_/stats_.
  mutable std::mutex mu_;
  HotnessProfile profile_;
  ManagerStats stats_;
  /// Last VM snapshot per function, so each poll folds only the delta.
  struct LastSample {
    uint64_t calls = 0;
    uint64_t steps = 0;
  };
  std::unordered_map<const vm::Function*, LastSample> last_samples_;
  bool profile_dirty_ = false;

  std::mutex worker_mu_;
  std::condition_variable worker_cv_;
  bool stop_requested_ = false;
  std::atomic<bool> parked_{false};
  std::thread worker_;
};

/// Create an AdaptiveManager for `universe`, load any persisted profile,
/// start its worker thread, and hand ownership to the universe (which
/// stops it on destruction).  Returns the manager for stats/PollOnce
/// access; the pointer stays valid for the universe's lifetime.
AdaptiveManager* EnableAdaptive(rt::Universe* universe,
                                const AdaptiveOptions& opts = {});

}  // namespace tml::adaptive

#endif  // TML_ADAPTIVE_MANAGER_H_
