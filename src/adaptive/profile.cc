#include "adaptive/profile.h"

#include <algorithm>

#include "support/varint.h"

namespace tml::adaptive {

ProfileEntry* HotnessProfile::Entry(Oid closure_oid) {
  ProfileEntry& e = entries_[closure_oid];
  e.closure_oid = closure_oid;
  return &e;
}

const ProfileEntry* HotnessProfile::Find(Oid closure_oid) const& {
  auto it = entries_.find(closure_oid);
  return it == entries_.end() ? nullptr : &it->second;
}

void HotnessProfile::Accumulate(Oid closure_oid, uint64_t dcalls,
                                uint64_t dsteps) {
  ProfileEntry* e = Entry(closure_oid);
  e->calls += dcalls;
  e->steps += dsteps;
}

void HotnessProfile::Decay(double factor) {
  if (factor < 0) factor = 0;
  if (factor > 1) factor = 1;
  for (auto it = entries_.begin(); it != entries_.end();) {
    ProfileEntry& e = it->second;
    e.calls = static_cast<uint64_t>(static_cast<double>(e.calls) * factor);
    e.steps = static_cast<uint64_t>(static_cast<double>(e.steps) * factor);
    bool dead = e.calls == 0 && e.steps == 0 && e.attempts == 0 &&
                e.promoted_code_oid == kNullOid;
    it = dead ? entries_.erase(it) : std::next(it);
  }
}

std::string HotnessProfile::Encode() const {
  std::vector<const ProfileEntry*> sorted;
  sorted.reserve(entries_.size());
  for (const auto& [oid, e] : entries_) sorted.push_back(&e);
  std::sort(sorted.begin(), sorted.end(),
            [](const ProfileEntry* a, const ProfileEntry* b) {
              return a->closure_oid < b->closure_oid;
            });
  std::string out;
  out.push_back('H');
  out.push_back('P');
  out.push_back('1');
  PutVarint(&out, sorted.size());
  for (const ProfileEntry* e : sorted) {
    PutVarint(&out, e->closure_oid);
    PutVarint(&out, e->calls);
    PutVarint(&out, e->steps);
    PutVarint(&out, e->attempts);
    PutVarint(&out, e->code_oid);
    PutVarint(&out, e->promoted_code_oid);
  }
  return out;
}

Result<HotnessProfile> HotnessProfile::Decode(std::string_view bytes) {
  VarintReader r(bytes.data(), bytes.size());
  TML_ASSIGN_OR_RETURN(std::string magic, r.ReadBytes(3));
  if (magic != "HP1") {
    return Status::Corruption("hotness profile: bad magic");
  }
  TML_ASSIGN_OR_RETURN(uint64_t count, r.ReadVarint());
  // Six varints per entry, one byte each at minimum.
  if (count > r.Remaining() / 6) {
    return Status::Corruption("hotness profile: entry count exceeds input");
  }
  HotnessProfile p;
  for (uint64_t i = 0; i < count; ++i) {
    ProfileEntry e;
    TML_ASSIGN_OR_RETURN(e.closure_oid, r.ReadVarint());
    TML_ASSIGN_OR_RETURN(e.calls, r.ReadVarint());
    TML_ASSIGN_OR_RETURN(e.steps, r.ReadVarint());
    TML_ASSIGN_OR_RETURN(uint64_t attempts, r.ReadVarint());
    if (attempts > UINT32_MAX) {
      return Status::Corruption("hotness profile: attempts out of range");
    }
    e.attempts = static_cast<uint32_t>(attempts);
    TML_ASSIGN_OR_RETURN(e.code_oid, r.ReadVarint());
    TML_ASSIGN_OR_RETURN(e.promoted_code_oid, r.ReadVarint());
    p.entries_[e.closure_oid] = e;
  }
  if (!r.AtEnd()) {
    return Status::Corruption("hotness profile: trailing bytes");
  }
  return p;
}

}  // namespace tml::adaptive
