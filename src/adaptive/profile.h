// Persistent hotness profile (the profiling layer of the adaptive
// optimization subsystem).
//
// The TVM attributes executed instructions and call counts to each
// vm::Function (vm.h: FnCounters); the AdaptiveManager folds those samples
// into per-closure entries keyed by the persistent closure OID — the
// identity that survives restarts and code swaps.  The profile is stored as
// a single kProfile record under the "hotness-profile" root, so a reopened
// database already knows which functions are worth optimizing: together
// with the persistent reflect cache, a restart re-reaches its optimized
// steady state without re-discovering heat or re-running the optimizer.
//
// Wire format (all integers varint):
//
//   magic 'H','P','1'
//   count, (closure-oid, calls, steps, attempts, code-oid, promoted-oid)*
//
// Entries are sorted by closure OID so record bytes are deterministic for
// a given profile state.  Decoding is bounds-checked the same way as the
// reflect-cache index: corrupt counts are rejected before any allocation
// is sized from them, and a damaged record degrades to an empty profile.

#ifndef TML_ADAPTIVE_PROFILE_H_
#define TML_ADAPTIVE_PROFILE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/oid.h"
#include "support/status.h"

namespace tml::adaptive {

/// Name of the store root that anchors the kProfile record.
inline constexpr char kProfileRoot[] = "hotness-profile";

/// Accumulated heat and optimization history of one persistent closure.
struct ProfileEntry {
  Oid closure_oid = kNullOid;
  uint64_t calls = 0;  ///< decayed accumulated call count
  uint64_t steps = 0;  ///< decayed accumulated step count (the hotness score)
  /// Optimization attempts spent on this closure — the §3 penalty counter
  /// analog: the policy stops promoting once the cap is reached, so the
  /// adaptive loop terminates even when optimization never helps.
  uint32_t attempts = 0;
  /// Code OID observed at the last poll; when the stored closure's code
  /// changes under us (reinstall, rollback), attempts reset — it is a new
  /// function as far as the §3 penalty accounting is concerned.
  Oid code_oid = kNullOid;
  /// Code OID installed by the last successful promotion (kNullOid: none).
  /// While the closure still carries this code there is nothing to do.
  Oid promoted_code_oid = kNullOid;
};

/// The profile: closure OID -> entry, plus the codec for kProfile records.
class HotnessProfile {
 public:
  /// Find-or-create the entry for a closure.
  ProfileEntry* Entry(Oid closure_oid);
  /// Lookup without creating (nullptr when absent).  Lvalue-only: the
  /// pointer aims into this profile, so calling it on a temporary (e.g.
  /// `mgr.ProfileSnapshot().Find(oid)`) would dangle immediately.
  const ProfileEntry* Find(Oid closure_oid) const&;
  const ProfileEntry* Find(Oid closure_oid) const&& = delete;

  const std::unordered_map<Oid, ProfileEntry>& entries() const {
    return entries_;
  }
  std::unordered_map<Oid, ProfileEntry>& entries_mut() { return entries_; }
  size_t size() const { return entries_.size(); }

  /// Fold a delta sample into a closure's heat.
  void Accumulate(Oid closure_oid, uint64_t dcalls, uint64_t dsteps);

  /// Exponential decay of every entry's heat (factor in [0,1]); entries
  /// whose heat reaches zero and carry no history are dropped.
  void Decay(double factor);

  std::string Encode() const;
  static Result<HotnessProfile> Decode(std::string_view bytes);

 private:
  std::unordered_map<Oid, ProfileEntry> entries_;
};

}  // namespace tml::adaptive

#endif  // TML_ADAPTIVE_PROFILE_H_
