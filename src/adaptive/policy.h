// Promotion policy of the adaptive optimizer: which profiled closures are
// worth a reflect-optimize pass, and when to stop trying.
//
// The policy is deliberately simple and fully deterministic given a
// profile snapshot: a closure is *hot* once its decayed step count crosses
// `hot_steps` (with a `min_calls` floor so one long-running call does not
// trigger optimization of code that never runs again), and promotion stops
// after `max_attempts` optimization attempts — the §3 penalty-counter
// rule that keeps the adaptive loop from burning cycles on functions the
// optimizer cannot improve.  Exponential decay (`decay` per poll) ages
// heat away so a function that was hot yesterday does not stay promoted
// forever on stale evidence.

#ifndef TML_ADAPTIVE_POLICY_H_
#define TML_ADAPTIVE_POLICY_H_

#include <cstdint>
#include <vector>

#include "adaptive/profile.h"

namespace tml::adaptive {

struct PolicyOptions {
  /// Decayed step count at which a closure becomes a promotion candidate.
  uint64_t hot_steps = 20000;
  /// Minimum decayed call count — heat from a single call is not a trend.
  uint64_t min_calls = 4;
  /// Multiplier applied to every entry's heat once per poll, in [0,1].
  double decay = 0.5;
  /// Optimization attempts per closure before backing off for good
  /// (§3 penalty counter analog); attempts reset if the closure's stored
  /// code changes, since that makes it a different function.
  uint32_t max_attempts = 3;
};

class AdaptivePolicy {
 public:
  explicit AdaptivePolicy(const PolicyOptions& opts = {}) : opts_(opts) {}

  const PolicyOptions& options() const { return opts_; }

  /// Heat crossed the promotion threshold?
  bool IsHot(const ProfileEntry& e) const {
    return e.steps >= opts_.hot_steps && e.calls >= opts_.min_calls;
  }

  /// Penalty cap reached — stop spending optimizer time on this closure.
  bool Exhausted(const ProfileEntry& e) const {
    return e.attempts >= opts_.max_attempts;
  }

  /// The closure already runs the code our last promotion installed;
  /// nothing left to do until it changes or cools down.
  bool AlreadyPromoted(const ProfileEntry& e) const {
    return e.promoted_code_oid != kNullOid &&
           e.code_oid == e.promoted_code_oid;
  }

  /// Closures worth optimizing this poll, hottest first, at most `max_n`.
  /// Hot-but-exhausted entries are reported through `backoffs` (the caller
  /// counts them); already-promoted entries are silently at rest.
  std::vector<Oid> PickCandidates(const HotnessProfile& profile, size_t max_n,
                                  uint64_t* backoffs) const;

 private:
  PolicyOptions opts_;
};

}  // namespace tml::adaptive

#endif  // TML_ADAPTIVE_POLICY_H_
