#include "adaptive/manager.h"

#include <algorithm>
#include <utility>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace tml::adaptive {

AdaptiveManager::AdaptiveManager(rt::Universe* universe,
                                 const AdaptiveOptions& opts)
    : universe_(universe),
      opts_(opts),
      policy_(opts.policy),
      counters_(universe->adaptive_counters_raw()),
      io_retries_counter_(telemetry::Registry::Global().GetCounter(
          "tml.adaptive.io_retries")),
      parks_counter_(
          telemetry::Registry::Global().GetCounter("tml.adaptive.parks")),
      profile_corrupt_resets_counter_(telemetry::Registry::Global().GetCounter(
          "tml.adaptive.profile_corrupt_resets")) {}

AdaptiveManager::~AdaptiveManager() { Stop(); }

Status AdaptiveManager::LoadPersistedProfile() {
  Result<store::StoredObject> rec = universe_->GetRootRecord(kProfileRoot);
  if (!rec.ok()) {
    if (rec.status().code() == StatusCode::kNotFound) return Status::OK();
    return rec.status();
  }
  // The profile is rebuildable heat, not data: a retyped, quarantined or
  // undecodable record means a cold start (re-profile), never a refusal.
  if (rec->type != store::ObjType::kProfile) {
    profile_corrupt_resets_counter_->Increment();
    return Status::OK();
  }
  Result<HotnessProfile> loaded = HotnessProfile::Decode(rec->bytes);
  if (!loaded.ok()) {
    profile_corrupt_resets_counter_->Increment();
    return Status::OK();
  }
  std::lock_guard<std::mutex> lock(mu_);
  profile_ = std::move(*loaded);
  return Status::OK();
}

void AdaptiveManager::Start() {
  std::lock_guard<std::mutex> lock(worker_mu_);
  if (worker_.joinable()) return;
  stop_requested_ = false;
  parked_.store(false, std::memory_order_release);
  worker_ = std::thread(&AdaptiveManager::WorkerLoop, this);
}

void AdaptiveManager::Stop() {
  {
    std::lock_guard<std::mutex> lock(worker_mu_);
    stop_requested_ = true;
  }
  worker_cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

void AdaptiveManager::WorkerLoop() {
  // Transient store failures (ENOSPC, a poisoned store, a dying disk) are
  // retried with bounded exponential backoff; after park_after_failures
  // consecutive failures the worker parks instead of spinning — adaptive
  // optimization pauses, the database keeps serving.  A parked worker's
  // thread exits; Unpark() (or Stop()+Start()) re-arms it.
  std::chrono::milliseconds wait = opts_.poll_interval;
  uint32_t consecutive_failures = 0;
  std::unique_lock<std::mutex> lock(worker_mu_);
  while (!stop_requested_) {
    worker_cv_.wait_for(lock, wait, [this] { return stop_requested_; });
    if (stop_requested_) break;
    lock.unlock();
    Status st = PollOnce();  // failures are counted, never fatal
    lock.lock();
    if (st.ok()) {
      consecutive_failures = 0;
      wait = opts_.poll_interval;
      continue;
    }
    io_retries_counter_->Increment();
    if (++consecutive_failures >= opts_.park_after_failures) {
      parks_counter_->Increment();
      parked_.store(true, std::memory_order_release);
      break;
    }
    wait = std::min(wait * 2, opts_.max_poll_backoff);
  }
}

void AdaptiveManager::Unpark() {
  std::lock_guard<std::mutex> lock(worker_mu_);
  if (stop_requested_) return;
  if (!parked_.load(std::memory_order_acquire)) return;
  // The parked thread has exited (parking is the loop's last act before
  // returning), so the join is immediate.
  if (worker_.joinable()) worker_.join();
  parked_.store(false, std::memory_order_release);
  worker_ = std::thread(&AdaptiveManager::WorkerLoop, this);
}

Status AdaptiveManager::PollOnce() {
  Status st;
  {
    std::lock_guard<std::mutex> lock(mu_);
    st = PollOnceLocked();
  }
  // A successful poll proves the store answers again: re-arm a parked
  // worker.  (The worker thread itself never reaches here parked — parking
  // is how its loop exits — so Unpark never self-joins.)
  if (st.ok() && parked_.load(std::memory_order_acquire)) Unpark();
  return st;
}

Status AdaptiveManager::PollOnceLocked() {
  TML_TELEMETRY_SPAN("adaptive", "adaptive.poll");
  counters_->polls.Add(1);

  // 1. Age existing heat, then fold in the delta since the last snapshot,
  //    attributed back to persistent closure OIDs.  The universe merges
  //    the primary VM's profile with every worker VM's, so heat from
  //    concurrent mutator threads is all attributed.
  profile_.Decay(policy_.options().decay);
  std::vector<vm::FnSample> samples = universe_->SnapshotProfile();
  std::unordered_map<const vm::Function*, Oid> index =
      universe_->FunctionClosureIndex();
  for (const vm::FnSample& s : samples) {
    LastSample& last = last_samples_[s.fn];
    uint64_t dcalls = s.calls - last.calls;
    uint64_t dsteps = s.steps - last.steps;
    last.calls = s.calls;
    last.steps = s.steps;
    if (dcalls == 0 && dsteps == 0) continue;
    auto it = index.find(s.fn);
    if (it == index.end()) continue;  // anonymous / unpersisted code
    profile_.Accumulate(it->second, dcalls, dsteps);
    profile_dirty_ = true;
  }

  // 2. Refresh each entry's view of its closure's stored code.  A changed
  //    code OID means the closure was reinstalled or rolled back: the §3
  //    penalty account starts over for what is effectively new code.
  for (auto& [oid, e] : profile_.entries_mut()) {
    Result<Oid> code = universe_->ClosureCodeOid(oid);
    if (!code.ok()) continue;  // closure gone; decay will reap the entry
    if (e.code_oid != *code) {
      e.code_oid = *code;
      e.attempts = 0;
      profile_dirty_ = true;
    }
  }

  // 3. Policy pass: promote the hottest eligible closures.
  uint64_t backoffs = 0;
  std::vector<Oid> candidates = policy_.PickCandidates(
      profile_, opts_.max_promotions_per_poll, &backoffs);
  counters_->backoffs.Add(backoffs);
  for (Oid oid : candidates) TryPromote(oid);

  // 4. Persist the profile so heat survives restarts.
  if (opts_.persist_profile && profile_dirty_) {
    TML_RETURN_NOT_OK(PersistProfile());
    profile_dirty_ = false;
  }
  return Status::OK();
}

void AdaptiveManager::TryPromote(Oid closure_oid) {
  TML_TELEMETRY_SPAN("adaptive", "adaptive.promote");
  ProfileEntry* e = profile_.Entry(closure_oid);
  // Snapshot the binding generation *before* optimizing: if a module is
  // (re)installed while the optimizer runs, the result was computed against
  // stale bindings and SwapCode below must reject it.
  uint64_t gen = universe_->binding_generation();
  e->attempts += 1;
  profile_dirty_ = true;

  rt::ReflectStats rs;
  Result<Oid> optimized =
      universe_->ReflectOptimize(closure_oid, opts_.optimizer, &rs);
  stats_.reflect_cache_hits += rs.cache_hits;
  stats_.reflect_cache_misses += rs.cache_misses;
  if (!optimized.ok()) {
    counters_->reflect_failures.Add(1);
    return;
  }

  Result<Oid> opt_code = universe_->ClosureCodeOid(*optimized);
  if (!opt_code.ok()) {
    counters_->reflect_failures.Add(1);
    return;
  }
  if (*opt_code == e->code_oid) {
    // Optimization was a no-op (or the optimized code is already
    // installed); record it as promoted so the policy lets it rest.
    e->promoted_code_oid = *opt_code;
    return;
  }

  Result<bool> swapped = universe_->SwapCode(closure_oid, *optimized, gen);
  if (!swapped.ok()) {
    counters_->reflect_failures.Add(1);
    return;
  }
  if (!*swapped) {
    counters_->stale_rejections.Add(1);
    return;
  }
  counters_->promotions.Add(1);
  e->code_oid = *opt_code;
  e->promoted_code_oid = *opt_code;
}

Status AdaptiveManager::PersistProfile() {
  TML_ASSIGN_OR_RETURN(
      Oid oid, universe_->PutRootRecord(kProfileRoot, store::ObjType::kProfile,
                                        profile_.Encode()));
  (void)oid;
  TML_RETURN_NOT_OK(universe_->CommitStore());
  counters_->profile_persists.Add(1);
  return Status::OK();
}

HotnessProfile AdaptiveManager::ProfileSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return profile_;
}

ManagerStats AdaptiveManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

AdaptiveManager* EnableAdaptive(rt::Universe* universe,
                                const AdaptiveOptions& opts) {
  auto manager = std::make_unique<AdaptiveManager>(universe, opts);
  AdaptiveManager* raw = manager.get();
  (void)raw->LoadPersistedProfile();  // a damaged record starts cold, not fatal
  raw->Start();
  universe->AdoptService(std::move(manager));
  return raw;
}

}  // namespace tml::adaptive
