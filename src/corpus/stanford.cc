#include "corpus/stanford.h"

namespace tml::corpus {

namespace {

const char* kPerm = R"TL(
fun swap(a, i, j) =
  let t = a[i] in
  begin a[i] := a[j]; a[j] := t end
end

fun permute(a, n, cnt) =
  begin
    cnt[0] := cnt[0] + 1;
    if n != 0 then
      permute(a, n - 1, cnt);
      for i = 0 upto n - 1 do
        swap(a, n, i);
        permute(a, n - 1, cnt);
        swap(a, n, i)
      end
    end
  end
end

fun bench(reps) =
  var total := 0 in
  begin
    for r = 1 upto reps do
      let a = newarray(8, 0) in
      let cnt = array(0) in
      begin
        for i = 0 upto 7 do a[i] := i end;
        permute(a, 7, cnt);
        total := total + cnt[0]
      end
    end;
    total
  end
end
)TL";

const char* kTowers = R"TL(
fun hanoi(n, from, to, via, cnt) =
  if n > 0 then
    hanoi(n - 1, from, via, to, cnt);
    cnt[0] := cnt[0] + 1;
    hanoi(n - 1, via, to, from, cnt)
  end
end

fun bench(n) =
  let cnt = array(0) in
  begin hanoi(n, 1, 3, 2, cnt); cnt[0] end
end
)TL";

const char* kQueens = R"TL(
fun tryq(col, rows, d1, d2, cnt) =
  if col == 8 then cnt[0] := cnt[0] + 1
  else
    for r = 0 upto 7 do
      if rows[r] == 0 and d1[col + r] == 0 and d2[col - r + 7] == 0 then
        rows[r] := 1; d1[col + r] := 1; d2[col - r + 7] := 1;
        tryq(col + 1, rows, d1, d2, cnt);
        rows[r] := 0; d1[col + r] := 0; d2[col - r + 7] := 0
      end
    end
  end
end

fun bench(reps) =
  var total := 0 in
  begin
    for rep = 1 upto reps do
      let rows = newarray(8, 0) in
      let d1 = newarray(16, 0) in
      let d2 = newarray(16, 0) in
      let cnt = array(0) in
      begin tryq(0, rows, d1, d2, cnt); total := total + cnt[0] end
    end;
    total
  end
end
)TL";

const char* kIntmm = R"TL(
fun bench(n) =
  let a = newarray(n * n, 0) in
  let b = newarray(n * n, 0) in
  let c = newarray(n * n, 0) in
  begin
    for i = 0 upto n * n - 1 do
      a[i] := i % 7 + 1;
      b[i] := i % 5 + 1
    end;
    for i = 0 upto n - 1 do
      for j = 0 upto n - 1 do
        var s := 0 in
        begin
          for k = 0 upto n - 1 do
            s := s + a[i * n + k] * b[k * n + j]
          end;
          c[i * n + j] := s
        end
      end
    end;
    c[0] + c[n * n / 2] + c[n * n - 1]
  end
end
)TL";

const char* kMm = R"TL(
fun bench(n) =
  let a = newarray(n * n, 0) in
  let b = newarray(n * n, 0) in
  let c = newarray(n * n, 0) in
  begin
    for i = 0 upto n * n - 1 do
      a[i] := real(i % 7 + 1);
      b[i] := real(i % 5 + 1)
    end;
    for i = 0 upto n - 1 do
      for j = 0 upto n - 1 do
        var s := 0.0 in
        begin
          for k = 0 upto n - 1 do
            s := s +. a[i * n + k] *. b[k * n + j]
          end;
          c[i * n + j] := s
        end
      end
    end;
    trunc(c[0] +. c[n * n / 2] +. c[n * n - 1])
  end
end
)TL";

// The piece-fitting backtracking search of Puzzle, reduced to one
// dimension: count the tilings of an n-cell board with pieces of length
// 1..3 (the classic exhaustive-search / array-scan operation mix).
const char* kPuzzle = R"TL(
fun fits(board, pos, len) =
  var ok := 1 in
  begin
    for i = pos upto pos + len - 1 do
      if board[i] != 0 then ok := 0 end
    end;
    ok == 1
  end
end

fun place(board, pos, len, v) =
  for i = pos upto pos + len - 1 do board[i] := v end
end

fun solve(board, pos, cnt) =
  if pos == size(board) then cnt[0] := cnt[0] + 1
  else
    if board[pos] != 0 then solve(board, pos + 1, cnt)
    else
      for len = 1 upto 3 do
        if pos + len <= size(board) and fits(board, pos, len) then
          place(board, pos, len, len);
          solve(board, pos + len, cnt);
          place(board, pos, len, 0)
        end
      end
    end
  end
end

fun bench(n) =
  let board = newarray(n, 0) in
  let cnt = array(0) in
  begin solve(board, 0, cnt); cnt[0] end
end
)TL";

const char* kQuick = R"TL(
fun quick(a, lo, hi) =
  if lo < hi then
    let pivot = a[(lo + hi) / 2] in
    var i := lo in
    var j := hi in
    begin
      while i <= j do
        while a[i] < pivot do i := i + 1 end;
        while pivot < a[j] do j := j - 1 end;
        if i <= j then
          let t = a[i] in
          begin
            a[i] := a[j]; a[j] := t;
            i := i + 1; j := j - 1
          end
        end
      end;
      quick(a, lo, j);
      quick(a, i, hi)
    end
  end
end

fun bench(n) =
  let a = newarray(n, 0) in
  var seed := 1234 in
  begin
    for i = 0 upto n - 1 do
      seed := (seed * 1309 + 13849) % 65536;
      a[i] := seed
    end;
    quick(a, 0, n - 1);
    a[0] + a[n / 2] + a[n - 1]
  end
end
)TL";

const char* kBubble = R"TL(
fun bench(n) =
  let a = newarray(n, 0) in
  var seed := 4321 in
  begin
    for i = 0 upto n - 1 do
      seed := (seed * 1309 + 13849) % 65536;
      a[i] := seed
    end;
    for i = n - 1 downto 1 do
      for j = 0 upto i - 1 do
        if a[j + 1] < a[j] then
          let t = a[j] in
          begin a[j] := a[j + 1]; a[j + 1] := t end
        end
      end
    end;
    a[0] + a[n / 2] + a[n - 1]
  end
end
)TL";

// Records are 3-slot arrays (key, left, right); nil is the empty tree.
const char* kTree = R"TL(
fun insert(node, key) =
  if node == nil then array(key, nil, nil)
  else
    begin
      if key < node[0] then node[1] := insert(node[1], key)
      else
        if key > node[0] then node[2] := insert(node[2], key) end
      end;
      node
    end
  end
end

fun depth(node) =
  if node == nil then 0
  else
    let l = depth(node[1]) in
    let r = depth(node[2]) in
    if l > r then l + 1 else r + 1 end
  end
end

fun total(node) =
  if node == nil then 0
  else 1 + total(node[1]) + total(node[2])
  end
end

fun bench(n) =
  var root := nil in
  var seed := 7 in
  begin
    for i = 1 upto n do
      seed := (seed * 1309 + 13849) % 65536;
      root := insert(root, seed)
    end;
    total(root) * 100 + depth(root)
  end
end
)TL";

// Oscar substitute: damped harmonic oscillator integrated with Euler steps
// (real multiply/add over mutable state; see DESIGN.md §2).
const char* kOscar = R"TL(
fun bench(steps) =
  var x := 1.0 in
  var v := 0.0 in
  begin
    for i = 1 upto steps do
      v := v -. x *. 0.001;
      x := x +. v *. 0.001
    end;
    trunc(x *. 1000000.0) + trunc(v *. 1000000.0)
  end
end
)TL";

}  // namespace

const std::vector<StanfordProgram>& StanfordSuite() {
  static const auto* suite = new std::vector<StanfordProgram>{
      // checksums are filled in by tests/corpus/corpus_test.cc golden runs
      {"Perm", kPerm, 1, -1, 3},
      {"Towers", kTowers, 6, 63, 12},
      {"Queens", kQueens, 1, 92, 2},
      {"Intmm", kIntmm, 6, -1, 24},
      {"Mm", kMm, 6, -1, 24},
      {"Puzzle", kPuzzle, 8, -1, 17},
      {"Quick", kQuick, 64, -1, 2000},
      {"Bubble", kBubble, 32, -1, 256},
      {"Tree", kTree, 64, -1, 1500},
      {"Oscar", kOscar, 500, -1, 150000},
  };
  return *suite;
}

}  // namespace tml::corpus
