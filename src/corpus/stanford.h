// The Stanford benchmark suite in TL (the E1 workload, paper §6).
//
// These are the classic Hennessy benchmark programs (Perm, Towers, Queens,
// Intmm, Mm, Puzzle, Quick, Bubble, Tree) rewritten in the TL subset, plus
// Oscar* — a real-arithmetic integration loop standing in for the FFT-based
// Oscar (TML has no trigonometric primitives; the operation mix — real
// multiply/add in a tight loop over mutable state — is preserved, see
// DESIGN.md §2).
//
// Every program exports `fun bench(n)` returning an integer checksum; the
// `small_n` inputs are used by the correctness tests (with golden
// checksums), `bench_n` by the E1 harness.

#ifndef TML_CORPUS_STANFORD_H_
#define TML_CORPUS_STANFORD_H_

#include <cstdint>
#include <vector>

namespace tml::corpus {

struct StanfordProgram {
  const char* name;
  const char* source;     // TL source; entry point `bench(n)`
  int64_t small_n;        // test input
  int64_t small_checksum; // golden result for small_n
  int64_t bench_n;        // benchmark input
};

const std::vector<StanfordProgram>& StanfordSuite();

}  // namespace tml::corpus

#endif  // TML_CORPUS_STANFORD_H_
