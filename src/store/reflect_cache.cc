#include "store/reflect_cache.h"

#include <algorithm>

#include "support/varint.h"

namespace tml::store {

std::string EncodeReflectCache(std::vector<ReflectCacheEntry> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const ReflectCacheEntry& a, const ReflectCacheEntry& b) {
              return a.fingerprint < b.fingerprint;
            });
  std::string out;
  out.push_back('R');
  out.push_back('C');
  out.push_back('1');
  PutVarint(&out, entries.size());
  for (const ReflectCacheEntry& e : entries) {
    PutVarint(&out, e.fingerprint);
    PutVarint(&out, e.closure_oid);
    PutVarint(&out, e.code_oid);
    PutVarint(&out, e.ptml_oid);
  }
  return out;
}

Result<std::vector<ReflectCacheEntry>> DecodeReflectCache(
    std::string_view bytes) {
  VarintReader r(bytes.data(), bytes.size());
  TML_ASSIGN_OR_RETURN(std::string magic, r.ReadBytes(3));
  if (magic != "RC1") {
    return Status::Corruption("reflect cache: bad magic");
  }
  TML_ASSIGN_OR_RETURN(uint64_t count, r.ReadVarint());
  // Four varints per entry, one byte each at minimum.
  if (count > r.Remaining() / 4) {
    return Status::Corruption("reflect cache: entry count exceeds input");
  }
  std::vector<ReflectCacheEntry> entries;
  entries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    ReflectCacheEntry e;
    TML_ASSIGN_OR_RETURN(e.fingerprint, r.ReadVarint());
    TML_ASSIGN_OR_RETURN(e.closure_oid, r.ReadVarint());
    TML_ASSIGN_OR_RETURN(e.code_oid, r.ReadVarint());
    TML_ASSIGN_OR_RETURN(e.ptml_oid, r.ReadVarint());
    entries.push_back(e);
  }
  if (!r.AtEnd()) {
    return Status::Corruption("reflect cache: trailing bytes");
  }
  return entries;
}

}  // namespace tml::store
