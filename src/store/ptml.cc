#include "store/ptml.h"

#include <cstring>
#include <unordered_map>

#include "core/analysis.h"
#include "core/primitive.h"
#include "support/varint.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace tml::store {

using ir::Abstraction;
using ir::Application;
using ir::Cast;
using ir::LitKind;
using ir::Literal;
using ir::Module;
using ir::Variable;
using ir::VarSort;

namespace {

enum : uint8_t {
  kTagNil = 0,
  kTagBool = 1,
  kTagInt = 2,
  kTagChar = 3,
  kTagReal = 4,
  kTagString = 5,
  kTagOid = 6,
  kTagVar = 7,
  kTagPrim = 8,
  kTagAbs = 9,
  kTagApp = 10,
};

class Encoder {
 public:
  explicit Encoder(const Module& m) : m_(m) {}

  std::string Encode(const Abstraction* abs) {
    // Pass 1: collect strings and variable numbering.
    for (const Variable* fv : ir::FreeVariables(abs)) {
      var_index_.emplace(fv, var_index_.size());
      free_.push_back(fv);
      InternStr(std::string(m_.NameOf(*fv)));
    }
    CollectValue(abs);

    std::string out;
    out.push_back('P');
    out.push_back('T');
    out.push_back('1');
    PutVarint(&out, strings_.size());
    for (const std::string& s : strings_) {
      PutVarint(&out, s.size());
      out.append(s);
    }
    PutVarint(&out, free_.size());
    for (const Variable* fv : free_) {
      PutVarint(&out, StrIdx(std::string(m_.NameOf(*fv))));
      out.push_back(fv->sort() == VarSort::kCont ? 1 : 0);
    }
    EmitValue(&out, abs);
    return out;
  }

 private:
  void InternStr(const std::string& s) {
    if (str_index_.emplace(s, strings_.size()).second) strings_.push_back(s);
  }
  uint64_t StrIdx(const std::string& s) const { return str_index_.at(s); }

  void CollectValue(const ir::Value* v) {
    switch (v->kind()) {
      case ir::NodeKind::kLiteral: {
        const Literal* lit = Cast<Literal>(v);
        if (lit->lit_kind() == LitKind::kString) {
          InternStr(std::string(lit->string_value()));
        }
        return;
      }
      case ir::NodeKind::kPrimitive:
        InternStr(std::string(Cast<ir::PrimRef>(v)->prim().name()));
        return;
      case ir::NodeKind::kAbstraction: {
        const Abstraction* abs = Cast<Abstraction>(v);
        for (const Variable* p : abs->params()) {
          var_index_.emplace(p, var_index_.size());
          InternStr(std::string(m_.NameOf(*p)));
        }
        CollectApp(abs->body());
        return;
      }
      default:
        return;
    }
  }

  void CollectApp(const Application* app) {
    CollectValue(app->callee());
    for (const ir::Value* a : app->args()) CollectValue(a);
  }

  void EmitValue(std::string* out, const ir::Value* v) {
    switch (v->kind()) {
      case ir::NodeKind::kLiteral: {
        const Literal* lit = Cast<Literal>(v);
        switch (lit->lit_kind()) {
          case LitKind::kNil:
            out->push_back(kTagNil);
            return;
          case LitKind::kBool:
            out->push_back(kTagBool);
            out->push_back(lit->bool_value() ? 1 : 0);
            return;
          case LitKind::kInt:
            out->push_back(kTagInt);
            PutVarintSigned(out, lit->int_value());
            return;
          case LitKind::kChar:
            out->push_back(kTagChar);
            out->push_back(static_cast<char>(lit->char_value()));
            return;
          case LitKind::kReal: {
            out->push_back(kTagReal);
            double d = lit->real_value();
            char buf[8];
            std::memcpy(buf, &d, 8);
            out->append(buf, 8);
            return;
          }
          case LitKind::kString:
            out->push_back(kTagString);
            PutVarint(out, StrIdx(std::string(lit->string_value())));
            return;
        }
        return;
      }
      case ir::NodeKind::kOid:
        out->push_back(kTagOid);
        PutVarint(out, Cast<ir::OidRef>(v)->oid());
        return;
      case ir::NodeKind::kVariable:
        out->push_back(kTagVar);
        PutVarint(out, var_index_.at(Cast<Variable>(v)));
        return;
      case ir::NodeKind::kPrimitive:
        out->push_back(kTagPrim);
        PutVarint(out,
                  StrIdx(std::string(Cast<ir::PrimRef>(v)->prim().name())));
        return;
      case ir::NodeKind::kAbstraction: {
        const Abstraction* abs = Cast<Abstraction>(v);
        out->push_back(kTagAbs);
        PutVarint(out, abs->num_params());
        for (const Variable* p : abs->params()) {
          PutVarint(out, StrIdx(std::string(m_.NameOf(*p))));
          out->push_back(p->sort() == VarSort::kCont ? 1 : 0);
        }
        EmitApp(out, abs->body());
        return;
      }
      case ir::NodeKind::kApplication:
        return;  // unreachable: apps are emitted via EmitApp
    }
  }

  void EmitApp(std::string* out, const Application* app) {
    out->push_back(kTagApp);
    PutVarint(out, app->num_args() + 1);
    EmitValue(out, app->callee());
    for (const ir::Value* a : app->args()) EmitValue(out, a);
  }

  const Module& m_;
  std::vector<std::string> strings_;
  std::unordered_map<std::string, uint64_t> str_index_;
  std::unordered_map<const Variable*, uint64_t> var_index_;
  std::vector<const Variable*> free_;
};

class Decoder {
 public:
  Decoder(Module* m, const ir::PrimitiveRegistry& prims,
          std::string_view bytes)
      : m_(m), prims_(prims), r_(bytes.data(), bytes.size()) {}

  Result<PtmlDecoded> Decode() {
    TML_ASSIGN_OR_RETURN(std::string magic, r_.ReadBytes(3));
    if (magic != "PT1") return Status::Corruption("PTML: bad magic");
    TML_ASSIGN_OR_RETURN(uint64_t nstr, r_.ReadVarint());
    // Each table entry consumes at least one byte (its length varint), so
    // a count beyond the remaining input is corrupt; checking before the
    // reserve keeps a 5-byte record from provoking a multi-GB allocation.
    if (nstr > r_.Remaining()) {
      return Status::Corruption("PTML: string table count exceeds input");
    }
    strings_.reserve(nstr);
    for (uint64_t i = 0; i < nstr; ++i) {
      TML_ASSIGN_OR_RETURN(uint64_t len, r_.ReadVarint());
      TML_ASSIGN_OR_RETURN(std::string s, r_.ReadBytes(len));
      strings_.push_back(std::move(s));
    }
    TML_ASSIGN_OR_RETURN(uint64_t nfree, r_.ReadVarint());
    // A free-variable declaration is a name index plus a sort byte.
    if (nfree > r_.Remaining() / 2) {
      return Status::Corruption("PTML: free-variable count exceeds input");
    }
    PtmlDecoded out;
    for (uint64_t i = 0; i < nfree; ++i) {
      TML_ASSIGN_OR_RETURN(Variable * fv, ReadVarDecl());
      vars_.push_back(fv);
      out.free_vars.push_back(fv);
    }
    TML_ASSIGN_OR_RETURN(const ir::Value* v, ReadValue());
    const Abstraction* abs = ir::DynCast<Abstraction>(v);
    if (abs == nullptr) {
      return Status::Corruption("PTML: top-level value is not an abstraction");
    }
    out.abs = abs;
    if (!r_.AtEnd()) return Status::Corruption("PTML: trailing bytes");
    return out;
  }

 private:
  Result<std::string> ReadStr() {
    TML_ASSIGN_OR_RETURN(uint64_t idx, r_.ReadVarint());
    if (idx >= strings_.size()) {
      return Status::Corruption("PTML: string index out of range");
    }
    return strings_[idx];
  }

  Result<Variable*> ReadVarDecl() {
    TML_ASSIGN_OR_RETURN(std::string name, ReadStr());
    TML_ASSIGN_OR_RETURN(std::string sort, r_.ReadBytes(1));
    return m_->NewVar(name, sort[0] == 1 ? VarSort::kCont : VarSort::kValue);
  }

  Result<const ir::Value*> ReadValue() {
    TML_ASSIGN_OR_RETURN(std::string tag_s, r_.ReadBytes(1));
    uint8_t tag = static_cast<uint8_t>(tag_s[0]);
    switch (tag) {
      case kTagNil:
        return static_cast<const ir::Value*>(m_->NilLit());
      case kTagBool: {
        TML_ASSIGN_OR_RETURN(std::string b, r_.ReadBytes(1));
        return static_cast<const ir::Value*>(m_->BoolLit(b[0] != 0));
      }
      case kTagInt: {
        TML_ASSIGN_OR_RETURN(int64_t v, r_.ReadVarintSigned());
        return static_cast<const ir::Value*>(m_->IntLit(v));
      }
      case kTagChar: {
        TML_ASSIGN_OR_RETURN(std::string c, r_.ReadBytes(1));
        return static_cast<const ir::Value*>(
            m_->CharLit(static_cast<uint8_t>(c[0])));
      }
      case kTagReal: {
        TML_ASSIGN_OR_RETURN(std::string b, r_.ReadBytes(8));
        double d;
        std::memcpy(&d, b.data(), 8);
        return static_cast<const ir::Value*>(m_->RealLit(d));
      }
      case kTagString: {
        TML_ASSIGN_OR_RETURN(std::string s, ReadStr());
        return static_cast<const ir::Value*>(m_->StringLit(s));
      }
      case kTagOid: {
        TML_ASSIGN_OR_RETURN(uint64_t oid, r_.ReadVarint());
        return static_cast<const ir::Value*>(m_->OidVal(oid));
      }
      case kTagVar: {
        TML_ASSIGN_OR_RETURN(uint64_t idx, r_.ReadVarint());
        if (idx >= vars_.size()) {
          return Status::Corruption("PTML: variable index out of range");
        }
        return static_cast<const ir::Value*>(vars_[idx]);
      }
      case kTagPrim: {
        TML_ASSIGN_OR_RETURN(std::string name, ReadStr());
        const ir::Primitive* p = prims_.LookupName(name);
        if (p == nullptr) {
          return Status::NotFound("PTML: unknown primitive " + name);
        }
        return static_cast<const ir::Value*>(m_->Prim(p));
      }
      case kTagAbs: {
        TML_ASSIGN_OR_RETURN(uint64_t nparams, r_.ReadVarint());
        if (nparams > 4096) return Status::Corruption("PTML: huge arity");
        // Each parameter declaration is a name index plus a sort byte.
        if (nparams > r_.Remaining() / 2) {
          return Status::Corruption("PTML: parameter count exceeds input");
        }
        std::vector<Variable*> params;
        params.reserve(nparams);
        for (uint64_t i = 0; i < nparams; ++i) {
          TML_ASSIGN_OR_RETURN(Variable * p, ReadVarDecl());
          params.push_back(p);
          vars_.push_back(p);
        }
        TML_ASSIGN_OR_RETURN(const Application* body, ReadApp());
        return static_cast<const ir::Value*>(m_->Abs(
            std::span<Variable* const>(params.data(), params.size()), body));
      }
      case kTagApp:
        return Status::Corruption("PTML: application in value position");
      default:
        return Status::Corruption("PTML: unknown tag " + std::to_string(tag));
    }
  }

  Result<const Application*> ReadApp() {
    TML_ASSIGN_OR_RETURN(std::string tag_s, r_.ReadBytes(1));
    if (static_cast<uint8_t>(tag_s[0]) != kTagApp) {
      return Status::Corruption("PTML: expected application tag");
    }
    TML_ASSIGN_OR_RETURN(uint64_t nelems, r_.ReadVarint());
    if (nelems == 0 || nelems > 1u << 20) {
      return Status::Corruption("PTML: bad application size");
    }
    // Every element occupies at least its one tag byte.
    if (nelems > r_.Remaining()) {
      return Status::Corruption("PTML: application size exceeds input");
    }
    std::vector<const ir::Value*> elems;
    elems.reserve(nelems);
    for (uint64_t i = 0; i < nelems; ++i) {
      TML_ASSIGN_OR_RETURN(const ir::Value* v, ReadValue());
      elems.push_back(v);
    }
    const ir::Value* callee = elems[0];
    elems.erase(elems.begin());
    return m_->App(callee, std::span<const ir::Value* const>(elems.data(),
                                                             elems.size()));
  }

  Module* m_;
  const ir::PrimitiveRegistry& prims_;
  VarintReader r_;
  std::vector<std::string> strings_;
  std::vector<Variable*> vars_;
};

}  // namespace

std::string EncodePtml(const Module& m, const Abstraction* abs) {
  TML_TELEMETRY_SPAN("ptml", "ptml.encode");
  Encoder enc(m);
  std::string bytes = enc.Encode(abs);
  static telemetry::Counter* ops =
      telemetry::Registry::Global().GetCounter("tml.ptml.encode_ops");
  static telemetry::Counter* out_bytes =
      telemetry::Registry::Global().GetCounter("tml.ptml.encode_bytes");
  ops->Increment();
  out_bytes->Add(bytes.size());
  return bytes;
}

Result<PtmlDecoded> DecodePtml(Module* m, const ir::PrimitiveRegistry& prims,
                               std::string_view bytes) {
  TML_TELEMETRY_SPAN("ptml", "ptml.decode");
  static telemetry::Counter* ops =
      telemetry::Registry::Global().GetCounter("tml.ptml.decode_ops");
  static telemetry::Counter* in_bytes =
      telemetry::Registry::Global().GetCounter("tml.ptml.decode_bytes");
  static telemetry::Counter* errors =
      telemetry::Registry::Global().GetCounter("tml.ptml.decode_errors");
  ops->Increment();
  in_bytes->Add(bytes.size());
  Decoder dec(m, prims, bytes);
  Result<PtmlDecoded> out = dec.Decode();
  if (!out.ok()) errors->Increment();
  return out;
}

}  // namespace tml::store
