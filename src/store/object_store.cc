#include "store/object_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "support/crc32.h"
#include "support/varint.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace tml::store {

const char* ObjTypeName(ObjType type) {
  switch (type) {
    case ObjType::kBlob: return "blob";
    case ObjType::kPtml: return "ptml";
    case ObjType::kCode: return "code";
    case ObjType::kClosure: return "closure";
    case ObjType::kModule: return "module";
    case ObjType::kRelation: return "relation";
    case ObjType::kReflectCache: return "reflect-cache";
    case ObjType::kProfile: return "profile";
  }
  return "unknown";
}

namespace {

/// Per-ObjType read/write counters, resolved once.  Index is the raw
/// ObjType value; out-of-range types (corrupt input) fall back to slot 0.
struct StoreCounters {
  static constexpr int kTypes = 8;
  telemetry::Counter* read_ops[kTypes];
  telemetry::Counter* read_bytes[kTypes];
  telemetry::Counter* write_ops[kTypes];
  telemetry::Counter* write_bytes[kTypes];

  static const StoreCounters& Get() {
    static const StoreCounters* c = [] {
      auto* sc = new StoreCounters();
      auto& reg = telemetry::Registry::Global();
      for (int t = 0; t < kTypes; ++t) {
        telemetry::Labels labels{
            {"type", ObjTypeName(static_cast<ObjType>(t))}};
        sc->read_ops[t] = reg.GetCounter("tml.store.read_ops", labels);
        sc->read_bytes[t] = reg.GetCounter("tml.store.read_bytes", labels);
        sc->write_ops[t] = reg.GetCounter("tml.store.write_ops", labels);
        sc->write_bytes[t] = reg.GetCounter("tml.store.write_bytes", labels);
      }
      return sc;
    }();
    return *c;
  }

  static int Slot(ObjType type) {
    int t = static_cast<int>(type);
    return (t >= 0 && t < kTypes) ? t : 0;
  }
};

void CountWrite(ObjType type, size_t bytes) {
  const StoreCounters& c = StoreCounters::Get();
  int t = StoreCounters::Slot(type);
  c.write_ops[t]->Increment();
  c.write_bytes[t]->Add(bytes);
}

void CountRead(ObjType type, size_t bytes) {
  const StoreCounters& c = StoreCounters::Get();
  int t = StoreCounters::Slot(type);
  c.read_ops[t]->Increment();
  c.read_bytes[t]->Add(bytes);
}

// Two fixed-size header slots at the front of the file.
//   magic(8) epoch(8) durable_length(8) next_oid(8) crc(4) pad(4)
constexpr char kMagic[8] = {'T', 'M', 'L', 'S', 'T', 'O', 'R', '1'};
constexpr size_t kHeaderSlotSize = 40;
constexpr size_t kDataStart = 2 * kHeaderSlotSize;

void EncodeU64(char* p, uint64_t v) { std::memcpy(p, &v, 8); }
uint64_t DecodeU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

struct Header {
  uint64_t epoch = 0;
  uint64_t durable_length = 0;
  uint64_t next_oid = 1;
  bool valid = false;
};

Header ParseHeaderSlot(const char* buf) {
  Header h;
  if (std::memcmp(buf, kMagic, 8) != 0) return h;
  uint32_t want_crc;
  std::memcpy(&want_crc, buf + 32, 4);
  if (Crc32(buf, 32) != want_crc) return h;
  h.epoch = DecodeU64(buf + 8);
  h.durable_length = DecodeU64(buf + 16);
  h.next_oid = DecodeU64(buf + 24);
  h.valid = true;
  return h;
}

void BuildHeaderSlot(char* buf, const Header& h) {
  std::memset(buf, 0, kHeaderSlotSize);
  std::memcpy(buf, kMagic, 8);
  EncodeU64(buf + 8, h.epoch);
  EncodeU64(buf + 16, h.durable_length);
  EncodeU64(buf + 24, h.next_oid);
  uint32_t crc = Crc32(buf, 32);
  std::memcpy(buf + 32, &crc, 4);
}

Status IOErr(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

Status WriteFully(int fd, const char* data, size_t size, uint64_t offset) {
  while (size > 0) {
    ssize_t n = ::pwrite(fd, data, size, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      return IOErr("pwrite");
    }
    data += n;
    size -= static_cast<size_t>(n);
    offset += static_cast<uint64_t>(n);
  }
  return Status::OK();
}

constexpr Oid kRootsOid = kNullOid;  // reserved record id for the root map
constexpr uint8_t kTombstoneType = 0xFF;

}  // namespace

ObjectStore::~ObjectStore() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<ObjectStore>> ObjectStore::Open(
    const std::string& path) {
  TML_TELEMETRY_SPAN("store", "store.open");
  std::unique_ptr<ObjectStore> s(new ObjectStore());
  s->path_ = path;
  if (path.empty()) return s;  // in-memory

  s->fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (s->fd_ < 0) return IOErr("open " + path);
  off_t end = ::lseek(s->fd_, 0, SEEK_END);
  if (end < 0) return IOErr("lseek");
  if (end == 0) {
    // Fresh file: write both header slots.
    TML_RETURN_NOT_OK(s->WriteHeader());
    TML_RETURN_NOT_OK(s->WriteHeader());
  } else {
    TML_RETURN_NOT_OK(s->LoadFromFile());
  }
  return s;
}

Result<std::unique_ptr<ObjectStore>> ObjectStore::OpenReadOnly(
    const std::string& path) {
  TML_TELEMETRY_SPAN("store", "store.open");
  if (path.empty()) {
    return Status::Invalid("read-only open needs a store file path");
  }
  std::unique_ptr<ObjectStore> s(new ObjectStore());
  s->path_ = path;
  s->read_only_ = true;
  s->fd_ = ::open(path.c_str(), O_RDONLY);
  if (s->fd_ < 0) {
    if (errno == ENOENT) return Status::NotFound("no store file " + path);
    return IOErr("open " + path);
  }
  TML_RETURN_NOT_OK(s->LoadFromFile());
  return s;
}

Status ObjectStore::LoadFromFile() {
  char buf[kDataStart];
  ssize_t n = ::pread(fd_, buf, kDataStart, 0);
  if (n < 0) return IOErr("pread header");
  if (static_cast<size_t>(n) < kDataStart) {
    return Status::Corruption("store file shorter than headers");
  }
  Header a = ParseHeaderSlot(buf);
  Header b = ParseHeaderSlot(buf + kHeaderSlotSize);
  if (!a.valid && !b.valid) {
    return Status::Corruption("no valid store header");
  }
  const Header& h = (!b.valid || (a.valid && a.epoch >= b.epoch)) ? a : b;
  durable_length_ = h.durable_length;
  appended_length_ = h.durable_length;
  commit_epoch_ = h.epoch;
  next_oid_ = h.next_oid;

  // Replay committed records.
  std::string data(durable_length_, '\0');
  if (durable_length_ > 0) {
    ssize_t got = ::pread(fd_, data.data(), durable_length_, kDataStart);
    if (got < 0) return IOErr("pread data");
    if (static_cast<uint64_t>(got) < durable_length_) {
      return Status::Corruption("store data truncated below durable length");
    }
  }
  VarintReader r(data.data(), data.size());
  while (!r.AtEnd()) {
    TML_ASSIGN_OR_RETURN(uint64_t oid, r.ReadVarint());
    TML_ASSIGN_OR_RETURN(uint64_t type_raw, r.ReadVarint());
    TML_ASSIGN_OR_RETURN(uint64_t len, r.ReadVarint());
    TML_ASSIGN_OR_RETURN(std::string payload, r.ReadBytes(len));
    TML_ASSIGN_OR_RETURN(uint64_t crc, r.ReadVarint());
    uint32_t want = Crc32(payload);
    want = Crc32(&oid, sizeof(oid), want);
    if (crc != want) return Status::Corruption("record CRC mismatch");
    if (type_raw == kTombstoneType) {
      directory_.erase(oid);
      continue;
    }
    if (oid == kRootsOid) {
      // Root map record: sequence of (name, oid) pairs.
      roots_.clear();
      VarintReader rr(payload.data(), payload.size());
      while (!rr.AtEnd()) {
        TML_ASSIGN_OR_RETURN(uint64_t nlen, rr.ReadVarint());
        TML_ASSIGN_OR_RETURN(std::string name, rr.ReadBytes(nlen));
        TML_ASSIGN_OR_RETURN(uint64_t roid, rr.ReadVarint());
        roots_[name] = roid;
      }
      continue;
    }
    StoredObject obj;
    obj.type = static_cast<ObjType>(type_raw);
    obj.bytes = std::move(payload);
    directory_[oid] = std::move(obj);
  }
  return Status::OK();
}

Status ObjectStore::AppendRecord(Oid oid, ObjType type,
                                 std::string_view bytes, bool tombstone) {
  if (fd_ < 0) return Status::OK();  // in-memory
  std::string rec;
  PutVarint(&rec, oid);
  PutVarint(&rec, tombstone ? kTombstoneType
                            : static_cast<uint64_t>(type));
  PutVarint(&rec, bytes.size());
  rec.append(bytes);
  uint32_t crc = Crc32(bytes);
  crc = Crc32(&oid, sizeof(oid), crc);
  PutVarint(&rec, crc);
  TML_RETURN_NOT_OK(WriteFully(fd_, rec.data(), rec.size(),
                               kDataStart + appended_length_));
  appended_length_ += rec.size();
  return Status::OK();
}

Result<Oid> ObjectStore::Allocate(ObjType type, std::string_view bytes) {
  if (read_only_) return Status::Invalid("store opened read-only");
  Oid oid = next_oid_++;
  TML_RETURN_NOT_OK(AppendRecord(oid, type, bytes, false));
  directory_[oid] = StoredObject{type, std::string(bytes)};
  CountWrite(type, bytes.size());
  return oid;
}

Status ObjectStore::Put(Oid oid, ObjType type, std::string_view bytes) {
  if (read_only_) return Status::Invalid("store opened read-only");
  if (oid == kRootsOid) return Status::Invalid("OID 0 is reserved");
  TML_RETURN_NOT_OK(AppendRecord(oid, type, bytes, false));
  if (oid >= next_oid_) next_oid_ = oid + 1;
  directory_[oid] = StoredObject{type, std::string(bytes)};
  CountWrite(type, bytes.size());
  return Status::OK();
}

Result<StoredObject> ObjectStore::Get(Oid oid) const {
  auto it = directory_.find(oid);
  if (it == directory_.end()) {
    return Status::NotFound("no object with OID " + std::to_string(oid));
  }
  CountRead(it->second.type, it->second.bytes.size());
  return it->second;
}

Status ObjectStore::Delete(Oid oid) {
  if (read_only_) return Status::Invalid("store opened read-only");
  auto it = directory_.find(oid);
  if (it == directory_.end()) {
    return Status::NotFound("delete: no object with OID " +
                            std::to_string(oid));
  }
  TML_RETURN_NOT_OK(AppendRecord(oid, ObjType::kBlob, "", true));
  directory_.erase(it);
  return Status::OK();
}

Status ObjectStore::SetRoot(const std::string& name, Oid oid) {
  if (read_only_) return Status::Invalid("store opened read-only");
  roots_[name] = oid;
  return RewriteRoots();
}

Result<Oid> ObjectStore::GetRoot(const std::string& name) const {
  auto it = roots_.find(name);
  if (it == roots_.end()) return Status::NotFound("no root named " + name);
  return it->second;
}

Status ObjectStore::RewriteRoots() {
  if (fd_ < 0) return Status::OK();
  std::string payload;
  for (const auto& [name, oid] : roots_) {
    PutVarint(&payload, name.size());
    payload.append(name);
    PutVarint(&payload, oid);
  }
  return AppendRecord(kRootsOid, ObjType::kBlob, payload, false);
}

Status ObjectStore::WriteHeader() {
  if (fd_ < 0) return Status::OK();
  Header h;
  h.epoch = ++commit_epoch_;
  h.durable_length = durable_length_;
  h.next_oid = next_oid_;
  char buf[kHeaderSlotSize];
  BuildHeaderSlot(buf, h);
  // Alternate slots so the previous commit stays intact until this one is
  // fully on disk.
  uint64_t offset = (h.epoch % 2 == 0) ? kHeaderSlotSize : 0;
  TML_RETURN_NOT_OK(WriteFully(fd_, buf, kHeaderSlotSize, offset));
  if (::fsync(fd_) != 0) return IOErr("fsync header");
  return Status::OK();
}

Status ObjectStore::Commit() {
  if (read_only_) return Status::Invalid("store opened read-only");
  if (fd_ < 0) return Status::OK();
  TML_TELEMETRY_SPAN("store", "store.commit");
  static telemetry::Counter* commits =
      telemetry::Registry::Global().GetCounter("tml.store.commits");
  commits->Increment();
  if (::fsync(fd_) != 0) return IOErr("fsync data");
  durable_length_ = appended_length_;
  return WriteHeader();
}

Status ObjectStore::Compact() {
  if (read_only_) return Status::Invalid("store opened read-only");
  if (fd_ < 0) return Status::OK();
  TML_TELEMETRY_SPAN("store", "store.compact");
  std::string tmp_path = path_ + ".compact";
  int tmp = ::open(tmp_path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (tmp < 0) return IOErr("open " + tmp_path);
  int old_fd = fd_;
  fd_ = tmp;
  appended_length_ = 0;
  durable_length_ = 0;
  Status st = Status::OK();
  for (const auto& [oid, obj] : directory_) {
    st = AppendRecord(oid, obj.type, obj.bytes, false);
    if (!st.ok()) break;
  }
  if (st.ok()) st = RewriteRoots();
  if (st.ok()) {
    if (::fsync(tmp) != 0) st = IOErr("fsync compact");
  }
  if (st.ok()) {
    durable_length_ = appended_length_;
    commit_epoch_ = 0;
    st = WriteHeader();
    if (st.ok()) st = WriteHeader();  // both slots valid in the new file
  }
  if (!st.ok()) {
    ::close(tmp);
    ::unlink(tmp_path.c_str());
    fd_ = old_fd;
    return st;
  }
  ::close(old_fd);
  if (::rename(tmp_path.c_str(), path_.c_str()) != 0) {
    return IOErr("rename compact file");
  }
  return Status::OK();
}

size_t ObjectStore::live_bytes() const {
  size_t n = 0;
  for (const auto& [oid, obj] : directory_) n += obj.bytes.size();
  return n;
}

size_t ObjectStore::live_bytes(ObjType type) const {
  size_t n = 0;
  for (const auto& [oid, obj] : directory_) {
    if (obj.type == type) n += obj.bytes.size();
  }
  return n;
}

Result<uint64_t> ObjectStore::FileSize() const {
  if (fd_ < 0) return static_cast<uint64_t>(0);
  off_t end = ::lseek(fd_, 0, SEEK_END);
  if (end < 0) return IOErr("lseek");
  return static_cast<uint64_t>(end);
}

}  // namespace tml::store
