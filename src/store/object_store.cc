#include "store/object_store.h"

#include <cstring>

#include "support/crc32.h"
#include "support/varint.h"
#include "telemetry/flight.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace tml::store {

const char* ObjTypeName(ObjType type) {
  switch (type) {
    case ObjType::kBlob: return "blob";
    case ObjType::kPtml: return "ptml";
    case ObjType::kCode: return "code";
    case ObjType::kClosure: return "closure";
    case ObjType::kModule: return "module";
    case ObjType::kRelation: return "relation";
    case ObjType::kReflectCache: return "reflect-cache";
    case ObjType::kProfile: return "profile";
  }
  return "unknown";
}

namespace {

/// Per-ObjType read/write counters, resolved once.  Index is the raw
/// ObjType value; out-of-range types (corrupt input) fall back to slot 0.
struct StoreCounters {
  static constexpr int kTypes = 8;
  telemetry::Counter* read_ops[kTypes];
  telemetry::Counter* read_bytes[kTypes];
  telemetry::Counter* write_ops[kTypes];
  telemetry::Counter* write_bytes[kTypes];

  static const StoreCounters& Get() {
    static const StoreCounters* c = [] {
      auto* sc = new StoreCounters();
      auto& reg = telemetry::Registry::Global();
      for (int t = 0; t < kTypes; ++t) {
        telemetry::Labels labels{
            {"type", ObjTypeName(static_cast<ObjType>(t))}};
        sc->read_ops[t] = reg.GetCounter("tml.store.read_ops", labels);
        sc->read_bytes[t] = reg.GetCounter("tml.store.read_bytes", labels);
        sc->write_ops[t] = reg.GetCounter("tml.store.write_ops", labels);
        sc->write_bytes[t] = reg.GetCounter("tml.store.write_bytes", labels);
      }
      return sc;
    }();
    return *c;
  }

  static int Slot(ObjType type) {
    int t = static_cast<int>(type);
    return (t >= 0 && t < kTypes) ? t : 0;
  }
};

void CountWrite(ObjType type, size_t bytes) {
  const StoreCounters& c = StoreCounters::Get();
  int t = StoreCounters::Slot(type);
  c.write_ops[t]->Increment();
  c.write_bytes[t]->Add(bytes);
}

void CountRead(ObjType type, size_t bytes) {
  const StoreCounters& c = StoreCounters::Get();
  int t = StoreCounters::Slot(type);
  c.read_ops[t]->Increment();
  c.read_bytes[t]->Add(bytes);
}

/// Fault/recovery counters (DESIGN.md §8), resolved once.
struct RecoveryCounters {
  telemetry::Counter* salvage_opens;
  telemetry::Counter* quarantined;
  telemetry::Counter* truncated_bytes;
  telemetry::Counter* fsync_failures;
  telemetry::Counter* poisoned_rejects;

  static const RecoveryCounters& Get() {
    static const RecoveryCounters* c = [] {
      auto* rc = new RecoveryCounters();
      auto& reg = telemetry::Registry::Global();
      rc->salvage_opens = reg.GetCounter("tml.store.salvage.opens");
      rc->quarantined =
          reg.GetCounter("tml.store.salvage.quarantined_records");
      rc->truncated_bytes =
          reg.GetCounter("tml.store.salvage.truncated_bytes");
      rc->fsync_failures = reg.GetCounter("tml.store.fsync_failures");
      rc->poisoned_rejects = reg.GetCounter("tml.store.poisoned_rejects");
      return rc;
    }();
    return *c;
  }
};

// Two fixed-size header slots at the front of the file.
//   magic(8) epoch(8) durable_length(8) next_oid(8) crc(4) pad(4)
//
// The last magic byte is the format version: '1' CRCs payload+oid only
// (legacy), '2' also covers the record header varints.
constexpr char kMagicV1[8] = {'T', 'M', 'L', 'S', 'T', 'O', 'R', '1'};
constexpr char kMagicV2[8] = {'T', 'M', 'L', 'S', 'T', 'O', 'R', '2'};
constexpr size_t kHeaderSlotSize = 40;
constexpr size_t kDataStart = 2 * kHeaderSlotSize;

void EncodeU64(char* p, uint64_t v) { std::memcpy(p, &v, 8); }
uint64_t DecodeU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

struct Header {
  uint64_t epoch = 0;
  uint64_t durable_length = 0;
  uint64_t next_oid = 1;
  uint32_t format = 0;
  bool valid = false;
};

Header ParseHeaderSlot(const char* buf) {
  Header h;
  if (std::memcmp(buf, kMagicV1, 8) == 0) {
    h.format = 1;
  } else if (std::memcmp(buf, kMagicV2, 8) == 0) {
    h.format = 2;
  } else {
    return h;
  }
  uint32_t want_crc;
  std::memcpy(&want_crc, buf + 32, 4);
  if (Crc32(buf, 32) != want_crc) return h;
  h.epoch = DecodeU64(buf + 8);
  h.durable_length = DecodeU64(buf + 16);
  h.next_oid = DecodeU64(buf + 24);
  h.valid = true;
  return h;
}

void BuildHeaderSlot(char* buf, const Header& h, uint32_t format) {
  std::memset(buf, 0, kHeaderSlotSize);
  std::memcpy(buf, format >= 2 ? kMagicV2 : kMagicV1, 8);
  EncodeU64(buf + 8, h.epoch);
  EncodeU64(buf + 16, h.durable_length);
  EncodeU64(buf + 24, h.next_oid);
  uint32_t crc = Crc32(buf, 32);
  std::memcpy(buf + 32, &crc, 4);
}

constexpr Oid kRootsOid = kNullOid;  // reserved record id for the root map
constexpr uint8_t kTombstoneType = 0xFF;

}  // namespace

ObjectStore::~ObjectStore() = default;

Result<std::unique_ptr<ObjectStore>> ObjectStore::Open(
    const std::string& path, const OpenOptions& opts) {
  TML_TELEMETRY_SPAN("store", "store.open");
  std::unique_ptr<ObjectStore> s(new ObjectStore());
  s->path_ = path;
  s->vfs_ = opts.vfs != nullptr ? opts.vfs : Vfs::Default();
  s->recovery_ = opts.recovery;
  s->read_only_ = opts.read_only;
  if (path.empty()) {
    if (opts.read_only) {
      return Status::Invalid("read-only open needs a store file path");
    }
    return s;  // in-memory
  }

  if (!opts.read_only) {
    // A crash between writing and renaming <path>.compact leaves the temp
    // file behind; it was never the live store, so remove it.
    std::string leftover = path + ".compact";
    if (s->vfs_->Exists(leftover)) (void)s->vfs_->Unlink(leftover);
  }

  VfsOpenOptions fopts;
  fopts.read_only = opts.read_only;
  bool existed = s->vfs_->Exists(path);
  TML_ASSIGN_OR_RETURN(s->file_, s->vfs_->Open(path, fopts));
  if (!existed) {
    // Fresh file: write both header slots.  The directory entry becomes
    // durable with the first Commit().
    s->dir_sync_pending_ = true;
    TML_RETURN_NOT_OK(s->WriteHeader());
    TML_RETURN_NOT_OK(s->WriteHeader());
  } else {
    TML_RETURN_NOT_OK(s->LoadFromFile());
  }
  return s;
}

Result<std::unique_ptr<ObjectStore>> ObjectStore::OpenReadOnly(
    const std::string& path, const OpenOptions& opts) {
  OpenOptions ro = opts;
  ro.read_only = true;
  if (path.empty()) {
    return Status::Invalid("read-only open needs a store file path");
  }
  Vfs* vfs = ro.vfs != nullptr ? ro.vfs : Vfs::Default();
  if (!vfs->Exists(path)) return Status::NotFound("no store file " + path);
  return Open(path, ro);
}

Status ObjectStore::LoadFromFile() {
  const bool salvage = recovery_ == RecoveryPolicy::kSalvage;
  char buf[kDataStart];
  TML_ASSIGN_OR_RETURN(size_t n, file_->Read(buf, kDataStart, 0));
  TML_ASSIGN_OR_RETURN(uint64_t file_size, file_->Size());
  Header a, b;
  if (n < kDataStart) {
    if (!salvage) return Status::Corruption("store file shorter than headers");
  } else {
    a = ParseHeaderSlot(buf);
    b = ParseHeaderSlot(buf + kHeaderSlotSize);
  }

  uint64_t scan_length;  // committed region length to replay
  if (!a.valid && !b.valid) {
    if (!salvage) return Status::Corruption("no valid store header");
    // No trustworthy header: rebuild from the records themselves.  Every
    // record is CRC-framed, so the longest valid prefix of the data region
    // is exactly what a lost header committed at most.
    salvage_.salvaged = true;
    salvage_.header_rebuilt = true;
    format_ = 2;
    commit_epoch_ = 0;
    next_oid_ = 1;
    scan_length = file_size > kDataStart ? file_size - kDataStart : 0;
  } else {
    const Header& h = (!b.valid || (a.valid && a.epoch >= b.epoch)) ? a : b;
    format_ = h.format;
    commit_epoch_ = h.epoch;
    next_oid_ = h.next_oid;
    scan_length = h.durable_length;
    if (kDataStart + scan_length > file_size) {
      // Header promises more than the file holds (lost tail).
      if (!salvage) {
        return Status::Corruption("store data truncated below durable length");
      }
      salvage_.salvaged = true;
      salvage_.truncated_bytes += kDataStart + scan_length - file_size;
      scan_length = file_size - std::min<uint64_t>(file_size, kDataStart);
    }
  }

  std::string data(scan_length, '\0');
  if (scan_length > 0) {
    TML_ASSIGN_OR_RETURN(size_t got,
                         file_->Read(data.data(), scan_length, kDataStart));
    if (got < scan_length) {
      // Size changed under us (should not happen single-threaded).
      return Status::Corruption("store data shorter than just stat()ed");
    }
  }

  uint64_t valid_prefix = 0;
  TML_RETURN_NOT_OK(ReplayRecords(data, salvage, &valid_prefix));
  if (valid_prefix < scan_length) {
    salvage_.salvaged = true;
    salvage_.truncated_bytes += scan_length - valid_prefix;
  }
  // Mid-stream quarantines don't shorten the prefix (replay continues at
  // the next record boundary) but they are still a salvage event.
  if (salvage_.quarantined_records > 0) salvage_.salvaged = true;
  durable_length_ = valid_prefix;
  appended_length_ = valid_prefix;

  if (salvage_.salvaged) {
    const RecoveryCounters& rc = RecoveryCounters::Get();
    rc.salvage_opens->Increment();
    // Salvage engaging is a flight-recorder incident: when an auto-dump
    // dir is configured, the last seconds before the corrupted open get
    // written out for post-mortem.
    telemetry::FlightRecorder::Global().NoteIncident("salvage");
    rc.quarantined->Add(salvage_.quarantined_records);
    rc.truncated_bytes->Add(salvage_.truncated_bytes);
    if (!read_only_) {
      // Publish the salvaged extent so the next crash replays the same
      // state, and drop the untrusted tail.  Both slots when the header
      // was rebuilt (neither was valid).
      TML_RETURN_NOT_OK(WriteHeader());
      if (salvage_.header_rebuilt) TML_RETURN_NOT_OK(WriteHeader());
      (void)file_->Truncate(kDataStart + durable_length_);  // best effort
    }
  }
  return Status::OK();
}

Status ObjectStore::ReplayRecords(const std::string& data, bool salvage,
                                  uint64_t* valid_prefix) {
  VarintReader r(data.data(), data.size());
  *valid_prefix = 0;
  uint64_t max_oid = 0;
  while (!r.AtEnd()) {
    const size_t rec_start = r.position();
    // Decode one record; on structural damage (bad varint, length past the
    // end) the stream is unrecoverable from here: keep the prefix.
    auto oid_res = r.ReadVarint();
    auto type_res = oid_res.ok() ? r.ReadVarint() : oid_res;
    auto len_res = type_res.ok() ? r.ReadVarint() : type_res;
    if (!len_res.ok()) {
      if (salvage) return Status::OK();
      return len_res.status();
    }
    const uint64_t oid = *oid_res;
    const uint64_t type_raw = *type_res;
    const uint64_t len = *len_res;
    const size_t header_len = r.position() - rec_start;
    auto payload_res = r.ReadBytes(len);
    auto crc_res = payload_res.ok() ? r.ReadVarint()
                                    : Result<uint64_t>(payload_res.status());
    if (!crc_res.ok()) {
      if (salvage) return Status::OK();
      return crc_res.status();
    }
    const std::string& payload = *payload_res;

    uint32_t want;
    if (format_ >= 2) {
      want = Crc32(data.data() + rec_start, header_len);
      want = Crc32(payload, want);
    } else {
      want = Crc32(payload);
      want = Crc32(&oid, sizeof(oid), want);
    }
    bool good = *crc_res == want;
    // A type tag outside the enum means the record was written by nothing
    // we know — a flipped bit (v1, where the CRC does not cover the tag)
    // or a foreign format.  Never let it decode as a bogus ObjType.
    if (good && type_raw != kTombstoneType && type_raw > kMaxObjType) {
      good = false;
    }
    if (!good) {
      if (!salvage) {
        return Status::Corruption(
            type_raw != kTombstoneType && type_raw > kMaxObjType
                ? "record type tag out of range"
                : "record CRC mismatch");
      }
      // The framing parsed but the content is damaged: quarantine just
      // this record (an older version of the OID, if any, stays live) and
      // keep replaying at the next boundary.
      ++salvage_.quarantined_records;
      *valid_prefix = r.position();
      continue;
    }

    if (oid != kRootsOid && oid > max_oid) max_oid = oid;
    if (type_raw == kTombstoneType) {
      directory_.erase(oid);
      *valid_prefix = r.position();
      continue;
    }
    if (oid == kRootsOid) {
      // Root map record: sequence of (name, oid) pairs.
      std::unordered_map<std::string, Oid> new_roots;
      VarintReader rr(payload.data(), payload.size());
      bool roots_ok = true;
      while (!rr.AtEnd()) {
        auto nlen = rr.ReadVarint();
        auto name = nlen.ok() ? rr.ReadBytes(*nlen)
                              : Result<std::string>(nlen.status());
        auto roid = name.ok() ? rr.ReadVarint()
                              : Result<uint64_t>(name.status());
        if (!roid.ok()) {
          if (!salvage) return roid.status();
          roots_ok = false;
          break;
        }
        new_roots[*name] = *roid;
      }
      if (roots_ok) {
        roots_ = std::move(new_roots);
      } else {
        ++salvage_.quarantined_records;  // keep the previous root map
      }
      *valid_prefix = r.position();
      continue;
    }
    StoredObject obj;
    obj.type = static_cast<ObjType>(type_raw);
    obj.bytes = std::move(*payload_res);
    directory_[oid] = std::move(obj);
    *valid_prefix = r.position();
  }
  // A rebuilt header has no next-oid: never re-issue a replayed OID.
  if (next_oid_ <= max_oid) next_oid_ = max_oid + 1;
  return Status::OK();
}

Status ObjectStore::CheckWritable() {
  if (read_only_) return Status::Invalid("store opened read-only");
  if (!poison_.ok()) {
    RecoveryCounters::Get().poisoned_rejects->Increment();
    return poison_;
  }
  return Status::OK();
}

void ObjectStore::Poison(const Status& cause) {
  RecoveryCounters::Get().fsync_failures->Increment();
  if (poison_.ok()) {
    poison_ = Status::IOError(
        "store poisoned (failed fsync is never retried): " + cause.message());
  }
}

Status ObjectStore::AppendRecord(Oid oid, ObjType type,
                                 std::string_view bytes, bool tombstone) {
  if (file_ == nullptr) return Status::OK();  // in-memory
  std::string rec;
  PutVarint(&rec, oid);
  PutVarint(&rec, tombstone ? kTombstoneType
                            : static_cast<uint64_t>(type));
  PutVarint(&rec, bytes.size());
  uint32_t crc;
  if (format_ >= 2) {
    crc = Crc32(rec);  // covers the oid/type/length varints
    crc = Crc32(bytes, crc);
  } else {
    crc = Crc32(bytes);
    crc = Crc32(&oid, sizeof(oid), crc);
  }
  rec.append(bytes);
  PutVarint(&rec, crc);
  TML_RETURN_NOT_OK(file_->Write(rec.data(), rec.size(),
                                 kDataStart + appended_length_));
  appended_length_ += rec.size();
  return Status::OK();
}

Result<Oid> ObjectStore::Allocate(ObjType type, std::string_view bytes) {
  TML_RETURN_NOT_OK(CheckWritable());
  Oid oid = next_oid_++;
  TML_RETURN_NOT_OK(AppendRecord(oid, type, bytes, false));
  directory_[oid] = StoredObject{type, std::string(bytes)};
  CountWrite(type, bytes.size());
  return oid;
}

Status ObjectStore::Put(Oid oid, ObjType type, std::string_view bytes) {
  TML_RETURN_NOT_OK(CheckWritable());
  if (oid == kRootsOid) return Status::Invalid("OID 0 is reserved");
  TML_RETURN_NOT_OK(AppendRecord(oid, type, bytes, false));
  if (oid >= next_oid_) next_oid_ = oid + 1;
  directory_[oid] = StoredObject{type, std::string(bytes)};
  CountWrite(type, bytes.size());
  return Status::OK();
}

Result<StoredObject> ObjectStore::Get(Oid oid) const {
  auto it = directory_.find(oid);
  if (it == directory_.end()) {
    return Status::NotFound("no object with OID " + std::to_string(oid));
  }
  CountRead(it->second.type, it->second.bytes.size());
  return it->second;
}

Status ObjectStore::Delete(Oid oid) {
  TML_RETURN_NOT_OK(CheckWritable());
  auto it = directory_.find(oid);
  if (it == directory_.end()) {
    return Status::NotFound("delete: no object with OID " +
                            std::to_string(oid));
  }
  TML_RETURN_NOT_OK(AppendRecord(oid, ObjType::kBlob, "", true));
  directory_.erase(it);
  return Status::OK();
}

Status ObjectStore::SetRoot(const std::string& name, Oid oid) {
  TML_RETURN_NOT_OK(CheckWritable());
  roots_[name] = oid;
  return RewriteRoots();
}

Result<Oid> ObjectStore::GetRoot(const std::string& name) const {
  auto it = roots_.find(name);
  if (it == roots_.end()) return Status::NotFound("no root named " + name);
  return it->second;
}

Status ObjectStore::RewriteRoots() {
  if (file_ == nullptr) return Status::OK();
  std::string payload;
  for (const auto& [name, oid] : roots_) {
    PutVarint(&payload, name.size());
    payload.append(name);
    PutVarint(&payload, oid);
  }
  return AppendRecord(kRootsOid, ObjType::kBlob, payload, false);
}

Status ObjectStore::WriteHeader() {
  if (file_ == nullptr) return Status::OK();
  Header h;
  h.epoch = ++commit_epoch_;
  h.durable_length = durable_length_;
  h.next_oid = next_oid_;
  char buf[kHeaderSlotSize];
  BuildHeaderSlot(buf, h, format_);
  // Alternate slots so the previous commit stays intact until this one is
  // fully on disk.
  uint64_t offset = (h.epoch % 2 == 0) ? kHeaderSlotSize : 0;
  TML_RETURN_NOT_OK(file_->Write(buf, kHeaderSlotSize, offset));
  Status st = file_->Sync();
  if (!st.ok()) {
    Poison(st);
    return poison_;
  }
  return Status::OK();
}

Status ObjectStore::Commit() {
  TML_RETURN_NOT_OK(CheckWritable());
  if (file_ == nullptr) return Status::OK();
  TML_TELEMETRY_SPAN("store", "store.commit");
  static telemetry::Counter* commits =
      telemetry::Registry::Global().GetCounter("tml.store.commits");
  commits->Increment();
  Status st = file_->Sync();
  if (!st.ok()) {
    Poison(st);
    return poison_;
  }
  if (dir_sync_pending_) {
    // First commit of a freshly created file: the data is durable but the
    // directory entry may not be — a crash could drop the whole file.
    st = vfs_->SyncParentDir(path_);
    if (!st.ok()) {
      Poison(st);
      return poison_;
    }
    dir_sync_pending_ = false;
  }
  durable_length_ = appended_length_;
  return WriteHeader();
}

Status ObjectStore::Compact() {
  TML_RETURN_NOT_OK(CheckWritable());
  if (file_ == nullptr) return Status::OK();
  TML_TELEMETRY_SPAN("store", "store.compact");
  std::string tmp_path = path_ + ".compact";

  // Snapshot rewind state: until the rename lands, the original file stays
  // authoritative and any failure must leave the store exactly as it was.
  std::unique_ptr<VfsFile> old_file = std::move(file_);
  const uint64_t old_appended = appended_length_;
  const uint64_t old_durable = durable_length_;
  const uint64_t old_epoch = commit_epoch_;
  const uint32_t old_format = format_;

  auto restore = [&](std::unique_ptr<VfsFile> back) {
    file_ = std::move(back);
    appended_length_ = old_appended;
    durable_length_ = old_durable;
    commit_epoch_ = old_epoch;
    format_ = old_format;
  };

  VfsOpenOptions topts;
  topts.truncate = true;
  auto tmp = vfs_->Open(tmp_path, topts);
  if (!tmp.ok()) {
    file_ = std::move(old_file);
    return tmp.status();
  }
  file_ = std::move(*tmp);
  appended_length_ = 0;
  durable_length_ = 0;
  format_ = 2;  // compaction rewrites every record: upgrade legacy stores
  Status st = Status::OK();
  for (const auto& [oid, obj] : directory_) {
    st = AppendRecord(oid, obj.type, obj.bytes, false);
    if (!st.ok()) break;
  }
  if (st.ok()) st = RewriteRoots();
  if (st.ok()) {
    st = file_->Sync();
    // The temp file is scratch until renamed: a failed sync poisons
    // nothing, the original store is still fully intact.
  }
  if (st.ok()) {
    durable_length_ = appended_length_;
    commit_epoch_ = 0;
    st = WriteHeader();
    if (st.ok()) st = WriteHeader();  // both slots valid in the new file
    if (!st.ok()) poison_ = Status::OK();  // tmp-file fsync: not our store
  }
  if (!st.ok()) {
    restore(std::move(old_file));
    (void)vfs_->Unlink(tmp_path);
    return st;
  }
  old_file.reset();  // close the original before replacing its name
  st = vfs_->Rename(tmp_path, path_);
  if (!st.ok()) {
    // The store file is untouched on disk; re-point fd_/path_ state at it
    // instead of leaving the store writing to the orphaned temp file.
    auto back = vfs_->Open(path_, VfsOpenOptions{});
    (void)vfs_->Unlink(tmp_path);
    if (!back.ok()) {
      Poison(back.status());
      return st;
    }
    restore(std::move(*back));
    return st;
  }
  // Make the replacement durable; to an observer the swap only "happened"
  // once the directory entry is synced (fsyncgate applies here too).
  st = vfs_->SyncParentDir(path_);
  if (!st.ok()) {
    Poison(st);
    return poison_;
  }
  dir_sync_pending_ = false;
  return Status::OK();
}

size_t ObjectStore::live_bytes() const {
  size_t n = 0;
  for (const auto& [oid, obj] : directory_) n += obj.bytes.size();
  return n;
}

size_t ObjectStore::live_bytes(ObjType type) const {
  size_t n = 0;
  for (const auto& [oid, obj] : directory_) {
    if (obj.type == type) n += obj.bytes.size();
  }
  return n;
}

Result<uint64_t> ObjectStore::FileSize() const {
  if (file_ == nullptr) return static_cast<uint64_t>(0);
  return file_->Size();
}

}  // namespace tml::store
