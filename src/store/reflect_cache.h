// Persistent reflect-optimize cache records.
//
// Every `reflect.optimize` run is keyed by an FNV-1a fingerprint of its
// inputs: the PTML bytes and closure-record bindings of all transitively
// collected declarations (in first-occurrence order) plus the optimizer
// options.  The regenerated kCode/kClosure/kPtml records are ordinary
// store objects; this module defines the durable index that maps a
// fingerprint to them, stored as a single kReflectCache record reachable
// from the "reflect-cache" root.  A binding OID change, PTML change, or
// option change alters the fingerprint, so stale entries are simply never
// looked up again; Compact() retains the index and its targets because
// both live in the store directory.
//
// Wire format (all integers varint):
//
//   magic 'R','C','1'
//   count, (fingerprint, closure-oid, code-oid, ptml-oid)*

#ifndef TML_STORE_REFLECT_CACHE_H_
#define TML_STORE_REFLECT_CACHE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/oid.h"
#include "support/status.h"

namespace tml::store {

/// Name of the store root that anchors the cache index record.
inline constexpr char kReflectCacheRoot[] = "reflect-cache";

struct ReflectCacheEntry {
  uint64_t fingerprint = 0;
  Oid closure_oid = kNullOid;  ///< regenerated closure record (kClosure)
  Oid code_oid = kNullOid;     ///< regenerated code object (kCode)
  Oid ptml_oid = kNullOid;     ///< PTML attached to the regenerated code

  bool operator==(const ReflectCacheEntry& o) const {
    return fingerprint == o.fingerprint && closure_oid == o.closure_oid &&
           code_oid == o.code_oid && ptml_oid == o.ptml_oid;
  }
};

/// Encode the index; entries are sorted by fingerprint so the record bytes
/// are deterministic for a given cache state.
std::string EncodeReflectCache(std::vector<ReflectCacheEntry> entries);

/// Decode an index record (bounds-checked; corrupt counts are rejected
/// before any allocation is sized from them).
Result<std::vector<ReflectCacheEntry>> DecodeReflectCache(
    std::string_view bytes);

}  // namespace tml::store

#endif  // TML_STORE_REFLECT_CACHE_H_
