// PTML — the compact persistent representation of TML trees (§4.1).
//
// For every exported function the compiler back end attaches a PTML record
// to the generated code; at run time the system maps PTML back into TML,
// re-invokes the optimizer, regenerates code and links it into the running
// program.  Decoding also returns the function's free variables in first-
// occurrence order: these are the identifiers whose R-values ([identifier,
// OID] pairs) are re-established from the closure record before the
// reflective optimizer runs.
//
// Wire format (all integers varint, reals 8-byte little-endian):
//
//   magic 'P','T','1'
//   string-table:  count, (len bytes)*          -- names and prim names
//   free-vars:     count, (name-idx, sort)*
//   value tree, preorder:
//     0 nil | 1 bool b | 2 int zigzag | 3 char b | 4 real f64
//     5 string str-idx | 6 oid varint | 7 var index        (see below)
//     8 prim name-idx
//     9 abs nparams (name-idx sort)* body-app
//     10 app nelems value*
//
// Variable occurrences refer to a single numbering: free variables first,
// then binders in preorder order of appearance.

#ifndef TML_STORE_PTML_H_
#define TML_STORE_PTML_H_

#include <string>
#include <string_view>
#include <vector>

#include "core/module.h"
#include "core/node.h"
#include "core/primitive_registry.h"
#include "support/status.h"

namespace tml::store {

/// Encode an abstraction (free variables allowed) into PTML bytes.
std::string EncodePtml(const ir::Module& m, const ir::Abstraction* abs);

struct PtmlDecoded {
  const ir::Abstraction* abs = nullptr;
  /// Free variables in first-occurrence order (the §4.1 binding list).
  std::vector<ir::Variable*> free_vars;
};

/// Decode PTML bytes into `m`, resolving primitive names against `prims`.
Result<PtmlDecoded> DecodePtml(ir::Module* m,
                               const ir::PrimitiveRegistry& prims,
                               std::string_view bytes);

}  // namespace tml::store

#endif  // TML_STORE_PTML_H_
