// The persistent object store (the Tycoon store of §2.1/§4.1).
//
// TML terms reference "arbitrarily complex objects (tables, indices, ADT
// values)" through OIDs; compiled code carries its persistent TML encoding
// (PTML) in the same store; closure records persist [identifier, OID]
// binding pairs.  This store provides the durable OID -> typed-bytes map
// all of that sits on.
//
// Design: a single append-only file.
//
//   [header A | header B | record record record ...]
//
// Each record is  (oid, type, payload-length, payload, crc32)  with varint
// integers.  Updates append a new version (last-writer-wins on recovery);
// deletes append a tombstone.  Commit() fsyncs the data then publishes the
// new durable length + next-oid through whichever header slot is older —
// a torn commit leaves the previous header valid, so commits are atomic.
// Open() replays records up to the durable length, verifying CRCs.
// Compact() rewrites live records and truncates.
//
// Durability rules (see DESIGN.md §8):
//   * All file I/O goes through a Vfs (support/vfs.h), so fault-injection
//     tests exercise the exact production code paths.
//   * Format v2 ("TMLSTOR2") CRCs cover the record header varints
//     (oid/type/length) as well as the payload, and replay rejects
//     out-of-range type tags; v1 stores still open (and are upgraded to
//     v2 by Compact()).
//   * A failed fsync POISONS the store: every later mutation fails with
//     the sticky cause until the store is reopened.  A retried fsync that
//     "succeeds" proves nothing about the pages that failed the first
//     time (fsyncgate), so we never trust one.
//   * Open(..., kSalvage) never refuses a damaged store: it keeps the
//     longest valid record prefix, quarantines individually CRC-corrupt
//     records, and truncates the durable length — the salvage_report()
//     says what was lost.

#ifndef TML_STORE_OBJECT_STORE_H_
#define TML_STORE_OBJECT_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/oid.h"
#include "support/status.h"
#include "support/vfs.h"

namespace tml::store {

/// Type tag of a stored object; the store itself treats payloads as opaque.
enum class ObjType : uint8_t {
  kBlob = 0,      ///< untyped bytes
  kPtml = 1,      ///< persistent TML encoding of a function (§4.1)
  kCode = 2,      ///< serialized TVM code object
  kClosure = 3,   ///< closure record: code OID + R-value bindings
  kModule = 4,       ///< module record: export name -> OID
  kRelation = 5,     ///< relation payload (schema + tuples)
  kReflectCache = 6, ///< reflect-optimize cache index (see reflect_cache.h)
  kProfile = 7,      ///< hotness profile of the adaptive optimizer
                     ///< (see adaptive/profile.h); survives restarts so
                     ///< re-opened databases keep their heat
};

/// Highest valid ObjType value; replay rejects raw tags beyond this.
inline constexpr uint64_t kMaxObjType = static_cast<uint64_t>(ObjType::kProfile);

/// Lowercase human-readable name of an ObjType ("ptml", "closure", ...);
/// also the `type=` label value on the store's telemetry counters.
const char* ObjTypeName(ObjType type);

struct StoredObject {
  ObjType type = ObjType::kBlob;
  std::string bytes;
};

/// What Open() does with a store that fails integrity checks.
enum class RecoveryPolicy {
  kStrict,   ///< refuse to open (the pre-existing behavior)
  kSalvage,  ///< open what can be proven good; see ObjectStore docs
};

/// What salvage recovery had to do to open the store; all zero/false for
/// a clean open.
struct SalvageReport {
  bool salvaged = false;            ///< any recovery action was taken
  bool header_rebuilt = false;      ///< no valid header slot; records scanned
  uint64_t quarantined_records = 0; ///< CRC-corrupt records skipped
  uint64_t truncated_bytes = 0;     ///< committed bytes dropped from the tail
};

struct OpenOptions {
  Vfs* vfs = nullptr;  ///< null => Vfs::Default() (posix)
  RecoveryPolicy recovery = RecoveryPolicy::kStrict;
  bool read_only = false;
};

class ObjectStore {
 public:
  /// Open (or create) a store file.  Pass the empty string for a purely
  /// in-memory store (used heavily by tests and benchmarks).
  static Result<std::unique_ptr<ObjectStore>> Open(const std::string& path,
                                                   const OpenOptions& opts);
  static Result<std::unique_ptr<ObjectStore>> Open(const std::string& path) {
    return Open(path, OpenOptions{});
  }

  /// Open an existing store file without write access (inspection tools).
  /// Fails with NotFound/IOError when the file does not exist; every
  /// mutating operation on the returned store fails with Invalid.
  static Result<std::unique_ptr<ObjectStore>> OpenReadOnly(
      const std::string& path, const OpenOptions& opts);
  static Result<std::unique_ptr<ObjectStore>> OpenReadOnly(
      const std::string& path) {
    return OpenReadOnly(path, OpenOptions{});
  }

  ~ObjectStore();
  ObjectStore(const ObjectStore&) = delete;
  ObjectStore& operator=(const ObjectStore&) = delete;

  /// Store a new object, returning its fresh OID.
  Result<Oid> Allocate(ObjType type, std::string_view bytes);

  /// Overwrite the object at `oid` (appends a new version).
  Status Put(Oid oid, ObjType type, std::string_view bytes);

  /// Fetch an object.
  Result<StoredObject> Get(Oid oid) const;

  bool Contains(Oid oid) const { return directory_.count(oid) != 0; }

  /// Remove an object (appends a tombstone).
  Status Delete(Oid oid);

  /// Durably publish everything written so far (atomic w.r.t. crashes).
  Status Commit();

  /// Rewrite the file with only live objects; implies Commit().
  Status Compact();

  /// Named roots (e.g. the module table) survive restarts.
  Status SetRoot(const std::string& name, Oid oid);
  Result<Oid> GetRoot(const std::string& name) const;
  std::vector<std::string> RootNames() const {
    std::vector<std::string> names;
    names.reserve(roots_.size());
    for (const auto& [name, oid] : roots_) names.push_back(name);
    return names;
  }

  /// Non-OK after a failed fsync: the durable state of recent writes is
  /// unknown, so every further mutation returns this sticky status until
  /// the store is reopened (which replays only proven-durable state).
  const Status& poisoned() const { return poison_; }

  /// What salvage recovery did at Open (all-zero for clean opens).
  const SalvageReport& salvage_report() const { return salvage_; }

  /// On-disk format version (2 for new stores; 1 for legacy files until
  /// their next Compact).
  uint32_t format_version() const { return format_; }

  // ---- accounting (E2 uses these) ----
  size_t num_objects() const { return directory_.size(); }
  /// Total payload bytes of live objects, optionally restricted to a type.
  size_t live_bytes() const;
  size_t live_bytes(ObjType type) const;
  /// Current file size in bytes (0 for in-memory stores).
  Result<uint64_t> FileSize() const;

 private:
  ObjectStore() = default;

  Status CheckWritable();
  void Poison(const Status& cause);
  Status AppendRecord(Oid oid, ObjType type, std::string_view bytes,
                      bool tombstone);
  Status LoadFromFile();
  /// Replay `data` (the committed region); returns the byte length of the
  /// longest valid record prefix via `valid_prefix`.
  Status ReplayRecords(const std::string& data, bool salvage,
                       uint64_t* valid_prefix);
  Status WriteHeader();
  Status RewriteRoots();

  std::string path_;  // empty => in-memory
  Vfs* vfs_ = nullptr;
  std::unique_ptr<VfsFile> file_;  // null => in-memory
  bool read_only_ = false;
  RecoveryPolicy recovery_ = RecoveryPolicy::kStrict;
  uint32_t format_ = 2;
  Status poison_;                 // OK unless an fsync failed
  SalvageReport salvage_;
  bool dir_sync_pending_ = false;  // fresh file: entry not yet durable
  uint64_t durable_length_ = 0;  // committed byte count past the headers
  uint64_t appended_length_ = 0;
  uint64_t commit_epoch_ = 0;
  Oid next_oid_ = 1;

  std::unordered_map<Oid, StoredObject> directory_;
  std::unordered_map<std::string, Oid> roots_;
};

}  // namespace tml::store

#endif  // TML_STORE_OBJECT_STORE_H_
