// Status / Result<T> error-handling primitives in the Arrow/RocksDB idiom.
//
// Library code never throws; fallible operations return Status (no payload)
// or Result<T> (payload or error).  The TML-level exception mechanism
// (pushHandler/popHandler/raise, paper Fig. 2) is unrelated: those are
// continuations inside the object language, not C++ control flow.

#ifndef TML_SUPPORT_STATUS_H_
#define TML_SUPPORT_STATUS_H_

#include <cassert>
#include <memory>
#include <string>
#include <utility>
#include <variant>

namespace tml {

/// Coarse error taxonomy shared by all subsystems.
enum class StatusCode : int {
  kOk = 0,
  kInvalid,        ///< malformed input (parser, validator, decoder)
  kNotFound,       ///< missing binding, OID, file, module member
  kAlreadyExists,  ///< duplicate definition / OID
  kOutOfRange,     ///< index or capacity violation
  kIOError,        ///< object-store file I/O failure
  kCorruption,     ///< store or PTML bytes fail integrity checks
  kUnimplemented,  ///< feature hole (should not be reachable from tests)
  kRuntimeError,   ///< VM-level failure that is not a TML exception
  kDeadline,       ///< wall-clock deadline exceeded (server request limits)
};

/// Human-readable name for a StatusCode ("Invalid", "IOError", ...).
const char* StatusCodeToString(StatusCode code);

/// An error code plus message; cheap to move, empty when OK.
class Status {
 public:
  Status() = default;

  static Status OK() { return Status(); }

  static Status Invalid(std::string msg) {
    return Status(StatusCode::kInvalid, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status RuntimeError(std::string msg) {
    return Status(StatusCode::kRuntimeError, std::move(msg));
  }
  static Status Deadline(std::string msg) {
    return Status(StatusCode::kDeadline, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };

  Status(StatusCode code, std::string msg)
      : rep_(std::make_shared<Rep>(Rep{code, std::move(msg)})) {}

  std::shared_ptr<Rep> rep_;  // null == OK; shared so Status copies are cheap
};

/// Either a value of type T or a non-OK Status.
template <typename T>
class Result {
 public:
  Result(T value) : var_(std::move(value)) {}  // NOLINT implicit
  Result(Status status) : var_(std::move(status)) {  // NOLINT implicit
    assert(!std::get<Status>(var_).ok() && "Result from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(var_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(var_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(var_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(var_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(var_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> var_;
};

// Propagate a non-OK Status to the caller.
#define TML_RETURN_NOT_OK(expr)                \
  do {                                         \
    ::tml::Status _st = (expr);                \
    if (!_st.ok()) return _st;                 \
  } while (0)

#define TML_CONCAT_IMPL(a, b) a##b
#define TML_CONCAT(a, b) TML_CONCAT_IMPL(a, b)

// Evaluate a Result<T> expression; on error propagate, else bind the value.
#define TML_ASSIGN_OR_RETURN(lhs, rexpr)                      \
  TML_ASSIGN_OR_RETURN_IMPL(TML_CONCAT(_res_, __LINE__), lhs, rexpr)

#define TML_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                              \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value();

}  // namespace tml

#endif  // TML_SUPPORT_STATUS_H_
