// CRC-32 (ISO-HDLC polynomial) for object-store record integrity checking.

#ifndef TML_SUPPORT_CRC32_H_
#define TML_SUPPORT_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace tml {

/// Incremental CRC-32; pass the previous result as `seed` to chain.
inline uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0) {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = ~seed;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

inline uint32_t Crc32(std::string_view s, uint32_t seed = 0) {
  return Crc32(s.data(), s.size(), seed);
}

}  // namespace tml

#endif  // TML_SUPPORT_CRC32_H_
