#include "support/vfs.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace tml {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

// ---- TYCOON_FAULT_* env knobs ----------------------------------------------
//
// A single process-wide schedule: fallible syscalls are numbered from 1 in
// issue order across all files; syscall FAIL_AT (and, when sticky, every
// later one) fails with the configured errno before touching the kernel.

struct EnvFaultPlan {
  uint64_t fail_at = 0;  // 0 => disabled
  int fault_errno = EIO;
  bool sticky = true;

  static const EnvFaultPlan& Get() {
    static const EnvFaultPlan plan = [] {
      EnvFaultPlan p;
      if (const char* at = std::getenv("TYCOON_FAULT_FAIL_AT")) {
        p.fail_at = std::strtoull(at, nullptr, 10);
      }
      if (const char* en = std::getenv("TYCOON_FAULT_ERRNO")) {
        if (std::strcmp(en, "enospc") == 0 || std::strcmp(en, "ENOSPC") == 0) {
          p.fault_errno = ENOSPC;
        }
      }
      if (const char* st = std::getenv("TYCOON_FAULT_STICKY")) {
        p.sticky = std::strcmp(st, "0") != 0;
      }
      return p;
    }();
    return plan;
  }
};

/// Returns non-OK when the env-configured fault schedule says this syscall
/// should fail.  Counts only when a schedule is active, so the common case
/// is one branch on a constant.
Status MaybeEnvFault(const char* what) {
  const EnvFaultPlan& plan = EnvFaultPlan::Get();
  if (plan.fail_at == 0) return Status::OK();
  static std::atomic<uint64_t> ops{0};
  uint64_t n = ops.fetch_add(1, std::memory_order_relaxed) + 1;
  if (n == plan.fail_at || (plan.sticky && n > plan.fail_at)) {
    return Status::IOError(std::string(what) + ": injected fault (op " +
                           std::to_string(n) + "): " +
                           std::strerror(plan.fault_errno));
  }
  return Status::OK();
}

// ---- posix implementation --------------------------------------------------

class PosixFile final : public VfsFile {
 public:
  explicit PosixFile(int fd) : fd_(fd) {}
  ~PosixFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Result<size_t> Read(void* buf, size_t n, uint64_t offset) override {
    size_t done = 0;
    char* p = static_cast<char*>(buf);
    while (done < n) {
      ssize_t got = ::pread(fd_, p + done, n - done,
                            static_cast<off_t>(offset + done));
      if (got < 0) {
        if (errno == EINTR) continue;
        return Errno("pread");
      }
      if (got == 0) break;  // EOF
      done += static_cast<size_t>(got);
    }
    return done;
  }

  Status Write(const void* buf, size_t n, uint64_t offset) override {
    TML_RETURN_NOT_OK(MaybeEnvFault("pwrite"));
    const char* p = static_cast<const char*>(buf);
    while (n > 0) {
      ssize_t wrote = ::pwrite(fd_, p, n, static_cast<off_t>(offset));
      if (wrote < 0) {
        if (errno == EINTR) continue;
        return Errno("pwrite");
      }
      p += wrote;
      n -= static_cast<size_t>(wrote);
      offset += static_cast<uint64_t>(wrote);
    }
    return Status::OK();
  }

  Status Sync() override {
    TML_RETURN_NOT_OK(MaybeEnvFault("fsync"));
    if (::fsync(fd_) != 0) return Errno("fsync");
    return Status::OK();
  }

  Result<uint64_t> Size() override {
    struct stat st;
    if (::fstat(fd_, &st) != 0) return Errno("fstat");
    return static_cast<uint64_t>(st.st_size);
  }

  Status Truncate(uint64_t size) override {
    TML_RETURN_NOT_OK(MaybeEnvFault("ftruncate"));
    if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
      return Errno("ftruncate");
    }
    return Status::OK();
  }

 private:
  int fd_;
};

class PosixVfs final : public Vfs {
 public:
  Result<std::unique_ptr<VfsFile>> Open(const std::string& path,
                                        const VfsOpenOptions& opts) override {
    int flags;
    if (opts.read_only) {
      flags = O_RDONLY;
    } else {
      flags = O_RDWR;
      if (opts.create) flags |= O_CREAT;
      if (opts.truncate) flags |= O_TRUNC;
      TML_RETURN_NOT_OK(MaybeEnvFault("open"));
    }
    int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) {
      if (errno == ENOENT) return Status::NotFound("no such file: " + path);
      return Errno("open " + path);
    }
    return std::unique_ptr<VfsFile>(new PosixFile(fd));
  }

  Status Rename(const std::string& from, const std::string& to) override {
    TML_RETURN_NOT_OK(MaybeEnvFault("rename"));
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return Errno("rename " + from + " -> " + to);
    }
    return Status::OK();
  }

  Status Unlink(const std::string& path) override {
    TML_RETURN_NOT_OK(MaybeEnvFault("unlink"));
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return Errno("unlink " + path);
    }
    return Status::OK();
  }

  Status SyncParentDir(const std::string& path) override {
    TML_RETURN_NOT_OK(MaybeEnvFault("fsync-dir"));
    std::string dir;
    size_t slash = path.find_last_of('/');
    dir = (slash == std::string::npos) ? "." : path.substr(0, slash);
    if (dir.empty()) dir = "/";
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) return Errno("open dir " + dir);
    int rc = ::fsync(fd);
    int saved = errno;
    ::close(fd);
    if (rc != 0) {
      errno = saved;
      return Errno("fsync dir " + dir);
    }
    return Status::OK();
  }

  bool Exists(const std::string& path) override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
  }
};

}  // namespace

Vfs* Vfs::Default() {
  static PosixVfs vfs;
  return &vfs;
}

}  // namespace tml
