// Net: the socket I/O seam, mirroring the Vfs design at the network
// boundary (DESIGN.md §13).
//
// Production code calls recv(2)/send(2) through Net::Default(); tests and
// chaos harnesses substitute a FaultNet that perturbs the byte stream
// deterministically:
//
//   * short I/O — each Recv/Send moves only 1..short_io bytes, chopping
//     frames at arbitrary boundaries (exercises kNeedMore reassembly and
//     partial-write flushing);
//   * EAGAIN storms — every `eagain_every`-th op reports EAGAIN without
//     moving bytes (exercises level-triggered re-arm paths);
//   * mid-frame resets — ops after `reset_after_ops` fail with
//     ECONNRESET, optionally sticky (a peer that vanished);
//   * stalls — every op first sleeps `stall_ms` (a slow or congested
//     link; exercises idle/slow-read sweeps).
//
// Net::Default() honors TYCOON_NETFAULT_* environment knobs, exactly like
// Vfs::Default() honors TYCOON_FAULT_*, so a stock tycd binary can be run
// under network chaos with zero code changes:
//
//   TYCOON_NETFAULT_SHORT_IO=<n>      cap each op at 1..n bytes
//   TYCOON_NETFAULT_EAGAIN_EVERY=<n>  every n-th op returns EAGAIN
//   TYCOON_NETFAULT_RESET_AT=<n>      ops after the n-th fail ECONNRESET
//   TYCOON_NETFAULT_STICKY=0|1        resets keep failing (default 0)
//   TYCOON_NETFAULT_STALL_MS=<n>      sleep n ms before each op
//   TYCOON_NETFAULT_SEED=<n>          drives the short-I/O length hash
//
// Unlike FaultVfs, FaultNet is a wrapper, not a replacement: bytes that
// it does move travel over the real socket, so both ends of a connection
// stay genuinely coupled and only the *schedule* is perturbed.

#ifndef TML_SUPPORT_NET_H_
#define TML_SUPPORT_NET_H_

#include <sys/types.h>

#include <cstdint>
#include <mutex>

namespace tml {

/// Narrow syscall surface for stream-socket I/O.  Both calls follow the
/// syscall contract: return the byte count moved, 0 for EOF (Recv), or -1
/// with `*err` holding the errno.  `*err` is always written on failure
/// (callers must not read the global errno — a fault impl may not set it).
class Net {
 public:
  virtual ~Net();

  virtual ssize_t Recv(int fd, void* buf, size_t len, int* err);
  virtual ssize_t Send(int fd, const void* buf, size_t len, int* err);

  /// The process-wide posix implementation, wrapped in a FaultNet when
  /// any TYCOON_NETFAULT_* knob is set in the environment.
  static Net* Default();
};

/// Deterministic fault-injecting Net (see file comment).  Thread-safe:
/// the op counter and fault schedule are mutex-guarded, mirroring
/// FaultVfs.
class FaultNet final : public Net {
 public:
  static constexpr uint64_t kNoFault = ~0ull;

  struct Options {
    /// Cap each Recv/Send at 1..short_io bytes (seeded); 0 = off.
    uint32_t short_io = 0;
    /// Every n-th op returns EAGAIN without moving bytes; 0 = off.
    uint64_t eagain_every = 0;
    /// 1-based: ops 1..reset_after_ops succeed, later ones ECONNRESET.
    uint64_t reset_after_ops = kNoFault;
    /// Keep resetting after the first (peer truly gone) vs one transient.
    bool sticky = false;
    /// Sleep this long before every op (slow link); 0 = off.
    uint32_t stall_ms = 0;
    /// Drives short-I/O lengths.
    uint64_t seed = 0;
  };

  /// `base` must outlive this FaultNet; null means the posix impl.
  FaultNet();
  explicit FaultNet(Options opts, Net* base = nullptr);
  ~FaultNet() override;

  ssize_t Recv(int fd, void* buf, size_t len, int* err) override;
  ssize_t Send(int fd, const void* buf, size_t len, int* err) override;

  /// Total ops issued so far (the chaos sweep's boundary count).
  uint64_t ops() const;
  /// Number of faults injected so far (EAGAINs + resets).
  uint64_t faults_injected() const;

  /// Re-arm: the next `k` ops (counted from now) succeed, later ones
  /// fail with ECONNRESET.
  void SetResetAfterOps(uint64_t k);
  /// Disable all faulting from now on (counters keep advancing).
  void ClearFaults();

 private:
  /// Returns 0 to proceed, or the errno to inject for this op; on
  /// proceed, *cap is the short-I/O byte limit (<= len).
  int Gate(size_t len, size_t* cap);
  uint64_t Mix(uint64_t a, uint64_t b) const;

  mutable std::mutex mu_;
  Options opts_;
  Net* base_;
  uint64_t op_base_ = 0;  ///< ops consumed before the current schedule
  uint64_t ops_ = 0;
  uint64_t faults_ = 0;
};

}  // namespace tml

#endif  // TML_SUPPORT_NET_H_
