// LEB128-style variable-length integer coding used by the PTML persistent
// encoding (paper §4.1) and the object-store record headers.

#ifndef TML_SUPPORT_VARINT_H_
#define TML_SUPPORT_VARINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "support/status.h"

namespace tml {

/// Append an unsigned varint to `out`.
inline void PutVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

/// ZigZag-encode a signed value and append it.
inline void PutVarintSigned(std::string* out, int64_t v) {
  uint64_t zz = (static_cast<uint64_t>(v) << 1) ^
                static_cast<uint64_t>(v >> 63);
  PutVarint(out, zz);
}

/// Cursor over an encoded byte span; all reads are bounds-checked.
class VarintReader {
 public:
  VarintReader(const char* data, size_t size) : data_(data), size_(size) {}
  explicit VarintReader(const std::string& s)
      : VarintReader(s.data(), s.size()) {}

  Result<uint64_t> ReadVarint() {
    uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (pos_ >= size_) {
        return Status::Corruption("varint: truncated input");
      }
      uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
      if (shift >= 64) return Status::Corruption("varint: overlong encoding");
      // The 10th byte holds only bit 63: any higher data bit would be
      // silently truncated, giving the byte string a second decoding.
      if (shift == 63 && (byte & 0x7E) != 0) {
        return Status::Corruption("varint: non-canonical encoding");
      }
      v |= static_cast<uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) return v;
      shift += 7;
    }
  }

  Result<int64_t> ReadVarintSigned() {
    TML_ASSIGN_OR_RETURN(uint64_t zz, ReadVarint());
    return static_cast<int64_t>((zz >> 1) ^ (~(zz & 1) + 1));
  }

  /// Read `n` raw bytes.
  Result<std::string> ReadBytes(size_t n) {
    // Not `pos_ + n > size_`: that wraps for huge `n` decoded from corrupt
    // input (pos_ <= size_ always holds, so the subtraction is safe).
    if (n > size_ - pos_) return Status::Corruption("varint: truncated bytes");
    std::string s(data_ + pos_, n);
    pos_ += n;
    return s;
  }

  bool AtEnd() const { return pos_ == size_; }
  size_t position() const { return pos_; }
  /// Bytes left to read; decoders bound element counts by this before
  /// reserving so corrupt input cannot trigger huge allocations.
  size_t Remaining() const { return size_ - pos_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace tml

#endif  // TML_SUPPORT_VARINT_H_
