// Virtual file system: the narrow syscall surface the object store talks
// through (open/pread/pwrite/fsync/rename/unlink/dir-fsync).
//
// Production code uses the posix implementation behind Vfs::Default();
// tests swap in FaultVfs (fault_vfs.h) to fail the Nth syscall, deliver
// torn writes, or simulate power loss — the store code is identical in
// both worlds, so every durability decision it makes is testable.
//
// Vfs::Default() also honors the TYCOON_FAULT_* environment knobs (see
// DESIGN.md §8) so a fault schedule found by the crash-recovery sweep can
// be replayed against a real binary:
//
//   TYCOON_FAULT_FAIL_AT=<n>   fail the n-th fallible syscall (1-based)
//   TYCOON_FAULT_ERRNO=eio|enospc   errno delivered (default eio)
//   TYCOON_FAULT_STICKY=0|1    keep failing after the first fault
//                              (default 1: simulates a dying disk)

#ifndef TML_SUPPORT_VFS_H_
#define TML_SUPPORT_VFS_H_

#include <cstdint>
#include <memory>
#include <string>

#include "support/status.h"

namespace tml {

/// An open file handle.  All offsets are absolute (pread/pwrite style);
/// implementations are not required to be thread-safe.
class VfsFile {
 public:
  virtual ~VfsFile() = default;

  /// Read up to `n` bytes at `offset`; returns the count actually read
  /// (short only at end-of-file).
  virtual Result<size_t> Read(void* buf, size_t n, uint64_t offset) = 0;

  /// Write all `n` bytes at `offset` (retrying short writes internally).
  /// On error the file may hold any prefix of the data — callers must not
  /// assume all-or-nothing.
  virtual Status Write(const void* buf, size_t n, uint64_t offset) = 0;

  /// Flush written data to stable storage.  A failed sync leaves the
  /// durable state of everything written since the last successful sync
  /// UNKNOWN (fsyncgate): callers must never retry-and-trust; the store
  /// poisons itself instead.
  virtual Status Sync() = 0;

  virtual Result<uint64_t> Size() = 0;

  virtual Status Truncate(uint64_t size) = 0;
};

struct VfsOpenOptions {
  bool read_only = false;
  bool create = true;      ///< create if missing (ignored when read_only)
  bool truncate = false;   ///< start empty
};

class Vfs {
 public:
  virtual ~Vfs() = default;

  /// The process-wide posix implementation (with TYCOON_FAULT_* applied).
  static Vfs* Default();

  virtual Result<std::unique_ptr<VfsFile>> Open(const std::string& path,
                                                const VfsOpenOptions& opts) = 0;

  /// Atomically replace `to` with `from`.  NOT durable until the parent
  /// directory is synced (SyncParentDir).
  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  virtual Status Unlink(const std::string& path) = 0;

  /// fsync the directory containing `path`, making prior creates/renames/
  /// unlinks of entries in it durable.
  virtual Status SyncParentDir(const std::string& path) = 0;

  virtual bool Exists(const std::string& path) = 0;
};

}  // namespace tml

#endif  // TML_SUPPORT_VFS_H_
