#include "support/net.h"

#include <errno.h>
#include <sys/socket.h>
#include <time.h>

#include <cstdlib>
#include <cstring>

namespace tml {

Net::~Net() = default;

ssize_t Net::Recv(int fd, void* buf, size_t len, int* err) {
  ssize_t n;
  do {
    n = ::recv(fd, buf, len, 0);
  } while (n < 0 && errno == EINTR);
  if (n < 0 && err != nullptr) *err = errno;
  return n;
}

ssize_t Net::Send(int fd, const void* buf, size_t len, int* err) {
  ssize_t n;
  do {
    // MSG_NOSIGNAL: a dead peer must surface as EPIPE, never SIGPIPE.
    n = ::send(fd, buf, len, MSG_NOSIGNAL);
  } while (n < 0 && errno == EINTR);
  if (n < 0 && err != nullptr) *err = errno;
  return n;
}

// ---- TYCOON_NETFAULT_* env knobs -------------------------------------------

namespace {

uint64_t EnvU64(const char* name, uint64_t dflt) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::strtoull(v, nullptr, 10) : dflt;
}

Net* MakeDefault() {
  static Net posix;
  FaultNet::Options o;
  o.short_io = static_cast<uint32_t>(EnvU64("TYCOON_NETFAULT_SHORT_IO", 0));
  o.eagain_every = EnvU64("TYCOON_NETFAULT_EAGAIN_EVERY", 0);
  o.reset_after_ops =
      EnvU64("TYCOON_NETFAULT_RESET_AT", FaultNet::kNoFault);
  o.sticky = EnvU64("TYCOON_NETFAULT_STICKY", 0) != 0;
  o.stall_ms = static_cast<uint32_t>(EnvU64("TYCOON_NETFAULT_STALL_MS", 0));
  o.seed = EnvU64("TYCOON_NETFAULT_SEED", 0);
  const bool armed = o.short_io != 0 || o.eagain_every != 0 ||
                     o.reset_after_ops != FaultNet::kNoFault ||
                     o.stall_ms != 0;
  if (!armed) return &posix;
  static FaultNet faulty(o, &posix);
  return &faulty;
}

}  // namespace

Net* Net::Default() {
  static Net* net = MakeDefault();
  return net;
}

// ---- FaultNet --------------------------------------------------------------

FaultNet::FaultNet() : FaultNet(Options{}) {}

FaultNet::FaultNet(Options opts, Net* base) : opts_(opts), base_(base) {
  static Net posix;
  if (base_ == nullptr) base_ = &posix;
}

FaultNet::~FaultNet() = default;

uint64_t FaultNet::Mix(uint64_t a, uint64_t b) const {
  // splitmix64 finalizer over (seed, a, b).
  uint64_t x = opts_.seed ^ (a * 0x9e3779b97f4a7c15ull) ^ (b + 0x7f4a7c15ull);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

int FaultNet::Gate(size_t len, size_t* cap) {
  uint32_t stall_ms;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++ops_;
    const uint64_t op = ops_ - op_base_;
    stall_ms = opts_.stall_ms;
    if (opts_.reset_after_ops != kNoFault && op > opts_.reset_after_ops) {
      // One transient reset unless sticky: re-arm past this op.
      if (!opts_.sticky) opts_.reset_after_ops = kNoFault;
      ++faults_;
      return ECONNRESET;
    }
    if (opts_.eagain_every != 0 && ops_ % opts_.eagain_every == 0) {
      ++faults_;
      return EAGAIN;
    }
    *cap = len;
    if (opts_.short_io != 0 && len > 1) {
      *cap = 1 + static_cast<size_t>(Mix(ops_, len) % opts_.short_io);
      if (*cap > len) *cap = len;
    }
  }
  if (stall_ms != 0) {
    struct timespec ts = {stall_ms / 1000, (stall_ms % 1000) * 1000000L};
    nanosleep(&ts, nullptr);
  }
  return 0;
}

ssize_t FaultNet::Recv(int fd, void* buf, size_t len, int* err) {
  size_t cap = len;
  if (int e = Gate(len, &cap); e != 0) {
    if (err != nullptr) *err = e;
    return -1;
  }
  return base_->Recv(fd, buf, cap, err);
}

ssize_t FaultNet::Send(int fd, const void* buf, size_t len, int* err) {
  size_t cap = len;
  if (int e = Gate(len, &cap); e != 0) {
    if (err != nullptr) *err = e;
    return -1;
  }
  return base_->Send(fd, buf, cap, err);
}

uint64_t FaultNet::ops() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ops_;
}

uint64_t FaultNet::faults_injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return faults_;
}

void FaultNet::SetResetAfterOps(uint64_t k) {
  std::lock_guard<std::mutex> lock(mu_);
  op_base_ = ops_;
  opts_.reset_after_ops = k;
}

void FaultNet::ClearFaults() {
  std::lock_guard<std::mutex> lock(mu_);
  opts_.short_io = 0;
  opts_.eagain_every = 0;
  opts_.reset_after_ops = kNoFault;
  opts_.stall_ms = 0;
}

}  // namespace tml
