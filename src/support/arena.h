// Bump-pointer arena for TML IR graphs.
//
// The calibration notes for this reproduction flag "memory management of IR
// graphs" as the main friction point: CPS rewriting produces heavily shared
// DAGs of short-lived nodes whose ownership is impossible to express with
// unique_ptr trees and wasteful with shared_ptr.  Following the practice of
// production compilers, every node of a TML term lives in an Arena owned by
// its ir::Module; rewrites allocate new nodes in the same arena and the whole
// graph is reclaimed at once when the module is dropped.
//
// Objects allocated here must be trivially destructible or must not rely on
// their destructor running (the arena never calls destructors).

#ifndef TML_SUPPORT_ARENA_H_
#define TML_SUPPORT_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace tml {

/// A growable bump allocator.  Not thread-safe; one arena per IR module.
class Arena {
 public:
  explicit Arena(size_t block_size = kDefaultBlockSize)
      : block_size_(block_size) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Allocate `size` bytes aligned to `align`.
  void* Allocate(size_t size, size_t align = alignof(std::max_align_t)) {
    size_t cur = reinterpret_cast<uintptr_t>(ptr_);
    size_t aligned = (cur + align - 1) & ~(align - 1);
    size_t pad = aligned - cur;
    if (ptr_ == nullptr || pad + size > remaining_) {
      NewBlock(size + align);
      cur = reinterpret_cast<uintptr_t>(ptr_);
      aligned = (cur + align - 1) & ~(align - 1);
      pad = aligned - cur;
    }
    ptr_ += pad + size;
    remaining_ -= pad + size;
    bytes_used_ += pad + size;
    return reinterpret_cast<void*>(aligned);
  }

  /// Construct a T in the arena.  T's destructor will NOT run.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    void* mem = Allocate(sizeof(T), alignof(T));
    return new (mem) T(std::forward<Args>(args)...);
  }

  /// Copy a string into the arena, returning a stable view.
  const char* StrDup(const char* data, size_t len) {
    char* mem = static_cast<char*>(Allocate(len + 1, 1));
    std::memcpy(mem, data, len);
    mem[len] = '\0';
    return mem;
  }

  /// Total bytes handed out (diagnostics / E2-style accounting).
  size_t bytes_used() const { return bytes_used_; }
  /// Number of blocks owned (diagnostics).
  size_t num_blocks() const { return blocks_.size(); }

 private:
  static constexpr size_t kDefaultBlockSize = 64 * 1024;

  void NewBlock(size_t min_size) {
    size_t size = min_size > block_size_ ? min_size : block_size_;
    blocks_.push_back(std::make_unique<char[]>(size));
    ptr_ = blocks_.back().get();
    remaining_ = size;
  }

  size_t block_size_;
  std::vector<std::unique_ptr<char[]>> blocks_;
  char* ptr_ = nullptr;
  size_t remaining_ = 0;
  size_t bytes_used_ = 0;
};

}  // namespace tml

#endif  // TML_SUPPORT_ARENA_H_
