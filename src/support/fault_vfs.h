// FaultVfs: a deterministic, in-memory Vfs for crash and fault testing.
//
// Three orthogonal failure models, all seeded and reproducible:
//
//   * syscall faults — the first `fail_after_ops` fallible syscalls
//     (write/sync/truncate/create/rename/unlink/dir-sync) succeed; later
//     ones fail with `fault_errno` (sticky by default, modelling a dying
//     disk or a process about to be killed).  A failing write optionally
//     applies a *torn* prefix of the data first.
//
//   * power loss — LosePower() rolls every file back to its durable
//     image, except that each un-synced 512-byte shadow page
//     independently survives or reverts (seeded hash), and un-synced
//     directory operations (create/rename/unlink) survive only as a
//     prefix — the journal model.  Reopening through the same FaultVfs
//     then behaves exactly like a post-crash reboot.
//
//   * fsyncgate — `fsync_fail_at` makes the Nth Sync() call fail
//     WITHOUT making the data durable, while later Sync() calls
//     "succeed" again.  Correct store code must treat the first failure
//     as poison; trusting the retry loses data at the next power cut.
//
// Nothing touches the real file system: paths are keys in an in-memory
// directory, so crash sweeps run at memory speed and leave no litter.

#ifndef TML_SUPPORT_FAULT_VFS_H_
#define TML_SUPPORT_FAULT_VFS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "support/vfs.h"

namespace tml {

class FaultVfs final : public Vfs {
 public:
  static constexpr uint64_t kNoFault = ~0ull;
  static constexpr size_t kPageSize = 512;  ///< shadow-page granularity

  struct Options {
    /// 1-based: ops 1..fail_after_ops succeed, later ones fault.
    uint64_t fail_after_ops = kNoFault;
    int fault_errno = 5;  // EIO
    /// Keep failing after the first fault (crash/dying-disk model); when
    /// false only the single op at the boundary fails (transient error).
    bool sticky = true;
    /// A faulting write first applies a seeded prefix of its data.
    bool torn_writes = true;
    /// Drives torn-write lengths and shadow-page / dir-op survival.
    uint64_t seed = 0;
    /// 1-based index of the Sync() call to fail once (fsyncgate); 0 = off.
    uint64_t fsync_fail_at = 0;
  };

  FaultVfs();
  explicit FaultVfs(Options opts);
  ~FaultVfs() override;

  // ---- Vfs ----
  Result<std::unique_ptr<VfsFile>> Open(const std::string& path,
                                        const VfsOpenOptions& opts) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Unlink(const std::string& path) override;
  Status SyncParentDir(const std::string& path) override;
  bool Exists(const std::string& path) override;

  // ---- fault control ----

  /// Simulate a power cut: un-synced pages survive per-page by seeded coin
  /// flip, un-synced directory ops survive as a seeded prefix, everything
  /// else reverts to the last durable image.  Live handles keep working
  /// (they see the post-crash content) but real code reopens instead.
  void LosePower();

  /// Total fallible syscalls issued so far (the sweep's boundary count).
  uint64_t ops() const;
  /// Number of faults injected so far.
  uint64_t faults_injected() const;

  /// Re-arm: the next `k` ops (counted from now) succeed, later ones fail.
  void SetFailAfterOps(uint64_t k);
  /// Disable syscall faulting (power-loss and fsyncgate stay armed).
  void ClearFaults();

  // ---- out-of-band inspection (not counted as syscalls) ----

  /// Current (possibly un-synced) content of a file.
  Result<std::string> SnapshotFile(const std::string& path);
  /// XOR `mask` into the byte at `offset` of both the current and durable
  /// images — deterministic bit-rot for salvage tests.
  Status CorruptFile(const std::string& path, uint64_t offset, uint8_t mask);

 private:
  friend class FaultFile;

  struct FileState {
    std::string current;
    std::string durable;
    std::vector<uint64_t> dirty_pages;  // pages touched since last Sync
    /// Smallest un-synced truncation point, or kNoFault when none: on
    /// power loss the size metadata update survives by coin flip.
    uint64_t pending_truncate = kNoFault;

    void MarkDirty(uint64_t first_byte, uint64_t last_byte);
  };

  enum class DirOpKind { kCreate, kRename, kUnlink };
  struct DirOp {
    DirOpKind kind;
    std::string from;
    std::string to;
    std::shared_ptr<FileState> file;  // the created file (kCreate)
  };

  /// Count one fallible syscall; non-OK when the schedule says to fail.
  Status MaybeFault(const char* what);
  uint64_t Mix(uint64_t a, uint64_t b) const;
  Status ErrnoStatus(const char* what) const;

  mutable std::mutex mu_;
  Options opts_;
  uint64_t op_base_ = 0;  ///< ops consumed before the current schedule
  uint64_t ops_ = 0;
  uint64_t faults_ = 0;
  uint64_t syncs_ = 0;
  uint64_t crashes_ = 0;  ///< LosePower count, varies the survival hash
  /// The in-memory directory: what a reader sees now, and what survives
  /// power loss.  FileState objects are shared between the two maps.
  std::map<std::string, std::shared_ptr<FileState>> dir_current_;
  std::map<std::string, std::shared_ptr<FileState>> dir_durable_;
  std::vector<DirOp> pending_dir_ops_;
};

}  // namespace tml

#endif  // TML_SUPPORT_FAULT_VFS_H_
