// FNV-1a 64-bit hashing, used to fingerprint reflective-optimization
// inputs (PTML bytes + binding OIDs + optimizer options) for the
// persistent reflect cache.  Chain calls by passing the previous result
// as `seed`; variable-length fields should be length-prefixed by the
// caller (hash the length first) so concatenations are unambiguous.

#ifndef TML_SUPPORT_FNV_H_
#define TML_SUPPORT_FNV_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace tml {

inline constexpr uint64_t kFnvOffsetBasis = 1469598103934665603ull;
inline constexpr uint64_t kFnvPrime = 1099511628211ull;

inline uint64_t Fnv1a64(const void* data, size_t size,
                        uint64_t seed = kFnvOffsetBasis) {
  uint64_t h = seed;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

inline uint64_t Fnv1a64(std::string_view s,
                        uint64_t seed = kFnvOffsetBasis) {
  return Fnv1a64(s.data(), s.size(), seed);
}

/// Hash a fixed-width integer (as 8 little-endian bytes).
inline uint64_t Fnv1a64U64(uint64_t v, uint64_t seed) {
  uint64_t h = seed;
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace tml

#endif  // TML_SUPPORT_FNV_H_
