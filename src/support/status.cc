#include "support/status.h"

namespace tml {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalid:
      return "Invalid";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kDeadline:
      return "Deadline";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kRuntimeError:
      return "RuntimeError";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeToString(code());
  s += ": ";
  s += message();
  return s;
}

}  // namespace tml
