#include "support/fault_vfs.h"

#include <cerrno>
#include <cstring>

#include "support/fnv.h"

namespace tml {

/// Handle over a shared FileState; all calls route back through the owning
/// FaultVfs so fault scheduling and locking live in one place.
class FaultFile final : public VfsFile {
 public:
  FaultFile(FaultVfs* vfs, std::shared_ptr<FaultVfs::FileState> state)
      : vfs_(vfs), state_(std::move(state)) {}

  Result<size_t> Read(void* buf, size_t n, uint64_t offset) override;
  Status Write(const void* buf, size_t n, uint64_t offset) override;
  Status Sync() override;
  Result<uint64_t> Size() override;
  Status Truncate(uint64_t size) override;

 private:
  FaultVfs* vfs_;
  std::shared_ptr<FaultVfs::FileState> state_;
};

void FaultVfs::FileState::MarkDirty(uint64_t first_byte, uint64_t last_byte) {
  for (uint64_t p = first_byte / kPageSize; p <= last_byte / kPageSize; ++p) {
    bool seen = false;
    for (uint64_t q : dirty_pages) {
      if (q == p) {
        seen = true;
        break;
      }
    }
    if (!seen) dirty_pages.push_back(p);
  }
}

FaultVfs::FaultVfs() : FaultVfs(Options()) {}
FaultVfs::FaultVfs(Options opts) : opts_(opts) {}
FaultVfs::~FaultVfs() = default;

uint64_t FaultVfs::Mix(uint64_t a, uint64_t b) const {
  uint64_t h = Fnv1a64U64(opts_.seed, kFnvOffsetBasis);
  h = Fnv1a64U64(crashes_, h);
  h = Fnv1a64U64(a, h);
  return Fnv1a64U64(b, h);
}

Status FaultVfs::ErrnoStatus(const char* what) const {
  return Status::IOError(std::string(what) + ": injected fault: " +
                         std::strerror(opts_.fault_errno));
}

Status FaultVfs::MaybeFault(const char* what) {
  ++ops_;
  if (opts_.fail_after_ops == kNoFault) return Status::OK();
  uint64_t in_schedule = ops_ - op_base_;
  bool fail = opts_.sticky ? in_schedule > opts_.fail_after_ops
                           : in_schedule == opts_.fail_after_ops + 1;
  if (!fail) return Status::OK();
  ++faults_;
  return ErrnoStatus(what);
}

Result<std::unique_ptr<VfsFile>> FaultVfs::Open(const std::string& path,
                                                const VfsOpenOptions& opts) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = dir_current_.find(path);
  if (it == dir_current_.end()) {
    if (opts.read_only || !opts.create) {
      return Status::NotFound("no such file: " + path);
    }
    TML_RETURN_NOT_OK(MaybeFault("open-create"));
    auto state = std::make_shared<FileState>();
    dir_current_[path] = state;
    pending_dir_ops_.push_back(
        DirOp{DirOpKind::kCreate, path, std::string(), state});
    return std::unique_ptr<VfsFile>(new FaultFile(this, std::move(state)));
  }
  if (opts.truncate && !opts.read_only) {
    TML_RETURN_NOT_OK(MaybeFault("open-truncate"));
    it->second->MarkDirty(0, it->second->current.empty()
                                 ? 0
                                 : it->second->current.size() - 1);
    it->second->current.clear();
    it->second->pending_truncate = 0;
  }
  return std::unique_ptr<VfsFile>(new FaultFile(this, it->second));
}

Status FaultVfs::Rename(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  TML_RETURN_NOT_OK(MaybeFault("rename"));
  auto it = dir_current_.find(from);
  if (it == dir_current_.end()) {
    return Status::IOError("rename: no such file: " + from);
  }
  dir_current_[to] = it->second;
  dir_current_.erase(it);
  pending_dir_ops_.push_back(DirOp{DirOpKind::kRename, from, to, nullptr});
  return Status::OK();
}

Status FaultVfs::Unlink(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  TML_RETURN_NOT_OK(MaybeFault("unlink"));
  dir_current_.erase(path);  // posix unlink of a missing file is tolerated
  pending_dir_ops_.push_back(DirOp{DirOpKind::kUnlink, path, "", nullptr});
  return Status::OK();
}

Status FaultVfs::SyncParentDir(const std::string& path) {
  (void)path;  // one flat in-memory directory
  std::lock_guard<std::mutex> lock(mu_);
  TML_RETURN_NOT_OK(MaybeFault("fsync-dir"));
  dir_durable_ = dir_current_;
  pending_dir_ops_.clear();
  return Status::OK();
}

bool FaultVfs::Exists(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  return dir_current_.count(path) != 0;
}

void FaultVfs::LosePower() {
  std::lock_guard<std::mutex> lock(mu_);
  ++crashes_;
  // 1. Directory entries: un-synced ops survive as a prefix (journal model).
  size_t survive =
      pending_dir_ops_.empty()
          ? 0
          : static_cast<size_t>(Mix(0x0D1E, pending_dir_ops_.size()) %
                                (pending_dir_ops_.size() + 1));
  for (size_t i = 0; i < survive; ++i) {
    const DirOp& op = pending_dir_ops_[i];
    switch (op.kind) {
      case DirOpKind::kCreate:
        dir_durable_[op.from] = op.file;
        break;
      case DirOpKind::kRename: {
        auto it = dir_durable_.find(op.from);
        if (it != dir_durable_.end()) {
          dir_durable_[op.to] = it->second;
          dir_durable_.erase(op.from);
        }
        break;
      }
      case DirOpKind::kUnlink:
        dir_durable_.erase(op.from);
        break;
    }
  }
  pending_dir_ops_.clear();
  dir_current_ = dir_durable_;

  // 2. File contents: start from the durable image; each dirty shadow page
  //    independently survives by seeded coin flip; an un-synced truncation
  //    survives by its own flip.
  uint64_t file_idx = 0;
  for (auto& [path, state] : dir_current_) {
    ++file_idx;
    std::string after = state->durable;
    if (state->pending_truncate != kNoFault &&
        (Mix(file_idx, 0x7123) & 1) != 0 &&
        after.size() > state->pending_truncate) {
      after.resize(state->pending_truncate);
    }
    for (uint64_t p : state->dirty_pages) {
      if ((Mix(file_idx * 1000003 + p, 0xBEEF) & 1) == 0) continue;
      uint64_t start = p * kPageSize;
      if (start >= state->current.size()) continue;
      uint64_t end = std::min<uint64_t>(start + kPageSize,
                                        state->current.size());
      if (after.size() < end) after.resize(end, '\0');
      after.replace(start, end - start, state->current, start, end - start);
    }
    state->current = after;
    state->durable = after;
    state->dirty_pages.clear();
    state->pending_truncate = kNoFault;
  }
}

uint64_t FaultVfs::ops() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ops_;
}

uint64_t FaultVfs::faults_injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return faults_;
}

void FaultVfs::SetFailAfterOps(uint64_t k) {
  std::lock_guard<std::mutex> lock(mu_);
  op_base_ = ops_;
  opts_.fail_after_ops = k;
}

void FaultVfs::ClearFaults() {
  std::lock_guard<std::mutex> lock(mu_);
  opts_.fail_after_ops = kNoFault;
}

Result<std::string> FaultVfs::SnapshotFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = dir_current_.find(path);
  if (it == dir_current_.end()) {
    return Status::NotFound("no such file: " + path);
  }
  return it->second->current;
}

Status FaultVfs::CorruptFile(const std::string& path, uint64_t offset,
                             uint8_t mask) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = dir_current_.find(path);
  if (it == dir_current_.end()) {
    return Status::NotFound("no such file: " + path);
  }
  FileState* st = it->second.get();
  if (offset >= st->current.size()) {
    return Status::OutOfRange("corrupt offset past end of " + path);
  }
  st->current[offset] = static_cast<char>(
      static_cast<uint8_t>(st->current[offset]) ^ mask);
  if (offset < st->durable.size()) {
    st->durable[offset] = static_cast<char>(
        static_cast<uint8_t>(st->durable[offset]) ^ mask);
  }
  return Status::OK();
}

Result<size_t> FaultFile::Read(void* buf, size_t n, uint64_t offset) {
  std::lock_guard<std::mutex> lock(vfs_->mu_);
  const std::string& data = state_->current;
  if (offset >= data.size()) return static_cast<size_t>(0);
  size_t got = std::min<size_t>(n, data.size() - offset);
  std::memcpy(buf, data.data() + offset, got);
  return got;
}

Status FaultFile::Write(const void* buf, size_t n, uint64_t offset) {
  std::lock_guard<std::mutex> lock(vfs_->mu_);
  Status fault = vfs_->MaybeFault("pwrite");
  size_t apply = n;
  if (!fault.ok()) {
    // Torn write: the failing syscall may still land a prefix on disk.
    if (!vfs_->opts_.torn_writes || n == 0) return fault;
    apply = static_cast<size_t>(vfs_->Mix(vfs_->ops_, n) % n);  // < n
    if (apply == 0) return fault;
  }
  std::string& data = state_->current;
  if (data.size() < offset + apply) data.resize(offset + apply, '\0');
  data.replace(offset, apply, static_cast<const char*>(buf), apply);
  if (apply > 0) state_->MarkDirty(offset, offset + apply - 1);
  return fault;
}

Status FaultFile::Sync() {
  std::lock_guard<std::mutex> lock(vfs_->mu_);
  uint64_t sync_idx = ++vfs_->syncs_;
  Status fault = vfs_->MaybeFault("fsync");
  if (fault.ok() && vfs_->opts_.fsync_fail_at != 0 &&
      sync_idx == vfs_->opts_.fsync_fail_at) {
    // fsyncgate: this sync fails and durability is NOT established, but
    // later syncs act as if nothing happened.
    ++vfs_->faults_;
    fault = vfs_->ErrnoStatus("fsync");
  }
  if (!fault.ok()) return fault;
  state_->durable = state_->current;
  state_->dirty_pages.clear();
  state_->pending_truncate = FaultVfs::kNoFault;
  return Status::OK();
}

Result<uint64_t> FaultFile::Size() {
  std::lock_guard<std::mutex> lock(vfs_->mu_);
  return static_cast<uint64_t>(state_->current.size());
}

Status FaultFile::Truncate(uint64_t size) {
  std::lock_guard<std::mutex> lock(vfs_->mu_);
  TML_RETURN_NOT_OK(vfs_->MaybeFault("ftruncate"));
  std::string& data = state_->current;
  size_t old_size = data.size();
  if (size < old_size) {
    state_->MarkDirty(size, old_size - 1);
    data.resize(size);
    state_->pending_truncate = std::min(state_->pending_truncate, size);
  } else if (size > old_size) {
    data.resize(size, '\0');
    state_->MarkDirty(old_size, size - 1);
  }
  return Status::OK();
}

}  // namespace tml
