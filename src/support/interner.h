// String interner: maps identifier spellings to dense 32-bit symbols.
// TML identifiers keep their source spelling for pretty printing (the paper
// prints `complex_6`, `t_12`, ...) while comparisons are integer equality.

#ifndef TML_SUPPORT_INTERNER_H_
#define TML_SUPPORT_INTERNER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace tml {

/// A dense identifier for an interned string.
using Symbol = uint32_t;

class Interner {
 public:
  /// Intern `s`, returning its stable Symbol.
  Symbol Intern(std::string_view s) {
    auto it = map_.find(std::string(s));
    if (it != map_.end()) return it->second;
    Symbol sym = static_cast<Symbol>(strings_.size());
    strings_.emplace_back(s);
    map_.emplace(strings_.back(), sym);
    return sym;
  }

  /// Spelling of a previously interned symbol.
  std::string_view Name(Symbol sym) const { return strings_[sym]; }

  size_t size() const { return strings_.size(); }

 private:
  std::unordered_map<std::string, Symbol> map_;
  std::vector<std::string> strings_;
};

}  // namespace tml

#endif  // TML_SUPPORT_INTERNER_H_
