#include "vm/vm.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace tml::vm {

std::string ToString(const Value& v) {
  char buf[64];
  switch (v.tag) {
    case Tag::kNil:
      return "nil";
    case Tag::kBool:
      return v.b ? "true" : "false";
    case Tag::kInt:
      return std::to_string(v.i);
    case Tag::kChar:
      std::snprintf(buf, sizeof(buf), "'%c'", v.ch);
      return buf;
    case Tag::kReal:
      std::snprintf(buf, sizeof(buf), "%g", v.r);
      return buf;
    case Tag::kOid:
      return "<oid " + std::to_string(v.oid) + ">";
    case Tag::kObj:
      switch (v.obj->kind) {
        case ObjKind::kArray: {
          auto* a = static_cast<ArrayObj*>(v.obj);
          std::string out = "[";
          for (size_t i = 0; i < a->slots.size(); ++i) {
            if (i > 0) out += ' ';
            out += ToString(a->slots[i]);
          }
          return out + "]";
        }
        case ObjKind::kBytes:
          return "<bytes " +
                 std::to_string(static_cast<BytesObj*>(v.obj)->bytes.size()) +
                 ">";
        case ObjKind::kString:
          return static_cast<StringObj*>(v.obj)->str;
        case ObjKind::kClosure:
          return "<closure>";
      }
  }
  return "?";
}

bool ScalarEquals(const Value& a, const Value& b) {
  if (a.tag != b.tag) return false;
  switch (a.tag) {
    case Tag::kNil:
      return true;
    case Tag::kBool:
      return a.b == b.b;
    case Tag::kInt:
      return a.i == b.i;
    case Tag::kChar:
      return a.ch == b.ch;
    case Tag::kReal:
      return a.r == b.r;
    case Tag::kOid:
      return a.oid == b.oid;
    case Tag::kObj:
      if (a.obj->kind == ObjKind::kString &&
          b.obj->kind == ObjKind::kString) {
        return static_cast<StringObj*>(a.obj)->str ==
               static_cast<StringObj*>(b.obj)->str;
      }
      return a.obj == b.obj;
  }
  return false;
}

namespace {

Status TypeErr(const char* what) {
  return Status::RuntimeError(std::string("vm type error: ") + what);
}

bool ConstEquals(const Value& v, const Constant& c) {
  switch (c.kind) {
    case Constant::Kind::kNil:
      return v.is_nil();
    case Constant::Kind::kBool:
      return v.tag == Tag::kBool && v.b == (c.i != 0);
    case Constant::Kind::kInt:
      return v.is_int() && v.i == c.i;
    case Constant::Kind::kChar:
      return v.tag == Tag::kChar && v.ch == static_cast<uint8_t>(c.i);
    case Constant::Kind::kReal:
      return v.is_real() && v.r == c.r;
    case Constant::Kind::kString:
      return v.is_obj() && v.obj->kind == ObjKind::kString &&
             static_cast<StringObj*>(v.obj)->str == c.s;
    case Constant::Kind::kOid:
      return v.tag == Tag::kOid && v.oid == static_cast<Oid>(c.i);
  }
  return false;
}

}  // namespace

VM::VM(RuntimeEnv* env, VMOptions opts) : env_(env), opts_(opts) {
  RegisterHost("print",
               [](VM* vm, std::span<const Value> args) -> Result<Value> {
                 for (const Value& a : args) {
                   *vm->mutable_output() += ToString(a);
                 }
                 *vm->mutable_output() += '\n';
                 return Value::Nil();
               });
}

VM::~VM() {
  // A batching VM (telemetry_batch_steps > 0) may hold unpublished tallies;
  // flush them so the registry totals stay exact across worker teardown.
  PublishTelemetry();
}

void VM::RegisterHost(const std::string& name, HostFn fn) {
  hosts_[name] = std::move(fn);
}

Value VM::MakeClosure(const Function* fn) {
  ClosureObj* clo = heap_.New<ClosureObj>();
  clo->fn = fn;
  clo->caps.resize(fn->cap_names.size());
  return Value::ObjV(clo);
}

Value VM::StringValue(const char* msg) {
  StringObj* s = heap_.New<StringObj>();
  s->str = msg;
  return Value::ObjV(s);
}

FnCounters* VM::ProfileFor(const Function* fn) {
  // The mutator is the only writer, so its own lookups need no lock; the
  // insert locks because SnapshotProfile may be iterating concurrently.
  auto it = profile_.find(fn);
  if (it != profile_.end()) return &it->second;
  std::lock_guard<std::mutex> lock(profile_mu_);
  return &profile_[fn];
}

std::vector<FnSample> VM::SnapshotProfile() {
  std::lock_guard<std::mutex> lock(profile_mu_);
  std::vector<FnSample> out;
  out.reserve(profile_.size());
  for (auto& [fn, c] : profile_) {
    out.push_back(FnSample{fn, c.calls.load(std::memory_order_relaxed),
                           c.steps.load(std::memory_order_relaxed)});
  }
  return out;
}

void VM::FlushFramesFrom(size_t from) {
  for (size_t i = from; i < frames_.size(); ++i) {
    FlushFrameProfile(frames_[i]);
  }
}

void VM::InvalidateSwizzle(Oid oid) {
  {
    std::lock_guard<std::mutex> lock(inval_mu_);
    inval_queue_.push_back(oid);
  }
  inval_epoch_.fetch_add(1, std::memory_order_release);
}

void VM::DrainInvalidations() {
  std::lock_guard<std::mutex> lock(inval_mu_);
  for (Oid oid : inval_queue_) swizzle_cache_.erase(oid);
  inval_queue_.clear();
  // Old swizzled values stay pinned; their Function* are owned by code
  // units that outlive the VM, so in-flight frames keep running old code
  // safely while new calls re-resolve.
  seen_inval_epoch_ = inval_epoch_.load(std::memory_order_acquire);
}

Result<Value> VM::ResolveCallee(Value callee) {
  if (callee.tag == Tag::kOid) {
    if (inval_epoch_.load(std::memory_order_acquire) != seen_inval_epoch_) {
      DrainInvalidations();
    }
    auto it = swizzle_cache_.find(callee.oid);
    if (it != swizzle_cache_.end()) return it->second;
    if (env_ == nullptr) {
      return Status::RuntimeError("vm: OID call without a runtime env");
    }
    TML_TELEMETRY_SPAN("vm", "swizzle.resolve");
    ++swizzle_faults_;
    TML_ASSIGN_OR_RETURN(Value v, env_->ResolveOid(callee.oid, this));
    Pin(v);
    swizzle_cache_[callee.oid] = v;
    return v;
  }
  return callee;
}

Status VM::PushFrame(Value callee, std::span<const Value> args,
                     uint16_t dst_reg, bool ret_through) {
  TML_ASSIGN_OR_RETURN(Value resolved, ResolveCallee(callee));
  ClosureObj* clo = As<ClosureObj>(resolved);
  if (clo == nullptr) {
    return Status::RuntimeError("vm: call of a non-procedure value: " +
                                ToString(callee));
  }
  if (clo->fn->num_params != args.size()) {
    return Status::RuntimeError(
        "vm: arity mismatch calling " + clo->fn->name + ": expected " +
        std::to_string(clo->fn->num_params) + ", got " +
        std::to_string(args.size()));
  }
  if (frames_.size() >= 100'000) {
    return Status::RuntimeError("vm: frame stack overflow");
  }
  Frame fr;
  fr.clo = clo;
  fr.dst_reg = dst_reg;
  fr.ret_through = ret_through;
  if (opts_.profile) {
    fr.prof = ProfileFor(clo->fn);
    fr.prof->calls.fetch_add(1, std::memory_order_relaxed);
  }
  ++calls_;
  fr.regs.resize(clo->fn->num_regs);
  std::copy(args.begin(), args.end(), fr.regs.begin());
  frames_.push_back(std::move(fr));
  return Status::OK();
}

Result<RunResult> VM::Run(const Function* fn, std::span<const Value> args) {
  return RunClosure(MakeClosure(fn), args);
}

void VM::PublishTelemetry() {
  static telemetry::Counter* steps =
      telemetry::Registry::Global().GetCounter("tml.vm.steps");
  static telemetry::Counter* calls =
      telemetry::Registry::Global().GetCounter("tml.vm.calls");
  static telemetry::Counter* raises =
      telemetry::Registry::Global().GetCounter("tml.vm.raises");
  static telemetry::Counter* swizzle_faults =
      telemetry::Registry::Global().GetCounter("tml.vm.swizzle_faults");
  if (total_steps_ != published_steps_) {
    steps->Add(total_steps_ - published_steps_);
    published_steps_ = total_steps_;
  }
  if (calls_ != published_calls_) {
    calls->Add(calls_ - published_calls_);
    published_calls_ = calls_;
  }
  if (raises_ != published_raises_) {
    raises->Add(raises_ - published_raises_);
    published_raises_ = raises_;
  }
  if (swizzle_faults_ != published_swizzle_faults_) {
    swizzle_faults->Add(swizzle_faults_ - published_swizzle_faults_);
    published_swizzle_faults_ = swizzle_faults_;
  }
}

Result<RunResult> VM::RunClosure(Value closure, std::span<const Value> args) {
  size_t base = frames_.size();
  uint64_t steps_before = total_steps_;
  // Arm the per-run step budget at the outermost boundary only: nested
  // runs (query predicates re-entering via CallSync) spend the enclosing
  // run's budget rather than resetting it.
  if (base == 0) {
    budget_deadline_ = opts_.step_budget == 0
                           ? UINT64_MAX
                           : total_steps_ + opts_.step_budget;
  }
  TML_RETURN_NOT_OK(PushFrame(closure, args, 0, false));
  bool raised = false;
  auto v = Execute(base, &raised);
  // Publish telemetry deltas only at the outermost run boundary, so nested
  // RunClosure calls (query predicates) cost nothing extra.  Also drop the
  // exec-status publication back to idle so the sampler never attributes
  // between-run time to the last function.
  if (base == 0) {
    MaybePublishTelemetry();
    exec_fn_.store(nullptr, std::memory_order_relaxed);
  }
  if (!v.ok()) {
    FlushFramesFrom(base);
    frames_.resize(base);
    return v.status();
  }
  RunResult out;
  out.value = *v;
  out.raised = raised;
  out.steps = total_steps_ - steps_before;
  return out;
}

Result<VM::CallOut> VM::CallSync(Value callee, std::span<const Value> args) {
  size_t base = frames_.size();
  if (base == 0) {
    budget_deadline_ = opts_.step_budget == 0
                           ? UINT64_MAX
                           : total_steps_ + opts_.step_budget;
  }
  TML_RETURN_NOT_OK(PushFrame(callee, args, 0, false));
  bool raised = false;
  auto v = Execute(base, &raised);
  if (base == 0) {
    MaybePublishTelemetry();
    exec_fn_.store(nullptr, std::memory_order_relaxed);
  }
  if (!v.ok()) {
    FlushFramesFrom(base);
    frames_.resize(base);
    return v.status();
  }
  return CallOut{*v, raised};
}

bool VM::Unwind(Value exn, size_t base, Value* escaped) {
  if (!handlers_.empty() && handlers_.back().frame_index >= base) {
    Handler h = handlers_.back();
    handlers_.pop_back();
    FlushFramesFrom(h.frame_index + 1);
    frames_.resize(h.frame_index + 1);
    Frame& f = frames_.back();
    const FailInfo& fi = f.clo->fn->fail_infos[h.fail_idx];
    f.pc = static_cast<uint32_t>(fi.target);
    f.regs[fi.exn_reg] = exn;
    return true;
  }
  *escaped = exn;
  FlushFramesFrom(base);
  frames_.resize(base);
  return false;
}

bool VM::Fault(const Instr& in, Value exn, size_t base, Value* escaped) {
  ++raises_;
  if (in.fail >= 0) {
    Frame& f = frames_.back();
    const FailInfo& fi = f.clo->fn->fail_infos[in.fail];
    f.pc = static_cast<uint32_t>(fi.target);
    f.regs[fi.exn_reg] = exn;
    return true;
  }
  return Unwind(exn, base, escaped);
}

void VM::MaybeCollect() {
  if (heap_.ShouldCollect()) CollectGarbage();
}

void VM::CollectGarbage() {
  for (const Frame& f : frames_) {
    for (const Value& v : f.regs) Heap::Mark(v);
    Heap::Mark(Value::ObjV(const_cast<ClosureObj*>(f.clo)));
  }
  for (const Value& v : pins_) Heap::Mark(v);
  for (const auto& [oid, v] : swizzle_cache_) Heap::Mark(v);
  heap_.Sweep();
}

// Convenience macros keep the dispatch loop readable; every use returns or
// breaks out of the switch explicitly.
#define TML_VM_FAULT(exn_value)                              \
  do {                                                       \
    Value _escaped;                                          \
    if (!Fault(in, (exn_value), base, &_escaped)) {          \
      *raised = true;                                        \
      return _escaped;                                       \
    }                                                        \
  } while (0)

Result<Value> VM::Execute(size_t base, bool* raised) {
  *raised = false;
  while (true) {
    if (frames_.size() <= base) {
      return Status::RuntimeError("vm: frame stack underflow");
    }
    Frame& f = frames_.back();
    const Function* fn = f.clo->fn;
    if (f.pc >= fn->code.size()) {
      return Status::RuntimeError("vm: pc past end of " + fn->name);
    }
    if (++total_steps_ > opts_.max_steps) {
      return Status::RuntimeError("vm: step limit exceeded");
    }
    if (total_steps_ > budget_deadline_) {
      return Status::OutOfRange(
          "vm: step budget exceeded (budget=" +
          std::to_string(opts_.step_budget) + ")");
    }
    // Attribute the step to the function on top of the stack: frame-local
    // now, published to the shared profile when the frame pops.
    ++f.local_steps;
    const Instr& in = fn->code[f.pc++];
    if (opts_.exec_status) {
      // Sampling-profiler seam: two relaxed stores so a sampler thread
      // sees (current function, current opcode) without any lock.
      exec_fn_.store(fn, std::memory_order_relaxed);
      exec_op_.store(static_cast<uint8_t>(in.op), std::memory_order_relaxed);
    }
    std::vector<Value>& R = f.regs;

    switch (in.op) {
      case Op::kLoadK: {
        const Constant& c = fn->pool[static_cast<size_t>(in.d)];
        switch (c.kind) {
          case Constant::Kind::kNil: R[in.a] = Value::Nil(); break;
          case Constant::Kind::kBool: R[in.a] = Value::Bool(c.i != 0); break;
          case Constant::Kind::kInt: R[in.a] = Value::Int(c.i); break;
          case Constant::Kind::kChar:
            R[in.a] = Value::Char(static_cast<uint8_t>(c.i));
            break;
          case Constant::Kind::kReal: R[in.a] = Value::Real(c.r); break;
          case Constant::Kind::kOid:
            R[in.a] = Value::OidV(static_cast<Oid>(c.i));
            break;
          case Constant::Kind::kString: {
            MaybeCollect();
            StringObj* s = heap_.New<StringObj>();
            s->str = c.s;
            frames_.back().regs[in.a] = Value::ObjV(s);
            break;
          }
        }
        break;
      }
      case Op::kMove:
        R[in.a] = R[in.b];
        break;

      case Op::kAddI:
      case Op::kSubI:
      case Op::kMulI:
      case Op::kDivI:
      case Op::kModI: {
        const Value& x = R[in.b];
        const Value& y = R[in.c];
        if (!x.is_int() || !y.is_int()) return TypeErr("integer arithmetic");
        int64_t r = 0;
        bool fault = false;
        switch (in.op) {
          case Op::kAddI: fault = __builtin_add_overflow(x.i, y.i, &r); break;
          case Op::kSubI: fault = __builtin_sub_overflow(x.i, y.i, &r); break;
          case Op::kMulI: fault = __builtin_mul_overflow(x.i, y.i, &r); break;
          case Op::kDivI:
            fault = (y.i == 0 ||
                     (x.i == std::numeric_limits<int64_t>::min() &&
                      y.i == -1));
            if (!fault) r = x.i / y.i;
            break;
          default:
            fault = (y.i == 0 ||
                     (x.i == std::numeric_limits<int64_t>::min() &&
                      y.i == -1));
            if (!fault) r = x.i % y.i;
            break;
        }
        if (fault) {
          TML_VM_FAULT(StringValue("integer arithmetic fault"));
          break;
        }
        R[in.a] = Value::Int(r);
        break;
      }

      case Op::kShl:
      case Op::kShr:
      case Op::kBitAnd:
      case Op::kBitOr:
      case Op::kBitXor: {
        const Value& x = R[in.b];
        const Value& y = R[in.c];
        if (!x.is_int() || !y.is_int()) return TypeErr("bit operation");
        uint64_t ux = static_cast<uint64_t>(x.i);
        int64_t r = 0;
        switch (in.op) {
          case Op::kShl:
            r = (y.i >= 0 && y.i < 64) ? static_cast<int64_t>(ux << y.i) : 0;
            break;
          case Op::kShr:
            r = (y.i >= 0 && y.i < 64) ? static_cast<int64_t>(ux >> y.i) : 0;
            break;
          case Op::kBitAnd: r = x.i & y.i; break;
          case Op::kBitOr: r = x.i | y.i; break;
          default: r = x.i ^ y.i; break;
        }
        R[in.a] = Value::Int(r);
        break;
      }

      case Op::kAddR:
      case Op::kSubR:
      case Op::kMulR:
      case Op::kDivR: {
        const Value& x = R[in.b];
        const Value& y = R[in.c];
        if (!x.is_real() || !y.is_real()) return TypeErr("real arithmetic");
        if (in.op == Op::kDivR && y.r == 0.0) {
          TML_VM_FAULT(StringValue("real division by zero"));
          break;
        }
        double r = 0;
        switch (in.op) {
          case Op::kAddR: r = x.r + y.r; break;
          case Op::kSubR: r = x.r - y.r; break;
          case Op::kMulR: r = x.r * y.r; break;
          default: r = x.r / y.r; break;
        }
        R[in.a] = Value::Real(r);
        break;
      }

      case Op::kSqrt: {
        const Value& x = R[in.b];
        if (!x.is_real()) return TypeErr("sqrt");
        if (x.r < 0) {
          TML_VM_FAULT(StringValue("sqrt: negative"));
          break;
        }
        R[in.a] = Value::Real(std::sqrt(x.r));
        break;
      }
      case Op::kI2R:
        if (!R[in.b].is_int()) return TypeErr("int2real");
        R[in.a] = Value::Real(static_cast<double>(R[in.b].i));
        break;
      case Op::kR2I: {
        if (!R[in.b].is_real()) return TypeErr("real2int");
        double r = R[in.b].r;
        if (!(r > -9.0e18 && r < 9.0e18)) {
          TML_VM_FAULT(StringValue("real2int: out of range"));
          break;
        }
        R[in.a] = Value::Int(static_cast<int64_t>(r));
        break;
      }
      case Op::kC2I:
        if (R[in.b].tag != Tag::kChar) return TypeErr("char2int");
        R[in.a] = Value::Int(R[in.b].ch);
        break;
      case Op::kI2C:
        if (!R[in.b].is_int()) return TypeErr("int2char");
        R[in.a] = Value::Char(static_cast<uint8_t>(R[in.b].i & 0xFF));
        break;
      case Op::kAndB:
      case Op::kOrB: {
        const Value& x = R[in.b];
        const Value& y = R[in.c];
        if (x.tag != Tag::kBool || y.tag != Tag::kBool) {
          return TypeErr("boolean operation");
        }
        R[in.a] = Value::Bool(in.op == Op::kAndB ? (x.b && y.b)
                                                 : (x.b || y.b));
        break;
      }
      case Op::kNotB:
        if (R[in.b].tag != Tag::kBool) return TypeErr("not");
        R[in.a] = Value::Bool(!R[in.b].b);
        break;

      case Op::kBrLtI:
      case Op::kBrLeI: {
        const Value& x = R[in.b];
        const Value& y = R[in.c];
        if (!x.is_int() || !y.is_int()) return TypeErr("integer comparison");
        bool taken = in.op == Op::kBrLtI ? x.i < y.i : x.i <= y.i;
        if (taken) f.pc = static_cast<uint32_t>(in.d);
        break;
      }
      case Op::kBrLtR:
      case Op::kBrLeR: {
        const Value& x = R[in.b];
        const Value& y = R[in.c];
        if (!x.is_real() || !y.is_real()) return TypeErr("real comparison");
        bool taken = in.op == Op::kBrLtR ? x.r < y.r : x.r <= y.r;
        if (taken) f.pc = static_cast<uint32_t>(in.d);
        break;
      }
      case Op::kBrEq:
        if (ScalarEquals(R[in.b], R[in.c])) {
          f.pc = static_cast<uint32_t>(in.d);
        }
        break;
      case Op::kCaseEq:
        if (ConstEquals(R[in.b], fn->pool[in.c])) {
          f.pc = static_cast<uint32_t>(in.d);
        }
        break;
      case Op::kJmp:
        f.pc = static_cast<uint32_t>(in.d);
        break;

      case Op::kNewArray:
      case Op::kNewVector: {
        MaybeCollect();
        Frame& fr = frames_.back();
        ArrayObj* a = heap_.New<ArrayObj>();
        a->immutable = (in.op == Op::kNewVector);
        a->slots.assign(fr.regs.begin() + in.b,
                        fr.regs.begin() + in.b + in.c);
        fr.regs[in.a] = Value::ObjV(a);
        break;
      }
      case Op::kNewArrN: {
        const Value& n = R[in.b];
        if (!n.is_int()) return TypeErr("mkarray");
        if (n.i > (1ll << 32)) return TypeErr("mkarray: huge size");
        if (n.i < 0) {
          TML_VM_FAULT(StringValue("mkarray: negative size"));
          break;
        }
        Value init = R[in.c];
        MaybeCollect();
        Frame& fr = frames_.back();
        ArrayObj* a = heap_.New<ArrayObj>();
        a->slots.assign(static_cast<size_t>(n.i), init);
        fr.regs[in.a] = Value::ObjV(a);
        break;
      }
      case Op::kNewBytes: {
        const Value& n = R[in.b];
        const Value& init = R[in.c];
        if (!n.is_int() || !init.is_int()) return TypeErr("new");
        if (n.i < 0 || n.i > (1ll << 32)) return TypeErr("new: bad size");
        MaybeCollect();
        Frame& fr = frames_.back();
        BytesObj* b = heap_.New<BytesObj>();
        b->bytes.assign(static_cast<size_t>(n.i),
                        static_cast<uint8_t>(init.i & 0xFF));
        fr.regs[in.a] = Value::ObjV(b);
        break;
      }
      case Op::kALoad: {
        // Polymorphic over arrays and byte arrays (see interp); OIDs of
        // store relations swizzle on demand, so programs can scan
        // persistent relations like arrays.
        if (!R[in.c].is_int()) return TypeErr("[]");
        int64_t i = R[in.c].i;
        if (R[in.b].tag == Tag::kOid) {
          TML_ASSIGN_OR_RETURN(Value rv, ResolveCallee(R[in.b]));
          frames_.back().regs[in.b] = rv;
        }
        if (BytesObj* bo = As<BytesObj>(R[in.b])) {
          if (i < 0 || static_cast<size_t>(i) >= bo->bytes.size()) {
            TML_VM_FAULT(StringValue("[]: index out of range"));
            break;
          }
          R[in.a] = Value::Int(bo->bytes[static_cast<size_t>(i)]);
          break;
        }
        ArrayObj* a = As<ArrayObj>(R[in.b]);
        if (a == nullptr) return TypeErr("[]");
        if (i < 0 || static_cast<size_t>(i) >= a->slots.size()) {
          TML_VM_FAULT(StringValue("[]: index out of range"));
          break;
        }
        R[in.a] = a->slots[static_cast<size_t>(i)];
        break;
      }
      case Op::kAStore: {
        if (!R[in.b].is_int()) return TypeErr("[]:=");
        int64_t i = R[in.b].i;
        if (BytesObj* bo = As<BytesObj>(R[in.a])) {
          if (!R[in.c].is_int()) return TypeErr("[]:= byte value");
          if (i < 0 || static_cast<size_t>(i) >= bo->bytes.size()) {
            TML_VM_FAULT(StringValue("[]:=: index out of range"));
            break;
          }
          bo->bytes[static_cast<size_t>(i)] =
              static_cast<uint8_t>(R[in.c].i & 0xFF);
          break;
        }
        ArrayObj* a = As<ArrayObj>(R[in.a]);
        if (a == nullptr) return TypeErr("[]:=");
        if (a->immutable) {
          TML_VM_FAULT(StringValue("[]:=: immutable vector"));
          break;
        }
        if (i < 0 || static_cast<size_t>(i) >= a->slots.size()) {
          TML_VM_FAULT(StringValue("[]:=: index out of range"));
          break;
        }
        a->slots[static_cast<size_t>(i)] = R[in.c];
        break;
      }
      case Op::kBLoad: {
        BytesObj* b = As<BytesObj>(R[in.b]);
        if (b == nullptr || !R[in.c].is_int()) return TypeErr("$[]");
        int64_t i = R[in.c].i;
        if (i < 0 || static_cast<size_t>(i) >= b->bytes.size()) {
          TML_VM_FAULT(StringValue("$[]: index out of range"));
          break;
        }
        R[in.a] = Value::Int(b->bytes[static_cast<size_t>(i)]);
        break;
      }
      case Op::kBStore: {
        BytesObj* b = As<BytesObj>(R[in.a]);
        if (b == nullptr || !R[in.b].is_int() || !R[in.c].is_int()) {
          return TypeErr("$[]:=");
        }
        int64_t i = R[in.b].i;
        if (i < 0 || static_cast<size_t>(i) >= b->bytes.size()) {
          TML_VM_FAULT(StringValue("$[]:=: index out of range"));
          break;
        }
        b->bytes[static_cast<size_t>(i)] =
            static_cast<uint8_t>(R[in.c].i & 0xFF);
        break;
      }
      case Op::kSize: {
        if (ArrayObj* a = As<ArrayObj>(R[in.b])) {
          R[in.a] = Value::Int(static_cast<int64_t>(a->slots.size()));
        } else if (BytesObj* b = As<BytesObj>(R[in.b])) {
          R[in.a] = Value::Int(static_cast<int64_t>(b->bytes.size()));
        } else if (R[in.b].tag == Tag::kOid) {
          TML_ASSIGN_OR_RETURN(Value rv, ResolveCallee(R[in.b]));
          ArrayObj* a = As<ArrayObj>(rv);
          if (a == nullptr) return TypeErr("size of OID");
          frames_.back().regs[in.a] =
              Value::Int(static_cast<int64_t>(a->slots.size()));
        } else {
          return TypeErr("size");
        }
        break;
      }
      case Op::kMoveN:
      case Op::kBMoveN: {
        const Value* w = &R[in.a];
        if (!w[1].is_int() || !w[3].is_int() || !w[4].is_int()) {
          return TypeErr("move offsets");
        }
        int64_t doff = w[1].i, soff = w[3].i, n = w[4].i;
        if (in.op == Op::kMoveN) {
          ArrayObj* d = As<ArrayObj>(w[0]);
          ArrayObj* s = As<ArrayObj>(w[2]);
          if (d == nullptr || s == nullptr || d->immutable) {
            return TypeErr("move");
          }
          if (n < 0 || doff < 0 || soff < 0 ||
              static_cast<size_t>(doff + n) > d->slots.size() ||
              static_cast<size_t>(soff + n) > s->slots.size()) {
            return TypeErr("move bounds");
          }
          for (int64_t i = 0; i < n; ++i) {
            d->slots[static_cast<size_t>(doff + i)] =
                s->slots[static_cast<size_t>(soff + i)];
          }
        } else {
          BytesObj* d = As<BytesObj>(w[0]);
          BytesObj* s = As<BytesObj>(w[2]);
          if (d == nullptr || s == nullptr) return TypeErr("$move");
          if (n < 0 || doff < 0 || soff < 0 ||
              static_cast<size_t>(doff + n) > d->bytes.size() ||
              static_cast<size_t>(soff + n) > s->bytes.size()) {
            return TypeErr("$move bounds");
          }
          std::memmove(d->bytes.data() + doff, s->bytes.data() + soff,
                       static_cast<size_t>(n));
        }
        break;
      }

      case Op::kClosure: {
        MaybeCollect();
        Frame& fr = frames_.back();
        ClosureObj* clo = heap_.New<ClosureObj>();
        clo->fn = fn->subfns[static_cast<size_t>(in.d)];
        clo->caps.resize(in.c);
        fr.regs[in.a] = Value::ObjV(clo);
        break;
      }
      case Op::kSetCap: {
        ClosureObj* clo = As<ClosureObj>(R[in.a]);
        if (clo == nullptr || in.b >= clo->caps.size()) {
          return TypeErr("setcap");
        }
        clo->caps[in.b] = R[in.c];
        break;
      }
      case Op::kGetCap: {
        if (in.b >= f.clo->caps.size()) return TypeErr("getcap");
        R[in.a] = f.clo->caps[in.b];
        break;
      }

      case Op::kCall: {
        Value callee = R[in.b];
        std::vector<Value> args(R.begin() + in.c, R.begin() + in.c + in.d);
        TML_RETURN_NOT_OK(PushFrame(callee, args, in.a, false));
        break;
      }
      case Op::kTailCall: {
        Value callee = R[in.b];
        std::vector<Value> args(R.begin() + in.c, R.begin() + in.c + in.d);
        size_t cur = frames_.size() - 1;
        bool handler_here =
            !handlers_.empty() && handlers_.back().frame_index >= cur;
        if (handler_here) {
          // A handler targets this frame: it must survive the callee, so
          // demote to a call whose return value is propagated onward.
          TML_RETURN_NOT_OK(PushFrame(callee, args, 0, true));
        } else {
          Frame popped = std::move(frames_.back());
          frames_.pop_back();
          FlushFrameProfile(popped);
          Status st =
              PushFrame(callee, args, popped.dst_reg, popped.ret_through);
          if (!st.ok()) return st;
        }
        break;
      }
      case Op::kRet: {
        Value v = R[in.a];
        while (true) {
          Frame popped = std::move(frames_.back());
          frames_.pop_back();
          FlushFrameProfile(popped);
          size_t idx = frames_.size();
          while (!handlers_.empty() &&
                 handlers_.back().frame_index >= idx) {
            handlers_.pop_back();
          }
          if (frames_.size() <= base) return v;  // normal completion
          if (popped.ret_through) continue;
          frames_.back().regs[popped.dst_reg] = v;
          break;
        }
        break;
      }

      case Op::kRaise: {
        ++raises_;
        Value exn = R[in.a];
        Value escaped;
        if (!Unwind(exn, base, &escaped)) {
          *raised = true;
          return escaped;
        }
        break;
      }
      case Op::kPushH:
        handlers_.push_back(
            Handler{frames_.size() - 1, in.d});
        break;
      case Op::kPopH:
        if (handlers_.empty()) return TypeErr("popHandler on empty stack");
        handlers_.pop_back();
        break;

      case Op::kCCall: {
        const Constant& name = fn->pool[in.c];
        auto it = hosts_.find(name.s);
        if (it == hosts_.end()) {
          return Status::RuntimeError("vm: unknown host function " + name.s);
        }
        std::vector<Value> args(R.begin() + in.b, R.begin() + in.b + in.d);
        TML_ASSIGN_OR_RETURN(Value v, it->second(this, args));
        frames_.back().regs[in.a] = v;
        break;
      }

      case Op::kSelect:
      case Op::kProject:
      case Op::kExists: {
        Value pred = R[in.b];
        TML_ASSIGN_OR_RETURN(Value relv, ResolveCallee(R[in.c]));
        ArrayObj* rel = As<ArrayObj>(relv);
        if (rel == nullptr) return TypeErr("query relation");
        MaybeCollect();
        ArrayObj* out = nullptr;
        if (in.op != Op::kExists) {
          out = heap_.New<ArrayObj>();
          out->immutable = true;
          pins_.push_back(Value::ObjV(out));
        }
        pins_.push_back(relv);
        pins_.push_back(pred);
        bool exists = false;
        Status st = Status::OK();
        Value pred_exn;
        bool pred_raised = false;
        for (const Value& tuple : rel->slots) {
          Value targ[1] = {tuple};
          auto r = CallSync(pred, targ);
          if (!r.ok()) {
            st = r.status();
            break;
          }
          if (r->raised) {
            pred_raised = true;
            pred_exn = r->value;
            break;
          }
          if (in.op == Op::kProject) {
            out->slots.push_back(r->value);
          } else {
            if (r->value.tag != Tag::kBool) {
              st = TypeErr("query predicate must return a boolean");
              break;
            }
            if (r->value.b) {
              if (in.op == Op::kExists) {
                exists = true;
                break;
              }
              out->slots.push_back(tuple);
            }
          }
        }
        pins_.pop_back();
        pins_.pop_back();
        if (out != nullptr) pins_.pop_back();
        if (!st.ok()) return st;
        if (pred_raised) {
          TML_VM_FAULT(pred_exn);
          break;
        }
        frames_.back().regs[in.a] = in.op == Op::kExists
                                        ? Value::Bool(exists)
                                        : Value::ObjV(out);
        break;
      }

      case Op::kJoin: {
        Value pred = R[in.b];
        TML_ASSIGN_OR_RETURN(Value r1v, ResolveCallee(R[in.c]));
        TML_ASSIGN_OR_RETURN(Value r2v, ResolveCallee(R[in.c + 1]));
        ArrayObj* r1 = As<ArrayObj>(r1v);
        ArrayObj* r2 = As<ArrayObj>(r2v);
        if (r1 == nullptr || r2 == nullptr) return TypeErr("join relations");
        MaybeCollect();
        ArrayObj* out = heap_.New<ArrayObj>();
        out->immutable = true;
        pins_.push_back(Value::ObjV(out));
        pins_.push_back(r1v);
        pins_.push_back(r2v);
        pins_.push_back(pred);
        Status st = Status::OK();
        Value pred_exn;
        bool pred_raised = false;
        for (const Value& t1 : r1->slots) {
          for (const Value& t2 : r2->slots) {
            Value targ[2] = {t1, t2};
            auto r = CallSync(pred, targ);
            if (!r.ok()) {
              st = r.status();
              break;
            }
            if (r->raised) {
              pred_raised = true;
              pred_exn = r->value;
              break;
            }
            if (r->value.tag != Tag::kBool) {
              st = TypeErr("join predicate must return a boolean");
              break;
            }
            if (r->value.b) {
              ArrayObj* joined = heap_.New<ArrayObj>();
              joined->immutable = true;
              ArrayObj* a1 = As<ArrayObj>(t1);
              ArrayObj* a2 = As<ArrayObj>(t2);
              if (a1 == nullptr || a2 == nullptr) {
                st = TypeErr("join tuples must be arrays");
                break;
              }
              joined->slots = a1->slots;
              joined->slots.insert(joined->slots.end(), a2->slots.begin(),
                                   a2->slots.end());
              out->slots.push_back(Value::ObjV(joined));
            }
          }
          if (!st.ok() || pred_raised) break;
        }
        pins_.resize(pins_.size() - 4);
        if (!st.ok()) return st;
        if (pred_raised) {
          TML_VM_FAULT(pred_exn);
          break;
        }
        frames_.back().regs[in.a] = Value::ObjV(out);
        break;
      }

      case Op::kEmpty:
      case Op::kCount: {
        TML_ASSIGN_OR_RETURN(Value relv, ResolveCallee(R[in.b]));
        ArrayObj* rel = As<ArrayObj>(relv);
        if (rel == nullptr) return TypeErr("relation cardinality");
        frames_.back().regs[in.a] =
            in.op == Op::kEmpty
                ? Value::Bool(rel->slots.empty())
                : Value::Int(static_cast<int64_t>(rel->slots.size()));
        break;
      }
    }
  }
}

#undef TML_VM_FAULT

}  // namespace tml::vm
