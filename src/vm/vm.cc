#include "vm/vm.h"

#include <time.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace tml::vm {

std::string ToString(const Value& v) {
  char buf[64];
  switch (v.tag) {
    case Tag::kNil:
      return "nil";
    case Tag::kBool:
      return v.b ? "true" : "false";
    case Tag::kInt:
      return std::to_string(v.i);
    case Tag::kChar:
      std::snprintf(buf, sizeof(buf), "'%c'", v.ch);
      return buf;
    case Tag::kReal:
      std::snprintf(buf, sizeof(buf), "%g", v.r);
      return buf;
    case Tag::kOid:
      return "<oid " + std::to_string(v.oid) + ">";
    case Tag::kObj:
      switch (v.obj->kind) {
        case ObjKind::kArray: {
          auto* a = static_cast<ArrayObj*>(v.obj);
          std::string out = "[";
          for (size_t i = 0; i < a->slots.size(); ++i) {
            if (i > 0) out += ' ';
            out += ToString(a->slots[i]);
          }
          return out + "]";
        }
        case ObjKind::kBytes:
          return "<bytes " +
                 std::to_string(static_cast<BytesObj*>(v.obj)->bytes.size()) +
                 ">";
        case ObjKind::kString:
          return static_cast<StringObj*>(v.obj)->str;
        case ObjKind::kClosure:
          return "<closure>";
      }
  }
  return "?";
}

bool ScalarEquals(const Value& a, const Value& b) {
  if (a.tag != b.tag) return false;
  switch (a.tag) {
    case Tag::kNil:
      return true;
    case Tag::kBool:
      return a.b == b.b;
    case Tag::kInt:
      return a.i == b.i;
    case Tag::kChar:
      return a.ch == b.ch;
    case Tag::kReal:
      return a.r == b.r;
    case Tag::kOid:
      return a.oid == b.oid;
    case Tag::kObj:
      if (a.obj->kind == ObjKind::kString &&
          b.obj->kind == ObjKind::kString) {
        return static_cast<StringObj*>(a.obj)->str ==
               static_cast<StringObj*>(b.obj)->str;
      }
      return a.obj == b.obj;
  }
  return false;
}

namespace {

Status TypeErr(const char* what) {
  return Status::RuntimeError(std::string("vm type error: ") + what);
}

bool ConstEquals(const Value& v, const Constant& c) {
  switch (c.kind) {
    case Constant::Kind::kNil:
      return v.is_nil();
    case Constant::Kind::kBool:
      return v.tag == Tag::kBool && v.b == (c.i != 0);
    case Constant::Kind::kInt:
      return v.is_int() && v.i == c.i;
    case Constant::Kind::kChar:
      return v.tag == Tag::kChar && v.ch == static_cast<uint8_t>(c.i);
    case Constant::Kind::kReal:
      return v.is_real() && v.r == c.r;
    case Constant::Kind::kString:
      return v.is_obj() && v.obj->kind == ObjKind::kString &&
             static_cast<StringObj*>(v.obj)->str == c.s;
    case Constant::Kind::kOid:
      return v.tag == Tag::kOid && v.oid == static_cast<Oid>(c.i);
  }
  return false;
}

}  // namespace

VM::VM(RuntimeEnv* env, VMOptions opts)
    : env_(env), opts_(opts), dispatch_(ResolveDispatchMode(opts.dispatch)) {
  RegisterHost("print",
               [](VM* vm, std::span<const Value> args) -> Result<Value> {
                 for (const Value& a : args) {
                   *vm->mutable_output() += ToString(a);
                 }
                 *vm->mutable_output() += '\n';
                 return Value::Nil();
               });
}

VM::~VM() {
  // A batching VM (telemetry_batch_steps > 0) may hold unpublished tallies;
  // flush them so the registry totals stay exact across worker teardown.
  PublishTelemetry();
}

void VM::RegisterHost(const std::string& name, HostFn fn) {
  hosts_[name] = std::move(fn);
}

Value VM::MakeClosure(const Function* fn) {
  ClosureObj* clo = heap_.New<ClosureObj>();
  clo->fn = fn;
  clo->caps.resize(fn->cap_names.size());
  return Value::ObjV(clo);
}

Value VM::StringValue(const char* msg) {
  StringObj* s = heap_.New<StringObj>();
  s->str = msg;
  return Value::ObjV(s);
}

FnCounters* VM::ProfileFor(const Function* fn) {
  // The mutator is the only writer, so its own lookups need no lock; the
  // insert locks because SnapshotProfile may be iterating concurrently.
  auto it = profile_.find(fn);
  if (it != profile_.end()) return &it->second;
  std::lock_guard<std::mutex> lock(profile_mu_);
  return &profile_[fn];
}

std::vector<FnSample> VM::SnapshotProfile() {
  std::lock_guard<std::mutex> lock(profile_mu_);
  std::vector<FnSample> out;
  out.reserve(profile_.size());
  for (auto& [fn, c] : profile_) {
    out.push_back(FnSample{fn, c.calls.load(std::memory_order_relaxed),
                           c.steps.load(std::memory_order_relaxed)});
  }
  return out;
}

void VM::FlushFramesFrom(size_t from) {
  for (size_t i = from; i < frames_.size(); ++i) {
    FlushFrameProfile(frames_[i]);
  }
}

void VM::InvalidateSwizzle(Oid oid) {
  {
    std::lock_guard<std::mutex> lock(inval_mu_);
    inval_queue_.push_back(oid);
  }
  inval_epoch_.fetch_add(1, std::memory_order_release);
}

void VM::DrainInvalidations() {
  std::lock_guard<std::mutex> lock(inval_mu_);
  for (Oid oid : inval_queue_) swizzle_cache_.erase(oid);
  inval_queue_.clear();
  // Old swizzled values stay pinned; their Function* are owned by code
  // units that outlive the VM, so in-flight frames keep running old code
  // safely while new calls re-resolve.
  seen_inval_epoch_ = inval_epoch_.load(std::memory_order_acquire);
}

Result<Value> VM::ResolveCallee(Value callee) {
  if (callee.tag == Tag::kOid) {
    if (inval_epoch_.load(std::memory_order_acquire) != seen_inval_epoch_) {
      DrainInvalidations();
    }
    auto it = swizzle_cache_.find(callee.oid);
    if (it != swizzle_cache_.end()) return it->second;
    if (env_ == nullptr) {
      return Status::RuntimeError("vm: OID call without a runtime env");
    }
    TML_TELEMETRY_SPAN("vm", "swizzle.resolve");
    ++swizzle_faults_;
    TML_ASSIGN_OR_RETURN(Value v, env_->ResolveOid(callee.oid, this));
    Pin(v);
    swizzle_cache_[callee.oid] = v;
    return v;
  }
  return callee;
}

Status VM::PushFrame(Value callee, std::span<const Value> args,
                     uint16_t dst_reg, bool ret_through) {
  TML_ASSIGN_OR_RETURN(Value resolved, ResolveCallee(callee));
  ClosureObj* clo = As<ClosureObj>(resolved);
  if (clo == nullptr) {
    return Status::RuntimeError("vm: call of a non-procedure value: " +
                                ToString(callee));
  }
  if (clo->fn->num_params != args.size()) {
    return Status::RuntimeError(
        "vm: arity mismatch calling " + clo->fn->name + ": expected " +
        std::to_string(clo->fn->num_params) + ", got " +
        std::to_string(args.size()));
  }
  if (frames_.size() >= 100'000) {
    return Status::RuntimeError("vm: frame stack overflow");
  }
  Frame fr;
  if (!frame_pool_.empty()) {
    fr = std::move(frame_pool_.back());
    frame_pool_.pop_back();
  }
  fr.clo = clo;
  fr.pc = 0;
  fr.dst_reg = dst_reg;
  fr.ret_through = ret_through;
  if (opts_.profile) {
    fr.prof = ProfileFor(clo->fn);
    fr.prof->calls.fetch_add(1, std::memory_order_relaxed);
  }
  ++calls_;
  // assign + resize (not resize + copy) so a recycled buffer's stale slots
  // are all overwritten: params take the arguments, the rest become Nil.
  fr.regs.assign(args.begin(), args.end());
  fr.regs.resize(clo->fn->num_regs);
  frames_.push_back(std::move(fr));
  return Status::OK();
}

Result<RunResult> VM::Run(const Function* fn, std::span<const Value> args) {
  return RunClosure(MakeClosure(fn), args);
}

void VM::PublishTelemetry() {
  static telemetry::Counter* steps =
      telemetry::Registry::Global().GetCounter("tml.vm.steps");
  static telemetry::Counter* calls =
      telemetry::Registry::Global().GetCounter("tml.vm.calls");
  static telemetry::Counter* raises =
      telemetry::Registry::Global().GetCounter("tml.vm.raises");
  static telemetry::Counter* swizzle_faults =
      telemetry::Registry::Global().GetCounter("tml.vm.swizzle_faults");
  if (total_steps_ != published_steps_) {
    steps->Add(total_steps_ - published_steps_);
    published_steps_ = total_steps_;
  }
  if (calls_ != published_calls_) {
    calls->Add(calls_ - published_calls_);
    published_calls_ = calls_;
  }
  if (raises_ != published_raises_) {
    raises->Add(raises_ - published_raises_);
    published_raises_ = raises_;
  }
  if (swizzle_faults_ != published_swizzle_faults_) {
    swizzle_faults->Add(swizzle_faults_ - published_swizzle_faults_);
    published_swizzle_faults_ = swizzle_faults_;
  }
}

Result<RunResult> VM::RunClosure(Value closure, std::span<const Value> args) {
  size_t base = frames_.size();
  uint64_t steps_before = total_steps_;
  // Arm the per-run step budget at the outermost boundary only: nested
  // runs (query predicates re-entering via CallSync) spend the enclosing
  // run's budget rather than resetting it.
  if (base == 0) {
    budget_deadline_ = opts_.step_budget == 0
                           ? UINT64_MAX
                           : total_steps_ + opts_.step_budget;
    oom_raised_ = false;
  }
  TML_RETURN_NOT_OK(PushFrame(closure, args, 0, false));
  bool raised = false;
  auto v = Execute(base, &raised);
  // Publish telemetry deltas only at the outermost run boundary, so nested
  // RunClosure calls (query predicates) cost nothing extra.  Also drop the
  // exec-status publication back to idle so the sampler never attributes
  // between-run time to the last function.
  if (base == 0) {
    MaybePublishTelemetry();
    exec_fn_.store(nullptr, std::memory_order_relaxed);
  }
  if (!v.ok()) {
    FlushFramesFrom(base);
    frames_.resize(base);
    return v.status();
  }
  RunResult out;
  out.value = *v;
  out.raised = raised;
  out.steps = total_steps_ - steps_before;
  return out;
}

Result<VM::CallOut> VM::CallSync(Value callee, std::span<const Value> args) {
  size_t base = frames_.size();
  if (base == 0) {
    budget_deadline_ = opts_.step_budget == 0
                           ? UINT64_MAX
                           : total_steps_ + opts_.step_budget;
    oom_raised_ = false;
  }
  TML_RETURN_NOT_OK(PushFrame(callee, args, 0, false));
  bool raised = false;
  auto v = Execute(base, &raised);
  if (base == 0) {
    MaybePublishTelemetry();
    exec_fn_.store(nullptr, std::memory_order_relaxed);
  }
  if (!v.ok()) {
    FlushFramesFrom(base);
    frames_.resize(base);
    return v.status();
  }
  return CallOut{*v, raised};
}

bool VM::Unwind(Value exn, size_t base, Value* escaped) {
  if (!handlers_.empty() && handlers_.back().frame_index >= base) {
    Handler h = handlers_.back();
    handlers_.pop_back();
    FlushFramesFrom(h.frame_index + 1);
    frames_.resize(h.frame_index + 1);
    Frame& f = frames_.back();
    const FailInfo& fi = f.clo->fn->fail_infos[h.fail_idx];
    f.pc = static_cast<uint32_t>(fi.target);
    f.regs[fi.exn_reg] = exn;
    return true;
  }
  *escaped = exn;
  FlushFramesFrom(base);
  frames_.resize(base);
  return false;
}

bool VM::Fault(const Instr& in, Value exn, size_t base, Value* escaped) {
  ++raises_;
  if (in.fail >= 0) {
    Frame& f = frames_.back();
    const FailInfo& fi = f.clo->fn->fail_infos[in.fail];
    f.pc = static_cast<uint32_t>(fi.target);
    f.regs[fi.exn_reg] = exn;
    return true;
  }
  return Unwind(exn, base, escaped);
}

void VM::MaybeCollect() {
  if (heap_.ShouldCollect()) CollectGarbage();
}

void VM::CollectGarbage() {
  for (const Frame& f : frames_) {
    for (const Value& v : f.regs) Heap::Mark(v);
    Heap::Mark(Value::ObjV(const_cast<ClosureObj*>(f.clo)));
  }
  for (const Value& v : pins_) Heap::Mark(v);
  for (const auto& [oid, v] : swizzle_cache_) Heap::Mark(v);
  heap_.Sweep();
}

bool ThreadedDispatchAvailable() {
#if TML_VM_HAVE_THREADED
  return true;
#else
  return false;
#endif
}

const char* DispatchModeName(DispatchMode mode) {
  switch (mode) {
    case DispatchMode::kAuto:
      return "auto";
    case DispatchMode::kSwitch:
      return "switch";
    case DispatchMode::kThreaded:
      return "threaded";
  }
  return "?";
}

DispatchMode ResolveDispatchMode(DispatchMode requested) {
  if (requested == DispatchMode::kAuto) {
    if (const char* env = std::getenv("TML_VM_DISPATCH")) {
      if (std::strcmp(env, "switch") == 0) return DispatchMode::kSwitch;
      if (std::strcmp(env, "threaded") == 0) requested = DispatchMode::kThreaded;
    }
  }
  if (requested == DispatchMode::kAuto) {
    requested = ThreadedDispatchAvailable() ? DispatchMode::kThreaded
                                            : DispatchMode::kSwitch;
  }
  if (requested == DispatchMode::kThreaded && !ThreadedDispatchAvailable()) {
    return DispatchMode::kSwitch;
  }
  return requested;
}

Status VM::StepLimitStatus() const {
  // The loop compares against min(max_steps, budget deadline); disambiguate
  // here, lifetime cap first to match the historical check ordering.
  if (total_steps_ > opts_.max_steps) {
    return Status::RuntimeError("vm: step limit exceeded");
  }
  return Status::OutOfRange("vm: step budget exceeded (budget=" +
                            std::to_string(opts_.step_budget) + ")");
}

uint64_t VM::MonotonicNowNs() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

Status VM::StepGate(uint64_t* soft_deadline) {
  const uint64_t hard = std::min(opts_.max_steps, budget_deadline_);
  if (total_steps_ > hard) return StepLimitStatus();
  // Only here to poll the wall clock: the soft watermark expired, no real
  // step limit did.
  if (run_deadline_ns_ != 0 && MonotonicNowNs() >= run_deadline_ns_) {
    return Status::Deadline("vm: request deadline exceeded");
  }
  *soft_deadline = std::min(hard, total_steps_ + kDeadlinePollSteps);
  return Status::OK();
}

Result<Value> VM::Execute(size_t base, bool* raised) {
#if TML_VM_HAVE_THREADED
  if (dispatch_ == DispatchMode::kThreaded) {
    return ExecuteThreaded(base, raised);
  }
#endif
  return ExecuteSwitch(base, raised);
}

// Both interpreter loops compile from the same handler bodies; see
// interp_loop.inc for the dispatch-mode contract.

Result<Value> VM::ExecuteSwitch(size_t base, bool* raised) {
#define TML_VM_LOOP_THREADED 0
#include "vm/interp_loop.inc"
#undef TML_VM_LOOP_THREADED
}

#if TML_VM_HAVE_THREADED
Result<Value> VM::ExecuteThreaded(size_t base, bool* raised) {
#define TML_VM_LOOP_THREADED 1
#include "vm/interp_loop.inc"
#undef TML_VM_LOOP_THREADED
}
#endif

}  // namespace tml::vm
